/**
 * @file
 * Fault-injection tests for the supervised scenario batch runner
 * (sprint/supervisor.hh). The headline gate: for every FaultKind, a
 * run that crashes, corrupts its newest checkpoint, throws, or stalls
 * — and is then recovered by the supervisor from persisted state —
 * finishes with aggregates and traces bit-identical to an
 * uninterrupted run of the same configuration. Also covers retry
 * exhaustion (degraded shards keep their exception and do not sink
 * the rest of the batch) and the checked ExperimentRunner batch API.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sprint/checkpoint.hh"
#include "sprint/experiment.hh"
#include "sprint/runner.hh"
#include "sprint/scenario.hh"
#include "sprint/supervisor.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

ScenarioConfig
shardScenario(std::uint64_t seed)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(16, kSmallPcm);
    cfg.policy.kind = SprintPolicyKind::GreedyActivity;
    cfg.policy.pacing_period = 2.5e-3;
    cfg.pattern = ArrivalPattern::Periodic;
    cfg.num_tasks = 6;
    cfg.period = 2.5e-3;
    cfg.kernel = KernelId::Sobel;
    cfg.size = InputSize::A;
    cfg.seed = seed;
    cfg.warm_caches = true;
    return cfg;
}

void
expectResultsEqual(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
    EXPECT_EQ(a.sprints_granted, b.sprints_granted);
    EXPECT_EQ(a.sprints_denied, b.sprints_denied);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.deadlines_met, b.deadlines_met);
    EXPECT_EQ(a.deadlines_missed, b.deadlines_missed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.p50_response, b.p50_response);
    EXPECT_EQ(a.p95_response, b.p95_response);
    EXPECT_EQ(a.peak_junction, b.peak_junction);
    EXPECT_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.total_sprint_time, b.total_sprint_time);
    EXPECT_EQ(a.total_sprint_energy, b.total_sprint_energy);
    EXPECT_EQ(a.peak_melt_fraction, b.peak_melt_fraction);
    EXPECT_EQ(a.sprint_rest_cycles, b.sprint_rest_cycles);
    EXPECT_EQ(a.junction_trace.timeData(), b.junction_trace.timeData());
    EXPECT_EQ(a.junction_trace.valueData(),
              b.junction_trace.valueData());
    EXPECT_EQ(a.power_trace.timeData(), b.power_trace.timeData());
    EXPECT_EQ(a.power_trace.valueData(), b.power_trace.valueData());
    EXPECT_EQ(a.melt_trace.timeData(), b.melt_trace.timeData());
    EXPECT_EQ(a.melt_trace.valueData(), b.melt_trace.valueData());
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        EXPECT_EQ(a.tasks[i].finish, b.tasks[i].finish);
        EXPECT_EQ(a.tasks[i].response, b.tasks[i].response);
        EXPECT_EQ(a.tasks[i].run.dynamic_energy,
                  b.tasks[i].run.dynamic_energy);
    }
}

std::string
freshDir(const char *tag)
{
    std::string tmpl = std::string("/tmp/csprint-") + tag + "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return std::string(dir ? dir : "/tmp");
}

/** Recovered-equals-uninterrupted, parameterized by the fault kind. */
void
recoveryParity(FaultKind kind)
{
    const ScenarioConfig cfg = shardScenario(11);
    const ScenarioResult direct = runScenario(cfg);

    SupervisorOptions opts;
    opts.store_dir = freshDir(faultKindName(kind));
    opts.checkpoint_every_tasks = 2;
    opts.max_retries = 2;
    opts.paranoia = true;
    if (kind == FaultKind::Stall)
        opts.watchdog_deadline = 0.2; // seconds; slices run in ms

    FaultPlan plan;
    plan.faults.push_back({0, kind, 2});

    const SupervisedBatchResult batch =
        runSupervisedScenarioBatch({cfg}, opts, plan);
    ASSERT_EQ(batch.shards.size(), 1u);
    const ShardOutcome &shard = batch.shards[0];
    ASSERT_TRUE(batch.allOk())
        << "shard degraded under " << faultKindName(kind);
    EXPECT_GE(shard.retries, 1) << "the fault never fired";
    EXPECT_GE(shard.recoveries, 1u)
        << "recovery never resumed from a persisted checkpoint";
    expectResultsEqual(direct, shard.result);
}

TEST(FaultInjection, CrashAtCheckpointRecoversBitExact)
{
    recoveryParity(FaultKind::CrashAtCheckpoint);
}

TEST(FaultInjection, BitFlipRecoversBitExact)
{
    recoveryParity(FaultKind::BitFlip);
}

TEST(FaultInjection, TruncateRecoversBitExact)
{
    recoveryParity(FaultKind::Truncate);
}

TEST(FaultInjection, WorkerExceptionRecoversBitExact)
{
    recoveryParity(FaultKind::WorkerException);
}

TEST(FaultInjection, StallIsCancelledAndRecoversBitExact)
{
    recoveryParity(FaultKind::Stall);
}

TEST(FaultInjection, MultiShardRandomizedPlanStaysBitExact)
{
    // A seed-derived plan hits every shard once; all recover and all
    // match their uninterrupted twins.
    std::vector<ScenarioConfig> shards;
    for (std::uint64_t s = 0; s < 3; ++s)
        shards.push_back(shardScenario(100 + s));

    SupervisorOptions opts;
    opts.store_dir = freshDir("random");
    opts.checkpoint_every_tasks = 2;
    opts.max_retries = 3;
    opts.watchdog_deadline = 0.2;

    const FaultPlan plan = FaultPlan::randomized(
        0xC0FFEEu, static_cast<int>(shards.size()), 3);
    ASSERT_EQ(plan.faults.size(), shards.size());

    const SupervisedBatchResult batch =
        runSupervisedScenarioBatch(shards, opts, plan);
    ASSERT_TRUE(batch.allOk());
    for (std::size_t i = 0; i < shards.size(); ++i)
        expectResultsEqual(runScenario(shards[i]),
                           batch.shards[i].result);
}

TEST(FaultInjection, ExhaustedRetriesReportDegradedNotDropped)
{
    std::vector<ScenarioConfig> shards{shardScenario(5),
                                       shardScenario(6)};

    SupervisorOptions opts;
    opts.store_dir = freshDir("degraded");
    opts.checkpoint_every_tasks = 2;
    opts.max_retries = 0; // one attempt: the injected fault is fatal

    FaultPlan plan;
    plan.faults.push_back({0, FaultKind::WorkerException, 1});

    const SupervisedBatchResult batch =
        runSupervisedScenarioBatch(shards, opts, plan);
    ASSERT_EQ(batch.shards.size(), 2u);
    EXPECT_FALSE(batch.allOk());

    const ShardOutcome &failed = batch.shards[0];
    EXPECT_TRUE(failed.degraded);
    ASSERT_TRUE(failed.error != nullptr);
    try {
        std::rethrow_exception(failed.error);
        FAIL() << "degraded shard carried no exception";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("injected"),
                  std::string::npos);
    }

    // The healthy shard is unaffected by its neighbour's failure.
    EXPECT_FALSE(batch.shards[1].degraded);
    expectResultsEqual(runScenario(shards[1]), batch.shards[1].result);
}

TEST(FaultInjection, InterruptedBatchResumesFromTheStore)
{
    // Kill a batch externally (simulated by a fatal first run), then
    // rerun the supervisor over the same store: the second run picks
    // up the persisted shard checkpoints instead of starting over,
    // and still matches the uninterrupted result.
    const ScenarioConfig cfg = shardScenario(21);
    SupervisorOptions opts;
    opts.store_dir = freshDir("rerun");
    opts.checkpoint_every_tasks = 2;
    opts.max_retries = 0;

    FaultPlan crash;
    crash.faults.push_back({0, FaultKind::WorkerException, 2});
    const SupervisedBatchResult first =
        runSupervisedScenarioBatch({cfg}, opts, crash);
    ASSERT_TRUE(first.shards[0].degraded);

    const SupervisedBatchResult second =
        runSupervisedScenarioBatch({cfg}, opts, FaultPlan{});
    ASSERT_TRUE(second.allOk());
    EXPECT_GE(second.shards[0].recoveries, 1u);
    expectResultsEqual(runScenario(cfg), second.shards[0].result);
}

TEST(CheckedBatch, PerShardFailuresSurviveAndSurface)
{
    // Satellite of the same robustness story: the thread-pool batch
    // API must not let one throwing shard hide the others' results
    // (map() rethrows the first exception and default-constructs the
    // rest).
    std::vector<ScenarioConfig> batch{shardScenario(31),
                                      shardScenario(32)};
    batch[0].program_factory =
        [](const ScenarioTask &) -> ParallelProgram {
        throw std::runtime_error("injected shard failure");
    };

    ExperimentRunner runner(2);
    const auto checked = runner.runScenarioBatchChecked(batch);
    ASSERT_EQ(checked.size(), 2u);
    EXPECT_FALSE(checked[0].ok());
    EXPECT_THROW(checked[0].get(), std::exception);
    ASSERT_TRUE(checked[1].ok());
    expectResultsEqual(runScenario(batch[1]), checked[1].get());
}

} // namespace
} // namespace csprint
