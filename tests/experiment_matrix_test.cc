/**
 * @file
 * Parameterized experiment matrix: every kernel is swept through the
 * standard sprint configurations and a set of cross-cutting
 * invariants is asserted on each cell — speedup bounds, energy
 * bounds, thermal safety, and the small-vs-full PCM ordering.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sprint/experiment.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

class KernelMatrix
    : public ::testing::TestWithParam<std::tuple<KernelId, InputSize>>
{
};

TEST_P(KernelMatrix, SprintInvariantsHold)
{
    const auto [kernel, size] = GetParam();
    ExperimentSpec spec;
    spec.kernel = kernel;
    spec.size = size;
    spec.cores = 8;

    const RunResult base = runBaselineExperiment(spec);
    const RunResult par = runParallelSprintExperiment(spec);

    // Baseline sanity.
    EXPECT_GT(base.task_time, 0.0);
    EXPECT_FALSE(base.sprint_exhausted);
    EXPECT_EQ(base.machine.ops_retired, par.machine.ops_retired)
        << "same program must retire the same ops";

    // Speedup bounded by core count plus a superlinearity allowance
    // (aggregate L1 capacity).
    const double s = speedupOver(base, par);
    EXPECT_GT(s, 0.9);
    EXPECT_LE(s, 8.0 * 1.45);

    // Energy within a sane band of the baseline.
    const double e = energyRatio(base, par);
    EXPECT_GT(e, 0.80);
    EXPECT_LT(e, 2.0);

    // Thermal safety: never meaningfully above the junction limit.
    EXPECT_LT(par.peak_junction,
              MobilePackageParams::phonePcm().t_junction_max + 2.0);
}

TEST_P(KernelMatrix, SmallPcmNeverBeatsFullPcm)
{
    const auto [kernel, size] = GetParam();
    ExperimentSpec spec;
    spec.kernel = kernel;
    spec.size = size;
    spec.cores = 8;
    ExperimentSpec small = spec;
    small.pcm_mass = kSmallPcm;

    const RunResult full = runParallelSprintExperiment(spec);
    const RunResult tiny = runParallelSprintExperiment(small);
    EXPECT_LE(full.task_time, tiny.task_time * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelMatrix,
    ::testing::Combine(::testing::Values(KernelId::Sobel,
                                         KernelId::Feature,
                                         KernelId::Kmeans,
                                         KernelId::Disparity,
                                         KernelId::Texture,
                                         KernelId::Segment),
                       ::testing::Values(InputSize::A, InputSize::B)),
    [](const auto &info) {
        return kernelName(std::get<0>(info.param)) + "_" +
               inputSizeName(std::get<1>(info.param));
    });

} // namespace
} // namespace csprint
