/**
 * @file
 * Tests for the coupled sprint simulation: baseline behaviour, sprint
 * exhaustion and migration, DVFS mode, fault injection (hardware
 * throttle), and the experiment helpers.
 */

#include <gtest/gtest.h>

#include "sprint/experiment.hh"
#include "sprint/simulation.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

TEST(Simulation, BaselineCompletesWithoutSprinting)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    const RunResult r = runSprint(prog, SprintConfig::baseline());
    EXPECT_GT(r.task_time, 0.0);
    EXPECT_FALSE(r.sprint_exhausted);
    EXPECT_FALSE(r.hardware_throttled);
    EXPECT_EQ(r.sprint_cores, 1);
}

TEST(Simulation, ParallelSprintBeatsBaseline)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    const RunResult base = runSprint(prog, SprintConfig::baseline());
    const RunResult sprint = runSprint(
        prog, SprintConfig::parallelSprint(16, kFullPcm));
    EXPECT_LT(sprint.task_time, base.task_time);
    EXPECT_GT(base.task_time / sprint.task_time, 6.0);
}

TEST(Simulation, ActivationRampDelaysCompletion)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    SprintConfig with = SprintConfig::parallelSprint(16, kFullPcm);
    SprintConfig without = with;
    without.activation_ramp = 0.0;
    const RunResult a = runSprint(prog, with);
    const RunResult b = runSprint(prog, without);
    EXPECT_NEAR(a.task_time - b.task_time, with.activation_ramp,
                0.2 * with.activation_ramp);
}

TEST(Simulation, SmallPcmExhaustsAndMigrates)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::B, 42);
    const RunResult small = runSprint(
        prog, SprintConfig::parallelSprint(16, kSmallPcm));
    const RunResult full = runSprint(
        prog, SprintConfig::parallelSprint(16, kFullPcm));
    EXPECT_TRUE(small.sprint_exhausted);
    EXPECT_GT(small.task_time, full.task_time);
    EXPECT_FALSE(small.hardware_throttled);
}

TEST(Simulation, JunctionStaysUnderLimit)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Kmeans, InputSize::A, 42);
    const RunResult r = runSprint(
        prog, SprintConfig::parallelSprint(16, kSmallPcm));
    EXPECT_LT(r.peak_junction,
              MobilePackageParams::phonePcm().t_junction_max + 2.0);
}

TEST(Simulation, FaultInjectionFiresHardwareThrottle)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::B, 42);
    SprintConfig cfg = SprintConfig::parallelSprint(16, kSmallPcm);
    cfg.software_migration_fails = true;
    cfg.governor.software_grace = 20e-6;
    const RunResult r = runSprint(prog, cfg);
    EXPECT_TRUE(r.sprint_exhausted);
    EXPECT_TRUE(r.hardware_throttled);
    // The run still completes (slowly, at throttled frequency).
    EXPECT_GT(r.task_time, 0.0);
}

TEST(Simulation, DvfsSprintBoostsButLessThanParallel)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    const RunResult base = runSprint(prog, SprintConfig::baseline());
    const RunResult dvfs = runSprint(
        prog, SprintConfig::dvfsSprint(kPowerHeadroom, kFullPcm));
    const RunResult par = runSprint(
        prog, SprintConfig::parallelSprint(16, kFullPcm));
    const double s_dvfs = base.task_time / dvfs.task_time;
    const double s_par = base.task_time / par.task_time;
    // DVFS caps near cbrt(16) ~ 2.5 on compute-bound work.
    EXPECT_GT(s_dvfs, 1.5);
    EXPECT_LT(s_dvfs, 2.7);
    EXPECT_GT(s_par, s_dvfs);
}

TEST(Simulation, DvfsEnergyCostQuadratic)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    const RunResult base = runSprint(prog, SprintConfig::baseline());
    const RunResult dvfs = runSprint(
        prog, SprintConfig::dvfsSprint(kPowerHeadroom, kFullPcm));
    const double ratio = dvfs.dynamic_energy / base.dynamic_energy;
    // Paper Section 8.4: ~6x more energy for the DVFS sprint.
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 7.5);
}

TEST(Simulation, ParallelEnergyNearBaseline)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    const RunResult base = runSprint(prog, SprintConfig::baseline());
    const RunResult par = runSprint(
        prog, SprintConfig::parallelSprint(16, kFullPcm));
    const double ratio = par.dynamic_energy / base.dynamic_energy;
    // Paper Section 8.6: <10-12% overhead in the linear regime.
    EXPECT_LT(ratio, 1.25);
    EXPECT_GT(ratio, 0.9);
}

TEST(Simulation, CooldownEstimatePositiveAfterSprint)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    const RunResult r = runSprint(
        prog, SprintConfig::parallelSprint(16, kFullPcm));
    EXPECT_GT(r.sprint_duration, 0.0);
    EXPECT_GT(r.cooldown_estimate, r.sprint_duration);
}

TEST(Simulation, TracesAreRecorded)
{
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    const RunResult r = runSprint(
        prog, SprintConfig::parallelSprint(16, kFullPcm));
    EXPECT_GT(r.junction_trace.size(), 10u);
    EXPECT_GT(r.power_trace.size(), 10u);
    EXPECT_GT(r.power_trace.maxValue(), 5.0);  // a real sprint
}

TEST(Experiment, HelpersConsistent)
{
    ExperimentSpec spec;
    spec.kernel = KernelId::Sobel;
    spec.size = InputSize::A;
    const RunResult base = runBaselineExperiment(spec);
    const RunResult par = runParallelSprintExperiment(spec);
    EXPECT_GT(speedupOver(base, par), 1.0);
    EXPECT_NEAR(energyRatio(base, base), 1.0, 1e-12);
}

TEST(Experiment, BandwidthMultiplierHelpsMemoryBoundKernels)
{
    ExperimentSpec spec;
    spec.kernel = KernelId::Disparity;
    spec.size = InputSize::B;
    spec.cores = 16;
    const RunResult base = runBaselineExperiment(spec);
    const RunResult normal = runParallelSprintExperiment(spec);
    ExperimentSpec spec2x = spec;
    spec2x.bandwidth_mult = 2.0;
    const RunResult base2x = runBaselineExperiment(spec2x);
    const RunResult doubled = runParallelSprintExperiment(spec2x);
    EXPECT_GE(speedupOver(base2x, doubled),
              0.95 * speedupOver(base, normal));
}

} // namespace
} // namespace csprint
