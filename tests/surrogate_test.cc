/**
 * @file
 * Unit tests for the calibrated surrogate fidelity tier: class-key
 * encoding, the admissibility gate (calibration count + demotion),
 * seed-determinism of the audit cursor, one-strike demotion grading,
 * prediction clamping, and the streaming-quantile state that rides in
 * ServiceEstimator checkpoints.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/stats.hh"
#include "sprint/policy.hh"
#include "sprint/surrogate.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

SurrogateObservation
obs(double service, double energy)
{
    SurrogateObservation ob;
    ob.service = service;
    ob.energy = energy;
    ob.sprint_time = service * 0.5;
    ob.sprint_energy = energy * 0.5;
    return ob;
}

TEST(SurrogateClassKey, DisjointAcrossClasses)
{
    std::set<std::uint32_t> keys;
    for (KernelId kernel : allKernels()) {
        for (InputSize size :
             {InputSize::A, InputSize::B, InputSize::C, InputSize::D}) {
            for (bool sprinted : {false, true})
                keys.insert(
                    TaskSurrogate::classKey(kernel, size, sprinted));
        }
    }
    EXPECT_EQ(keys.size(), allKernels().size() * 4 * 2);
}

TEST(SurrogateRoute, GatesOnCalibrationThenPredicts)
{
    TaskSurrogate sur;
    sur.seed(7);
    SurrogateParams params;
    params.tier = FidelityTier::Surrogate;
    params.min_calibration = 3;
    const std::uint32_t key =
        TaskSurrogate::classKey(KernelId::Sobel, InputSize::A, false);

    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(sur.route(key, params), TaskSurrogate::Route::Exact);
        sur.observeExact(key, obs(1e-3, 2e-3));
    }
    // Calibrated: the pure Surrogate tier predicts and never audits.
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(sur.route(key, params),
                  TaskSurrogate::Route::Surrogate);
    EXPECT_EQ(sur.surrogateTasks(), 16u);
    EXPECT_EQ(sur.auditTasks(), 0u);

    // An unseen class stays exact.
    const std::uint32_t other =
        TaskSurrogate::classKey(KernelId::Kmeans, InputSize::B, true);
    EXPECT_EQ(sur.route(other, params), TaskSurrogate::Route::Exact);
}

TEST(SurrogateRoute, AuditStreamIsSeedDeterministic)
{
    SurrogateParams params;
    params.tier = FidelityTier::Auto;
    params.min_calibration = 1;
    params.audit_period = 4.0;
    const std::uint32_t key =
        TaskSurrogate::classKey(KernelId::Disparity, InputSize::A,
                                false);

    auto routes = [&](std::uint64_t seed) {
        TaskSurrogate sur;
        sur.seed(seed);
        sur.observeExact(key, obs(1e-3, 2e-3));
        std::vector<TaskSurrogate::Route> out;
        for (int i = 0; i < 256; ++i)
            out.push_back(sur.route(key, params));
        return out;
    };
    const auto a = routes(12345);
    EXPECT_EQ(a, routes(12345));

    // With audit_period = 4, 256 calibrated dispatches see both kinds.
    EXPECT_TRUE(std::count(a.begin(), a.end(),
                           TaskSurrogate::Route::Audit) > 0);
    EXPECT_TRUE(std::count(a.begin(), a.end(),
                           TaskSurrogate::Route::Surrogate) > 0);
}

TEST(SurrogateAudit, OneStrikeDemotionIsSticky)
{
    TaskSurrogate sur;
    sur.seed(7);
    SurrogateParams params;
    params.tier = FidelityTier::Auto;
    params.min_calibration = 1;
    params.tolerance = 0.25;
    const std::uint32_t key =
        TaskSurrogate::classKey(KernelId::Sobel, InputSize::A, true);
    sur.observeExact(key, obs(1e-3, 2e-3));

    // Within tolerance: no demotion.
    sur.finishAudit(key, sur.predict(key), obs(1.1e-3, 2.1e-3), params);
    EXPECT_EQ(sur.demotions(), 0);

    // 2x service error: demoted, and a later good audit cannot
    // un-demote (nor a second bad one double-count).
    sur.finishAudit(key, sur.predict(key), obs(2e-3, 2e-3), params);
    EXPECT_EQ(sur.demotions(), 1);
    EXPECT_TRUE(sur.classes().at(key).demoted);
    EXPECT_GE(sur.classes().at(key).worst_audit_error, 0.5);
    sur.finishAudit(key, sur.predict(key), obs(1e-3, 2e-3), params);
    sur.finishAudit(key, sur.predict(key), obs(9e-3, 2e-3), params);
    EXPECT_EQ(sur.demotions(), 1);
    EXPECT_EQ(sur.route(key, params), TaskSurrogate::Route::Exact);
}

TEST(SurrogatePredict, TracksObservationsAndClamps)
{
    SurrogateClassModel m;
    for (int i = 0; i < 8; ++i) {
        SurrogateObservation ob = obs(1e-3, 2e-3);
        ob.sprint_exhausted = true;
        m.observe(ob);
    }
    const SurrogatePrediction p = m.predict();
    EXPECT_NEAR(p.service, 1e-3, 1e-9);
    EXPECT_NEAR(p.energy, 2e-3, 1e-9);
    EXPECT_LE(p.sprint_time, p.service);
    EXPECT_LE(p.sprint_energy, p.energy);
    EXPECT_TRUE(p.sprint_exhausted);
    EXPECT_FALSE(p.hardware_throttled);
    EXPECT_GE(p.service_p95, 0.0);

    // EWMA follows a drift the long-run mean lags.
    for (int i = 0; i < 16; ++i)
        m.observe(obs(4e-3, 8e-3));
    EXPECT_GT(m.predict().service, 3.5e-3);
    EXPECT_NEAR(m.predict().energy, m.predict().service * 2.0, 1e-6);
}

TEST(P2QuantileState, SaveRestoreContinuesBitExactly)
{
    P2Quantile a(0.9);
    for (int i = 0; i < 100; ++i)
        a.add((i * 7919) % 101);

    double state[P2Quantile::kStateSize];
    a.save(state);
    P2Quantile b;
    b.restore(state);
    EXPECT_EQ(a.value(), b.value());
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.quantile(), b.quantile());
    for (int i = 0; i < 50; ++i) {
        a.add(i * 0.37);
        b.add(i * 0.37);
    }
    EXPECT_EQ(a.value(), b.value());
}

TEST(ServiceEstimatorQuantiles, FallbackChainAndPessimism)
{
    ServiceEstimator est(/*prior=*/5e-3, /*quantile=*/0.95);
    TaskSnapshot task;
    task.priority = 0;

    // Nothing observed: both paths surface the prior.
    EXPECT_EQ(est.quantileIf(task, true), 5e-3);
    EXPECT_EQ(est.pessimisticIf(task, true), 5e-3);

    // Populate the non-sprinted cell with a skewed sample set.
    TaskSnapshot done = task;
    done.started = true;
    done.sprint_granted = false;
    for (int i = 0; i < 100; ++i)
        est.add(done, i % 10 == 9 ? 50e-3 : 1e-3);

    // The p95 path prices the tail the mean hides.
    EXPECT_GT(est.quantileIf(task, false), est.estimateIf(task, false));
    EXPECT_GE(est.pessimisticIf(task, false),
              est.estimateIf(task, false));
    // The sprint column is empty: fallback reaches the same-class
    // other-sprint cell, not the prior.
    EXPECT_EQ(est.quantileIf(task, true), est.quantileIf(task, false));
}

TEST(ServiceEstimatorQuantiles, SaveRestoreContinuesBitExactly)
{
    ServiceEstimator a(2e-3);
    TaskSnapshot task;
    task.started = true;
    for (int i = 0; i < 40; ++i) {
        task.priority = i % 2;
        task.sprint_granted = i % 3 == 0;
        a.add(task, 1e-4 * (1 + i % 7));
    }

    const std::vector<double> state = a.save();
    ASSERT_EQ(state.size(), ServiceEstimator::kStateSize);
    ServiceEstimator b(2e-3);
    b.restore(state.data());

    for (int pri : {0, 1}) {
        for (bool spr : {false, true}) {
            TaskSnapshot probe;
            probe.priority = pri;
            EXPECT_EQ(a.estimateIf(probe, spr), b.estimateIf(probe, spr));
            EXPECT_EQ(a.quantileIf(probe, spr), b.quantileIf(probe, spr));
        }
    }
    task.priority = 1;
    task.sprint_granted = true;
    a.add(task, 3e-4);
    b.add(task, 3e-4);
    EXPECT_EQ(a.quantileIf(task, true), b.quantileIf(task, true));
}

} // namespace
} // namespace csprint
