/**
 * @file
 * Tests for the quiescent thermal super-stepper
 * (ThermalNetwork::advanceQuiescent) and the thermal state
 * snapshot/restore used by scenario checkpoints: parity against plain
 * Heun stepping through a full melt -> refreeze cooldown (including a
 * gap that crosses the latent plateau mid-stream), interleaving with
 * step(), constant non-zero power, no-PCM packages, and bit-exact
 * resume from a ThermalNetworkState.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "sprint/simulation.hh"
#include "thermal/package.hh"
#include "thermal/validation.hh"

namespace csprint {
namespace {

/** Heat a package at @p power for @p duration, then cut the power. */
void
heatThenIdle(MobilePackageModel &pkg, Watts power, Seconds duration)
{
    pkg.reset();
    pkg.setDiePower(power);
    pkg.step(duration);
    pkg.setDiePower(0.0);
}

TEST(Quiescent, FullMeltRefreezeCooldownTracksHeun)
{
    // The long-horizon idle path of the scenario engine: a fully
    // molten scaled package cooling through refreeze to ambient
    // (the canonical cooldown also measured by BM_IdleCooling and
    // gate 2 of BENCH_scale.json). The quiescent path must track
    // plain Heun stepping at every sampled chunk boundary, within a
    // few multiples of the tolerance.
    const MobilePackageParams params =
        SprintConfig::scaledPackage(0.15, 7e-4);
    {
        MobilePackageModel melted(params);
        meltThenIdle(melted);
        ASSERT_DOUBLE_EQ(melted.meltFraction(), 1.0);
    }
    const QuiescentCooldownParity parity =
        runQuiescentCooldownParity(params);
    EXPECT_LT(parity.max_temp_dev, 0.05);
    EXPECT_LT(parity.max_mf_dev, 0.01);
    // Fully refrozen and settled at ambient.
    EXPECT_DOUBLE_EQ(parity.final_melt, 0.0);
    EXPECT_NEAR(parity.final_junction, params.ambient, 1e-3);
}

TEST(Quiescent, PlateauCrossingGapInOneCall)
{
    // One advanceQuiescent() call spanning the entire refreeze
    // plateau plus the sensible tail: the plateau-corner fallback and
    // the super-steps must compose into the same endpoint Heun
    // reaches.
    const MobilePackageParams params =
        SprintConfig::scaledPackage(0.15, 7e-4);
    MobilePackageModel heun(params), fast(params);
    heatThenIdle(heun, 14.0, 1.5e-3);
    heatThenIdle(fast, 14.0, 1.5e-3);
    const double melt0 = heun.meltFraction();
    ASSERT_GT(melt0, 0.2);  // partially molten: starts on the plateau

    const Seconds gap = 0.5;
    heun.step(gap);
    fast.stepQuiescent(gap, 0.01);
    EXPECT_NEAR(fast.junctionTemp(), heun.junctionTemp(), 0.05);
    EXPECT_DOUBLE_EQ(fast.meltFraction(), 0.0);
    EXPECT_DOUBLE_EQ(heun.meltFraction(), 0.0);
}

TEST(Quiescent, ConstantNonZeroPowerHoldsSteadyState)
{
    // "Quiescent" means constant power, not necessarily zero: a
    // package held at a sub-TDP load must converge to the same steady
    // state the exact path reaches.
    const MobilePackageParams params = MobilePackageParams::phonePcm();
    MobilePackageModel heun(params), fast(params);
    heun.reset();
    fast.reset();
    const Watts load = 0.5;  // well below sustainable TDP
    heun.setDiePower(load);
    fast.setDiePower(load);
    heun.step(500.0);
    fast.stepQuiescent(500.0, 0.01);
    EXPECT_NEAR(fast.junctionTemp(), heun.junctionTemp(), 0.05);
    EXPECT_DOUBLE_EQ(fast.meltFraction(), heun.meltFraction());
}

TEST(Quiescent, NoPcmPackage)
{
    const MobilePackageParams params =
        MobilePackageParams::phoneNoPcm();
    MobilePackageModel heun(params), fast(params);
    heatThenIdle(heun, 3.0, 10.0);
    heatThenIdle(fast, 3.0, 10.0);
    const Seconds gap = 200.0;
    const int samples = 32;
    double max_dev = 0.0;
    for (int i = 0; i < samples; ++i) {
        heun.step(gap / samples);
        fast.stepQuiescent(gap / samples, 0.01);
        max_dev = std::max(max_dev, std::abs(heun.junctionTemp() -
                                             fast.junctionTemp()));
    }
    EXPECT_LT(max_dev, 0.05);
}

TEST(Quiescent, InterleavesWithExactStepping)
{
    // step() and stepQuiescent() share the same state; alternating
    // them must stay near the pure-exact trajectory.
    const MobilePackageParams params =
        SprintConfig::scaledPackage(0.015, 7e-4);
    MobilePackageModel exact(params), mixed(params);
    heatThenIdle(exact, 10.0, 1e-3);
    heatThenIdle(mixed, 10.0, 1e-3);
    for (int i = 0; i < 8; ++i) {
        exact.step(5e-3);
        exact.step(5e-3);
        mixed.step(5e-3);
        mixed.stepQuiescent(5e-3, 0.01);
    }
    EXPECT_NEAR(mixed.junctionTemp(), exact.junctionTemp(), 0.05);
}

TEST(Quiescent, ZeroDurationIsANoOp)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    heatThenIdle(pkg, 10.0, 1.0);
    const Celsius before = pkg.junctionTemp();
    pkg.stepQuiescent(0.0, 0.01);
    EXPECT_DOUBLE_EQ(pkg.junctionTemp(), before);
}

TEST(ThermalSnapshot, RestoreResumesBitExactly)
{
    // The scenario-checkpoint contract: a package rebuilt from params
    // and restored from a snapshot must continue bit-identically to
    // the original, through both integration paths.
    const MobilePackageParams params =
        SprintConfig::scaledPackage(0.15, 7e-4);
    MobilePackageModel a(params);
    heatThenIdle(a, 14.0, 1.2e-3);
    a.step(1e-3);

    const ThermalNetworkState snap = a.saveState();
    MobilePackageModel b(params);
    b.restoreState(snap);
    EXPECT_DOUBLE_EQ(b.junctionTemp(), a.junctionTemp());
    EXPECT_DOUBLE_EQ(b.meltFraction(), a.meltFraction());

    for (int i = 0; i < 5; ++i) {
        a.step(2e-3);
        b.step(2e-3);
        ASSERT_DOUBLE_EQ(b.junctionTemp(), a.junctionTemp());
        ASSERT_DOUBLE_EQ(b.meltFraction(), a.meltFraction());
    }
    a.stepQuiescent(0.1, 0.01);
    b.stepQuiescent(0.1, 0.01);
    EXPECT_DOUBLE_EQ(b.junctionTemp(), a.junctionTemp());
    EXPECT_DOUBLE_EQ(b.meltFraction(), a.meltFraction());
}

TEST(ThermalSnapshot, SnapshotCarriesInjectedPower)
{
    MobilePackageModel a(MobilePackageParams::phonePcm());
    a.reset();
    a.setDiePower(7.5);
    const ThermalNetworkState snap = a.saveState();
    MobilePackageModel b(MobilePackageParams::phonePcm());
    b.reset();
    b.restoreState(snap);
    EXPECT_DOUBLE_EQ(b.network().power(b.junction()), 7.5);
}

} // namespace
} // namespace csprint
