/**
 * @file
 * Tests for the op-stream abstraction and the MicroOp helpers.
 */

#include <gtest/gtest.h>

#include "archsim/op.hh"
#include "archsim/opstream.hh"
#include "archsim/program.hh"

namespace csprint {
namespace {

TEST(MicroOp, FactoryHelpers)
{
    EXPECT_EQ(MicroOp::intAlu().kind(), OpKind::IntAlu);
    EXPECT_EQ(MicroOp::fpAlu().kind(), OpKind::FpAlu);
    EXPECT_EQ(MicroOp::branch().kind(), OpKind::Branch);
    EXPECT_EQ(MicroOp::pause().kind(), OpKind::Pause);
    EXPECT_EQ(MicroOp::load(0x1234).kind(), OpKind::Load);
    EXPECT_EQ(MicroOp::load(0x1234).addr(), 0x1234u);
    EXPECT_EQ(MicroOp::store(0x99).addr(), 0x99u);
    EXPECT_EQ(MicroOp::lockAcquire(3).addr(), 3u);
    EXPECT_EQ(MicroOp::lockRelease(3).kind(), OpKind::LockRelease);
}

TEST(VectorOpStream, DrainsInOrder)
{
    VectorOpStream s({MicroOp::intAlu(), MicroOp::load(64),
                      MicroOp::store(128)});
    MicroOp op;
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.kind(), OpKind::IntAlu);
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.addr(), 64u);
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.addr(), 128u);
    EXPECT_FALSE(s.next(op));
    EXPECT_FALSE(s.next(op));  // stays exhausted
}

TEST(VectorOpStream, EmptyIsImmediatelyExhausted)
{
    VectorOpStream s({});
    MicroOp op;
    EXPECT_FALSE(s.next(op));
}

TEST(ChunkedOpStream, GeneratesAllChunks)
{
    ChunkedOpStream s(4, [](std::size_t chunk,
                            std::vector<MicroOp> &out) {
        out.clear();
        for (std::size_t i = 0; i <= chunk; ++i)
            out.push_back(MicroOp::load(chunk * 100 + i));
    });
    MicroOp op;
    std::size_t count = 0;
    std::uint64_t last = 0;
    while (s.next(op)) {
        ++count;
        last = op.addr();
    }
    EXPECT_EQ(count, 1u + 2u + 3u + 4u);
    EXPECT_EQ(last, 303u);
}

TEST(ChunkedOpStream, SkipsEmptyChunks)
{
    // Chunks 0 and 2 are empty; the stream must not emit garbage or
    // terminate early.
    ChunkedOpStream s(4, [](std::size_t chunk,
                            std::vector<MicroOp> &out) {
        out.clear();
        if (chunk % 2 == 1)
            out.push_back(MicroOp::intAlu());
    });
    MicroOp op;
    std::size_t count = 0;
    while (s.next(op))
        ++count;
    EXPECT_EQ(count, 2u);
}

TEST(ChunkedOpStream, AllChunksEmpty)
{
    ChunkedOpStream s(8, [](std::size_t, std::vector<MicroOp> &) {});
    MicroOp op;
    EXPECT_FALSE(s.next(op));
}

TEST(ChunkedOpStream, ZeroChunks)
{
    ChunkedOpStream s(0, [](std::size_t, std::vector<MicroOp> &out) {
        out.clear();
        out.push_back(MicroOp::intAlu());
    });
    MicroOp op;
    EXPECT_FALSE(s.next(op));
}

TEST(OpStreamFill, VectorBulkMatchesNextOrder)
{
    std::vector<MicroOp> ref;
    for (int i = 0; i < 257; ++i)
        ref.push_back(MicroOp::load(64 * i));
    VectorOpStream a(ref);
    VectorOpStream b(ref);
    std::vector<MicroOp> got;
    MicroOp buf[100];
    std::size_t n;
    while ((n = a.fill(buf, 100)) > 0)
        got.insert(got.end(), buf, buf + n);
    ASSERT_EQ(got.size(), ref.size());
    MicroOp op;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_TRUE(b.next(op));
        EXPECT_EQ(got[i].bits, op.bits);
    }
    EXPECT_FALSE(b.next(op));
    EXPECT_EQ(a.fill(buf, 100), 0u);  // stays exhausted
}

TEST(OpStreamFill, ChunkedBulkHandsOutWholeChunks)
{
    auto make = [] {
        return ChunkedOpStream(
            3, [](std::size_t chunk, std::vector<MicroOp> &out) {
                out.clear();
                for (std::size_t i = 0; i < 5 + chunk; ++i)
                    out.push_back(MicroOp::load(chunk * 1000 + i));
            });
    };
    // fill() never returns zero while ops remain, and preserves order.
    ChunkedOpStream s = make();
    ChunkedOpStream r = make();
    MicroOp buf[4];
    std::vector<MicroOp> got;
    std::size_t n;
    while ((n = s.fill(buf, 4)) > 0)
        got.insert(got.end(), buf, buf + n);
    MicroOp op;
    std::size_t i = 0;
    while (r.next(op)) {
        ASSERT_LT(i, got.size());
        EXPECT_EQ(got[i++].bits, op.bits);
    }
    EXPECT_EQ(i, got.size());

    // fillInto() hands over whole chunks (possibly by swapping
    // storage) and reports exhaustion with zero.
    ChunkedOpStream s2 = make();
    std::vector<MicroOp> window;
    std::size_t total = 0;
    while ((n = s2.fillInto(window)) > 0) {
        ASSERT_GE(window.size(), n);
        total += n;
    }
    EXPECT_EQ(total, 5u + 6u + 7u);
}

TEST(OpStreamFill, DefaultFillIntoUsesNext)
{
    // A stream that only implements next() still works through the
    // bulk interface.
    class CountingStream : public OpStream
    {
      public:
        bool next(MicroOp &op) override
        {
            if (left == 0)
                return false;
            --left;
            op = MicroOp::intAlu();
            return true;
        }
        int left = 10;
    };
    CountingStream s;
    std::vector<MicroOp> window;
    EXPECT_EQ(s.fillInto(window), 10u);
    EXPECT_EQ(s.fillInto(window), 0u);
}

TEST(AddressAllocator, DisjointLineAlignedRanges)
{
    AddressAllocator alloc;
    const std::uint64_t a = alloc.alloc(100);
    const std::uint64_t b = alloc.alloc(1);
    const std::uint64_t c = alloc.alloc(4096);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_EQ(c % 64, 0u);
    // No overlap, and at least one guard line between buffers.
    EXPECT_GE(b, a + 100);
    EXPECT_GE(b - (a + 100), 0u);
    EXPECT_GE(c, b + 1);
    EXPECT_NE(a / 64, b / 64);  // never share a cache line
    EXPECT_NE(b / 64, c / 64);
}

TEST(OpKindNames, AllDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumOpKinds; ++i)
        names.insert(opKindName(static_cast<OpKind>(i)));
    EXPECT_EQ(names.size(), kNumOpKinds);
}

} // namespace
} // namespace csprint
