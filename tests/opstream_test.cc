/**
 * @file
 * Tests for the op-stream abstraction and the MicroOp helpers.
 */

#include <gtest/gtest.h>

#include "archsim/op.hh"
#include "archsim/opstream.hh"
#include "archsim/program.hh"

namespace csprint {
namespace {

TEST(MicroOp, FactoryHelpers)
{
    EXPECT_EQ(MicroOp::intAlu().kind, OpKind::IntAlu);
    EXPECT_EQ(MicroOp::fpAlu().kind, OpKind::FpAlu);
    EXPECT_EQ(MicroOp::branch().kind, OpKind::Branch);
    EXPECT_EQ(MicroOp::pause().kind, OpKind::Pause);
    EXPECT_EQ(MicroOp::load(0x1234).kind, OpKind::Load);
    EXPECT_EQ(MicroOp::load(0x1234).addr, 0x1234u);
    EXPECT_EQ(MicroOp::store(0x99).addr, 0x99u);
    EXPECT_EQ(MicroOp::lockAcquire(3).addr, 3u);
    EXPECT_EQ(MicroOp::lockRelease(3).kind, OpKind::LockRelease);
}

TEST(VectorOpStream, DrainsInOrder)
{
    VectorOpStream s({MicroOp::intAlu(), MicroOp::load(64),
                      MicroOp::store(128)});
    MicroOp op;
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.kind, OpKind::IntAlu);
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.addr, 64u);
    ASSERT_TRUE(s.next(op));
    EXPECT_EQ(op.addr, 128u);
    EXPECT_FALSE(s.next(op));
    EXPECT_FALSE(s.next(op));  // stays exhausted
}

TEST(VectorOpStream, EmptyIsImmediatelyExhausted)
{
    VectorOpStream s({});
    MicroOp op;
    EXPECT_FALSE(s.next(op));
}

TEST(ChunkedOpStream, GeneratesAllChunks)
{
    ChunkedOpStream s(4, [](std::size_t chunk,
                            std::vector<MicroOp> &out) {
        for (std::size_t i = 0; i <= chunk; ++i)
            out.push_back(MicroOp::load(chunk * 100 + i));
    });
    MicroOp op;
    std::size_t count = 0;
    std::uint64_t last = 0;
    while (s.next(op)) {
        ++count;
        last = op.addr;
    }
    EXPECT_EQ(count, 1u + 2u + 3u + 4u);
    EXPECT_EQ(last, 303u);
}

TEST(ChunkedOpStream, SkipsEmptyChunks)
{
    // Chunks 0 and 2 are empty; the stream must not emit garbage or
    // terminate early.
    ChunkedOpStream s(4, [](std::size_t chunk,
                            std::vector<MicroOp> &out) {
        if (chunk % 2 == 1)
            out.push_back(MicroOp::intAlu());
    });
    MicroOp op;
    std::size_t count = 0;
    while (s.next(op))
        ++count;
    EXPECT_EQ(count, 2u);
}

TEST(ChunkedOpStream, AllChunksEmpty)
{
    ChunkedOpStream s(8, [](std::size_t, std::vector<MicroOp> &) {});
    MicroOp op;
    EXPECT_FALSE(s.next(op));
}

TEST(ChunkedOpStream, ZeroChunks)
{
    ChunkedOpStream s(0, [](std::size_t, std::vector<MicroOp> &out) {
        out.push_back(MicroOp::intAlu());
    });
    MicroOp op;
    EXPECT_FALSE(s.next(op));
}

TEST(AddressAllocator, DisjointLineAlignedRanges)
{
    AddressAllocator alloc;
    const std::uint64_t a = alloc.alloc(100);
    const std::uint64_t b = alloc.alloc(1);
    const std::uint64_t c = alloc.alloc(4096);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_EQ(c % 64, 0u);
    // No overlap, and at least one guard line between buffers.
    EXPECT_GE(b, a + 100);
    EXPECT_GE(b - (a + 100), 0u);
    EXPECT_GE(c, b + 1);
    EXPECT_NE(a / 64, b / 64);  // never share a cache line
    EXPECT_NE(b / 64, c / 64);
}

TEST(OpKindNames, AllDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumOpKinds; ++i)
        names.insert(opKindName(static_cast<OpKind>(i)));
    EXPECT_EQ(names.size(), kNumOpKinds);
}

} // namespace
} // namespace csprint
