/**
 * @file
 * Tests for the power-grid substrate: the dense LU solver, the MNA
 * transient circuit simulator against closed-form RC/RL responses,
 * DC initialization, and the Figure 5/6 power-delivery network.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "powergrid/circuit.hh"
#include "powergrid/linalg.hh"
#include "powergrid/pdn.hh"

namespace csprint {
namespace {

TEST(DenseLu, SolvesSmallSystem)
{
    // [2 1; 1 3] x = [5; 10] -> x = [1; 3].
    Matrix m(2);
    m.at(0, 0) = 2;
    m.at(0, 1) = 1;
    m.at(1, 0) = 1;
    m.at(1, 1) = 3;
    DenseLu lu;
    ASSERT_TRUE(lu.factor(m));
    std::vector<double> b = {5, 10};
    lu.solve(b);
    EXPECT_NEAR(b[0], 1.0, 1e-12);
    EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(DenseLu, PivotsZeroDiagonal)
{
    Matrix m(2);
    m.at(0, 0) = 0;
    m.at(0, 1) = 1;
    m.at(1, 0) = 1;
    m.at(1, 1) = 0;
    DenseLu lu;
    ASSERT_TRUE(lu.factor(m));
    std::vector<double> b = {2, 3};
    lu.solve(b);
    EXPECT_NEAR(b[0], 3.0, 1e-12);
    EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(DenseLu, DetectsSingular)
{
    Matrix m(2);
    m.at(0, 0) = 1;
    m.at(0, 1) = 2;
    m.at(1, 0) = 2;
    m.at(1, 1) = 4;
    DenseLu lu;
    EXPECT_FALSE(lu.factor(m));
}

TEST(Circuit, ResistorDividerDc)
{
    Circuit ckt;
    const auto top = ckt.addNode("top");
    const auto mid = ckt.addNode("mid");
    ckt.addVoltageSource(top, ckt.ground(), 10.0);
    ckt.addResistor(top, mid, 1000.0);
    ckt.addResistor(mid, ckt.ground(), 1000.0);
    ckt.beginTransient(1e-6);
    ckt.step();
    EXPECT_NEAR(ckt.voltage(mid), 5.0, 1e-9);
}

TEST(Circuit, DcInitializationChargesCapacitor)
{
    // The capacitor must start at the divider voltage, not at zero:
    // no power-on transient.
    Circuit ckt;
    const auto top = ckt.addNode("top");
    const auto mid = ckt.addNode("mid");
    ckt.addVoltageSource(top, ckt.ground(), 10.0);
    ckt.addResistor(top, mid, 1000.0);
    ckt.addResistor(mid, ckt.ground(), 1000.0);
    ckt.addCapacitor(mid, ckt.ground(), 1e-6);
    ckt.beginTransient(1e-6);
    for (int i = 0; i < 10; ++i)
        ckt.step();
    EXPECT_NEAR(ckt.voltage(mid), 5.0, 1e-6);
}

TEST(Circuit, RcStepResponseMatchesClosedForm)
{
    // Series R from a source to a capacitor, driven by a current
    // source step into the cap node: v(t) = I*R_th*(1-exp(-t/RC)).
    Circuit ckt;
    const auto n = ckt.addNode("n");
    ckt.addResistor(n, ckt.ground(), 100.0);
    ckt.addCapacitor(n, ckt.ground(), 1e-6);
    ckt.addCurrentSource(ckt.ground(), n,
                         [](Seconds t) { return t > 0.0 ? 0.01 : 0.0; });
    ckt.beginTransient(1e-7);
    const double tau = 100.0 * 1e-6;
    const int steps = static_cast<int>(tau / 1e-7);
    for (int i = 0; i < steps; ++i)
        ckt.step();
    EXPECT_NEAR(ckt.voltage(n), 1.0 * (1.0 - std::exp(-1.0)), 5e-3);
}

TEST(Circuit, RlStepResponseMatchesClosedForm)
{
    // V source, series R, series L to ground: i(t) through the
    // inductor -> v across R settles as current builds with tau=L/R.
    Circuit ckt;
    const auto src = ckt.addNode("src");
    const auto mid = ckt.addNode("mid");
    ckt.addVoltageSource(src, ckt.ground(), 1.0);
    ckt.addResistor(src, mid, 10.0);
    ckt.addInductor(mid, ckt.ground(), 1e-3);
    // DC init shorts the inductor: i0 = 0.1 A, v(mid) = 0.
    ckt.beginTransient(1e-6);
    ckt.step();
    EXPECT_NEAR(ckt.voltage(mid), 0.0, 1e-6);
}

TEST(Circuit, LcOscillationPreservesAmplitude)
{
    // Trapezoidal integration is non-dissipative: an undamped LC tank
    // started from a charged cap must keep its amplitude.
    Circuit ckt;
    const auto n = ckt.addNode("n");
    ckt.addCapacitor(n, ckt.ground(), 1e-6);
    ckt.addInductor(n, ckt.ground(), 1e-3);
    // Kick the tank with a brief current pulse.
    ckt.addCurrentSource(ckt.ground(), n, [](Seconds t) {
        return t < 1e-5 ? 0.1 : 0.0;
    });
    ckt.beginTransient(1e-6);
    double peak_early = 0.0, peak_late = 0.0;
    for (int i = 0; i < 2000; ++i) {
        ckt.step();
        const double v = std::abs(ckt.voltage(n));
        if (i < 1000)
            peak_early = std::max(peak_early, v);
        else
            peak_late = std::max(peak_late, v);
    }
    EXPECT_GT(peak_early, 0.0);
    EXPECT_NEAR(peak_late, peak_early, 0.05 * peak_early);
}

// --- Power-delivery network (Figures 5 and 6) ---

TEST(Pdn, SteadyStateDroopIsSmall)
{
    // With all 16 cores on, the settled supply sits ~10 mV below
    // nominal (paper Section 5.3).
    PdnParams params = PdnParams::paper16();
    PowerDeliveryNetwork pdn(params,
                             ActivationSchedule::abrupt(2e-6));
    const SupplyTrace trace = pdn.simulate(400e-6, 2e-9, 200e-9);
    const SupplyMetrics m =
        computeSupplyMetrics(trace, params.vdd, 0.02, 2e-6);
    EXPECT_GT(m.settled, params.vdd - 0.03);
    EXPECT_LT(m.settled, params.vdd);
}

TEST(Pdn, AbruptActivationViolatesTolerance)
{
    // Figure 6(a): simultaneous activation bounces the rail below
    // 98% of nominal.
    PdnParams params = PdnParams::paper16();
    PowerDeliveryNetwork pdn(params,
                             ActivationSchedule::abrupt(2e-6));
    const SupplyTrace trace = pdn.simulate(100e-6, 1e-9, 20e-9);
    const SupplyMetrics m =
        computeSupplyMetrics(trace, params.vdd, 0.02, 2e-6);
    EXPECT_FALSE(m.within_tolerance);
    EXPECT_LT(m.min_voltage, 0.98 * params.vdd);
}

TEST(Pdn, SlowRampStaysWithinTolerance)
{
    // Figure 6(c): a 128 us ramp keeps the rails in spec.
    PdnParams params = PdnParams::paper16();
    PowerDeliveryNetwork pdn(
        params, ActivationSchedule::linearRamp(128e-6, 2e-6));
    const SupplyTrace trace = pdn.simulate(400e-6, 2e-9, 200e-9);
    const SupplyMetrics m =
        computeSupplyMetrics(trace, params.vdd, 0.02, 2e-6);
    EXPECT_TRUE(m.within_tolerance)
        << "min " << m.min_voltage << " settled " << m.settled;
}

TEST(Pdn, FastRampWorseThanSlowRamp)
{
    // Figure 6(b) vs 6(c): the 1.28 us ramp undershoots more than
    // the 128 us ramp.
    PdnParams params = PdnParams::paper16();
    PowerDeliveryNetwork fast(
        params, ActivationSchedule::linearRamp(1.28e-6, 2e-6));
    PowerDeliveryNetwork slow(
        params, ActivationSchedule::linearRamp(128e-6, 2e-6));
    const auto m_fast = computeSupplyMetrics(
        fast.simulate(100e-6, 1e-9, 50e-9), params.vdd, 0.02, 2e-6);
    const auto m_slow = computeSupplyMetrics(
        slow.simulate(400e-6, 2e-9, 200e-9), params.vdd, 0.02, 2e-6);
    EXPECT_LT(m_fast.min_voltage, m_slow.min_voltage);
}

TEST(Pdn, ScheduleStaggersCores)
{
    const auto sched = ActivationSchedule::linearRamp(150e-6, 0.0);
    EXPECT_DOUBLE_EQ(sched.coreOnTime(0, 16), 0.0);
    EXPECT_DOUBLE_EQ(sched.coreOnTime(15, 16), 150e-6);
    EXPECT_LT(sched.coreOnTime(7, 16), sched.coreOnTime(8, 16));
    // Current rises from zero to the average after the rise time.
    EXPECT_DOUBLE_EQ(sched.coreCurrent(0, 16, 0.5, -1e-9), 0.0);
    EXPECT_DOUBLE_EQ(sched.coreCurrent(0, 16, 0.5, 1e-3), 0.5);
}

TEST(Pdn, MoreCoresDroopMore)
{
    PdnParams p4 = PdnParams::paper16();
    p4.num_cores = 4;
    PdnParams p16 = PdnParams::paper16();
    PowerDeliveryNetwork small(p4, ActivationSchedule::abrupt(2e-6));
    PowerDeliveryNetwork large(p16, ActivationSchedule::abrupt(2e-6));
    const auto m4 = computeSupplyMetrics(
        small.simulate(60e-6, 1e-9, 50e-9), p4.vdd, 0.02, 2e-6);
    const auto m16 = computeSupplyMetrics(
        large.simulate(60e-6, 1e-9, 50e-9), p16.vdd, 0.02, 2e-6);
    EXPECT_LT(m16.min_voltage, m4.min_voltage);
}

} // namespace
} // namespace csprint
