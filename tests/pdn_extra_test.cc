/**
 * @file
 * Additional power-delivery tests: clock-ripple core loads, schedule
 * degenerate cases, metric computation on synthetic traces, and
 * network composition details.
 */

#include <gtest/gtest.h>

#include "powergrid/circuit.hh"
#include "powergrid/pdn.hh"

namespace csprint {
namespace {

TEST(PdnExtra, SingleCoreNetworkRuns)
{
    PdnParams params = PdnParams::paper16();
    params.num_cores = 1;
    PowerDeliveryNetwork pdn(params, ActivationSchedule::abrupt(1e-6));
    const SupplyTrace trace = pdn.simulate(20e-6, 1e-9, 100e-9);
    const SupplyMetrics m =
        computeSupplyMetrics(trace, params.vdd, 0.02, 1e-6);
    // Even one core's 0.5 A/ns step rings through its 32 pH bump
    // inductance, but far less than the 16-core dip, and the static
    // droop of a single core is tiny.
    EXPECT_GT(m.min_voltage, 0.97 * params.vdd);
    // 0.5 A through ~7 mOhm of rails: a few millivolts of droop.
    EXPECT_GT(m.settled, params.vdd - 5e-3);

    PdnParams full = PdnParams::paper16();
    PowerDeliveryNetwork pdn16(full, ActivationSchedule::abrupt(1e-6));
    const SupplyMetrics m16 = computeSupplyMetrics(
        pdn16.simulate(20e-6, 1e-9, 100e-9), full.vdd, 0.02, 1e-6);
    EXPECT_GT(m.min_voltage, m16.min_voltage);
}

TEST(PdnExtra, ScheduleSingleCoreDegeneratesToStart)
{
    const auto sched = ActivationSchedule::linearRamp(100e-6, 5e-6);
    EXPECT_DOUBLE_EQ(sched.coreOnTime(0, 1), 5e-6);
}

TEST(PdnExtra, CoreCurrentRampIsLinear)
{
    ActivationSchedule sched = ActivationSchedule::abrupt(0.0);
    sched.core_rise = 10e-9;
    EXPECT_DOUBLE_EQ(sched.coreCurrent(0, 16, 1.0, 5e-9), 0.5);
    EXPECT_DOUBLE_EQ(sched.coreCurrent(0, 16, 1.0, 20e-9), 1.0);
}

TEST(PdnExtra, ClockRippleIncreasesWorstCaseDip)
{
    PdnParams smooth = PdnParams::paper16();
    PdnParams rippled = smooth;
    rippled.clock_ripple = true;
    rippled.clock_ripple_freq = 20e6;  // resolvable at dt = 1 ns

    PowerDeliveryNetwork a(smooth,
                           ActivationSchedule::linearRamp(16e-6, 2e-6));
    PowerDeliveryNetwork b(rippled,
                           ActivationSchedule::linearRamp(16e-6, 2e-6));
    const auto ma = computeSupplyMetrics(
        a.simulate(60e-6, 1e-9, 50e-9), smooth.vdd, 0.02, 2e-6);
    const auto mb = computeSupplyMetrics(
        b.simulate(60e-6, 1e-9, 50e-9), rippled.vdd, 0.02, 2e-6);
    EXPECT_LT(mb.min_voltage, ma.min_voltage);
}

TEST(PdnExtra, MetricsOnSyntheticTrace)
{
    SupplyTrace trace;
    trace.dt = 1e-9;
    trace.worst_supply.add(0.0, 1.2);
    trace.worst_supply.add(1e-6, 1.15);   // dip
    trace.worst_supply.add(2e-6, 1.21);   // overshoot
    trace.worst_supply.add(3e-6, 1.19);
    trace.worst_supply.add(4e-6, 1.19);
    const SupplyMetrics m =
        computeSupplyMetrics(trace, 1.2, 0.02, 0.0);
    EXPECT_DOUBLE_EQ(m.min_voltage, 1.15);
    EXPECT_DOUBLE_EQ(m.max_voltage, 1.21);
    EXPECT_DOUBLE_EQ(m.settled, 1.19);
    EXPECT_FALSE(m.within_tolerance);  // 1.15 < 1.176
}

TEST(PdnExtra, DecapComposesSeriesRlc)
{
    // addDecap with ESR+ESL creates two internal nodes; with zero
    // ESR/ESL it degenerates to a bare capacitor.
    Circuit a;
    const auto n1 = a.addNode("n");
    a.addDecap(n1, a.ground(), 1e-6, 0.0, 0.0);
    const std::size_t bare_nodes = a.nodeCount();

    Circuit b;
    const auto n2 = b.addNode("n");
    b.addDecap(n2, b.ground(), 1e-6, 1e-3, 1e-9);
    EXPECT_EQ(b.nodeCount(), bare_nodes + 2);
}

TEST(PdnExtra, VoltageBetweenIsAntisymmetric)
{
    Circuit ckt;
    const auto top = ckt.addNode("top");
    const auto mid = ckt.addNode("mid");
    ckt.addVoltageSource(top, ckt.ground(), 6.0);
    ckt.addResistor(top, mid, 100.0);
    ckt.addResistor(mid, ckt.ground(), 200.0);
    ckt.beginTransient(1e-6);
    ckt.step();
    EXPECT_NEAR(ckt.voltageBetween(top, mid),
                -ckt.voltageBetween(mid, top), 1e-12);
    EXPECT_NEAR(ckt.voltageBetween(top, mid), 2.0, 1e-9);
}

TEST(PdnExtra, TransientTimeAdvances)
{
    Circuit ckt;
    const auto n = ckt.addNode("n");
    ckt.addResistor(n, ckt.ground(), 1.0);
    ckt.addVoltageSource(n, ckt.ground(), 1.0);
    ckt.beginTransient(2e-9);
    EXPECT_DOUBLE_EQ(ckt.time(), 0.0);
    for (int i = 0; i < 5; ++i)
        ckt.step();
    EXPECT_NEAR(ckt.time(), 10e-9, 1e-15);
}

TEST(PdnExtra, SupplyTraceCoversWholeWindow)
{
    PdnParams params = PdnParams::paper16();
    PowerDeliveryNetwork pdn(params, ActivationSchedule::abrupt(1e-6));
    const SupplyTrace trace = pdn.simulate(10e-6, 1e-9, 1e-6);
    ASSERT_GE(trace.worst_supply.size(), 10u);
    EXPECT_NEAR(trace.worst_supply.timeAt(trace.worst_supply.size() - 1),
                10e-6, 0.2e-6);
}

} // namespace
} // namespace csprint
