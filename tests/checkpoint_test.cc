/**
 * @file
 * Property tests for the portable checkpoint serializer
 * (sprint/checkpoint.hh): serialize -> deserialize -> serialize is
 * byte-identical across scenario families (preemption mid-flight, a
 * 128-core machine with an overflowed sparse directory, mid-melt PCM,
 * a warm cache chain); a run resumed from bytes at every boundary
 * matches the uninterrupted run bit-for-bit; every single-byte
 * truncation prefix and sampled bit flip fails with a typed
 * CheckpointError (never UB); the deserialized Poisson arrival cursor
 * continues the exact stream; and CheckpointStore survives a corrupt
 * newest checkpoint via its retained predecessor.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "sprint/checkpoint.hh"
#include "sprint/experiment.hh"
#include "sprint/scenario.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

ScenarioConfig
baseScenario(SprintPolicyKind kind, ArrivalPattern pattern, int tasks)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(16, kSmallPcm);
    cfg.policy.kind = kind;
    cfg.policy.pacing_period = 2.5e-3;
    cfg.pattern = pattern;
    cfg.num_tasks = tasks;
    cfg.period = 2.5e-3;
    cfg.kernel = KernelId::Sobel;
    cfg.size = InputSize::A;
    cfg.seed = 7;
    return cfg;
}

/** The preemption bench in miniature: arrivals land mid-heavy-task. */
ScenarioConfig
preemptiveScenario(int tasks)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::Qos,
                                      ArrivalPattern::Periodic, tasks);
    cfg.platform = SprintConfig::parallelSprint(16, kFullPcm);
    cfg.policy.service_prior = 2e-3;
    cfg.policy.qos_slack = 1.5;
    cfg.period = 2e-4;
    cfg.seed = 42;
    cfg.task_tuner = [seed = cfg.seed](ScenarioTask &task) {
        const std::uint64_t index = task.seed - seed;
        if (index == 0) {
            task.priority = 0;
            task.size = InputSize::C;
            task.deadline = 0.0;
        } else {
            task.priority = 1;
            task.size = InputSize::A;
            task.deadline = 2e-3;
        }
    };
    return cfg;
}

void
expectResultsEqual(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
    EXPECT_EQ(a.sprints_granted, b.sprints_granted);
    EXPECT_EQ(a.sprints_denied, b.sprints_denied);
    EXPECT_EQ(a.sprints_exhausted, b.sprints_exhausted);
    EXPECT_EQ(a.hardware_throttles, b.hardware_throttles);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.tasks_dropped, b.tasks_dropped);
    EXPECT_EQ(a.deadlines_met, b.deadlines_met);
    EXPECT_EQ(a.deadlines_missed, b.deadlines_missed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.p50_response, b.p50_response);
    EXPECT_EQ(a.p95_response, b.p95_response);
    EXPECT_EQ(a.peak_junction, b.peak_junction);
    EXPECT_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.total_sprint_time, b.total_sprint_time);
    EXPECT_EQ(a.total_sprint_energy, b.total_sprint_energy);
    EXPECT_EQ(a.peak_melt_fraction, b.peak_melt_fraction);
    EXPECT_EQ(a.sprint_rest_cycles, b.sprint_rest_cycles);
    EXPECT_EQ(a.surrogate_tasks, b.surrogate_tasks);
    EXPECT_EQ(a.audit_tasks, b.audit_tasks);
    EXPECT_EQ(a.surrogate_demotions, b.surrogate_demotions);
    EXPECT_EQ(a.junction_trace.timeData(), b.junction_trace.timeData());
    EXPECT_EQ(a.junction_trace.valueData(), b.junction_trace.valueData());
    EXPECT_EQ(a.power_trace.timeData(), b.power_trace.timeData());
    EXPECT_EQ(a.power_trace.valueData(), b.power_trace.valueData());
    EXPECT_EQ(a.melt_trace.timeData(), b.melt_trace.timeData());
    EXPECT_EQ(a.melt_trace.valueData(), b.melt_trace.valueData());
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        EXPECT_EQ(a.tasks[i].arrival, b.tasks[i].arrival);
        EXPECT_EQ(a.tasks[i].start, b.tasks[i].start);
        EXPECT_EQ(a.tasks[i].finish, b.tasks[i].finish);
        EXPECT_EQ(a.tasks[i].response, b.tasks[i].response);
        EXPECT_EQ(a.tasks[i].sprint_granted, b.tasks[i].sprint_granted);
        EXPECT_EQ(a.tasks[i].preemptions, b.tasks[i].preemptions);
        EXPECT_EQ(a.tasks[i].deadline_met, b.tasks[i].deadline_met);
        EXPECT_EQ(a.tasks[i].melt_at_end, b.tasks[i].melt_at_end);
        EXPECT_EQ(a.tasks[i].run.dynamic_energy,
                  b.tasks[i].run.dynamic_energy);
        EXPECT_EQ(a.tasks[i].run.machine.cycles,
                  b.tasks[i].run.machine.cycles);
    }
}

/**
 * The core property: advance to a boundary, serialize, deserialize,
 * serialize again (bytes identical), then drive the original and the
 * restored copy to completion and compare everything.
 */
void
roundTripAndFinish(const ScenarioConfig &cfg,
                   std::uint64_t advance_first)
{
    ScenarioCheckpoint ck = beginScenario(cfg);
    if (advance_first > 0)
        advanceScenario(cfg, ck, advance_first);

    const std::vector<std::uint8_t> blob1 = serializeCheckpoint(cfg, ck);
    ScenarioCheckpoint restored = deserializeCheckpoint(cfg, blob1);
    const std::vector<std::uint8_t> blob2 =
        serializeCheckpoint(cfg, restored);
    EXPECT_EQ(blob1, blob2)
        << "serialize(deserialize(blob)) changed the bytes";

    validateCheckpoint(cfg, ck);
    validateCheckpoint(cfg, restored);

    while (!advanceScenario(cfg, ck, 1)) {
    }
    while (!advanceScenario(cfg, restored, 1)) {
    }
    expectResultsEqual(finishScenario(cfg, std::move(ck)),
                       finishScenario(cfg, std::move(restored)));
}

TEST(CheckpointRoundTrip, GreedyPeriodic)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 6);
    roundTripAndFinish(cfg, 2);
}

TEST(CheckpointRoundTrip, PreemptiveMidFlight)
{
    // After two completed short tasks the heavy task sits suspended
    // in the ready queue: the blob carries a live mid-task machine.
    ScenarioConfig cfg = preemptiveScenario(4);
    roundTripAndFinish(cfg, 2);
}

TEST(CheckpointRoundTrip, ManyCoreOverflowedDirectory)
{
    // 128 cores exceed the sparse directory's inline sharer slots on
    // shared read-mostly lines, so overflow bitset blocks are live in
    // the serialized L2.
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 3);
    cfg.platform = SprintConfig::parallelSprint(128, kSmallPcm);
    cfg.warm_caches = true;
    roundTripAndFinish(cfg, 1);
}

TEST(CheckpointRoundTrip, MidMeltPcmBurst)
{
    // Small PCM + a back-to-back train leaves the package mid-melt at
    // task boundaries.
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::DutyCycle,
                                      ArrivalPattern::BackToBack, 5);
    roundTripAndFinish(cfg, 2);
}

TEST(CheckpointRoundTrip, WarmCacheChain)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 5);
    cfg.warm_caches = true;
    roundTripAndFinish(cfg, 2);
}

TEST(CheckpointRoundTrip, DecimatedRingTraces)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Bursty, 6);
    cfg.burst_size = 3;
    cfg.burst_spacing = 1e-4;
    cfg.trace_mode = TraceMode::DecimatedRing;
    cfg.trace_capacity = 64;
    roundTripAndFinish(cfg, 2);
}

TEST(CheckpointRoundTrip, ResumeFromBytesAtEveryBoundary)
{
    // The cross-process restart in miniature: replace the checkpoint
    // with its deserialized serialization after every slice. The
    // final result must match the uninterrupted run bit-for-bit.
    ScenarioConfig cfg = preemptiveScenario(4);
    cfg.warm_caches = true;

    const ScenarioResult direct = runScenario(cfg);

    ScenarioCheckpoint ck = beginScenario(cfg);
    bool done = ck.done;
    while (!done) {
        done = advanceScenario(cfg, ck, 1);
        ck = deserializeCheckpoint(cfg, serializeCheckpoint(cfg, ck));
    }
    expectResultsEqual(direct, finishScenario(cfg, std::move(ck)));
}

TEST(CheckpointArrivals, PoissonCursorContinuesExactStream)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Poisson, 8);
    cfg.seed = 1234;

    ScenarioCheckpoint ck = beginScenario(cfg);
    advanceScenario(cfg, ck, 2);
    ScenarioCheckpoint restored =
        deserializeCheckpoint(cfg, serializeCheckpoint(cfg, ck));

    // The restored RNG cursor must generate the same remaining
    // exponential inter-arrival stream, so per-task arrival times of
    // both continuations are identical.
    while (!advanceScenario(cfg, ck, 1)) {
    }
    while (!advanceScenario(cfg, restored, 1)) {
    }
    const ScenarioResult a = finishScenario(cfg, std::move(ck));
    const ScenarioResult b = finishScenario(cfg, std::move(restored));
    ASSERT_EQ(a.tasks.size(), 8u);
    ASSERT_EQ(b.tasks.size(), 8u);
    for (std::size_t i = 0; i < a.tasks.size(); ++i)
        EXPECT_EQ(a.tasks[i].arrival, b.tasks[i].arrival) << i;
}

TEST(CheckpointRejection, EveryTruncationPrefixFailsCleanly)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 2);
    cfg.trace_mode = TraceMode::Off;
    cfg.keep_task_results = false;

    ScenarioCheckpoint ck = beginScenario(cfg);
    advanceScenario(cfg, ck, 1);
    const std::vector<std::uint8_t> blob = serializeCheckpoint(cfg, ck);
    ASSERT_GT(blob.size(), 0u);

    for (std::size_t len = 0; len < blob.size(); ++len) {
        std::vector<std::uint8_t> prefix(blob.begin(),
                                         blob.begin() + len);
        EXPECT_THROW(deserializeCheckpoint(cfg, prefix),
                     CheckpointError)
            << "prefix of " << len << " bytes";
    }
}

TEST(CheckpointRejection, SampledBitFlipsFailCleanly)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 2);
    cfg.trace_mode = TraceMode::Off;
    cfg.keep_task_results = false;

    ScenarioCheckpoint ck = beginScenario(cfg);
    advanceScenario(cfg, ck, 1);
    const std::vector<std::uint8_t> blob = serializeCheckpoint(cfg, ck);

    for (std::size_t bit = 0; bit < blob.size() * 8; bit += 17) {
        std::vector<std::uint8_t> bad = blob;
        bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_THROW(deserializeCheckpoint(cfg, bad), CheckpointError)
            << "flipped bit " << bit;
    }
}

TEST(CheckpointRejection, WrongConfigurationDigest)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 3);
    ScenarioCheckpoint ck = beginScenario(cfg);
    const std::vector<std::uint8_t> blob = serializeCheckpoint(cfg, ck);

    ScenarioConfig other = cfg;
    other.seed = cfg.seed + 1;
    ASSERT_NE(scenarioConfigDigest(cfg), scenarioConfigDigest(other));
    try {
        deserializeCheckpoint(other, blob);
        FAIL() << "a checkpoint from another configuration loaded";
    } catch (const CheckpointError &e) {
        EXPECT_EQ(e.kind(), CheckpointError::Kind::BadDigest);
    }
}

TEST(CheckpointRejection, FidelityTierChangesTheDigest)
{
    // Every surrogate knob shapes the replayed trajectory, so each
    // must be covered by the configuration digest — a checkpoint
    // written under one tier must not load under another.
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 3);
    ScenarioCheckpoint ck = beginScenario(cfg);
    const std::vector<std::uint8_t> blob = serializeCheckpoint(cfg, ck);

    std::vector<ScenarioConfig> variants;
    ScenarioConfig v = cfg;
    v.surrogate.tier = FidelityTier::Auto;
    variants.push_back(v);
    v = cfg;
    v.surrogate.min_calibration = cfg.surrogate.min_calibration + 1;
    variants.push_back(v);
    v = cfg;
    v.surrogate.audit_period = cfg.surrogate.audit_period + 1.0;
    variants.push_back(v);
    v = cfg;
    v.surrogate.tolerance = cfg.surrogate.tolerance + 0.1;
    variants.push_back(v);
    v = cfg;
    v.surrogate.profile_samples = cfg.surrogate.profile_samples + 1;
    variants.push_back(v);
    v = cfg;
    v.policy.risk_quantile = 0.95;
    variants.push_back(v);

    for (std::size_t i = 0; i < variants.size(); ++i) {
        SCOPED_TRACE("variant " + std::to_string(i));
        EXPECT_NE(scenarioConfigDigest(cfg),
                  scenarioConfigDigest(variants[i]));
        try {
            deserializeCheckpoint(variants[i], blob);
            FAIL() << "a checkpoint crossed a fidelity-knob change";
        } catch (const CheckpointError &e) {
            EXPECT_EQ(e.kind(), CheckpointError::Kind::BadDigest);
        }
    }
}

TEST(CheckpointRoundTrip, SurrogateCalibrationMidStream)
{
    // Cut an Auto-tier run mid-calibration (2 tasks < K) and again in
    // the calibrated regime (surrogate models live, audit RNG cursor
    // advanced): the serialized learning state must resume exactly.
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::BackToBack, 24);
    cfg.surrogate.tier = FidelityTier::Auto;
    cfg.surrogate.min_calibration = 4;
    cfg.surrogate.audit_period = 4.0;
    roundTripAndFinish(cfg, 2);
    roundTripAndFinish(cfg, 10);
}

TEST(CheckpointRejection, DebugKnobsDoNotChangeTheDigest)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 3);
    ScenarioConfig tweaked = cfg;
    tweaked.validate_checkpoints = !cfg.validate_checkpoints;
    EXPECT_EQ(scenarioConfigDigest(cfg), scenarioConfigDigest(tweaked));
}

TEST(CheckpointValidation, RejectsTamperedState)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 3);
    ScenarioCheckpoint ck = beginScenario(cfg);
    advanceScenario(cfg, ck, 1);
    validateCheckpoint(cfg, ck); // genuine state passes

    {
        ScenarioCheckpoint bad =
            deserializeCheckpoint(cfg, serializeCheckpoint(cfg, ck));
        ASSERT_FALSE(bad.thermal.temps.empty());
        bad.thermal.temps[0] = std::nan("");
        EXPECT_THROW(validateCheckpoint(cfg, bad), CheckpointError);
    }
    {
        ScenarioCheckpoint bad =
            deserializeCheckpoint(cfg, serializeCheckpoint(cfg, ck));
        bad.busy = bad.now + 1.0;
        EXPECT_THROW(validateCheckpoint(cfg, bad), CheckpointError);
    }
    {
        ScenarioCheckpoint bad =
            deserializeCheckpoint(cfg, serializeCheckpoint(cfg, ck));
        bad.total_sprint_energy = bad.total_energy + 1.0;
        EXPECT_THROW(validateCheckpoint(cfg, bad), CheckpointError);
    }
}

std::string
freshDir(const char *tag)
{
    std::string tmpl = std::string("/tmp/csprint-") + tag + "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return std::string(dir ? dir : "/tmp");
}

TEST(CheckpointStoreTest, SaveLoadAndManifestPreference)
{
    const std::string dir = freshDir("store");
    CheckpointStore store(dir);

    const std::vector<std::uint8_t> one{1, 2, 3};
    const std::vector<std::uint8_t> two{4, 5, 6, 7};
    store.save(3, 1, one);
    store.save(3, 2, two);

    const auto cands = store.loadCandidates(3);
    ASSERT_EQ(cands.size(), 2u);
    EXPECT_EQ(cands[0].seq, 2u);
    EXPECT_EQ(cands[0].blob, two);
    EXPECT_EQ(cands[1].seq, 1u);
    EXPECT_EQ(cands[1].blob, one);

    // Other shards stay invisible.
    EXPECT_TRUE(store.loadCandidates(4).empty());
}

TEST(CheckpointStoreTest, PrunesToTwoNewest)
{
    const std::string dir = freshDir("prune");
    CheckpointStore store(dir);
    for (std::uint64_t seq = 1; seq <= 5; ++seq)
        store.save(0, seq, {static_cast<std::uint8_t>(seq)});
    const auto cands = store.loadCandidates(0);
    ASSERT_EQ(cands.size(), 2u);
    EXPECT_EQ(cands[0].seq, 5u);
    EXPECT_EQ(cands[1].seq, 4u);
}

TEST(CheckpointStoreTest, CorruptNewestFallsBackToPredecessor)
{
    ScenarioConfig cfg = baseScenario(SprintPolicyKind::GreedyActivity,
                                      ArrivalPattern::Periodic, 4);
    ScenarioCheckpoint ck = beginScenario(cfg);
    advanceScenario(cfg, ck, 1);
    const std::vector<std::uint8_t> good = serializeCheckpoint(cfg, ck);
    advanceScenario(cfg, ck, 1);
    const std::vector<std::uint8_t> newer = serializeCheckpoint(cfg, ck);

    const std::string dir = freshDir("fallback");
    CheckpointStore store(dir);
    store.save(0, 1, good);
    store.save(0, 2, newer);

    // Bit rot hits the manifest-named newest file.
    {
        std::fstream f(store.checkpointPath(0, 2),
                       std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f.good());
        f.seekp(static_cast<std::streamoff>(newer.size() / 2));
        char byte = 0;
        f.seekg(static_cast<std::streamoff>(newer.size() / 2));
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x08);
        f.seekp(static_cast<std::streamoff>(newer.size() / 2));
        f.write(&byte, 1);
    }

    const auto cands = store.loadCandidates(0);
    ASSERT_EQ(cands.size(), 2u);
    EXPECT_THROW(deserializeCheckpoint(cfg, cands[0].blob),
                 CheckpointError);
    // Recovery path: the retained predecessor still loads and resumes.
    ScenarioCheckpoint resumed =
        deserializeCheckpoint(cfg, cands[1].blob);
    while (!advanceScenario(cfg, resumed, 1)) {
    }
    const ScenarioResult r = finishScenario(cfg, std::move(resumed));
    EXPECT_EQ(r.tasks_completed, 4u);
}

TEST(CheckpointStoreTest, SecondWriterOnSameShardIsLockedOut)
{
    // Regression: pruning assumed a single writer per shard, so two
    // live stores interleaving saves could delete each other's newest
    // file. save() now takes a per-shard flock; a conflicting writer
    // fails typed instead of corrupting the store.
    const std::string dir = freshDir("lock");
    CheckpointStore first(dir);
    first.save(0, 1, {1, 2, 3});

    {
        CheckpointStore second(dir);
        try {
            second.save(0, 2, {9, 9});
            FAIL() << "conflicting writer acquired shard 0";
        } catch (const CheckpointError &e) {
            EXPECT_EQ(e.kind(), CheckpointError::Kind::Io);
        }
        // A different shard is a different lock: unaffected.
        EXPECT_NO_THROW(second.save(1, 1, {4, 4}));
    }

    // The loser never touched shard 0's files.
    auto cands = first.loadCandidates(0);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].seq, 1u);
    EXPECT_EQ(cands[0].blob, (std::vector<std::uint8_t>{1, 2, 3}));

    // Destroying the holder releases the flock; a later writer
    // proceeds normally.
    first.save(0, 2, {7});
    {
        CheckpointStore third(dir);
        EXPECT_THROW(third.save(0, 3, {8}), CheckpointError);
    }
    CheckpointStore fourth(dir);
    // `first` is still alive and holds shard 0 until scope exit.
    EXPECT_THROW(fourth.save(0, 3, {8}), CheckpointError);
}

TEST(CheckpointStoreTest, LockReleasedOnDestructionAdmitsNewWriter)
{
    const std::string dir = freshDir("relock");
    {
        CheckpointStore writer(dir);
        writer.save(2, 1, {1});
    }
    CheckpointStore next(dir);
    EXPECT_NO_THROW(next.save(2, 2, {2}));
    const auto cands = next.loadCandidates(2);
    ASSERT_EQ(cands.size(), 2u);
    EXPECT_EQ(cands[0].seq, 2u);
}

TEST(CheckpointUnsupported, ForeignStreamTypeFailsTheSave)
{
    // A custom program factory yielding a custom OpStream cannot be
    // captured: the save must fail typed, not emit garbage. Build a
    // scenario whose execution is mid-flight with a suspended machine
    // running a ChunkedOpStream (supported), then assert the plain
    // serialize path works — the Unsupported path itself is exercised
    // by unit-testing writeStream indirectly through a machine that
    // is not suspended.
    ScenarioConfig cfg = preemptiveScenario(4);
    ScenarioCheckpoint ck = beginScenario(cfg);
    advanceScenario(cfg, ck, 1);
    EXPECT_NO_THROW(serializeCheckpoint(cfg, ck));
}

} // namespace
} // namespace csprint
