/**
 * @file
 * Tests for the sprint governor: budget computation, activity-based
 * exhaustion, replenishment below TDP, thermometer mode, and the
 * hardware-throttle escalation.
 */

#include <gtest/gtest.h>

#include "sprint/governor.hh"
#include "thermal/package.hh"

namespace csprint {
namespace {

MobilePackageParams
scaledParams()
{
    // Full-scale package: budgets in joules, seconds-scale sprints.
    return MobilePackageParams::phonePcm();
}

TEST(Governor, BudgetMatchesPackage)
{
    MobilePackageModel pkg(scaledParams());
    SprintGovernor gov(GovernorConfig{}, pkg);
    EXPECT_NEAR(gov.initialBudget(), pkg.sprintEnergyBudget(), 1e-9);
    EXPECT_GT(gov.initialBudget(), 15.0);
}

TEST(Governor, SustainedLoadNeverTriggers)
{
    MobilePackageModel pkg(scaledParams());
    SprintGovernor gov(GovernorConfig{}, pkg);
    const Watts p = 0.9 * gov.sustainablePower();
    for (int i = 0; i < 20000; ++i) {
        const auto action = gov.onSample(1e-3, p * 1e-3);
        ASSERT_EQ(action, GovernorAction::Continue) << "sample " << i;
    }
    EXPECT_FALSE(gov.terminated());
    EXPECT_NEAR(gov.remainingBudget(), gov.initialBudget(), 1e-6);
}

TEST(Governor, SixteenWattSprintTriggersNearOneSecond)
{
    MobilePackageModel pkg(scaledParams());
    SprintGovernor gov(GovernorConfig{}, pkg);
    Seconds t = 0.0;
    GovernorAction action = GovernorAction::Continue;
    while (action == GovernorAction::Continue && t < 5.0) {
        action = gov.onSample(1e-3, 16.0 * 1e-3);
        t += 1e-3;
    }
    EXPECT_EQ(action, GovernorAction::TerminateSprint);
    // ~17 J of budget at ~15 W above sustainable: about 1.1 s.
    EXPECT_GT(t, 0.6);
    EXPECT_LT(t, 2.0);
}

TEST(Governor, BudgetReplenishesBelowTdp)
{
    MobilePackageModel pkg(scaledParams());
    GovernorConfig cfg;
    cfg.margin = 0.0;
    SprintGovernor gov(cfg, pkg);
    // Spend half the budget sprinting.
    const Joules half = 0.5 * gov.initialBudget();
    Joules spent = 0.0;
    while (spent < half) {
        gov.onSample(1e-3, 16e-3);
        spent += (16.0 - gov.sustainablePower()) * 1e-3;
    }
    const Joules after_sprint = gov.remainingBudget();
    EXPECT_LT(after_sprint, 0.6 * gov.initialBudget());
    // Idle for a while: the budget climbs back (cooling).
    for (int i = 0; i < 5000; ++i)
        gov.onSample(1e-3, 0.0);
    EXPECT_GT(gov.remainingBudget(), after_sprint);
}

TEST(Governor, ThermometerModeTriggersNearLimit)
{
    MobilePackageModel pkg(scaledParams());
    GovernorConfig cfg;
    cfg.use_activity_estimate = false;
    cfg.temp_guard = 1.0;
    SprintGovernor gov(cfg, pkg);
    Seconds t = 0.0;
    GovernorAction action = GovernorAction::Continue;
    while (action == GovernorAction::Continue && t < 5.0) {
        action = gov.onSample(1e-3, 16.0 * 1e-3);
        t += 1e-3;
    }
    EXPECT_EQ(action, GovernorAction::TerminateSprint);
    EXPECT_GE(pkg.junctionTemp(),
              pkg.params().t_junction_max - 2.0);
    EXPECT_LT(gov.peakJunction(), pkg.params().t_junction_max + 1.0);
}

TEST(Governor, ActivityAndThermometerAgreeRoughly)
{
    // The activity estimate should fire within ~30% of the ground
    // truth thermometer for a constant 16 W sprint.
    auto trigger_time = [](bool activity) {
        MobilePackageModel pkg(scaledParams());
        GovernorConfig cfg;
        cfg.use_activity_estimate = activity;
        cfg.margin = 0.02;
        SprintGovernor gov(cfg, pkg);
        Seconds t = 0.0;
        while (t < 5.0) {
            if (gov.onSample(1e-3, 16e-3) != GovernorAction::Continue)
                break;
            t += 1e-3;
        }
        return t;
    };
    const Seconds act = trigger_time(true);
    const Seconds thermo = trigger_time(false);
    EXPECT_NEAR(act, thermo, 0.35 * thermo);
}

TEST(Governor, EscalatesToThrottleWhenSoftwareHangs)
{
    MobilePackageModel pkg(scaledParams());
    GovernorConfig cfg;
    cfg.software_grace = 10e-3;
    SprintGovernor gov(cfg, pkg);
    // Sprint to exhaustion...
    GovernorAction action = GovernorAction::Continue;
    Seconds t = 0.0;
    while (action == GovernorAction::Continue && t < 5.0) {
        action = gov.onSample(1e-3, 16e-3);
        t += 1e-3;
    }
    ASSERT_EQ(action, GovernorAction::TerminateSprint);
    // ...and keep burning 16 W as if the OS missed the signal.
    bool throttled = false;
    for (int i = 0; i < 200; ++i) {
        if (gov.onSample(1e-3, 16e-3) == GovernorAction::Throttle) {
            throttled = true;
            break;
        }
    }
    EXPECT_TRUE(throttled);
    EXPECT_TRUE(gov.throttled());
}

TEST(Governor, ThrottleWaitsOutTheFullGraceWindow)
{
    // Boundary behaviour of the grace window: sustained high power
    // after the software signal produces no throttle while
    // time-since-signal <= software_grace, then exactly one Throttle.
    MobilePackageModel pkg(scaledParams());
    GovernorConfig cfg;
    cfg.software_grace = 50e-3;
    SprintGovernor gov(cfg, pkg);
    GovernorAction action = GovernorAction::Continue;
    Seconds t = 0.0;
    while (action == GovernorAction::Continue && t < 5.0) {
        action = gov.onSample(1e-3, 16e-3);
        t += 1e-3;
    }
    ASSERT_EQ(action, GovernorAction::TerminateSprint);

    Seconds since_signal = 0.0;
    int throttles = 0;
    for (int i = 0; i < 200; ++i) {
        const GovernorAction a = gov.onSample(1e-3, 16e-3);
        since_signal += 1e-3;
        if (a == GovernorAction::Throttle) {
            ++throttles;
            EXPECT_GT(since_signal, cfg.software_grace);
        } else if (throttles == 0) {
            // No premature escalation inside the window.
            EXPECT_LE(since_signal,
                      cfg.software_grace + 1e-3 + 1e-12);
        }
    }
    EXPECT_EQ(throttles, 1);
    EXPECT_TRUE(gov.throttled());
}

TEST(Governor, NoThrottleWhenSoftwareComplies)
{
    MobilePackageModel pkg(scaledParams());
    GovernorConfig cfg;
    cfg.software_grace = 10e-3;
    SprintGovernor gov(cfg, pkg);
    GovernorAction action = GovernorAction::Continue;
    Seconds t = 0.0;
    while (action == GovernorAction::Continue && t < 5.0) {
        action = gov.onSample(1e-3, 16e-3);
        t += 1e-3;
    }
    ASSERT_EQ(action, GovernorAction::TerminateSprint);
    // Software migrated: power falls to ~1 W.
    for (int i = 0; i < 500; ++i) {
        EXPECT_NE(gov.onSample(1e-3, 1e-3), GovernorAction::Throttle);
    }
    EXPECT_FALSE(gov.throttled());
}

} // namespace
} // namespace csprint
