/**
 * @file
 * Tests for sprint pacing: duty-cycle bounds, budget recovery during
 * rest, and sprint trains arriving faster than the cooldown.
 */

#include <gtest/gtest.h>

#include "sprint/pacing.hh"
#include "thermal/package.hh"

namespace csprint {
namespace {

TEST(Pacing, DutyCycleIsTdpOverSprintPower)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    const double duty = sustainableDutyCycle(pkg, 16.0);
    EXPECT_NEAR(duty, pkg.sustainableTdp() / 16.0, 1e-12);
    EXPECT_GT(duty, 0.04);
    EXPECT_LT(duty, 0.10);  // ~6% for a 16x sprint
    EXPECT_DOUBLE_EQ(sustainableDutyCycle(pkg, 0.5), 1.0);
}

TEST(Pacing, BudgetRecoversMonotonicallyWithRest)
{
    // Drain the package, then measure budget after increasing rests.
    auto drained = []() {
        MobilePackageModel pkg(MobilePackageParams::phonePcm());
        pkg.setDiePower(16.0);
        for (int i = 0; i < 1100; ++i)
            pkg.step(1e-3);
        return pkg;
    };
    Joules prev = 0.0;
    for (Seconds rest : {1.0, 5.0, 15.0, 40.0}) {
        MobilePackageModel pkg = drained();
        const Joules budget = budgetAfterRest(pkg, rest);
        EXPECT_GE(budget, prev - 1e-9) << "rest " << rest;
        prev = budget;
    }
    // After a long rest, the full cold-start budget is back.
    MobilePackageModel pkg = drained();
    MobilePackageModel cold(MobilePackageParams::phonePcm());
    EXPECT_NEAR(budgetAfterRest(pkg, 120.0),
                cold.sprintEnergyBudget(),
                0.05 * cold.sprintEnergyBudget());
}

TEST(Pacing, TimeToFullBudgetMatchesPaperCooldown)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.setDiePower(16.0);
    for (int i = 0; i < 1100; ++i)
        pkg.step(1e-3);
    const Seconds t = timeToBudgetFraction(pkg, 0.95, 120.0);
    // Paper Section 4.5: cooldown ~16-24 s for a ~1 s 16 W sprint.
    EXPECT_GT(t, 8.0);
    EXPECT_LT(t, 40.0);
}

TEST(Pacing, WellSpacedTrainKeepsFullSprints)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    const auto train = runSprintTrain(pkg, 3, 16.0, 0.5, 60.0);
    ASSERT_EQ(train.size(), 3u);
    for (const auto &win : train) {
        EXPECT_NEAR(win.duration, 0.5, 1e-6);
        EXPECT_GT(win.budget_fraction, 0.9);
    }
}

TEST(Pacing, BackToBackTrainDegrades)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    // Requests every 2 s wanting 1 s sprints: far faster than the
    // ~20 s cooldown.
    const auto train = runSprintTrain(pkg, 5, 16.0, 1.0, 2.0);
    ASSERT_EQ(train.size(), 5u);
    EXPECT_NEAR(train[0].duration, 1.0, 0.1);
    // Later sprints start with less budget and are cut short.
    EXPECT_LT(train[2].budget_fraction, train[0].budget_fraction);
    EXPECT_LT(train[4].duration, 0.6 * train[0].duration);
}

TEST(Pacing, LongRunEnergyRespectsDutyCycle)
{
    // Over the whole train, average power above TDP cannot be
    // sustained: total sprint energy <= budget + TDP * elapsed.
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    const auto train = runSprintTrain(pkg, 6, 16.0, 1.0, 4.0);
    double sprint_energy = 0.0;
    for (const auto &win : train)
        sprint_energy += win.energy;
    const Seconds elapsed = 6 * 4.0;
    const Joules cap = pkg.sprintEnergyBudget() +
                       MobilePackageModel(pkg.params())
                               .sprintEnergyBudget() +
                       pkg.sustainableTdp() * elapsed;
    EXPECT_LT(sprint_energy, cap);
}

} // namespace
} // namespace csprint
