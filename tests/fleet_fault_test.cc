/**
 * @file
 * Process-level fault injection for the multi-process fleet driver
 * (sprint/fleet.hh). Headline gates:
 *
 *  - a clean multi-process fleet run equals the in-process run
 *    bit-for-bit on every shared aggregate field and per-device
 *    checkpoint digest;
 *
 *  - for each process-level FaultKind (KillWorker / StallWorker /
 *    CorruptPipe), a run whose worker is killed, stalls, or corrupts
 *    its pipe — and is then respawned from persisted checkpoints —
 *    equals the uninterrupted run bit-for-bit;
 *
 *  - a seed-randomized multi-shard process plan stays bit-exact;
 *
 *  - a range that exhausts its respawns degrades instead of dropping:
 *    devices whose final checkpoints were already reaped still count.
 *
 * The thread supervisor must reject process-level kinds (its
 * transport cannot recover from them).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sprint/checkpoint.hh"
#include "sprint/experiment.hh"
#include "sprint/fleet.hh"
#include "sprint/supervisor.hh"

namespace csprint {
namespace {

FleetSpec
faultFleet(std::uint64_t seed)
{
    FleetSpec spec;
    spec.seed = seed;
    spec.num_devices = 4;

    FleetDeviceClass a;
    a.weight = 1.0;
    a.cores = 4;
    a.pcm_mass_lo = kSmallPcm;
    a.pcm_mass_hi = 2.0 * kSmallPcm;
    a.ambient_lo = 24.0;
    a.ambient_hi = 28.0;
    a.num_tasks = 4;
    a.period = 2.5e-3;
    spec.classes.push_back(a);

    FleetDeviceClass b = a;
    b.cores = 8;
    b.policy = SprintPolicyKind::DutyCycle;
    b.pacing_period = 2.5e-3;
    spec.classes.push_back(b);

    return spec;
}

std::string
freshDir(const char *tag)
{
    std::string tmpl = std::string("/tmp/csprint-") + tag + "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return std::string(dir ? dir : "/tmp");
}

FleetOptions
fleetOptions(const char *tag)
{
    FleetOptions opts;
    opts.num_workers = 2;
    opts.checkpoint_every_tasks = 2;
    opts.max_retries = 3;
    opts.store_dir = freshDir(tag);
    return opts;
}

void
expectAggregatesBitEqual(const FleetAggregates &a,
                         const FleetAggregates &b)
{
    EXPECT_EQ(a.devices, b.devices);
    EXPECT_EQ(a.degraded_devices, b.degraded_devices);
    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
    EXPECT_EQ(a.tasks_dropped, b.tasks_dropped);
    EXPECT_EQ(a.deadlines_met, b.deadlines_met);
    EXPECT_EQ(a.deadlines_missed, b.deadlines_missed);
    EXPECT_EQ(a.sprints_granted, b.sprints_granted);
    EXPECT_EQ(a.sprints_denied, b.sprints_denied);
    EXPECT_EQ(a.hardware_throttles, b.hardware_throttles);
    EXPECT_EQ(a.melt_cycles, b.melt_cycles);
    EXPECT_EQ(a.thermal_violations, b.thermal_violations);
    EXPECT_EQ(a.peak_junction, b.peak_junction);
    EXPECT_EQ(a.peak_melt, b.peak_melt);
    EXPECT_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.total_sprint_time, b.total_sprint_time);
    EXPECT_EQ(a.total_sprint_energy, b.total_sprint_energy);
    double sa[P2Quantile::kStateSize];
    double sb[P2Quantile::kStateSize];
    a.response_p50.save(sa);
    b.response_p50.save(sb);
    EXPECT_EQ(0, std::memcmp(sa, sb, sizeof(sa)));
    a.response_p95.save(sa);
    b.response_p95.save(sb);
    EXPECT_EQ(0, std::memcmp(sa, sb, sizeof(sa)));
}

std::string
workerErrors(const FleetResult &res)
{
    std::string out;
    for (const FleetWorkerStats &w : res.workers) {
        if (w.degraded)
            out += "[" + std::to_string(w.range_begin) + "," +
                   std::to_string(w.range_end) + ") degraded: " +
                   w.last_error + "; ";
    }
    return out;
}

void
expectFleetsBitEqual(const FleetResult &a, const FleetResult &b)
{
    expectAggregatesBitEqual(a.aggregates, b.aggregates);
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t d = 0; d < a.devices.size(); ++d) {
        EXPECT_EQ(a.devices[d].completed, b.devices[d].completed);
        EXPECT_EQ(a.devices[d].checkpoint_digest,
                  b.devices[d].checkpoint_digest)
            << "device " << d;
    }
}

TEST(FleetFault, MultiProcessMatchesInProcessBitExact)
{
    const FleetSpec spec = faultFleet(51);
    const FleetResult ip =
        runFleetInProcess(spec, fleetOptions("ffip"));
    const FleetResult mp =
        runFleetMultiProcess(spec, fleetOptions("ffmp"));
    ASSERT_TRUE(ip.allOk()) << workerErrors(ip);
    ASSERT_TRUE(mp.allOk()) << workerErrors(mp);
    expectFleetsBitEqual(ip, mp);
    for (const FleetWorkerStats &w : mp.workers)
        EXPECT_EQ(w.respawns, 0) << w.last_error;
}

/** Recovered-equals-uninterrupted for one process-level fault kind. */
void
processRecoveryParity(FaultKind kind)
{
    const FleetSpec spec = faultFleet(77);

    const FleetResult clean =
        runFleetMultiProcess(spec, fleetOptions("clean"));
    ASSERT_TRUE(clean.allOk());

    FleetOptions opts = fleetOptions(faultKindName(kind));
    if (kind == FaultKind::StallWorker)
        opts.watchdog_deadline = 0.3; // seconds; slices run in ms

    FaultPlan plan;
    plan.faults.push_back({1, kind, 1});
    const FleetResult faulted = runFleetMultiProcess(spec, opts, plan);
    ASSERT_TRUE(faulted.allOk())
        << "range degraded under " << faultKindName(kind) << ": "
        << faulted.workers[0].last_error;

    int respawns = 0;
    for (const FleetWorkerStats &w : faulted.workers)
        respawns += w.respawns;
    EXPECT_GE(respawns, 1) << "the fault never fired";

    expectFleetsBitEqual(clean, faulted);

    // And against the in-process run, closing the triangle.
    const FleetResult ip =
        runFleetInProcess(spec, fleetOptions("tri"));
    expectFleetsBitEqual(ip, faulted);
}

TEST(FleetFault, KillWorkerRecoversBitExact)
{
    processRecoveryParity(FaultKind::KillWorker);
}

TEST(FleetFault, StallWorkerIsKilledAndRecoversBitExact)
{
    processRecoveryParity(FaultKind::StallWorker);
}

TEST(FleetFault, CorruptPipeIsRejectedAndRecoversBitExact)
{
    processRecoveryParity(FaultKind::CorruptPipe);
}

TEST(FleetFault, RandomizedMultiShardProcessPlanStaysBitExact)
{
    const FleetSpec spec = faultFleet(91);

    const FleetResult clean =
        runFleetMultiProcess(spec, fleetOptions("rclean"));
    ASSERT_TRUE(clean.allOk());

    FleetOptions opts = fleetOptions("rfault");
    opts.max_retries = 6; // every device draws one fault
    opts.watchdog_deadline = 0.5;
    const FaultPlan plan =
        FaultPlan::randomizedProcess(0xF1EE7u, spec.num_devices, 2);
    ASSERT_EQ(plan.faults.size(),
              static_cast<std::size_t>(spec.num_devices));

    const FleetResult faulted = runFleetMultiProcess(spec, opts, plan);
    ASSERT_TRUE(faulted.allOk());
    expectFleetsBitEqual(clean, faulted);
}

TEST(FleetFault, ExhaustedRespawnsDegradeNotDrop)
{
    const FleetSpec spec = faultFleet(33);

    FleetOptions opts = fleetOptions("degraded");
    opts.num_workers = 1;
    opts.max_retries = 0; // one attempt: the injected fault is fatal

    // Device 2 dies at its first checkpoint; devices 0 and 1 finished
    // earlier, so their final checkpoints were already reaped.
    FaultPlan plan;
    plan.faults.push_back({2, FaultKind::KillWorker, 1});

    const FleetResult res = runFleetMultiProcess(spec, opts, plan);
    EXPECT_FALSE(res.allOk());
    ASSERT_EQ(res.workers.size(), 1u);
    EXPECT_TRUE(res.workers[0].degraded);
    EXPECT_EQ(res.aggregates.devices,
              static_cast<std::uint64_t>(spec.num_devices));
    EXPECT_EQ(res.aggregates.degraded_devices, 2u); // devices 2, 3
    EXPECT_GT(res.aggregates.tasks_completed, 0u);  // devices 0, 1
    EXPECT_TRUE(res.devices[0].completed);
    EXPECT_TRUE(res.devices[1].completed);
    EXPECT_FALSE(res.devices[2].completed);
    EXPECT_FALSE(res.devices[3].completed);

    // A later clean run over the same store resumes the persisted
    // devices instead of starting over, and completes the fleet.
    const FleetResult rerun = runFleetMultiProcess(spec, opts);
    ASSERT_TRUE(rerun.allOk());
    EXPECT_EQ(rerun.aggregates.degraded_devices, 0u);
    EXPECT_EQ(rerun.devices[0].checkpoint_digest,
              res.devices[0].checkpoint_digest);
}

TEST(FleetFault, ThreadTransportRejectsProcessKinds)
{
    const FleetSpec spec = faultFleet(12);
    FaultPlan plan;
    plan.faults.push_back({0, FaultKind::KillWorker, 1});
    try {
        runFleetInProcess(spec, fleetOptions("reject"), plan);
        FAIL() << "process-level fault accepted by the thread transport";
    } catch (const CheckpointError &e) {
        EXPECT_EQ(e.kind(), CheckpointError::Kind::Unsupported);
    }
}

TEST(FleetFault, MissingWorkerBinaryFailsWithIoError)
{
    const FleetSpec spec = faultFleet(13);
    FleetOptions opts = fleetOptions("nobin");
    opts.worker_path = "/nonexistent/csprint-fleet-worker";
    try {
        runFleetMultiProcess(spec, opts);
        FAIL() << "missing worker binary went unnoticed";
    } catch (const CheckpointError &e) {
        EXPECT_EQ(e.kind(), CheckpointError::Kind::Io);
    }
}

} // namespace
} // namespace csprint
