/**
 * @file
 * Tests for the energy module: instruction-energy calibration, DVFS
 * scaling arithmetic, and the power-source models of Section 6.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/model.hh"
#include "energy/ops.hh"
#include "energy/supply.hh"

namespace csprint {
namespace {

TEST(EnergyModel, CalibratedNearOneNanojoulePerOp)
{
    InstructionEnergyModel model;
    // A representative kernel mix must average ~1 nJ/op so a 1 GHz
    // CPI-1 core dissipates ~1 W (paper Section 8.1).
    const double mix =
        0.35 * model.opEnergy(OpKind::IntAlu) +
        0.20 * model.opEnergy(OpKind::FpAlu) +
        0.25 * model.opEnergy(OpKind::Load) +
        0.10 * model.opEnergy(OpKind::Store) +
        0.10 * model.opEnergy(OpKind::Branch);
    EXPECT_GT(mix, 0.8e-9);
    EXPECT_LT(mix, 1.2e-9);
}

TEST(EnergyModel, SleepPowerIsTenPercent)
{
    InstructionEnergyModel model;
    EXPECT_NEAR(model.idleCycleEnergy(),
                0.1 * model.nominalCycleEnergy(), 1e-15);
}

TEST(EnergyModel, MemoryEventEnergiesOrdered)
{
    InstructionEnergyModel model;
    EXPECT_GT(model.l2AccessEnergy(), model.opEnergy(OpKind::Load));
    EXPECT_GT(model.dramAccessEnergy(), model.l2AccessEnergy());
}

TEST(EnergyModel, BoostScalesQuadratically)
{
    InstructionEnergyModel nominal;
    InstructionEnergyModel boosted = nominal.boosted(2.0);
    EXPECT_NEAR(boosted.opEnergy(OpKind::IntAlu),
                4.0 * nominal.opEnergy(OpKind::IntAlu), 1e-15);
    EXPECT_NEAR(boosted.tech().clock, 2.0 * nominal.tech().clock, 1.0);
}

TEST(EnergyModel, DvfsArithmeticMatchesPaper)
{
    // Paper Section 8.4: 16x headroom -> cbrt(16) ~ 2.5x boost, and
    // ~6x the energy (boost squared ~ 6.35).
    const double boost = dvfsBoostFromHeadroom(16.0);
    EXPECT_NEAR(boost, std::cbrt(16.0), 1e-12);
    EXPECT_NEAR(boost, 2.52, 0.01);
    EXPECT_NEAR(dvfsEnergyFactor(boost), 6.35, 0.05);
}

TEST(Battery, PhoneLiIonLimitsToTenWatts)
{
    const Battery b = Battery::phoneLiIon();
    // Paper: bursts of ~10 W (2.7 A at 3.7 V).
    EXPECT_NEAR(b.maxBurstPower(), 10.0, 1.5);
    EXPECT_TRUE(b.canSupply(8.0));
    EXPECT_FALSE(b.canSupply(16.0));
}

TEST(Battery, PhoneLiIonSupportsFewerThanTenCores)
{
    const Battery b = Battery::phoneLiIon();
    int cores = 0;
    while (b.canSupply(static_cast<double>(cores + 1)))
        ++cores;
    // Paper: "fewer than ten 1 W cores".
    EXPECT_GE(cores, 6);
    EXPECT_LT(cores, 10);
}

TEST(Battery, HighDischargeLiPoCoversSprint)
{
    const Battery b = Battery::highDischargeLiPo();
    EXPECT_TRUE(b.canSupply(16.0));
    EXPECT_GT(b.maxBurstPower(), 100.0);  // 43 A at ~7 V
}

TEST(Battery, TerminalVoltageSags)
{
    const Battery b = Battery::phoneLiIon();
    EXPECT_LT(b.terminalVoltage(2.0), b.ocv);
    EXPECT_DOUBLE_EQ(b.terminalVoltage(0.0), b.ocv);
}

TEST(Ultracap, NesscapStoresNinetyJoules)
{
    const Ultracapacitor c = Ultracapacitor::nesscap25F();
    // 0.5 * 25 * 2.7^2 = 91.1 J per cell.
    EXPECT_NEAR(c.storedEnergy(), 91.1, 0.5);
    EXPECT_GT(c.usableEnergy(1.0), 70.0);
}

TEST(Ultracap, DischargeTracksEnergy)
{
    const Ultracapacitor c = Ultracapacitor::nesscap25F();
    const auto v = c.voltageAfter(16.0, 1.0);  // a 16 J sprint
    ASSERT_TRUE(v.has_value());
    EXPECT_LT(*v, c.rated_voltage);
    EXPECT_GT(*v, 2.0);
    // Draining more than the stored energy fails.
    EXPECT_FALSE(c.voltageAfter(200.0, 1.0).has_value());
}

TEST(HybridSupply, CoversSprintBeyondBattery)
{
    HybridSupply hybrid{Battery::phoneLiIon(),
                        Ultracapacitor::nesscap25F()};
    // 16 W for 1 s: battery covers ~10 W, cap covers the rest.
    EXPECT_TRUE(hybrid.canSprint(16.0, 1.0));
    EXPECT_GT(hybrid.capEnergyNeeded(16.0, 1.0), 4.0);
    // An hour-long 16 W draw is beyond the capacitor.
    EXPECT_FALSE(hybrid.canSprint(16.0, 3600.0));
}

TEST(HybridSupply, RechargeTimeReasonable)
{
    HybridSupply hybrid{Battery::phoneLiIon(),
                        Ultracapacitor::nesscap25F()};
    // Recharging the ~7 J the cap contributed, with 1 W spare,
    // takes several seconds - comparable to the thermal cooldown.
    const Seconds t = hybrid.rechargeTime(16.0, 1.0, 1.0);
    EXPECT_GT(t, 3.0);
    EXPECT_LT(t, 30.0);
}

TEST(PackagePins, PaperExampleThreeHundredTwentyPins)
{
    PackagePins pins;
    // Paper: 16 A at 100 mA per pin pair -> 320 pins.
    EXPECT_EQ(pins.pinsRequired(16.0), 320);
    EXPECT_NEAR(pins.maxCurrent(320), 16.0, 1e-9);
}

TEST(PackagePins, RoundsUp)
{
    PackagePins pins;
    EXPECT_EQ(pins.pinsRequired(0.05), 2);
    EXPECT_EQ(pins.pinsRequired(0.15), 4);
}

} // namespace
} // namespace csprint
