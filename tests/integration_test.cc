/**
 * @file
 * End-to-end qualitative reproduction checks against the paper's
 * headline results: average responsiveness gain on 16 cores, parallel
 * sprinting dominating DVFS sprinting, thermal design points, and the
 * scaling characters of the individual kernels.
 */

#include <gtest/gtest.h>

#include "sprint/experiment.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

TEST(Integration, AverageSixteenCoreSpeedupNearPaper)
{
    // Paper Figure 7: average parallel speedup of 10.2x on 16 cores
    // with the full PCM. Accept a generous band around it.
    double total = 0.0;
    int n = 0;
    for (KernelId id : allKernels()) {
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::B;
        const RunResult base = runBaselineExperiment(spec);
        const RunResult par = runParallelSprintExperiment(spec);
        const double s = speedupOver(base, par);
        EXPECT_GT(s, 3.0) << kernelName(id);
        // Aggregate L1 capacity can make memory-heavy kernels
        // mildly superlinear at our scaled inputs.
        EXPECT_LE(s, 20.0) << kernelName(id);
        total += s;
        ++n;
    }
    const double avg = total / n;
    EXPECT_GT(avg, 7.0);
    EXPECT_LT(avg, 14.0);
}

TEST(Integration, ParallelSprintDominatesDvfsEverywhere)
{
    for (KernelId id : allKernels()) {
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::A;
        const RunResult base = runBaselineExperiment(spec);
        const RunResult par = runParallelSprintExperiment(spec);
        const RunResult dvfs = runDvfsSprintExperiment(spec);
        EXPECT_GT(speedupOver(base, par), speedupOver(base, dvfs))
            << kernelName(id);
    }
}

TEST(Integration, SmallPcmHurtsEveryKernel)
{
    for (KernelId id : {KernelId::Sobel, KernelId::Kmeans}) {
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::B;
        const RunResult base = runBaselineExperiment(spec);
        ExperimentSpec small = spec;
        small.pcm_mass = kSmallPcm;
        const RunResult full = runParallelSprintExperiment(spec);
        const RunResult tiny = runParallelSprintExperiment(small);
        EXPECT_LT(speedupOver(base, tiny), speedupOver(base, full))
            << kernelName(id);
    }
}

TEST(Integration, SobelAndKmeansScaleBest)
{
    // Paper Figure 10: kmeans and sobel keep scaling to 64 cores,
    // while segment and texture are parallelism-limited.
    auto speedup_at = [](KernelId id, int cores) {
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::B;
        spec.cores = cores;
        spec.time_scale = 1e-2;  // fixed-V/f study: ample budget
        const RunResult base = runBaselineExperiment(spec);
        const RunResult par = runParallelSprintExperiment(spec);
        return speedupOver(base, par);
    };
    const double sobel64 = speedup_at(KernelId::Sobel, 64);
    const double texture64 = speedup_at(KernelId::Texture, 64);
    const double segment64 = speedup_at(KernelId::Segment, 64);
    EXPECT_GT(sobel64, 20.0);
    EXPECT_LT(texture64, sobel64);
    EXPECT_LT(segment64, sobel64);
}

TEST(Integration, EnergyParityInLinearRegime)
{
    // Paper Figure 11 / Section 8.6: on 16 cores the dynamic energy
    // overhead of parallel sprinting is at most ~10-12% for most
    // kernels.
    int within = 0;
    for (KernelId id : allKernels()) {
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::B;
        const RunResult base = runBaselineExperiment(spec);
        const RunResult par = runParallelSprintExperiment(spec);
        const double ratio = energyRatio(base, par);
        EXPECT_GT(ratio, 0.85) << kernelName(id);
        EXPECT_LT(ratio, 1.6) << kernelName(id);
        if (ratio < 1.15)
            ++within;
    }
    // Paper: "less than 10% on five out of six workloads".
    EXPECT_GE(within, 4);
}

TEST(Integration, LargerInputsNeedMoreThermalCapacitance)
{
    // Paper Figure 9: larger inputs exhaust the small design point
    // harder, widening the gap between PCM sizes.
    ExperimentSpec spec;
    spec.kernel = KernelId::Sobel;
    spec.pcm_mass = kSmallPcm;
    spec.size = InputSize::A;
    const double small_a =
        speedupOver(runBaselineExperiment(spec),
                    runParallelSprintExperiment(spec));
    spec.size = InputSize::C;
    const double small_c =
        speedupOver(runBaselineExperiment(spec),
                    runParallelSprintExperiment(spec));
    EXPECT_LT(small_c, small_a + 0.5);
}

} // namespace
} // namespace csprint
