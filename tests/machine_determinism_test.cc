/**
 * @file
 * Event-driven/reference parity: the skip-ahead scheduler with batched
 * op streams (MachineLoop::EventDriven) must reproduce the retained
 * cycle-by-cycle loop (MachineLoop::Reference) *exactly* — identical
 * MachineStats (including bit-identical dynamic energy and wall-clock
 * seconds), identical L2/memory counters, identical per-sample hook
 * observations, and identical junction-temperature traces on coupled
 * runs — across serial, static, and dynamic phases, PAUSE/lock-spin
 * backoff, thread multiplexing, and mid-run control (consolidation,
 * frequency throttling, energy-model swaps).
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "archsim/machine.hh"
#include "archsim/program.hh"
#include "sprint/experiment.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

struct RunCapture
{
    MachineStats machine;
    L2Stats l2;
    MemoryStats memory;
    std::vector<std::pair<Seconds, Joules>> samples;
};

/** Compare every statistic exactly (doubles bit-for-bit). */
void
expectIdentical(const RunCapture &ref, const RunCapture &ev)
{
    EXPECT_EQ(ref.machine.cycles, ev.machine.cycles);
    EXPECT_EQ(ref.machine.seconds, ev.machine.seconds);
    EXPECT_EQ(ref.machine.ops_retired, ev.machine.ops_retired);
    EXPECT_EQ(ref.machine.ops_by_kind, ev.machine.ops_by_kind);
    EXPECT_EQ(ref.machine.l1_hits, ev.machine.l1_hits);
    EXPECT_EQ(ref.machine.l1_misses, ev.machine.l1_misses);
    EXPECT_EQ(ref.machine.idle_cycles, ev.machine.idle_cycles);
    EXPECT_EQ(ref.machine.sleep_cycles, ev.machine.sleep_cycles);
    EXPECT_EQ(ref.machine.barrier_arrivals,
              ev.machine.barrier_arrivals);
    EXPECT_EQ(ref.machine.dynamic_energy, ev.machine.dynamic_energy);

    EXPECT_EQ(ref.l2.hits, ev.l2.hits);
    EXPECT_EQ(ref.l2.misses, ev.l2.misses);
    EXPECT_EQ(ref.l2.invalidations_sent, ev.l2.invalidations_sent);
    EXPECT_EQ(ref.l2.downgrades_sent, ev.l2.downgrades_sent);
    EXPECT_EQ(ref.l2.inclusion_recalls, ev.l2.inclusion_recalls);
    EXPECT_EQ(ref.l2.writebacks_received, ev.l2.writebacks_received);

    EXPECT_EQ(ref.memory.reads, ev.memory.reads);
    EXPECT_EQ(ref.memory.writebacks, ev.memory.writebacks);
    EXPECT_EQ(ref.memory.queued_cycles, ev.memory.queued_cycles);

    ASSERT_EQ(ref.samples.size(), ev.samples.size());
    for (std::size_t i = 0; i < ref.samples.size(); ++i) {
        EXPECT_EQ(ref.samples[i].first, ev.samples[i].first)
            << "dt diverged at sample " << i;
        EXPECT_EQ(ref.samples[i].second, ev.samples[i].second)
            << "energy diverged at sample " << i;
    }
}

using HookFactory =
    std::function<Machine::SampleHook(RunCapture &capture)>;

/** Record every per-sample observation. */
Machine::SampleHook
recordingHook(RunCapture &capture)
{
    return [&capture](Machine &, Seconds dt, Joules e) {
        capture.samples.emplace_back(dt, e);
    };
}

RunCapture
runOnce(MachineLoop loop, const std::function<ParallelProgram()> &make,
        MachineConfig cfg, const HookFactory &hook_factory)
{
    const ParallelProgram program = make();
    cfg.loop = loop;
    Machine machine(cfg, program);
    RunCapture capture;
    if (hook_factory)
        machine.setSampleHook(hook_factory(capture), 1000);
    machine.run();
    capture.machine = machine.stats();
    capture.l2 = machine.l2Stats();
    capture.memory = machine.memoryStats();
    return capture;
}

void
expectLoopsAgree(const std::function<ParallelProgram()> &make,
                 const MachineConfig &cfg,
                 const HookFactory &hook_factory = nullptr)
{
    const RunCapture ref =
        runOnce(MachineLoop::Reference, make, cfg, hook_factory);
    const RunCapture ev =
        runOnce(MachineLoop::EventDriven, make, cfg, hook_factory);
    expectIdentical(ref, ev);
}

MachineConfig
cfgOf(int cores, int threads)
{
    MachineConfig cfg;
    cfg.num_cores = cores;
    cfg.num_threads = threads;
    return cfg;
}

Phase
aluPhase(PhaseKind kind, std::size_t tasks, std::size_t n)
{
    Phase p;
    p.kind = kind;
    p.num_tasks = tasks;
    p.make_task = [n](std::size_t) -> std::unique_ptr<OpStream> {
        return std::make_unique<VectorOpStream>(
            std::vector<MicroOp>(n, MicroOp::intAlu()));
    };
    return p;
}

TEST(MachineDeterminism, SerialAluAndMemoryMix)
{
    auto make = [] {
        ParallelProgram prog("serial_mix");
        Phase p;
        p.kind = PhaseKind::Serial;
        p.num_tasks = 3;
        p.make_task = [](std::size_t t) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            for (int i = 0; i < 4000; ++i) {
                ops.push_back(MicroOp::load(
                    0x1000 + 64 * ((t * 4000 + i) % 700)));
                ops.push_back(MicroOp::intAlu());
                ops.push_back(MicroOp::fpAlu());
                if (i % 5 == 0)
                    ops.push_back(
                        MicroOp::store(0x80000 + 64 * (i % 300)));
                ops.push_back(MicroOp::branch());
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    expectLoopsAgree(make, cfgOf(1, 1), recordingHook);
}

TEST(MachineDeterminism, StaticPhaseSharedReadsPrivateWrites)
{
    // Cross-core read sharing plus store upgrades: coherence
    // downgrades and invalidations interleave with stride commits.
    auto make = [] {
        ParallelProgram prog("static_shared");
        Phase p;
        p.kind = PhaseKind::ParallelStatic;
        p.num_tasks = 16;
        p.make_task = [](std::size_t t) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            for (int i = 0; i < 3000; ++i) {
                // Everyone reads the same table...
                ops.push_back(MicroOp::load(0x2000 + 64 * (i % 97)));
                ops.push_back(MicroOp::intAlu());
                // ...and writes a private stripe.
                ops.push_back(MicroOp::store(
                    0x200000 + t * 0x10000 + 64 * (i % 120)));
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    expectLoopsAgree(make, cfgOf(8, 8), recordingHook);
}

TEST(MachineDeterminism, CoherencePingPong)
{
    // The adversarial case for batched op streams: two cores
    // alternately store to one line, so nearly every access carries a
    // cross-core invalidation.
    auto make = [] {
        ParallelProgram prog("pingpong");
        Phase p;
        p.kind = PhaseKind::ParallelStatic;
        p.num_tasks = 2;
        p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            for (int i = 0; i < 4000; ++i) {
                ops.push_back(MicroOp::store(0x1000));
                ops.push_back(MicroOp::intAlu());
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    expectLoopsAgree(make, cfgOf(2, 2), recordingHook);
}

TEST(MachineDeterminism, SharedLineRandomTrafficFuzz)
{
    // Randomized mixed loads/stores over a handful of shared lines:
    // the regression net for within-cycle ordering between deferred
    // stride commits and cross-core coherence actions (a lower-id
    // core's op on the mutation cycle itself must replay against the
    // pre-mutation state).
    for (unsigned seed = 1; seed <= 20; ++seed) {
        auto make = [seed] {
            ParallelProgram prog("fuzz");
            Phase p;
            p.kind = PhaseKind::ParallelStatic;
            p.num_tasks = 4;
            p.make_task =
                [seed](std::size_t t) -> std::unique_ptr<OpStream> {
                std::mt19937 rng(seed * 97 + static_cast<unsigned>(t));
                std::vector<MicroOp> ops;
                for (int i = 0; i < 400; ++i) {
                    if (rng() % 100 < 35) {
                        const std::uint64_t a =
                            0x1000 + 64 * (rng() % 4);
                        ops.push_back(rng() % 3 == 0
                                          ? MicroOp::store(a)
                                          : MicroOp::load(a));
                    } else {
                        ops.push_back(MicroOp::intAlu());
                    }
                }
                return std::make_unique<VectorOpStream>(
                    std::move(ops));
            };
            prog.addPhase(std::move(p));
            return prog;
        };
        SCOPED_TRACE(seed);
        expectLoopsAgree(make, cfgOf(4, 4), recordingHook);
    }
}

TEST(MachineDeterminism, DynamicPhaseDequeueContention)
{
    auto make = [] {
        ParallelProgram prog("dequeue");
        Phase p;
        p.kind = PhaseKind::ParallelDynamic;
        p.num_tasks = 600;
        p.make_task = [](std::size_t t) -> std::unique_ptr<OpStream> {
            return std::make_unique<VectorOpStream>(std::vector<MicroOp>(
                20 + t % 13, MicroOp::intAlu()));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    expectLoopsAgree(make, cfgOf(16, 16), recordingHook);
}

TEST(MachineDeterminism, LockSpinPauseBackoffOversubscribed)
{
    // 8 threads on 2 cores hammering one lock: spin, PAUSE backoff,
    // sleeps, and quantum preemption all in play.
    auto make = [] {
        ParallelProgram prog("hammer");
        Phase p;
        p.kind = PhaseKind::ParallelStatic;
        p.num_tasks = 8;
        p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            for (int i = 0; i < 60; ++i) {
                ops.push_back(MicroOp::lockAcquire(0));
                for (int j = 0; j < 120; ++j)
                    ops.push_back(MicroOp::intAlu());
                ops.push_back(MicroOp::lockRelease(0));
                ops.push_back(MicroOp::pause());
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    expectLoopsAgree(make, cfgOf(2, 8), recordingHook);
}

TEST(MachineDeterminism, MultiplexedQuantumPreemption)
{
    auto make = [] {
        ParallelProgram prog("mux");
        prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 6, 150000));
        return prog;
    };
    MachineConfig cfg = cfgOf(2, 6);
    cfg.thread_quantum = 7000;
    expectLoopsAgree(make, cfg, recordingHook);
}

TEST(MachineDeterminism, MultiPhaseBarrierCrossings)
{
    auto make = [] {
        ParallelProgram prog("phases");
        prog.addPhase(aluPhase(PhaseKind::Serial, 2, 2000));
        prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 24, 900));
        prog.addPhase(aluPhase(PhaseKind::ParallelDynamic, 40, 350));
        prog.addPhase(aluPhase(PhaseKind::Serial, 1, 512));
        return prog;
    };
    expectLoopsAgree(make, cfgOf(6, 6), recordingHook);
}

TEST(MachineDeterminism, ConsolidateToSingleCoreMidRun)
{
    auto make = [] {
        ParallelProgram prog("consolidate");
        prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 16, 40000));
        return prog;
    };
    HookFactory hook = [](RunCapture &capture) {
        auto consolidated = std::make_shared<bool>(false);
        return [&capture, consolidated](Machine &m, Seconds dt,
                                        Joules e) {
            capture.samples.emplace_back(dt, e);
            if (!*consolidated && m.simTime() > 20e-6) {
                *consolidated = true;
                m.consolidateToSingleCore();
            }
        };
    };
    expectLoopsAgree(make, cfgOf(16, 16), hook);
}

TEST(MachineDeterminism, FrequencyThrottleAndEnergySwapMidRun)
{
    auto make = [] {
        ParallelProgram prog("throttle");
        prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 4, 120000));
        return prog;
    };
    HookFactory hook = [](RunCapture &capture) {
        auto stage = std::make_shared<int>(0);
        return [&capture, stage](Machine &m, Seconds dt, Joules e) {
            capture.samples.emplace_back(dt, e);
            if (*stage == 0 && m.stats().ops_retired > 100000) {
                *stage = 1;
                m.setFrequencyMult(0.5);
                m.setEnergyModel(
                    InstructionEnergyModel().boosted(1.5));
            } else if (*stage == 1 &&
                       m.stats().ops_retired > 300000) {
                *stage = 2;
                m.setFrequencyMult(1.0);
                m.setEnergyModel(InstructionEnergyModel());
            }
        };
    };
    expectLoopsAgree(make, cfgOf(4, 4), hook);
}

TEST(MachineDeterminism, AbortStopsAtTheSameCycle)
{
    auto make = [] {
        ParallelProgram prog("abort");
        prog.addPhase(aluPhase(PhaseKind::Serial, 1, 4000000));
        return prog;
    };
    HookFactory hook = [](RunCapture &capture) {
        return [&capture](Machine &m, Seconds dt, Joules e) {
            capture.samples.emplace_back(dt, e);
            if (m.simTime() > 40e-6)
                m.abort();
        };
    };
    expectLoopsAgree(make, cfgOf(1, 1), hook);
}

TEST(MachineDeterminism, KernelProgramsMatchOnAllKernels)
{
    for (KernelId id : allKernels()) {
        auto make = [id] {
            return buildKernelProgram(id, InputSize::A, 42);
        };
        SCOPED_TRACE(kernelName(id));
        expectLoopsAgree(make, cfgOf(16, 16), recordingHook);
    }
}

TEST(MachineDeterminism, ParallelDispatchThreadCountInvariant)
{
    // dispatch_threads partitions the skip-ahead probe across host
    // threads; the committed schedule must be bit-identical to the
    // serial loop (and, transitively, to the reference loop) for
    // every lane count.
    auto make = [] {
        ParallelProgram prog("par_dispatch");
        Phase p;
        p.kind = PhaseKind::ParallelStatic;
        p.num_tasks = 16;
        p.make_task = [](std::size_t t) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            for (int i = 0; i < 2000; ++i) {
                ops.push_back(MicroOp::load(0x2000 + 64 * (i % 97)));
                ops.push_back(MicroOp::intAlu());
                ops.push_back(MicroOp::store(
                    0x200000 + t * 0x10000 + 64 * (i % 120)));
                if (i % 31 == 30)
                    ops.push_back(MicroOp::store(0x3000));
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    const RunCapture serial = runOnce(MachineLoop::EventDriven, make,
                                      cfgOf(16, 16), recordingHook);
    for (int threads : {2, 8}) {
        SCOPED_TRACE(threads);
        MachineConfig par = cfgOf(16, 16);
        par.dispatch_threads = threads;
        const RunCapture parallel = runOnce(MachineLoop::EventDriven,
                                            make, par, recordingHook);
        expectIdentical(serial, parallel);
    }
}

TEST(MachineDeterminism, ManyCoreSparseMatchesFullMap)
{
    // 256 cores reading one shared table puts >64 sharers on each
    // line — past the old one-word bitmask cap, so every entry lives
    // in an overflow bitset — and periodic stores to the table force
    // wide invalidation storms. Sparse and full-map directories must
    // agree bit-for-bit.
    auto make = [] {
        ParallelProgram prog("manycore_shared");
        Phase p;
        p.kind = PhaseKind::ParallelStatic;
        p.num_tasks = 256;
        p.make_task = [](std::size_t t) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            for (int i = 0; i < 250; ++i) {
                ops.push_back(MicroOp::load(0x2000 + 64 * (i % 37)));
                ops.push_back(MicroOp::intAlu());
                if (t % 16 == 0 && i % 60 == 59)
                    ops.push_back(
                        MicroOp::store(0x2000 + 64 * (i % 37)));
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    MachineConfig sparse = cfgOf(256, 256);
    MachineConfig flat = sparse;
    flat.l2.directory = DirectoryKind::FullMap;
    const RunCapture s = runOnce(MachineLoop::EventDriven, make,
                                 sparse, recordingHook);
    const RunCapture f = runOnce(MachineLoop::EventDriven, make, flat,
                                 recordingHook);
    expectIdentical(s, f);
    EXPECT_GT(s.machine.ops_retired, 0u);
    EXPECT_GT(s.l2.invalidations_sent, 64u);
}

TEST(MachineDeterminism, RunsAt1024Cores)
{
    // The former 64-core ceiling: a 1024-core machine must construct,
    // run to completion, and stay thread-count invariant.
    auto make = [] {
        ParallelProgram prog("kilocored");
        Phase p;
        p.kind = PhaseKind::ParallelStatic;
        p.num_tasks = 1024;
        p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            for (int i = 0; i < 100; ++i) {
                ops.push_back(MicroOp::load(0x4000 + 64 * (i % 17)));
                ops.push_back(MicroOp::intAlu());
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    const RunCapture serial = runOnce(MachineLoop::EventDriven, make,
                                      cfgOf(1024, 1024), recordingHook);
    EXPECT_EQ(serial.machine.ops_retired, 1024u * 200u);
    MachineConfig par = cfgOf(1024, 1024);
    par.dispatch_threads = 8;
    const RunCapture parallel = runOnce(MachineLoop::EventDriven, make,
                                        par, recordingHook);
    expectIdentical(serial, parallel);
}

TEST(MachineDeterminism, CoupledJunctionTraceIdentical)
{
    // The full coupled simulation of the paper's evaluation: the
    // governor-driven sprint (exhaustion, consolidation, throttling)
    // must produce the exact same junction-temperature trace and
    // RunResult whichever scheduler loop runs the machine.
    for (Grams pcm : {kSmallPcm, kFullPcm}) {
        ExperimentSpec spec;
        spec.kernel = KernelId::Sobel;
        spec.size = InputSize::A;
        spec.cores = 16;
        spec.pcm_mass = pcm;

        spec.loop = MachineLoop::Reference;
        const RunResult ref = runParallelSprintExperiment(spec);
        spec.loop = MachineLoop::EventDriven;
        const RunResult ev = runParallelSprintExperiment(spec);

        EXPECT_EQ(ref.machine.cycles, ev.machine.cycles);
        EXPECT_EQ(ref.machine.ops_retired, ev.machine.ops_retired);
        EXPECT_EQ(ref.machine.idle_cycles, ev.machine.idle_cycles);
        EXPECT_EQ(ref.machine.sleep_cycles, ev.machine.sleep_cycles);
        EXPECT_EQ(ref.machine.dynamic_energy,
                  ev.machine.dynamic_energy);
        EXPECT_EQ(ref.task_time, ev.task_time);
        EXPECT_EQ(ref.peak_junction, ev.peak_junction);
        EXPECT_EQ(ref.sprint_exhausted, ev.sprint_exhausted);
        EXPECT_EQ(ref.hardware_throttled, ev.hardware_throttled);
        ASSERT_EQ(ref.junction_trace.size(), ev.junction_trace.size());
        for (std::size_t i = 0; i < ref.junction_trace.size(); ++i) {
            ASSERT_EQ(ref.junction_trace.valueAt(i),
                      ev.junction_trace.valueAt(i))
                << "junction trace diverged at sample " << i
                << " (pcm " << pcm << " g)";
        }
    }
}

} // namespace
} // namespace csprint
