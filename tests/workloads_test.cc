/**
 * @file
 * Tests for the kernel suite: functional correctness of the reference
 * implementations and structural properties of the simulated op-stream
 * programs (op counts, mixes, determinism, scaling with input size).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "workloads/disparity.hh"
#include "workloads/feature.hh"
#include "workloads/image.hh"
#include "workloads/kmeans.hh"
#include "workloads/segment.hh"
#include "workloads/sobel.hh"
#include "workloads/texture.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

// --- Image substrate ---

TEST(ImageGen, DeterministicAndBounded)
{
    const Image a = makeSyntheticImage(64, 48, 7);
    const Image b = makeSyntheticImage(64, 48, 7);
    const Image c = makeSyntheticImage(64, 48, 8);
    EXPECT_EQ(a.data(), b.data());
    EXPECT_NE(a.data(), c.data());
    for (float v : a.data()) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(ImageGen, ClampedAccessor)
{
    const Image img = makeSyntheticImage(8, 8, 1);
    EXPECT_EQ(img.atClamped(-5, 3), img.at(0, 3));
    EXPECT_EQ(img.atClamped(3, 100), img.at(3, 7));
}

TEST(ImageGen, IntegralImageMatchesBruteForce)
{
    const Image img = makeSyntheticImage(20, 15, 3);
    const Image integral = integralImage(img);
    double brute = 0.0;
    for (std::size_t y = 0; y <= 9; ++y)
        for (std::size_t x = 0; x <= 12; ++x)
            brute += img.at(x, y);
    EXPECT_NEAR(boxSum(integral, 0, 0, 12, 9), brute, 1e-3);
    // Interior box.
    brute = 0.0;
    for (std::size_t y = 4; y <= 8; ++y)
        for (std::size_t x = 5; x <= 11; ++x)
            brute += img.at(x, y);
    EXPECT_NEAR(boxSum(integral, 5, 4, 11, 8), brute, 1e-3);
}

TEST(ImageGen, ShiftedImageEncodesDisparity)
{
    const Image left = makeSyntheticImage(64, 32, 5);
    std::vector<int> truth;
    const Image right = makeShiftedImage(left, 8, 6, &truth);
    ASSERT_EQ(truth.size(), 64u * 32u);
    // Away from borders, right(x) == left(x + d).
    for (std::size_t y = 2; y < 30; y += 7) {
        for (std::size_t x = 2; x + 10 < 64; x += 11) {
            const int d = truth[y * 64 + x];
            EXPECT_FLOAT_EQ(right.at(x, y), left.at(x + d, y));
        }
    }
}

// --- Reference kernels ---

TEST(SobelRef, FlatImageHasZeroGradient)
{
    Image flat(16, 16);
    for (auto &v : flat.data())
        v = 0.5f;
    const Image out = sobelReference(flat);
    for (float v : out.data())
        EXPECT_NEAR(v, 0.0f, 1e-6);
}

TEST(SobelRef, VerticalEdgeDetected)
{
    Image img(16, 16);
    for (std::size_t y = 0; y < 16; ++y)
        for (std::size_t x = 0; x < 16; ++x)
            img.set(x, y, x < 8 ? 0.0f : 1.0f);
    const Image out = sobelReference(img);
    // Strong response at the edge columns, zero far away.
    EXPECT_GT(out.at(7, 8), 1.0f);
    EXPECT_GT(out.at(8, 8), 1.0f);
    EXPECT_NEAR(out.at(2, 8), 0.0f, 1e-6);
    EXPECT_NEAR(out.at(13, 8), 0.0f, 1e-6);
}

TEST(KmeansRef, RecoversPlantedClusters)
{
    KmeansConfig cfg;
    cfg.num_points = 2000;
    cfg.seed = 11;
    const KmeansResult r = kmeansReference(cfg);
    EXPECT_GE(r.iterations, 2u);
    EXPECT_LE(r.iterations, cfg.max_iters);
    // Every point lands within a sane distance of its centroid.
    for (int a : r.assignment) {
        EXPECT_GE(a, 0);
        EXPECT_LT(a, static_cast<int>(cfg.clusters));
    }
}

TEST(KmeansRef, DeterministicForSeed)
{
    KmeansConfig cfg;
    cfg.num_points = 1500;
    const KmeansResult a = kmeansReference(cfg);
    const KmeansResult b = kmeansReference(cfg);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(DisparityRef, RecoversPlantedShift)
{
    DisparityConfig cfg;
    cfg.width = 96;
    cfg.height = 64;
    cfg.seed = 9;
    const DisparityResult r = disparityReference(cfg);
    // Block matching on clean synthetic shifts should be mostly right.
    EXPECT_GT(r.accuracy, 0.6);
}

TEST(TextureRef, OutputBoundedAndDeterministic)
{
    TextureConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    const Image a = textureReference(cfg);
    const Image b = textureReference(cfg);
    EXPECT_EQ(a.data(), b.data());
    for (float v : a.data()) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(SegmentRef, LabelsValidAndTilesWeighted)
{
    SegmentConfig cfg;
    cfg.width = 96;
    cfg.height = 96;
    const SegmentResult r = segmentReference(cfg);
    for (int l : r.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, static_cast<int>(cfg.classes));
    }
    // Detail-driven refinement must produce non-uniform tile weights.
    int lo = 100, hi = 0;
    for (int it : r.tile_iters) {
        lo = std::min(lo, it);
        hi = std::max(hi, it);
        EXPECT_GE(it, 1);
        EXPECT_LE(it, cfg.max_refine);
    }
    EXPECT_GT(hi, lo);
}

TEST(FeatureRef, FindsKeypointsWithDescriptors)
{
    FeatureConfig cfg;
    cfg.width = 128;
    cfg.height = 128;
    const FeatureResult r = featureReference(cfg);
    EXPECT_GT(r.keypoints.size(), 10u);
    for (const auto &kp : r.keypoints) {
        EXPECT_LT(kp.x, cfg.width);
        EXPECT_LT(kp.y, cfg.height);
        EXPECT_EQ(kp.descriptor.size(), 16u);
        EXPECT_GT(kp.response, cfg.threshold);
    }
}

TEST(FeatureRef, ThresholdMonotone)
{
    FeatureConfig loose;
    loose.width = 96;
    loose.height = 96;
    loose.threshold = 0.01;
    FeatureConfig tight = loose;
    tight.threshold = 0.05;
    EXPECT_GE(featureReference(loose).keypoints.size(),
              featureReference(tight).keypoints.size());
}

// --- Simulated programs ---

TEST(Programs, AllKernelsBuildAndHaveWork)
{
    for (KernelId id : allKernels()) {
        const ParallelProgram prog =
            buildKernelProgram(id, InputSize::A, 42);
        EXPECT_EQ(prog.name(), kernelName(id));
        EXPECT_FALSE(prog.phases().empty()) << kernelName(id);
        const std::uint64_t ops = countProgramOps(prog);
        EXPECT_GT(ops, 50000u) << kernelName(id);
        EXPECT_LT(ops, 80000000u) << kernelName(id);
    }
}

TEST(Programs, OpCountGrowsWithInputSize)
{
    for (KernelId id : allKernels()) {
        const std::uint64_t small = countProgramOps(
            buildKernelProgram(id, InputSize::A, 42));
        const std::uint64_t large = countProgramOps(
            buildKernelProgram(id, InputSize::C, 42));
        EXPECT_GT(large, 2 * small) << kernelName(id);
    }
}

TEST(Programs, TaskStreamsAreDeterministic)
{
    for (KernelId id : allKernels()) {
        const ParallelProgram p1 =
            buildKernelProgram(id, InputSize::A, 7);
        const ParallelProgram p2 =
            buildKernelProgram(id, InputSize::A, 7);
        EXPECT_EQ(countProgramOps(p1), countProgramOps(p2))
            << kernelName(id);
    }
}

TEST(Programs, SobelOpMixMatchesStencil)
{
    const SobelConfig cfg;
    const ParallelProgram prog = sobelProgram(cfg);
    std::map<OpKind, std::uint64_t> mix;
    for (const auto &phase : prog.phases()) {
        for (std::size_t t = 0; t < phase.num_tasks; ++t) {
            auto s = phase.make_task(t);
            MicroOp op;
            while (s->next(op))
                ++mix[op.kind()];
        }
    }
    const std::uint64_t pixels = cfg.width * cfg.height;
    EXPECT_EQ(mix[OpKind::Load], pixels * 8);   // 8 neighbours
    EXPECT_EQ(mix[OpKind::Store], pixels);      // 1 output
    EXPECT_EQ(mix[OpKind::Branch], pixels);     // loop branch
    EXPECT_EQ(mix[OpKind::IntAlu], pixels * 8);
    EXPECT_EQ(mix[OpKind::FpAlu], pixels * 3);
}

TEST(Programs, KmeansHasLockProtectedReduction)
{
    KmeansConfig cfg;
    cfg.num_points = 1024;
    const ParallelProgram prog = kmeansProgram(cfg);
    std::uint64_t acquires = 0, releases = 0;
    bool has_serial = false;
    for (const auto &phase : prog.phases()) {
        has_serial |= phase.kind == PhaseKind::Serial;
        for (std::size_t t = 0; t < phase.num_tasks; ++t) {
            auto s = phase.make_task(t);
            MicroOp op;
            while (s->next(op)) {
                acquires += op.kind() == OpKind::LockAcquire;
                releases += op.kind() == OpKind::LockRelease;
            }
        }
    }
    EXPECT_GT(acquires, 0u);
    EXPECT_EQ(acquires, releases);
    EXPECT_TRUE(has_serial);  // the re-centering phases
}

TEST(Programs, TextureHasSerialFractionUnderTenPercent)
{
    const TextureConfig cfg;
    const ParallelProgram prog = textureProgram(cfg);
    std::uint64_t serial_ops = 0, parallel_ops = 0;
    for (const auto &phase : prog.phases()) {
        std::uint64_t ops = 0;
        for (std::size_t t = 0; t < phase.num_tasks; ++t) {
            auto s = phase.make_task(t);
            MicroOp op;
            while (s->next(op))
                ++ops;
        }
        if (phase.kind == PhaseKind::Serial)
            serial_ops += ops;
        else
            parallel_ops += ops;
    }
    const double frac =
        static_cast<double>(serial_ops) / (serial_ops + parallel_ops);
    EXPECT_GT(frac, 0.005);  // a real Amdahl term...
    EXPECT_LT(frac, 0.10);   // ...but not a dominant one
}

TEST(Programs, SegmentTasksAreImbalanced)
{
    SegmentConfig cfg;
    const ParallelProgram prog = segmentProgram(cfg);
    ASSERT_EQ(prog.phases().size(), 1u);
    const Phase &phase = prog.phases()[0];
    EXPECT_EQ(phase.kind, PhaseKind::ParallelDynamic);
    std::uint64_t min_ops = ~0ULL, max_ops = 0;
    for (std::size_t t = 0; t < phase.num_tasks; ++t) {
        auto s = phase.make_task(t);
        MicroOp op;
        std::uint64_t ops = 0;
        while (s->next(op))
            ++ops;
        min_ops = std::min(min_ops, ops);
        max_ops = std::max(max_ops, ops);
    }
    EXPECT_GT(max_ops, min_ops * 3 / 2);  // data-dependent weights
}

TEST(Programs, FeatureDescriptorTasksMatchKeypoints)
{
    FeatureConfig cfg;
    cfg.width = 128;
    cfg.height = 128;
    const FeatureResult ref = featureReference(cfg);
    const ParallelProgram prog = featureProgram(cfg);
    const Phase &desc = prog.phases().back();
    EXPECT_EQ(desc.kind, PhaseKind::ParallelDynamic);
    EXPECT_EQ(desc.num_tasks, ref.keypoints.size());
}

TEST(Programs, Table1HasSixKernels)
{
    const auto table = kernelTable();
    EXPECT_EQ(table.size(), 6u);
    EXPECT_EQ(allKernels().size(), 6u);
}

} // namespace
} // namespace csprint
