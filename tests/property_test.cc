/**
 * @file
 * Parameterized property sweeps (TEST_P): cache geometries, PCM
 * masses, activation ramps, scaling scenarios, RNG seeds, and machine
 * shapes. Each suite asserts an invariant across the whole sweep.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "archsim/cache.hh"
#include "archsim/machine.hh"
#include "powergrid/pdn.hh"
#include "scaling/darksilicon.hh"
#include "sprint/experiment.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

// --- Cache geometry properties ---

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometry, HitRateOneForResidentSet)
{
    const auto [kb, assoc] = GetParam();
    Cache c(static_cast<std::size_t>(kb) * 1024, assoc, 64);
    const std::size_t lines = c.numSets() * assoc;
    // Touch exactly capacity lines twice: second pass all hits.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t l = 0; l < lines; ++l)
            c.access(l, false);
    EXPECT_EQ(c.stats().misses, lines);
    EXPECT_EQ(c.stats().hits, lines);
    EXPECT_EQ(c.validLines(), lines);
}

TEST_P(CacheGeometry, InvalidateThenMiss)
{
    const auto [kb, assoc] = GetParam();
    Cache c(static_cast<std::size_t>(kb) * 1024, assoc, 64);
    c.access(11, true);
    EXPECT_TRUE(c.invalidate(11));
    EXPECT_FALSE(c.access(11, false).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometry,
    ::testing::Values(std::make_tuple(8, 1), std::make_tuple(8, 2),
                      std::make_tuple(16, 4), std::make_tuple(32, 8),
                      std::make_tuple(64, 16)));

// --- PCM mass properties ---

class PcmMass : public ::testing::TestWithParam<double>
{
};

TEST_P(PcmMass, SprintDurationMonotoneInMass)
{
    const double mass = GetParam();
    MobilePackageModel smaller(
        MobilePackageParams::phonePcm(mass * 0.5));
    MobilePackageModel larger(MobilePackageParams::phonePcm(mass));
    const auto tr_small = runSprintTransient(smaller, 16.0, 10.0);
    const auto tr_large = runSprintTransient(larger, 16.0, 10.0);
    EXPECT_LE(tr_small.time_to_limit, tr_large.time_to_limit + 1e-6);
}

TEST_P(PcmMass, BudgetScalesWithMass)
{
    const double mass = GetParam();
    MobilePackageModel pkg(MobilePackageParams::phonePcm(mass));
    const Joules latent =
        mass * MobilePackageParams::phonePcm().pcm_latent_per_gram;
    EXPECT_GE(pkg.sprintEnergyBudget(), latent);
}

INSTANTIATE_TEST_SUITE_P(Masses, PcmMass,
                         ::testing::Values(0.015, 0.075, 0.150, 0.300));

// --- Activation-ramp properties ---

class RampSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RampSweep, LongerRampsNeverUndershootMore)
{
    const double ramp = GetParam();
    PdnParams params = PdnParams::paper16();
    PowerDeliveryNetwork a(
        params, ActivationSchedule::linearRamp(ramp, 2e-6));
    PowerDeliveryNetwork b(
        params, ActivationSchedule::linearRamp(4.0 * ramp, 2e-6));
    const auto ma = computeSupplyMetrics(
        a.simulate(ramp * 3 + 60e-6, 2e-9, 100e-9), params.vdd, 0.02,
        2e-6);
    const auto mb = computeSupplyMetrics(
        b.simulate(12.0 * ramp + 60e-6, 2e-9, 200e-9), params.vdd,
        0.02, 2e-6);
    EXPECT_LE(ma.min_voltage, mb.min_voltage + 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Ramps, RampSweep,
                         ::testing::Values(1.28e-6, 5e-6, 32e-6));

// --- Scaling scenarios ---

class ScenarioSweep
    : public ::testing::TestWithParam<ScalingScenario>
{
};

TEST_P(ScenarioSweep, DarkFractionMonotone)
{
    const auto proj = projectDarkSilicon(GetParam());
    for (std::size_t i = 1; i < proj.size(); ++i)
        EXPECT_GE(proj[i].dark_fraction, proj[i - 1].dark_fraction);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ScenarioSweep,
    ::testing::Values(ScalingScenario::Itrs, ScalingScenario::Borkar,
                      ScalingScenario::ItrsBorkarVdd));

// --- Seed invariance of workload structure ---

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, SobelOpCountIndependentOfSeed)
{
    // Sobel's structure is data-independent: op counts must not vary
    // with the input content.
    const auto ops = countProgramOps(
        buildKernelProgram(KernelId::Sobel, InputSize::A, GetParam()));
    const auto ops_ref = countProgramOps(
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42));
    EXPECT_EQ(ops, ops_ref);
}

TEST_P(SeedSweep, MachineDeterminismPerSeed)
{
    const ParallelProgram p1 =
        buildKernelProgram(KernelId::Segment, InputSize::A, GetParam());
    const ParallelProgram p2 =
        buildKernelProgram(KernelId::Segment, InputSize::A, GetParam());
    MachineConfig cfg;
    cfg.num_cores = 4;
    cfg.num_threads = 4;
    Machine m1(cfg, p1);
    m1.run();
    Machine m2(cfg, p2);
    m2.run();
    EXPECT_EQ(m1.stats().cycles, m2.stats().cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 1234ULL));

// --- Core-count sweep: speedup sanity ---

class CoreSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CoreSweep, SpeedupBoundedByCoreCount)
{
    const int cores = GetParam();
    ExperimentSpec spec;
    spec.kernel = KernelId::Sobel;
    spec.size = InputSize::A;
    spec.cores = cores;
    const RunResult base = runBaselineExperiment(spec);
    const RunResult par = runParallelSprintExperiment(spec);
    const double s = speedupOver(base, par);
    EXPECT_GT(s, 0.8);
    EXPECT_LE(s, cores * 1.05 + 0.2);
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreSweep,
                         ::testing::Values(1, 4, 16));

} // namespace
} // namespace csprint
