/**
 * @file
 * Tests for the optimized thermal hot path: parity between the Heun
 * (CSR/RK2) integrator and the retained reference Euler, stored-energy
 * conservation under random power schedules, the applyHeat residual
 * fix, and stability-cache re-validation across reset()/topology
 * changes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "thermal/network.hh"
#include "thermal/package.hh"
#include "thermal/validation.hh"

namespace csprint {
namespace {

// --- Integrator parity -------------------------------------------------

TEST(IntegratorParity, DefaultIntegratorIsHeun)
{
    ThermalNetwork net(25.0);
    EXPECT_EQ(net.integrator(), ThermalIntegrator::Heun);
    net.setIntegrator(ThermalIntegrator::ReferenceEuler);
    EXPECT_EQ(net.integrator(), ThermalIntegrator::ReferenceEuler);
}

TEST(IntegratorParity, HeunMatchesReferenceEulerOnMeltFreeze)
{
    // Full melt transient at 16 W, then a cooldown refreeze, on the
    // paper's phone package: the optimized path must track the
    // reference within 0.1 C everywhere, including both phase
    // transitions. Uses the same shared trace as thermal_report.
    const MeltFreezeParity parity = runMeltFreezeParity(1500, 20000);
    EXPECT_LT(parity.max_temp_dev, 0.1);
    EXPECT_LT(parity.max_mf_dev, 0.01);
    // The trace must have gone through melt and refreeze.
    EXPECT_NEAR(parity.final_melt_fraction, 0.0, 1e-6);
}

TEST(IntegratorParity, HeunMatchesClosedFormExponential)
{
    // First-order RC against the closed form, at the coarse substeps
    // the Heun path takes: T(t) = P*R*(1 - exp(-t/RC)).
    ThermalNetwork net(0.0);
    const auto n = net.addNode("die", 2.0, 0.0);
    net.addResistorToAmbient(n, 5.0);
    net.setPower(n, 1.0);
    const double tau = 2.0 * 5.0;
    net.step(tau);
    EXPECT_NEAR(net.temperature(n), 5.0 * (1.0 - std::exp(-1.0)), 0.01);
    net.step(2.0 * tau);
    EXPECT_NEAR(net.temperature(n), 5.0 * (1.0 - std::exp(-3.0)), 0.01);
}

// --- Conservation properties ------------------------------------------

TEST(Conservation, RandomPowerScheduleOnIsolatedNetwork)
{
    // A five-node network with two PCM nodes and no ambient path:
    // stored energy must equal injected energy exactly, whatever the
    // power schedule does, including schedules that drive nodes
    // through partial melts and refreezes.
    Rng rng(1234);
    ThermalNetwork net(25.0);
    const ThermalNodeId a = net.addNode("a", 0.4, 25.0);
    const ThermalNodeId b = net.addNode("b", 1.2, 25.0);
    const ThermalNodeId c = net.addPcmNode("c", 0.3, 25.0, {4.0, 45.0});
    const ThermalNodeId d = net.addPcmNode("d", 0.2, 25.0, {2.0, 55.0});
    const ThermalNodeId e = net.addNode("e", 2.5, 25.0);
    net.addResistor(a, b, 1.5);
    net.addResistor(b, c, 0.8);
    net.addResistor(c, d, 2.0);
    net.addResistor(d, e, 1.0);
    net.addResistor(a, e, 3.0);

    Joules injected = 0.0;
    for (int it = 0; it < 200; ++it) {
        const Seconds dt = rng.uniform(0.01, 0.5);
        for (ThermalNodeId id : {a, b, c, d, e}) {
            // Bipolar powers so the PCM nodes melt and refreeze.
            const Watts p = rng.uniform(-6.0, 8.0);
            net.setPower(id, p);
            injected += p * dt;
        }
        net.step(dt);
    }
    EXPECT_NEAR(net.storedEnergy(), injected, 1e-8);
}

TEST(Conservation, ReferenceEulerSameProperty)
{
    Rng rng(99);
    ThermalNetwork net(20.0);
    const ThermalNodeId a = net.addNode("a", 0.5, 20.0);
    const ThermalNodeId b = net.addPcmNode("b", 0.25, 20.0, {3.0, 40.0});
    net.addResistor(a, b, 1.0);
    net.setIntegrator(ThermalIntegrator::ReferenceEuler);

    Joules injected = 0.0;
    for (int it = 0; it < 100; ++it) {
        const Seconds dt = rng.uniform(0.05, 0.4);
        const Watts pa = rng.uniform(-4.0, 6.0);
        const Watts pb = rng.uniform(-4.0, 6.0);
        net.setPower(a, pa);
        net.setPower(b, pb);
        injected += (pa + pb) * dt;
        net.step(dt);
    }
    EXPECT_NEAR(net.storedEnergy(), injected, 1e-8);
}

TEST(Conservation, ApplyHeatKeepsResidualAcrossFullTransition)
{
    // Regression for the applyHeat guard: a single application that
    // crosses sensible -> latent -> sensible in one go must deposit
    // every joule (the seed's 8-iteration guard could in principle
    // exit with heat still in hand; any residue now folds into
    // sensible heat).
    ThermalNetwork net(25.0);
    const ThermalNodeId n = net.addPcmNode("pcm", 0.01, 25.0,
                                           {0.5, 60.0});
    net.setPower(n, 500.0);
    net.step(0.01); // 5 J >> 0.35 J sensible + 0.5 J latent
    EXPECT_NEAR(net.storedEnergy(), 5.0, 1e-9);
    EXPECT_DOUBLE_EQ(net.meltFraction(n), 1.0);
    EXPECT_GT(net.temperature(n), 60.0);

    // And symmetrically on extraction.
    net.setPower(n, -500.0);
    net.step(0.01);
    EXPECT_NEAR(net.storedEnergy(), 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(net.meltFraction(n), 0.0);
}

// --- Cache re-validation ----------------------------------------------

TEST(StabilityCache, ResetMatchesFreshNetwork)
{
    // A network reused after reset() must behave bit-identically to a
    // freshly built one (stale stability bounds or scratch state would
    // show up as trace divergence).
    MobilePackageModel used(MobilePackageParams::phonePcm());
    used.setDiePower(16.0);
    for (int i = 0; i < 800; ++i)
        used.step(1e-3);
    used.reset();

    MobilePackageModel fresh(MobilePackageParams::phonePcm());
    used.setDiePower(12.0);
    fresh.setDiePower(12.0);
    for (int i = 0; i < 500; ++i) {
        used.step(1e-3);
        fresh.step(1e-3);
        ASSERT_DOUBLE_EQ(used.junctionTemp(), fresh.junctionTemp());
        ASSERT_DOUBLE_EQ(used.meltFraction(), fresh.meltFraction());
    }
}

TEST(StabilityCache, TopologyChangesInvalidateBound)
{
    ThermalNetwork net(25.0);
    const ThermalNodeId a = net.addNode("a", 1.0, 25.0);
    net.addResistorToAmbient(a, 2.0);
    EXPECT_NEAR(net.maxStableStep(), 2.0, 1e-12);

    // A second resistor tightens the bound; the cache must notice.
    net.addResistorToAmbient(a, 2.0);
    EXPECT_NEAR(net.maxStableStep(), 1.0, 1e-12);

    // A new, stiffer node tightens it further.
    const ThermalNodeId b = net.addNode("b", 0.01, 25.0);
    net.addResistor(a, b, 0.5);
    EXPECT_NEAR(net.maxStableStep(), 0.005, 1e-12);

    // reset() clears state but the bound still reflects the topology.
    net.step(0.5);
    net.reset();
    EXPECT_NEAR(net.maxStableStep(), 0.005, 1e-12);
    EXPECT_DOUBLE_EQ(net.temperature(b), 25.0);
}

TEST(StabilityCache, PcmNodeAdditionInvalidates)
{
    ThermalNetwork net(25.0);
    const ThermalNodeId a = net.addNode("a", 1.0, 25.0);
    net.addResistorToAmbient(a, 1.0);
    EXPECT_NEAR(net.maxStableStep(), 1.0, 1e-12);
    const ThermalNodeId p =
        net.addPcmNode("p", 0.1, 25.0, {5.0, 60.0});
    net.addResistor(a, p, 0.25);
    // a: g = 1 + 4 -> 0.2; p: g = 4 -> 0.025.
    EXPECT_NEAR(net.maxStableStep(), 0.025, 1e-12);
}

} // namespace
} // namespace csprint
