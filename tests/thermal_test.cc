/**
 * @file
 * Tests for the thermal substrate: RC-network physics against closed
 * forms, energy-conserving PCM melt/freeze handling, the mobile
 * package model's derived quantities, and the Figure 4 transients.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/network.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"

namespace csprint {
namespace {

TEST(ThermalNetwork, SteadyStateMatchesOhmsLaw)
{
    // One node, one resistor to ambient: T_ss = Tamb + P*R.
    ThermalNetwork net(25.0);
    const auto n = net.addNode("die", 0.1, 25.0);
    net.addResistorToAmbient(n, 10.0);
    net.setPower(n, 2.0);
    for (int i = 0; i < 200; ++i)
        net.step(0.1);
    EXPECT_NEAR(net.temperature(n), 25.0 + 2.0 * 10.0, 0.05);
}

TEST(ThermalNetwork, ExponentialRiseTimeConstant)
{
    // First-order RC: T(t) = Tamb + P*R*(1 - exp(-t/RC)).
    ThermalNetwork net(0.0);
    const auto n = net.addNode("die", 2.0, 0.0);
    net.addResistorToAmbient(n, 5.0);
    net.setPower(n, 1.0);
    const double tau = 2.0 * 5.0;
    net.step(tau);
    EXPECT_NEAR(net.temperature(n), 5.0 * (1.0 - std::exp(-1.0)), 0.05);
    net.step(tau);
    EXPECT_NEAR(net.temperature(n), 5.0 * (1.0 - std::exp(-2.0)), 0.05);
}

TEST(ThermalNetwork, CoolingDecay)
{
    ThermalNetwork net(20.0);
    const auto n = net.addNode("die", 1.0, 70.0);
    net.addResistorToAmbient(n, 2.0);
    const double tau = 2.0;
    net.step(tau);
    EXPECT_NEAR(net.temperature(n), 20.0 + 50.0 * std::exp(-1.0), 0.2);
}

TEST(ThermalNetwork, TwoNodeHeatFlowConservesEnergy)
{
    ThermalNetwork net(25.0);
    const auto a = net.addNode("a", 1.0, 80.0);
    const auto b = net.addNode("b", 3.0, 25.0);
    net.addResistor(a, b, 4.0);
    // No path to ambient: total stored energy must be conserved.
    const Joules before = net.storedEnergy();
    net.step(20.0);
    EXPECT_NEAR(net.storedEnergy(), before, 1e-9);
    // And temperatures equilibrate to the weighted mean.
    const double t_eq = (1.0 * 80.0 + 3.0 * 25.0) / 4.0;
    for (int i = 0; i < 50; ++i)
        net.step(10.0);
    EXPECT_NEAR(net.temperature(a), t_eq, 0.05);
    EXPECT_NEAR(net.temperature(b), t_eq, 0.05);
}

TEST(ThermalNetwork, InjectedEnergyAccumulates)
{
    ThermalNetwork net(25.0);
    const auto a = net.addNode("a", 2.0, 25.0);
    const auto b = net.addNode("b", 2.0, 25.0);
    net.addResistor(a, b, 1.0);
    net.setPower(a, 3.0);
    net.step(4.0);
    // 12 J injected, nothing escapes (no ambient path).
    EXPECT_NEAR(net.storedEnergy(), 12.0, 1e-9);
}

TEST(ThermalNetwork, PcmPlateausAtMeltPoint)
{
    ThermalNetwork net(25.0);
    const auto n = net.addPcmNode("pcm", 0.5, 25.0, {10.0, 60.0});
    net.setPower(n, 5.0);
    // Sensible heat to 60 C: 0.5 * 35 = 17.5 J -> 3.5 s at 5 W.
    net.step(3.5);
    EXPECT_NEAR(net.temperature(n), 60.0, 0.01);
    EXPECT_NEAR(net.meltFraction(n), 0.0, 0.01);
    // Latent phase: 10 J -> 2 s at 5 W held at the melt point.
    net.step(1.0);
    EXPECT_NEAR(net.temperature(n), 60.0, 1e-9);
    EXPECT_NEAR(net.meltFraction(n), 0.5, 0.01);
    net.step(1.0);
    EXPECT_NEAR(net.meltFraction(n), 1.0, 0.01);
    // Once molten, temperature rises again.
    net.step(1.0);
    EXPECT_GT(net.temperature(n), 65.0);
}

TEST(ThermalNetwork, PcmRefreezesSymmetrically)
{
    ThermalNetwork net(25.0);
    const auto n = net.addPcmNode("pcm", 0.5, 25.0, {10.0, 60.0});
    net.setPower(n, 5.0);
    net.step(5.5);  // fully molten + a little superheat
    EXPECT_NEAR(net.meltFraction(n), 1.0, 1e-9);
    net.setPower(n, 0.0);
    net.addResistorToAmbient(n, 2.0);
    // Cool for a long time: must end frozen at ambient.
    for (int i = 0; i < 400; ++i)
        net.step(1.0);
    EXPECT_NEAR(net.meltFraction(n), 0.0, 1e-6);
    EXPECT_NEAR(net.temperature(n), 25.0, 0.1);
}

TEST(ThermalNetwork, PcmEnergyConservedThroughTransition)
{
    ThermalNetwork net(25.0);
    const auto n = net.addPcmNode("pcm", 0.5, 25.0, {10.0, 60.0});
    net.setPower(n, 4.0);
    net.step(2.0);
    net.step(3.0);
    net.step(2.0);
    // 28 J in, no losses.
    EXPECT_NEAR(net.storedEnergy(), 28.0, 1e-9);
}

TEST(ThermalNetwork, ResetRestoresAmbient)
{
    ThermalNetwork net(25.0);
    const auto n = net.addPcmNode("pcm", 0.5, 25.0, {10.0, 60.0});
    net.setPower(n, 50.0);
    net.step(2.0);
    net.reset();
    EXPECT_DOUBLE_EQ(net.temperature(n), 25.0);
    EXPECT_DOUBLE_EQ(net.meltFraction(n), 0.0);
    EXPECT_DOUBLE_EQ(net.power(n), 0.0);
}

TEST(ThermalNetwork, StableWithLargeSteps)
{
    // A stiff pair (small cap, small R) must not oscillate even when
    // stepped coarsely: the solver sub-steps internally.
    ThermalNetwork net(25.0);
    const auto a = net.addNode("a", 0.001, 25.0);
    net.addResistorToAmbient(a, 0.1);
    net.setPower(a, 10.0);
    net.step(5.0);
    EXPECT_NEAR(net.temperature(a), 26.0, 0.05);
    net.step(5.0);
    EXPECT_NEAR(net.temperature(a), 26.0, 0.05);
}

// --- Mobile package model ---

TEST(MobilePackage, SustainedOneWattStaysBelowMelt)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.setDiePower(1.0);
    for (int i = 0; i < 3000; ++i)
        pkg.step(1.0);
    EXPECT_LT(pkg.junctionTemp(), pkg.params().pcm_melt_temp);
    EXPECT_DOUBLE_EQ(pkg.meltFraction(), 0.0);
    EXPECT_LT(pkg.junctionTemp(), pkg.params().t_junction_max);
}

TEST(MobilePackage, SustainableTdpAboutOneWatt)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    EXPECT_GT(pkg.sustainableTdp(), 0.8);
    EXPECT_LT(pkg.sustainableTdp(), 1.3);
}

TEST(MobilePackage, MaxSprintPowerCoversSixteenWatts)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    EXPECT_GE(pkg.maxSprintPower(), 16.0);
}

TEST(MobilePackage, SprintBudgetDominatedByLatentHeat)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    const Joules budget = pkg.sprintEnergyBudget();
    // 150 mg at 100 J/g = 15 J of latent heat plus sensible margin.
    EXPECT_GT(budget, 15.0);
    EXPECT_LT(budget, 25.0);
}

TEST(MobilePackage, NoPcmBudgetIsSmall)
{
    MobilePackageModel pkg(MobilePackageParams::phoneNoPcm());
    EXPECT_LT(pkg.sprintEnergyBudget(), 5.0);
    EXPECT_FALSE(pkg.hasPcm());
}

TEST(MobilePackage, CooldownApproximationScalesWithPower)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    const Seconds c16 = pkg.approxCooldown(1.0, 16.0);
    const Seconds c8 = pkg.approxCooldown(1.0, 8.0);
    EXPECT_NEAR(c16 / c8, 2.0, 1e-9);
    // Paper Section 4.5: a ~1 s 16 W sprint needs roughly 16-24 s.
    EXPECT_GT(c16, 10.0);
    EXPECT_LT(c16, 30.0);
}

// --- Figure 4 transients ---

TEST(Transients, SprintPlateauNearOneSecond)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    const auto tr = runSprintTransient(pkg, 16.0, 3.0);
    // Paper: plateau ~0.95 s during phase change; sprint a little
    // over 1 s total before hitting 70 C.
    EXPECT_TRUE(tr.hit_limit);
    EXPECT_GT(tr.plateau_duration, 0.7);
    EXPECT_LT(tr.plateau_duration, 1.4);
    EXPECT_GT(tr.time_to_limit, 0.9);
    EXPECT_LT(tr.time_to_limit, 1.6);
}

TEST(Transients, SprintWithoutPcmIsMuchShorter)
{
    MobilePackageModel with(MobilePackageParams::phonePcm());
    MobilePackageModel without(MobilePackageParams::phoneNoPcm());
    const auto tr_with = runSprintTransient(with, 16.0, 3.0);
    const auto tr_without = runSprintTransient(without, 16.0, 3.0);
    EXPECT_TRUE(tr_without.hit_limit);
    EXPECT_LT(tr_without.time_to_limit, 0.5 * tr_with.time_to_limit);
}

TEST(Transients, CooldownReturnsNearAmbient)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    runSprintTransient(pkg, 16.0, 3.0);
    const TimeSeries cool = runCooldownTransient(pkg, 40.0);
    // Paper Figure 4(b): close to ambient after about 24 s.
    const auto near = cool.firstTimeBelow(pkg.params().ambient + 5.0);
    ASSERT_TRUE(near.has_value());
    EXPECT_GT(*near, 5.0);
    EXPECT_LT(*near, 35.0);
    EXPECT_LT(cool.back(), pkg.params().ambient + 5.0);
}

TEST(Transients, ModeTraceSprintFasterThanSustained)
{
    // Figure 2: with the same work, sprinting completes sooner, and
    // the PCM-augmented sprint completes more work in sprint mode
    // than the plain sprint.
    const double work = 4.0;  // core-seconds
    const auto sustained =
        runModeTrace(MobilePackageParams::phoneNoPcm(), work, 1, 1.0);
    const auto sprint =
        runModeTrace(MobilePackageParams::phoneNoPcm(), work, 16, 1.0);
    const auto augmented =
        runModeTrace(MobilePackageParams::phonePcm(), work, 16, 1.0);
    EXPECT_LT(sprint.completion_time, sustained.completion_time);
    EXPECT_LE(augmented.completion_time, sprint.completion_time);
    // The augmented system must beat the plain sprint distinctly.
    EXPECT_LT(augmented.completion_time,
              0.8 * sprint.completion_time);
}

TEST(Transients, TemperatureNeverExceedsLimitPlusGuard)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    const auto tr = runSprintTransient(pkg, 16.0, 3.0);
    EXPECT_LT(tr.junction_temp.maxValue(),
              pkg.params().t_junction_max + 1.0);
}

} // namespace
} // namespace csprint
