/**
 * @file
 * Preemption invariants across all three layers:
 *
 *  - Machine/pump: suspend+resume at sample boundaries conserves
 *    committed-op counts, energy, and traces bit-for-bit against an
 *    uninterrupted run (both scheduler loops).
 *  - Scenario engine: mid-task arrivals are delivered to the policy;
 *    preempted work resumes from its live machine; a dropped arrival
 *    leaves the package and timeline exactly as if it never arrived
 *    (the abort == deny thermal contract); a preempted-then-resumed
 *    task never responds faster than it would uninterrupted.
 *  - Checkpointing: a shard boundary cut between a preemption and the
 *    resume carries the suspended task's full progress (the
 *    mid-queue checkpoint semantics pinned bit-for-bit).
 *  - The QoS and model-predictive policies' decision logic.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sprint/experiment.hh"
#include "sprint/scenario.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

/** Exact comparison of two coupled-run results, traces included. */
void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.machine.cycles, b.machine.cycles);
    EXPECT_EQ(a.machine.ops_retired, b.machine.ops_retired);
    EXPECT_EQ(a.machine.ops_by_kind, b.machine.ops_by_kind);
    EXPECT_EQ(a.machine.idle_cycles, b.machine.idle_cycles);
    EXPECT_EQ(a.machine.l1_hits, b.machine.l1_hits);
    EXPECT_EQ(a.machine.l1_misses, b.machine.l1_misses);
    EXPECT_EQ(a.machine.dynamic_energy, b.machine.dynamic_energy);
    EXPECT_EQ(a.task_time, b.task_time);
    EXPECT_EQ(a.dynamic_energy, b.dynamic_energy);
    EXPECT_EQ(a.peak_junction, b.peak_junction);
    EXPECT_EQ(a.final_melt_fraction, b.final_melt_fraction);
    EXPECT_EQ(a.sprint_exhausted, b.sprint_exhausted);
    EXPECT_EQ(a.hardware_throttled, b.hardware_throttled);
    EXPECT_EQ(a.sprint_duration, b.sprint_duration);
    EXPECT_EQ(a.sprint_energy, b.sprint_energy);
    EXPECT_EQ(a.cooldown_estimate, b.cooldown_estimate);
    ASSERT_EQ(a.junction_trace.size(), b.junction_trace.size());
    for (std::size_t i = 0; i < a.junction_trace.size(); ++i) {
        ASSERT_EQ(a.junction_trace.timeAt(i), b.junction_trace.timeAt(i));
        ASSERT_EQ(a.junction_trace.valueAt(i),
                  b.junction_trace.valueAt(i));
        ASSERT_EQ(a.power_trace.valueAt(i), b.power_trace.valueAt(i));
        ASSERT_EQ(a.melt_trace.valueAt(i), b.melt_trace.valueAt(i));
    }
}

/**
 * Run one fig07-style task through the pump, suspending the machine
 * every @p suspend_every samples (0 = classic uninterrupted run).
 */
RunResult
pumpWithSuspends(MachineLoop loop, int suspend_every)
{
    SprintConfig cfg = SprintConfig::parallelSprint(16, kSmallPcm);
    cfg.machine.loop = loop;
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    std::unique_ptr<Machine> machine = prepareMachine(prog, cfg);
    MobilePackageModel package(cfg.package);
    package.reset();
    package.step(cfg.activation_ramp);
    GreedyActivityPolicy policy(cfg.governor);
    policy.beginTask(package);

    if (suspend_every <= 0)
        return samplePump(*machine, cfg, package, policy);

    int samples = 0;
    const RunResult result = samplePumpObserved(
        *machine, cfg, package, policy,
        [&](Seconds, Celsius, Watts, double) {
            return ++samples % suspend_every == 0;
        });
    EXPECT_GE(samples, suspend_every) << "suspension never fired";
    return result;
}

TEST(MachinePreemption, SuspendResumeConservesEverything)
{
    for (MachineLoop loop :
         {MachineLoop::EventDriven, MachineLoop::Reference}) {
        const RunResult whole = pumpWithSuspends(loop, 0);
        const RunResult sliced = pumpWithSuspends(loop, 7);
        expectSameRun(sliced, whole);
    }
}

TEST(MachinePreemption, SuspendedMachineSeedsWarmRestart)
{
    // An aborted/suspended task's caches are a valid warm-start
    // source: the re-run completes and starts warmer than cold.
    SprintConfig cfg = SprintConfig::parallelSprint(16, kSmallPcm);
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    std::unique_ptr<Machine> first = prepareMachine(prog, cfg);
    int samples = 0;
    first->setSampleHook(
        [&](Machine &m, Seconds, Joules) {
            if (++samples == 20)
                m.suspend();
        },
        1000);
    first->run();
    ASSERT_TRUE(first->suspended());
    ASSERT_FALSE(first->finished());

    const RunResult cold = runSprint(prog, cfg);
    std::unique_ptr<Machine> rerun = prepareMachine(prog, cfg);
    rerun->warmStartFrom(*first);
    MobilePackageModel package(cfg.package);
    package.reset();
    package.step(cfg.activation_ramp);
    GreedyActivityPolicy policy(cfg.governor);
    policy.beginTask(package);
    const RunResult warm = samplePump(*rerun, cfg, package, policy);
    EXPECT_EQ(warm.machine.ops_retired, cold.machine.ops_retired);
    EXPECT_LT(warm.machine.l1_misses, cold.machine.l1_misses);
}

TEST(MachinePreemption, WarmStartCarriesDramChannelOccupancy)
{
    // A machine suspended mid-run can leave DRAM channels busy past
    // the cut; warmStartFrom must rebase that residual occupancy onto
    // the successor's cycle domain (same clock here, so residuals
    // carry verbatim from cycle 0) instead of silently dropping it.
    SprintConfig cfg = SprintConfig::parallelSprint(16, kSmallPcm);
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    std::unique_ptr<Machine> first = prepareMachine(prog, cfg);
    int samples = 0;
    first->setSampleHook(
        [&](Machine &m, Seconds, Joules) {
            if (++samples == 3)
                m.suspend();
        },
        1000);
    first->run();
    ASSERT_TRUE(first->suspended());

    const int channels = cfg.machine.memory.channels;
    const double cut = static_cast<double>(first->stats().cycles);
    std::vector<double> residual;
    for (int ch = 0; ch < channels; ++ch)
        residual.push_back(std::max(
            0.0, first->memorySystem().channelFreeAt(ch) - cut));

    std::unique_ptr<Machine> rerun = prepareMachine(prog, cfg);
    rerun->warmStartFrom(*first);
    for (int ch = 0; ch < channels; ++ch) {
        EXPECT_DOUBLE_EQ(rerun->memorySystem().channelFreeAt(ch),
                         residual[static_cast<std::size_t>(ch)])
            << "channel " << ch;
    }
}

/**
 * The bench's deadline-heavy burst in miniature: task 0 is a heavy
 * low-priority job, the rest are short high-priority tasks with tight
 * deadlines arriving while it runs.
 */
ScenarioConfig
preemptScenario(SprintPolicyKind kind, int tasks)
{
    ScenarioConfig cfg;
    // Full PCM provisioning: the heavy task does not exhaust the
    // budget, so the preemption benefit is isolated from governor
    // consolidation effects.
    cfg.platform = SprintConfig::parallelSprint(16, kFullPcm);
    cfg.policy.kind = kind;
    cfg.policy.service_prior = 2e-3;
    cfg.policy.qos_slack = 1.5;
    cfg.pattern = ArrivalPattern::Periodic;
    cfg.num_tasks = tasks;
    cfg.period = 2e-4;  // arrivals land inside the heavy task's run
    cfg.kernel = KernelId::Sobel;
    cfg.size = InputSize::A;
    cfg.seed = 42;
    cfg.task_tuner = [seed = cfg.seed](ScenarioTask &task) {
        const std::uint64_t index = task.seed - seed;
        if (index == 0) {
            task.priority = 0;
            task.size = InputSize::C;
            task.deadline = 0.0;
        } else {
            task.priority = 1;
            task.size = InputSize::A;
            task.deadline = 2e-3;
        }
    };
    return cfg;
}

TEST(ScenarioPreemption, QosPreemptsHeavyTaskForDeadlines)
{
    const ScenarioConfig cfg = preemptScenario(SprintPolicyKind::Qos, 4);
    const ScenarioResult s = runScenario(cfg);
    EXPECT_EQ(s.tasks_completed, 4u);
    EXPECT_GE(s.preemptions, 1);
    ASSERT_EQ(s.tasks.size(), 4u);
    // The heavy task was suspended and finished last.
    const ScenarioTaskResult &heavy = s.tasks.back();
    EXPECT_EQ(heavy.priority, 0);
    EXPECT_GE(heavy.preemptions, 1);
    EXPECT_DOUBLE_EQ(heavy.arrival, 0.0);
    // The shorts completed first and within their deadlines.
    for (std::size_t i = 0; i + 1 < s.tasks.size(); ++i) {
        EXPECT_EQ(s.tasks[i].priority, 1);
        EXPECT_TRUE(s.tasks[i].deadline_met)
            << "short task " << i << " missed its deadline";
    }
    EXPECT_EQ(s.deadlines_met, 3);
    EXPECT_EQ(s.deadlines_missed, 0);
}

TEST(ScenarioPreemption, PreemptedResponseNeverBeatsUninterrupted)
{
    // Response-time monotonicity: being suspended can only delay the
    // heavy task relative to having the machine to itself.
    ScenarioConfig alone = preemptScenario(SprintPolicyKind::Qos, 4);
    alone.num_tasks = 1;
    const ScenarioResult ra = runScenario(alone);
    ASSERT_EQ(ra.tasks.size(), 1u);

    const ScenarioResult rp =
        runScenario(preemptScenario(SprintPolicyKind::Qos, 4));
    const ScenarioTaskResult &heavy = rp.tasks.back();
    ASSERT_EQ(heavy.priority, 0);
    EXPECT_GE(heavy.response, ra.tasks[0].response);
}

/** Greedy behaviour plus an unconditional Drop for mid-task arrivals. */
class DropArrivalsPolicy : public GreedyActivityPolicy
{
  public:
    using GreedyActivityPolicy::GreedyActivityPolicy;

    bool preemptive() const override { return true; }

    ArrivalDecision
    onArrival(const MobilePackageModel &, Seconds, const TaskSnapshot &,
              const TaskSnapshot &) override
    {
        return ArrivalDecision::Drop;
    }
};

TEST(ScenarioPreemption, DroppedArrivalLeavesStateAsIfDenied)
{
    // The abort == deny contract: rejecting an arrival outright must
    // leave the package thermal state, traces, and timeline identical
    // to a timeline in which the task never existed.
    ScenarioConfig base;
    base.platform = SprintConfig::parallelSprint(16, kSmallPcm);
    base.policy.kind = SprintPolicyKind::GreedyActivity;
    base.pattern = ArrivalPattern::Periodic;
    base.period = 2e-4;  // arrivals 1, 2 land inside task 0's run
    base.kernel = KernelId::Sobel;
    base.size = InputSize::B;
    base.num_tasks = 1;

    ScenarioConfig dropping = base;
    dropping.num_tasks = 3;
    dropping.policy_factory = [gov = base.platform.governor]() {
        return std::make_unique<DropArrivalsPolicy>(gov);
    };

    const ScenarioResult only = runScenario(base);
    const ScenarioResult dropped = runScenario(dropping);

    EXPECT_EQ(dropped.tasks_dropped, 2);
    EXPECT_EQ(dropped.tasks_completed, 1u);
    EXPECT_EQ(dropped.preemptions, 0);
    EXPECT_EQ(only.makespan, dropped.makespan);
    EXPECT_EQ(only.total_energy, dropped.total_energy);
    EXPECT_EQ(only.peak_junction, dropped.peak_junction);
    EXPECT_EQ(only.peak_melt_fraction, dropped.peak_melt_fraction);
    ASSERT_EQ(only.junction_trace.size(), dropped.junction_trace.size());
    for (std::size_t i = 0; i < only.junction_trace.size(); ++i) {
        ASSERT_EQ(only.junction_trace.valueAt(i),
                  dropped.junction_trace.valueAt(i));
    }
    expectSameRun(only.tasks.at(0).run, dropped.tasks.at(0).run);
}

TEST(ScenarioPreemption, ShardCutBetweenPreemptionAndResume)
{
    // The mid-queue checkpoint semantics, pinned: with one-task
    // shards the first boundary falls after the first short task
    // completes — while the heavy task sits suspended in the ready
    // queue. The checkpoint must carry that live progress (not
    // restart the task from scratch), reproducing the unsharded run
    // bit-for-bit.
    const ScenarioConfig cfg = preemptScenario(SprintPolicyKind::Qos, 4);
    const ScenarioResult whole = runScenario(cfg);
    ASSERT_GE(whole.preemptions, 1);

    for (std::uint64_t shard : {1u, 2u}) {
        const ScenarioResult sharded = runScenarioSharded(cfg, shard);
        EXPECT_EQ(sharded.preemptions, whole.preemptions);
        EXPECT_EQ(sharded.tasks_completed, whole.tasks_completed);
        EXPECT_EQ(sharded.makespan, whole.makespan);
        EXPECT_EQ(sharded.total_energy, whole.total_energy);
        EXPECT_EQ(sharded.peak_junction, whole.peak_junction);
        EXPECT_EQ(sharded.p95_response, whole.p95_response);
        ASSERT_EQ(sharded.tasks.size(), whole.tasks.size());
        for (std::size_t i = 0; i < whole.tasks.size(); ++i) {
            ASSERT_EQ(sharded.tasks[i].response, whole.tasks[i].response);
            ASSERT_EQ(sharded.tasks[i].preemptions,
                      whole.tasks[i].preemptions);
            expectSameRun(sharded.tasks[i].run, whole.tasks[i].run);
        }
        ASSERT_EQ(sharded.junction_trace.size(),
                  whole.junction_trace.size());
        for (std::size_t i = 0; i < whole.junction_trace.size(); ++i) {
            ASSERT_EQ(sharded.junction_trace.timeAt(i),
                      whole.junction_trace.timeAt(i));
            ASSERT_EQ(sharded.junction_trace.valueAt(i),
                      whole.junction_trace.valueAt(i));
        }
    }
}

TEST(QosPolicyUnit, ArrivalDecisions)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.reset();
    QosPolicy policy(1.0, 0.5, GovernorConfig());

    TaskSnapshot running;
    running.priority = 0;
    running.started = true;
    running.sprint_granted = true;
    running.service = 0.1;

    TaskSnapshot incoming;
    incoming.arrival = 1.0;
    incoming.priority = 1;
    incoming.deadline = 1.4;  // tight: prior says 0.4 rem + 0.5 own

    // Deadline at risk behind the runner: preempt.
    EXPECT_EQ(policy.onArrival(pkg, 1.0, running, incoming),
              ArrivalDecision::Preempt);
    // No deadline: nothing to protect.
    incoming.deadline = kNoDeadline;
    EXPECT_EQ(policy.onArrival(pkg, 1.0, running, incoming),
              ArrivalDecision::Queue);
    // Loose deadline: waiting still meets it.
    incoming.deadline = 3.0;
    EXPECT_EQ(policy.onArrival(pkg, 1.0, running, incoming),
              ArrivalDecision::Queue);
    // Equal priority never evicts, however tight the deadline.
    incoming.priority = 0;
    incoming.deadline = 1.01;
    EXPECT_EQ(policy.onArrival(pkg, 1.0, running, incoming),
              ArrivalDecision::Queue);
}

TEST(QosPolicyUnit, PickNextIsPriorityMajorEdf)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.reset();
    QosPolicy policy(1.0, 0.0, GovernorConfig());

    std::vector<TaskSnapshot> ready(3);
    ready[0].arrival = 0.0;
    ready[0].priority = 0;
    ready[1].arrival = 0.1;
    ready[1].priority = 1;
    ready[1].deadline = 2.0;
    ready[2].arrival = 0.2;
    ready[2].priority = 1;
    ready[2].deadline = 1.0;
    // Highest priority wins; earliest deadline within the class.
    EXPECT_EQ(policy.pickNext(pkg, 0.3, ready), 2u);
    ready[2].deadline = 2.0;
    // Deadline tie: earliest arrival (the stable FIFO order).
    EXPECT_EQ(policy.pickNext(pkg, 0.3, ready), 1u);
}

TEST(QosPolicyUnit, EstimatorLearnsFromCompletions)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.reset();
    QosPolicy policy(1.0, 0.0, GovernorConfig());

    TaskSnapshot running;
    running.started = true;
    running.sprint_granted = true;
    TaskSnapshot incoming;
    incoming.priority = 1;
    incoming.deadline = 0.5;

    // No prior, nothing learned: the forecast shows no risk.
    EXPECT_EQ(policy.onArrival(pkg, 0.0, running, incoming),
              ArrivalDecision::Queue);

    TaskSnapshot done;
    done.sprint_granted = true;
    policy.onTaskComplete(done, 1.0);  // tasks take ~1 s
    EXPECT_EQ(policy.onArrival(pkg, 0.0, running, incoming),
              ArrivalDecision::Preempt);

    // The learned state round-trips through the checkpoint.
    QosPolicy clone(1.0, 0.0, GovernorConfig());
    clone.restoreState(policy.saveState());
    EXPECT_EQ(clone.onArrival(pkg, 0.0, running, incoming),
              ArrivalDecision::Preempt);
}

TEST(ModelPredictiveUnit, PreemptsWhenMoreDeadlinesAreMet)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.reset();
    ModelPredictivePolicy policy(0.5, 0.0, GovernorConfig());

    TaskSnapshot running;  // no deadline of its own
    running.started = true;
    running.sprint_granted = true;
    TaskSnapshot incoming;
    incoming.priority = 1;

    // Nothing learned and no prior: conservative queueing.
    incoming.deadline = 0.2;
    EXPECT_EQ(policy.onArrival(pkg, 0.0, running, incoming),
              ArrivalDecision::Queue);

    TaskSnapshot done;
    done.sprint_granted = true;
    policy.onTaskComplete(done, 1.0);

    // Queued, the newcomer misses (1 s remaining + 1 s own > 0.2 s);
    // preempted, its finish moves ahead of the runner's remainder —
    // fewer misses, so preempt. (The 0.2 s deadline is still missed
    // either way only if service estimates exceed it; with a 1 s
    // estimate both orders miss, but preemption minimizes tardiness.)
    EXPECT_EQ(policy.onArrival(pkg, 0.0, running, incoming),
              ArrivalDecision::Preempt);
    // Both orders meet a loose deadline: stay with the queue.
    incoming.deadline = 10.0;
    EXPECT_EQ(policy.onArrival(pkg, 0.0, running, incoming),
              ArrivalDecision::Queue);
    // The runner has the tight deadline instead: preempting it would
    // sacrifice a met deadline, so queue.
    running.deadline = 1.05;
    incoming.deadline = 10.0;
    EXPECT_EQ(policy.onArrival(pkg, 0.0, running, incoming),
              ArrivalDecision::Queue);
}

TEST(WorkloadMix, FactoryIsDeterministicAndWeighted)
{
    const auto factory = makeWorkloadMixFactory(
        {{KernelId::Sobel, InputSize::A, 3.0},
         {KernelId::Kmeans, InputSize::A, 1.0}});
    int sobel = 0;
    int kmeans = 0;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        ScenarioTask task;
        task.seed = seed;
        const ParallelProgram a = factory(task);
        const ParallelProgram b = factory(task);
        EXPECT_EQ(a.name(), b.name());
        if (a.name() == "sobel")
            ++sobel;
        else if (a.name() == "kmeans")
            ++kmeans;
    }
    EXPECT_EQ(sobel + kmeans, 64);
    // 3:1 weights: both kernels drawn, sobel clearly dominant.
    EXPECT_GT(sobel, kmeans);
    EXPECT_GT(kmeans, 0);
}

TEST(WorkloadMix, PriorityHashIsDeterministicAndMixed)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(16, kSmallPcm);
    cfg.pattern = ArrivalPattern::Periodic;
    cfg.num_tasks = 40;
    cfg.period = 1e-3;
    cfg.hi_priority_fraction = 0.5;
    cfg.deadline_hi = 1e-3;
    cfg.deadline_lo = 0.0;
    const auto a = buildArrivals(cfg);
    const auto b = buildArrivals(cfg);
    int hi = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].priority, b[i].priority);
        EXPECT_EQ(a[i].deadline,
                  a[i].priority == 1 ? cfg.deadline_hi : 0.0);
        hi += a[i].priority;
    }
    // Both classes present (p(all-one-class) ~ 2^-39).
    EXPECT_GT(hi, 0);
    EXPECT_LT(hi, 40);
}

} // namespace
} // namespace csprint
