/**
 * @file
 * Tests for the solid-metal heat-storage alternative of paper
 * Section 4.1, including the paper's worked example (16 J into a
 * 7.2 mm copper slab over a 64 mm^2 die raises it 10 C) and the two
 * drawbacks the paper identifies: eroded headroom after sustained
 * operation, and the slab's internal resistance limiting absorption.
 */

#include <gtest/gtest.h>

#include "thermal/metal.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"

namespace csprint {
namespace {

TEST(MetalSlug, PaperCopperExample)
{
    // Paper: copper at 3.45 J/cm^3 K, 7.2 mm over 64 mm^2 absorbs
    // 16 J with a 10 C rise.
    MetalSlugSpec spec;
    spec.metal = MetalProperties::copper();
    spec.thickness = 7.2e-3;
    spec.die_area_mm2 = 64.0;
    EXPECT_NEAR(metalSlugTemperatureRise(spec, 16.0), 10.0, 0.2);
}

TEST(MetalSlug, PaperAluminumExample)
{
    // Paper: 10.3 mm of aluminum (2.42 J/cm^3 K) for the same 10 C.
    const Meters t = metalThicknessFor(MetalProperties::aluminum(),
                                       64.0, 16.0, 10.0);
    EXPECT_NEAR(t, 10.3e-3, 0.3e-3);
}

TEST(MetalSlug, CopperThicknessInverse)
{
    const Meters t = metalThicknessFor(MetalProperties::copper(),
                                       64.0, 16.0, 10.0);
    EXPECT_NEAR(t, 7.2e-3, 0.3e-3);
    MetalSlugSpec spec;
    spec.thickness = t;
    EXPECT_NEAR(metalSlugTemperatureRise(spec, 16.0), 10.0, 1e-6);
}

TEST(MetalSlug, CapacityScalesWithThickness)
{
    MetalSlugSpec thin;
    thin.thickness = 2e-3;
    MetalSlugSpec thick;
    thick.thickness = 8e-3;
    EXPECT_NEAR(metalSlugCapacity(thick) / metalSlugCapacity(thin),
                4.0, 1e-9);
}

TEST(MetalSlug, InternalResistancePositiveAndThicknessMonotone)
{
    MetalSlugSpec thin;
    thin.thickness = 2e-3;
    MetalSlugSpec thick;
    thick.thickness = 8e-3;
    EXPECT_GT(metalSlugInternalResistance(thin), 0.0);
    EXPECT_GT(metalSlugInternalResistance(thick),
              metalSlugInternalResistance(thin));
}

TEST(MetalSlug, PackageSustainsAboutOneWatt)
{
    MobilePackageModel pkg(metalSlugPackage(MetalSlugSpec{}));
    // The junction limit (not a melt point) governs sustained power:
    // comparable to (or a bit above) the PCM package's TDP.
    EXPECT_GT(pkg.sustainableTdp(), 0.8);
    EXPECT_LT(pkg.sustainableTdp(), 1.6);
}

TEST(MetalSlug, SprintFromColdIsLong)
{
    // A multi-millimetre copper slab stores plenty of sensible heat
    // from a cold start: the cold-start sprint is long.
    MobilePackageModel pkg(metalSlugPackage(MetalSlugSpec{}));
    const auto tr = runSprintTransient(pkg, 16.0, 30.0, 5e-3);
    EXPECT_TRUE(tr.hit_limit);
    EXPECT_GT(tr.time_to_limit, 1.0);
    // But there is no latent plateau: temperature rises throughout.
    EXPECT_NEAR(tr.plateau_duration, 0.0, 1e-9);
}

TEST(MetalSlug, PreheatedSlugErodesHeadroom)
{
    // Paper drawback (1): after sustained single-core operation the
    // metal sits hot, so the remaining sprint budget collapses; the
    // PCM package retains its latent budget as long as the sustained
    // load keeps the junction below the melt point.
    MobilePackageModel metal(metalSlugPackage(MetalSlugSpec{}));
    MobilePackageModel pcm(MobilePackageParams::phonePcm());

    const Joules metal_cold = metal.sprintEnergyBudget();
    const Joules pcm_cold = pcm.sprintEnergyBudget();

    for (int i = 0; i < 4000; ++i) {
        metal.setDiePower(1.0);
        metal.step(1.0);
        pcm.setDiePower(1.0);
        pcm.step(1.0);
    }
    const double metal_left =
        metal.sprintEnergyBudget() / metal_cold;
    const double pcm_left = pcm.sprintEnergyBudget() / pcm_cold;
    EXPECT_LT(metal_left, 0.45);  // most sensible headroom gone
    EXPECT_GT(pcm_left, 0.75);    // latent heat still untouched
    EXPECT_GT(pcm_left, metal_left + 0.2);
}

TEST(MetalSlug, ThickSlabLimitsAbsorptionRate)
{
    // Paper drawback (2): conduction resistance inside a thick slab
    // raises the junction temperature offset during an intense
    // sprint, shortening the time to the junction limit per joule
    // stored.
    MetalSlugSpec thin;
    thin.thickness = 2e-3;
    MetalSlugSpec thick;
    thick.thickness = 14e-3;
    MobilePackageModel a(metalSlugPackage(thin));
    MobilePackageModel b(metalSlugPackage(thick));
    // Same power; the thick slab's junction runs hotter relative to
    // its storage because of the added internal resistance.
    EXPECT_GT(metalSlugInternalResistance(thick),
              4.0 * metalSlugInternalResistance(thin));
}

} // namespace
} // namespace csprint
