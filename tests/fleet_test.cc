/**
 * @file
 * Unit and property tests for the fleet driver's deterministic
 * foundations (sprint/fleet.hh): FleetSpec sampling reproducible from
 * (seed, device index) alone, shard-range construction, mergeable
 * aggregates (exact counters, deterministic P² quantile merge that is
 * order-insensitive within an estimator tolerance), wire round-trips,
 * and a small in-process fleet sanity run. The cross-process parity
 * gates live in tests/fleet_fault_test.cc and
 * tests/differential_test.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "sprint/checkpoint.hh"
#include "sprint/experiment.hh"
#include "sprint/fleet.hh"

namespace csprint {
namespace {

FleetSpec
smallFleet(std::uint64_t seed, int num_devices)
{
    FleetSpec spec;
    spec.seed = seed;
    spec.num_devices = num_devices;

    FleetDeviceClass small;
    small.weight = 2.0;
    small.cores = 4;
    small.pcm_mass_lo = kSmallPcm;
    small.pcm_mass_hi = 2.0 * kSmallPcm;
    small.ambient_lo = 22.0;
    small.ambient_hi = 30.0;
    small.policy = SprintPolicyKind::GreedyActivity;
    small.num_tasks = 3;
    small.period = 2.5e-3;
    spec.classes.push_back(small);

    FleetDeviceClass paced;
    paced.weight = 1.0;
    paced.cores = 8;
    paced.pcm_mass_lo = kSmallPcm;
    paced.pcm_mass_hi = kSmallPcm;
    paced.policy = SprintPolicyKind::DutyCycle;
    paced.pacing_period = 2.5e-3;
    paced.num_tasks = 3;
    paced.period = 2.5e-3;
    paced.mix = {{KernelId::Sobel, InputSize::A, 3.0},
                 {KernelId::Kmeans, InputSize::A, 1.0}};
    spec.classes.push_back(paced);

    return spec;
}

std::string
freshDir(const char *tag)
{
    std::string tmpl = std::string("/tmp/csprint-") + tag + "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return std::string(dir ? dir : "/tmp");
}

void
expectP2BitEqual(const P2Quantile &a, const P2Quantile &b)
{
    double sa[P2Quantile::kStateSize];
    double sb[P2Quantile::kStateSize];
    a.save(sa);
    b.save(sb);
    EXPECT_EQ(0, std::memcmp(sa, sb, sizeof(sa)));
}

TEST(FleetSampling, DeviceConfigIsReproducible)
{
    const FleetSpec spec = smallFleet(7, 16);
    for (int d = 0; d < spec.num_devices; ++d) {
        const ScenarioConfig a = fleetDeviceConfig(spec, d);
        const ScenarioConfig b = fleetDeviceConfig(spec, d);
        EXPECT_EQ(scenarioConfigDigest(a), scenarioConfigDigest(b));
        EXPECT_EQ(a.seed, b.seed);
    }
}

TEST(FleetSampling, DevicesDecorrelateAndCoverClasses)
{
    const FleetSpec spec = smallFleet(7, 32);
    std::set<std::uint32_t> digests;
    std::set<int> cores_seen;
    for (int d = 0; d < spec.num_devices; ++d) {
        const ScenarioConfig cfg = fleetDeviceConfig(spec, d);
        digests.insert(scenarioConfigDigest(cfg));
        cores_seen.insert(cfg.platform.sprint_cores);
    }
    // Sampled PCM mass / ambient make virtually every device distinct,
    // and both classes (4- and 8-core) appear in 32 draws.
    EXPECT_GT(digests.size(), 16u);
    EXPECT_EQ(cores_seen.size(), 2u);
}

TEST(FleetSampling, SeedChangesThePopulation)
{
    const FleetSpec a = smallFleet(7, 8);
    const FleetSpec b = smallFleet(8, 8);
    int differing = 0;
    for (int d = 0; d < a.num_devices; ++d)
        if (scenarioConfigDigest(fleetDeviceConfig(a, d)) !=
            scenarioConfigDigest(fleetDeviceConfig(b, d)))
            ++differing;
    EXPECT_GT(differing, 0);
}

TEST(FleetSampling, SpecRoundTripPreservesEverything)
{
    const FleetSpec spec = smallFleet(1234, 12);
    FaultPlan plan;
    plan.faults.push_back({3, FaultKind::KillWorker, 2});
    plan.faults.push_back({5, FaultKind::BitFlip, 1});
    FleetOptions opts;
    opts.checkpoint_every_tasks = 2;
    opts.paranoia = true;

    const auto blob = serializeFleetSpec(spec, plan, opts);
    FleetSpec spec2;
    FaultPlan plan2;
    FleetOptions opts2;
    deserializeFleetSpec(blob, spec2, plan2, opts2);

    EXPECT_EQ(fleetSpecDigest(spec), fleetSpecDigest(spec2));
    EXPECT_EQ(spec2.num_devices, spec.num_devices);
    ASSERT_EQ(plan2.faults.size(), plan.faults.size());
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        EXPECT_EQ(plan2.faults[i].shard, plan.faults[i].shard);
        EXPECT_EQ(plan2.faults[i].kind, plan.faults[i].kind);
        EXPECT_EQ(plan2.faults[i].at_seq, plan.faults[i].at_seq);
    }
    EXPECT_EQ(opts2.checkpoint_every_tasks,
              opts.checkpoint_every_tasks);
    EXPECT_EQ(opts2.paranoia, opts.paranoia);
    for (int d = 0; d < spec.num_devices; ++d)
        EXPECT_EQ(scenarioConfigDigest(fleetDeviceConfig(spec, d)),
                  scenarioConfigDigest(fleetDeviceConfig(spec2, d)));
}

TEST(FleetSampling, DigestTracksSpecContent)
{
    const FleetSpec base = smallFleet(1, 8);
    FleetSpec reseeded = base;
    reseeded.seed = 2;
    FleetSpec reshaped = base;
    reshaped.classes[0].cores = 6;
    EXPECT_NE(fleetSpecDigest(base), fleetSpecDigest(reseeded));
    EXPECT_NE(fleetSpecDigest(base), fleetSpecDigest(reshaped));
    EXPECT_EQ(fleetSpecDigest(base), fleetSpecDigest(smallFleet(1, 8)));
}

TEST(FleetSampling, CorruptSpecBlobIsRejected)
{
    const FleetSpec spec = smallFleet(3, 4);
    auto blob = serializeFleetSpec(spec, {}, {});
    blob[blob.size() / 2] ^= 0x40;
    FleetSpec out;
    FaultPlan plan;
    FleetOptions opts;
    EXPECT_THROW(deserializeFleetSpec(blob, out, plan, opts),
                 CheckpointError);
}

TEST(FleetRanges, CoverContiguousAndBalanced)
{
    for (int devices : {1, 2, 5, 7, 64}) {
        for (int workers : {1, 2, 3, 8, 100}) {
            const auto ranges = fleetShardRanges(devices, workers);
            ASSERT_FALSE(ranges.empty());
            EXPECT_LE(static_cast<int>(ranges.size()),
                      std::min(devices, std::max(1, workers)));
            int expect_begin = 0;
            int lo = devices, hi = 0;
            for (const auto &r : ranges) {
                EXPECT_EQ(r.first, expect_begin);
                EXPECT_GT(r.second, r.first);
                const int len = r.second - r.first;
                lo = std::min(lo, len);
                hi = std::max(hi, len);
                expect_begin = r.second;
            }
            EXPECT_EQ(expect_begin, devices);
            EXPECT_LE(hi - lo, 1);
        }
    }
    EXPECT_THROW(fleetShardRanges(0, 2), std::invalid_argument);
}

TEST(FleetAggregatesTest, CounterMergeIsExact)
{
    // Synthetic per-device results: folding all into one aggregate
    // must equal folding halves and merging, exactly, for every
    // counter and max.
    std::vector<ScenarioResult> devices(7);
    Rng rng(99);
    for (std::size_t i = 0; i < devices.size(); ++i) {
        ScenarioResult &r = devices[i];
        r.tasks_completed = 1 + rng.uniformInt(9);
        r.tasks_dropped = static_cast<int>(rng.uniformInt(3));
        r.deadlines_met = static_cast<int>(rng.uniformInt(5));
        r.deadlines_missed = static_cast<int>(rng.uniformInt(5));
        r.sprints_granted = static_cast<int>(rng.uniformInt(5));
        r.sprints_denied = static_cast<int>(rng.uniformInt(5));
        r.hardware_throttles = static_cast<int>(rng.uniformInt(2));
        r.sprint_rest_cycles = static_cast<int>(rng.uniformInt(4));
        r.peak_junction = rng.uniform(40.0, 80.0);
        r.peak_melt_fraction = rng.uniform();
        r.total_energy = rng.uniform(0.0, 5.0);
        r.total_sprint_time = rng.uniform(0.0, 1.0);
        r.total_sprint_energy = rng.uniform(0.0, 2.0);
        ScenarioTaskResult t;
        t.response = rng.uniform(1e-4, 1e-2);
        r.tasks.push_back(t);
    }
    const Celsius limit = 70.0;

    FleetAggregates whole;
    for (const ScenarioResult &r : devices)
        whole.foldDevice(r, limit);
    whole.foldDegradedDevice();

    FleetAggregates left, right;
    for (std::size_t i = 0; i < 4; ++i)
        left.foldDevice(devices[i], limit);
    for (std::size_t i = 4; i < devices.size(); ++i)
        right.foldDevice(devices[i], limit);
    right.foldDegradedDevice();
    left.merge(right);

    EXPECT_EQ(whole.devices, left.devices);
    EXPECT_EQ(whole.degraded_devices, left.degraded_devices);
    EXPECT_EQ(whole.tasks_completed, left.tasks_completed);
    EXPECT_EQ(whole.tasks_dropped, left.tasks_dropped);
    EXPECT_EQ(whole.deadlines_met, left.deadlines_met);
    EXPECT_EQ(whole.deadlines_missed, left.deadlines_missed);
    EXPECT_EQ(whole.sprints_granted, left.sprints_granted);
    EXPECT_EQ(whole.sprints_denied, left.sprints_denied);
    EXPECT_EQ(whole.hardware_throttles, left.hardware_throttles);
    EXPECT_EQ(whole.melt_cycles, left.melt_cycles);
    EXPECT_EQ(whole.thermal_violations, left.thermal_violations);
    EXPECT_EQ(whole.peak_junction, left.peak_junction);
    EXPECT_EQ(whole.peak_melt, left.peak_melt);
    EXPECT_EQ(whole.total_energy, left.total_energy);
}

TEST(FleetAggregatesTest, WireRoundTripIsBitExact)
{
    FleetAggregates agg;
    Rng rng(5);
    for (int i = 0; i < 40; ++i) {
        ScenarioResult r;
        r.tasks_completed = 2;
        r.peak_junction = rng.uniform(40.0, 90.0);
        ScenarioTaskResult t;
        t.response = rng.uniform(1e-4, 1e-2);
        r.tasks.push_back(t);
        agg.foldDevice(r, 70.0);
    }

    const std::uint32_t digest = 0xabad1deau;
    const auto blob = serializeFleetAggregates(agg, digest);
    const FleetAggregates back =
        deserializeFleetAggregates(blob, digest);
    EXPECT_EQ(agg.devices, back.devices);
    EXPECT_EQ(agg.tasks_completed, back.tasks_completed);
    EXPECT_EQ(agg.thermal_violations, back.thermal_violations);
    EXPECT_EQ(agg.peak_junction, back.peak_junction);
    expectP2BitEqual(agg.response_p50, back.response_p50);
    expectP2BitEqual(agg.response_p95, back.response_p95);

    // Sealed against the fleet digest: a different fleet's aggregates
    // cannot be folded in by mistake.
    EXPECT_THROW(deserializeFleetAggregates(blob, digest + 1),
                 CheckpointError);
}

TEST(P2Merge, SmallMergesAreExact)
{
    P2Quantile a(0.50), b(0.50);
    a.add(3.0);
    a.add(1.0);
    a.add(5.0);
    b.add(2.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    // Exact nearest-rank median of {1, 2, 3, 4, 5}.
    EXPECT_EQ(a.value(), 3.0);

    P2Quantile empty(0.50);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 5u);
    EXPECT_EQ(empty.value(), 3.0);
}

TEST(P2Merge, MergeIsDeterministic)
{
    Rng rng(17);
    P2Quantile a1(0.95), a2(0.95), b(0.95);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform();
        a1.add(x);
        a2.add(x);
    }
    for (int i = 0; i < 80; ++i)
        b.add(rng.uniform());
    a1.merge(b);
    a2.merge(b);
    expectP2BitEqual(a1, a2);
}

TEST(P2Merge, OrderInsensitiveWithinTolerance)
{
    // Three chunks of one uniform stream, merged in every order: the
    // count is exact, every estimate stays a valid quantile of the
    // stream, and the estimates agree with the single-stream run and
    // with each other within an estimator tolerance.
    Rng rng(23);
    std::vector<double> samples(600);
    for (double &x : samples)
        x = rng.uniform();

    P2Quantile whole(0.50);
    std::vector<P2Quantile> chunks(3, P2Quantile(0.50));
    for (std::size_t i = 0; i < samples.size(); ++i) {
        whole.add(samples[i]);
        chunks[i % 3].add(samples[i]);
    }

    const std::vector<std::vector<int>> orders = {
        {0, 1, 2}, {2, 1, 0}, {1, 0, 2}};
    std::vector<double> estimates;
    for (const auto &order : orders) {
        P2Quantile merged(0.50);
        for (int c : order)
            merged.merge(chunks[static_cast<std::size_t>(c)]);
        EXPECT_EQ(merged.count(), samples.size());
        estimates.push_back(merged.value());
    }
    for (double est : estimates) {
        EXPECT_NEAR(est, whole.value(), 0.1);
        EXPECT_NEAR(est, 0.5, 0.1); // true median of U(0, 1)
        EXPECT_GE(est, *std::min_element(samples.begin(),
                                         samples.end()));
        EXPECT_LE(est, *std::max_element(samples.begin(),
                                         samples.end()));
    }
    for (std::size_t i = 1; i < estimates.size(); ++i)
        EXPECT_NEAR(estimates[i], estimates[0], 0.15);
}

TEST(FleetInProcess, SmallFleetAggregatesSensibly)
{
    const FleetSpec spec = smallFleet(42, 6);

    FleetOptions opts;
    opts.num_workers = 2;
    opts.checkpoint_every_tasks = 2;
    opts.store_dir = freshDir("fleet-ip");

    const FleetResult res = runFleetInProcess(spec, opts);
    EXPECT_TRUE(res.allOk());
    EXPECT_EQ(res.aggregates.devices,
              static_cast<std::uint64_t>(spec.num_devices));
    EXPECT_EQ(res.aggregates.degraded_devices, 0u);
    EXPECT_GT(res.aggregates.tasks_completed, 0u);
    EXPECT_GT(res.aggregates.response_p50.value(), 0.0);
    EXPECT_GE(res.aggregates.response_p95.value(),
              res.aggregates.response_p50.value());
    EXPECT_GE(res.aggregates.deadlineSlo(), 0.0);
    EXPECT_LE(res.aggregates.deadlineSlo(), 1.0);
    EXPECT_GT(res.aggregates.peak_junction, 0.0);
    ASSERT_EQ(res.devices.size(),
              static_cast<std::size_t>(spec.num_devices));
    for (const FleetDeviceOutcome &d : res.devices) {
        EXPECT_TRUE(d.completed);
        EXPECT_NE(d.checkpoint_digest, 0u);
    }
    ASSERT_EQ(res.workers.size(), 2u);

    // The range split cannot change any exact aggregate: one worker
    // vs two must agree on every counter.
    FleetOptions one = opts;
    one.num_workers = 1;
    one.store_dir = freshDir("fleet-ip1");
    const FleetResult res1 = runFleetInProcess(spec, one);
    EXPECT_EQ(res1.aggregates.tasks_completed,
              res.aggregates.tasks_completed);
    EXPECT_EQ(res1.aggregates.sprints_granted,
              res.aggregates.sprints_granted);
    EXPECT_EQ(res1.aggregates.melt_cycles, res.aggregates.melt_cycles);
    EXPECT_EQ(res1.aggregates.thermal_violations,
              res.aggregates.thermal_violations);
    EXPECT_EQ(res1.aggregates.peak_junction,
              res.aggregates.peak_junction);
    // total_energy is a sum whose grouping follows the range split, so
    // across different worker counts it only agrees to rounding.
    EXPECT_NEAR(res1.aggregates.total_energy,
                res.aggregates.total_energy,
                1e-12 * res.aggregates.total_energy);
    ASSERT_EQ(res1.devices.size(), res.devices.size());
    for (std::size_t d = 0; d < res.devices.size(); ++d)
        EXPECT_EQ(res1.devices[d].checkpoint_digest,
                  res.devices[d].checkpoint_digest);
}

} // namespace
} // namespace csprint
