/**
 * @file
 * Edge-case and stress tests for the machine: degenerate programs,
 * mid-run control (abort, frequency, energy model), coherence
 * ping-pong costs, dynamic-dequeue contention, quantum preemption,
 * and lock fairness under oversubscription.
 */

#include <gtest/gtest.h>

#include "archsim/machine.hh"
#include "archsim/program.hh"

namespace csprint {
namespace {

MachineConfig
cfgOf(int cores, int threads)
{
    MachineConfig cfg;
    cfg.num_cores = cores;
    cfg.num_threads = threads;
    return cfg;
}

Phase
aluPhase(PhaseKind kind, std::size_t tasks, std::size_t n)
{
    Phase p;
    p.kind = kind;
    p.num_tasks = tasks;
    p.make_task = [n](std::size_t) -> std::unique_ptr<OpStream> {
        return std::make_unique<VectorOpStream>(
            std::vector<MicroOp>(n, MicroOp::intAlu()));
    };
    return p;
}

TEST(MachineEdge, EmptyProgramFinishesImmediately)
{
    ParallelProgram prog("empty");
    Machine m(cfgOf(4, 4), prog);
    m.run();
    EXPECT_TRUE(m.finished());
    EXPECT_EQ(m.stats().ops_retired, 0u);
}

TEST(MachineEdge, ZeroTaskPhase)
{
    ParallelProgram prog("zero");
    Phase p;
    p.kind = PhaseKind::ParallelStatic;
    p.num_tasks = 0;
    p.make_task = nullptr;
    prog.addPhase(std::move(p));
    prog.addPhase(aluPhase(PhaseKind::Serial, 1, 100));
    Machine m(cfgOf(2, 2), prog);
    m.run();
    EXPECT_TRUE(m.finished());
    EXPECT_EQ(m.stats().ops_retired, 100u);
}

TEST(MachineEdge, EmptyTaskStreams)
{
    ParallelProgram prog("empty_tasks");
    Phase p;
    p.kind = PhaseKind::ParallelDynamic;
    p.num_tasks = 10;
    p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
        return std::make_unique<VectorOpStream>(
            std::vector<MicroOp>{});
    };
    prog.addPhase(std::move(p));
    Machine m(cfgOf(4, 4), prog);
    m.run();
    EXPECT_TRUE(m.finished());
}

TEST(MachineEdge, FewerTasksThanThreads)
{
    ParallelProgram prog("sparse");
    prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 3, 5000));
    Machine m(cfgOf(16, 16), prog);
    m.run();
    EXPECT_TRUE(m.finished());
    EXPECT_EQ(m.stats().ops_retired, 15000u);
    // Only three threads had work: completion bounded by one task.
    EXPECT_GE(m.stats().cycles, 5000u);
    EXPECT_LT(m.stats().cycles, 7000u);
}

TEST(MachineEdge, MoreCoresThanThreads)
{
    ParallelProgram prog("wide");
    prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 4, 4000));
    Machine m(cfgOf(16, 4), prog);
    m.run();
    EXPECT_TRUE(m.finished());
    EXPECT_EQ(m.stats().ops_retired, 16000u);
}

TEST(MachineEdge, AbortStopsEarly)
{
    ParallelProgram prog("abort");
    prog.addPhase(aluPhase(PhaseKind::Serial, 1, 10000000));
    Machine m(cfgOf(1, 1), prog);
    m.setSampleHook(
        [](Machine &mm, Seconds, Joules) {
            if (mm.simTime() > 50e-6)
                mm.abort();
        },
        1000);
    m.run();
    EXPECT_FALSE(m.finished());
    EXPECT_LT(m.stats().ops_retired, 10000000u);
    EXPECT_GT(m.stats().ops_retired, 10000u);
}

TEST(MachineEdge, EnergyModelSwapMidRun)
{
    ParallelProgram prog("swap");
    prog.addPhase(aluPhase(PhaseKind::Serial, 1, 200000));
    Machine m(cfgOf(1, 1), prog);
    bool swapped = false;
    Joules at_swap = 0.0;
    m.setSampleHook(
        [&](Machine &mm, Seconds, Joules) {
            if (!swapped && mm.stats().ops_retired > 100000) {
                mm.setEnergyModel(
                    InstructionEnergyModel().boosted(2.0));
                at_swap = mm.stats().dynamic_energy;
                swapped = true;
            }
        },
        1000);
    m.run();
    ASSERT_TRUE(swapped);
    const Joules second_half = m.stats().dynamic_energy - at_swap;
    // The boosted half burns ~4x the energy of the first half.
    EXPECT_GT(second_half, 3.0 * at_swap);
    EXPECT_LT(second_half, 5.0 * at_swap);
}

TEST(MachineEdge, FrequencyThrottleMidRunSlowsWallClock)
{
    auto run = [](bool throttle) {
        ParallelProgram prog("throttle");
        prog.addPhase(aluPhase(PhaseKind::Serial, 1, 400000));
        Machine m(cfgOf(1, 1), prog);
        if (throttle) {
            bool done = false;
            m.setSampleHook(
                [&](Machine &mm, Seconds, Joules) {
                    if (!done && mm.stats().ops_retired > 200000) {
                        mm.setFrequencyMult(0.25);
                        done = true;
                    }
                },
                1000);
        }
        m.run();
        return m.stats().seconds;
    };
    const Seconds plain = run(false);
    const Seconds throttled = run(true);
    // Second half at 1/4 clock: total ~ 0.5 + 0.5*4 = 2.5x.
    EXPECT_GT(throttled, 2.0 * plain);
    EXPECT_LT(throttled, 3.0 * plain);
}

TEST(MachineEdge, CoherencePingPongCostsMoreThanPrivate)
{
    // Two threads alternately storing to the same line pay coherence
    // penalties; storing to private lines does not.
    auto run = [](bool shared) {
        ParallelProgram prog("pingpong");
        Phase p;
        p.kind = PhaseKind::ParallelStatic;
        p.num_tasks = 2;
        p.make_task =
            [shared](std::size_t task) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            const std::uint64_t line =
                shared ? 0x1000 : 0x1000 + task * 4096;
            for (int i = 0; i < 3000; ++i) {
                ops.push_back(MicroOp::store(line));
                ops.push_back(MicroOp::intAlu());
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        Machine m(cfgOf(2, 2), prog);
        m.run();
        return m.stats().cycles;
    };
    EXPECT_GT(run(true), 2 * run(false));
}

TEST(MachineEdge, DynamicDequeueContentionSerializes)
{
    // Tiny dynamic tasks from many threads: the shared dequeue
    // becomes the bottleneck, bounding speedup by the critical
    // section, not the core count.
    auto run = [](int cores) {
        ParallelProgram prog("dequeue");
        Phase p;
        p.kind = PhaseKind::ParallelDynamic;
        p.num_tasks = 2000;
        p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
            return std::make_unique<VectorOpStream>(
                std::vector<MicroOp>(10, MicroOp::intAlu()));
        };
        prog.addPhase(std::move(p));
        Machine m(cfgOf(cores, cores), prog);
        m.run();
        return m.stats().cycles;
    };
    const double speedup =
        static_cast<double>(run(1)) / static_cast<double>(run(16));
    EXPECT_LT(speedup, 4.0);  // dequeue-bound, nowhere near 16
    EXPECT_GT(speedup, 0.8);
}

TEST(MachineEdge, LockOversubscriptionCompletes)
{
    // 8 threads on 2 cores all hammering one lock: must complete
    // without livelock, with the PAUSE backoff engaging.
    ParallelProgram prog("hammer");
    Phase p;
    p.kind = PhaseKind::ParallelStatic;
    p.num_tasks = 8;
    p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 50; ++i) {
            ops.push_back(MicroOp::lockAcquire(0));
            for (int j = 0; j < 100; ++j)
                ops.push_back(MicroOp::intAlu());
            ops.push_back(MicroOp::lockRelease(0));
        }
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    prog.addPhase(std::move(p));
    Machine m(cfgOf(2, 8), prog);
    m.run();
    EXPECT_TRUE(m.finished());
    EXPECT_GT(m.stats().sleep_cycles, 0u);  // backoff engaged
}

TEST(MachineEdge, QuantumPreemptionSharesTheCore)
{
    // Two threads on one core with quantum preemption: neither can
    // finish long before the other (fair multiplexing).
    ParallelProgram prog("fair");
    prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 2, 500000));
    MachineConfig cfg = cfgOf(1, 2);
    cfg.thread_quantum = 10000;
    Machine m(cfg, prog);
    m.run();
    EXPECT_TRUE(m.finished());
    // Both tasks ran: total ops exact.
    EXPECT_EQ(m.stats().ops_retired, 1000000u);
    // Wall clock ~ sum of both plus switching.
    EXPECT_GT(m.stats().cycles, 1000000u);
    EXPECT_LT(m.stats().cycles, 1300000u);
}

TEST(MachineEdge, StoreUpgradeChargesDirectoryLatency)
{
    // Load a line (clean), then store it: the store pays an upgrade.
    ParallelProgram prog("upgrade");
    Phase p;
    p.kind = PhaseKind::Serial;
    p.num_tasks = 1;
    p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
        std::vector<MicroOp> ops;
        ops.push_back(MicroOp::load(0x4000));
        ops.push_back(MicroOp::store(0x4000));  // upgrade
        ops.push_back(MicroOp::store(0x4000));  // now exclusive: fast
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    prog.addPhase(std::move(p));
    Machine m(cfgOf(1, 1), prog);
    m.run();
    // Miss (~96) + upgrade (~20) + fast store (1) + overheads.
    EXPECT_GT(m.stats().cycles, 110u);
    EXPECT_LT(m.stats().cycles, 200u);
}

} // namespace
} // namespace csprint
