/**
 * @file
 * Tests for the dark-silicon scaling projections behind Figure 1.
 */

#include <gtest/gtest.h>

#include "scaling/darksilicon.hh"

namespace csprint {
namespace {

TEST(DarkSilicon, ReferenceNodeIsNormalized)
{
    for (auto scenario : {ScalingScenario::Itrs, ScalingScenario::Borkar,
                          ScalingScenario::ItrsBorkarVdd}) {
        const auto proj = projectDarkSilicon(scenario);
        ASSERT_FALSE(proj.empty());
        EXPECT_EQ(proj.front().node_nm, 45);
        EXPECT_DOUBLE_EQ(proj.front().power_density, 1.0);
        EXPECT_DOUBLE_EQ(proj.front().dark_fraction, 0.0);
    }
}

TEST(DarkSilicon, PowerDensityRisesMonotonically)
{
    for (auto scenario : {ScalingScenario::Itrs, ScalingScenario::Borkar,
                          ScalingScenario::ItrsBorkarVdd}) {
        const auto proj = projectDarkSilicon(scenario);
        for (std::size_t i = 1; i < proj.size(); ++i) {
            EXPECT_GT(proj[i].power_density, proj[i - 1].power_density)
                << scalingScenarioName(scenario) << " gen " << i;
        }
    }
}

TEST(DarkSilicon, DarkFractionConsistentWithPowerDensity)
{
    const auto proj = projectDarkSilicon(ScalingScenario::Borkar);
    for (const auto &p : proj) {
        if (p.power_density > 1.0) {
            EXPECT_NEAR(p.dark_fraction, 1.0 - 1.0 / p.power_density,
                        1e-12);
        } else {
            EXPECT_DOUBLE_EQ(p.dark_fraction, 0.0);
        }
    }
}

TEST(DarkSilicon, MostOfChipDarkAtEndOfRoadmap)
{
    // The paper quotes predictions of ~80-91% dark silicon by the end
    // of the roadmap; every scenario should land in that regime.
    for (auto scenario : {ScalingScenario::Itrs, ScalingScenario::Borkar,
                          ScalingScenario::ItrsBorkarVdd}) {
        const auto proj = projectDarkSilicon(scenario);
        EXPECT_GE(proj.back().dark_fraction, 0.7)
            << scalingScenarioName(scenario);
        EXPECT_LT(proj.back().dark_fraction, 1.0);
    }
}

TEST(DarkSilicon, PessimisticVddScalesFasterThanItrs)
{
    const auto itrs = projectDarkSilicon(ScalingScenario::Itrs);
    const auto combo =
        projectDarkSilicon(ScalingScenario::ItrsBorkarVdd);
    // Same density assumptions but worse voltage scaling must yield
    // strictly higher power density from the second node on.
    for (std::size_t i = 1; i < itrs.size(); ++i)
        EXPECT_GT(combo[i].power_density, itrs[i].power_density);
}

TEST(DarkSilicon, CustomNodeList)
{
    const auto proj = projectDarkSilicon(ScalingScenario::Borkar,
                                         {22, 16, 11});
    ASSERT_EQ(proj.size(), 3u);
    EXPECT_EQ(proj[0].node_nm, 22);
    EXPECT_DOUBLE_EQ(proj[0].power_density, 1.0);
}

TEST(DarkSilicon, ScenarioNamesMatchLegend)
{
    EXPECT_EQ(scalingScenarioName(ScalingScenario::Itrs), "ITRS");
    EXPECT_EQ(scalingScenarioName(ScalingScenario::Borkar), "Borkar");
    EXPECT_EQ(scalingScenarioName(ScalingScenario::ItrsBorkarVdd),
              "ITRS + Borkar Vdd scaling");
}

} // namespace
} // namespace csprint
