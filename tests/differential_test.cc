/**
 * @file
 * Randomized differential-test harness: N seeded random scenarios
 * (mixed kernels, sizes, arrival patterns, priorities, and policies —
 * preemptive ones included) driven through the fast paths and the
 * retained reference implementations, asserting bit-identical stats,
 * energy, and traces wherever the stack guarantees exactness:
 *
 *  - MachineLoop::EventDriven vs MachineLoop::Reference (the seed's
 *    cycle-by-cycle scheduler) through whole scenario timelines;
 *  - runScenarioSharded vs the unsharded engine;
 *  - streaming aggregates (keep_task_results = false, traces off) vs
 *    the full-trace engine;
 *  - the streaming arrival cursor vs the materialized timeline;
 *
 * plus a tolerance-gated differential for the Heun thermal integrator
 * against the retained ReferenceEuler.
 *
 * The seed rotates in CI (CSPRINT_DIFF_SEED, logged on every run) so
 * coverage accumulates across runs while any failure reproduces from
 * the logged value.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "archsim/opstream.hh"
#include "common/rng.hh"
#include "sprint/experiment.hh"
#include "sprint/fleet.hh"
#include "sprint/scenario.hh"
#include "thermal/network.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

/** CI-rotated master seed; log it so failures are reproducible. */
std::uint64_t
diffSeed()
{
    static const std::uint64_t seed = [] {
        std::uint64_t s = 20260730ULL;
        if (const char *env = std::getenv("CSPRINT_DIFF_SEED")) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(env, &end, 10);
            if (end != env)
                s = v;
        }
        std::cout << "[ diff-seed ] CSPRINT_DIFF_SEED=" << s << "\n";
        return s;
    }();
    return seed;
}

/** Draw one random scenario configuration. */
ScenarioConfig
randomScenario(Rng &rng)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(
        16, rng.uniform() < 0.5 ? kSmallPcm : 0.015);
    const auto &kinds = allSprintPolicyKinds();
    cfg.policy.kind = kinds[rng.uniformInt(kinds.size())];
    cfg.policy.pacing_period = 2.5e-3;
    cfg.policy.service_prior = rng.uniform(5e-4, 2e-3);
    cfg.policy.qos_slack = rng.uniform(0.5, 2.0);
    const auto &patterns = allArrivalPatterns();
    cfg.pattern = patterns[rng.uniformInt(patterns.size())];
    cfg.num_tasks = 3 + static_cast<int>(rng.uniformInt(3));
    cfg.period = rng.uniform(8e-4, 3e-3);
    cfg.burst_size = 2 + static_cast<int>(rng.uniformInt(2));
    cfg.burst_spacing = rng.uniform(0.0, 2e-4);
    const auto &kernels = allKernels();
    cfg.kernel = kernels[rng.uniformInt(kernels.size())];
    cfg.size = InputSize::A;
    cfg.seed = rng.next();
    cfg.warm_caches = rng.uniform() < 0.5;
    cfg.hi_priority_fraction = rng.uniform() < 0.5 ? 0.5 : 0.0;
    cfg.deadline_hi = rng.uniform(5e-4, 2e-3);
    cfg.deadline_lo = rng.uniform() < 0.5 ? 0.0 : 5e-3;
    cfg.tail_rest = rng.uniform() < 0.3 ? 1e-3 : 0.0;
    if (rng.uniform() < 0.4) {
        cfg.program_factory = makeWorkloadMixFactory(
            {{KernelId::Sobel, InputSize::A, 2.0},
             {KernelId::Kmeans, InputSize::A, 1.0},
             {KernelId::Feature, InputSize::A, 1.0}});
    }
    return cfg;
}

/** Bit-exact comparison of two scenario results, traces included. */
void
expectSameScenario(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
    EXPECT_EQ(a.sprints_granted, b.sprints_granted);
    EXPECT_EQ(a.sprints_denied, b.sprints_denied);
    EXPECT_EQ(a.sprints_exhausted, b.sprints_exhausted);
    EXPECT_EQ(a.hardware_throttles, b.hardware_throttles);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.tasks_dropped, b.tasks_dropped);
    EXPECT_EQ(a.deadlines_met, b.deadlines_met);
    EXPECT_EQ(a.deadlines_missed, b.deadlines_missed);
    EXPECT_EQ(a.sprint_rest_cycles, b.sprint_rest_cycles);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.p50_response, b.p50_response);
    EXPECT_EQ(a.p95_response, b.p95_response);
    EXPECT_EQ(a.peak_junction, b.peak_junction);
    EXPECT_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.total_sprint_time, b.total_sprint_time);
    EXPECT_EQ(a.total_sprint_energy, b.total_sprint_energy);
    EXPECT_EQ(a.peak_melt_fraction, b.peak_melt_fraction);
    EXPECT_EQ(a.surrogate_tasks, b.surrogate_tasks);
    EXPECT_EQ(a.audit_tasks, b.audit_tasks);
    EXPECT_EQ(a.surrogate_demotions, b.surrogate_demotions);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        const ScenarioTaskResult &ta = a.tasks[i];
        const ScenarioTaskResult &tb = b.tasks[i];
        ASSERT_EQ(ta.arrival, tb.arrival);
        ASSERT_EQ(ta.start, tb.start);
        ASSERT_EQ(ta.finish, tb.finish);
        ASSERT_EQ(ta.response, tb.response);
        ASSERT_EQ(ta.sprint_granted, tb.sprint_granted);
        ASSERT_EQ(ta.preemptions, tb.preemptions);
        ASSERT_EQ(ta.deadline_met, tb.deadline_met);
        ASSERT_EQ(ta.run.machine.cycles, tb.run.machine.cycles);
        ASSERT_EQ(ta.run.machine.ops_retired,
                  tb.run.machine.ops_retired);
        ASSERT_EQ(ta.run.machine.ops_by_kind,
                  tb.run.machine.ops_by_kind);
        ASSERT_EQ(ta.run.machine.idle_cycles,
                  tb.run.machine.idle_cycles);
        ASSERT_EQ(ta.run.machine.l1_hits, tb.run.machine.l1_hits);
        ASSERT_EQ(ta.run.machine.l1_misses, tb.run.machine.l1_misses);
        ASSERT_EQ(ta.run.dynamic_energy, tb.run.dynamic_energy);
        ASSERT_EQ(ta.run.task_time, tb.run.task_time);
        ASSERT_EQ(ta.run.sprint_energy, tb.run.sprint_energy);
    }
    const TimeSeries *sa[] = {&a.junction_trace, &a.power_trace,
                              &a.melt_trace};
    const TimeSeries *sb[] = {&b.junction_trace, &b.power_trace,
                              &b.melt_trace};
    for (int k = 0; k < 3; ++k) {
        ASSERT_EQ(sa[k]->size(), sb[k]->size());
        for (std::size_t i = 0; i < sa[k]->size(); ++i) {
            ASSERT_EQ(sa[k]->timeAt(i), sb[k]->timeAt(i));
            ASSERT_EQ(sa[k]->valueAt(i), sb[k]->valueAt(i));
        }
    }
}

/** Scenario descriptor for failure messages. */
std::string
describe(const ScenarioConfig &cfg, int index)
{
    return "scenario " + std::to_string(index) + ": policy=" +
           sprintPolicyKindName(cfg.policy.kind) + " pattern=" +
           arrivalPatternName(cfg.pattern) + " kernel=" +
           kernelName(cfg.kernel) + " tasks=" +
           std::to_string(cfg.num_tasks) + " seed=" +
           std::to_string(cfg.seed) +
           (cfg.warm_caches ? " warm" : " cold") +
           (cfg.hi_priority_fraction > 0.0 ? " mixed-priority" : "");
}

TEST(Differential, EventLoopMatchesReferenceLoop)
{
    Rng rng(diffSeed());
    for (int i = 0; i < 4; ++i) {
        ScenarioConfig cfg = randomScenario(rng);
        SCOPED_TRACE(describe(cfg, i));
        const ScenarioResult fast = runScenario(cfg);
        ScenarioConfig ref = cfg;
        ref.platform.machine.loop = MachineLoop::Reference;
        const ScenarioResult slow = runScenario(ref);
        expectSameScenario(fast, slow);
    }
}

TEST(Differential, ShardedMatchesUnsharded)
{
    Rng rng(diffSeed() ^ 0x5ca1ab1eULL);
    for (int i = 0; i < 4; ++i) {
        ScenarioConfig cfg = randomScenario(rng);
        SCOPED_TRACE(describe(cfg, i));
        const ScenarioResult whole = runScenario(cfg);
        for (std::uint64_t shard : {1u, 2u}) {
            const ScenarioResult sharded =
                runScenarioSharded(cfg, shard);
            expectSameScenario(whole, sharded);
        }
    }
}

TEST(Differential, StreamingAggregatesMatchFullEngine)
{
    Rng rng(diffSeed() ^ 0xdecade5ULL);
    for (int i = 0; i < 4; ++i) {
        ScenarioConfig cfg = randomScenario(rng);
        SCOPED_TRACE(describe(cfg, i));
        const ScenarioResult full = runScenario(cfg);
        ScenarioConfig streaming = cfg;
        streaming.keep_task_results = false;
        streaming.trace_mode = TraceMode::Off;
        const ScenarioResult lean = runScenario(streaming);
        // Same physics sample for sample; only the storage and the
        // quantile estimator (exact vs P²) may differ.
        EXPECT_TRUE(lean.tasks.empty());
        EXPECT_EQ(lean.tasks_completed, full.tasks_completed);
        EXPECT_EQ(lean.sprints_granted, full.sprints_granted);
        EXPECT_EQ(lean.preemptions, full.preemptions);
        EXPECT_EQ(lean.tasks_dropped, full.tasks_dropped);
        EXPECT_EQ(lean.deadlines_met, full.deadlines_met);
        EXPECT_EQ(lean.sprint_rest_cycles, full.sprint_rest_cycles);
        EXPECT_EQ(lean.makespan, full.makespan);
        EXPECT_EQ(lean.total_energy, full.total_energy);
        EXPECT_EQ(lean.peak_junction, full.peak_junction);
        EXPECT_EQ(lean.peak_melt_fraction, full.peak_melt_fraction);
        EXPECT_EQ(lean.total_sprint_energy, full.total_sprint_energy);
    }
}

TEST(Differential, ArrivalCursorMatchesMaterializedTimeline)
{
    Rng rng(diffSeed() ^ 0xa77ebeefULL);
    for (int i = 0; i < 8; ++i) {
        ScenarioConfig cfg = randomScenario(rng);
        cfg.num_tasks = 30;
        SCOPED_TRACE(describe(cfg, i));
        const auto all = buildArrivals(cfg);
        ArrivalCursor cursor(cfg);
        for (std::size_t t = 0; t < all.size(); ++t) {
            const ScenarioTask task = nextArrival(cfg, cursor);
            ASSERT_EQ(task.arrival, all[t].arrival);
            ASSERT_EQ(task.seed, all[t].seed);
            ASSERT_EQ(task.priority, all[t].priority);
            ASSERT_EQ(task.deadline, all[t].deadline);
        }
    }
}

TEST(Differential, SparseDirectoryMatchesFullMap)
{
    // The limited-pointer directory (inline sharers + overflow
    // bitsets) against the full-map baseline that forces every entry
    // onto the bitset path: the representation must be invisible in
    // every statistic and trace.
    Rng rng(diffSeed() ^ 0xd1ec70aaULL);
    for (int i = 0; i < 4; ++i) {
        ScenarioConfig cfg = randomScenario(rng);
        SCOPED_TRACE(describe(cfg, i));
        const ScenarioResult sparse = runScenario(cfg);
        ScenarioConfig flat = cfg;
        flat.platform.machine.l2.directory = DirectoryKind::FullMap;
        const ScenarioResult full = runScenario(flat);
        expectSameScenario(sparse, full);
    }
}

TEST(Differential, ParallelDispatchMatchesSerial)
{
    // Partitioned event-loop dispatch must be bit-identical to the
    // serial loop for every host thread count.
    Rng rng(diffSeed() ^ 0x90a11e70ULL);
    for (int i = 0; i < 3; ++i) {
        ScenarioConfig cfg = randomScenario(rng);
        SCOPED_TRACE(describe(cfg, i));
        const ScenarioResult serial = runScenario(cfg);
        for (int threads : {2, 8}) {
            SCOPED_TRACE("dispatch_threads=" +
                         std::to_string(threads));
            ScenarioConfig par = cfg;
            par.platform.machine.dispatch_threads = threads;
            expectSameScenario(serial, runScenario(par));
        }
    }
}

TEST(Differential, HeapDispatchMatchesGenericScan)
{
    // The ready queue's Urgency heap against the retained
    // snapshot-materializing pickNext scan, on the policies that
    // declare the urgency order and with queues deep enough to
    // exercise reordering.
    Rng rng(diffSeed() ^ 0xbea9dec5ULL);
    for (int i = 0; i < 4; ++i) {
        ScenarioConfig cfg = randomScenario(rng);
        cfg.policy.kind = i % 2 == 0 ? SprintPolicyKind::Qos
                                     : SprintPolicyKind::ModelPredictive;
        if (i < 2)
            cfg.pattern = ArrivalPattern::BackToBack;
        cfg.num_tasks = 8;
        cfg.hi_priority_fraction = 0.5;
        SCOPED_TRACE(describe(cfg, i));
        const ScenarioResult heap = runScenario(cfg);
        ScenarioConfig generic = cfg;
        generic.generic_dispatch = true;
        expectSameScenario(heap, runScenario(generic));
    }
}

TEST(Differential, PipelinedBuildMatchesSerial)
{
    // Building task i+1's program while task i pumps must be
    // invisible; verify_pipeline_build additionally digests every
    // prebuilt program against a serial rebuild inside the engine.
    Rng rng(diffSeed() ^ 0x9192e11eULL);
    for (int i = 0; i < 3; ++i) {
        ScenarioConfig cfg = randomScenario(rng);
        SCOPED_TRACE(describe(cfg, i));
        const ScenarioResult serial = runScenario(cfg);
        ScenarioConfig piped = cfg;
        piped.pipeline_build = true;
        piped.verify_pipeline_build = true;
        expectSameScenario(serial, runScenario(piped));
    }
}

TEST(Differential, HeunIntegratorTracksReferenceEuler)
{
    // The retained first-order integrator is an accuracy reference,
    // not a bit reference: replay a random sprint-shaped power
    // schedule through both and bound the junction divergence.
    Rng rng(diffSeed() ^ 0xe51e57ULL);
    for (int i = 0; i < 3; ++i) {
        MobilePackageModel heun(
            SprintConfig::parallelSprint(16, 0.015).package);
        MobilePackageModel euler(heun.params());
        heun.reset();
        euler.reset();
        euler.network().setIntegrator(
            ThermalIntegrator::ReferenceEuler);

        double max_dev = 0.0;
        for (int step = 0; step < 400; ++step) {
            const Watts power =
                rng.uniform() < 0.4 ? rng.uniform(0.0, 16.0) : 0.0;
            const Seconds dt = rng.uniform(1e-6, 5e-5);
            heun.setDiePower(power);
            euler.setDiePower(power);
            heun.step(dt);
            euler.step(dt);
            max_dev = std::max(max_dev,
                               std::abs(heun.junctionTemp() -
                                        euler.junctionTemp()));
        }
        EXPECT_LT(max_dev, 0.05)
            << "integrator divergence at replay " << i;
        EXPECT_NEAR(heun.meltFraction(), euler.meltFraction(), 0.02);
    }
}

/** Tiny synthetic per-task program for the surrogate differentials. */
ParallelProgram
surrogateMicroProgram(const ScenarioTask &task, int num_ops)
{
    ParallelProgram prog("micro");
    Phase phase;
    phase.name = "work";
    phase.kind = PhaseKind::ParallelStatic;
    phase.num_tasks = 2;
    const std::uint64_t seed = task.seed;
    phase.make_task = [seed, num_ops](std::size_t t) {
        std::vector<MicroOp> ops;
        ops.reserve(static_cast<std::size_t>(num_ops));
        const std::uint64_t base =
            0x10000000ULL + (seed % 64) * 4096 + t * 8192;
        for (int i = 0; i < num_ops; ++i) {
            if (i % 4 == 0)
                ops.push_back(MicroOp::load(base + (i % 32) * 64));
            else
                ops.push_back(MicroOp::intAlu());
        }
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    prog.addPhase(std::move(phase));
    return prog;
}

/** Non-preemptive cold-cache train the surrogate tiers admit. */
ScenarioConfig
surrogateTrainScenario(int tasks, std::uint64_t seed)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(2, 0.015);
    cfg.platform.machine.l1_bytes = 8 * 1024;
    cfg.platform.machine.l2.size_bytes = 64 * 1024;
    cfg.policy.kind = SprintPolicyKind::GreedyActivity;
    cfg.pattern = ArrivalPattern::BackToBack;
    cfg.num_tasks = tasks;
    cfg.seed = seed;
    cfg.program_factory = [](const ScenarioTask &task) {
        return surrogateMicroProgram(task, 1024);
    };
    return cfg;
}

TEST(Differential, SurrogateTierTracksExactWithinTolerance)
{
    // The surrogate tier is tolerance-gated, not bit-exact: the
    // analytically advanced train must stay within the declared
    // envelope of the cycle-accurate run while actually routing the
    // bulk of the tasks through the learned models.
    Rng rng(diffSeed() ^ 0x5e77a9a7ULL);
    ScenarioConfig cfg = surrogateTrainScenario(400, rng.next());
    cfg.keep_task_results = false;
    cfg.trace_mode = TraceMode::Off;
    SCOPED_TRACE(describe(cfg, 0));
    const ScenarioResult exact = runScenario(cfg);

    ScenarioConfig sur = cfg;
    sur.surrogate.tier = FidelityTier::Surrogate;
    sur.surrogate.min_calibration = 8;
    sur.surrogate.profile_samples = 4;
    const ScenarioResult fast = runScenario(sur);

    EXPECT_EQ(fast.tasks_completed, exact.tasks_completed);
    EXPECT_GT(fast.surrogate_tasks, exact.tasks_completed / 2);
    EXPECT_EQ(fast.audit_tasks, 0u);  // pure Surrogate never audits
    EXPECT_NEAR(fast.p50_response, exact.p50_response,
                0.25 * exact.p50_response);
    EXPECT_NEAR(fast.p95_response, exact.p95_response,
                0.25 * exact.p95_response);
    EXPECT_NEAR(fast.total_energy, exact.total_energy,
                0.25 * exact.total_energy);
    EXPECT_NEAR(fast.peak_junction, exact.peak_junction, 2.0);
}

TEST(Differential, AutoTierShardedBitExact)
{
    // Auto-tier routing draws the audit RNG only at calibrated
    // dispatches, so a checkpointed shard chain must replay the whole
    // run bit for bit — including shard cuts inside the calibration
    // window and between audits.
    Rng rng(diffSeed() ^ 0xab17e8a6ULL);
    ScenarioConfig cfg = surrogateTrainScenario(200, rng.next());
    cfg.surrogate.tier = FidelityTier::Auto;
    cfg.surrogate.min_calibration = 16;
    cfg.surrogate.audit_period = 8.0;
    cfg.surrogate.tolerance = 0.9;
    SCOPED_TRACE(describe(cfg, 0));
    const ScenarioResult whole = runScenario(cfg);
    EXPECT_GT(whole.surrogate_tasks, 0u);
    EXPECT_GT(whole.audit_tasks, 0u);
    for (std::uint64_t shard : {1u, 7u, 64u}) {
        SCOPED_TRACE("shard=" + std::to_string(shard));
        expectSameScenario(whole, runScenarioSharded(cfg, shard));
    }
}

TEST(Differential, AuditDemotionDeterminism)
{
    // A bimodal task class the single-mode surrogate cannot price:
    // a tight audit tolerance must demote it, and the demotion point
    // must be identical run to run and across a shard chain.
    Rng rng(diffSeed() ^ 0xde30770aULL);
    ScenarioConfig cfg = surrogateTrainScenario(160, rng.next());
    cfg.program_factory = [](const ScenarioTask &task) {
        // 1-in-8 tasks are ~16x heavier than the rest.
        Rng mode(task.seed ^ 0xb1030da1ULL);
        const int num_ops = mode.uniform() < 0.125 ? 8192 : 512;
        return surrogateMicroProgram(task, num_ops);
    };
    cfg.surrogate.tier = FidelityTier::Auto;
    cfg.surrogate.min_calibration = 6;
    cfg.surrogate.audit_period = 4.0;
    cfg.surrogate.tolerance = 0.05;
    SCOPED_TRACE(describe(cfg, 0));
    const ScenarioResult first = runScenario(cfg);
    EXPECT_GT(first.surrogate_demotions, 0);
    expectSameScenario(first, runScenario(cfg));
    expectSameScenario(first, runScenarioSharded(cfg, 13));
}

/** Draw one random fleet population for the transport differential. */
FleetSpec
randomFleetSpec(Rng &rng)
{
    FleetSpec spec;
    spec.seed = rng.next();
    spec.num_devices = 4 + static_cast<int>(rng.uniformInt(3));
    for (int c = 0; c < 2; ++c) {
        FleetDeviceClass cls;
        cls.weight = rng.uniform(0.5, 2.0);
        cls.cores = c == 0 ? 4 : 8;
        cls.pcm_mass_lo = kSmallPcm;
        cls.pcm_mass_hi = kSmallPcm * rng.uniform(1.0, 3.0);
        cls.ambient_lo = 22.0;
        cls.ambient_hi = rng.uniform(25.0, 32.0);
        cls.policy = rng.uniform() < 0.5
                         ? SprintPolicyKind::GreedyActivity
                         : SprintPolicyKind::DutyCycle;
        cls.pacing_period = 2.5e-3;
        cls.num_tasks = 3 + static_cast<int>(rng.uniformInt(2));
        cls.period = rng.uniform(1e-3, 3e-3);
        cls.hi_priority_fraction = rng.uniform() < 0.5 ? 0.5 : 0.0;
        cls.deadline_hi = rng.uniform(5e-4, 2e-3);
        if (rng.uniform() < 0.5)
            cls.mix = {{KernelId::Sobel, InputSize::A, 2.0},
                       {KernelId::Kmeans, InputSize::A, 1.0}};
        spec.classes.push_back(cls);
    }
    return spec;
}

std::string
diffFreshDir(const char *tag)
{
    std::string tmpl = std::string("/tmp/csprint-") + tag + "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return std::string(dir ? dir : "/tmp");
}

TEST(Differential, FleetMultiProcessMatchesInProcess)
{
    // The process transport against the thread transport on a
    // seed-rotated random fleet: bit-exact on the merged response
    // quantile state, melt cycles, deadline counters, and every
    // per-device checkpoint digest.
    Rng rng(diffSeed() ^ 0xf1ee7d1fULL);
    for (int i = 0; i < 2; ++i) {
        const FleetSpec spec = randomFleetSpec(rng);
        SCOPED_TRACE("fleet " + std::to_string(i) + ": devices=" +
                     std::to_string(spec.num_devices) + " seed=" +
                     std::to_string(spec.seed));

        FleetOptions ip_opts;
        ip_opts.num_workers = 2;
        ip_opts.checkpoint_every_tasks = 2;
        ip_opts.store_dir = diffFreshDir("dfip");
        FleetOptions mp_opts = ip_opts;
        mp_opts.store_dir = diffFreshDir("dfmp");

        const FleetResult ip = runFleetInProcess(spec, ip_opts);
        const FleetResult mp = runFleetMultiProcess(spec, mp_opts);
        ASSERT_TRUE(ip.allOk());
        ASSERT_TRUE(mp.allOk());

        EXPECT_EQ(ip.aggregates.tasks_completed,
                  mp.aggregates.tasks_completed);
        EXPECT_EQ(ip.aggregates.melt_cycles,
                  mp.aggregates.melt_cycles);
        EXPECT_EQ(ip.aggregates.deadlines_met,
                  mp.aggregates.deadlines_met);
        EXPECT_EQ(ip.aggregates.deadlines_missed,
                  mp.aggregates.deadlines_missed);
        EXPECT_EQ(ip.aggregates.thermal_violations,
                  mp.aggregates.thermal_violations);
        EXPECT_EQ(ip.aggregates.peak_junction,
                  mp.aggregates.peak_junction);
        EXPECT_EQ(ip.aggregates.total_energy,
                  mp.aggregates.total_energy);
        double sa[P2Quantile::kStateSize];
        double sb[P2Quantile::kStateSize];
        ip.aggregates.response_p50.save(sa);
        mp.aggregates.response_p50.save(sb);
        EXPECT_EQ(0, std::memcmp(sa, sb, sizeof(sa)));
        ip.aggregates.response_p95.save(sa);
        mp.aggregates.response_p95.save(sb);
        EXPECT_EQ(0, std::memcmp(sa, sb, sizeof(sa)));

        ASSERT_EQ(ip.devices.size(), mp.devices.size());
        for (std::size_t d = 0; d < ip.devices.size(); ++d) {
            EXPECT_EQ(ip.devices[d].checkpoint_digest,
                      mp.devices[d].checkpoint_digest)
                << "device " << d;
        }
    }
}

} // namespace
} // namespace csprint
