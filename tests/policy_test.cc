/**
 * @file
 * Tests for the pluggable sprint policies: factory coverage, parity
 * of the governor-backed policies with the raw SprintGovernor, the
 * grace-window -> hardware-throttle escalation through the policy
 * layer, duty-cycle pacing, and the adaptive-headroom grant gate.
 */

#include <gtest/gtest.h>

#include "sprint/pacing.hh"
#include "sprint/policy.hh"
#include "thermal/package.hh"

namespace csprint {
namespace {

MobilePackageParams
fullScaleParams()
{
    return MobilePackageParams::phonePcm();
}

/** Drive @p policy with constant power until it stops (or 5 s). */
Seconds
sampleUntilStop(SprintPolicy &policy, MobilePackageModel &pkg,
                Watts power, SprintDecision &last)
{
    policy.beginTask(pkg);
    Seconds t = 0.0;
    last = SprintDecision::Continue;
    while (last == SprintDecision::Continue && t < 5.0) {
        last = policy.onSample(pkg, 1e-3, power * 1e-3);
        t += 1e-3;
    }
    return t;
}

TEST(Policy, FactoryBuildsEveryKind)
{
    for (SprintPolicyKind kind : allSprintPolicyKinds()) {
        SprintPolicyParams params;
        params.kind = kind;
        params.pacing_period = 1.0;
        auto policy = makeSprintPolicy(params);
        ASSERT_NE(policy, nullptr);
        EXPECT_STREQ(policy->name(), sprintPolicyKindName(kind));
    }
}

TEST(Policy, GreedyMatchesRawGovernor)
{
    // The greedy policy must make exactly the raw governor's
    // decisions on an identical sample stream.
    MobilePackageModel pkg_policy(fullScaleParams());
    MobilePackageModel pkg_gov(fullScaleParams());
    GovernorConfig gcfg;
    GreedyActivityPolicy policy(gcfg);
    policy.beginTask(pkg_policy);
    SprintGovernor gov(gcfg, pkg_gov);
    for (int i = 0; i < 3000; ++i) {
        const Joules e = (i < 1500 ? 16.0 : 0.5) * 1e-3;
        const SprintDecision d = policy.onSample(pkg_policy, 1e-3, e);
        const GovernorAction a = gov.onSample(1e-3, e);
        ASSERT_EQ(static_cast<int>(d), static_cast<int>(a))
            << "sample " << i;
        ASSERT_EQ(pkg_policy.junctionTemp(), pkg_gov.junctionTemp())
            << "sample " << i;
    }
}

TEST(Policy, GreedyStopsNearOneSecondAtSixteenWatts)
{
    MobilePackageModel pkg(fullScaleParams());
    GreedyActivityPolicy policy;
    SprintDecision last;
    const Seconds t = sampleUntilStop(policy, pkg, 16.0, last);
    EXPECT_EQ(last, SprintDecision::StopSprint);
    EXPECT_GT(t, 0.6);
    EXPECT_LT(t, 2.0);
}

TEST(Policy, ThermometerStopsBelowJunctionLimit)
{
    MobilePackageModel pkg(fullScaleParams());
    ThermometerPolicy policy;
    SprintDecision last;
    sampleUntilStop(policy, pkg, 16.0, last);
    EXPECT_EQ(last, SprintDecision::StopSprint);
    EXPECT_GE(pkg.junctionTemp(), pkg.params().t_junction_max - 2.0);
    EXPECT_LT(pkg.junctionTemp(), pkg.params().t_junction_max);
}

TEST(Policy, GraceWindowEscalatesToThrottle)
{
    // The policy layer must preserve the governor's grace-window
    // escalation: after StopSprint, sustained high power produces
    // exactly one Throttle, and only once the grace window has fully
    // elapsed.
    MobilePackageModel pkg(fullScaleParams());
    GovernorConfig gcfg;
    gcfg.software_grace = 50e-3;
    GreedyActivityPolicy policy(gcfg);
    SprintDecision last;
    sampleUntilStop(policy, pkg, 16.0, last);
    ASSERT_EQ(last, SprintDecision::StopSprint);

    Seconds since_stop = 0.0;
    int throttles = 0;
    for (int i = 0; i < 200; ++i) {
        const SprintDecision d = policy.onSample(pkg, 1e-3, 16e-3);
        since_stop += 1e-3;
        if (d == SprintDecision::Throttle) {
            ++throttles;
            EXPECT_GT(since_stop, gcfg.software_grace);
        } else if (throttles == 0) {
            // No premature throttle inside the window.
            EXPECT_LE(since_stop, gcfg.software_grace + 1e-3 + 1e-12);
        }
    }
    EXPECT_EQ(throttles, 1);
}

TEST(Policy, GraceWindowSparesCompliantSoftware)
{
    MobilePackageModel pkg(fullScaleParams());
    GovernorConfig gcfg;
    gcfg.software_grace = 10e-3;
    GreedyActivityPolicy policy(gcfg);
    SprintDecision last;
    sampleUntilStop(policy, pkg, 16.0, last);
    ASSERT_EQ(last, SprintDecision::StopSprint);
    // Software complied: power falls to ~1 W, no throttle ever.
    for (int i = 0; i < 500; ++i)
        EXPECT_NE(policy.onSample(pkg, 1e-3, 1e-3),
                  SprintDecision::Throttle);
}

TEST(Policy, DutyCyclePacesOutEarly)
{
    // With a pacing period much shorter than the budget-exhaustion
    // time, the duty-cycle policy must stop long before greedy does,
    // after spending about sustainable * period above the envelope.
    MobilePackageModel pkg_greedy(fullScaleParams());
    GreedyActivityPolicy greedy;
    SprintDecision last;
    const Seconds t_greedy =
        sampleUntilStop(greedy, pkg_greedy, 16.0, last);

    MobilePackageModel pkg(fullScaleParams());
    const Seconds period = 2.0;
    DutyCyclePolicy paced(period, GovernorConfig{});
    const Seconds t_paced = sampleUntilStop(paced, pkg, 16.0, last);
    EXPECT_EQ(last, SprintDecision::StopSprint);
    EXPECT_LT(t_paced, 0.5 * t_greedy);

    // The pacing allowance is TDP * period joules of 16 W samples.
    const Watts tdp = pkg.sustainableTdp();
    EXPECT_NEAR(t_paced, tdp * period / 16.0, 0.2 * tdp * period / 16.0);

    // The live duty bound matches the analytical pacing module.
    EXPECT_NEAR(paced.currentDutyCycle(),
                sustainableDutyCycle(pkg, 16.0), 1e-9);
}

TEST(Policy, DutyCycleSafetyNetStillStops)
{
    // A huge pacing period defers pacing entirely; the governor
    // safety net must still end the sprint near budget exhaustion.
    MobilePackageModel pkg(fullScaleParams());
    DutyCyclePolicy paced(1e6, GovernorConfig{});
    SprintDecision last;
    const Seconds t = sampleUntilStop(paced, pkg, 16.0, last);
    EXPECT_EQ(last, SprintDecision::StopSprint);
    EXPECT_GT(t, 0.6);
    EXPECT_LT(t, 2.0);
}

TEST(Policy, AdaptiveHeadroomGateTracksBudgetRecovery)
{
    MobilePackageModel pkg(fullScaleParams());
    AdaptiveHeadroomPolicy policy(0.5, GovernorConfig{});
    // Cold package: granted.
    EXPECT_TRUE(policy.wantSprint(pkg));

    // Drain the budget; immediately afterwards: denied.
    SprintDecision last;
    sampleUntilStop(policy, pkg, 16.0, last);
    ASSERT_EQ(last, SprintDecision::StopSprint);
    EXPECT_FALSE(policy.wantSprint(pkg));

    // Rest until the pacing module says half the budget is back
    // (timeToBudgetFraction advances the package to that point); the
    // gate must agree.
    timeToBudgetFraction(pkg, 0.55, 120.0);
    EXPECT_TRUE(policy.wantSprint(pkg));
}

TEST(Policy, NeverSprintAdvancesThermalState)
{
    MobilePackageModel pkg(fullScaleParams());
    NeverSprintPolicy policy;
    EXPECT_FALSE(policy.wantSprint(pkg));
    policy.beginTask(pkg);
    const Celsius before = pkg.junctionTemp();
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(policy.onSample(pkg, 1e-3, 1e-3),
                  SprintDecision::Continue);
    }
    // The package heated under the 1 W samples: the policy honours
    // the advance-the-package contract.
    EXPECT_GT(pkg.junctionTemp(), before + 1.0);
}

} // namespace
} // namespace csprint
