/**
 * @file
 * Tests for the memory-bandwidth model and the directory-coherent
 * shared L2.
 */

#include <gtest/gtest.h>

#include "archsim/cache.hh"
#include "archsim/l2.hh"
#include "archsim/memory.hh"

namespace csprint {
namespace {

MemoryConfig
smallMem()
{
    MemoryConfig cfg;
    cfg.channels = 2;
    cfg.channel_bytes_per_sec = 4.0e9;
    cfg.round_trip = 60e-9;
    cfg.line_bytes = 64;
    return cfg;
}

TEST(Memory, UncontendedLatencySixtyCycles)
{
    MemorySystem mem(smallMem(), 1e9);
    EXPECT_EQ(mem.uncontendedLatency(), 60u);
    // 4 GB/s at 1 GHz = 4 B/cycle -> 16 cycles per 64 B line.
    EXPECT_EQ(mem.serviceCycles(), 16u);
}

TEST(Memory, SingleAccessNoQueue)
{
    MemorySystem mem(smallMem(), 1e9);
    EXPECT_EQ(mem.read(0, 100), 60u + 16u);
    EXPECT_EQ(mem.stats().queued_cycles, 0u);
}

TEST(Memory, BackToBackSameChannelQueues)
{
    MemorySystem mem(smallMem(), 1e9);
    mem.read(0, 0);   // channel 0 busy until cycle 16
    const Cycles lat = mem.read(2, 0);  // same channel (2 % 2 == 0)
    EXPECT_EQ(lat, 16u + 60u + 16u);
    EXPECT_GT(mem.stats().queued_cycles, 0u);
}

TEST(Memory, ChannelsIndependent)
{
    MemorySystem mem(smallMem(), 1e9);
    mem.read(0, 0);  // channel 0
    const Cycles lat = mem.read(1, 0);  // channel 1: no queueing
    EXPECT_EQ(lat, 60u + 16u);
}

TEST(Memory, BandwidthCeiling)
{
    // Saturating one channel: N lines take ~N*service cycles.
    MemorySystem mem(smallMem(), 1e9);
    Cycles last = 0;
    const int n = 100;
    for (int i = 0; i < n; ++i)
        last = mem.read(static_cast<std::uint64_t>(2 * i), 0);
    // The last access queues behind 99 others: ~99*16 cycles.
    EXPECT_GE(last, 99u * 16u);
}

TEST(Memory, FrequencyMultiplierScalesCycles)
{
    MemorySystem mem(smallMem(), 1e9, 2.0);
    // At 2 GHz, 60 ns = 120 cycles and 4 GB/s = 2 B/cycle -> 32.
    EXPECT_EQ(mem.uncontendedLatency(), 120u);
    EXPECT_EQ(mem.serviceCycles(), 32u);
}

TEST(Memory, WritebackConsumesBandwidthOnly)
{
    MemorySystem mem(smallMem(), 1e9);
    mem.writeback(0, 0);
    EXPECT_EQ(mem.stats().writebacks, 1u);
    // A read right behind it queues.
    const Cycles lat = mem.read(2, 0);
    EXPECT_GT(lat, 60u + 16u);
}

TEST(Memory, AdoptChannelStateRebasesResidualOccupancy)
{
    // A task preempted mid-burst leaves channel 0 busy; the adopting
    // system (here at twice the clock) must rebase the residual span
    // into its own cycle domain, preserving wall-clock occupancy.
    MemorySystem prev(smallMem(), 1e9);
    for (int i = 0; i < 10; ++i)
        prev.read(0, 0);  // channel 0 busy until cycle 160
    EXPECT_DOUBLE_EQ(prev.channelFreeAt(0), 160.0);

    MemorySystem next(smallMem(), 2e9);
    next.adoptChannelState(prev, 100, 50);
    // 60 residual cycles at 1 GHz = 120 cycles at 2 GHz, from now=50.
    EXPECT_DOUBLE_EQ(next.channelFreeAt(0), 170.0);
    EXPECT_DOUBLE_EQ(next.channelFreeAt(1), 0.0);

    // A channel already drained before the cut adopts as idle.
    MemorySystem idle(smallMem(), 1e9);
    idle.adoptChannelState(prev, 500, 0);
    EXPECT_DOUBLE_EQ(idle.channelFreeAt(0), 0.0);
}

// --- Shared L2 + directory ---

struct L2Fixture : public ::testing::Test
{
    L2Fixture()
        : mem(smallMem(), 1e9),
          l2(L2Config{}, mem, 4)
    {
        for (int i = 0; i < 4; ++i)
            l1s.emplace_back(32 * 1024, 8, 64);
    }

    MemorySystem mem;
    SharedL2 l2;
    std::vector<Cache> l1s;
};

TEST_F(L2Fixture, MissThenHitLatency)
{
    const Cycles miss = l2.access(100, false, 0, 0, l1s);
    EXPECT_GT(miss, l2.config().hit_latency);
    l1s[0].access(100, false);
    const Cycles hit = l2.access(100, false, 1, 200, l1s);
    EXPECT_EQ(hit, l2.config().hit_latency);
    EXPECT_EQ(l2.stats().hits, 1u);
    EXPECT_EQ(l2.stats().misses, 1u);
}

TEST_F(L2Fixture, WriteInvalidatesOtherSharers)
{
    // Cores 0..2 read line 7; core 3 writes it.
    for (int c = 0; c < 3; ++c) {
        l2.access(7, false, c, 0, l1s);
        l1s[c].access(7, false);
    }
    const Cycles lat = l2.access(7, true, 3, 100, l1s);
    EXPECT_GT(lat, l2.config().hit_latency);  // coherence penalty
    EXPECT_EQ(l2.stats().invalidations_sent, 3u);
    for (int c = 0; c < 3; ++c)
        EXPECT_FALSE(l1s[c].contains(7)) << "core " << c;
}

TEST_F(L2Fixture, ReadDowngradesDirtyOwner)
{
    l2.access(9, true, 0, 0, l1s);
    l1s[0].access(9, true);  // core 0 holds line 9 dirty
    const Cycles lat = l2.access(9, false, 1, 50, l1s);
    EXPECT_GT(lat, l2.config().hit_latency);
    EXPECT_EQ(l2.stats().downgrades_sent, 1u);
    EXPECT_TRUE(l1s[0].contains(9));
    EXPECT_FALSE(l1s[0].isDirty(9));  // downgraded to clean
}

TEST_F(L2Fixture, WriteByOwnerNoPenalty)
{
    l2.access(9, true, 0, 0, l1s);
    const Cycles lat = l2.access(9, true, 0, 50, l1s);
    EXPECT_EQ(lat, l2.config().hit_latency);
    EXPECT_EQ(l2.stats().invalidations_sent, 0u);
}

TEST_F(L2Fixture, InclusionRecallOnEviction)
{
    // Fill one L2 set past its associativity and check L1 recall.
    // L2: 4 MB, 16 ways, 64 B lines -> 4096 sets; lines that collide
    // are spaced 4096 apart.
    const std::uint64_t base = 12;
    for (int i = 0; i < 17; ++i) {
        const std::uint64_t line = base + 4096ULL * i;
        l2.access(line, false, 0, i * 100, l1s);
        l1s[0].access(line, false);
    }
    // The first line was LRU in the L2 and must have been recalled
    // from core 0's L1.
    EXPECT_FALSE(l1s[0].contains(base));
    EXPECT_GE(l2.stats().inclusion_recalls, 1u);
}

TEST_F(L2Fixture, WritebackFromL1MarksDirty)
{
    l2.access(21, true, 0, 0, l1s);
    l1s[0].access(21, true);
    l2.writebackFromL1(21, 0, 10);
    EXPECT_EQ(l2.stats().writebacks_received, 1u);
}

TEST_F(L2Fixture, DropCoreClearsSharerState)
{
    l2.access(30, false, 2, 0, l1s);
    l1s[2].access(30, false);
    l2.dropCore(2, l1s);
    EXPECT_EQ(l1s[2].validLines(), 0u);
    // A later write by another core sends no invalidation to core 2.
    const auto invals_before = l2.stats().invalidations_sent;
    l2.access(30, true, 0, 100, l1s);
    EXPECT_EQ(l2.stats().invalidations_sent, invals_before);
}

// --- Sparse directory past the one-word sharer cap ---

struct WideL2Fixture : public ::testing::Test
{
    static constexpr int kCores = 128;

    WideL2Fixture()
        : mem(smallMem(), 1e9),
          l2(L2Config{}, mem, kCores)
    {
        for (int i = 0; i < kCores; ++i)
            l1s.emplace_back(32 * 1024, 8, 64);
    }

    MemorySystem mem;
    SharedL2 l2;
    std::vector<Cache> l1s;
};

TEST_F(WideL2Fixture, InlinePointersSpillToBitsetOnOverflow)
{
    // The first kInlineSharers readers fit in the entry; one more
    // promotes it to an overflow bitset block.
    for (int c = 0; c < SharedL2::kInlineSharers; ++c) {
        l2.access(3, false, c, c, l1s);
        l1s[static_cast<std::size_t>(c)].access(3, false);
    }
    EXPECT_EQ(l2.stats().directory_spills, 0u);
    EXPECT_EQ(l2.sharerCount(3), SharedL2::kInlineSharers);

    l2.access(3, false, SharedL2::kInlineSharers, 10, l1s);
    EXPECT_EQ(l2.stats().directory_spills, 1u);
    EXPECT_EQ(l2.sharerCount(3), SharedL2::kInlineSharers + 1);
}

TEST_F(WideL2Fixture, WriteInvalidatesWellOverSixtyFourSharers)
{
    // All 128 cores read line 5 (impossible under the old 64-bit
    // mask); a write by core 0 must invalidate the other 127.
    for (int c = 0; c < kCores; ++c) {
        l2.access(5, false, c, c, l1s);
        l1s[static_cast<std::size_t>(c)].access(5, false);
    }
    EXPECT_EQ(l2.sharerCount(5), kCores);

    const auto before = l2.stats().invalidations_sent;
    l2.access(5, true, 0, 1000, l1s);
    EXPECT_EQ(l2.stats().invalidations_sent,
              before + static_cast<std::uint64_t>(kCores - 1));
    for (int c = 1; c < kCores; ++c)
        EXPECT_FALSE(l1s[static_cast<std::size_t>(c)].contains(5))
            << "core " << c;
    EXPECT_EQ(l2.sharerCount(5), 1);
}

TEST_F(WideL2Fixture, EvictionRecallsOverflowedSharers)
{
    // An L2 victim with >64 sharers must be recalled from every L1
    // (inclusion), and its overflow block released.
    const std::uint64_t base = 12;
    for (int c = 0; c < 100; ++c) {
        l2.access(base, false, c, c, l1s);
        l1s[static_cast<std::size_t>(c)].access(base, false);
    }
    for (int i = 1; i <= 16; ++i) {
        const std::uint64_t line = base + 4096ULL * i;
        l2.access(line, false, 0, 1000 + i, l1s);
        l1s[0].access(line, false);
    }
    for (int c = 0; c < 100; ++c)
        EXPECT_FALSE(l1s[static_cast<std::size_t>(c)].contains(base))
            << "core " << c;
    EXPECT_GE(l2.stats().inclusion_recalls, 100u);
    EXPECT_EQ(l2.sharerCount(base), 0);
}

TEST_F(WideL2Fixture, DropCoreLeavesOverflowedEntryConsistent)
{
    for (int c = 0; c < 80; ++c) {
        l2.access(9, false, c, c, l1s);
        l1s[static_cast<std::size_t>(c)].access(9, false);
    }
    l2.dropCore(70, l1s);
    EXPECT_EQ(l2.sharerCount(9), 79);
    // The dropped core receives no invalidation on a later write.
    const auto before = l2.stats().invalidations_sent;
    l2.access(9, true, 0, 500, l1s);
    EXPECT_EQ(l2.stats().invalidations_sent, before + 78u);
}

} // namespace
} // namespace csprint
