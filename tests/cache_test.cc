/**
 * @file
 * Tests for the set-associative LRU cache model.
 */

#include <gtest/gtest.h>

#include "archsim/cache.hh"

namespace csprint {
namespace {

TEST(Cache, Geometry)
{
    Cache c(32 * 1024, 8, 64);
    EXPECT_EQ(c.numSets(), 64u);  // 32KB / (64B * 8 ways)
    EXPECT_EQ(c.associativity(), 8);
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(Cache, MissThenHit)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(5, false).hit);
    EXPECT_TRUE(c.access(5, false).hit);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictsColdestWay)
{
    // 2-way, 8 sets: lines with the same (line % 8) collide.
    Cache c(1024, 2, 64);
    const std::uint64_t a = 8, b = 16, d = 24;  // all map to set 0
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);  // refresh a; b is now LRU
    const auto r = c.access(d, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_line, b);
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache c(1024, 2, 64);
    c.access(8, true);   // dirty
    c.access(16, false);
    const auto r = c.access(24, false);  // evicts 8 (LRU, dirty)
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_line, 8u);
    EXPECT_TRUE(r.evicted_dirty);
    EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, WriteMarksDirty)
{
    Cache c(1024, 2, 64);
    c.access(3, false);
    EXPECT_FALSE(c.isDirty(3));
    c.access(3, true);
    EXPECT_TRUE(c.isDirty(3));
    c.markClean(3);
    EXPECT_FALSE(c.isDirty(3));
    EXPECT_TRUE(c.contains(3));
}

TEST(Cache, InvalidateReturnsDirtiness)
{
    Cache c(1024, 2, 64);
    c.access(3, true);
    EXPECT_TRUE(c.invalidate(3));
    EXPECT_FALSE(c.contains(3));
    c.access(4, false);
    EXPECT_FALSE(c.invalidate(4));
    EXPECT_FALSE(c.invalidate(99));  // absent: no-op
}

TEST(Cache, FlushClearsEverything)
{
    Cache c(1024, 2, 64);
    for (std::uint64_t l = 0; l < 12; ++l)
        c.access(l, l % 2 == 0);
    EXPECT_GT(c.validLines(), 0u);
    c.flush();
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(Cache, CapacityBound)
{
    Cache c(1024, 2, 64);  // 16 lines total
    for (std::uint64_t l = 0; l < 100; ++l)
        c.access(l, false);
    EXPECT_LE(c.validLines(), 16u);
}

TEST(Cache, FullAssociativeSweepHitsAfterWarmup)
{
    // Working set equal to capacity, accessed round-robin, stays
    // resident under true LRU.
    Cache c(1024, 16, 64);  // one set, 16 ways
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t l = 0; l < 16; ++l)
            c.access(l, false);
    EXPECT_EQ(c.stats().misses, 16u);
    EXPECT_EQ(c.stats().hits, 32u);
}

TEST(Cache, ThrashingSweepAlwaysMisses)
{
    // Working set one larger than capacity with LRU: every access
    // misses after warmup (the classic LRU pathology).
    Cache c(1024, 16, 64);  // 16 lines
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t l = 0; l < 17; ++l)
            c.access(l, false);
    EXPECT_EQ(c.stats().hits, 0u);
}

} // namespace
} // namespace csprint
