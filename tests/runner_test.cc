/**
 * @file
 * Tests for the ExperimentRunner thread pool: result ordering,
 * fire-and-forget draining, nested batches, and agreement between a
 * batched run and the serial experiment drivers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "sprint/runner.hh"

namespace csprint {
namespace {

TEST(ExperimentRunner, MapPreservesSubmissionOrder)
{
    ExperimentRunner runner(4);
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 64; ++i) {
        jobs.emplace_back([i] {
            // Stagger completion so out-of-order finishes would show.
            std::this_thread::sleep_for(
                std::chrono::microseconds((64 - i) * 10));
            return i;
        });
    }
    const std::vector<int> out = runner.map(jobs);
    ASSERT_EQ(out.size(), jobs.size());
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(ExperimentRunner, SubmitWaitDrainsEverything)
{
    ExperimentRunner runner(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        runner.submit([&done] { ++done; });
    runner.wait();
    EXPECT_EQ(done.load(), 100);

    // The pool stays usable after a wait().
    runner.submit([&done] { ++done; });
    runner.wait();
    EXPECT_EQ(done.load(), 101);
}

TEST(ExperimentRunner, NestedMapDoesNotDeadlock)
{
    ExperimentRunner runner(2);
    std::vector<std::function<int()>> outer;
    for (int i = 0; i < 4; ++i) {
        outer.emplace_back([&runner, i] {
            std::vector<std::function<int()>> inner;
            for (int j = 0; j < 4; ++j)
                inner.emplace_back([i, j] { return 10 * i + j; });
            const std::vector<int> got = runner.map(inner);
            int sum = 0;
            for (int v : got)
                sum += v;
            return sum;
        });
    }
    const std::vector<int> sums = runner.map(outer);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(sums[static_cast<std::size_t>(i)], 40 * i + 6);
}

TEST(ExperimentRunner, ZeroWorkerRequestGetsAtLeastOne)
{
    ExperimentRunner runner(0);
    EXPECT_GE(runner.workerCount(), 1);
}

TEST(ExperimentRunner, BatchAgreesWithSerialDrivers)
{
    // The batched path must produce the same physics as calling the
    // drivers serially (each run owns its state, so this is pure
    // plumbing — but it is the property every figure rests on).
    ExperimentSpec spec;
    spec.kernel = KernelId::Sobel;
    spec.size = InputSize::A;
    spec.cores = 4;

    const RunResult serial_base = runBaselineExperiment(spec);
    const RunResult serial_sprint = runParallelSprintExperiment(spec);

    ExperimentRunner runner(2);
    const std::vector<RunResult> batched = runner.runBatch(
        {{ExperimentMode::Baseline, spec},
         {ExperimentMode::ParallelSprint, spec}});

    ASSERT_EQ(batched.size(), 2u);
    EXPECT_DOUBLE_EQ(batched[0].task_time, serial_base.task_time);
    EXPECT_DOUBLE_EQ(batched[0].dynamic_energy,
                     serial_base.dynamic_energy);
    EXPECT_DOUBLE_EQ(batched[1].task_time, serial_sprint.task_time);
    EXPECT_DOUBLE_EQ(batched[1].dynamic_energy,
                     serial_sprint.dynamic_energy);
    EXPECT_DOUBLE_EQ(speedupOver(batched[0], batched[1]),
                     speedupOver(serial_base, serial_sprint));
}

} // namespace
} // namespace csprint
