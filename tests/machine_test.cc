/**
 * @file
 * Tests for the many-core machine: program execution semantics
 * (serial/static/dynamic phases, barriers, locks, PAUSE), timing,
 * energy accounting, thread multiplexing, consolidation, DVFS, and
 * determinism.
 */

#include <gtest/gtest.h>

#include <vector>

#include "archsim/machine.hh"
#include "archsim/program.hh"

namespace csprint {
namespace {

/** A phase of `tasks` tasks, each `n` IntAlu ops. */
Phase
aluPhase(PhaseKind kind, std::size_t tasks, std::size_t n)
{
    Phase p;
    p.name = "alu";
    p.kind = kind;
    p.num_tasks = tasks;
    p.make_task = [n](std::size_t) -> std::unique_ptr<OpStream> {
        std::vector<MicroOp> ops(n, MicroOp::intAlu());
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    return p;
}

MachineConfig
smallConfig(int cores, int threads)
{
    MachineConfig cfg;
    cfg.num_cores = cores;
    cfg.num_threads = threads;
    return cfg;
}

TEST(Machine, SingleCoreCpiOne)
{
    ParallelProgram prog("alu");
    prog.addPhase(aluPhase(PhaseKind::Serial, 1, 10000));
    Machine m(smallConfig(1, 1), prog);
    m.run();
    EXPECT_TRUE(m.finished());
    EXPECT_EQ(m.stats().ops_retired, 10000u);
    // CPI 1 plus small task-acquisition overhead.
    EXPECT_GE(m.stats().cycles, 10000u);
    EXPECT_LT(m.stats().cycles, 10300u);
}

TEST(Machine, StaticPhaseNearLinearSpeedup)
{
    auto run = [](int cores) {
        ParallelProgram prog("alu");
        prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 64, 5000));
        Machine m(smallConfig(cores, cores), prog);
        m.run();
        return m.stats().cycles;
    };
    const Cycles c1 = run(1);
    const Cycles c16 = run(16);
    const double speedup = static_cast<double>(c1) / c16;
    EXPECT_GT(speedup, 14.0);
    EXPECT_LE(speedup, 16.5);
}

TEST(Machine, DynamicPhaseBalancesUnevenTasks)
{
    // Task i has weight (i % 7 + 1) * 2000 ops: dynamic dequeue should
    // still reach decent speedup.
    auto make_prog = []() {
        ParallelProgram prog("uneven");
        Phase p;
        p.kind = PhaseKind::ParallelDynamic;
        p.num_tasks = 56;
        p.make_task = [](std::size_t i) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops((i % 7 + 1) * 2000,
                                     MicroOp::intAlu());
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    ParallelProgram p1 = make_prog();
    Machine m1(smallConfig(1, 1), p1);
    m1.run();
    ParallelProgram p8 = make_prog();
    Machine m8(smallConfig(8, 8), p8);
    m8.run();
    const double speedup =
        static_cast<double>(m1.stats().cycles) / m8.stats().cycles;
    EXPECT_GT(speedup, 5.0);
}

TEST(Machine, SerialPhaseRunsOnThreadZeroOnly)
{
    ParallelProgram prog("serial");
    prog.addPhase(aluPhase(PhaseKind::Serial, 4, 1000));
    Machine m(smallConfig(4, 4), prog);
    m.run();
    EXPECT_EQ(m.stats().ops_retired, 4000u);
    // No parallelism possible: at least 4000 cycles.
    EXPECT_GE(m.stats().cycles, 4000u);
}

TEST(Machine, BarriersSeparatePhases)
{
    // Phase 2 cannot start before phase 1 completes; total cycle count
    // reflects the sum of two balanced phases.
    ParallelProgram prog("two");
    prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 8, 4000));
    prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 8, 4000));
    Machine m(smallConfig(8, 8), prog);
    m.run();
    EXPECT_EQ(m.stats().ops_retired, 2u * 8u * 4000u);
    EXPECT_GE(m.stats().cycles, 8000u);
}

TEST(Machine, LockSerializesCriticalSections)
{
    // Each of 8 tasks takes the same lock around 2000 ops: the
    // critical sections alone force >= 16000 cycles on any core count.
    ParallelProgram prog("locked");
    Phase p;
    p.kind = PhaseKind::ParallelStatic;
    p.num_tasks = 8;
    p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
        std::vector<MicroOp> ops;
        ops.push_back(MicroOp::lockAcquire(0));
        for (int i = 0; i < 2000; ++i)
            ops.push_back(MicroOp::intAlu());
        ops.push_back(MicroOp::lockRelease(0));
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    prog.addPhase(std::move(p));
    Machine m(smallConfig(8, 8), prog);
    m.run();
    EXPECT_GE(m.stats().cycles, 8u * 2000u);
    EXPECT_TRUE(m.finished());
}

TEST(Machine, PauseSleepsAndChargesIdle)
{
    ParallelProgram prog("pause");
    Phase p;
    p.kind = PhaseKind::Serial;
    p.num_tasks = 1;
    p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
        std::vector<MicroOp> ops;
        ops.push_back(MicroOp::intAlu());
        ops.push_back(MicroOp::pause());
        ops.push_back(MicroOp::intAlu());
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    prog.addPhase(std::move(p));
    Machine m(smallConfig(1, 1), prog);
    m.run();
    EXPECT_GE(m.stats().cycles, 1000u);  // the sleep dominates
    EXPECT_GE(m.stats().sleep_cycles, 1000u);
}

TEST(Machine, MemoryOpsStallInOrder)
{
    // A chain of loads to distinct lines: every one misses L1+L2 and
    // pays the DRAM round trip; the in-order core cannot overlap them.
    ParallelProgram prog("loads");
    Phase p;
    p.kind = PhaseKind::Serial;
    p.num_tasks = 1;
    const int n = 100;
    p.make_task = [n](std::size_t) -> std::unique_ptr<OpStream> {
        std::vector<MicroOp> ops;
        for (int i = 0; i < n; ++i)
            ops.push_back(MicroOp::load(static_cast<std::uint64_t>(i) *
                                        64 * 131));
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    prog.addPhase(std::move(p));
    Machine m(smallConfig(1, 1), prog);
    m.run();
    // Each miss costs >= 20 (L2) + 60 (DRAM) + 16 (transfer).
    EXPECT_GE(m.stats().cycles, static_cast<Cycles>(n) * 96u);
    EXPECT_EQ(m.stats().l1_misses, static_cast<std::uint64_t>(n));
}

TEST(Machine, CachedLoadsHitAfterWarmup)
{
    ParallelProgram prog("hot");
    Phase p;
    p.kind = PhaseKind::Serial;
    p.num_tasks = 1;
    p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
        std::vector<MicroOp> ops;
        for (int pass = 0; pass < 10; ++pass)
            for (int i = 0; i < 8; ++i)
                ops.push_back(MicroOp::load(
                    static_cast<std::uint64_t>(i) * 64));
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    prog.addPhase(std::move(p));
    Machine m(smallConfig(1, 1), prog);
    m.run();
    EXPECT_EQ(m.stats().l1_misses, 8u);
    EXPECT_EQ(m.stats().l1_hits, 72u);
}

TEST(Machine, MultiplexingMoreThreadsThanCores)
{
    // 8 threads on 1 core: same work as 8 threads on 8 cores but
    // roughly 8x slower (plus switch overhead).
    ParallelProgram prog("mux");
    prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 8, 20000));
    Machine m1(smallConfig(1, 8), prog);
    m1.run();
    ParallelProgram prog2("mux");
    prog2.addPhase(aluPhase(PhaseKind::ParallelStatic, 8, 20000));
    Machine m8(smallConfig(8, 8), prog2);
    m8.run();
    EXPECT_EQ(m1.stats().ops_retired, m8.stats().ops_retired);
    const double ratio =
        static_cast<double>(m1.stats().cycles) / m8.stats().cycles;
    EXPECT_GT(ratio, 7.0);
    EXPECT_LT(ratio, 10.0);
}

TEST(Machine, ConsolidateMidRunCompletesWork)
{
    ParallelProgram prog("consolidate");
    prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 16, 50000));
    Machine m(smallConfig(16, 16), prog);
    bool consolidated = false;
    m.setSampleHook(
        [&](Machine &mm, Seconds, Joules) {
            if (!consolidated && mm.stats().ops_retired > 0 &&
                mm.simTime() > 20e-6) {
                mm.consolidateToSingleCore();
                consolidated = true;
            }
        },
        1000);
    m.run();
    EXPECT_TRUE(consolidated);
    EXPECT_TRUE(m.finished());
    EXPECT_EQ(m.activeCores(), 1);
    EXPECT_EQ(m.stats().ops_retired, 16u * 50000u);
}

TEST(Machine, DvfsBoostShortensWallClock)
{
    ParallelProgram prog("dvfs");
    prog.addPhase(aluPhase(PhaseKind::Serial, 1, 100000));
    MachineConfig boosted = smallConfig(1, 1);
    boosted.freq_mult = 2.5;
    Machine fast(boosted, prog);
    fast.run();
    ParallelProgram prog2("dvfs");
    prog2.addPhase(aluPhase(PhaseKind::Serial, 1, 100000));
    Machine slow(smallConfig(1, 1), prog2);
    slow.run();
    const double ratio = slow.stats().seconds / fast.stats().seconds;
    EXPECT_NEAR(ratio, 2.5, 0.1);  // pure ALU work scales with clock
}

TEST(Machine, DvfsDoesNotSpeedUpMemory)
{
    auto make = []() {
        ParallelProgram prog("memdvfs");
        Phase p;
        p.kind = PhaseKind::Serial;
        p.num_tasks = 1;
        p.make_task = [](std::size_t) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            for (int i = 0; i < 2000; ++i)
                ops.push_back(MicroOp::load(
                    static_cast<std::uint64_t>(i) * 64 * 257));
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(p));
        return prog;
    };
    ParallelProgram pf = make();
    MachineConfig boosted = smallConfig(1, 1);
    boosted.freq_mult = 2.5;
    Machine fast(boosted, pf);
    fast.run();
    ParallelProgram ps = make();
    Machine slow(smallConfig(1, 1), ps);
    slow.run();
    const double ratio = slow.stats().seconds / fast.stats().seconds;
    // Memory-bound work barely benefits from the clock boost.
    EXPECT_LT(ratio, 1.3);
}

TEST(Machine, EnergyMatchesOpAccounting)
{
    ParallelProgram prog("energy");
    prog.addPhase(aluPhase(PhaseKind::Serial, 1, 50000));
    Machine m(smallConfig(1, 1), prog);
    m.run();
    const InstructionEnergyModel model;
    const Joules expected =
        50000.0 * model.opEnergy(OpKind::IntAlu);
    // Idle charges add a little on top of pure op energy.
    EXPECT_GE(m.stats().dynamic_energy, expected);
    EXPECT_LT(m.stats().dynamic_energy, expected * 1.1);
}

TEST(Machine, SampleHookSeesAllEnergy)
{
    ParallelProgram prog("hook");
    prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 8, 10000));
    Machine m(smallConfig(4, 4), prog);
    Joules total = 0.0;
    Seconds time = 0.0;
    m.setSampleHook(
        [&](Machine &, Seconds dt, Joules e) {
            total += e;
            time += dt;
        },
        1000);
    m.run();
    EXPECT_NEAR(total, m.stats().dynamic_energy,
                0.02 * m.stats().dynamic_energy + 1e-9);
    EXPECT_NEAR(time, m.stats().seconds, 2e-6);
}

TEST(Machine, DeterministicAcrossRuns)
{
    auto run = []() {
        ParallelProgram prog("det");
        prog.addPhase(aluPhase(PhaseKind::ParallelDynamic, 31, 3333));
        prog.addPhase(aluPhase(PhaseKind::ParallelStatic, 13, 777));
        Machine m(smallConfig(6, 6), prog);
        m.run();
        return std::make_pair(m.stats().cycles,
                              m.stats().dynamic_energy);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_DOUBLE_EQ(a.second, b.second);
}

} // namespace
} // namespace csprint
