/**
 * @file
 * Tests for the Scenario engine: arrival-timeline construction,
 * bit-exact parity of the greedy policy with the classic runSprint
 * path, PCM melt/refreeze cycles across a burst train, warm machine
 * re-activation, and the pacing <-> scenario consistency property
 * (the analytical sustainableDutyCycle bound upper-bounds the duty
 * cycle the engine achieves on a saturating burst train).
 */

#include <gtest/gtest.h>

#include "sprint/experiment.hh"
#include "sprint/pacing.hh"
#include "sprint/scenario.hh"
#include "workloads/workload.hh"

namespace csprint {
namespace {

ScenarioConfig
smallScenario(SprintPolicyKind kind, ArrivalPattern pattern, int tasks)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(16, kSmallPcm);
    cfg.policy.kind = kind;
    cfg.policy.pacing_period = 2.5e-3;
    cfg.pattern = pattern;
    cfg.num_tasks = tasks;
    cfg.period = 2.5e-3;
    cfg.kernel = KernelId::Sobel;
    cfg.size = InputSize::A;
    return cfg;
}

TEST(Arrivals, PeriodicSpacing)
{
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::Periodic, 5);
    const auto tasks = buildArrivals(cfg);
    ASSERT_EQ(tasks.size(), 5u);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_DOUBLE_EQ(tasks[i].arrival,
                         static_cast<double>(i) * cfg.period);
        EXPECT_EQ(tasks[i].seed, cfg.seed + i);
    }
}

TEST(Arrivals, BurstyStructure)
{
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::Bursty, 6);
    cfg.burst_size = 3;
    cfg.burst_spacing = 1e-4;
    const auto tasks = buildArrivals(cfg);
    ASSERT_EQ(tasks.size(), 6u);
    EXPECT_DOUBLE_EQ(tasks[0].arrival, 0.0);
    EXPECT_DOUBLE_EQ(tasks[1].arrival, 1e-4);
    EXPECT_DOUBLE_EQ(tasks[2].arrival, 2e-4);
    EXPECT_DOUBLE_EQ(tasks[3].arrival, cfg.period);
    EXPECT_DOUBLE_EQ(tasks[5].arrival, cfg.period + 2e-4);
}

TEST(Arrivals, PoissonIsSeededAndNonDecreasing)
{
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::Poisson, 50);
    const auto a = buildArrivals(cfg);
    const auto b = buildArrivals(cfg);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_DOUBLE_EQ(a[0].arrival, 0.0);
    double mean_gap = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
        if (i > 0) {
            EXPECT_GE(a[i].arrival, a[i - 1].arrival);
            mean_gap += a[i].arrival - a[i - 1].arrival;
        }
    }
    mean_gap /= static_cast<double>(a.size() - 1);
    // 49 exponential draws: the sample mean is loose but bounded.
    EXPECT_GT(mean_gap, 0.4 * cfg.period);
    EXPECT_LT(mean_gap, 2.0 * cfg.period);

    cfg.seed = 1234;
    const auto c = buildArrivals(cfg);
    EXPECT_NE(c[1].arrival, a[1].arrival);
}

TEST(Arrivals, BackToBackQueuesEverything)
{
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::BackToBack, 4);
    for (const auto &task : buildArrivals(cfg))
        EXPECT_DOUBLE_EQ(task.arrival, 0.0);
}

TEST(MeltCycles, HysteresisCounting)
{
    TimeSeries melt;
    const double wave[] = {0.0, 0.3, 0.6, 0.04, 0.5, 0.2,
                           0.02, 0.9, 0.5, 0.3};
    for (std::size_t i = 0; i < sizeof(wave) / sizeof(wave[0]); ++i)
        melt.add(static_cast<double>(i), wave[i]);
    // Rises at 0.3, falls at 0.04; rises at 0.5, falls at 0.02;
    // rises at 0.9 but never refreezes: two complete cycles.
    EXPECT_EQ(countMeltRefreezeCycles(melt), 2);
    // Tighter rise threshold: only the 0.9 peak melts, refreezing
    // once at the trailing 0.3.
    EXPECT_EQ(countMeltRefreezeCycles(melt, 0.85, 0.4), 1);
}

TEST(Scenario, GreedySingleTaskMatchesRunSprintExactly)
{
    // The acceptance gate in miniature (scenario_report checks the
    // full fig07 sobel-B configurations): one back-to-back task under
    // the greedy policy is the classic coupled run, bit for bit.
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::BackToBack, 1);
    const ScenarioResult s = runScenario(cfg);
    ASSERT_EQ(s.tasks.size(), 1u);
    const RunResult &a = s.tasks[0].run;

    const ParallelProgram prog =
        buildKernelProgram(cfg.kernel, cfg.size, cfg.seed);
    const RunResult b = runSprint(prog, cfg.platform);

    EXPECT_EQ(a.machine.cycles, b.machine.cycles);
    EXPECT_EQ(a.machine.ops_retired, b.machine.ops_retired);
    EXPECT_EQ(a.machine.l1_hits, b.machine.l1_hits);
    EXPECT_EQ(a.machine.l1_misses, b.machine.l1_misses);
    EXPECT_EQ(a.machine.dynamic_energy, b.machine.dynamic_energy);
    EXPECT_EQ(a.task_time, b.task_time);
    EXPECT_EQ(a.peak_junction, b.peak_junction);
    EXPECT_EQ(a.final_melt_fraction, b.final_melt_fraction);
    EXPECT_EQ(a.sprint_exhausted, b.sprint_exhausted);
    EXPECT_EQ(a.sprint_duration, b.sprint_duration);
    EXPECT_EQ(a.sprint_energy, b.sprint_energy);
    EXPECT_EQ(a.cooldown_estimate, b.cooldown_estimate);
    ASSERT_EQ(a.junction_trace.size(), b.junction_trace.size());
    for (std::size_t i = 0; i < a.junction_trace.size(); ++i) {
        ASSERT_EQ(a.junction_trace.timeAt(i),
                  b.junction_trace.timeAt(i));
        ASSERT_EQ(a.junction_trace.valueAt(i),
                  b.junction_trace.valueAt(i));
    }
    EXPECT_EQ(s.sprints_granted, 1);
    EXPECT_EQ(s.sprints_denied, 0);
    EXPECT_DOUBLE_EQ(s.utilization, 1.0);
}

TEST(Scenario, BurstTrainMeltsAndRefreezes)
{
    // Bursts separated by cooling gaps on a mid-size PCM: the melt
    // fraction must rise during bursts and refreeze in between, at
    // least twice (the paper's repeated sprint-and-rest signature).
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(16, 0.015);
    cfg.policy.kind = SprintPolicyKind::GreedyActivity;
    cfg.pattern = ArrivalPattern::Bursty;
    cfg.num_tasks = 4;
    cfg.burst_size = 2;
    cfg.period = 3e-3;
    cfg.kernel = KernelId::Sobel;
    cfg.size = InputSize::B;
    cfg.tail_rest = 3e-3;
    const ScenarioResult s = runScenario(cfg);
    EXPECT_GE(s.sprint_rest_cycles, 2);
    EXPECT_GT(s.melt_trace.maxValue(), 0.25);
    EXPECT_LT(s.melt_trace.back(), 0.05);  // refrozen by the end
    EXPECT_EQ(s.sprints_granted, 4);
}

TEST(Scenario, QueueingNeverStartsBeforeArrivalOrPredecessor)
{
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::Bursty, 6);
    cfg.burst_size = 3;
    const ScenarioResult s = runScenario(cfg);
    ASSERT_EQ(s.tasks.size(), 6u);
    for (std::size_t i = 0; i < s.tasks.size(); ++i) {
        const ScenarioTaskResult &tr = s.tasks[i];
        EXPECT_GE(tr.start, tr.arrival);
        EXPECT_GE(tr.response, tr.finish - tr.start);
        if (i > 0) {
            EXPECT_GE(tr.start, s.tasks[i - 1].finish);
        }
    }
    EXPECT_GT(s.p95_response, 0.0);
    EXPECT_GE(s.p95_response, s.p50_response);
}

TEST(Scenario, NeverSprintPolicyDeniesEverything)
{
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::NeverSprint,
                      ArrivalPattern::Periodic, 3);
    const ScenarioResult s = runScenario(cfg);
    EXPECT_EQ(s.sprints_granted, 0);
    EXPECT_EQ(s.sprints_denied, 3);
    for (const auto &tr : s.tasks) {
        EXPECT_EQ(tr.run.sprint_cores, 1);
        EXPECT_FALSE(tr.run.sprint_exhausted);
    }
    // One core at ~1 W never approaches the melt point.
    EXPECT_LT(s.peak_junction, cfg.platform.package.pcm_melt_temp);
}

TEST(Scenario, AdaptiveHeadroomDeniesWhileDrained)
{
    // A saturating train drains the budget; the adaptive gate must
    // deny re-sprints until recovery, so a back-to-back train has
    // both grants and denials.
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::AdaptiveHeadroom,
                      ArrivalPattern::BackToBack, 6);
    cfg.policy.resume_fraction = 0.8;
    const ScenarioResult s = runScenario(cfg);
    EXPECT_GE(s.sprints_granted, 1);
    EXPECT_GE(s.sprints_denied, 1);
    EXPECT_TRUE(s.tasks[0].sprint_granted);
}

TEST(Scenario, WarmCachesCarryAcrossTasks)
{
    // Identical back-to-back tasks: with warm re-activation the
    // successor machine inherits the predecessor's L1/L2 contents,
    // so later tasks miss (far) less; stats stay per-task. The
    // 16-core sprint path is used because the aggregate L1 capacity
    // (16 x 32 KB) actually holds the kernel's working set; a single
    // L1 would thrash warm or cold.
    ScenarioConfig cold;
    cold.platform = SprintConfig::parallelSprint(16, kFullPcm);
    cold.policy.kind = SprintPolicyKind::GreedyActivity;
    cold.pattern = ArrivalPattern::BackToBack;
    cold.num_tasks = 3;
    cold.kernel = KernelId::Sobel;
    cold.size = InputSize::A;
    cold.seed = 7;
    ScenarioConfig warm = cold;
    warm.warm_caches = true;
    const ScenarioResult rc = runScenario(cold);
    const ScenarioResult rw = runScenario(warm);
    ASSERT_EQ(rc.tasks.size(), 3u);
    ASSERT_EQ(rw.tasks.size(), 3u);
    // Task 0 is cold either way.
    EXPECT_EQ(rw.tasks[0].run.machine.l1_misses,
              rc.tasks[0].run.machine.l1_misses);
    // Later tasks re-use the cached input image (the synthetic input
    // depends on the per-task seed, which differs, but the shared
    // buffers dominate -- require a strict improvement).
    EXPECT_LT(rw.tasks[2].run.machine.l1_misses,
              rc.tasks[2].run.machine.l1_misses);
    // Warm stats are still per-task: hits cannot exceed ops retired.
    EXPECT_LE(rw.tasks[2].run.machine.l1_hits,
              rw.tasks[2].run.machine.ops_retired);
    // And the physics is unchanged: same sample count per task.
    EXPECT_GT(rw.tasks[2].run.junction_trace.size(), 0u);
}

TEST(ScenarioProperty, DutyCycleBoundsSaturatingBurstTrain)
{
    // Pacing <-> scenario consistency: on a saturating back-to-back
    // train the long-run duty cycle the engine achieves cannot exceed
    // the analytical sustainableDutyCycle bound (plus the one-off
    // cold-start budget transient and the per-task grace overshoot).
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::BackToBack, 8);
    const ScenarioResult s = runScenario(cfg);
    ASSERT_GT(s.total_sprint_time, 0.0);
    ASSERT_GT(s.makespan, 0.0);

    MobilePackageModel pkg(cfg.platform.package);
    const Watts tdp = pkg.sustainableTdp();
    const Watts sprint_power =
        s.total_sprint_energy / s.total_sprint_time;
    ASSERT_GT(sprint_power, tdp);

    const double bound = sustainableDutyCycle(pkg, sprint_power);
    // The cold-start budget funds sprint time beyond the steady-state
    // bound exactly once.
    const Seconds transient =
        pkg.sprintEnergyBudget() / (sprint_power - tdp);
    const double duty = s.total_sprint_time / s.makespan;
    EXPECT_LE(duty, bound + transient / s.makespan + 0.05)
        << "duty " << duty << " bound " << bound << " transient "
        << transient / s.makespan;

    // Energy form of the same conservation argument.
    EXPECT_LE(s.total_sprint_energy,
              pkg.sprintEnergyBudget() + 1.10 * tdp * s.makespan +
                  0.10 * pkg.sprintEnergyBudget());
}

TEST(Arrivals, PoissonGapsArePinned)
{
    // Determinism anchor for the log1p-based exponential gaps (seed
    // 42, mean 2.5e-3): pins the exact first arrivals so an RNG or
    // formula change cannot slip in silently.
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::Poisson, 5);
    const auto tasks = buildArrivals(cfg);
    ASSERT_EQ(tasks.size(), 5u);
    EXPECT_DOUBLE_EQ(tasks[0].arrival, 0.0);
    EXPECT_DOUBLE_EQ(tasks[1].arrival, 0.00021897332645854392);
    EXPECT_DOUBLE_EQ(tasks[2].arrival, 0.001409954314155475);
    EXPECT_DOUBLE_EQ(tasks[3].arrival, 0.0042588791937901689);
    EXPECT_DOUBLE_EQ(tasks[4].arrival, 0.010724332846257276);
}

TEST(Arrivals, CursorMatchesMaterializedTimeline)
{
    for (ArrivalPattern pattern : allArrivalPatterns()) {
        ScenarioConfig cfg =
            smallScenario(SprintPolicyKind::GreedyActivity, pattern,
                          40);
        cfg.burst_size = 3;
        cfg.burst_spacing = 1e-4;
        const auto all = buildArrivals(cfg);
        ArrivalCursor cursor(cfg);
        for (std::size_t i = 0; i < all.size(); ++i) {
            const ScenarioTask task = nextArrival(cfg, cursor);
            ASSERT_DOUBLE_EQ(task.arrival, all[i].arrival);
            ASSERT_EQ(task.seed, all[i].seed);
        }
    }
}

TEST(MeltCycles, EmptySeriesHasNoCycles)
{
    EXPECT_EQ(countMeltRefreezeCycles(TimeSeries()), 0);
}

TEST(MeltCycles, SeriesStartingMolten)
{
    // A series that opens above the rise threshold arms the counter
    // on its first sample; the first refreeze completes a cycle.
    TimeSeries melt;
    melt.add(0.0, 1.0);
    melt.add(1.0, 0.5);
    melt.add(2.0, 0.01);
    EXPECT_EQ(countMeltRefreezeCycles(melt), 1);

    // Starting molten and never refreezing is zero cycles.
    TimeSeries stuck;
    stuck.add(0.0, 1.0);
    stuck.add(1.0, 0.9);
    EXPECT_EQ(countMeltRefreezeCycles(stuck), 0);

    // Starting exactly at the fall threshold while armed refreezes
    // immediately on the next below-threshold sample.
    TimeSeries edge;
    edge.add(0.0, 0.25);
    edge.add(1.0, 0.05);
    EXPECT_EQ(countMeltRefreezeCycles(edge), 1);
}

TEST(Scenario, TraceModesPreserveAggregates)
{
    // The bounded-memory modes must reproduce every scalar aggregate
    // of the full-trace run exactly (same physics, same per-task
    // runs); only the trace storage differs.
    ScenarioConfig full =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::Bursty, 6);
    full.tail_rest = 1e-3;
    ScenarioConfig ring = full;
    ring.trace_mode = TraceMode::DecimatedRing;
    ring.trace_capacity = 64;
    ScenarioConfig off = full;
    off.trace_mode = TraceMode::Off;

    const ScenarioResult rf = runScenario(full);
    const ScenarioResult rr = runScenario(ring);
    const ScenarioResult ro = runScenario(off);

    for (const ScenarioResult *r : {&rr, &ro}) {
        EXPECT_EQ(r->tasks_completed, rf.tasks_completed);
        EXPECT_EQ(r->sprints_granted, rf.sprints_granted);
        EXPECT_EQ(r->sprint_rest_cycles, rf.sprint_rest_cycles);
        EXPECT_DOUBLE_EQ(r->makespan, rf.makespan);
        EXPECT_DOUBLE_EQ(r->total_energy, rf.total_energy);
        EXPECT_DOUBLE_EQ(r->peak_junction, rf.peak_junction);
        EXPECT_DOUBLE_EQ(r->peak_melt_fraction, rf.peak_melt_fraction);
        EXPECT_DOUBLE_EQ(r->p50_response, rf.p50_response);
        EXPECT_DOUBLE_EQ(r->p95_response, rf.p95_response);
    }
    EXPECT_LE(rr.junction_trace.size(), 64u);
    EXPECT_GT(rr.junction_trace.size(), 0u);
    EXPECT_TRUE(ro.junction_trace.empty());
    // The ring keeps a uniformly decimated subsequence of the full
    // trace: every retained sample appears in the full trace.
    for (std::size_t i = 0, j = 0; i < rr.junction_trace.size(); ++i) {
        while (j < rf.junction_trace.size() &&
               (rf.junction_trace.timeAt(j) !=
                    rr.junction_trace.timeAt(i) ||
                rf.junction_trace.valueAt(j) !=
                    rr.junction_trace.valueAt(i)))
            ++j;
        ASSERT_LT(j, rf.junction_trace.size())
            << "ring sample " << i << " not found in full trace";
    }
}

TEST(Scenario, StreamingResultDropsTasksButKeepsStats)
{
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::BackToBack, 8);
    ScenarioConfig streaming = cfg;
    streaming.keep_task_results = false;
    streaming.trace_mode = TraceMode::Off;
    const ScenarioResult rk = runScenario(cfg);
    const ScenarioResult rs = runScenario(streaming);
    EXPECT_TRUE(rs.tasks.empty());
    EXPECT_EQ(rs.tasks_completed, 8u);
    EXPECT_DOUBLE_EQ(rs.makespan, rk.makespan);
    EXPECT_DOUBLE_EQ(rs.total_energy, rk.total_energy);
    // P² is exact through five samples and a tight estimate beyond;
    // on eight samples both quantiles must land within the sample
    // range and near the exact values.
    EXPECT_GT(rs.p50_response, 0.0);
    EXPECT_NEAR(rs.p50_response, rk.p50_response,
                0.25 * rk.p50_response + 1e-12);
    EXPECT_GE(rs.p95_response, rs.p50_response);
}

TEST(Scenario, ShardedRunMatchesUnshardedBitForBit)
{
    // The checkpoint acceptance gate in miniature (the scale bench
    // checks a bigger configuration): replaying the timeline in
    // shards of 1, 2, and 4 tasks must reproduce the unsharded run
    // exactly — every aggregate, every per-task machine stat, every
    // trace sample — including across warm-cache chains.
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::AdaptiveHeadroom,
                      ArrivalPattern::Bursty, 6);
    cfg.policy.resume_fraction = 0.8;
    cfg.warm_caches = true;
    cfg.tail_rest = 1e-3;
    const ScenarioResult u = runScenario(cfg);
    for (std::uint64_t shard : {1u, 2u, 4u}) {
        const ScenarioResult s = runScenarioSharded(cfg, shard);
        ASSERT_EQ(s.tasks.size(), u.tasks.size());
        EXPECT_DOUBLE_EQ(s.makespan, u.makespan);
        EXPECT_DOUBLE_EQ(s.total_energy, u.total_energy);
        EXPECT_DOUBLE_EQ(s.peak_junction, u.peak_junction);
        EXPECT_DOUBLE_EQ(s.p50_response, u.p50_response);
        EXPECT_DOUBLE_EQ(s.p95_response, u.p95_response);
        EXPECT_EQ(s.sprint_rest_cycles, u.sprint_rest_cycles);
        EXPECT_EQ(s.sprints_granted, u.sprints_granted);
        EXPECT_EQ(s.sprints_denied, u.sprints_denied);
        for (std::size_t i = 0; i < u.tasks.size(); ++i) {
            ASSERT_EQ(s.tasks[i].run.machine.cycles,
                      u.tasks[i].run.machine.cycles);
            ASSERT_EQ(s.tasks[i].run.machine.l1_misses,
                      u.tasks[i].run.machine.l1_misses);
            ASSERT_EQ(s.tasks[i].run.dynamic_energy,
                      u.tasks[i].run.dynamic_energy);
            ASSERT_DOUBLE_EQ(s.tasks[i].response,
                             u.tasks[i].response);
        }
        ASSERT_EQ(s.junction_trace.size(), u.junction_trace.size());
        for (std::size_t i = 0; i < u.junction_trace.size(); ++i) {
            ASSERT_EQ(s.junction_trace.timeAt(i),
                      u.junction_trace.timeAt(i));
            ASSERT_EQ(s.junction_trace.valueAt(i),
                      u.junction_trace.valueAt(i));
        }
    }
}

TEST(Scenario, CheckpointResumesMidTimeline)
{
    // Driving the checkpoint API by hand: advance 2 of 5 tasks, then
    // finish from the checkpoint; the result equals one-shot.
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::Periodic, 5);
    const ScenarioResult whole = runScenario(cfg);

    ScenarioCheckpoint ck = beginScenario(cfg);
    EXPECT_FALSE(advanceScenario(cfg, ck, 2));
    EXPECT_EQ(ck.tasks_completed, 2u);
    EXPECT_TRUE(advanceScenario(cfg, ck, 1000));
    const ScenarioResult resumed = finishScenario(cfg, std::move(ck));
    EXPECT_DOUBLE_EQ(resumed.makespan, whole.makespan);
    EXPECT_DOUBLE_EQ(resumed.total_energy, whole.total_energy);
    ASSERT_EQ(resumed.junction_trace.size(),
              whole.junction_trace.size());
}

TEST(Scenario, QuiescentIdleStaysNearExactIdle)
{
    // The fast idle model changes only the idle integration; the
    // junction trace stays within the documented tolerance band of
    // the exact path on a gap-dominated timeline, and the task
    // outcomes (grants, counts) are unchanged.
    ScenarioConfig exact =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::Periodic, 4);
    exact.period = 20e-3;  // long gaps: the PCM refreezes in between
    exact.tail_rest = 10e-3;
    ScenarioConfig fast = exact;
    fast.idle_model = IdleModel::Quiescent;
    const ScenarioResult re = runScenario(exact);
    const ScenarioResult rf = runScenario(fast);
    EXPECT_EQ(rf.tasks_completed, re.tasks_completed);
    EXPECT_EQ(rf.sprints_granted, re.sprints_granted);
    EXPECT_EQ(rf.sprint_rest_cycles, re.sprint_rest_cycles);
    ASSERT_EQ(rf.junction_trace.size(), re.junction_trace.size());
    double max_dev = 0.0;
    for (std::size_t i = 0; i < re.junction_trace.size(); ++i)
        max_dev = std::max(max_dev,
                           std::abs(re.junction_trace.valueAt(i) -
                                    rf.junction_trace.valueAt(i)));
    EXPECT_LT(max_dev, 0.05);
}

TEST(Scenario, ProgramFactoryOverridesKernelPrograms)
{
    // A custom per-task program flows through dispatch untouched;
    // task metadata still comes from the timeline.
    int calls = 0;
    ScenarioConfig cfg =
        smallScenario(SprintPolicyKind::NeverSprint,
                      ArrivalPattern::BackToBack, 3);
    cfg.program_factory = [&calls](const ScenarioTask &task) {
        ++calls;
        return buildKernelProgram(KernelId::Kmeans, InputSize::A,
                                  task.seed);
    };
    const ScenarioResult r = runScenario(cfg);
    EXPECT_EQ(calls, 3);
    ASSERT_EQ(r.tasks.size(), 3u);
    for (const auto &tr : r.tasks)
        EXPECT_EQ(tr.run.program_name, "kmeans");
}

TEST(ScenarioProperty, PacedPolicyHoldsDutyTighterThanGreedy)
{
    // The duty-cycle policy exists to keep the long-run duty near the
    // analytical bound on every prefix, not just asymptotically: its
    // total sprint time on a saturating train must not exceed
    // greedy's.
    ScenarioConfig greedy =
        smallScenario(SprintPolicyKind::GreedyActivity,
                      ArrivalPattern::BackToBack, 6);
    ScenarioConfig paced =
        smallScenario(SprintPolicyKind::DutyCycle,
                      ArrivalPattern::BackToBack, 6);
    const ScenarioResult sg = runScenario(greedy);
    const ScenarioResult sp = runScenario(paced);
    EXPECT_LE(sp.total_sprint_time, sg.total_sprint_time + 1e-9);
}

} // namespace
} // namespace csprint
