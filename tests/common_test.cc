/**
 * @file
 * Unit tests for the common infrastructure: statistics, time series,
 * tables, RNG, and argument parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/args.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/timeseries.hh"
#include "common/units.hh"

namespace csprint {
namespace {

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanMinMaxSum)
{
    RunningStat s;
    for (double x : {4.0, 8.0, 6.0, 2.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
    EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(RunningStat, VarianceMatchesTwoPass)
{
    RunningStat s;
    const double xs[] = {1.5, 2.5, 4.0, 7.25, -3.0, 0.5};
    double mean = 0.0;
    for (double x : xs) {
        s.add(x);
        mean += x;
    }
    mean /= 6.0;
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= 5.0;
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(TimeSeries, MinMaxBack)
{
    TimeSeries ts;
    ts.add(0.0, 1.0);
    ts.add(1.0, -2.0);
    ts.add(2.0, 5.0);
    EXPECT_DOUBLE_EQ(ts.minValue(), -2.0);
    EXPECT_DOUBLE_EQ(ts.maxValue(), 5.0);
    EXPECT_DOUBLE_EQ(ts.back(), 5.0);
    EXPECT_EQ(ts.size(), 3u);
}

TEST(TimeSeries, FirstTimeAboveInterpolates)
{
    TimeSeries ts;
    ts.add(0.0, 0.0);
    ts.add(2.0, 10.0);
    auto t = ts.firstTimeAbove(5.0);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 1.0, 1e-12);
    EXPECT_FALSE(ts.firstTimeAbove(11.0).has_value());
}

TEST(TimeSeries, FirstTimeBelowInterpolates)
{
    TimeSeries ts;
    ts.add(0.0, 10.0);
    ts.add(4.0, 2.0);
    auto t = ts.firstTimeBelow(6.0);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 2.0, 1e-12);
}

TEST(TimeSeries, SettlingTime)
{
    TimeSeries ts;
    // Decaying oscillation around 1.0.
    ts.add(0.0, 0.0);
    ts.add(1.0, 1.8);
    ts.add(2.0, 0.7);
    ts.add(3.0, 1.05);
    ts.add(4.0, 0.98);
    ts.add(5.0, 1.0);
    auto t = ts.settlingTime(0.1);
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(*t, 3.0);
}

TEST(TimeSeries, TimeAbove)
{
    TimeSeries ts;
    ts.add(0.0, 0.0);
    ts.add(1.0, 2.0);
    ts.add(2.0, 0.0);
    // Crosses 1.0 at t=0.5 and t=1.5.
    EXPECT_NEAR(ts.timeAbove(1.0), 1.0, 1e-12);
}

TEST(TimeSeries, DecimateKeepsEndpoints)
{
    TimeSeries ts;
    for (int i = 0; i <= 1000; ++i)
        ts.add(i, i * i);
    TimeSeries d = ts.decimate(50);
    EXPECT_LE(d.size(), 52u);
    EXPECT_DOUBLE_EQ(d.timeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(d.timeAt(d.size() - 1), 1000.0);
}

TEST(TimeSeries, BulkAppendMatchesPerSampleAdds)
{
    TimeSeries a, b, chunk;
    for (int i = 0; i < 10; ++i) {
        a.add(i, 2.0 * i);
        b.add(i, 2.0 * i);
    }
    for (int i = 10; i < 25; ++i) {
        chunk.add(i, 2.0 * i);
        b.add(i, 2.0 * i);
    }
    a.reserve(a.size() + chunk.size());
    a.append(chunk);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.timeAt(i), b.timeAt(i));
        EXPECT_DOUBLE_EQ(a.valueAt(i), b.valueAt(i));
    }
    // Appending an empty series is a no-op.
    a.append(TimeSeries());
    EXPECT_EQ(a.size(), b.size());
    // Appending into an empty series copies it.
    TimeSeries c;
    c.append(chunk);
    EXPECT_EQ(c.size(), chunk.size());
}

TEST(DecimatingTrace, StoresEverythingUnderCapacity)
{
    DecimatingTrace rec(16);
    for (int i = 0; i < 16; ++i)
        rec.add(i, 3.0 * i);
    EXPECT_EQ(rec.series().size(), 16u);
    EXPECT_EQ(rec.stride(), 1u);
    EXPECT_EQ(rec.offered(), 16u);
}

TEST(DecimatingTrace, CompactsToUniformGrid)
{
    // 1000 samples through a 16-slot recorder: the retained samples
    // sit on a power-of-two stride covering the whole stream, always
    // within capacity.
    DecimatingTrace rec(16);
    for (int i = 0; i < 1000; ++i)
        rec.add(i, 1.0 * i);
    const TimeSeries &ts = rec.series();
    EXPECT_LE(ts.size(), 16u);
    EXPECT_GE(ts.size(), 8u);  // never compacts below half
    const std::size_t stride = rec.stride();
    EXPECT_EQ(stride & (stride - 1), 0u);  // power of two
    for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_DOUBLE_EQ(ts.timeAt(i),
                         static_cast<double>(i * stride));
        EXPECT_DOUBLE_EQ(ts.valueAt(i),
                         static_cast<double>(i * stride));
    }
    // First sample always survives every compaction.
    EXPECT_DOUBLE_EQ(ts.timeAt(0), 0.0);
}

TEST(DecimatingTrace, TakeResetsTheRecorder)
{
    DecimatingTrace rec(8);
    for (int i = 0; i < 100; ++i)
        rec.add(i, i);
    const TimeSeries first = rec.take();
    EXPECT_GT(first.size(), 0u);
    EXPECT_EQ(rec.series().size(), 0u);
    EXPECT_EQ(rec.offered(), 0u);
    rec.add(0.0, 42.0);
    EXPECT_EQ(rec.series().size(), 1u);
    EXPECT_DOUBLE_EQ(rec.series().valueAt(0), 42.0);
}

TEST(P2Quantile, ExactForFirstFiveSamples)
{
    P2Quantile q(0.5);
    q.add(5.0);
    EXPECT_DOUBLE_EQ(q.value(), 5.0);
    q.add(1.0);
    q.add(9.0);
    // Nearest-rank median of {1, 5, 9}.
    EXPECT_DOUBLE_EQ(q.value(), 5.0);
    q.add(3.0);
    q.add(7.0);
    EXPECT_DOUBLE_EQ(q.value(), 5.0);
    EXPECT_EQ(q.count(), 5u);
}

TEST(P2Quantile, TracksUniformStreamMedianAndTail)
{
    // A deterministic shuffled uniform stream: the P² estimates must
    // land close to the true quantiles.
    Rng rng(7);
    P2Quantile p50(0.5), p95(0.95);
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.uniform();
        p50.add(x);
        p95.add(x);
    }
    EXPECT_NEAR(p50.value(), 0.5, 0.02);
    EXPECT_NEAR(p95.value(), 0.95, 0.02);
}

TEST(P2Quantile, MonotoneRampStaysOrdered)
{
    // The back-to-back response pattern: linearly growing samples.
    P2Quantile p50(0.5), p95(0.95);
    for (int i = 1; i <= 1000; ++i) {
        p50.add(static_cast<double>(i));
        p95.add(static_cast<double>(i));
    }
    EXPECT_NEAR(p50.value(), 500.0, 25.0);
    EXPECT_NEAR(p95.value(), 950.0, 25.0);
    EXPECT_LT(p50.value(), p95.value());
}

TEST(Table, AlignsAndCounts)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.startRow();
    t.cell("alpha");
    t.cell(1.5, 2);
    t.startRow();
    t.cell("beta");
    t.cell(static_cast<long long>(42));
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream oss;
    t.print(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.50"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntBounded)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(celsiusToKelvin(25.0), 298.15);
    EXPECT_DOUBLE_EQ(kelvinToCelsius(373.15), 100.0);
    EXPECT_DOUBLE_EQ(cyclesToSeconds(1000, 1e9), 1e-6);
    EXPECT_EQ(secondsToCycles(1e-6, 1e9), 1000u);
}

TEST(ArgParser, FlagsAndPositionals)
{
    const char *argv[] = {"prog", "--cores=16", "--pcm", "0.15",
                          "input.png", "--verbose"};
    ArgParser args(6, argv, {"cores", "pcm", "verbose"});
    EXPECT_EQ(args.getInt("cores", 1), 16);
    EXPECT_DOUBLE_EQ(args.getDouble("pcm", 0.0), 0.15);
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_FALSE(args.has("missing"));
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "input.png");
}

} // namespace
} // namespace csprint
