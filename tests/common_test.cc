/**
 * @file
 * Unit tests for the common infrastructure: statistics, time series,
 * tables, RNG, and argument parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/args.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/timeseries.hh"
#include "common/units.hh"

namespace csprint {
namespace {

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanMinMaxSum)
{
    RunningStat s;
    for (double x : {4.0, 8.0, 6.0, 2.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
    EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(RunningStat, VarianceMatchesTwoPass)
{
    RunningStat s;
    const double xs[] = {1.5, 2.5, 4.0, 7.25, -3.0, 0.5};
    double mean = 0.0;
    for (double x : xs) {
        s.add(x);
        mean += x;
    }
    mean /= 6.0;
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= 5.0;
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(TimeSeries, MinMaxBack)
{
    TimeSeries ts;
    ts.add(0.0, 1.0);
    ts.add(1.0, -2.0);
    ts.add(2.0, 5.0);
    EXPECT_DOUBLE_EQ(ts.minValue(), -2.0);
    EXPECT_DOUBLE_EQ(ts.maxValue(), 5.0);
    EXPECT_DOUBLE_EQ(ts.back(), 5.0);
    EXPECT_EQ(ts.size(), 3u);
}

TEST(TimeSeries, FirstTimeAboveInterpolates)
{
    TimeSeries ts;
    ts.add(0.0, 0.0);
    ts.add(2.0, 10.0);
    auto t = ts.firstTimeAbove(5.0);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 1.0, 1e-12);
    EXPECT_FALSE(ts.firstTimeAbove(11.0).has_value());
}

TEST(TimeSeries, FirstTimeBelowInterpolates)
{
    TimeSeries ts;
    ts.add(0.0, 10.0);
    ts.add(4.0, 2.0);
    auto t = ts.firstTimeBelow(6.0);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 2.0, 1e-12);
}

TEST(TimeSeries, SettlingTime)
{
    TimeSeries ts;
    // Decaying oscillation around 1.0.
    ts.add(0.0, 0.0);
    ts.add(1.0, 1.8);
    ts.add(2.0, 0.7);
    ts.add(3.0, 1.05);
    ts.add(4.0, 0.98);
    ts.add(5.0, 1.0);
    auto t = ts.settlingTime(0.1);
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(*t, 3.0);
}

TEST(TimeSeries, TimeAbove)
{
    TimeSeries ts;
    ts.add(0.0, 0.0);
    ts.add(1.0, 2.0);
    ts.add(2.0, 0.0);
    // Crosses 1.0 at t=0.5 and t=1.5.
    EXPECT_NEAR(ts.timeAbove(1.0), 1.0, 1e-12);
}

TEST(TimeSeries, DecimateKeepsEndpoints)
{
    TimeSeries ts;
    for (int i = 0; i <= 1000; ++i)
        ts.add(i, i * i);
    TimeSeries d = ts.decimate(50);
    EXPECT_LE(d.size(), 52u);
    EXPECT_DOUBLE_EQ(d.timeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(d.timeAt(d.size() - 1), 1000.0);
}

TEST(Table, AlignsAndCounts)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.startRow();
    t.cell("alpha");
    t.cell(1.5, 2);
    t.startRow();
    t.cell("beta");
    t.cell(static_cast<long long>(42));
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream oss;
    t.print(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.50"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntBounded)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(celsiusToKelvin(25.0), 298.15);
    EXPECT_DOUBLE_EQ(kelvinToCelsius(373.15), 100.0);
    EXPECT_DOUBLE_EQ(cyclesToSeconds(1000, 1e9), 1e-6);
    EXPECT_EQ(secondsToCycles(1e-6, 1e9), 1000u);
}

TEST(ArgParser, FlagsAndPositionals)
{
    const char *argv[] = {"prog", "--cores=16", "--pcm", "0.15",
                          "input.png", "--verbose"};
    ArgParser args(6, argv, {"cores", "pcm", "verbose"});
    EXPECT_EQ(args.getInt("cores", 1), 16);
    EXPECT_DOUBLE_EQ(args.getDouble("pcm", 0.0), 0.15);
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_FALSE(args.has("missing"));
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "input.png");
}

} // namespace
} // namespace csprint
