/**
 * @file
 * Ablation (paper Section 3): sprint-and-rest pacing. Prints budget
 * recovery versus rest time (the PCM refreeze), and the degradation
 * of a train of sprints re-triggered faster than the cooldown.
 */

#include <iostream>

#include "common/table.hh"
#include "sprint/pacing.hh"
#include "thermal/package.hh"

using namespace csprint;

int
main()
{
    std::cout << "Ablation: sprint pacing on the 150 mg PCM package "
                 "(16 W sprints)\n\n";

    MobilePackageModel ref(MobilePackageParams::phonePcm());
    std::cout << "sustainable duty cycle at 16 W: "
              << Table::formatNumber(
                     100.0 * sustainableDutyCycle(ref, 16.0), 1)
              << "% (TDP / sprint power)\n\n";

    // Budget recovery after a full sprint.
    Table rec("sprint budget vs rest time after a ~1.1 s full sprint");
    rec.setHeader({"rest (s)", "budget (J)", "fraction of cold start"});
    MobilePackageModel cold(MobilePackageParams::phonePcm());
    const Joules full = cold.sprintEnergyBudget();
    for (double rest : {0.5, 2.0, 5.0, 10.0, 20.0, 40.0}) {
        MobilePackageModel pkg(MobilePackageParams::phonePcm());
        pkg.setDiePower(16.0);
        for (int i = 0; i < 1100; ++i)
            pkg.step(1e-3);
        const Joules budget = budgetAfterRest(pkg, rest);
        rec.startRow();
        rec.cell(rest, 1);
        rec.cell(budget, 1);
        rec.cell(budget / full, 2);
    }
    rec.print(std::cout);

    std::cout << "\n";
    Table train_table("train of 1 s sprint requests vs request period");
    train_table.setHeader({"period (s)", "sprint 1 (s)", "sprint 3 (s)",
                           "sprint 5 (s)", "budget at sprint 5"});
    for (double period : {2.0, 5.0, 10.0, 30.0}) {
        MobilePackageModel pkg(MobilePackageParams::phonePcm());
        const auto train = runSprintTrain(pkg, 5, 16.0, 1.0, period);
        train_table.startRow();
        train_table.cell(period, 0);
        train_table.cell(train[0].duration, 2);
        train_table.cell(train[2].duration, 2);
        train_table.cell(train[4].duration, 2);
        train_table.cell(train[4].budget_fraction, 2);
    }
    train_table.print(std::cout);

    std::cout << "\npaper: once sprinting capacity is exhausted the "
                 "chip must cool before sprinting\nagain (~20 s for a "
                 "full 16 W sprint); sustained performance stays "
                 "bounded by TDP.\n";
    return 0;
}
