/**
 * @file
 * Ablation (paper Section 3): sprint-and-rest pacing. Prints budget
 * recovery versus rest time (the PCM refreeze), and the degradation
 * of a train of sprints re-triggered faster than the cooldown.
 *
 * Each rest-time and each request-period point owns its package
 * model, so both sweeps run concurrently on an ExperimentRunner.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "sprint/pacing.hh"
#include "sprint/runner.hh"
#include "thermal/package.hh"

using namespace csprint;

int
main()
{
    std::cout << "Ablation: sprint pacing on the 150 mg PCM package "
                 "(16 W sprints)\n\n";

    MobilePackageModel ref(MobilePackageParams::phonePcm());
    std::cout << "sustainable duty cycle at 16 W: "
              << Table::formatNumber(
                     100.0 * sustainableDutyCycle(ref, 16.0), 1)
              << "% (TDP / sprint power)\n\n";

    ExperimentRunner runner;

    // Budget recovery after a full sprint.
    const std::vector<double> rests = {0.5, 2.0, 5.0, 10.0, 20.0, 40.0};
    std::vector<std::function<Joules()>> rest_jobs;
    for (const double rest : rests) {
        rest_jobs.emplace_back([rest] {
            MobilePackageModel pkg(MobilePackageParams::phonePcm());
            pkg.setDiePower(16.0);
            for (int i = 0; i < 1100; ++i)
                pkg.step(1e-3);
            return budgetAfterRest(pkg, rest);
        });
    }
    const std::vector<Joules> budgets = runner.map(rest_jobs);

    Table rec("sprint budget vs rest time after a ~1.1 s full sprint");
    rec.setHeader({"rest (s)", "budget (J)", "fraction of cold start"});
    MobilePackageModel cold(MobilePackageParams::phonePcm());
    const Joules full = cold.sprintEnergyBudget();
    for (std::size_t i = 0; i < rests.size(); ++i) {
        rec.startRow();
        rec.cell(rests[i], 1);
        rec.cell(budgets[i], 1);
        rec.cell(budgets[i] / full, 2);
    }
    rec.print(std::cout);

    std::cout << "\n";
    const std::vector<double> periods = {2.0, 5.0, 10.0, 30.0};
    std::vector<std::function<std::vector<SprintWindow>()>> train_jobs;
    for (const double period : periods) {
        train_jobs.emplace_back([period] {
            MobilePackageModel pkg(MobilePackageParams::phonePcm());
            return runSprintTrain(pkg, 5, 16.0, 1.0, period);
        });
    }
    const auto trains = runner.map(train_jobs);

    Table train_table("train of 1 s sprint requests vs request period");
    train_table.setHeader({"period (s)", "sprint 1 (s)", "sprint 3 (s)",
                           "sprint 5 (s)", "budget at sprint 5"});
    for (std::size_t i = 0; i < periods.size(); ++i) {
        const auto &train = trains[i];
        train_table.startRow();
        train_table.cell(periods[i], 0);
        train_table.cell(train[0].duration, 2);
        train_table.cell(train[2].duration, 2);
        train_table.cell(train[4].duration, 2);
        train_table.cell(train[4].budget_fraction, 2);
    }
    train_table.print(std::cout);

    std::cout << "\npaper: once sprinting capacity is exhausted the "
                 "chip must cool before sprinting\nagain (~20 s for a "
                 "full 16 W sprint); sustained performance stays "
                 "bounded by TDP.\n";
    return 0;
}
