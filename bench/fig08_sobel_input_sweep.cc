/**
 * @file
 * Figure 8 reproduction: sobel speedup as computational demand grows
 * with image resolution, for the parallel sprint at both thermal
 * design points, the DVFS sprint at the small design point, and the
 * single-core baseline.
 */

#include <iostream>

#include "common/table.hh"
#include "sprint/experiment.hh"
#include "sprint/simulation.hh"
#include "workloads/sobel.hh"

using namespace csprint;

namespace {

double
runSobelSweep(std::size_t dim, const SprintConfig &cfg,
              const RunResult &base)
{
    SobelConfig scfg;
    scfg.width = dim;
    scfg.height = dim;
    const ParallelProgram prog = sobelProgram(scfg);
    const RunResult r = runSprint(prog, cfg);
    return base.task_time / r.task_time;
}

} // namespace

int
main()
{
    std::cout << "Figure 8: sobel speedup vs input size, 16 cores\n"
              << "(input sizes are scaled-down equivalents of the "
                 "paper's 2-12 MPix sweep)\n\n";

    Table t("normalized speedup");
    t.setHeader({"image", "MPix-equiv", "Par 150mg", "Par 1.5mg",
                 "DVFS 1.5mg", "1 core"});

    for (std::size_t dim : {128u, 192u, 256u, 320u, 384u, 512u}) {
        SobelConfig scfg;
        scfg.width = dim;
        scfg.height = dim;
        const ParallelProgram prog = sobelProgram(scfg);
        const RunResult base =
            runSprint(prog, SprintConfig::baseline());

        const double par_full = runSobelSweep(
            dim, SprintConfig::parallelSprint(16, kFullPcm), base);
        const double par_small = runSobelSweep(
            dim, SprintConfig::parallelSprint(16, kSmallPcm), base);
        const double dvfs_small = runSobelSweep(
            dim, SprintConfig::dvfsSprint(kPowerHeadroom, kSmallPcm),
            base);

        t.startRow();
        t.cell(std::to_string(dim) + "^2");
        // Map the largest sweep point to the paper's 12 MPix.
        t.cell(12.0 * (static_cast<double>(dim) * dim) /
                   (512.0 * 512.0),
               1);
        t.cell(par_full, 2);
        t.cell(par_small, 2);
        t.cell(dvfs_small, 2);
        t.cell(1.0, 2);
    }
    t.print(std::cout);
    std::cout << "\npaper: with full PCM the sprint covers every "
                 "resolution (flat ~linear speedup);\nwith 1.5 mg the "
                 "speedup decays as the fixed sprint covers less of "
                 "the task;\nDVFS decays fastest (less work per "
                 "joule).\n";
    return 0;
}
