/**
 * @file
 * Figure 7 reproduction: parallel speedup on 16 cores versus an
 * idealized DVFS sprint with the same maximum sprint power, for both
 * thermal design points (1.5 mg and 150 mg PCM equivalents), across
 * all six kernels. The paper reports a 10.2x average for the
 * fully-provisioned parallel sprint.
 */

#include <iostream>

#include "common/table.hh"
#include "sprint/experiment.hh"

using namespace csprint;

int
main()
{
    std::cout << "Figure 7: 16-core parallel sprint vs idealized DVFS "
                 "sprint (input size B)\n"
              << "bars: bottom segment = 1.5 mg PCM design point, "
                 "total = 150 mg design point\n\n";

    Table t("normalized speedup over 1-core non-sprint baseline");
    t.setHeader({"kernel", "Par 1.5mg", "Par 150mg", "DVFS 1.5mg",
                 "DVFS 150mg"});

    double par_sum = 0.0;
    int n = 0;
    for (KernelId id : allKernels()) {
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::B;
        const RunResult base = runBaselineExperiment(spec);

        ExperimentSpec small = spec;
        small.pcm_mass = kSmallPcm;
        const double par_small = speedupOver(
            base, runParallelSprintExperiment(small));
        const double par_full = speedupOver(
            base, runParallelSprintExperiment(spec));
        const double dvfs_small =
            speedupOver(base, runDvfsSprintExperiment(small));
        const double dvfs_full =
            speedupOver(base, runDvfsSprintExperiment(spec));

        t.startRow();
        t.cell(kernelName(id));
        t.cell(par_small, 2);
        t.cell(par_full, 2);
        t.cell(dvfs_small, 2);
        t.cell(dvfs_full, 2);

        par_sum += par_full;
        ++n;
    }
    t.print(std::cout);
    std::cout << "\naverage parallel speedup (150 mg): "
              << Table::formatNumber(par_sum / n, 2)
              << "x   (paper: 10.2x)\n"
              << "paper: DVFS caps near cbrt(16) ~ 2.5x with ample "
                 "thermal capacitance and collapses\nfurther at the "
                 "1.5 mg design point.\n";
    return 0;
}
