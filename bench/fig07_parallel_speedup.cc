/**
 * @file
 * Figure 7 reproduction: parallel speedup on 16 cores versus an
 * idealized DVFS sprint with the same maximum sprint power, for both
 * thermal design points (1.5 mg and 150 mg PCM equivalents), across
 * all six kernels. The paper reports a 10.2x average for the
 * fully-provisioned parallel sprint.
 *
 * All 30 coupled runs (6 kernels x 5 configurations) are independent,
 * so they are fanned across an ExperimentRunner batch.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "sprint/runner.hh"

using namespace csprint;

int
main()
{
    std::cout << "Figure 7: 16-core parallel sprint vs idealized DVFS "
                 "sprint (input size B)\n"
              << "bars: bottom segment = 1.5 mg PCM design point, "
                 "total = 150 mg design point\n\n";

    // Batch layout: per kernel, [baseline, par 1.5mg, par 150mg,
    // dvfs 1.5mg, dvfs 150mg].
    std::vector<ExperimentRun> batch;
    for (KernelId id : allKernels()) {
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::B;

        ExperimentSpec small = spec;
        small.pcm_mass = kSmallPcm;

        batch.push_back({ExperimentMode::Baseline, spec});
        batch.push_back({ExperimentMode::ParallelSprint, small});
        batch.push_back({ExperimentMode::ParallelSprint, spec});
        batch.push_back({ExperimentMode::DvfsSprint, small});
        batch.push_back({ExperimentMode::DvfsSprint, spec});
    }

    ExperimentRunner runner;
    const std::vector<RunResult> results = runner.runBatch(batch);

    Table t("normalized speedup over 1-core non-sprint baseline");
    t.setHeader({"kernel", "Par 1.5mg", "Par 150mg", "DVFS 1.5mg",
                 "DVFS 150mg"});

    double par_sum = 0.0;
    int n = 0;
    std::size_t row = 0;
    for (KernelId id : allKernels()) {
        const RunResult &base = results[row];
        const double par_small = speedupOver(base, results[row + 1]);
        const double par_full = speedupOver(base, results[row + 2]);
        const double dvfs_small = speedupOver(base, results[row + 3]);
        const double dvfs_full = speedupOver(base, results[row + 4]);
        row += 5;

        t.startRow();
        t.cell(kernelName(id));
        t.cell(par_small, 2);
        t.cell(par_full, 2);
        t.cell(dvfs_small, 2);
        t.cell(dvfs_full, 2);

        par_sum += par_full;
        ++n;
    }
    t.print(std::cout);
    std::cout << "\naverage parallel speedup (150 mg): "
              << Table::formatNumber(par_sum / n, 2)
              << "x   (paper: 10.2x)\n"
              << "paper: DVFS caps near cbrt(16) ~ 2.5x with ample "
                 "thermal capacitance and collapses\nfurther at the "
                 "1.5 mg design point.\n";
    return 0;
}
