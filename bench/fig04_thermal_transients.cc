/**
 * @file
 * Figure 4 reproduction: (a) the transient thermal behaviour of a
 * 16 W sprint on a 1 W-TDP PCM-augmented system (rise, latent-heat
 * plateau, rise to the junction limit) and (b) the post-sprint
 * cooldown back to ambient.
 */

#include <iostream>

#include "common/table.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"

using namespace csprint;

int
main()
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());

    std::cout << "Figure 4: thermal transients of a 16 W sprint on a "
                 "1 W TDP PCM system\n";
    std::cout << "package: sustainable TDP "
              << Table::formatNumber(pkg.sustainableTdp(), 2)
              << " W, max sprint power "
              << Table::formatNumber(pkg.maxSprintPower(), 1)
              << " W, sprint budget "
              << Table::formatNumber(pkg.sprintEnergyBudget(), 1)
              << " J\n\n";

    const auto sprint = runSprintTransient(pkg, 16.0, 3.0, 1e-3);

    Table a("Figure 4(a): sprint initiation (16 W)");
    a.setHeader({"time (s)", "junction (C)", "melt fraction"});
    const TimeSeries temp = sprint.junction_temp.decimate(16);
    for (std::size_t i = 0; i < temp.size(); ++i) {
        a.startRow();
        a.cell(temp.timeAt(i), 3);
        a.cell(temp.valueAt(i), 1);
        std::size_t j = 0;
        const auto &melt = sprint.melt_fraction;
        while (j + 1 < melt.size() && melt.timeAt(j) < temp.timeAt(i))
            ++j;
        a.cell(melt.valueAt(j), 2);
    }
    a.print(std::cout);
    std::cout << "plateau duration: "
              << Table::formatNumber(sprint.plateau_duration, 2)
              << " s (paper: ~0.95 s)\n"
              << "time to Tmax:     "
              << Table::formatNumber(sprint.time_to_limit, 2)
              << " s (paper: a little over 1 s)\n\n";

    const TimeSeries cool = runCooldownTransient(pkg, 40.0, 0.05);
    Table b("Figure 4(b): post-sprint cooldown");
    b.setHeader({"time (s)", "junction (C)"});
    const TimeSeries cool_d = cool.decimate(16);
    for (std::size_t i = 0; i < cool_d.size(); ++i) {
        b.startRow();
        b.cell(cool_d.timeAt(i), 1);
        b.cell(cool_d.valueAt(i), 1);
    }
    b.print(std::cout);
    const auto near_ambient =
        cool.firstTimeBelow(pkg.params().ambient + 5.0);
    std::cout << "near ambient (+5 C) after: "
              << (near_ambient
                      ? Table::formatNumber(*near_ambient, 1) + " s"
                      : std::string("never"))
              << " (paper: ~24 s)\n";
    return 0;
}
