/**
 * @file
 * Machine-readable report for the fleet serving driver, written to
 * BENCH_fleet.json (schema documented in PERF.md, "Fleet serving").
 *
 * Gates the tool enforces itself (non-zero exit on failure):
 *
 *  1. scale — the benchmark fleet is representative: >= 64 devices
 *     sampled from >= 3 distinct device classes, served by >= 2
 *     worker processes.
 *
 *  2. transport_parity — the multi-process run equals the in-process
 *     run bit-for-bit on every shared aggregate field and on every
 *     per-device checkpoint digest.
 *
 *  3. kill_recovery_parity — a CSPRINT_DIFF_SEED-derived KillWorker
 *     plan (the seed rotates in CI, so every run kills a different
 *     shard at a different checkpoint) recovers bit-identical to the
 *     uninterrupted multi-process run.
 *
 *  4. throughput — the process transport sustains at least 0.9x the
 *     in-process per-shard device throughput (fork/exec, the pipe
 *     protocol, and checkpoint reaping are bounded overheads); the
 *     speedup field itself is advisory.
 *
 *   ./fleet_report [--out BENCH_fleet.json] [--devices N]
 *                  [--workers W] [--seed S]
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/stats.hh"
#include "sprint/experiment.hh"
#include "sprint/fleet.hh"
#include "sprint/supervisor.hh"

using namespace csprint;

namespace {

/** Three-class population: phone-ish, tablet-ish, and a bursty mix. */
FleetSpec
benchFleet(std::uint64_t seed, int devices)
{
    FleetSpec spec;
    spec.seed = seed;
    spec.num_devices = devices;

    FleetDeviceClass phone;
    phone.weight = 3.0;
    phone.cores = 4;
    phone.pcm_mass_lo = kSmallPcm;
    phone.pcm_mass_hi = 2.0 * kSmallPcm;
    phone.ambient_lo = 22.0;
    phone.ambient_hi = 32.0;
    phone.policy = SprintPolicyKind::GreedyActivity;
    phone.num_tasks = 3;
    phone.period = 2.5e-3;
    spec.classes.push_back(phone);

    FleetDeviceClass tablet;
    tablet.weight = 2.0;
    tablet.cores = 8;
    tablet.pcm_mass_lo = 2.0 * kSmallPcm;
    tablet.pcm_mass_hi = 4.0 * kSmallPcm;
    tablet.ambient_lo = 20.0;
    tablet.ambient_hi = 28.0;
    tablet.policy = SprintPolicyKind::DutyCycle;
    tablet.pacing_period = 2.5e-3;
    tablet.num_tasks = 3;
    tablet.period = 2.0e-3;
    spec.classes.push_back(tablet);

    FleetDeviceClass bursty;
    bursty.weight = 1.0;
    bursty.cores = 4;
    bursty.pcm_mass_lo = kSmallPcm;
    bursty.pcm_mass_hi = 3.0 * kSmallPcm;
    bursty.ambient_lo = 24.0;
    bursty.ambient_hi = 30.0;
    bursty.policy = SprintPolicyKind::GreedyActivity;
    bursty.num_tasks = 4;
    bursty.period = 1.5e-3;
    bursty.hi_priority_fraction = 0.5;
    bursty.deadline_hi = 1.0e-3;
    bursty.mix = {{KernelId::Sobel, InputSize::A, 2.0},
                  {KernelId::Kmeans, InputSize::A, 1.0}};
    spec.classes.push_back(bursty);

    return spec;
}

std::string
freshDir(const char *tag)
{
    std::string tmpl = std::string("/tmp/csprint-bench-") + tag +
                       "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = mkdtemp(buf.data());
    return std::string(dir ? dir : "/tmp");
}

FleetOptions
fleetOptions(const char *tag, int workers)
{
    FleetOptions opts;
    opts.num_workers = workers;
    opts.checkpoint_every_tasks = 2;
    opts.max_retries = 3;
    opts.store_dir = freshDir(tag);
    return opts;
}

/** Bit-exact comparison of two fleet runs (aggregates + digests). */
bool
exactSame(const FleetResult &a, const FleetResult &b, std::string &why)
{
    auto fail = [&why](const std::string &what) {
        why = what;
        return false;
    };
    const FleetAggregates &x = a.aggregates;
    const FleetAggregates &y = b.aggregates;
    if (x.devices != y.devices)
        return fail("devices");
    if (x.degraded_devices != y.degraded_devices)
        return fail("degraded_devices");
    if (x.tasks_completed != y.tasks_completed)
        return fail("tasks_completed");
    if (x.tasks_dropped != y.tasks_dropped)
        return fail("tasks_dropped");
    if (x.deadlines_met != y.deadlines_met)
        return fail("deadlines_met");
    if (x.deadlines_missed != y.deadlines_missed)
        return fail("deadlines_missed");
    if (x.sprints_granted != y.sprints_granted)
        return fail("sprints_granted");
    if (x.sprints_denied != y.sprints_denied)
        return fail("sprints_denied");
    if (x.hardware_throttles != y.hardware_throttles)
        return fail("hardware_throttles");
    if (x.melt_cycles != y.melt_cycles)
        return fail("melt_cycles");
    if (x.thermal_violations != y.thermal_violations)
        return fail("thermal_violations");
    if (x.peak_junction != y.peak_junction)
        return fail("peak_junction");
    if (x.peak_melt != y.peak_melt)
        return fail("peak_melt");
    if (x.total_energy != y.total_energy)
        return fail("total_energy");
    if (x.total_sprint_time != y.total_sprint_time)
        return fail("total_sprint_time");
    if (x.total_sprint_energy != y.total_sprint_energy)
        return fail("total_sprint_energy");
    double sx[P2Quantile::kStateSize];
    double sy[P2Quantile::kStateSize];
    x.response_p50.save(sx);
    y.response_p50.save(sy);
    if (std::memcmp(sx, sy, sizeof(sx)) != 0)
        return fail("response_p50 state");
    x.response_p95.save(sx);
    y.response_p95.save(sy);
    if (std::memcmp(sx, sy, sizeof(sx)) != 0)
        return fail("response_p95 state");
    if (a.devices.size() != b.devices.size())
        return fail("device count");
    for (std::size_t d = 0; d < a.devices.size(); ++d) {
        if (a.devices[d].completed != b.devices[d].completed ||
            a.devices[d].checkpoint_digest !=
                b.devices[d].checkpoint_digest)
            return fail("device " + std::to_string(d) + " digest");
    }
    return true;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"out", "devices", "workers", "seed"});
    const std::string out_path = args.get("out", "BENCH_fleet.json");
    const int devices = static_cast<int>(args.getInt("devices", 64));
    const int workers = static_cast<int>(args.getInt("workers", 4));

    // The rotating differential seed: CLI flag beats the env, the
    // env beats the fixed default. Logged so a CI failure can be
    // replayed locally with --seed.
    std::uint64_t seed = 1u;
    if (const char *env = std::getenv("CSPRINT_DIFF_SEED"))
        seed = std::strtoull(env, nullptr, 10);
    seed = static_cast<std::uint64_t>(
        args.getInt("seed", static_cast<long long>(seed)));
    std::cout << "[ diff-seed ] CSPRINT_DIFF_SEED=" << seed << "\n";

    const FleetSpec spec = benchFleet(seed, devices);
    bool all_ok = true;

    // --- Gate 1: fleet scale. --------------------------------------
    const bool scale_ok = spec.num_devices >= 64 &&
                          spec.classes.size() >= 3 && workers >= 2;
    std::cout << "fleet scale: " << spec.num_devices << " devices, "
              << spec.classes.size() << " classes, " << workers
              << " workers" << (scale_ok ? "" : " — BELOW FLOOR")
              << "\n";
    all_ok = all_ok && scale_ok;

    // --- Gate 2: transport parity (and the throughput numbers). ----
    const auto t_ip = std::chrono::steady_clock::now();
    const FleetResult ip =
        runFleetInProcess(spec, fleetOptions("ip", workers));
    const double ip_s = secondsSince(t_ip);

    const auto t_mp = std::chrono::steady_clock::now();
    const FleetResult mp =
        runFleetMultiProcess(spec, fleetOptions("mp", workers));
    const double mp_s = secondsSince(t_mp);

    std::string parity_why;
    bool parity_ok = ip.allOk() && mp.allOk();
    if (!parity_ok)
        parity_why = "degraded range";
    else
        parity_ok = exactSame(ip, mp, parity_why);
    std::cout << "transport parity: "
              << (parity_ok ? "exact" : "MISMATCH");
    if (!parity_ok)
        std::cout << " (" << parity_why << ")";
    std::cout << "\n";
    all_ok = all_ok && parity_ok;

    // --- Gate 3: seed-rotated kill-recovery parity. ----------------
    // Kill one worker mid-range at a seed-chosen device/checkpoint;
    // the respawned worker must resume from persisted state and land
    // bit-identical to the uninterrupted run.
    FaultPlan plan;
    const int victim = static_cast<int>(seed % devices);
    const std::uint64_t at_seq = 1 + seed % 2;
    plan.faults.push_back({victim, FaultKind::KillWorker, at_seq});
    const FleetResult killed = runFleetMultiProcess(
        spec, fleetOptions("kill", workers), plan);
    int respawns = 0;
    for (const FleetWorkerStats &w : killed.workers)
        respawns += w.respawns;
    std::string kill_why;
    bool kill_ok = killed.allOk();
    if (!kill_ok)
        kill_why = "degraded range";
    else if (respawns < 1)
        kill_why = "fault never fired", kill_ok = false;
    else
        kill_ok = exactSame(mp, killed, kill_why);
    std::cout << "kill-recovery parity (device " << victim << " seq "
              << at_seq << "): " << (kill_ok ? "exact" : "MISMATCH");
    if (!kill_ok)
        std::cout << " (" << kill_why << ")";
    std::cout << "\n";
    all_ok = all_ok && kill_ok;

    // --- Gate 4: per-shard throughput. -----------------------------
    const double ip_rate = devices / ip_s;
    const double mp_rate = devices / mp_s;
    const double ratio = mp_rate / ip_rate;
    const bool tput_ok = ratio >= 0.9;
    std::cout << "throughput: in-process " << ip_rate
              << " devices/s, multi-process " << mp_rate
              << " devices/s (" << ratio << "x"
              << (tput_ok ? "" : " — BELOW 0.9x") << ")\n";
    all_ok = all_ok && tput_ok;

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "FAIL: cannot open " << out_path
                  << " for writing\n";
        return 1;
    }
    out.precision(6);
    out << "{\n"
        << "  \"schema\": \"csprint-fleet-bench-v1\",\n"
        << "  \"diff_seed\": " << seed << ",\n"
        << "  \"fleet\": {\"devices\": " << spec.num_devices
        << ", \"classes\": " << spec.classes.size()
        << ", \"workers\": " << workers
        << ", \"scale_ok\": " << (scale_ok ? "true" : "false")
        << "},\n"
        << "  \"transport_parity\": {\"exact\": "
        << (parity_ok ? "true" : "false") << "},\n"
        << "  \"kill_recovery_parity\": {\"exact\": "
        << (kill_ok ? "true" : "false")
        << ", \"victim_device\": " << victim
        << ", \"respawns\": " << respawns << "},\n"
        << "  \"throughput\": {\"inproc_devices_per_s\": " << ip_rate
        << ", \"mp_devices_per_s\": " << mp_rate
        << ", \"mp_speedup_vs_inproc\": " << ratio
        << ", \"pass\": " << (tput_ok ? "true" : "false") << "},\n"
        << "  \"aggregates\": {\"tasks_completed\": "
        << mp.aggregates.tasks_completed
        << ", \"deadline_slo\": " << mp.aggregates.deadlineSlo()
        << ", \"thermal_violation_rate\": "
        << mp.aggregates.thermalViolationRate()
        << ", \"melt_cycles\": " << mp.aggregates.melt_cycles
        << ", \"p50_response\": " << mp.aggregates.response_p50.value()
        << ", \"p95_response\": " << mp.aggregates.response_p95.value()
        << "},\n"
        << "  \"all_gates_pass\": " << (all_ok ? "true" : "false")
        << "\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";
    return all_ok ? 0 : 1;
}
