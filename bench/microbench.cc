/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrates:
 * thermal-network stepping, MNA circuit stepping, cache access,
 * memory model, and end-to-end machine throughput.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <vector>

#include "archsim/cache.hh"
#include "archsim/opstream.hh"
#include "archsim/machine.hh"
#include "powergrid/pdn.hh"
#include "sprint/runner.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"
#include "thermal/validation.hh"
#include "workloads/sobel.hh"
#include "workloads/workload.hh"

namespace {

using namespace csprint;

/** The coupled-loop hot path: one 1 ms package step at sprint power. */
void
BM_ThermalStep(benchmark::State &state)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.setDiePower(16.0);
    for (auto _ : state) {
        pkg.step(1e-3);
        benchmark::DoNotOptimize(pkg.junctionTemp());
    }
}
BENCHMARK(BM_ThermalStep);

/** Same step through the retained first-order reference integrator. */
void
BM_ThermalStepReferenceEuler(benchmark::State &state)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.network().setIntegrator(ThermalIntegrator::ReferenceEuler);
    pkg.setDiePower(16.0);
    for (auto _ : state) {
        pkg.step(1e-3);
        benchmark::DoNotOptimize(pkg.junctionTemp());
    }
}
BENCHMARK(BM_ThermalStepReferenceEuler);

/**
 * PCM-heavy stepping: a ladder of PCM nodes held on the latent
 * plateau, so every substep walks the enthalpy curve of every node.
 */
void
BM_ThermalStepPcmHeavy(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    ThermalNetwork net(25.0);
    buildPcmLadder(net, n);
    for (auto _ : state) {
        net.step(1e-3);
        benchmark::DoNotOptimize(net.temperature(0));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ThermalStepPcmHeavy)->Arg(8)->Arg(32);

/**
 * Batched experiment throughput: a batch of independent sprint
 * transients fanned across the ExperimentRunner thread pool, versus
 * the serial loop the seed drivers used (Arg(0) = serial).
 */
void
BM_BatchedSprintTransients(benchmark::State &state)
{
    const int workers = static_cast<int>(state.range(0));
    constexpr int kBatch = 8;
    auto one = [] {
        MobilePackageModel pkg(MobilePackageParams::phonePcm());
        const auto tr = runSprintTransient(pkg, 16.0, 3.0, 1e-3);
        return tr.time_to_limit;
    };
    if (workers == 0) {
        for (auto _ : state) {
            double sum = 0.0;
            for (int i = 0; i < kBatch; ++i)
                sum += one();
            benchmark::DoNotOptimize(sum);
        }
    } else {
        ExperimentRunner runner(workers);
        std::vector<std::function<double()>> jobs(kBatch, one);
        for (auto _ : state) {
            const std::vector<double> times = runner.map(jobs);
            benchmark::DoNotOptimize(times.data());
        }
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_BatchedSprintTransients)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_CircuitStep(benchmark::State &state)
{
    PdnParams params = PdnParams::paper16();
    params.num_cores = static_cast<int>(state.range(0));
    PowerDeliveryNetwork pdn(params, ActivationSchedule::abrupt(1e-6));
    pdn.circuit().beginTransient(1e-9);
    for (auto _ : state) {
        pdn.circuit().step();
        benchmark::DoNotOptimize(pdn.circuit().time());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CircuitStep)->Arg(4)->Arg(16);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(32 * 1024, 8, 64);
    std::uint64_t line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(line, false).hit);
        line = (line * 1103515245 + 12345) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

/**
 * End-to-end Machine::run() on the fig07 kernel, comparing the
 * retained cycle-by-cycle reference loop (arg 0) against the
 * event-driven skip-ahead scheduler (arg 1).
 */
void
BM_MachineRunSerial(benchmark::State &state)
{
    const MachineLoop loop = state.range(0) == 0
                                 ? MachineLoop::Reference
                                 : MachineLoop::EventDriven;
    for (auto _ : state) {
        const ParallelProgram prog =
            buildKernelProgram(KernelId::Sobel, InputSize::A);
        MachineConfig cfg;
        cfg.num_cores = 1;
        cfg.num_threads = 1;
        cfg.loop = loop;
        Machine m(cfg, prog);
        m.run();
        benchmark::DoNotOptimize(m.stats().cycles);
    }
}
BENCHMARK(BM_MachineRunSerial)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

void
BM_MachineRunParallel16(benchmark::State &state)
{
    const MachineLoop loop = state.range(0) == 0
                                 ? MachineLoop::Reference
                                 : MachineLoop::EventDriven;
    for (auto _ : state) {
        const ParallelProgram prog =
            buildKernelProgram(KernelId::Sobel, InputSize::B);
        MachineConfig cfg;
        cfg.num_cores = 16;
        cfg.num_threads = 16;
        cfg.loop = loop;
        Machine m(cfg, prog);
        m.run();
        benchmark::DoNotOptimize(m.stats().cycles);
    }
}
BENCHMARK(BM_MachineRunParallel16)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

void
BM_MachineSobel(benchmark::State &state)
{
    const int cores = static_cast<int>(state.range(0));
    SobelConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    for (auto _ : state) {
        const ParallelProgram prog = sobelProgram(cfg);
        MachineConfig mcfg;
        mcfg.num_cores = cores;
        mcfg.num_threads = cores;
        Machine m(mcfg, prog);
        m.run();
        benchmark::DoNotOptimize(m.stats().cycles);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_MachineSobel)->Arg(1)->Arg(16)->Unit(
    benchmark::kMillisecond);

/**
 * Long idle-gap cooling (full melt -> refreeze -> ambient, 64 sampled
 * chunks over 1 s scaled): 0 = exact step() chunks, 1 = the quiescent
 * super-stepper (advanceQuiescent) the scenario fast path uses.
 */
void
BM_IdleCooling(benchmark::State &state)
{
    const bool quiescent = state.range(0) != 0;
    const MobilePackageParams params =
        SprintConfig::scaledPackage(0.15, 7e-4);
    const QuiescentCooldownSpec spec;  // the canonical cooldown
    const Seconds h = spec.gap / spec.samples;
    for (auto _ : state) {
        MobilePackageModel pkg(params);
        meltThenIdle(pkg, spec);
        for (int i = 0; i < spec.samples; ++i) {
            if (quiescent)
                pkg.stepQuiescent(h, spec.tol);
            else
                pkg.step(h);
        }
        benchmark::DoNotOptimize(pkg.junctionTemp());
    }
}
BENCHMARK(BM_IdleCooling)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

/**
 * Checkpoint-sharded scenario replay: a 6-task bursty timeline run as
 * shards of N tasks (0 = unsharded runScenario) — measures the
 * checkpoint save/rebuild overhead per shard boundary.
 */
void
BM_ScenarioSharded(benchmark::State &state)
{
    const std::uint64_t shard =
        static_cast<std::uint64_t>(state.range(0));
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(4, 0.015);
    cfg.policy.kind = SprintPolicyKind::GreedyActivity;
    cfg.pattern = ArrivalPattern::Bursty;
    cfg.num_tasks = 6;
    cfg.burst_size = 2;
    cfg.period = 3e-3;
    cfg.kernel = KernelId::Sobel;
    cfg.size = InputSize::A;
    cfg.idle_model = IdleModel::Quiescent;
    for (auto _ : state) {
        const ScenarioResult r =
            shard == 0 ? runScenario(cfg)
                       : runScenarioSharded(cfg, shard);
        benchmark::DoNotOptimize(r.total_energy);
    }
}
BENCHMARK(BM_ScenarioSharded)->Arg(0)->Arg(1)->Arg(3)->Unit(
    benchmark::kMillisecond);

/**
 * Machine suspend/resume round-trips: one coupled sobel-A task pumped
 * with a forced suspension every N samples (0 = uninterrupted) —
 * measures the per-preemption cost of exiting and re-entering the
 * event loop (hook re-install, sample re-arm, loop warm-up).
 */
void
BM_PreemptResume(benchmark::State &state)
{
    const int every = static_cast<int>(state.range(0));
    const SprintConfig cfg = SprintConfig::parallelSprint(16, 0.15);
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::A, 42);
    for (auto _ : state) {
        std::unique_ptr<Machine> machine = prepareMachine(prog, cfg);
        MobilePackageModel package(cfg.package);
        package.reset();
        package.step(cfg.activation_ramp);
        GreedyActivityPolicy policy(cfg.governor);
        policy.beginTask(package);
        int samples = 0;
        const PumpObserver suspender =
            every == 0 ? PumpObserver()
                       : PumpObserver([&](Seconds, Celsius, Watts,
                                          double) {
                             return ++samples % every == 0;
                         });
        const RunResult r = samplePumpObserved(*machine, cfg, package,
                                               policy, suspender);
        benchmark::DoNotOptimize(r.task_time);
    }
}
BENCHMARK(BM_PreemptResume)->Arg(0)->Arg(8)->Arg(1)->Unit(
    benchmark::kMillisecond);

/**
 * Surrogate fidelity tier vs the cycle-accurate pump on a 512-task
 * back-to-back micro-program train (0 = CycleAccurate, 1 = Surrogate)
 * — measures the per-task cost of the analytic thermal advance plus
 * routing against the full prepare/pump path it replaces.
 */
void
BM_SurrogateTask(benchmark::State &state)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(2, 0.015);
    cfg.platform.machine.l1_bytes = 8 * 1024;
    cfg.platform.machine.l2.size_bytes = 64 * 1024;
    cfg.policy.kind = SprintPolicyKind::GreedyActivity;
    cfg.pattern = ArrivalPattern::BackToBack;
    cfg.num_tasks = 512;
    cfg.seed = 99;
    cfg.keep_task_results = false;
    cfg.trace_mode = TraceMode::Off;
    cfg.program_factory = [](const ScenarioTask &task) {
        ParallelProgram prog("micro");
        Phase phase;
        phase.name = "work";
        phase.kind = PhaseKind::ParallelStatic;
        phase.num_tasks = 2;
        const std::uint64_t seed = task.seed;
        phase.make_task = [seed](std::size_t t) {
            std::vector<MicroOp> ops;
            ops.reserve(1024);
            const std::uint64_t base =
                0x10000000ULL + (seed % 64) * 4096 + t * 8192;
            for (int i = 0; i < 1024; ++i) {
                if (i % 4 == 0)
                    ops.push_back(MicroOp::load(base + (i % 32) * 64));
                else
                    ops.push_back(MicroOp::intAlu());
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        prog.addPhase(std::move(phase));
        return prog;
    };
    if (state.range(0) == 1) {
        cfg.surrogate.tier = FidelityTier::Surrogate;
        cfg.surrogate.min_calibration = 8;
    }
    for (auto _ : state) {
        const ScenarioResult r = runScenario(cfg);
        benchmark::DoNotOptimize(r.total_energy);
    }
    state.SetItemsProcessed(state.iterations() * cfg.num_tasks);
}
BENCHMARK(BM_SurrogateTask)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

} // namespace
