/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrates:
 * thermal-network stepping, MNA circuit stepping, cache access,
 * memory model, and end-to-end machine throughput.
 */

#include <benchmark/benchmark.h>

#include "archsim/cache.hh"
#include "archsim/machine.hh"
#include "powergrid/pdn.hh"
#include "thermal/package.hh"
#include "workloads/sobel.hh"

namespace {

using namespace csprint;

void
BM_ThermalStep(benchmark::State &state)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.setDiePower(16.0);
    for (auto _ : state) {
        pkg.step(1e-3);
        benchmark::DoNotOptimize(pkg.junctionTemp());
    }
}
BENCHMARK(BM_ThermalStep);

void
BM_CircuitStep(benchmark::State &state)
{
    PdnParams params = PdnParams::paper16();
    params.num_cores = static_cast<int>(state.range(0));
    PowerDeliveryNetwork pdn(params, ActivationSchedule::abrupt(1e-6));
    pdn.circuit().beginTransient(1e-9);
    for (auto _ : state) {
        pdn.circuit().step();
        benchmark::DoNotOptimize(pdn.circuit().time());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CircuitStep)->Arg(4)->Arg(16);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(32 * 1024, 8, 64);
    std::uint64_t line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(line, false).hit);
        line = (line * 1103515245 + 12345) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_MachineSobel(benchmark::State &state)
{
    const int cores = static_cast<int>(state.range(0));
    SobelConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    for (auto _ : state) {
        const ParallelProgram prog = sobelProgram(cfg);
        MachineConfig mcfg;
        mcfg.num_cores = cores;
        mcfg.num_threads = cores;
        Machine m(mcfg, prog);
        m.run();
        benchmark::DoNotOptimize(m.stats().cycles);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_MachineSobel)->Arg(1)->Arg(16)->Unit(
    benchmark::kMillisecond);

} // namespace
