/**
 * @file
 * Figure 1 reproduction: power density and percent dark silicon per
 * process node under the ITRS, Borkar, and ITRS+Borkar-Vdd scaling
 * scenarios.
 */

#include <iostream>

#include "common/table.hh"
#include "scaling/darksilicon.hh"

using namespace csprint;

int
main()
{
    std::cout << "Figure 1: power density and dark-silicon trends\n"
              << "(fixed-area chip normalized to the 45 nm node)\n\n";

    const auto scenarios = {ScalingScenario::Itrs,
                            ScalingScenario::Borkar,
                            ScalingScenario::ItrsBorkarVdd};

    Table density("Figure 1(a): power density (relative to 45 nm)");
    std::vector<std::string> header = {"process (nm)"};
    for (auto s : scenarios)
        header.push_back(scalingScenarioName(s));
    density.setHeader(header);

    Table dark("Figure 1(b): percent dark silicon");
    dark.setHeader(header);

    const auto &nodes = figure1Nodes();
    std::vector<std::vector<NodeProjection>> proj;
    for (auto s : scenarios)
        proj.push_back(projectDarkSilicon(s));

    for (std::size_t i = 0; i < nodes.size(); ++i) {
        density.startRow();
        density.cell(static_cast<long long>(nodes[i]));
        for (const auto &p : proj)
            density.cell(p[i].power_density, 2);
        dark.startRow();
        dark.cell(static_cast<long long>(nodes[i]));
        for (const auto &p : proj)
            dark.cell(100.0 * p[i].dark_fraction, 1);
    }

    density.print(std::cout);
    std::cout << "\n";
    dark.print(std::cout);
    std::cout << "\npaper: power density rises ~2-16x by the 6-8 nm "
                 "nodes; dark silicon reaches ~80-90%+\n";
    return 0;
}
