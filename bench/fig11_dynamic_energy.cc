/**
 * @file
 * Figure 11 reproduction: total dynamic energy with varying core
 * counts, normalized to single-core execution, plus the Section 8.4
 * DVFS-energy comparison.
 */

#include <iostream>

#include "common/table.hh"
#include "energy/model.hh"
#include "sprint/experiment.hh"

using namespace csprint;

int
main()
{
    std::cout << "Figure 11: normalized dynamic energy vs core count "
                 "(largest input, fixed V/f)\n\n";

    Table t("dynamic energy normalized to 1-core execution");
    t.setHeader({"kernel", "1", "4", "16", "64"});

    double overhead16_sum = 0.0;
    int under_ten_pct = 0;
    for (KernelId id : allKernels()) {
        t.startRow();
        t.cell(kernelName(id));
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::D;
        // Fixed-V/f scaling study: ample thermal budget (Figure 11).
        spec.time_scale = 1e-2;
        const RunResult base = runBaselineExperiment(spec);
        for (int cores : {1, 4, 16, 64}) {
            spec.cores = cores;
            const double ratio = energyRatio(
                base, runParallelSprintExperiment(spec));
            t.cell(ratio, 2);
            if (cores == 16) {
                overhead16_sum += ratio - 1.0;
                if (ratio < 1.10)
                    ++under_ten_pct;
            }
        }
    }
    t.print(std::cout);

    std::cout << "\n16-core energy overhead: average "
              << Table::formatNumber(
                     100.0 * overhead16_sum / allKernels().size(), 1)
              << "% (paper: 12%), under 10% on " << under_ten_pct
              << "/6 kernels (paper: 5/6)\n";

    // Section 8.4: DVFS energy comparison at the 16x headroom.
    const double boost = dvfsBoostFromHeadroom(kPowerHeadroom);
    ExperimentSpec spec;
    spec.kernel = KernelId::Sobel;
    spec.size = InputSize::B;
    spec.time_scale = 1e-2;  // ample budget: measure the pure
                             // quadratic cost, not exhaustion
    const RunResult base = runBaselineExperiment(spec);
    const RunResult dvfs = runDvfsSprintExperiment(spec);
    std::cout << "\nSection 8.4: DVFS sprint energy (sobel, size B): "
              << Table::formatNumber(energyRatio(base, dvfs), 2)
              << "x sequential (paper: ~6x; analytic boost^2 = "
              << Table::formatNumber(dvfsEnergyFactor(boost), 2)
              << "x)\n";
    return 0;
}
