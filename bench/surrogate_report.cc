/**
 * @file
 * Machine-readable report for the calibrated surrogate fidelity tier,
 * written to BENCH_surrogate.json (schema documented in PERF.md,
 * "Surrogate fidelity tier").
 *
 * Two sections, both acceptance gates the tool enforces itself
 * (non-zero exit on failure):
 *
 *  1. fleet_train — the scale report's 1,000,000-task back-to-back
 *     micro-program train, run cycle-accurate and again under
 *     FidelityTier::Auto. The Auto run must reach >= 20x the exact
 *     engine's steady-state tasks/s while the aggregates it reports
 *     stay within the declared tolerances: p50/p95 response within
 *     15% relative, total energy within 10% relative, peak junction
 *     within 1 °C absolute — and the bulk of the train (>= 90%) must
 *     actually have run on the surrogate, not on audit/calibration
 *     pumps.
 *
 *  2. shard_parity — an Auto-tier train replayed as checkpointed
 *     shards (runScenarioSharded) must reproduce the unsharded run
 *     bit-for-bit, including a shard size smaller than the
 *     calibration threshold so the cut lands mid-calibration and the
 *     audit RNG cursor crosses a serialization boundary.
 *
 * The scenario seed rotates with CSPRINT_DIFF_SEED (as in the
 * differential harness), so CI accumulates coverage across runs while
 * any failure reproduces from the logged seed.
 *
 *   ./surrogate_report [--out BENCH_surrogate.json] [--tasks N]
 */

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "archsim/opstream.hh"
#include "common/args.hh"
#include "sprint/scenario.hh"
#include "workloads/workload.hh"

using namespace csprint;

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** CI-rotated scenario seed (CSPRINT_DIFF_SEED), logged below. */
std::uint64_t
diffSeed()
{
    std::uint64_t s = 20260730ULL;
    if (const char *env = std::getenv("CSPRINT_DIFF_SEED")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env)
            s = v;
    }
    return s;
}

/** Tiny per-task program, as in the scale report's gate 3 (~2k ops). */
ParallelProgram
microProgram(const ScenarioTask &task)
{
    ParallelProgram prog("micro");
    Phase phase;
    phase.name = "work";
    phase.kind = PhaseKind::ParallelStatic;
    phase.num_tasks = 2;
    const std::uint64_t seed = task.seed;
    phase.make_task = [seed](std::size_t t) {
        std::vector<MicroOp> ops;
        ops.reserve(1024);
        const std::uint64_t base =
            0x10000000ULL + (seed % 64) * 4096 + t * 8192;
        for (int i = 0; i < 1024; ++i) {
            if (i % 4 == 0)
                ops.push_back(MicroOp::load(base + (i % 32) * 64));
            else
                ops.push_back(MicroOp::intAlu());
        }
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    prog.addPhase(std::move(phase));
    return prog;
}

/** The scale report's fleet-train platform (gate 3), seed-rotated. */
ScenarioConfig
fleetTrainConfig(int tasks, std::uint64_t seed)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(2, 0.015);
    cfg.platform.machine.l1_bytes = 8 * 1024;
    cfg.platform.machine.l2.size_bytes = 64 * 1024;
    cfg.policy.kind = SprintPolicyKind::GreedyActivity;
    cfg.pattern = ArrivalPattern::BackToBack;
    cfg.num_tasks = tasks;
    cfg.seed = seed;
    cfg.program_factory = microProgram;
    cfg.trace_mode = TraceMode::DecimatedRing;
    cfg.trace_capacity = 4096;
    cfg.keep_task_results = false;
    cfg.idle_model = IdleModel::Quiescent;
    return cfg;
}

/** Timed begin/advance/finish split of one run. */
struct TimedRun
{
    ScenarioResult result;
    double setup_ms = 0.0;
    double steady_s = 0.0;
};

TimedRun
timedRun(const ScenarioConfig &cfg)
{
    TimedRun tr;
    const auto t0 = Clock::now();
    ScenarioCheckpoint ck = beginScenario(cfg);
    const auto t1 = Clock::now();
    while (!advanceScenario(
        cfg, ck, static_cast<std::uint64_t>(cfg.num_tasks))) {
    }
    const auto t2 = Clock::now();
    tr.result = finishScenario(cfg, std::move(ck));
    tr.setup_ms = elapsedMs(t0, t1);
    tr.steady_s = elapsedMs(t1, t2) / 1000.0;
    return tr;
}

double
relDev(double fast, double exact)
{
    return std::abs(fast - exact) / std::max(std::abs(exact), 1e-300);
}

/** Exact (bit-for-bit) equality, surrogate tallies included. */
bool
exactSameScenario(const ScenarioResult &a, const ScenarioResult &b,
                  std::string &why)
{
    auto fail = [&why](const char *what) {
        why = what;
        return false;
    };
    if (a.tasks_completed != b.tasks_completed)
        return fail("tasks_completed");
    if (a.surrogate_tasks != b.surrogate_tasks)
        return fail("surrogate_tasks");
    if (a.audit_tasks != b.audit_tasks)
        return fail("audit_tasks");
    if (a.surrogate_demotions != b.surrogate_demotions)
        return fail("surrogate_demotions");
    if (a.sprints_granted != b.sprints_granted)
        return fail("sprints_granted");
    if (a.sprints_denied != b.sprints_denied)
        return fail("sprints_denied");
    if (a.sprints_exhausted != b.sprints_exhausted)
        return fail("sprints_exhausted");
    if (a.hardware_throttles != b.hardware_throttles)
        return fail("hardware_throttles");
    if (a.makespan != b.makespan)
        return fail("makespan");
    if (a.utilization != b.utilization)
        return fail("utilization");
    if (a.p50_response != b.p50_response)
        return fail("p50_response");
    if (a.p95_response != b.p95_response)
        return fail("p95_response");
    if (a.peak_junction != b.peak_junction)
        return fail("peak_junction");
    if (a.total_energy != b.total_energy)
        return fail("total_energy");
    if (a.total_sprint_time != b.total_sprint_time)
        return fail("total_sprint_time");
    if (a.total_sprint_energy != b.total_sprint_energy)
        return fail("total_sprint_energy");
    if (a.peak_melt_fraction != b.peak_melt_fraction)
        return fail("peak_melt_fraction");
    if (a.sprint_rest_cycles != b.sprint_rest_cycles)
        return fail("sprint_rest_cycles");
    const TimeSeries *ta[] = {&a.junction_trace, &a.power_trace,
                              &a.melt_trace};
    const TimeSeries *tb[] = {&b.junction_trace, &b.power_trace,
                              &b.melt_trace};
    const char *names[] = {"junction_trace", "power_trace",
                           "melt_trace"};
    for (int k = 0; k < 3; ++k) {
        if (ta[k]->size() != tb[k]->size())
            return fail(names[k]);
        for (std::size_t i = 0; i < ta[k]->size(); ++i) {
            if (ta[k]->timeAt(i) != tb[k]->timeAt(i) ||
                ta[k]->valueAt(i) != tb[k]->valueAt(i))
                return fail(names[k]);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"out", "tasks"});
    const std::string out_path = args.get("out", "BENCH_surrogate.json");
    const int tasks = static_cast<int>(args.getDouble("tasks", 1000000));
    const std::uint64_t seed = diffSeed();
    std::cout << "surrogate report seed " << seed << " (rotates with "
              << "CSPRINT_DIFF_SEED)\n";

    // --- Gate 1: fleet-train speedup + bounded deviation. -----------
    const ScenarioConfig exact_cfg = fleetTrainConfig(tasks, seed);
    ScenarioConfig auto_cfg = exact_cfg;
    auto_cfg.surrogate.tier = FidelityTier::Auto;
    auto_cfg.surrogate.min_calibration = 32;
    auto_cfg.surrogate.audit_period = 128.0;
    auto_cfg.surrogate.tolerance = 0.75;
    auto_cfg.surrogate.profile_samples = 4;

    const TimedRun exact = timedRun(exact_cfg);
    const TimedRun fast = timedRun(auto_cfg);
    const double exact_tps =
        static_cast<double>(exact.result.tasks_completed) /
        exact.steady_s;
    const double fast_tps =
        static_cast<double>(fast.result.tasks_completed) /
        fast.steady_s;
    const double speedup = fast_tps / exact_tps;

    const double p50_dev =
        relDev(fast.result.p50_response, exact.result.p50_response);
    const double p95_dev =
        relDev(fast.result.p95_response, exact.result.p95_response);
    const double energy_dev =
        relDev(fast.result.total_energy, exact.result.total_energy);
    const double junction_dev = std::abs(fast.result.peak_junction -
                                         exact.result.peak_junction);
    const double surrogate_fraction =
        static_cast<double>(fast.result.surrogate_tasks) /
        static_cast<double>(fast.result.tasks_completed);

    const double speedup_budget = 20.0;
    const double quantile_budget = 0.15;
    const double energy_budget = 0.10;
    const double junction_budget = 1.0;
    const double fraction_budget = 0.90;
    const bool speedup_ok = speedup >= speedup_budget;
    const bool deviation_ok = p50_dev <= quantile_budget &&
                              p95_dev <= quantile_budget &&
                              energy_dev <= energy_budget &&
                              junction_dev <= junction_budget;
    const bool coverage_ok = surrogate_fraction >= fraction_budget;
    const bool train_ok =
        speedup_ok && deviation_ok && coverage_ok &&
        fast.result.tasks_completed ==
            static_cast<std::uint64_t>(tasks);

    std::cout << "fleet train (" << tasks << " tasks): exact "
              << exact.steady_s << " s (" << exact_tps
              << " tasks/s), auto " << fast.steady_s << " s ("
              << fast_tps << " tasks/s), speedup " << speedup << "x"
              << (speedup_ok ? "" : "  FAIL (< 20x)") << "\n";
    std::cout << "  deviation: p50 " << p50_dev * 100.0 << "%, p95 "
              << p95_dev * 100.0 << "%, energy " << energy_dev * 100.0
              << "%, peak junction " << junction_dev << " C"
              << (deviation_ok ? "" : "  FAIL (over budget)") << "\n";
    std::cout << "  routing: " << fast.result.surrogate_tasks
              << " surrogate, " << fast.result.audit_tasks
              << " audits, " << fast.result.surrogate_demotions
              << " demotions (" << surrogate_fraction * 100.0
              << "% surrogate)"
              << (coverage_ok ? "" : "  FAIL (< 90%)") << "\n";

    // --- Gate 2: Auto-tier sharded replay, bit for bit. -------------
    // Shard size 5 < min_calibration cuts mid-calibration; 333 cuts
    // the calibrated/audit regime at awkward offsets.
    ScenarioConfig pcfg = fleetTrainConfig(4096, seed ^ 0x51a9d5ULL);
    pcfg.surrogate.tier = FidelityTier::Auto;
    pcfg.surrogate.min_calibration = 32;
    pcfg.surrogate.audit_period = 16.0;
    pcfg.surrogate.tolerance = 0.75;

    bool parity_ok = true;
    std::string parity_why;
    const ScenarioResult unsharded = runScenario(pcfg);
    for (std::uint64_t shard : {5, 333}) {
        const ScenarioResult sharded = runScenarioSharded(pcfg, shard);
        std::string why;
        if (!exactSameScenario(unsharded, sharded, why)) {
            parity_ok = false;
            parity_why =
                "shard " + std::to_string(shard) + ": " + why;
            std::cerr << "surrogate shard parity MISMATCH ("
                      << parity_why << ")\n";
        }
    }
    std::cout << "shard parity (auto tier, 4096 tasks, shards 5/333): "
              << (parity_ok ? "exact" : "MISMATCH") << " ("
              << unsharded.surrogate_tasks << " surrogate, "
              << unsharded.audit_tasks << " audits)\n";

    // --- Emit the report. -------------------------------------------
    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "FAIL: cannot open " << out_path
                  << " for writing\n";
        return 1;
    }
    out.precision(6);
    out << "{\n"
        << "  \"schema\": \"csprint-surrogate-bench-v1\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"fleet_train\": {\n"
        << "    \"config\": \"greedy, 2-core micro-programs, "
           "back-to-back; auto tier K=32, audit 1/128, tol 0.75\",\n"
        << "    \"tasks\": " << fast.result.tasks_completed << ",\n"
        << "    \"exact_steady_s\": " << exact.steady_s << ",\n"
        << "    \"exact_tasks_per_sec\": " << exact_tps << ",\n"
        << "    \"auto_steady_s\": " << fast.steady_s << ",\n"
        << "    \"auto_tasks_per_sec\": " << fast_tps << ",\n"
        << "    \"speedup\": " << speedup << ",\n"
        << "    \"budget_speedup\": " << speedup_budget << ",\n"
        << "    \"p50_rel_dev\": " << p50_dev << ",\n"
        << "    \"p95_rel_dev\": " << p95_dev << ",\n"
        << "    \"energy_rel_dev\": " << energy_dev << ",\n"
        << "    \"peak_junction_dev_c\": " << junction_dev << ",\n"
        << "    \"budget_quantile_rel\": " << quantile_budget << ",\n"
        << "    \"budget_energy_rel\": " << energy_budget << ",\n"
        << "    \"budget_junction_c\": " << junction_budget << ",\n"
        << "    \"surrogate_tasks\": " << fast.result.surrogate_tasks
        << ",\n"
        << "    \"audit_tasks\": " << fast.result.audit_tasks << ",\n"
        << "    \"demotions\": " << fast.result.surrogate_demotions
        << ",\n"
        << "    \"surrogate_fraction\": " << surrogate_fraction << ",\n"
        << "    \"budget_surrogate_fraction\": " << fraction_budget
        << ",\n"
        << "    \"pass\": " << (train_ok ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"shard_parity\": {\n"
        << "    \"config\": \"auto tier, 4096 tasks, audit 1/16, "
           "shards of 5 (mid-calibration) and 333\",\n"
        << "    \"surrogate_tasks\": " << unsharded.surrogate_tasks
        << ",\n"
        << "    \"audit_tasks\": " << unsharded.audit_tasks << ",\n"
        << "    \"exact\": " << (parity_ok ? "true" : "false");
    if (!parity_ok)
        out << ",\n    \"first_mismatch\": \"" << parity_why << "\"";
    out << "\n  }\n"
        << "}\n";
    std::cout << "wrote " << out_path << "\n";

    if (!train_ok) {
        std::cerr << "FAIL: fleet-train gate (speedup/deviation/"
                     "coverage) not met\n";
        return 1;
    }
    if (!parity_ok) {
        std::cerr << "FAIL: auto-tier sharded replay diverged\n";
        return 1;
    }
    return 0;
}
