/**
 * @file
 * Machine-readable report for the preemption subsystem, written to
 * BENCH_preempt.json (schema documented in PERF.md, "Preemption &
 * differential testing").
 *
 * Three gates the tool enforces itself (non-zero exit on failure),
 * then a sweep:
 *
 *  1. suspend_resume_parity — a fig07-style coupled task driven
 *     through pumpTaskSlice with forced suspensions every k samples
 *     must reproduce the uninterrupted samplePump run *bit-for-bit*:
 *     every machine stat, every scalar, every trace sample.
 *
 *  2. no_preempt_parity — the preemptive engine with a policy that
 *     never fires (QoS with no deadlines) must be bit-identical to
 *     the classic queueing engine (greedy) on the same mixed-size
 *     bursty timeline: mid-task arrival delivery alone must not
 *     perturb the physics.
 *
 *  3. p95_gate — on the deadline-heavy bursty train (bursts led by a
 *     heavy low-priority job trailed by short high-priority tasks
 *     with tight deadlines), the QoS and model-predictive policies
 *     must strictly beat the no-preempt baseline's p95 response and
 *     actually preempt.
 *
 *   ./preemption_report [--out BENCH_preempt.json] [--tasks N]
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/logging.hh"
#include "sprint/experiment.hh"
#include "sprint/scenario.hh"
#include "workloads/workload.hh"

using namespace csprint;

namespace {

/** Exact (bit-for-bit) equality of two coupled-run results. */
bool
exactSameRun(const RunResult &a, const RunResult &b, std::string &why)
{
    auto fail = [&why](const char *what) {
        why = what;
        return false;
    };
    if (a.machine.cycles != b.machine.cycles)
        return fail("machine.cycles");
    if (a.machine.ops_retired != b.machine.ops_retired)
        return fail("machine.ops_retired");
    if (a.machine.ops_by_kind != b.machine.ops_by_kind)
        return fail("machine.ops_by_kind");
    if (a.machine.idle_cycles != b.machine.idle_cycles)
        return fail("machine.idle_cycles");
    if (a.machine.l1_hits != b.machine.l1_hits)
        return fail("machine.l1_hits");
    if (a.machine.l1_misses != b.machine.l1_misses)
        return fail("machine.l1_misses");
    if (a.machine.dynamic_energy != b.machine.dynamic_energy)
        return fail("machine.dynamic_energy");
    if (a.task_time != b.task_time)
        return fail("task_time");
    if (a.dynamic_energy != b.dynamic_energy)
        return fail("dynamic_energy");
    if (a.peak_junction != b.peak_junction)
        return fail("peak_junction");
    if (a.final_melt_fraction != b.final_melt_fraction)
        return fail("final_melt_fraction");
    if (a.sprint_duration != b.sprint_duration)
        return fail("sprint_duration");
    if (a.sprint_energy != b.sprint_energy)
        return fail("sprint_energy");
    if (a.cooldown_estimate != b.cooldown_estimate)
        return fail("cooldown_estimate");
    const TimeSeries *ta[] = {&a.junction_trace, &a.power_trace,
                              &a.melt_trace};
    const TimeSeries *tb[] = {&b.junction_trace, &b.power_trace,
                              &b.melt_trace};
    const char *names[] = {"junction_trace", "power_trace",
                           "melt_trace"};
    for (int k = 0; k < 3; ++k) {
        if (ta[k]->size() != tb[k]->size())
            return fail(names[k]);
        for (std::size_t i = 0; i < ta[k]->size(); ++i) {
            if (ta[k]->timeAt(i) != tb[k]->timeAt(i) ||
                ta[k]->valueAt(i) != tb[k]->valueAt(i))
                return fail(names[k]);
        }
    }
    return true;
}

/** One pump run, optionally suspended/resumed every k samples. */
RunResult
pumpOnce(int suspend_every)
{
    const SprintConfig cfg = SprintConfig::parallelSprint(16, kFullPcm);
    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::B, 42);
    std::unique_ptr<Machine> machine = prepareMachine(prog, cfg);
    MobilePackageModel package(cfg.package);
    package.reset();
    package.step(cfg.activation_ramp);
    GreedyActivityPolicy policy(cfg.governor);
    policy.beginTask(package);
    if (suspend_every <= 0)
        return samplePump(*machine, cfg, package, policy);
    int samples = 0;
    return samplePumpObserved(*machine, cfg, package, policy,
                              [&](Seconds, Celsius, Watts, double) {
                                  return ++samples % suspend_every ==
                                         0;
                              });
}

/**
 * The deadline-heavy train: each burst opens with one heavy
 * low-priority job; short high-priority tasks trail it inside the
 * burst and arrive while it runs.
 */
ScenarioConfig
deadlineTrain(SprintPolicyKind kind, ArrivalPattern pattern, int tasks,
              Seconds deadline)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(16, kFullPcm);
    cfg.policy.kind = kind;
    cfg.policy.qos_slack = 1.5;
    cfg.policy.service_prior = 5e-4;
    cfg.pattern = pattern;
    cfg.num_tasks = tasks;
    cfg.kernel = KernelId::Sobel;
    cfg.seed = 42;
    if (pattern == ArrivalPattern::Bursty) {
        cfg.burst_size = 10;
        cfg.period = 4e-3;
        cfg.burst_spacing = 5e-5;
        // Two heavy jobs across the train (5% of 40 tasks): bursts 0
        // and 2 open with one. Everything else is a short
        // high-priority task with the sweep's deadline.
        cfg.task_tuner = [seed = cfg.seed, deadline](ScenarioTask &t) {
            const std::uint64_t index = t.seed - seed;
            if (index % 20 == 0) {
                t.priority = 0;
                t.size = InputSize::C;
                t.deadline = 0.0;
            } else {
                t.priority = 1;
                t.size = InputSize::A;
                t.deadline = deadline;
            }
        };
    } else {
        // Poisson: classes drawn by the per-task hash; heavies are
        // the low-priority minority.
        cfg.period = 3e-4;
        cfg.hi_priority_fraction = 0.8;
        cfg.deadline_hi = deadline;
        cfg.task_tuner = [](ScenarioTask &t) {
            t.size = t.priority > 0 ? InputSize::A : InputSize::C;
        };
    }
    return cfg;
}

void
emitRow(std::ostream &out, const char *policy, const char *pattern,
        const char *tightness, const ScenarioResult &s, bool last)
{
    out << "    {\"policy\": \"" << policy << "\", \"pattern\": \""
        << pattern << "\", \"deadlines\": \"" << tightness << "\",\n"
        << "     \"tasks\": " << s.tasks_completed
        << ", \"preemptions\": " << s.preemptions
        << ", \"dropped\": " << s.tasks_dropped
        << ", \"deadlines_met\": " << s.deadlines_met
        << ", \"deadlines_missed\": " << s.deadlines_missed << ",\n"
        << "     \"p50_response_s\": " << s.p50_response
        << ", \"p95_response_s\": " << s.p95_response
        << ", \"makespan_s\": " << s.makespan
        << ", \"utilization\": " << s.utilization << ",\n"
        << "     \"sprints_granted\": " << s.sprints_granted
        << ", \"sprints_exhausted\": " << s.sprints_exhausted
        << ", \"hardware_throttles\": " << s.hardware_throttles
        << ", \"peak_junction_c\": " << s.peak_junction
        << ", \"total_energy_j\": " << s.total_energy << "}"
        << (last ? "" : ",") << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"out", "tasks"});
    const std::string out_path = args.get("out", "BENCH_preempt.json");
    const int tasks = static_cast<int>(args.getDouble("tasks", 40));

    // --- Gate 1: suspend/resume is bit-identical to uninterrupted.
    const RunResult whole = pumpOnce(0);
    bool parity_ok = true;
    std::string parity_why;
    for (int every : {5, 16, 63}) {
        const RunResult sliced = pumpOnce(every);
        std::string why;
        if (!exactSameRun(sliced, whole, why)) {
            parity_ok = false;
            parity_why = "suspend every " + std::to_string(every) +
                         " samples: " + why;
            std::cerr << "suspend/resume MISMATCH: " << parity_why
                      << "\n";
        }
    }
    std::cout << "suspend/resume parity: "
              << (parity_ok ? "exact" : "MISMATCH") << "\n";

    // --- Gate 2: mid-task delivery with no preemption fired changes
    // nothing: QoS on a uniform-priority, deadline-free version of
    // the train (its onArrival always queues, its pickNext degrades
    // to FIFO) == the classic greedy engine on the same timeline.
    ScenarioConfig quiet = deadlineTrain(
        SprintPolicyKind::Qos, ArrivalPattern::Bursty, tasks, 0.0);
    quiet.task_tuner = [seed = quiet.seed](ScenarioTask &t) {
        // Same size mix as the train, but one priority class and no
        // deadlines, so the QoS policy never reorders or preempts.
        t.size = (t.seed - seed) % 20 == 0 ? InputSize::C
                                           : InputSize::A;
    };
    ScenarioConfig classic = quiet;
    classic.policy.kind = SprintPolicyKind::GreedyActivity;
    const ScenarioResult rq = runScenario(quiet);
    const ScenarioResult rc = runScenario(classic);
    bool engine_ok = rq.preemptions == 0 &&
                     rq.makespan == rc.makespan &&
                     rq.total_energy == rc.total_energy &&
                     rq.peak_junction == rc.peak_junction &&
                     rq.p95_response == rc.p95_response &&
                     rq.junction_trace.size() == rc.junction_trace.size();
    for (std::size_t i = 0;
         engine_ok && i < rq.junction_trace.size(); ++i) {
        engine_ok = rq.junction_trace.timeAt(i) ==
                        rc.junction_trace.timeAt(i) &&
                    rq.junction_trace.valueAt(i) ==
                        rc.junction_trace.valueAt(i);
    }
    std::cout << "no-preempt engine parity: "
              << (engine_ok ? "exact" : "MISMATCH") << "\n";

    // --- Sweep: policy x pattern x deadline tightness.
    const Seconds tight = 4e-4;
    const Seconds loose = 4e-3;
    struct Row
    {
        SprintPolicyKind kind;
        const char *policy;
        ArrivalPattern pattern;
        const char *pattern_name;
        Seconds deadline;
        const char *tightness;
        ScenarioResult result;
    };
    const std::pair<SprintPolicyKind, const char *> policies[] = {
        {SprintPolicyKind::GreedyActivity, "no-preempt"},
        {SprintPolicyKind::Qos, "qos"},
        {SprintPolicyKind::ModelPredictive, "model-predictive"},
    };
    const std::pair<ArrivalPattern, const char *> patterns[] = {
        {ArrivalPattern::Bursty, "bursty"},
        {ArrivalPattern::Poisson, "poisson"},
    };
    const std::pair<Seconds, const char *> tightnesses[] = {
        {tight, "tight"},
        {loose, "loose"},
    };
    std::vector<Row> rows;
    for (const auto &[kind, pname] : policies) {
        for (const auto &[pattern, patname] : patterns) {
            for (const auto &[deadline, tname] : tightnesses) {
                Row row{kind,     pname, pattern, patname,
                        deadline, tname, {}};
                row.result = runScenario(
                    deadlineTrain(kind, pattern, tasks, deadline));
                rows.push_back(std::move(row));
            }
        }
    }

    auto find = [&rows](const char *policy, const char *pattern,
                        const char *tightness) -> const ScenarioResult & {
        for (const Row &row : rows) {
            if (std::string(row.policy) == policy &&
                std::string(row.pattern_name) == pattern &&
                std::string(row.tightness) == tightness)
                return row.result;
        }
        SPRINT_PANIC("sweep row missing");
    };

    // --- Gate 3: preemption strictly improves p95 on the
    // deadline-heavy bursty train.
    const ScenarioResult &base = find("no-preempt", "bursty", "tight");
    const ScenarioResult &qos = find("qos", "bursty", "tight");
    const ScenarioResult &mpc =
        find("model-predictive", "bursty", "tight");
    const bool p95_ok = qos.p95_response < base.p95_response &&
                        mpc.p95_response < base.p95_response &&
                        qos.preemptions > 0 && mpc.preemptions > 0;
    std::cout << "p95 (bursty, tight): no-preempt " << base.p95_response
              << " s, qos " << qos.p95_response << " s ("
              << qos.preemptions << " preemptions), model-predictive "
              << mpc.p95_response << " s (" << mpc.preemptions
              << " preemptions): "
              << (p95_ok ? "improved" : "NOT IMPROVED") << "\n";
    std::cout << "deadlines met (of " << base.deadlines_met +
                     base.deadlines_missed
              << "): no-preempt " << base.deadlines_met << ", qos "
              << qos.deadlines_met << ", model-predictive "
              << mpc.deadlines_met << "\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "FAIL: cannot open " << out_path
                  << " for writing\n";
        return 1;
    }
    out.precision(6);
    out << "{\n"
        << "  \"schema\": \"csprint-preempt-bench-v1\",\n"
        << "  \"units\": {\"time\": \"time-scaled seconds (scale 7e-4, "
           "see EXPERIMENTS.md)\"},\n"
        << "  \"suspend_resume_parity\": {\n"
        << "    \"runs\": \"fig07-style sobel-B 16-core coupled task; "
           "forced suspend/resume every 5/16/63 samples vs "
           "uninterrupted\",\n"
        << "    \"exact\": " << (parity_ok ? "true" : "false");
    if (!parity_ok)
        out << ",\n    \"first_mismatch\": \"" << parity_why << "\"";
    out << "\n  },\n"
        << "  \"no_preempt_engine_parity\": {\n"
        << "    \"runs\": \"qos with no deadlines (mid-task delivery, "
           "zero preemptions) vs classic greedy engine on the bursty "
           "train\",\n"
        << "    \"exact\": " << (engine_ok ? "true" : "false")
        << "\n  },\n"
        << "  \"p95_gate\": {\n"
        << "    \"config\": \"bursty deadline-heavy train, " << tasks
        << " tasks, bursts of 10 led by a heavy low-priority job, "
           "tight deadlines\",\n"
        << "    \"no_preempt_p95_s\": " << base.p95_response << ",\n"
        << "    \"qos_p95_s\": " << qos.p95_response << ",\n"
        << "    \"model_predictive_p95_s\": " << mpc.p95_response
        << ",\n"
        << "    \"improved\": " << (p95_ok ? "true" : "false")
        << "\n  },\n"
        << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        emitRow(out, rows[i].policy, rows[i].pattern_name,
                rows[i].tightness, rows[i].result,
                i + 1 == rows.size());
    }
    out << "  ]\n"
        << "}\n";
    std::cout << "sweep: " << rows.size() << " scenarios; wrote "
              << out_path << "\n";

    if (!parity_ok) {
        std::cerr << "FAIL: suspend/resume diverged from the "
                     "uninterrupted run\n";
        return 1;
    }
    if (!engine_ok) {
        std::cerr << "FAIL: preemptive engine diverged from the "
                     "classic engine with no preemptions fired\n";
        return 1;
    }
    if (!p95_ok) {
        std::cerr << "FAIL: preemption did not improve p95 response "
                     "on the deadline-heavy bursty train\n";
        return 1;
    }
    return 0;
}
