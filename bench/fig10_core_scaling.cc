/**
 * @file
 * Figure 10 reproduction: parallel speedup with 1, 4, 16, and 64
 * sprinting cores at fixed voltage and frequency (largest input),
 * plus the doubled-memory-bandwidth series the paper quotes for the
 * bandwidth-limited kernels.
 */

#include <iostream>

#include "common/table.hh"
#include "sprint/experiment.hh"

using namespace csprint;

int
main()
{
    std::cout << "Figure 10: parallel speedup vs core count "
                 "(largest input, fixed V/f)\n\n";

    Table t("normalized speedup over 1-core baseline");
    t.setHeader({"kernel", "1", "4", "16", "64", "64 (2x BW)"});

    for (KernelId id : allKernels()) {
        t.startRow();
        t.cell(kernelName(id));
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::D;
        // Fixed-V/f scaling study: ample thermal budget so sprint
        // exhaustion does not confound the sweep (paper Figure 10).
        spec.time_scale = 1e-2;
        const RunResult base = runBaselineExperiment(spec);
        for (int cores : {1, 4, 16, 64}) {
            spec.cores = cores;
            const double s = speedupOver(
                base, runParallelSprintExperiment(spec));
            t.cell(s, 2);
        }
        // Doubled per-channel bandwidth at 64 cores.
        ExperimentSpec bw = spec;
        bw.cores = 64;
        bw.bandwidth_mult = 2.0;
        const RunResult base2 = runBaselineExperiment(bw);
        t.cell(speedupOver(base2, runParallelSprintExperiment(bw)), 2);
    }
    t.print(std::cout);
    std::cout << "\npaper: kmeans and sobel keep scaling to 64 cores; "
                 "segment and texture are\nparallelism-limited; "
                 "feature and disparity are bandwidth-limited and "
                 "reach ~12x at\n64 cores when per-channel bandwidth "
                 "is doubled.\nnote: our scaled inputs fit the 4 MB "
                 "LLC, so disparity keeps (super)linear scaling\n"
                 "(aggregate-L1 reuse); feature, whose strided passes "
                 "defeat the caches, reproduces\nthe bandwidth-limited "
                 "flattening and the 2x-bandwidth recovery. See "
                 "EXPERIMENTS.md.\n";
    return 0;
}
