/**
 * @file
 * Ablation: LLC scaling and the bandwidth wall (companion to the
 * Figure 10 deviation note in EXPERIMENTS.md). The paper's megapixel
 * frames dwarf the 4 MB LLC, so disparity streams from DRAM and hits
 * the bandwidth wall at 64 cores. Our scaled frames fit the LLC;
 * scaling the LLC capacity by the same factor as the inputs restores
 * the paper's working-set : cache ratio and recovers the
 * bandwidth-limited shape (and its 2x-bandwidth remedy).
 *
 * All 18 coupled runs (3 kernels x 3 configurations x
 * baseline/sprint) execute as one ExperimentRunner batch.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "sprint/runner.hh"

using namespace csprint;

int
main()
{
    std::cout << "Ablation: 64-core speedup with the LLC scaled to "
                 "match the input scaling\n(1/16 of 4 MB = 256 KB; "
                 "largest input, fixed V/f, ample thermal budget)\n\n";

    const std::vector<KernelId> kernels = {
        KernelId::Disparity, KernelId::Feature, KernelId::Sobel};

    // Batch layout per kernel: [paper-LLC base, paper-LLC sprint,
    // scaled-LLC base, scaled-LLC sprint, remedy base, remedy sprint].
    std::vector<ExperimentRun> batch;
    for (KernelId id : kernels) {
        ExperimentSpec spec;
        spec.kernel = id;
        spec.size = InputSize::D;
        spec.cores = 64;
        spec.time_scale = 1e-2;

        ExperimentSpec scaled = spec;
        scaled.l2_scale = 1.0 / 16.0;

        ExperimentSpec remedy = scaled;
        remedy.bandwidth_mult = 2.0;

        batch.push_back({ExperimentMode::Baseline, spec});
        batch.push_back({ExperimentMode::ParallelSprint, spec});
        batch.push_back({ExperimentMode::Baseline, scaled});
        batch.push_back({ExperimentMode::ParallelSprint, scaled});
        batch.push_back({ExperimentMode::Baseline, remedy});
        batch.push_back({ExperimentMode::ParallelSprint, remedy});
    }

    ExperimentRunner runner;
    const std::vector<RunResult> results = runner.runBatch(batch);

    Table t("normalized speedup over the same-LLC 1-core baseline");
    t.setHeader({"kernel", "paper LLC (4MB)", "scaled LLC",
                 "scaled LLC + 2x BW"});

    std::size_t row = 0;
    for (KernelId id : kernels) {
        const double paper_llc =
            speedupOver(results[row], results[row + 1]);
        const double small_llc =
            speedupOver(results[row + 2], results[row + 3]);
        const double with_bw =
            speedupOver(results[row + 4], results[row + 5]);
        row += 6;

        t.startRow();
        t.cell(kernelName(id));
        t.cell(paper_llc, 2);
        t.cell(small_llc, 2);
        t.cell(with_bw, 2);
    }
    t.print(std::cout);

    std::cout << "\npaper Figure 10: feature and disparity flatten at "
                 "64 cores (bandwidth-limited)\nand reach ~12x when "
                 "per-channel bandwidth doubles; with the LLC scaled "
                 "to the\ninputs, the reproduction shows the same "
                 "character.\n";
    return 0;
}
