/**
 * @file
 * Ablation (paper Section 4.1 vs 4.2): heat storage in solid metal
 * versus phase-change material. Prints the paper's worked examples
 * (slab thickness for 16 J / 10 C), cold-start sprint durations, and
 * the two PCM advantages: retained headroom after sustained
 * operation, and the constant-temperature latent plateau.
 *
 * The three storage designs evaluate concurrently on an
 * ExperimentRunner (each job owns its package models).
 */

#include <functional>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "sprint/runner.hh"
#include "thermal/metal.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"

using namespace csprint;

namespace {

/** Per-design numbers for the cold/hot comparison table. */
struct DesignOutcome
{
    Joules budget_cold = 0.0;
    Seconds time_to_limit = 0.0;
    Seconds plateau = 0.0;
    Joules budget_hot = 0.0;
};

DesignOutcome
evaluateDesign(const MobilePackageParams &params)
{
    DesignOutcome out;

    MobilePackageModel cold_model(params);
    out.budget_cold = cold_model.sprintEnergyBudget();
    const auto tr = runSprintTransient(cold_model, 16.0, 30.0, 5e-3);
    out.time_to_limit = tr.time_to_limit;
    out.plateau = tr.plateau_duration;

    MobilePackageModel hot_model(params);
    hot_model.setDiePower(1.0);
    for (int i = 0; i < 4000; ++i)
        hot_model.step(1.0);
    out.budget_hot = hot_model.sprintEnergyBudget();
    return out;
}

} // namespace

int
main()
{
    std::cout << "Ablation: solid-metal vs phase-change heat storage "
                 "(16 W sprint on a 1 W TDP package)\n\n";

    Table sizing("Section 4.1 sizing: absorb 16 J with a 10 C rise "
                 "over a 64 mm^2 die");
    sizing.setHeader({"material", "J/(cm^3 K)", "thickness (mm)"});
    for (const MetalProperties &m :
         {MetalProperties::copper(), MetalProperties::aluminum()}) {
        sizing.startRow();
        sizing.cell(m.name);
        sizing.cell(m.volumetric_heat_capacity, 2);
        sizing.cell(metalThicknessFor(m, 64.0, 16.0, 10.0) * 1e3, 1);
    }
    sizing.print(std::cout);
    std::cout << "paper: 7.2 mm copper or 10.3 mm aluminum\n\n";

    // Cold-start sprints and post-sustained headroom.
    struct Design
    {
        const char *label;
        MobilePackageParams params;
    };
    const std::vector<Design> designs = {
        {"PCM 150 mg", MobilePackageParams::phonePcm()},
        {"copper slug 7.2 mm", metalSlugPackage(MetalSlugSpec{})},
        {"no storage", MobilePackageParams::phoneNoPcm()},
    };

    std::vector<std::function<DesignOutcome()>> jobs;
    for (const Design &d : designs)
        jobs.emplace_back([&d] { return evaluateDesign(d.params); });

    ExperimentRunner runner;
    const std::vector<DesignOutcome> outcomes = runner.map(jobs);

    Table t("cold start vs pre-heated (after 1 W sustained operation)");
    t.setHeader({"design", "budget cold (J)", "sprint cold (s)",
                 "plateau (s)", "budget hot (J)", "hot/cold"});
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const DesignOutcome &o = outcomes[i];
        t.startRow();
        t.cell(designs[i].label);
        t.cell(o.budget_cold, 1);
        t.cell(o.time_to_limit, 2);
        t.cell(o.plateau, 2);
        t.cell(o.budget_hot, 1);
        t.cell(o.budget_cold > 0.0 ? o.budget_hot / o.budget_cold : 0.0,
               2);
    }
    t.print(std::cout);

    std::cout << "\npaper: the metal slug's headroom erodes once the "
                 "system has been running at TDP\n(the slab is "
                 "pre-heated), while the PCM's latent budget survives "
                 "as long as the\nsustained load stays below the melt "
                 "point - the paper's case for phase change.\n";
    return 0;
}
