/**
 * @file
 * Ablation (paper Section 4.1 vs 4.2): heat storage in solid metal
 * versus phase-change material. Prints the paper's worked examples
 * (slab thickness for 16 J / 10 C), cold-start sprint durations, and
 * the two PCM advantages: retained headroom after sustained
 * operation, and the constant-temperature latent plateau.
 */

#include <iostream>

#include "common/table.hh"
#include "thermal/metal.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"

using namespace csprint;

int
main()
{
    std::cout << "Ablation: solid-metal vs phase-change heat storage "
                 "(16 W sprint on a 1 W TDP package)\n\n";

    Table sizing("Section 4.1 sizing: absorb 16 J with a 10 C rise "
                 "over a 64 mm^2 die");
    sizing.setHeader({"material", "J/(cm^3 K)", "thickness (mm)"});
    for (const MetalProperties &m :
         {MetalProperties::copper(), MetalProperties::aluminum()}) {
        sizing.startRow();
        sizing.cell(m.name);
        sizing.cell(m.volumetric_heat_capacity, 2);
        sizing.cell(metalThicknessFor(m, 64.0, 16.0, 10.0) * 1e3, 1);
    }
    sizing.print(std::cout);
    std::cout << "paper: 7.2 mm copper or 10.3 mm aluminum\n\n";

    // Cold-start sprints and post-sustained headroom.
    struct Design
    {
        const char *label;
        MobilePackageParams params;
    };
    const Design designs[] = {
        {"PCM 150 mg", MobilePackageParams::phonePcm()},
        {"copper slug 7.2 mm", metalSlugPackage(MetalSlugSpec{})},
        {"no storage", MobilePackageParams::phoneNoPcm()},
    };

    Table t("cold start vs pre-heated (after 1 W sustained operation)");
    t.setHeader({"design", "budget cold (J)", "sprint cold (s)",
                 "plateau (s)", "budget hot (J)", "hot/cold"});
    for (const Design &d : designs) {
        MobilePackageModel cold_model(d.params);
        const Joules budget_cold = cold_model.sprintEnergyBudget();
        const auto tr = runSprintTransient(cold_model, 16.0, 30.0, 5e-3);

        MobilePackageModel hot_model(d.params);
        hot_model.setDiePower(1.0);
        for (int i = 0; i < 4000; ++i)
            hot_model.step(1.0);
        const Joules budget_hot = hot_model.sprintEnergyBudget();

        t.startRow();
        t.cell(d.label);
        t.cell(budget_cold, 1);
        t.cell(tr.time_to_limit, 2);
        t.cell(tr.plateau_duration, 2);
        t.cell(budget_hot, 1);
        t.cell(budget_cold > 0.0 ? budget_hot / budget_cold : 0.0, 2);
    }
    t.print(std::cout);

    std::cout << "\npaper: the metal slug's headroom erodes once the "
                 "system has been running at TDP\n(the slab is "
                 "pre-heated), while the PCM's latent budget survives "
                 "as long as the\nsustained load stays below the melt "
                 "point - the paper's case for phase change.\n";
    return 0;
}
