/**
 * @file
 * Machine-readable before/after report for the thermal hot path,
 * written to BENCH_thermal.json (schema documented in PERF.md).
 *
 * "Before" is the retained first-order reference integrator
 * (ThermalIntegrator::ReferenceEuler) — the seed's integration scheme
 * running on the optimized CSR kernel; the seed's original
 * implementation additionally heap-allocated per substep and
 * recomputed the stability bound per step, and is recorded under
 * seed_baseline when a measurement is supplied. "After" is the Heun
 * hot path. Every speedup is reported together with the maximum
 * junction-temperature deviation between the two integrators over a
 * full melt/freeze transient, so the acceptance criterion (>= 5x at
 * equal traces within 0.1 C) is checked by the tool itself.
 *
 *   ./thermal_report [--out BENCH_thermal.json]
 *                    [--seed-thermal-step-ns N]
 */

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "sprint/runner.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"
#include "thermal/validation.hh"

using namespace csprint;

namespace {

/** Nanoseconds per call of @p fn, after a warmup pass. */
template <typename F>
double
nsPerCall(F fn, int iters)
{
    for (int i = 0; i < iters / 10 + 1; ++i)
        fn();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           iters;
}

/** ns per step(1e-3) on the phonePcm package at 16 W sprint power. */
double
timePackageStep(ThermalIntegrator scheme, int iters)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    pkg.network().setIntegrator(scheme);
    pkg.setDiePower(16.0);
    volatile double sink = 0.0;
    const double ns = nsPerCall(
        [&] {
            pkg.step(1e-3);
            sink = pkg.junctionTemp();
        },
        iters);
    (void)sink;
    return ns;
}

/** ns per step(1e-3) on a ladder of PCM nodes on the latent plateau. */
double
timePcmHeavyStep(ThermalIntegrator scheme, int nodes, int iters)
{
    ThermalNetwork net(25.0);
    buildPcmLadder(net, nodes);
    net.setIntegrator(scheme);
    volatile double sink = 0.0;
    const double ns = nsPerCall(
        [&] {
            net.step(1e-3);
            sink = net.temperature(0);
        },
        iters);
    (void)sink;
    return ns;
}


/**
 * Seconds to run a batch of sprint transients; serial when @p runner
 * is null (pool construction is excluded from the timed region).
 */
double
timeBatch(ExperimentRunner *runner, int batch)
{
    const auto one = [] {
        MobilePackageModel pkg(MobilePackageParams::phonePcm());
        // Sprint, then cooldown: the full Figure 4 shape.
        const auto tr = runSprintTransient(pkg, 16.0, 3.0, 2.5e-4);
        runCooldownTransient(pkg, 40.0, 1e-2);
        return tr.time_to_limit;
    };
    const auto t0 = std::chrono::steady_clock::now();
    if (runner == nullptr) {
        volatile double sum = 0.0;
        for (int i = 0; i < batch; ++i)
            sum = sum + one();
        (void)sum;
    } else {
        std::vector<std::function<double()>> jobs(
            static_cast<std::size_t>(batch), one);
        runner->map(jobs);
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"out", "seed-thermal-step-ns", "iters"});
    const std::string out_path = args.get("out", "BENCH_thermal.json");
    // Optional: the measured ns/step of the pre-refactor seed
    // implementation on this host (it cannot be re-measured from this
    // tree; pass it through when known).
    const double seed_ns = args.getDouble("seed-thermal-step-ns", 0.0);
    const int iters = static_cast<int>(args.getDouble("iters", 2000000));

    std::cout << "measuring thermal hot path (this takes ~a minute)...\n";

    const double euler_ns =
        timePackageStep(ThermalIntegrator::ReferenceEuler, iters);
    const double heun_ns =
        timePackageStep(ThermalIntegrator::Heun, iters);
    const double pcm_euler_ns =
        timePcmHeavyStep(ThermalIntegrator::ReferenceEuler, 32,
                         iters / 50);
    const double pcm_heun_ns =
        timePcmHeavyStep(ThermalIntegrator::Heun, 32, iters / 50);
    // The equal-traces check of the acceptance criterion: a 16 W melt
    // transient plus cooldown refreeze, both integrators, 1 ms samples.
    const double deviation =
        runMeltFreezeParity(1500, 30000).max_temp_dev;
    const int batch = 32;
    const double batch_serial_s = timeBatch(nullptr, batch);
    ExperimentRunner runner;
    const int workers = runner.workerCount();
    const double batch_pool_s = timeBatch(&runner, batch);

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "FAIL: cannot open " << out_path
                  << " for writing\n";
        return 1;
    }
    out.precision(4);
    out << "{\n"
        << "  \"schema\": \"csprint-thermal-bench-v1\",\n"
        << "  \"units\": {\"time\": \"ns/step unless noted\"},\n"
        << "  \"parity\": {\n"
        << "    \"max_junction_deviation_c\": " << deviation << ",\n"
        << "    \"budget_c\": 0.1,\n"
        << "    \"trace\": \"phonePcm 16 W melt transient + cooldown "
           "refreeze, 1 ms sampling\"\n"
        << "  },\n"
        << "  \"phone_pcm_step_1ms\": {\n"
        << "    \"before_reference_euler_ns\": " << euler_ns << ",\n"
        << "    \"after_heun_ns\": " << heun_ns << ",\n"
        << "    \"speedup\": " << euler_ns / heun_ns;
    if (seed_ns > 0.0) {
        out << ",\n    \"seed_baseline\": {\n"
            << "      \"note\": \"pre-refactor seed implementation "
               "(allocating Euler, uncached stability bound) measured "
               "on this host\",\n"
            << "      \"ns\": " << seed_ns << ",\n"
            << "      \"speedup_vs_seed\": " << seed_ns / heun_ns
            << "\n    }";
    }
    out << "\n  },\n"
        << "  \"pcm_heavy_step_1ms_32_nodes\": {\n"
        << "    \"before_reference_euler_ns\": " << pcm_euler_ns << ",\n"
        << "    \"after_heun_ns\": " << pcm_heun_ns << ",\n"
        << "    \"speedup\": " << pcm_euler_ns / pcm_heun_ns << "\n"
        << "  },\n"
        << "  \"batched_sprint_transients\": {\n"
        << "    \"batch_size\": " << batch << ",\n"
        << "    \"serial_s\": " << batch_serial_s << ",\n"
        << "    \"pool_workers\": " << workers << ",\n"
        << "    \"pool_s\": " << batch_pool_s << ",\n"
        << "    \"throughput_gain\": " << batch_serial_s / batch_pool_s
        << "\n  }\n"
        << "}\n";

    std::cout << "phonePcm step(1e-3): reference Euler " << euler_ns
              << " ns -> Heun " << heun_ns << " ns ("
              << euler_ns / heun_ns << "x)\n"
              << "PCM-heavy (32 nodes): " << pcm_euler_ns << " -> "
              << pcm_heun_ns << " ns (" << pcm_euler_ns / pcm_heun_ns
              << "x)\n"
              << "max trace deviation: " << deviation << " C (budget 0.1)\n"
              << "batch of " << batch << ": serial " << batch_serial_s
              << " s, pool(" << workers << ") " << batch_pool_s << " s\n"
              << "wrote " << out_path << "\n";

    const bool parity_ok = deviation <= 0.1;
    if (!parity_ok)
        std::cerr << "FAIL: trace deviation exceeds 0.1 C budget\n";
    return parity_ok ? 0 : 1;
}
