/**
 * @file
 * Section 6 reproduction: power-source feasibility for a 16 x 1 W
 * sprint — phone Li-ion vs high-discharge Li-polymer vs a
 * battery+ultracapacitor hybrid — plus the package-pin arithmetic.
 */

#include <iostream>

#include "common/table.hh"
#include "energy/supply.hh"

using namespace csprint;

int
main()
{
    std::cout << "Section 6: power sources for a 16 W, 1 s sprint\n\n";

    Table batteries("battery options");
    batteries.setHeader({"source", "mass (g)", "burst power (W)",
                         "max 1 W cores", "16 W sprint?"});
    for (const Battery &b :
         {Battery::phoneLiIon(), Battery::highDischargeLiPo()}) {
        int cores = 0;
        while (b.canSupply(static_cast<double>(cores + 1)) &&
               cores < 200)
            ++cores;
        batteries.startRow();
        batteries.cell(b.name);
        batteries.cell(b.mass, 1);
        batteries.cell(b.maxBurstPower(), 1);
        batteries.cell(static_cast<long long>(cores));
        batteries.cell(b.canSupply(16.0) ? "yes" : "NO");
    }
    batteries.print(std::cout);

    std::cout << "\n";
    const Ultracapacitor cap = Ultracapacitor::nesscap25F();
    Table caps("ultracapacitor option");
    caps.setHeader({"source", "mass (g)", "stored (J)",
                    "usable to 1 V (J)", "peak current (A)"});
    caps.startRow();
    caps.cell(cap.name);
    caps.cell(cap.mass, 1);
    caps.cell(cap.storedEnergy(), 1);
    caps.cell(cap.usableEnergy(1.0), 1);
    caps.cell(cap.max_current, 1);
    caps.print(std::cout);

    std::cout << "\n";
    HybridSupply hybrid{Battery::phoneLiIon(), cap};
    Table h("hybrid phone-battery + ultracapacitor");
    h.setHeader({"sprint", "feasible?", "cap energy (J)",
                 "recharge @1 W spare (s)"});
    for (double duration : {0.25, 0.5, 1.0, 2.0}) {
        h.startRow();
        h.cell("16 W x " + Table::formatNumber(duration, 2) + " s");
        h.cell(hybrid.canSprint(16.0, duration) ? "yes" : "NO");
        h.cell(hybrid.capEnergyNeeded(16.0, duration), 1);
        h.cell(hybrid.rechargeTime(16.0, duration, 1.0), 1);
    }
    h.print(std::cout);

    std::cout << "\n";
    PackagePins pins;
    Table p("package pins for sprint current delivery");
    p.setHeader({"current (A)", "pins needed (pwr+gnd)"});
    for (double amps : {1.0, 4.0, 10.0, 16.0}) {
        p.startRow();
        p.cell(amps, 0);
        p.cell(static_cast<long long>(pins.pinsRequired(amps)));
    }
    p.print(std::cout);

    std::cout << "\npaper: phone Li-ion bursts ~10 W (fewer than ten "
                 "1 W cores); high-discharge\nLi-Po and "
                 "battery+ultracap hybrids cover 16 W; 16 A at 100 mA "
                 "pins needs 320 pins.\n";
    return 0;
}
