/**
 * @file
 * Machine-readable before/after report for the architectural-simulator
 * hot path, written to BENCH_archsim.json (schema documented in
 * PERF.md).
 *
 * "Before" is the retained cycle-by-cycle loop
 * (MachineLoop::Reference) — the seed's scheduling semantics running
 * on the shared op/cache substrate; the seed's original implementation
 * additionally fetched every op through a virtual call, charged energy
 * per op, and kept the L2 directory in a hashed map, and is recorded
 * under seed_baseline when measurements are supplied. "After" is the
 * event-driven skip-ahead scheduler with batched op streams. Every
 * speedup is reported together with an exactness check — the two loops
 * must produce identical MachineStats and identical junction traces on
 * the 16-core coupled fig07 runs (both thermal design points) — so the
 * acceptance criterion is verified by the tool itself.
 *
 *   ./archsim_report [--out BENCH_archsim.json] [--reps N]
 *                    [--seed-coupled-small-ms N] [--seed-coupled-full-ms N]
 *                    [--seed-serial-ms N] [--seed-par16-ms N]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "sprint/experiment.hh"
#include "workloads/workload.hh"

using namespace csprint;

namespace {

/** Median wall milliseconds per call, after one warmup call. */
template <typename F>
double
medianMs(F fn, int reps)
{
    std::vector<double> t;
    fn();
    for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        t.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    std::sort(t.begin(), t.end());
    return t[t.size() / 2];
}

ExperimentSpec
fig07Spec(Grams pcm, MachineLoop loop)
{
    ExperimentSpec spec;
    spec.kernel = KernelId::Sobel;
    spec.size = InputSize::B;
    spec.cores = 16;
    spec.pcm_mass = pcm;
    spec.loop = loop;
    return spec;
}

/** The 16-core coupled fig07 run (one kernel, one design point). */
double
timeCoupled(Grams pcm, MachineLoop loop, int reps)
{
    return medianMs(
        [&] {
            const RunResult r =
                runParallelSprintExperiment(fig07Spec(pcm, loop));
            volatile double sink = r.task_time;
            (void)sink;
        },
        reps);
}

/** Machine-only run (no thermal coupling, no sample hook). */
double
timeMachine(int cores, InputSize size, MachineLoop loop, int reps)
{
    return medianMs(
        [&] {
            const ParallelProgram prog =
                buildKernelProgram(KernelId::Sobel, size);
            MachineConfig cfg;
            cfg.num_cores = cores;
            cfg.num_threads = cores;
            cfg.loop = loop;
            Machine m(cfg, prog);
            m.run();
            volatile Cycles sink = m.stats().cycles;
            (void)sink;
        },
        reps);
}

struct ParityResult
{
    bool exact = true;
    double max_junction_dev = 0.0;
    double energy_rel_dev = 0.0;
};

/** Exactness of the event loop vs the reference loop, both points. */
ParityResult
checkParity()
{
    ParityResult result;
    for (Grams pcm : {kSmallPcm, kFullPcm}) {
        const RunResult ref = runParallelSprintExperiment(
            fig07Spec(pcm, MachineLoop::Reference));
        const RunResult ev = runParallelSprintExperiment(
            fig07Spec(pcm, MachineLoop::EventDriven));
        result.exact =
            result.exact &&
            ref.machine.cycles == ev.machine.cycles &&
            ref.machine.ops_retired == ev.machine.ops_retired &&
            ref.machine.ops_by_kind == ev.machine.ops_by_kind &&
            ref.machine.idle_cycles == ev.machine.idle_cycles &&
            ref.machine.sleep_cycles == ev.machine.sleep_cycles &&
            ref.machine.barrier_arrivals ==
                ev.machine.barrier_arrivals &&
            ref.machine.l1_hits == ev.machine.l1_hits &&
            ref.machine.l1_misses == ev.machine.l1_misses &&
            ref.machine.dynamic_energy == ev.machine.dynamic_energy &&
            ref.task_time == ev.task_time &&
            ref.sprint_exhausted == ev.sprint_exhausted &&
            ref.junction_trace.size() == ev.junction_trace.size();
        if (ref.machine.dynamic_energy != 0.0) {
            result.energy_rel_dev = std::max(
                result.energy_rel_dev,
                std::abs(ev.machine.dynamic_energy -
                         ref.machine.dynamic_energy) /
                    ref.machine.dynamic_energy);
        }
        const std::size_t n = std::min(ref.junction_trace.size(),
                                       ev.junction_trace.size());
        for (std::size_t i = 0; i < n; ++i) {
            const double dev = std::abs(ref.junction_trace.valueAt(i) -
                                        ev.junction_trace.valueAt(i));
            result.max_junction_dev =
                std::max(result.max_junction_dev, dev);
            if (dev != 0.0)
                result.exact = false;
        }
    }
    return result;
}

void
emitScenario(std::ostream &out, const char *key, double before_ms,
             double after_ms, double seed_ms, bool last)
{
    out << "  \"" << key << "\": {\n"
        << "    \"before_reference_ms\": " << before_ms << ",\n"
        << "    \"after_event_ms\": " << after_ms << ",\n"
        << "    \"speedup\": " << before_ms / after_ms;
    if (seed_ms > 0.0) {
        out << ",\n    \"seed_baseline\": {\n"
            << "      \"note\": \"pre-refactor seed machine (per-cycle "
               "16-core scan, virtual per-op fetch, per-op energy, "
               "hashed L2 directory) measured on this host\",\n"
            << "      \"ms\": " << seed_ms << ",\n"
            << "      \"speedup_vs_seed\": " << seed_ms / after_ms
            << "\n    }";
    }
    out << "\n  }" << (last ? "\n" : ",\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv,
                   {"out", "reps", "seed-coupled-small-ms",
                    "seed-coupled-full-ms", "seed-serial-ms",
                    "seed-par16-ms"});
    const std::string out_path = args.get("out", "BENCH_archsim.json");
    const int reps = static_cast<int>(args.getDouble("reps", 5));
    const double seed_small = args.getDouble("seed-coupled-small-ms", 0);
    const double seed_full = args.getDouble("seed-coupled-full-ms", 0);
    const double seed_serial = args.getDouble("seed-serial-ms", 0);
    const double seed_par16 = args.getDouble("seed-par16-ms", 0);

    std::cout << "measuring the archsim hot path (reps=" << reps
              << ")...\n";

    const ParityResult parity = checkParity();

    const double c_small_ref =
        timeCoupled(kSmallPcm, MachineLoop::Reference, reps);
    const double c_small_ev =
        timeCoupled(kSmallPcm, MachineLoop::EventDriven, reps);
    const double c_full_ref =
        timeCoupled(kFullPcm, MachineLoop::Reference, reps);
    const double c_full_ev =
        timeCoupled(kFullPcm, MachineLoop::EventDriven, reps);
    const double m1_ref =
        timeMachine(1, InputSize::A, MachineLoop::Reference, reps);
    const double m1_ev =
        timeMachine(1, InputSize::A, MachineLoop::EventDriven, reps);
    const double m16_ref =
        timeMachine(16, InputSize::B, MachineLoop::Reference, reps);
    const double m16_ev =
        timeMachine(16, InputSize::B, MachineLoop::EventDriven, reps);

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "FAIL: cannot open " << out_path
                  << " for writing\n";
        return 1;
    }
    out.precision(4);
    out << "{\n"
        << "  \"schema\": \"csprint-archsim-bench-v1\",\n"
        << "  \"units\": {\"time\": \"wall ms per run, median of "
        << reps << "\"},\n"
        << "  \"parity\": {\n"
        << "    \"runs\": \"fig07 sobel-B 16-core parallel sprint, "
           "1.5 mg and 150 mg design points\",\n"
        << "    \"exact_machine_totals\": "
        << (parity.exact ? "true" : "false") << ",\n"
        << "    \"max_junction_deviation_c\": "
        << parity.max_junction_dev << ",\n"
        << "    \"dynamic_energy_rel_deviation\": "
        << parity.energy_rel_dev << "\n"
        << "  },\n";
    emitScenario(out, "fig07_coupled_16core_1p5mg", c_small_ref,
                 c_small_ev, seed_small, false);
    emitScenario(out, "fig07_coupled_16core_150mg", c_full_ref,
                 c_full_ev, seed_full, false);
    emitScenario(out, "machine_run_serial_sobelA", m1_ref, m1_ev,
                 seed_serial, false);
    emitScenario(out, "machine_run_parallel16_sobelB", m16_ref, m16_ev,
                 seed_par16, true);
    out << "}\n";

    std::cout << "fig07 coupled 16-core 1.5 mg: ref " << c_small_ref
              << " ms -> event " << c_small_ev << " ms ("
              << c_small_ref / c_small_ev << "x)";
    if (seed_small > 0)
        std::cout << ", vs seed " << seed_small << " ms ("
                  << seed_small / c_small_ev << "x)";
    std::cout << "\nfig07 coupled 16-core 150 mg: ref " << c_full_ref
              << " ms -> event " << c_full_ev << " ms ("
              << c_full_ref / c_full_ev << "x)";
    if (seed_full > 0)
        std::cout << ", vs seed " << seed_full << " ms ("
                  << seed_full / c_full_ev << "x)";
    std::cout << "\nmachine serial sobel-A: " << m1_ref << " -> "
              << m1_ev << " ms; parallel16 sobel-B: " << m16_ref
              << " -> " << m16_ev << " ms\n"
              << "parity: exact totals "
              << (parity.exact ? "yes" : "NO")
              << ", max junction deviation "
              << parity.max_junction_dev << " C\n"
              << "wrote " << out_path << "\n";

    if (!parity.exact) {
        std::cerr << "FAIL: event-driven loop diverged from the "
                     "reference loop\n";
        return 1;
    }
    return 0;
}
