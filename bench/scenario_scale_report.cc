/**
 * @file
 * Machine-readable report for the long-horizon scenario fast path,
 * written to BENCH_scale.json (schema documented in PERF.md,
 * "Long-horizon scenarios").
 *
 * Four sections, every one an acceptance gate the tool enforces
 * itself (non-zero exit on failure):
 *
 *  1. sparse_idle — a gap-dominated periodic timeline (long rests
 *     between sprints, the paper's Section 3 regime) must run >= 10x
 *     faster with the fast path (quiescent idle stepping + decimated
 *     traces + streaming aggregates) than with the exact reference
 *     engine.
 *
 *  2. idle_deviation — a full melt -> refreeze -> ambient cooldown
 *     integrated by the quiescent super-stepper must stay within
 *     0.05 °C of the reference (Heun step()) idle path at every
 *     sampled point.
 *
 *  3. million_task — a 1,000,000-task back-to-back scenario (micro
 *     per-task programs via the program factory, small machine
 *     template) must complete in the bounded-memory trace mode:
 *     traces within the configured capacity, no per-task results
 *     retained, streaming quantiles for the response distribution.
 *
 *  4. shard_parity — replaying a timeline as a chain of checkpointed
 *     shards (runScenarioSharded) must reproduce the unsharded run
 *     bit-for-bit: every aggregate, every per-task machine stat,
 *     every trace sample — in the exact engine and in the fast path,
 *     including a warm-cache chain across shard boundaries.
 *
 *   ./scenario_scale_report [--out BENCH_scale.json]
 *       [--sparse-tasks N] [--million-tasks N]
 */

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "archsim/opstream.hh"
#include "common/args.hh"
#include "sprint/experiment.hh"
#include "sprint/scenario.hh"
#include "thermal/validation.hh"
#include "workloads/workload.hh"

using namespace csprint;

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** Peak resident set size in MB from /proc (-1 when unavailable). */
double
peakRssMb()
{
    std::ifstream status("/proc/self/status");
    std::string key;
    while (status >> key) {
        if (key == "VmHWM:") {
            double kb = 0.0;
            status >> kb;
            return kb / 1024.0;
        }
        status.ignore(4096, '\n');
    }
    return -1.0;
}

/** The gap-dominated periodic timeline of gate 1. */
ScenarioConfig
sparseIdleConfig(int tasks)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(16, 0.015);
    cfg.policy.kind = SprintPolicyKind::GreedyActivity;
    cfg.pattern = ArrivalPattern::Periodic;
    cfg.num_tasks = tasks;
    cfg.period = 1.0;  // rest >> sprint: >90% of wall time is idle
    cfg.kernel = KernelId::Sobel;
    cfg.size = InputSize::A;
    return cfg;
}

/** Tiny per-task program for the million-task gate: ~2k ops. */
ParallelProgram
microProgram(const ScenarioTask &task)
{
    ParallelProgram prog("micro");
    Phase phase;
    phase.name = "work";
    phase.kind = PhaseKind::ParallelStatic;
    phase.num_tasks = 2;
    const std::uint64_t seed = task.seed;
    phase.make_task = [seed](std::size_t t) {
        std::vector<MicroOp> ops;
        ops.reserve(1024);
        const std::uint64_t base =
            0x10000000ULL + (seed % 64) * 4096 + t * 8192;
        for (int i = 0; i < 1024; ++i) {
            if (i % 4 == 0)
                ops.push_back(MicroOp::load(base + (i % 32) * 64));
            else
                ops.push_back(MicroOp::intAlu());
        }
        return std::make_unique<VectorOpStream>(std::move(ops));
    };
    prog.addPhase(std::move(phase));
    return prog;
}

/** Exact (bit-for-bit) equality of two scenario results. */
bool
exactSameScenario(const ScenarioResult &a, const ScenarioResult &b,
                  std::string &why)
{
    auto fail = [&why](const char *what) {
        why = what;
        return false;
    };
    if (a.tasks_completed != b.tasks_completed)
        return fail("tasks_completed");
    if (a.sprints_granted != b.sprints_granted)
        return fail("sprints_granted");
    if (a.sprints_denied != b.sprints_denied)
        return fail("sprints_denied");
    if (a.sprints_exhausted != b.sprints_exhausted)
        return fail("sprints_exhausted");
    if (a.hardware_throttles != b.hardware_throttles)
        return fail("hardware_throttles");
    if (a.makespan != b.makespan)
        return fail("makespan");
    if (a.utilization != b.utilization)
        return fail("utilization");
    if (a.p50_response != b.p50_response)
        return fail("p50_response");
    if (a.p95_response != b.p95_response)
        return fail("p95_response");
    if (a.peak_junction != b.peak_junction)
        return fail("peak_junction");
    if (a.total_energy != b.total_energy)
        return fail("total_energy");
    if (a.total_sprint_time != b.total_sprint_time)
        return fail("total_sprint_time");
    if (a.total_sprint_energy != b.total_sprint_energy)
        return fail("total_sprint_energy");
    if (a.peak_melt_fraction != b.peak_melt_fraction)
        return fail("peak_melt_fraction");
    if (a.sprint_rest_cycles != b.sprint_rest_cycles)
        return fail("sprint_rest_cycles");
    if (a.tasks.size() != b.tasks.size())
        return fail("tasks.size");
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        const ScenarioTaskResult &x = a.tasks[i];
        const ScenarioTaskResult &y = b.tasks[i];
        if (x.start != y.start || x.finish != y.finish ||
            x.response != y.response ||
            x.sprint_granted != y.sprint_granted ||
            x.melt_at_start != y.melt_at_start ||
            x.melt_at_end != y.melt_at_end)
            return fail("task scalars");
        if (x.run.machine.cycles != y.run.machine.cycles ||
            x.run.machine.ops_retired != y.run.machine.ops_retired ||
            x.run.machine.l1_hits != y.run.machine.l1_hits ||
            x.run.machine.l1_misses != y.run.machine.l1_misses ||
            x.run.dynamic_energy != y.run.dynamic_energy ||
            x.run.task_time != y.run.task_time)
            return fail("task machine stats");
    }
    const TimeSeries *ta[] = {&a.junction_trace, &a.power_trace,
                              &a.melt_trace};
    const TimeSeries *tb[] = {&b.junction_trace, &b.power_trace,
                              &b.melt_trace};
    const char *names[] = {"junction_trace", "power_trace",
                           "melt_trace"};
    for (int k = 0; k < 3; ++k) {
        if (ta[k]->size() != tb[k]->size())
            return fail(names[k]);
        for (std::size_t i = 0; i < ta[k]->size(); ++i) {
            if (ta[k]->timeAt(i) != tb[k]->timeAt(i) ||
                ta[k]->valueAt(i) != tb[k]->valueAt(i))
                return fail(names[k]);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv,
                   {"out", "sparse-tasks", "million-tasks"});
    const std::string out_path = args.get("out", "BENCH_scale.json");
    const int sparse_tasks =
        static_cast<int>(args.getDouble("sparse-tasks", 8));
    const int million_tasks =
        static_cast<int>(args.getDouble("million-tasks", 1000000));

    // --- Gate 1: sparse-idle timeline speedup >= 10x. ---------------
    const ScenarioConfig ref_cfg = sparseIdleConfig(sparse_tasks);
    ScenarioConfig fast_cfg = ref_cfg;
    fast_cfg.idle_model = IdleModel::Quiescent;
    fast_cfg.trace_mode = TraceMode::DecimatedRing;
    fast_cfg.trace_capacity = 4096;
    fast_cfg.keep_task_results = false;

    const auto t0 = Clock::now();
    const ScenarioResult ref = runScenario(ref_cfg);
    const auto t1 = Clock::now();
    const ScenarioResult fast = runScenario(fast_cfg);
    const auto t2 = Clock::now();
    const double ref_ms = elapsedMs(t0, t1);
    const double fast_ms = elapsedMs(t1, t2);
    const double speedup = ref_ms / fast_ms;
    const bool sparse_ok = speedup >= 10.0;
    std::cout << "sparse idle (" << sparse_tasks << " tasks, period "
              << ref_cfg.period << "): reference " << ref_ms
              << " ms, fast " << fast_ms << " ms, speedup " << speedup
              << "x" << (sparse_ok ? "" : "  FAIL (< 10x)") << "\n";

    // --- Gate 2: quiescent idle-path deviation <= 0.05 C. -----------
    const QuiescentCooldownSpec cooldown;
    const QuiescentCooldownParity parity = runQuiescentCooldownParity(
        SprintConfig::scaledPackage(0.15, 7e-4), cooldown);
    const double dev_budget = 0.05;
    const bool dev_ok = parity.max_temp_dev <= dev_budget;
    std::cout << "idle-path deviation (melt->refreeze cooldown, "
              << cooldown.samples << " samples): "
              << parity.max_temp_dev << " C"
              << (dev_ok ? "" : "  FAIL (> 0.05 C)") << "\n";

    // --- Gate 3: million-task bounded-memory run. -------------------
    ScenarioConfig mcfg;
    mcfg.platform = SprintConfig::parallelSprint(2, 0.015);
    mcfg.platform.machine.l1_bytes = 8 * 1024;
    mcfg.platform.machine.l2.size_bytes = 64 * 1024;
    mcfg.policy.kind = SprintPolicyKind::GreedyActivity;
    mcfg.pattern = ArrivalPattern::BackToBack;
    mcfg.num_tasks = million_tasks;
    mcfg.program_factory = microProgram;
    mcfg.trace_mode = TraceMode::DecimatedRing;
    mcfg.trace_capacity = 4096;
    mcfg.keep_task_results = false;
    mcfg.idle_model = IdleModel::Quiescent;

    // VmHWM is a process-wide high-water mark, so record the baseline
    // set by the earlier gates too: the million-task run is bounded
    // iff the *growth* over that baseline stays small.
    // Setup (validation, cursor seeding, the first package build) is
    // timed apart from the steady-state task loop so tasks/s measures
    // the per-task engine cost, not one-time construction.
    const double rss_before_mb = peakRssMb();
    const auto m0 = Clock::now();
    ScenarioCheckpoint mck = beginScenario(mcfg);
    const auto m1 = Clock::now();
    while (!advanceScenario(
        mcfg, mck, static_cast<std::uint64_t>(mcfg.num_tasks))) {
    }
    const auto m2 = Clock::now();
    const ScenarioResult million = finishScenario(mcfg, std::move(mck));
    const auto m3 = Clock::now();
    const double setup_ms = elapsedMs(m0, m1);
    const double steady_s = elapsedMs(m1, m2) / 1000.0;
    const double million_s = elapsedMs(m0, m3) / 1000.0;
    const double tasks_per_sec =
        static_cast<double>(million.tasks_completed) / steady_s;
    const double rss_mb = peakRssMb();
    const bool million_ok =
        million.tasks_completed ==
            static_cast<std::uint64_t>(million_tasks) &&
        million.tasks.empty() &&
        million.junction_trace.size() <= mcfg.trace_capacity &&
        million.power_trace.size() <= mcfg.trace_capacity &&
        million.melt_trace.size() <= mcfg.trace_capacity;
    std::cout << "million-task run: " << million.tasks_completed
              << " tasks in " << million_s << " s (setup " << setup_ms
              << " ms, steady " << steady_s << " s, " << tasks_per_sec
              << " tasks/s), traces "
              << million.junction_trace.size() << " samples, peak RSS "
              << rss_mb << " MB"
              << (million_ok ? "" : "  FAIL (unbounded)") << "\n";

    // --- Gate 4: sharded replay == unsharded, bit for bit. ----------
    ScenarioConfig pcfg;
    pcfg.platform = SprintConfig::parallelSprint(16, 0.015);
    pcfg.policy.kind = SprintPolicyKind::GreedyActivity;
    pcfg.pattern = ArrivalPattern::Bursty;
    pcfg.num_tasks = 6;
    pcfg.burst_size = 2;
    pcfg.period = 3e-3;
    pcfg.kernel = KernelId::Sobel;
    pcfg.size = InputSize::A;
    pcfg.warm_caches = true;  // the chain must survive shard handoff
    pcfg.tail_rest = 3e-3;

    bool parity_ok = true;
    std::string parity_why;
    {
        const ScenarioResult unsharded = runScenario(pcfg);
        for (std::uint64_t shard : {1, 2, 4}) {
            const ScenarioResult sharded =
                runScenarioSharded(pcfg, shard);
            std::string why;
            if (!exactSameScenario(unsharded, sharded, why)) {
                parity_ok = false;
                parity_why = "exact engine, shard " +
                             std::to_string(shard) + ": " + why;
                std::cerr << "shard parity MISMATCH (" << parity_why
                          << ")\n";
            }
        }
    }
    {
        ScenarioConfig fq = pcfg;
        fq.warm_caches = false;
        fq.idle_model = IdleModel::Quiescent;
        fq.trace_mode = TraceMode::DecimatedRing;
        fq.trace_capacity = 512;
        const ScenarioResult unsharded = runScenario(fq);
        const ScenarioResult sharded = runScenarioSharded(fq, 2);
        std::string why;
        if (!exactSameScenario(unsharded, sharded, why)) {
            parity_ok = false;
            parity_why = "fast path, shard 2: " + why;
            std::cerr << "shard parity MISMATCH (" << parity_why
                      << ")\n";
        }
    }
    std::cout << "shard parity (exact + fast path): "
              << (parity_ok ? "exact" : "MISMATCH") << "\n";

    // --- Emit the report. -------------------------------------------
    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "FAIL: cannot open " << out_path
                  << " for writing\n";
        return 1;
    }
    out.precision(6);
    out << "{\n"
        << "  \"schema\": \"csprint-scale-bench-v1\",\n"
        << "  \"units\": {\"time\": \"time-scaled seconds (scale 7e-4,"
           " see EXPERIMENTS.md)\"},\n"
        << "  \"sparse_idle\": {\n"
        << "    \"config\": \"greedy, 15 mg PCM, sobel-A 16-core, "
        << sparse_tasks << " tasks every 1 s scaled\",\n"
        << "    \"reference_ms\": " << ref_ms << ",\n"
        << "    \"fast_ms\": " << fast_ms << ",\n"
        << "    \"speedup\": " << speedup << ",\n"
        << "    \"budget_speedup\": 10.0,\n"
        << "    \"reference_trace_samples\": "
        << ref.junction_trace.size() << ",\n"
        << "    \"fast_trace_samples\": " << fast.junction_trace.size()
        << ",\n"
        << "    \"pass\": " << (sparse_ok ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"idle_deviation\": {\n"
        << "    \"config\": \"150 mg scaled package, full melt -> "
           "refreeze -> ambient, 64 sampled chunks over 1 s scaled\",\n"
        << "    \"max_junction_deviation_c\": " << parity.max_temp_dev
        << ",\n"
        << "    \"max_melt_deviation\": " << parity.max_mf_dev << ",\n"
        << "    \"budget_c\": " << dev_budget << ",\n"
        << "    \"pass\": " << (dev_ok ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"million_task\": {\n"
        << "    \"config\": \"greedy, 2-core micro-programs (~2k ops),"
           " back-to-back, decimated-ring traces, streaming stats\",\n"
        << "    \"tasks\": " << million.tasks_completed << ",\n"
        << "    \"wall_s\": " << million_s << ",\n"
        << "    \"setup_ms\": " << setup_ms << ",\n"
        << "    \"steady_wall_s\": " << steady_s << ",\n"
        << "    \"tasks_per_sec\": " << tasks_per_sec << ",\n"
        << "    \"trace_samples\": " << million.junction_trace.size()
        << ",\n"
        << "    \"trace_capacity\": " << mcfg.trace_capacity << ",\n"
        << "    \"retained_task_results\": " << million.tasks.size()
        << ",\n"
        << "    \"rss_before_mb\": " << rss_before_mb << ",\n"
        << "    \"peak_rss_mb\": " << rss_mb << ",\n"
        << "    \"p50_response_s\": " << million.p50_response << ",\n"
        << "    \"p95_response_s\": " << million.p95_response << ",\n"
        << "    \"utilization\": " << million.utilization << ",\n"
        << "    \"pass\": " << (million_ok ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"shard_parity\": {\n"
        << "    \"config\": \"bursty greedy 6 tasks, warm caches, "
           "tail rest; shards of 1/2/4 (exact) and 2 (fast path)\",\n"
        << "    \"exact\": " << (parity_ok ? "true" : "false");
    if (!parity_ok)
        out << ",\n    \"first_mismatch\": \"" << parity_why << "\"";
    out << "\n  }\n"
        << "}\n";
    std::cout << "wrote " << out_path << "\n";

    if (!sparse_ok) {
        std::cerr << "FAIL: sparse-idle speedup below 10x\n";
        return 1;
    }
    if (!dev_ok) {
        std::cerr << "FAIL: idle-path deviation above budget\n";
        return 1;
    }
    if (!million_ok) {
        std::cerr << "FAIL: million-task run not bounded\n";
        return 1;
    }
    if (!parity_ok) {
        std::cerr << "FAIL: sharded replay diverged\n";
        return 1;
    }
    return 0;
}
