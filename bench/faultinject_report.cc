/**
 * @file
 * Machine-readable report for the crash-safety subsystem, written to
 * BENCH_faultinject.json (schema documented in PERF.md, "Crash safety
 * & fault injection").
 *
 * Gates the tool enforces itself (non-zero exit on failure):
 *
 *  1. recovery_parity — for every FaultKind, a supervised shard that
 *     crashes / corrupts its newest checkpoint / throws / stalls and
 *     is recovered from persisted state must finish bit-identical to
 *     the uninterrupted run: every aggregate, every trace sample.
 *
 *  2. randomized_batch_parity — a CSPRINT_DIFF_SEED-derived fault
 *     plan over a multi-shard batch (the seed rotates in CI, so every
 *     run exercises a different fault/checkpoint mix) recovers every
 *     shard bit-exactly.
 *
 *  3. corruption_rejection — sampled truncation prefixes and bit
 *     flips of a serialized checkpoint must all fail with a typed
 *     CheckpointError (no crash, no garbage checkpoint accepted).
 *
 * Plus perf numbers: checkpoint blob size and serialize/deserialize
 * round-trip throughput.
 *
 *   ./faultinject_report [--out BENCH_faultinject.json] [--tasks N]
 *                        [--seed S]
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "sprint/checkpoint.hh"
#include "sprint/experiment.hh"
#include "sprint/scenario.hh"
#include "sprint/supervisor.hh"
#include "workloads/workload.hh"

using namespace csprint;

namespace {

ScenarioConfig
shardScenario(std::uint64_t seed, int tasks)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(16, kSmallPcm);
    cfg.policy.kind = SprintPolicyKind::GreedyActivity;
    cfg.policy.pacing_period = 2.5e-3;
    cfg.pattern = ArrivalPattern::Periodic;
    cfg.num_tasks = tasks;
    cfg.period = 2.5e-3;
    cfg.kernel = KernelId::Sobel;
    cfg.size = InputSize::A;
    cfg.seed = seed;
    cfg.warm_caches = true;
    return cfg;
}

/** Bit-exact comparison of two scenario results (incl. traces). */
bool
exactSame(const ScenarioResult &a, const ScenarioResult &b,
          std::string &why)
{
    auto fail = [&why](const char *what) {
        why = what;
        return false;
    };
    if (a.tasks_completed != b.tasks_completed)
        return fail("tasks_completed");
    if (a.sprints_granted != b.sprints_granted)
        return fail("sprints_granted");
    if (a.sprints_denied != b.sprints_denied)
        return fail("sprints_denied");
    if (a.makespan != b.makespan)
        return fail("makespan");
    if (a.utilization != b.utilization)
        return fail("utilization");
    if (a.p50_response != b.p50_response)
        return fail("p50_response");
    if (a.p95_response != b.p95_response)
        return fail("p95_response");
    if (a.peak_junction != b.peak_junction)
        return fail("peak_junction");
    if (a.total_energy != b.total_energy)
        return fail("total_energy");
    if (a.total_sprint_time != b.total_sprint_time)
        return fail("total_sprint_time");
    if (a.total_sprint_energy != b.total_sprint_energy)
        return fail("total_sprint_energy");
    if (a.peak_melt_fraction != b.peak_melt_fraction)
        return fail("peak_melt_fraction");
    if (a.sprint_rest_cycles != b.sprint_rest_cycles)
        return fail("sprint_rest_cycles");
    const TimeSeries *ta[] = {&a.junction_trace, &a.power_trace,
                              &a.melt_trace};
    const TimeSeries *tb[] = {&b.junction_trace, &b.power_trace,
                              &b.melt_trace};
    const char *names[] = {"junction_trace", "power_trace",
                           "melt_trace"};
    for (int k = 0; k < 3; ++k) {
        if (ta[k]->size() != tb[k]->size())
            return fail(names[k]);
        for (std::size_t i = 0; i < ta[k]->size(); ++i) {
            if (ta[k]->timeAt(i) != tb[k]->timeAt(i) ||
                ta[k]->valueAt(i) != tb[k]->valueAt(i))
                return fail(names[k]);
        }
    }
    return true;
}

std::string
freshDir(const char *tag)
{
    std::string tmpl = std::string("/tmp/csprint-bench-") + tag +
                       "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = mkdtemp(buf.data());
    return std::string(dir ? dir : "/tmp");
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"out", "tasks", "seed"});
    const std::string out_path =
        args.get("out", "BENCH_faultinject.json");
    const int tasks = static_cast<int>(args.getDouble("tasks", 8));

    // The rotating differential seed: CLI flag beats the env, the
    // env beats the fixed default. Logged so a CI failure can be
    // replayed locally with --seed.
    std::uint64_t seed = 1u;
    if (const char *env = std::getenv("CSPRINT_DIFF_SEED"))
        seed = std::strtoull(env, nullptr, 10);
    seed = static_cast<std::uint64_t>(
        args.getInt("seed", static_cast<long long>(seed)));
    std::cout << "[ diff-seed ] CSPRINT_DIFF_SEED=" << seed << "\n";

    bool all_ok = true;

    // --- Gate 1: per-fault-kind recovery parity. -------------------
    const FaultKind kinds[] = {
        FaultKind::CrashAtCheckpoint, FaultKind::BitFlip,
        FaultKind::Truncate, FaultKind::WorkerException,
        FaultKind::Stall};
    struct KindRow
    {
        const char *name;
        bool exact = false;
        int retries = 0;
        std::uint64_t recoveries = 0;
        std::string why;
    };
    std::vector<KindRow> kind_rows;
    const ScenarioConfig parity_cfg = shardScenario(seed, tasks);
    const ScenarioResult direct = runScenario(parity_cfg);
    for (FaultKind kind : kinds) {
        KindRow row;
        row.name = faultKindName(kind);
        SupervisorOptions opts;
        opts.store_dir = freshDir(row.name);
        opts.checkpoint_every_tasks = 2;
        opts.max_retries = 2;
        opts.paranoia = true;
        if (kind == FaultKind::Stall)
            opts.watchdog_deadline = 0.2;
        FaultPlan plan;
        plan.faults.push_back({0, kind, 2});
        const SupervisedBatchResult batch =
            runSupervisedScenarioBatch({parity_cfg}, opts, plan);
        const ShardOutcome &shard = batch.shards[0];
        row.retries = shard.retries;
        row.recoveries = shard.recoveries;
        row.exact = !shard.degraded && shard.retries >= 1 &&
                    exactSame(direct, shard.result, row.why);
        if (shard.degraded)
            row.why = "shard degraded";
        else if (shard.retries < 1)
            row.why = "fault never fired";
        std::cout << "recovery parity [" << row.name << "]: "
                  << (row.exact ? "exact" : "MISMATCH");
        if (!row.exact)
            std::cout << " (" << row.why << ")";
        std::cout << "\n";
        all_ok = all_ok && row.exact;
        kind_rows.push_back(std::move(row));
    }

    // --- Gate 2: seed-randomized multi-shard plan. -----------------
    std::vector<ScenarioConfig> shards;
    for (std::uint64_t s = 0; s < 3; ++s)
        shards.push_back(shardScenario(seed * 977 + s, tasks));
    SupervisorOptions batch_opts;
    batch_opts.store_dir = freshDir("batch");
    batch_opts.checkpoint_every_tasks = 2;
    batch_opts.max_retries = 3;
    batch_opts.watchdog_deadline = 0.2;
    const FaultPlan batch_plan = FaultPlan::randomized(
        seed, static_cast<int>(shards.size()), tasks / 2);
    const SupervisedBatchResult batch =
        runSupervisedScenarioBatch(shards, batch_opts, batch_plan);
    bool batch_ok = batch.allOk();
    std::string batch_why = batch_ok ? "" : "degraded shard";
    for (std::size_t i = 0; batch_ok && i < shards.size(); ++i) {
        batch_ok = exactSame(runScenario(shards[i]),
                             batch.shards[i].result, batch_why);
        if (!batch_ok)
            batch_why = "shard " + std::to_string(i) + ": " + batch_why;
    }
    std::cout << "randomized batch parity (seed " << seed
              << "): " << (batch_ok ? "exact" : "MISMATCH");
    if (!batch_ok)
        std::cout << " (" << batch_why << ")";
    std::cout << "\n";
    all_ok = all_ok && batch_ok;

    // --- Gate 3: corruption rejection. -----------------------------
    ScenarioCheckpoint probe = beginScenario(parity_cfg);
    advanceScenario(parity_cfg, probe, 2);
    const std::vector<std::uint8_t> blob =
        serializeCheckpoint(parity_cfg, probe);
    // Each probe copies and CRCs the whole blob, so cap the sample
    // count (the exhaustive every-prefix sweep lives in
    // tests/checkpoint_test.cc on a small blob).
    std::uint64_t rejected = 0, attempted = 0, accepted = 0;
    for (std::size_t len = 0; len < blob.size();
         len += 1 + blob.size() / 256) {
        std::vector<std::uint8_t> prefix(blob.begin(),
                                         blob.begin() + len);
        ++attempted;
        try {
            deserializeCheckpoint(parity_cfg, prefix);
            ++accepted;
        } catch (const CheckpointError &) {
            ++rejected;
        }
    }
    const std::size_t bit_stride =
        1 + blob.size() * 8 / 256; // ~256 sampled bits
    for (std::size_t bit = seed % 13; bit < blob.size() * 8;
         bit += bit_stride) {
        std::vector<std::uint8_t> bad = blob;
        bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        ++attempted;
        try {
            deserializeCheckpoint(parity_cfg, bad);
            ++accepted;
        } catch (const CheckpointError &) {
            ++rejected;
        }
    }
    const bool reject_ok = accepted == 0 && attempted > 0;
    std::cout << "corruption rejection: " << rejected << "/"
              << attempted << " rejected cleanly"
              << (reject_ok ? "" : " — CORRUPT INPUT ACCEPTED")
              << "\n";
    all_ok = all_ok && reject_ok;

    // --- Perf: blob size + round-trip throughput. ------------------
    const int reps = 50;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        serializeCheckpoint(parity_cfg, probe);
    const double ser_s = secondsSince(t0) / reps;
    const auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        deserializeCheckpoint(parity_cfg, blob);
    const double deser_s = secondsSince(t1) / reps;
    const double mb = static_cast<double>(blob.size()) / 1e6;
    std::cout << "checkpoint blob: " << blob.size() << " bytes; "
              << "serialize " << mb / ser_s << " MB/s, deserialize "
              << mb / deser_s << " MB/s\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "FAIL: cannot open " << out_path
                  << " for writing\n";
        return 1;
    }
    out.precision(6);
    out << "{\n"
        << "  \"schema\": \"csprint-faultinject-bench-v1\",\n"
        << "  \"diff_seed\": " << seed << ",\n"
        << "  \"tasks_per_shard\": " << tasks << ",\n"
        << "  \"recovery_parity\": [\n";
    for (std::size_t i = 0; i < kind_rows.size(); ++i) {
        const KindRow &row = kind_rows[i];
        out << "    {\"fault\": \"" << row.name
            << "\", \"exact\": " << (row.exact ? "true" : "false")
            << ", \"retries\": " << row.retries
            << ", \"recoveries\": " << row.recoveries << "}"
            << (i + 1 < kind_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"randomized_batch_parity\": {\"shards\": "
        << shards.size()
        << ", \"exact\": " << (batch_ok ? "true" : "false") << "},\n"
        << "  \"corruption_rejection\": {\"attempted\": " << attempted
        << ", \"rejected\": " << rejected
        << ", \"accepted\": " << accepted << "},\n"
        << "  \"checkpoint_perf\": {\"blob_bytes\": " << blob.size()
        << ", \"serialize_mb_per_s\": " << mb / ser_s
        << ", \"deserialize_mb_per_s\": " << mb / deser_s << "},\n"
        << "  \"all_gates_pass\": " << (all_ok ? "true" : "false")
        << "\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";
    return all_ok ? 0 : 1;
}
