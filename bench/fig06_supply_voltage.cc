/**
 * @file
 * Figure 6 reproduction: supply voltage versus time on the Figure 5
 * RLC power-delivery network when activating 16 cores (a) within a
 * nanosecond, (b) over a 1.28 us linear ramp, and (c) over a 128 us
 * linear ramp; plus the tolerance/settling summary of Section 5.
 */

#include <iostream>

#include "common/table.hh"
#include "powergrid/pdn.hh"

using namespace csprint;

namespace {

struct Case
{
    const char *label;
    ActivationSchedule schedule;
    Seconds window;
    Seconds dt;
};

} // namespace

int
main()
{
    const Seconds t0 = 10e-6;
    const PdnParams params = PdnParams::paper16();
    const Case cases[] = {
        {"(a) instantaneous activation",
         ActivationSchedule::abrupt(t0), 120e-6, 1e-9},
        {"(b) linear ramp over 1.28 us",
         ActivationSchedule::linearRamp(1.28e-6, t0), 120e-6, 1e-9},
        {"(c) linear ramp over 128 us",
         ActivationSchedule::linearRamp(128e-6, t0), 400e-6, 2e-9},
    };

    std::cout << "Figure 6: supply voltage during 16-core activation\n"
              << "nominal " << params.vdd
              << " V, tolerance 2% (>= " << 0.98 * params.vdd
              << " V)\n\n";

    Table summary("Section 5 summary");
    summary.setHeader({"schedule", "min V", "settled V",
                       "settle time (us)", "within 2%?"});

    for (const Case &c : cases) {
        PowerDeliveryNetwork pdn(params, c.schedule);
        const SupplyTrace trace =
            pdn.simulate(c.window, c.dt, c.window / 400.0);
        const SupplyMetrics m =
            computeSupplyMetrics(trace, params.vdd, 0.02, t0);

        Table t(c.label);
        t.setHeader({"time (us)", "supply (V)"});
        const TimeSeries d = trace.worst_supply.decimate(14);
        for (std::size_t i = 0; i < d.size(); ++i) {
            t.startRow();
            t.cell(d.timeAt(i) * 1e6, 2);
            t.cell(d.valueAt(i), 4);
        }
        t.print(std::cout);
        std::cout << "\n";

        summary.startRow();
        summary.cell(c.label);
        summary.cell(m.min_voltage, 4);
        summary.cell(m.settled, 4);
        summary.cell(m.settling_time * 1e6, 2);
        summary.cell(m.within_tolerance ? "yes" : "NO");
    }

    summary.print(std::cout);
    std::cout << "\npaper: abrupt activation dips to 1.171 V (97.5% of "
                 "nominal, ~2.53 us settle);\n"
                 "1.28 us ramp still violates 2%; 128 us ramp stays "
                 "within tolerance and settles\n~10 mV below nominal "
                 "(resistive droop).\n";
    return 0;
}
