/**
 * @file
 * Figure 9 reproduction: 16-core speedup across input-size classes
 * A-D for every kernel at both thermal design points. Larger inputs
 * scale better but need more thermal capacitance to finish inside
 * the sprint window.
 */

#include <iostream>

#include "common/table.hh"
#include "sprint/experiment.hh"

using namespace csprint;

int
main()
{
    std::cout << "Figure 9: speedup on 16 cores with varying input "
                 "sizes (A-D)\n\n";

    Table t("normalized speedup over 1-core baseline");
    t.setHeader({"kernel", "size", "Par 1.5mg", "Par 150mg"});

    for (KernelId id : allKernels()) {
        for (InputSize size : {InputSize::A, InputSize::B,
                               InputSize::C, InputSize::D}) {
            ExperimentSpec spec;
            spec.kernel = id;
            spec.size = size;
            const RunResult base = runBaselineExperiment(spec);
            ExperimentSpec small = spec;
            small.pcm_mass = kSmallPcm;
            const double par_small = speedupOver(
                base, runParallelSprintExperiment(small));
            const double par_full = speedupOver(
                base, runParallelSprintExperiment(spec));
            t.startRow();
            t.cell(kernelName(id));
            t.cell(inputSizeName(size));
            t.cell(par_small, 2);
            t.cell(par_full, 2);
        }
    }
    t.print(std::cout);
    std::cout << "\npaper: larger inputs exhibit higher parallel "
                 "speedup but exhaust the small\ndesign point harder "
                 "(feature reaches ~8x on its largest input with full "
                 "PCM).\n";
    return 0;
}
