/**
 * @file
 * Ablation (paper Section 5.3): the effect of the core-activation
 * ramp length on sprint responsiveness. At the paper's 128 us the
 * impact is negligible against sub-second sprints; the sweep shows
 * where a ramp would start to matter. Ramp lengths are quoted at
 * physical scale and applied through the same time scaling as the
 * thermal capacitances (see EXPERIMENTS.md).
 */

#include <iostream>

#include "common/table.hh"
#include "sprint/experiment.hh"
#include "sprint/simulation.hh"
#include "workloads/workload.hh"

using namespace csprint;

int
main()
{
    std::cout << "Ablation: activation-ramp length vs sprint speedup "
                 "(sobel, size B, 16 cores)\n\n";

    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::B, 42);
    const RunResult base = runSprint(prog, SprintConfig::baseline());

    Table t("speedup vs physical ramp length");
    t.setHeader({"ramp (physical)", "speedup", "ramp share of task"});
    for (double ramp_us : {0.0, 128.0, 1280.0, 12800.0, 128000.0}) {
        SprintConfig cfg = SprintConfig::parallelSprint(16, kFullPcm);
        cfg.activation_ramp = ramp_us * 1e-6 * 7e-4;  // time-scaled
        const RunResult r = runSprint(prog, cfg);
        t.startRow();
        t.cell(ramp_us >= 1000.0
                   ? Table::formatNumber(ramp_us / 1000.0, 2) + " ms"
                   : Table::formatNumber(ramp_us, 0) + " us");
        t.cell(base.task_time / r.task_time, 2);
        t.cell(100.0 * cfg.activation_ramp / r.task_time, 1);
    }
    t.print(std::cout);

    std::cout << "\npaper: the 128 us ramp needed for supply "
                 "integrity costs a negligible share of a\nsub-second "
                 "sprint; only ramps orders of magnitude longer erode "
                 "the speedup.\n";
    return 0;
}
