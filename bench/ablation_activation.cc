/**
 * @file
 * Ablation (paper Section 5.3): the effect of the core-activation
 * ramp length on sprint responsiveness. At the paper's 128 us the
 * impact is negligible against sub-second sprints; the sweep shows
 * where a ramp would start to matter. Ramp lengths are quoted at
 * physical scale and applied through the same time scaling as the
 * thermal capacitances (see EXPERIMENTS.md).
 *
 * The baseline and every ramp point run concurrently on an
 * ExperimentRunner.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "sprint/runner.hh"
#include "sprint/simulation.hh"
#include "workloads/workload.hh"

using namespace csprint;

int
main()
{
    std::cout << "Ablation: activation-ramp length vs sprint speedup "
                 "(sobel, size B, 16 cores)\n\n";

    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::B, 42);
    const std::vector<double> ramps_us = {0.0, 128.0, 1280.0, 12800.0,
                                          128000.0};
    std::vector<Seconds> ramps_scaled; // physical us -> time-scaled s
    for (const double ramp_us : ramps_us)
        ramps_scaled.push_back(ramp_us * 1e-6 * 7e-4);

    // Job 0 is the non-sprint baseline; jobs 1.. are the ramp sweep.
    std::vector<std::function<RunResult()>> jobs;
    jobs.emplace_back(
        [&prog] { return runSprint(prog, SprintConfig::baseline()); });
    for (const Seconds ramp : ramps_scaled) {
        jobs.emplace_back([&prog, ramp] {
            SprintConfig cfg = SprintConfig::parallelSprint(16, kFullPcm);
            cfg.activation_ramp = ramp;
            return runSprint(prog, cfg);
        });
    }

    ExperimentRunner runner;
    const std::vector<RunResult> results = runner.map(jobs);
    const RunResult &base = results[0];

    Table t("speedup vs physical ramp length");
    t.setHeader({"ramp (physical)", "speedup", "ramp share of task"});
    for (std::size_t i = 0; i < ramps_us.size(); ++i) {
        const double ramp_us = ramps_us[i];
        const RunResult &r = results[i + 1];
        const Seconds ramp = ramps_scaled[i];
        t.startRow();
        t.cell(ramp_us >= 1000.0
                   ? Table::formatNumber(ramp_us / 1000.0, 2) + " ms"
                   : Table::formatNumber(ramp_us, 0) + " us");
        t.cell(base.task_time / r.task_time, 2);
        t.cell(100.0 * ramp / r.task_time, 1);
    }
    t.print(std::cout);

    std::cout << "\npaper: the 128 us ramp needed for supply "
                 "integrity costs a negligible share of a\nsub-second "
                 "sprint; only ramps orders of magnitude longer erode "
                 "the speedup.\n";
    return 0;
}
