/**
 * @file
 * Table 1 reproduction: the parallel kernel suite, augmented with the
 * measured op mix and footprint of each simulated program (validating
 * that the op streams carry the structure the paper describes).
 */

#include <iostream>

#include "common/table.hh"
#include "workloads/workload.hh"

using namespace csprint;

int
main()
{
    std::cout << "Table 1: parallel kernels used in the evaluation\n\n";

    Table t("kernel suite");
    t.setHeader({"kernel", "description", "parallelization"});
    for (const auto &info : kernelTable()) {
        t.startRow();
        t.cell(info.name);
        t.cell(info.description);
        t.cell(info.parallelization);
    }
    t.print(std::cout);

    std::cout << "\n";
    Table mix("measured op mix of the simulated programs (size B)");
    mix.setHeader({"kernel", "total ops", "% load", "% store",
                   "% int", "% fp", "% branch", "phases"});
    for (KernelId id : allKernels()) {
        const ParallelProgram prog =
            buildKernelProgram(id, InputSize::B, 42);
        std::uint64_t counts[kNumOpKinds] = {0};
        std::uint64_t total = 0;
        for (const auto &phase : prog.phases()) {
            for (std::size_t task = 0; task < phase.num_tasks;
                 ++task) {
                auto s = phase.make_task(task);
                MicroOp op;
                while (s->next(op)) {
                    ++counts[static_cast<std::size_t>(op.kind())];
                    ++total;
                }
            }
        }
        auto pct = [&](OpKind k) {
            return 100.0 * counts[static_cast<std::size_t>(k)] /
                   static_cast<double>(total);
        };
        mix.startRow();
        mix.cell(kernelName(id));
        mix.cell(static_cast<long long>(total));
        mix.cell(pct(OpKind::Load), 1);
        mix.cell(pct(OpKind::Store), 1);
        mix.cell(pct(OpKind::IntAlu), 1);
        mix.cell(pct(OpKind::FpAlu), 1);
        mix.cell(pct(OpKind::Branch), 1);
        mix.cell(static_cast<long long>(prog.phases().size()));
    }
    mix.print(std::cout);
    return 0;
}
