/**
 * @file
 * Figure 2 reproduction: cores active, cumulative computation, and
 * temperature over time for (a) sustained execution, (b) sprint
 * execution, and (c) sprint augmented with phase-change material,
 * all completing the same fixed amount of work.
 */

#include <iostream>

#include "common/table.hh"
#include "thermal/transients.hh"

using namespace csprint;

namespace {

void
printTrace(const char *title, const ModeTrace &trace)
{
    Table t(title);
    t.setHeader({"time (s)", "cores", "cumulative work", "temp (C)"});
    const TimeSeries cores = trace.cores_active.decimate(12);
    for (std::size_t i = 0; i < cores.size(); ++i) {
        const double when = cores.timeAt(i);
        t.startRow();
        t.cell(when, 2);
        t.cell(static_cast<long long>(cores.valueAt(i)));
        // Align the other series on the decimated sample times.
        const auto &work = trace.cumulative_work;
        const auto &temp = trace.junction_temp;
        std::size_t j = 0;
        while (j + 1 < work.size() && work.timeAt(j) < when)
            ++j;
        t.cell(work.valueAt(j), 2);
        t.cell(temp.valueAt(j), 1);
    }
    t.print(std::cout);
    std::cout << "completion time: "
              << Table::formatNumber(trace.completion_time, 2)
              << " s\n\n";
}

} // namespace

int
main()
{
    std::cout << "Figure 2: sprinting operation modes "
                 "(fixed task of 4 core-seconds, 1 W cores)\n\n";

    const double work = 4.0;
    const auto sustained =
        runModeTrace(MobilePackageParams::phoneNoPcm(), work, 1, 1.0);
    const auto sprint =
        runModeTrace(MobilePackageParams::phoneNoPcm(), work, 16, 1.0);
    const auto augmented =
        runModeTrace(MobilePackageParams::phonePcm(), work, 16, 1.0);

    printTrace("(a) sustained execution: one core", sustained);
    printTrace("(b) sprint execution: 16 cores, no PCM", sprint);
    printTrace("(c) augmented sprint: 16 cores + PCM", augmented);

    std::cout << "speedup of (b) over (a): "
              << Table::formatNumber(sustained.completion_time /
                                         sprint.completion_time,
                                     2)
              << "x\n";
    std::cout << "speedup of (c) over (a): "
              << Table::formatNumber(sustained.completion_time /
                                         augmented.completion_time,
                                     2)
              << "x\n";
    std::cout << "\npaper: the augmented sprint completes far more of "
                 "the task inside the sprint window\n";
    return 0;
}
