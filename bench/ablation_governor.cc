/**
 * @file
 * Ablation (paper Section 7): the activity-based budget governor
 * versus a ground-truth thermometer, across governor margins. The
 * activity estimate must trigger close to the thermometer while
 * never letting the junction exceed its limit.
 *
 * The thermometer reference and every margin point run concurrently
 * on an ExperimentRunner.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "sprint/governor.hh"
#include "sprint/runner.hh"
#include "thermal/package.hh"

using namespace csprint;

namespace {

struct Outcome
{
    Seconds trigger = 0.0;
    Celsius peak = 0.0;
};

Outcome
runGovernor(const GovernorConfig &cfg, Watts power)
{
    MobilePackageModel pkg(MobilePackageParams::phonePcm());
    SprintGovernor gov(cfg, pkg);
    Outcome out;
    Seconds t = 0.0;
    while (t < 10.0) {
        if (gov.onSample(1e-3, power * 1e-3) !=
            GovernorAction::Continue)
            break;
        t += 1e-3;
    }
    // Simulate the post-signal migration: power falls to 1 W.
    for (int i = 0; i < 2000; ++i)
        gov.onSample(1e-3, 1e-3);
    out.trigger = t;
    out.peak = gov.peakJunction();
    return out;
}

} // namespace

int
main()
{
    std::cout << "Ablation: activity-estimate governor vs ground-truth "
                 "thermometer (16 W sprint)\n\n";

    const std::vector<double> margins = {0.02, 0.05, 0.10, 0.20};

    // Job 0 is the thermometer reference; jobs 1.. sweep the margin.
    std::vector<std::function<Outcome()>> jobs;
    jobs.emplace_back([] {
        GovernorConfig thermo;
        thermo.use_activity_estimate = false;
        return runGovernor(thermo, 16.0);
    });
    for (const double margin : margins) {
        jobs.emplace_back([margin] {
            GovernorConfig cfg;
            cfg.margin = margin;
            return runGovernor(cfg, 16.0);
        });
    }

    ExperimentRunner runner;
    const std::vector<Outcome> results = runner.map(jobs);
    const Outcome &truth = results[0];

    Table t("trigger time and peak junction temperature");
    t.setHeader({"governor", "margin", "trigger (s)",
                 "vs thermometer", "peak Tj (C)"});
    t.startRow();
    t.cell("thermometer (1 C guard)");
    t.cell("-");
    t.cell(truth.trigger, 3);
    t.cell(1.0, 2);
    t.cell(truth.peak, 1);

    for (std::size_t i = 0; i < margins.size(); ++i) {
        const Outcome &o = results[i + 1];
        t.startRow();
        t.cell("activity estimate");
        t.cell(margins[i], 2);
        t.cell(o.trigger, 3);
        t.cell(o.trigger / truth.trigger, 2);
        t.cell(o.peak, 1);
    }
    t.print(std::cout);

    std::cout << "\nLarger margins trade sprint length for safety "
                 "margin below the 70 C limit;\nthe activity estimate "
                 "brackets the thermometer without a temperature "
                 "sensor in the\nloop (paper Section 7's "
                 "\"activity-based mechanism\").\n";
    return 0;
}
