/**
 * @file
 * Machine-readable report for the Scenario engine, written to
 * BENCH_scenarios.json (schema documented in PERF.md, "The scenario
 * engine").
 *
 * Three sections, the first two of which are acceptance gates the
 * tool enforces itself (non-zero exit on failure):
 *
 *  1. parity — a single back-to-back task under the greedy policy
 *     must reproduce the direct runSprint() result *bit-for-bit* on
 *     the fig07 configurations (16-core sobel-B, 1.5 mg and 150 mg
 *     design points): every scalar, every stat, every trace sample.
 *     The Scenario engine is the same prepareMachine/samplePump
 *     composition runSprint uses, so any divergence is a bug.
 *
 *  2. bursty_showcase — a burst train on a mid-size PCM design point
 *     must exhibit >= 2 distinct sprint/rest cycles with the PCM
 *     melting during bursts and refreezing in the gaps (the paper's
 *     Section 3 sprint-and-rest signature on the live coupled loop).
 *
 *  3. sweep — policy x arrival-pattern x PCM-mass grid reporting the
 *     sustained-vs-burst tradeoff: utilization, p50/p95 task response
 *     time, sprints granted/denied/exhausted, hardware throttles,
 *     peak junction, melt cycles.
 *
 *   ./scenario_report [--out BENCH_scenarios.json] [--tasks N]
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "sprint/experiment.hh"
#include "sprint/runner.hh"
#include "sprint/scenario.hh"
#include "workloads/workload.hh"

using namespace csprint;

namespace {

/** Exact (bit-for-bit) equality of two coupled-run results. */
bool
exactSameRun(const RunResult &a, const RunResult &b, std::string &why)
{
    auto fail = [&why](const char *what) {
        why = what;
        return false;
    };
    if (a.machine.cycles != b.machine.cycles)
        return fail("machine.cycles");
    if (a.machine.ops_retired != b.machine.ops_retired)
        return fail("machine.ops_retired");
    if (a.machine.ops_by_kind != b.machine.ops_by_kind)
        return fail("machine.ops_by_kind");
    if (a.machine.idle_cycles != b.machine.idle_cycles)
        return fail("machine.idle_cycles");
    if (a.machine.sleep_cycles != b.machine.sleep_cycles)
        return fail("machine.sleep_cycles");
    if (a.machine.barrier_arrivals != b.machine.barrier_arrivals)
        return fail("machine.barrier_arrivals");
    if (a.machine.l1_hits != b.machine.l1_hits)
        return fail("machine.l1_hits");
    if (a.machine.l1_misses != b.machine.l1_misses)
        return fail("machine.l1_misses");
    if (a.machine.dynamic_energy != b.machine.dynamic_energy)
        return fail("machine.dynamic_energy");
    if (a.task_time != b.task_time)
        return fail("task_time");
    if (a.dynamic_energy != b.dynamic_energy)
        return fail("dynamic_energy");
    if (a.peak_junction != b.peak_junction)
        return fail("peak_junction");
    if (a.final_melt_fraction != b.final_melt_fraction)
        return fail("final_melt_fraction");
    if (a.sprint_exhausted != b.sprint_exhausted)
        return fail("sprint_exhausted");
    if (a.hardware_throttled != b.hardware_throttled)
        return fail("hardware_throttled");
    if (a.sprint_duration != b.sprint_duration)
        return fail("sprint_duration");
    if (a.sprint_energy != b.sprint_energy)
        return fail("sprint_energy");
    if (a.cooldown_estimate != b.cooldown_estimate)
        return fail("cooldown_estimate");
    if (a.avg_power != b.avg_power)
        return fail("avg_power");
    const TimeSeries *ta[] = {&a.junction_trace, &a.power_trace,
                              &a.melt_trace};
    const TimeSeries *tb[] = {&b.junction_trace, &b.power_trace,
                              &b.melt_trace};
    const char *names[] = {"junction_trace", "power_trace",
                           "melt_trace"};
    for (int k = 0; k < 3; ++k) {
        if (ta[k]->size() != tb[k]->size())
            return fail(names[k]);
        for (std::size_t i = 0; i < ta[k]->size(); ++i) {
            if (ta[k]->timeAt(i) != tb[k]->timeAt(i) ||
                ta[k]->valueAt(i) != tb[k]->valueAt(i))
                return fail(names[k]);
        }
    }
    return true;
}

/** One parity point: greedy-through-scenario vs direct runSprint. */
bool
checkParityPoint(Grams pcm, std::string &why)
{
    ScenarioConfig scfg;
    scfg.platform = SprintConfig::parallelSprint(16, pcm);
    scfg.policy.kind = SprintPolicyKind::GreedyActivity;
    scfg.pattern = ArrivalPattern::BackToBack;
    scfg.num_tasks = 1;
    scfg.kernel = KernelId::Sobel;
    scfg.size = InputSize::B;
    scfg.seed = 42;
    const ScenarioResult s = runScenario(scfg);

    const ParallelProgram prog =
        buildKernelProgram(KernelId::Sobel, InputSize::B, 42);
    const RunResult direct =
        runSprint(prog, SprintConfig::parallelSprint(16, pcm));
    return exactSameRun(s.tasks.at(0).run, direct, why);
}

/** The burst-train showcase: melt/refreeze cycles on a 15 mg point. */
ScenarioResult
runBurstyShowcase(int tasks)
{
    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(16, 0.015);
    cfg.policy.kind = SprintPolicyKind::GreedyActivity;
    cfg.pattern = ArrivalPattern::Bursty;
    cfg.num_tasks = tasks;
    cfg.burst_size = 2;
    cfg.period = 3e-3;
    cfg.kernel = KernelId::Sobel;
    cfg.size = InputSize::B;
    cfg.tail_rest = 3e-3;
    return runScenario(cfg);
}

void
emitScenario(std::ostream &out, const std::string &indent,
             const ScenarioResult &s)
{
    out << indent << "\"tasks\": " << s.tasks.size() << ",\n"
        << indent << "\"sprints_granted\": " << s.sprints_granted
        << ",\n"
        << indent << "\"sprints_denied\": " << s.sprints_denied << ",\n"
        << indent << "\"sprints_exhausted\": " << s.sprints_exhausted
        << ",\n"
        << indent << "\"hardware_throttles\": " << s.hardware_throttles
        << ",\n"
        << indent << "\"utilization\": " << s.utilization << ",\n"
        << indent << "\"p50_response_s\": " << s.p50_response << ",\n"
        << indent << "\"p95_response_s\": " << s.p95_response << ",\n"
        << indent << "\"makespan_s\": " << s.makespan << ",\n"
        << indent << "\"peak_junction_c\": " << s.peak_junction << ",\n"
        << indent << "\"total_energy_j\": " << s.total_energy << ",\n"
        << indent << "\"sprint_time_s\": " << s.total_sprint_time
        << ",\n"
        << indent << "\"peak_melt_fraction\": "
        << (s.melt_trace.empty() ? 0.0 : s.melt_trace.maxValue())
        << ",\n"
        << indent << "\"sprint_rest_cycles\": " << s.sprint_rest_cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"out", "tasks"});
    const std::string out_path = args.get("out", "BENCH_scenarios.json");
    const int tasks = static_cast<int>(args.getDouble("tasks", 6));

    // --- Gate 1: greedy-through-scenario == runSprint, bit-for-bit.
    bool parity_ok = true;
    std::string parity_why;
    for (Grams pcm : {kSmallPcm, kFullPcm}) {
        std::string why;
        if (!checkParityPoint(pcm, why)) {
            parity_ok = false;
            parity_why = why;
            std::cerr << "parity MISMATCH at pcm " << pcm << " g: "
                      << why << "\n";
        }
    }
    std::cout << "greedy scenario vs runSprint parity: "
              << (parity_ok ? "exact" : "MISMATCH") << "\n";

    // --- Gate 2: bursty melt/refreeze cycles.
    const ScenarioResult bursty = runBurstyShowcase(tasks);
    std::cout << "bursty showcase: " << bursty.sprint_rest_cycles
              << " sprint/rest cycles, peak melt "
              << (bursty.melt_trace.empty()
                      ? 0.0
                      : bursty.melt_trace.maxValue())
              << ", peak junction " << bursty.peak_junction << " C\n";

    // --- Section 3: the policy x pattern x PCM sweep.
    const std::vector<Grams> pcm_points = {kSmallPcm, kFullPcm};
    const std::vector<ArrivalPattern> patterns = {
        ArrivalPattern::Periodic,
        ArrivalPattern::Bursty,
        ArrivalPattern::BackToBack,
    };
    std::vector<ScenarioConfig> sweep;
    for (SprintPolicyKind kind : allSprintPolicyKinds()) {
        for (ArrivalPattern pattern : patterns) {
            for (Grams pcm : pcm_points) {
                ScenarioConfig cfg;
                cfg.platform = SprintConfig::parallelSprint(16, pcm);
                cfg.policy.kind = kind;
                cfg.policy.pacing_period = 2.5e-3;
                cfg.pattern = pattern;
                cfg.num_tasks = tasks;
                cfg.period = 2.5e-3;
                cfg.burst_size = 2;
                cfg.kernel = KernelId::Sobel;
                cfg.size = InputSize::A;
                sweep.push_back(cfg);
            }
        }
    }
    ExperimentRunner runner;
    const std::vector<ScenarioResult> results =
        runner.runScenarioBatch(sweep);

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "FAIL: cannot open " << out_path
                  << " for writing\n";
        return 1;
    }
    out.precision(6);
    out << "{\n"
        << "  \"schema\": \"csprint-scenario-bench-v1\",\n"
        << "  \"units\": {\"time\": \"time-scaled seconds (scale 7e-4, "
           "see EXPERIMENTS.md)\"},\n"
        << "  \"parity\": {\n"
        << "    \"runs\": \"fig07 sobel-B 16-core, 1.5 mg and 150 mg "
           "design points; single back-to-back task, greedy policy, "
           "vs direct runSprint\",\n"
        << "    \"exact\": " << (parity_ok ? "true" : "false");
    if (!parity_ok)
        out << ",\n    \"first_mismatch\": \"" << parity_why << "\"";
    out << "\n  },\n"
        << "  \"bursty_showcase\": {\n"
        << "    \"config\": \"greedy policy, 15 mg PCM, sobel-B, "
        << tasks << " tasks in bursts of 2 every 3 ms scaled\",\n";
    emitScenario(out, "    ", bursty);
    out << "\n  },\n"
        << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioConfig &cfg = sweep[i];
        out << "    {\n"
            << "      \"policy\": \""
            << sprintPolicyKindName(cfg.policy.kind) << "\",\n"
            << "      \"pattern\": \""
            << arrivalPatternName(cfg.pattern) << "\",\n"
            << "      \"pcm_mg\": "
            << cfg.platform.package.pcm_mass * 1000.0 /
                   kDefaultTimeScale
            << ",\n";
        emitScenario(out, "      ", results[i]);
        out << "\n    }" << (i + 1 < results.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n"
        << "}\n";

    std::cout << "sweep: " << results.size()
              << " scenarios; wrote " << out_path << "\n";

    if (!parity_ok) {
        std::cerr << "FAIL: scenario engine diverged from runSprint\n";
        return 1;
    }
    if (bursty.sprint_rest_cycles < 2) {
        std::cerr << "FAIL: bursty showcase produced "
                  << bursty.sprint_rest_cycles
                  << " sprint/rest cycles (need >= 2)\n";
        return 1;
    }
    return 0;
}
