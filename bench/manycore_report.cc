/**
 * @file
 * Machine-readable report for the many-core machine work, written to
 * BENCH_manycore.json (schema documented in PERF.md, "Many-core
 * machine").
 *
 * Four sections, each an acceptance gate the tool enforces itself
 * (non-zero exit on failure):
 *
 *  1. fig10_manycore — the Figure 10 core-count sweep extended past
 *     the old 64-core directory cap: parallel-sprint speedup over the
 *     single-core baseline at 16/64/256/1024 cores. Gate: every width
 *     completes with retired ops and the 256-core sprint beats the
 *     baseline.
 *
 *  2. sparse_parity — a 256-core coupled sprint under the sparse
 *     (limited-pointer + overflow) directory against DirectoryKind::
 *     FullMap, bit-for-bit across stats, energy, and the junction
 *     trace.
 *
 *  3. dispatch_parity — a 16-core coupled sprint with 1/2/8 host
 *     dispatch threads, bit-for-bit against the serial loop.
 *
 *  4. dispatch_speedup — wall-clock of the raw machine event loop
 *     with 8 dispatch threads vs 1 on a probe-heavy 16-core run. The
 *     >= 2x gate is enforced only when the host exposes >= 8 hardware
 *     threads (CI containers with 1 CPU cannot speed anything up);
 *     bit parity between the timed runs is enforced unconditionally.
 *
 *   ./manycore_report [--out BENCH_manycore.json]
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/args.hh"
#include "sprint/experiment.hh"
#include "sprint/simulation.hh"
#include "workloads/workload.hh"

using namespace csprint;

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** Bit-for-bit equality of two coupled runs, traces included. */
bool
exactSameRun(const RunResult &a, const RunResult &b, std::string &why)
{
    auto fail = [&why](const char *what) {
        why = what;
        return false;
    };
    if (a.machine.cycles != b.machine.cycles)
        return fail("cycles");
    if (a.machine.ops_retired != b.machine.ops_retired)
        return fail("ops_retired");
    if (a.machine.ops_by_kind != b.machine.ops_by_kind)
        return fail("ops_by_kind");
    if (a.machine.idle_cycles != b.machine.idle_cycles)
        return fail("idle_cycles");
    if (a.machine.l1_hits != b.machine.l1_hits)
        return fail("l1_hits");
    if (a.machine.l1_misses != b.machine.l1_misses)
        return fail("l1_misses");
    if (a.machine.dynamic_energy != b.machine.dynamic_energy)
        return fail("dynamic_energy");
    if (a.task_time != b.task_time)
        return fail("task_time");
    if (a.dynamic_energy != b.dynamic_energy)
        return fail("run dynamic_energy");
    if (a.peak_junction != b.peak_junction)
        return fail("peak_junction");
    if (a.sprint_exhausted != b.sprint_exhausted)
        return fail("sprint_exhausted");
    if (a.hardware_throttled != b.hardware_throttled)
        return fail("hardware_throttled");
    if (a.junction_trace.size() != b.junction_trace.size())
        return fail("junction_trace size");
    for (std::size_t i = 0; i < a.junction_trace.size(); ++i) {
        if (a.junction_trace.timeAt(i) != b.junction_trace.timeAt(i) ||
            a.junction_trace.valueAt(i) != b.junction_trace.valueAt(i))
            return fail("junction_trace");
    }
    return true;
}

/** One timed raw-machine run (no thermal coupling). */
struct MachineRun
{
    double ms = 0.0;
    MachineStats stats;
};

MachineRun
timedMachineRun(const ParallelProgram &prog, SprintConfig cfg,
                int dispatch_threads)
{
    cfg.machine.dispatch_threads = dispatch_threads;
    std::unique_ptr<Machine> machine = prepareMachine(prog, cfg);
    const auto t0 = Clock::now();
    machine->run();
    const auto t1 = Clock::now();
    MachineRun r;
    r.ms = elapsedMs(t0, t1);
    r.stats = machine->stats();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"out"});
    const std::string out_path = args.get("out", "BENCH_manycore.json");

    // --- Gate 1: Figure 10 sweep past the 64-core cap. --------------
    ExperimentSpec base_spec;
    base_spec.kernel = KernelId::Sobel;
    base_spec.size = InputSize::B;
    base_spec.time_scale = 1e-2;
    const RunResult base = runBaselineExperiment(base_spec);

    const std::vector<int> widths = {16, 64, 256, 1024};
    std::vector<double> sweep_speedup;
    std::vector<std::uint64_t> sweep_ops;
    bool sweep_ok = true;
    for (int cores : widths) {
        ExperimentSpec spec = base_spec;
        spec.cores = cores;
        const RunResult run = runParallelSprintExperiment(spec);
        const double sp = speedupOver(base, run);
        sweep_speedup.push_back(sp);
        sweep_ops.push_back(run.machine.ops_retired);
        if (run.machine.ops_retired == 0)
            sweep_ok = false;
        std::cout << "fig10 manycore: " << cores << " cores, speedup "
                  << sp << "x, " << run.machine.ops_retired
                  << " ops\n";
    }
    if (sweep_speedup[2] <= 1.0)  // 256 cores must beat the baseline
        sweep_ok = false;
    if (!sweep_ok)
        std::cerr << "fig10 manycore sweep FAIL\n";

    // --- Gate 2: sparse directory == full map at 256 cores. ---------
    bool sparse_ok = true;
    std::string sparse_why;
    {
        const ParallelProgram prog =
            buildKernelProgram(KernelId::Sobel, InputSize::B, 42);
        SprintConfig cfg =
            SprintConfig::parallelSprint(256, kFullPcm, 1e-2);
        const RunResult sparse = runSprint(prog, cfg);
        cfg.machine.l2.directory = DirectoryKind::FullMap;
        const RunResult fullmap = runSprint(prog, cfg);
        sparse_ok = exactSameRun(sparse, fullmap, sparse_why);
        std::cout << "sparse directory parity (256 cores): "
                  << (sparse_ok ? "exact" : "MISMATCH: " + sparse_why)
                  << "\n";
    }

    // --- Gate 3: parallel dispatch == serial, 1/2/8 threads. --------
    bool dispatch_ok = true;
    std::string dispatch_why;
    {
        ExperimentSpec spec;
        spec.kernel = KernelId::Sobel;
        spec.size = InputSize::A;
        spec.cores = 16;
        const RunResult serial = runParallelSprintExperiment(spec);
        for (int threads : {2, 8}) {
            ExperimentSpec par = spec;
            par.dispatch_threads = threads;
            const RunResult run = runParallelSprintExperiment(par);
            std::string why;
            if (!exactSameRun(serial, run, why)) {
                dispatch_ok = false;
                dispatch_why =
                    std::to_string(threads) + " threads: " + why;
                std::cerr << "dispatch parity MISMATCH ("
                          << dispatch_why << ")\n";
            }
        }
        std::cout << "dispatch parity (16 cores, 1/2/8 threads): "
                  << (dispatch_ok ? "exact" : "MISMATCH") << "\n";
    }

    // --- Gate 4: event-loop wall-clock with 8 dispatch lanes. -------
    const unsigned hw = std::thread::hardware_concurrency();
    const bool speedup_gated = hw >= 8;
    bool speedup_ok = true;
    double serial_ms = 0.0;
    double parallel_ms = 0.0;
    double dispatch_speedup = 0.0;
    {
        const ParallelProgram prog =
            buildKernelProgram(KernelId::Sobel, InputSize::C, 42);
        const SprintConfig cfg =
            SprintConfig::parallelSprint(16, kFullPcm, 1e-2);
        timedMachineRun(prog, cfg, 1);  // warm the page cache / JIT-ish
        const MachineRun serial = timedMachineRun(prog, cfg, 1);
        const MachineRun parallel = timedMachineRun(prog, cfg, 8);
        serial_ms = serial.ms;
        parallel_ms = parallel.ms;
        dispatch_speedup = serial.ms / parallel.ms;
        // Parity between the timed runs is unconditional.
        if (serial.stats.cycles != parallel.stats.cycles ||
            serial.stats.ops_retired != parallel.stats.ops_retired ||
            serial.stats.dynamic_energy !=
                parallel.stats.dynamic_energy) {
            dispatch_ok = false;
            dispatch_why = "timed-run stats diverged";
            std::cerr << "dispatch parity MISMATCH (timed runs)\n";
        }
        if (speedup_gated && dispatch_speedup < 2.0)
            speedup_ok = false;
        std::cout << "dispatch speedup (16 cores, sobel-C): serial "
                  << serial_ms << " ms, 8 lanes " << parallel_ms
                  << " ms, " << dispatch_speedup << "x ("
                  << hw << " hw threads, gate "
                  << (speedup_gated ? "enforced" : "advisory") << ")"
                  << (speedup_ok ? "" : "  FAIL (< 2x)") << "\n";
    }

    // --- Emit the report. -------------------------------------------
    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "FAIL: cannot open " << out_path
                  << " for writing\n";
        return 1;
    }
    out.precision(6);
    out << "{\n"
        << "  \"schema\": \"csprint-manycore-bench-v1\",\n"
        << "  \"fig10_manycore\": {\n"
        << "    \"config\": \"sobel-B, time scale 1e-2, parallel "
           "sprint vs 1-core baseline\",\n"
        << "    \"cores\": [16, 64, 256, 1024],\n"
        << "    \"speedup\": [" << sweep_speedup[0] << ", "
        << sweep_speedup[1] << ", " << sweep_speedup[2] << ", "
        << sweep_speedup[3] << "],\n"
        << "    \"ops_retired\": [" << sweep_ops[0] << ", "
        << sweep_ops[1] << ", " << sweep_ops[2] << ", " << sweep_ops[3]
        << "],\n"
        << "    \"pass\": " << (sweep_ok ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"sparse_parity\": {\n"
        << "    \"config\": \"256-core sobel-B coupled sprint, sparse "
           "vs full-map directory\",\n"
        << "    \"exact\": " << (sparse_ok ? "true" : "false");
    if (!sparse_ok)
        out << ",\n    \"first_mismatch\": \"" << sparse_why << "\"";
    out << "\n  },\n"
        << "  \"dispatch_parity\": {\n"
        << "    \"config\": \"16-core sobel-A coupled sprint, 1/2/8 "
           "dispatch threads + timed raw runs\",\n"
        << "    \"exact\": " << (dispatch_ok ? "true" : "false");
    if (!dispatch_ok)
        out << ",\n    \"first_mismatch\": \"" << dispatch_why << "\"";
    out << "\n  },\n"
        << "  \"dispatch_speedup\": {\n"
        << "    \"config\": \"raw 16-core sobel-C event loop, 8 "
           "dispatch lanes vs serial\",\n"
        << "    \"serial_ms\": " << serial_ms << ",\n"
        << "    \"parallel_ms\": " << parallel_ms << ",\n"
        << "    \"speedup\": " << dispatch_speedup << ",\n"
        << "    \"budget_speedup\": 2.0,\n"
        << "    \"hardware_threads\": " << hw << ",\n"
        << "    \"gate_enforced\": "
        << (speedup_gated ? "true" : "false") << ",\n"
        << "    \"pass\": " << (speedup_ok ? "true" : "false") << "\n"
        << "  }\n"
        << "}\n";
    std::cout << "wrote " << out_path << "\n";

    if (!sweep_ok) {
        std::cerr << "FAIL: many-core fig10 sweep\n";
        return 1;
    }
    if (!sparse_ok) {
        std::cerr << "FAIL: sparse directory diverged from full map\n";
        return 1;
    }
    if (!dispatch_ok) {
        std::cerr << "FAIL: parallel dispatch diverged from serial\n";
        return 1;
    }
    if (!speedup_ok) {
        std::cerr << "FAIL: dispatch speedup below 2x\n";
        return 1;
    }
    return 0;
}
