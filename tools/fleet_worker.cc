/**
 * @file
 * csprint-fleet-worker: the per-shard-range worker process of the
 * fleet driver (sprint/fleet.hh). The parent fork/execs one of these
 * per shard range; all logic lives in fleetWorkerMain so the library
 * and its tests share it.
 */

#include "sprint/fleet.hh"

int
main(int argc, char **argv)
{
    return csprint::fleetWorkerMain(argc, argv);
}
