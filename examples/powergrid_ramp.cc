/**
 * @file
 * Power-grid ramp explorer: find the shortest core-activation ramp
 * that keeps the supply within tolerance on the Figure 5 network —
 * the engineering question behind paper Section 5's 128 us answer.
 *
 *   ./powergrid_ramp --cores 16 --tolerance 0.02
 */

#include <iostream>

#include "common/args.hh"
#include "common/table.hh"
#include "powergrid/pdn.hh"

using namespace csprint;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"cores", "tolerance"});
    const int cores = static_cast<int>(args.getInt("cores", 16));
    const double tol = args.getDouble("tolerance", 0.02);

    PdnParams params = PdnParams::paper16();
    params.num_cores = cores;

    std::cout << "activation-ramp exploration: " << cores
              << " cores, +/-" << tol * 100.0 << "% tolerance on "
              << params.vdd << " V\n\n";

    Table t("ramp sweep");
    t.setHeader({"ramp (us)", "min V", "undershoot (mV)",
                 "within tolerance?"});

    const Seconds t0 = 5e-6;
    Seconds best_ramp = -1.0;
    for (double ramp_us :
         {0.0, 1.28, 5.0, 16.0, 48.0, 128.0, 256.0}) {
        const ActivationSchedule sched =
            ramp_us == 0.0
                ? ActivationSchedule::abrupt(t0)
                : ActivationSchedule::linearRamp(ramp_us * 1e-6, t0);
        PowerDeliveryNetwork pdn(params, sched);
        const Seconds window = std::max(120e-6, ramp_us * 1e-6 * 2.5);
        const SupplyTrace trace =
            pdn.simulate(window, 2e-9, window / 300.0);
        const SupplyMetrics m =
            computeSupplyMetrics(trace, params.vdd, tol, t0);
        t.startRow();
        t.cell(ramp_us, 2);
        t.cell(m.min_voltage, 4);
        t.cell((params.vdd - m.min_voltage) * 1e3, 1);
        t.cell(m.within_tolerance ? "yes" : "NO");
        if (m.within_tolerance && best_ramp < 0.0)
            best_ramp = ramp_us * 1e-6;
    }
    t.print(std::cout);

    if (best_ramp >= 0.0) {
        std::cout << "\nshortest in-tolerance ramp in this sweep: "
                  << best_ramp * 1e6 << " us";
        std::cout << "  (paper: 128 us is safe; the delay is "
                     "negligible against sub-second sprints)\n";
    } else {
        std::cout << "\nno ramp in this sweep met the tolerance\n";
    }
    return 0;
}
