/**
 * @file
 * Quickstart: build a sprint-enabled platform, run one kernel under
 * the three execution modes of the paper, and print the comparison.
 *
 *   ./quickstart --kernel sobel --size B --cores 16
 */

#include <iostream>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sprint/experiment.hh"
#include "sprint/simulation.hh"
#include "workloads/workload.hh"

using namespace csprint;

namespace {

KernelId
kernelFromName(const std::string &name)
{
    for (KernelId id : allKernels()) {
        if (kernelName(id) == name)
            return id;
    }
    SPRINT_FATAL("unknown kernel '", name,
                 "' (try sobel, feature, kmeans, disparity, texture, "
                 "segment)");
}

InputSize
sizeFromName(const std::string &name)
{
    if (name == "A")
        return InputSize::A;
    if (name == "B")
        return InputSize::B;
    if (name == "C")
        return InputSize::C;
    if (name == "D")
        return InputSize::D;
    SPRINT_FATAL("unknown input size '", name, "' (A-D)");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"kernel", "size", "cores", "seed"});
    const KernelId kernel =
        kernelFromName(args.get("kernel", "sobel"));
    const InputSize size = sizeFromName(args.get("size", "B"));
    const int cores = static_cast<int>(args.getInt("cores", 16));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 42));

    std::cout << "computational sprinting quickstart: "
              << kernelName(kernel) << ", input size "
              << inputSizeName(size) << ", " << cores
              << " sprint cores\n\n";

    const ParallelProgram program =
        buildKernelProgram(kernel, size, seed);

    const RunResult base =
        runSprint(program, SprintConfig::baseline());
    const RunResult par = runSprint(
        program, SprintConfig::parallelSprint(cores, kFullPcm));
    const RunResult dvfs = runSprint(
        program, SprintConfig::dvfsSprint(kPowerHeadroom, kFullPcm));

    Table t("execution modes");
    t.setHeader({"mode", "response time (ms)", "speedup",
                 "energy (mJ)", "peak Tj (C)", "exhausted?"});
    auto row = [&](const char *mode, const RunResult &r) {
        t.startRow();
        t.cell(mode);
        t.cell(r.task_time * 1e3, 3);
        t.cell(base.task_time / r.task_time, 2);
        t.cell(r.dynamic_energy * 1e3, 3);
        t.cell(r.peak_junction, 1);
        t.cell(r.sprint_exhausted ? "yes" : "no");
    };
    row("sustained (1 core)", base);
    row("parallel sprint", par);
    row("DVFS sprint", dvfs);
    t.print(std::cout);

    std::cout << "\nsprint duration "
              << Table::formatNumber(par.sprint_duration * 1e3, 3)
              << " ms; estimated cooldown before the next sprint "
              << Table::formatNumber(par.cooldown_estimate * 1e3, 1)
              << " ms\n";
    return 0;
}
