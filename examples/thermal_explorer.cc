/**
 * @file
 * Thermal design-space explorer: sweep PCM mass and melting point and
 * report sustainable TDP, maximum sprint power, sprint duration at
 * 16 W, and cooldown — the trade-offs of paper Section 4.
 *
 * Every sweep point owns its package model, so both sweeps fan out
 * across an ExperimentRunner.
 *
 *   ./thermal_explorer --power 16
 */

#include <functional>
#include <iostream>
#include <vector>

#include "common/args.hh"
#include "common/table.hh"
#include "sprint/runner.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"

using namespace csprint;

namespace {

/** One row of the PCM-mass sweep. */
struct MassRow
{
    Joules budget = 0.0;
    Seconds time_to_limit = 0.0;
    Seconds plateau = 0.0;
    Seconds cooldown = 0.0;
};

/** One row of the melt-point sweep. */
struct MeltRow
{
    Watts sustainable_tdp = 0.0;
    Watts max_sprint_power = 0.0;
    Seconds time_to_limit = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"power"});
    const double sprint_power = args.getDouble("power", 16.0);

    std::cout << "thermal design-space exploration at "
              << sprint_power << " W sprint power\n\n";

    ExperimentRunner runner;

    const std::vector<double> masses_mg = {0.0,   15.0,  75.0,
                                           150.0, 300.0, 600.0};
    std::vector<std::function<MassRow()>> mass_jobs;
    for (const double mg : masses_mg) {
        mass_jobs.emplace_back([mg, sprint_power] {
            MobilePackageModel pkg(
                MobilePackageParams::phonePcm(mg * 1e-3));
            MassRow row;
            const auto tr =
                runSprintTransient(pkg, sprint_power, 20.0, 1e-3);
            row.time_to_limit = tr.time_to_limit;
            row.plateau = tr.plateau_duration;
            const TimeSeries cool = runCooldownTransient(pkg, 120.0, 0.1);
            const auto near =
                cool.firstTimeBelow(pkg.params().ambient + 5.0);
            row.cooldown = near ? *near : 120.0;
            // As in the original driver: the budget column reports the
            // recovered budget after the sprint plus 120 s cooldown.
            row.budget = pkg.sprintEnergyBudget();
            return row;
        });
    }
    const std::vector<MassRow> mass_rows = runner.map(mass_jobs);

    Table mass_sweep("PCM mass sweep (melt point 60 C)");
    mass_sweep.setHeader({"PCM mass (mg)", "budget (J)",
                          "sprint duration (s)", "plateau (s)",
                          "cooldown to +5C (s)"});
    for (std::size_t i = 0; i < masses_mg.size(); ++i) {
        const MassRow &row = mass_rows[i];
        mass_sweep.startRow();
        mass_sweep.cell(masses_mg[i], 0);
        mass_sweep.cell(row.budget, 1);
        mass_sweep.cell(row.time_to_limit, 2);
        mass_sweep.cell(row.plateau, 2);
        mass_sweep.cell(row.cooldown, 1);
    }
    mass_sweep.print(std::cout);

    std::cout << "\n";
    const std::vector<double> melts = {40.0, 50.0, 60.0, 65.0};
    std::vector<std::function<MeltRow()>> melt_jobs;
    for (const double melt : melts) {
        melt_jobs.emplace_back([melt, sprint_power] {
            MobilePackageParams params = MobilePackageParams::phonePcm();
            params.pcm_melt_temp = melt;
            MobilePackageModel pkg(params);
            MeltRow row;
            row.sustainable_tdp = pkg.sustainableTdp();
            row.max_sprint_power = pkg.maxSprintPower();
            row.time_to_limit =
                runSprintTransient(pkg, sprint_power, 20.0, 1e-3)
                    .time_to_limit;
            return row;
        });
    }
    const std::vector<MeltRow> melt_rows = runner.map(melt_jobs);

    Table melt_sweep("melt-point sweep (150 mg PCM)");
    melt_sweep.setHeader({"melt point (C)", "sustainable TDP (W)",
                          "max sprint power (W)",
                          "sprint duration (s)"});
    for (std::size_t i = 0; i < melts.size(); ++i) {
        const MeltRow &row = melt_rows[i];
        melt_sweep.startRow();
        melt_sweep.cell(melts[i], 0);
        melt_sweep.cell(row.sustainable_tdp, 2);
        melt_sweep.cell(row.max_sprint_power, 1);
        melt_sweep.cell(row.time_to_limit, 2);
    }
    melt_sweep.print(std::cout);

    std::cout << "\nHigher melt points raise the sustainable budget "
                 "and accelerate cooling (larger\ngradient to "
                 "ambient) but cut the margin to the junction limit, "
                 "reducing the\nmaximum sprint intensity (paper "
                 "Sections 4.4-4.5).\n";
    return 0;
}
