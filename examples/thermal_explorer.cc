/**
 * @file
 * Thermal design-space explorer: sweep PCM mass and melting point and
 * report sustainable TDP, maximum sprint power, sprint duration at
 * 16 W, and cooldown — the trade-offs of paper Section 4.
 *
 *   ./thermal_explorer --power 16
 */

#include <iostream>

#include "common/args.hh"
#include "common/table.hh"
#include "thermal/package.hh"
#include "thermal/transients.hh"

using namespace csprint;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"power"});
    const double sprint_power = args.getDouble("power", 16.0);

    std::cout << "thermal design-space exploration at "
              << sprint_power << " W sprint power\n\n";

    Table mass_sweep("PCM mass sweep (melt point 60 C)");
    mass_sweep.setHeader({"PCM mass (mg)", "budget (J)",
                          "sprint duration (s)", "plateau (s)",
                          "cooldown to +5C (s)"});
    for (double mg : {0.0, 15.0, 75.0, 150.0, 300.0, 600.0}) {
        MobilePackageModel pkg(
            MobilePackageParams::phonePcm(mg * 1e-3));
        const auto tr =
            runSprintTransient(pkg, sprint_power, 20.0, 1e-3);
        const TimeSeries cool = runCooldownTransient(pkg, 120.0, 0.1);
        const auto near =
            cool.firstTimeBelow(pkg.params().ambient + 5.0);
        mass_sweep.startRow();
        mass_sweep.cell(mg, 0);
        mass_sweep.cell(pkg.sprintEnergyBudget(), 1);
        mass_sweep.cell(tr.time_to_limit, 2);
        mass_sweep.cell(tr.plateau_duration, 2);
        mass_sweep.cell(near ? *near : 120.0, 1);
    }
    mass_sweep.print(std::cout);

    std::cout << "\n";
    Table melt_sweep("melt-point sweep (150 mg PCM)");
    melt_sweep.setHeader({"melt point (C)", "sustainable TDP (W)",
                          "max sprint power (W)",
                          "sprint duration (s)"});
    for (double melt : {40.0, 50.0, 60.0, 65.0}) {
        MobilePackageParams params = MobilePackageParams::phonePcm();
        params.pcm_melt_temp = melt;
        MobilePackageModel pkg(params);
        const auto tr =
            runSprintTransient(pkg, sprint_power, 20.0, 1e-3);
        melt_sweep.startRow();
        melt_sweep.cell(melt, 0);
        melt_sweep.cell(pkg.sustainableTdp(), 2);
        melt_sweep.cell(pkg.maxSprintPower(), 1);
        melt_sweep.cell(tr.time_to_limit, 2);
    }
    melt_sweep.print(std::cout);

    std::cout << "\nHigher melt points raise the sustainable budget "
                 "and accelerate cooling (larger\ngradient to "
                 "ambient) but cut the margin to the junction limit, "
                 "reducing the\nmaximum sprint intensity (paper "
                 "Sections 4.4-4.5).\n";
    return 0;
}
