/**
 * @file
 * Camera-based visual search, the motivating application of the
 * paper's introduction: a user takes photos; for each one the device
 * sprints through SURF-style feature extraction, transmits a compact
 * descriptor vector, then must cool before the next sprint. The
 * example walks a burst of photos through the sprint/cooldown pacing
 * loop and reports per-photo responsiveness.
 *
 *   ./camera_search --photos 4 --gap 5
 */

#include <iostream>

#include "common/args.hh"
#include "common/table.hh"
#include "sprint/experiment.hh"
#include "sprint/simulation.hh"
#include "workloads/feature.hh"

using namespace csprint;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv, {"photos", "gap", "cores"});
    const int photos = static_cast<int>(args.getInt("photos", 4));
    const double gap = args.getDouble("gap", 5.0);  // s between shots
    const int cores = static_cast<int>(args.getInt("cores", 16));

    std::cout << "camera-based visual search: " << photos
              << " photos, " << gap << " s apart, " << cores
              << "-core sprints\n\n";

    // Feature extraction on each photo (different seed per shot).
    const SprintConfig sprint_cfg =
        SprintConfig::parallelSprint(cores, kFullPcm);
    const SprintConfig base_cfg = SprintConfig::baseline();

    Table t("per-photo responsiveness");
    t.setHeader({"photo", "keypoints", "sprint (ms)", "1-core (ms)",
                 "speedup", "cooldown need (ms)", "ready for next?"});

    for (int p = 0; p < photos; ++p) {
        FeatureConfig fcfg =
            FeatureConfig::forSize(InputSize::B, 1000 + p);
        const FeatureResult ref = featureReference(fcfg);
        const ParallelProgram prog = featureProgram(fcfg);

        const RunResult sprint = runSprint(prog, sprint_cfg);
        const RunResult base = runSprint(prog, base_cfg);

        // The device is ready for the next shot when the estimated
        // cooldown fits inside the user's think time.
        const bool ready = sprint.cooldown_estimate < gap;

        t.startRow();
        t.cell(static_cast<long long>(p + 1));
        t.cell(static_cast<long long>(ref.keypoints.size()));
        t.cell(sprint.task_time * 1e3, 2);
        t.cell(base.task_time * 1e3, 2);
        t.cell(base.task_time / sprint.task_time, 2);
        t.cell(sprint.cooldown_estimate * 1e3, 1);
        t.cell(ready ? "yes" : "NO (pace sprints)");
    }
    t.print(std::cout);

    std::cout << "\nSprinting turns a sluggish feature-extraction "
                 "pass into a sub-interactive burst;\nthe cooldown "
                 "estimate (sprint time x sprint power / TDP, paper "
                 "Section 4.5) bounds\nhow often the user can "
                 "re-trigger full-intensity sprints.\n";
    return 0;
}
