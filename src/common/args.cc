#include "common/args.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace csprint {

ArgParser::ArgParser(int argc, const char *const *argv,
                     const std::vector<std::string> &known)
{
    auto is_known = [&](const std::string &name) {
        return std::find(known.begin(), known.end(), name) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            extras.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string name = arg;
        std::string value = "1";
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }
        if (!is_known(name))
            SPRINT_FATAL("unknown flag --", name);
        flags[name] = value;
    }
}

bool
ArgParser::has(const std::string &name) const
{
    return flags.count(name) != 0;
}

std::string
ArgParser::get(const std::string &name, const std::string &fallback) const
{
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
}

double
ArgParser::getDouble(const std::string &name, double fallback) const
{
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::strtod(it->second.c_str(),
                                                      nullptr);
}

long long
ArgParser::getInt(const std::string &name, long long fallback) const
{
    auto it = flags.find(name);
    return it == flags.end()
               ? fallback
               : std::strtoll(it->second.c_str(), nullptr, 10);
}

} // namespace csprint
