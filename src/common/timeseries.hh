/**
 * @file
 * Sampled time series with the analysis helpers the thermal and
 * power-grid experiments need (extrema, threshold crossings, settling
 * time, decimation for printing).
 */

#ifndef CSPRINT_COMMON_TIMESERIES_HH
#define CSPRINT_COMMON_TIMESERIES_HH

#include <cstddef>
#include <optional>
#include <vector>

namespace csprint {

/** A pair of parallel vectors: sample times and sample values. */
class TimeSeries
{
  public:
    /** Append one sample; times must be non-decreasing. */
    void add(double t, double v);

    /** Pre-size the storage for @p n total samples. */
    void reserve(std::size_t n);

    /**
     * Bulk-append every sample of @p src; @p src's first time must not
     * precede this series' last time. One ordering check at the seam
     * replaces the per-sample check of repeated add() calls.
     */
    void append(const TimeSeries &src);

    /** Number of samples. */
    std::size_t size() const { return times.size(); }

    /** True when no samples have been recorded. */
    bool empty() const { return times.empty(); }

    /** Sample time at index @p i. */
    double timeAt(std::size_t i) const { return times[i]; }

    /** Sample value at index @p i. */
    double valueAt(std::size_t i) const { return values[i]; }

    /** Last sample value; series must be non-empty. */
    double back() const;

    /** Smallest sample value; series must be non-empty. */
    double minValue() const;

    /** Largest sample value; series must be non-empty. */
    double maxValue() const;

    /**
     * First time the series rises to or above @p threshold
     * (linearly interpolated), if it ever does.
     */
    std::optional<double> firstTimeAbove(double threshold) const;

    /**
     * First time the series falls to or below @p threshold
     * (linearly interpolated), if it ever does.
     */
    std::optional<double> firstTimeBelow(double threshold) const;

    /**
     * Earliest time T such that every sample at or after T stays within
     * +/- @p tolerance of the final sample value. Returns the first
     * sample time when the series never leaves the band.
     */
    std::optional<double> settlingTime(double tolerance) const;

    /** Total time the series spends at or above @p threshold. */
    double timeAbove(double threshold) const;

    /**
     * Reduce to at most @p max_points samples (uniform stride) for
     * compact printing. The final sample is always retained.
     */
    TimeSeries decimate(std::size_t max_points) const;

    /** Direct access to sample times. */
    const std::vector<double> &timeData() const { return times; }

    /** Direct access to sample values. */
    const std::vector<double> &valueData() const { return values; }

  private:
    friend struct CheckpointIO;

    std::vector<double> times;
    std::vector<double> values;
};

/**
 * A bounded-memory trace recorder: stores at most @p capacity samples
 * however many are offered. When the buffer fills, every other stored
 * sample is dropped and the recording stride doubles, so the retained
 * samples always cover the whole offered timeline at uniform (power-of-
 * two) decimation — a "decimated ring" rather than a most-recent ring.
 * Memory is O(capacity) regardless of stream length.
 */
class DecimatingTrace
{
  public:
    /** Record into a buffer of at most @p capacity samples (>= 2). */
    explicit DecimatingTrace(std::size_t capacity = 4096);

    /** Offer one sample; stored iff it lands on the current stride. */
    void add(double t, double v);

    /** Samples offered so far (stored or skipped). */
    std::size_t offered() const { return offered_; }

    /** Current decimation stride (1 until the first compaction). */
    std::size_t stride() const { return stride_; }

    /** The retained samples. */
    const TimeSeries &series() const { return ts; }

    /** Move the retained samples out; the recorder resets. */
    TimeSeries take();

  private:
    friend struct CheckpointIO;

    TimeSeries ts;
    std::size_t cap;
    std::size_t stride_ = 1;
    std::size_t next_store_ = 0; ///< absolute offered index stored next
    std::size_t offered_ = 0;
};

} // namespace csprint

#endif // CSPRINT_COMMON_TIMESERIES_HH
