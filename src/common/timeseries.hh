/**
 * @file
 * Sampled time series with the analysis helpers the thermal and
 * power-grid experiments need (extrema, threshold crossings, settling
 * time, decimation for printing).
 */

#ifndef CSPRINT_COMMON_TIMESERIES_HH
#define CSPRINT_COMMON_TIMESERIES_HH

#include <cstddef>
#include <optional>
#include <vector>

namespace csprint {

/** A pair of parallel vectors: sample times and sample values. */
class TimeSeries
{
  public:
    /** Append one sample; times must be non-decreasing. */
    void add(double t, double v);

    /** Number of samples. */
    std::size_t size() const { return times.size(); }

    /** True when no samples have been recorded. */
    bool empty() const { return times.empty(); }

    /** Sample time at index @p i. */
    double timeAt(std::size_t i) const { return times[i]; }

    /** Sample value at index @p i. */
    double valueAt(std::size_t i) const { return values[i]; }

    /** Last sample value; series must be non-empty. */
    double back() const;

    /** Smallest sample value; series must be non-empty. */
    double minValue() const;

    /** Largest sample value; series must be non-empty. */
    double maxValue() const;

    /**
     * First time the series rises to or above @p threshold
     * (linearly interpolated), if it ever does.
     */
    std::optional<double> firstTimeAbove(double threshold) const;

    /**
     * First time the series falls to or below @p threshold
     * (linearly interpolated), if it ever does.
     */
    std::optional<double> firstTimeBelow(double threshold) const;

    /**
     * Earliest time T such that every sample at or after T stays within
     * +/- @p tolerance of the final sample value. Returns the first
     * sample time when the series never leaves the band.
     */
    std::optional<double> settlingTime(double tolerance) const;

    /** Total time the series spends at or above @p threshold. */
    double timeAbove(double threshold) const;

    /**
     * Reduce to at most @p max_points samples (uniform stride) for
     * compact printing. The final sample is always retained.
     */
    TimeSeries decimate(std::size_t max_points) const;

    /** Direct access to sample times. */
    const std::vector<double> &timeData() const { return times; }

    /** Direct access to sample values. */
    const std::vector<double> &valueData() const { return values; }

  private:
    std::vector<double> times;
    std::vector<double> values;
};

} // namespace csprint

#endif // CSPRINT_COMMON_TIMESERIES_HH
