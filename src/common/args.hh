/**
 * @file
 * Minimal command-line flag parsing for the example programs.
 *
 * Supports --name=value and --name value forms plus boolean switches.
 * Unknown flags are fatal (per the fatal/panic convention these are the
 * user's fault, not the library's).
 */

#ifndef CSPRINT_COMMON_ARGS_HH
#define CSPRINT_COMMON_ARGS_HH

#include <map>
#include <string>
#include <vector>

namespace csprint {

/** Parsed command line: flag map plus positional arguments. */
class ArgParser
{
  public:
    /** Parse argv; @p known lists the accepted flag names (no "--"). */
    ArgParser(int argc, const char *const *argv,
              const std::vector<std::string> &known);

    /** True when --name was given. */
    bool has(const std::string &name) const;

    /** String value for --name, or @p fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback) const;

    /** Numeric value for --name, or @p fallback when absent. */
    double getDouble(const std::string &name, double fallback) const;

    /** Integer value for --name, or @p fallback when absent. */
    long long getInt(const std::string &name, long long fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return extras; }

  private:
    std::map<std::string, std::string> flags;
    std::vector<std::string> extras;
};

} // namespace csprint

#endif // CSPRINT_COMMON_ARGS_HH
