#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace csprint {

Table::Table(std::string title) : title(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> names)
{
    header = std::move(names);
}

void
Table::startRow()
{
    rows.emplace_back();
}

void
Table::cell(const std::string &text)
{
    SPRINT_ASSERT(!rows.empty(), "cell() before startRow()");
    rows.back().push_back(text);
}

void
Table::cell(const char *text)
{
    cell(std::string(text));
}

void
Table::cell(double value, int precision)
{
    cell(formatNumber(value, precision));
}

void
Table::cell(long long value)
{
    cell(std::to_string(value));
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
Table::formatNumber(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header);
    for (const auto &row : rows)
        widen(row);

    if (!title.empty())
        os << "== " << title << " ==\n";

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string text = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << text;
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << "\n";
    };

    if (!header.empty()) {
        emit(header);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w;
        total += 2 * (widths.empty() ? 0 : widths.size() - 1);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows)
        emit(row);
}

} // namespace csprint
