/**
 * @file
 * Streaming summary statistics.
 */

#ifndef CSPRINT_COMMON_STATS_HH
#define CSPRINT_COMMON_STATS_HH

#include <array>
#include <cstddef>
#include <limits>

namespace csprint {

/**
 * Welford-style running summary: count, mean, variance, min, max.
 *
 * Numerically stable for long streams; O(1) memory.
 */
class RunningStat
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    /** Number of samples folded in so far. */
    std::size_t count() const { return n; }

    /** Mean of the samples (0 when empty). */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance (0 when fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen (+inf when empty). */
    double min() const { return lo; }

    /** Largest sample seen (-inf when empty). */
    double max() const { return hi; }

    /** Sum of all samples. */
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double total = 0.0;
};

/**
 * P-squared (P²) streaming quantile estimator (Jain & Chlamtac 1985):
 * five markers track the running @p q quantile with O(1) memory and
 * O(1) work per sample. Exact for the first five samples; thereafter
 * the markers move by piecewise-parabolic interpolation.
 *
 * Value-semantic (plain doubles), so an estimator can be snapshotted
 * into a checkpoint and resumed by copy.
 */
class P2Quantile
{
  public:
    /**
     * Number of doubles save()/restore() exchange: the tracked
     * quantile, the sample count, and the four marker arrays.
     */
    static constexpr std::size_t kStateSize = 22;

    /** Track the @p q quantile, q in (0, 1). */
    explicit P2Quantile(double q = 0.5);

    /** Fold one sample into the estimate. */
    void add(double x);

    /**
     * Fold another estimator of the SAME quantile into this one, so
     * per-shard streaming estimates combine into a fleet-level one
     * (sprint/fleet.hh). Small estimators (five or fewer samples)
     * still hold their raw samples and merge exactly; beyond that the
     * other's five markers are folded in as count-weighted samples —
     * an approximation, but a deterministic one: equal inputs merged
     * in equal order yield bit-equal state, which is what the
     * multi-process fleet parity gate needs. Merge order shifts the
     * estimate only within the estimator's own accuracy (property-
     * tested in tests/fleet_test.cc); count() is exact regardless.
     */
    void merge(const P2Quantile &other);

    /** Current estimate (exact when five or fewer samples). */
    double value() const;

    /** Number of samples folded in so far. */
    std::size_t count() const { return n; }

    /** The quantile being tracked. */
    double quantile() const { return q_; }

    /**
     * Dump the whole estimator into @p out (kStateSize doubles), for
     * embedding into flat checkpoint vectors (SprintPolicy::saveState).
     */
    void save(double *out) const;

    /** Restore exactly what save() produced. */
    void restore(const double *in);

  private:
    friend struct CheckpointIO;

    /** One interior-marker adjustment sweep; true when any marker moved. */
    bool adjustMarkers();

    /** Fold @p x in as @p w identical samples (requires n >= 5). */
    void addWeighted(double x, std::size_t w);

    double q_;
    std::size_t n = 0;
    std::array<double, 5> height{};   ///< marker heights (sorted)
    std::array<double, 5> pos{};      ///< actual marker positions
    std::array<double, 5> desired{};  ///< desired marker positions
    std::array<double, 5> rate{};     ///< desired-position increments
};

} // namespace csprint

#endif // CSPRINT_COMMON_STATS_HH
