/**
 * @file
 * Streaming summary statistics.
 */

#ifndef CSPRINT_COMMON_STATS_HH
#define CSPRINT_COMMON_STATS_HH

#include <cstddef>
#include <limits>

namespace csprint {

/**
 * Welford-style running summary: count, mean, variance, min, max.
 *
 * Numerically stable for long streams; O(1) memory.
 */
class RunningStat
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    /** Number of samples folded in so far. */
    std::size_t count() const { return n; }

    /** Mean of the samples (0 when empty). */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance (0 when fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen (+inf when empty). */
    double min() const { return lo; }

    /** Largest sample seen (-inf when empty). */
    double max() const { return hi; }

    /** Sum of all samples. */
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double total = 0.0;
};

} // namespace csprint

#endif // CSPRINT_COMMON_STATS_HH
