#include "common/timeseries.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

void
TimeSeries::add(double t, double v)
{
    SPRINT_ASSERT(times.empty() || t >= times.back(),
                  "time series must be sampled in order");
    times.push_back(t);
    values.push_back(v);
}

void
TimeSeries::reserve(std::size_t n)
{
    times.reserve(n);
    values.reserve(n);
}

void
TimeSeries::append(const TimeSeries &src)
{
    if (src.times.empty())
        return;
    SPRINT_ASSERT(times.empty() || src.times.front() >= times.back(),
                  "appended series starts before this one ends");
    times.insert(times.end(), src.times.begin(), src.times.end());
    values.insert(values.end(), src.values.begin(), src.values.end());
}

double
TimeSeries::back() const
{
    SPRINT_ASSERT(!values.empty(), "back() on empty series");
    return values.back();
}

double
TimeSeries::minValue() const
{
    SPRINT_ASSERT(!values.empty(), "minValue() on empty series");
    return *std::min_element(values.begin(), values.end());
}

double
TimeSeries::maxValue() const
{
    SPRINT_ASSERT(!values.empty(), "maxValue() on empty series");
    return *std::max_element(values.begin(), values.end());
}

namespace {

/** Interpolate the crossing time between two bracketing samples. */
double
interpolateCrossing(double t0, double v0, double t1, double v1,
                    double threshold)
{
    if (v1 == v0)
        return t1;
    const double frac = (threshold - v0) / (v1 - v0);
    return t0 + frac * (t1 - t0);
}

} // namespace

std::optional<double>
TimeSeries::firstTimeAbove(double threshold) const
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] >= threshold) {
            if (i == 0)
                return times[0];
            return interpolateCrossing(times[i - 1], values[i - 1],
                                       times[i], values[i], threshold);
        }
    }
    return std::nullopt;
}

std::optional<double>
TimeSeries::firstTimeBelow(double threshold) const
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] <= threshold) {
            if (i == 0)
                return times[0];
            return interpolateCrossing(times[i - 1], values[i - 1],
                                       times[i], values[i], threshold);
        }
    }
    return std::nullopt;
}

std::optional<double>
TimeSeries::settlingTime(double tolerance) const
{
    if (values.empty())
        return std::nullopt;
    const double target = values.back();
    // Walk backwards to find the last sample outside the band.
    for (std::size_t i = values.size(); i-- > 0;) {
        if (std::abs(values[i] - target) > tolerance) {
            if (i + 1 < times.size())
                return times[i + 1];
            return times[i];
        }
    }
    return times.front();
}

double
TimeSeries::timeAbove(double threshold) const
{
    double total = 0.0;
    for (std::size_t i = 1; i < values.size(); ++i) {
        const double dt = times[i] - times[i - 1];
        const bool above0 = values[i - 1] >= threshold;
        const bool above1 = values[i] >= threshold;
        if (above0 && above1) {
            total += dt;
        } else if (above0 != above1) {
            const double tc =
                interpolateCrossing(times[i - 1], values[i - 1], times[i],
                                    values[i], threshold);
            total += above0 ? (tc - times[i - 1]) : (times[i] - tc);
        }
    }
    return total;
}

TimeSeries
TimeSeries::decimate(std::size_t max_points) const
{
    TimeSeries out;
    if (times.empty() || max_points == 0)
        return out;
    if (times.size() <= max_points)
        return *this;
    const std::size_t stride =
        (times.size() + max_points - 1) / max_points;
    for (std::size_t i = 0; i < times.size(); i += stride)
        out.add(times[i], values[i]);
    if (out.times.back() != times.back())
        out.add(times.back(), values.back());
    return out;
}

DecimatingTrace::DecimatingTrace(std::size_t capacity)
    : cap(capacity < 2 ? 2 : capacity)
{
    // Storage is reserved on first use: default-constructed recorders
    // (e.g. in a trace sink running in full-trace mode) cost nothing.
}

void
DecimatingTrace::add(double t, double v)
{
    const std::size_t idx = offered_++;
    if (idx != next_store_)
        return;
    if (ts.size() == 0)
        ts.reserve(cap);
    if (ts.size() == cap) {
        // Compact: keep every other stored sample, so the retained
        // samples stay on the uniform grid {0, s, 2s, ...} of the
        // doubled stride s.
        TimeSeries kept;
        kept.reserve(cap);
        for (std::size_t i = 0; i < ts.size(); i += 2)
            kept.add(ts.timeAt(i), ts.valueAt(i));
        const std::size_t kept_count = kept.size();
        ts = std::move(kept);
        stride_ *= 2;
        next_store_ = stride_ * kept_count;
        if (idx != next_store_)
            return;
    }
    ts.add(t, v);
    next_store_ = idx + stride_;
}

TimeSeries
DecimatingTrace::take()
{
    TimeSeries out = std::move(ts);
    ts = TimeSeries();
    stride_ = 1;
    next_store_ = 0;
    offered_ = 0;
    return out;
}

} // namespace csprint
