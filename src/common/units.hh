/**
 * @file
 * Unit aliases and physical constants used throughout the library.
 *
 * Quantities are plain doubles in SI base units with descriptive type
 * aliases; the aliases document intent at API boundaries without the
 * overhead of a full strong-typing layer. Helper constants cover the
 * prefixes this library actually needs.
 */

#ifndef CSPRINT_COMMON_UNITS_HH
#define CSPRINT_COMMON_UNITS_HH

#include <cstdint>

namespace csprint {

using Seconds = double;        ///< time [s]
using Hertz = double;          ///< frequency [1/s]
using Watts = double;          ///< power [W]
using Joules = double;         ///< energy [J]
using Kelvin = double;         ///< absolute temperature or delta [K]
using Celsius = double;        ///< temperature [degrees C]
using Volts = double;          ///< electric potential [V]
using Amps = double;           ///< current [A]
using Ohms = double;           ///< resistance [Ohm]
using Farads = double;         ///< capacitance [F]
using Henries = double;        ///< inductance [H]
using KelvinPerWatt = double;  ///< thermal resistance [K/W]
using JoulesPerKelvin = double;///< thermal capacitance [J/K]
using Grams = double;          ///< mass [g]
using Meters = double;         ///< length [m]
using Cycles = std::uint64_t;  ///< clock cycles at a core's frequency

namespace units {

constexpr double kilo = 1e3;
constexpr double mega = 1e6;
constexpr double giga = 1e9;
constexpr double milli = 1e-3;
constexpr double micro = 1e-6;
constexpr double nano = 1e-9;
constexpr double pico = 1e-12;
constexpr double femto = 1e-15;

/** Absolute-zero offset for Celsius <-> Kelvin conversion. */
constexpr double zeroCelsiusInKelvin = 273.15;

} // namespace units

/** Convert a Celsius reading to Kelvin. */
constexpr Kelvin
celsiusToKelvin(Celsius c)
{
    return c + units::zeroCelsiusInKelvin;
}

/** Convert a Kelvin reading to Celsius. */
constexpr Celsius
kelvinToCelsius(Kelvin k)
{
    return k - units::zeroCelsiusInKelvin;
}

/** Convert cycles at a given clock to seconds. */
constexpr Seconds
cyclesToSeconds(Cycles cycles, Hertz clock)
{
    return static_cast<double>(cycles) / clock;
}

/** Convert seconds to (truncated) cycles at a given clock. */
constexpr Cycles
secondsToCycles(Seconds s, Hertz clock)
{
    return static_cast<Cycles>(s * clock);
}

} // namespace csprint

#endif // CSPRINT_COMMON_UNITS_HH
