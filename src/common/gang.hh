/**
 * @file
 * A reusable fork/join worker gang: N lanes that repeatedly execute
 * one callable in parallel and barrier before run() returns. Built for
 * the machine's parallel event-loop dispatch (archsim cannot depend on
 * the sprint runtime's job-queue pool), but generic: lane 0 runs on
 * the calling thread, lanes 1..N-1 on host threads that persist across
 * run() calls, so a hot loop pays two condvar handoffs per fork rather
 * than a thread spawn.
 *
 * run() is not reentrant and the gang must not be shared between
 * threads that fork concurrently; callers that multiplex machines over
 * a pool keep one gang per pool worker (ExperimentRunner does).
 */

#ifndef CSPRINT_COMMON_GANG_HH
#define CSPRINT_COMMON_GANG_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csprint {

class WorkerGang
{
  public:
    /** A gang of @p lanes lanes (clamped to >= 1). */
    explicit WorkerGang(int lanes);
    ~WorkerGang();

    WorkerGang(const WorkerGang &) = delete;
    WorkerGang &operator=(const WorkerGang &) = delete;

    /** Parallel width, including the caller's lane. */
    int lanes() const { return nlanes; }

    /**
     * Invoke @p fn(lane) once per lane in [0, lanes()) and wait for
     * every lane to finish. fn must partition its work by lane index;
     * a single-lane gang degenerates to a plain call.
     */
    void run(const std::function<void(int)> &fn);

  private:
    void workerLoop(int lane);

    int nlanes;
    std::vector<std::thread> members;
    std::mutex mu;
    std::condition_variable start_cv;
    std::condition_variable done_cv;
    const std::function<void(int)> *job = nullptr;
    std::uint64_t generation = 0;
    int outstanding = 0;
    bool stopping = false;
};

} // namespace csprint

#endif // CSPRINT_COMMON_GANG_HH
