#include "common/gang.hh"

namespace csprint {

WorkerGang::WorkerGang(int lanes) : nlanes(lanes < 1 ? 1 : lanes)
{
    members.reserve(static_cast<std::size_t>(nlanes - 1));
    for (int lane = 1; lane < nlanes; ++lane)
        members.emplace_back([this, lane] { workerLoop(lane); });
}

WorkerGang::~WorkerGang()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    start_cv.notify_all();
    for (auto &t : members)
        t.join();
}

void
WorkerGang::run(const std::function<void(int)> &fn)
{
    if (nlanes == 1) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu);
        job = &fn;
        outstanding = nlanes - 1;
        ++generation;
    }
    start_cv.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lk(mu);
    done_cv.wait(lk, [this] { return outstanding == 0; });
    job = nullptr;
}

void
WorkerGang::workerLoop(int lane)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu);
    while (true) {
        start_cv.wait(lk,
                      [&] { return stopping || generation != seen; });
        if (stopping)
            return;
        seen = generation;
        const std::function<void(int)> *fn = job;
        lk.unlock();
        (*fn)(lane);
        lk.lock();
        if (--outstanding == 0)
            done_cv.notify_one();
    }
}

} // namespace csprint
