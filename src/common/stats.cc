#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    if (x < lo)
        lo = x;
    if (x > hi)
        hi = x;
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

P2Quantile::P2Quantile(double q) : q_(q)
{
    SPRINT_ASSERT(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
}

void
P2Quantile::add(double x)
{
    if (n < 5) {
        // Bootstrap: collect the first five samples sorted.
        height[n] = x;
        ++n;
        std::sort(height.begin(), height.begin() + n);
        if (n == 5) {
            for (int i = 0; i < 5; ++i)
                pos[i] = static_cast<double>(i + 1);
            desired[0] = 1.0;
            desired[1] = 1.0 + 2.0 * q_;
            desired[2] = 1.0 + 4.0 * q_;
            desired[3] = 3.0 + 2.0 * q_;
            desired[4] = 5.0;
            rate[0] = 0.0;
            rate[1] = q_ / 2.0;
            rate[2] = q_;
            rate[3] = (1.0 + q_) / 2.0;
            rate[4] = 1.0;
        }
        return;
    }
    ++n;

    // Find the cell the sample falls into; clamp the extreme markers.
    int k;
    if (x < height[0]) {
        height[0] = x;
        k = 0;
    } else if (x >= height[4]) {
        height[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= height[k + 1])
            ++k;
    }
    for (int i = k + 1; i < 5; ++i)
        pos[i] += 1.0;
    for (int i = 0; i < 5; ++i)
        desired[i] += rate[i];

    adjustMarkers();
}

bool
P2Quantile::adjustMarkers()
{
    // Nudge the three interior markers toward their desired positions.
    bool moved = false;
    for (int i = 1; i <= 3; ++i) {
        const double d = desired[i] - pos[i];
        if ((d >= 1.0 && pos[i + 1] - pos[i] > 1.0) ||
            (d <= -1.0 && pos[i - 1] - pos[i] < -1.0)) {
            const double sign = d >= 1.0 ? 1.0 : -1.0;
            // Piecewise-parabolic (P²) height update.
            const double np = pos[i] + sign;
            const double hp =
                height[i] +
                sign / (pos[i + 1] - pos[i - 1]) *
                    ((pos[i] - pos[i - 1] + sign) *
                         (height[i + 1] - height[i]) /
                         (pos[i + 1] - pos[i]) +
                     (pos[i + 1] - pos[i] - sign) *
                         (height[i] - height[i - 1]) /
                         (pos[i] - pos[i - 1]));
            // Fall back to linear when the parabola leaves the bracket.
            if (hp > height[i - 1] && hp < height[i + 1]) {
                height[i] = hp;
            } else {
                const int j = sign > 0.0 ? i + 1 : i - 1;
                height[i] += sign * (height[j] - height[i]) /
                             (pos[j] - pos[i]);
            }
            pos[i] = np;
            moved = true;
        }
    }
    return moved;
}

void
P2Quantile::addWeighted(double x, std::size_t w)
{
    SPRINT_ASSERT(n >= 5, "weighted add requires a primed estimator");
    if (w == 0)
        return;
    const double dw = static_cast<double>(w);
    n += w;

    int k;
    if (x < height[0]) {
        height[0] = x;
        k = 0;
    } else if (x >= height[4]) {
        height[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= height[k + 1])
            ++k;
    }
    for (int i = k + 1; i < 5; ++i)
        pos[i] += dw;
    for (int i = 0; i < 5; ++i)
        desired[i] += rate[i] * dw;

    // A weight-w sample can leave markers several positions behind
    // their desired spots; sweep until they settle (each sweep moves
    // every eligible marker by one position, so w sweeps always
    // suffice — the cap only guards degenerate float states).
    for (std::size_t sweep = 0; sweep < w + 4; ++sweep) {
        if (!adjustMarkers())
            break;
    }
}

void
P2Quantile::merge(const P2Quantile &other)
{
    SPRINT_ASSERT(q_ == other.q_,
                  "cannot merge estimators of different quantiles");
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    if (other.n <= 5) {
        // The other side still holds its raw bootstrap samples.
        for (std::size_t i = 0; i < other.n; ++i)
            add(other.height[i]);
        return;
    }
    if (n <= 5) {
        // We hold raw samples, the other side is primed: fold our
        // samples into a copy of it instead (exact either way).
        P2Quantile merged = other;
        for (std::size_t i = 0; i < n; ++i)
            merged.add(height[i]);
        *this = merged;
        return;
    }
    // Both primed: the other's five markers summarize its whole
    // stream — fold them in as count-weighted samples, ascending, the
    // extra going to the median marker.
    const std::size_t base = other.n / 5;
    const std::size_t extra = other.n - base * 5;
    for (int i = 0; i < 5; ++i)
        addWeighted(other.height[i], base + (i == 2 ? extra : 0));
}

void
P2Quantile::save(double *out) const
{
    *out++ = q_;
    *out++ = static_cast<double>(n);
    for (int i = 0; i < 5; ++i)
        *out++ = height[i];
    for (int i = 0; i < 5; ++i)
        *out++ = pos[i];
    for (int i = 0; i < 5; ++i)
        *out++ = desired[i];
    for (int i = 0; i < 5; ++i)
        *out++ = rate[i];
}

void
P2Quantile::restore(const double *in)
{
    q_ = *in++;
    n = static_cast<std::size_t>(*in++);
    SPRINT_ASSERT(q_ > 0.0 && q_ < 1.0,
                  "restored quantile must be in (0, 1)");
    for (int i = 0; i < 5; ++i)
        height[i] = *in++;
    for (int i = 0; i < 5; ++i)
        pos[i] = *in++;
    for (int i = 0; i < 5; ++i)
        desired[i] = *in++;
    for (int i = 0; i < 5; ++i)
        rate[i] = *in++;
}

double
P2Quantile::value() const
{
    if (n == 0)
        return 0.0;
    if (n <= 5) {
        // Exact nearest-rank on the sorted bootstrap samples.
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(q_ * static_cast<double>(n)));
        return height[std::min(n - 1, rank > 0 ? rank - 1 : 0)];
    }
    return height[2];
}

} // namespace csprint
