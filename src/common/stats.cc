#include "common/stats.hh"

#include <cmath>

namespace csprint {

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    if (x < lo)
        lo = x;
    if (x > hi)
        hi = x;
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

} // namespace csprint
