#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    if (x < lo)
        lo = x;
    if (x > hi)
        hi = x;
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

P2Quantile::P2Quantile(double q) : q_(q)
{
    SPRINT_ASSERT(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
}

void
P2Quantile::add(double x)
{
    if (n < 5) {
        // Bootstrap: collect the first five samples sorted.
        height[n] = x;
        ++n;
        std::sort(height.begin(), height.begin() + n);
        if (n == 5) {
            for (int i = 0; i < 5; ++i)
                pos[i] = static_cast<double>(i + 1);
            desired[0] = 1.0;
            desired[1] = 1.0 + 2.0 * q_;
            desired[2] = 1.0 + 4.0 * q_;
            desired[3] = 3.0 + 2.0 * q_;
            desired[4] = 5.0;
            rate[0] = 0.0;
            rate[1] = q_ / 2.0;
            rate[2] = q_;
            rate[3] = (1.0 + q_) / 2.0;
            rate[4] = 1.0;
        }
        return;
    }
    ++n;

    // Find the cell the sample falls into; clamp the extreme markers.
    int k;
    if (x < height[0]) {
        height[0] = x;
        k = 0;
    } else if (x >= height[4]) {
        height[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= height[k + 1])
            ++k;
    }
    for (int i = k + 1; i < 5; ++i)
        pos[i] += 1.0;
    for (int i = 0; i < 5; ++i)
        desired[i] += rate[i];

    // Nudge the three interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
        const double d = desired[i] - pos[i];
        if ((d >= 1.0 && pos[i + 1] - pos[i] > 1.0) ||
            (d <= -1.0 && pos[i - 1] - pos[i] < -1.0)) {
            const double sign = d >= 1.0 ? 1.0 : -1.0;
            // Piecewise-parabolic (P²) height update.
            const double np = pos[i] + sign;
            const double hp =
                height[i] +
                sign / (pos[i + 1] - pos[i - 1]) *
                    ((pos[i] - pos[i - 1] + sign) *
                         (height[i + 1] - height[i]) /
                         (pos[i + 1] - pos[i]) +
                     (pos[i + 1] - pos[i] - sign) *
                         (height[i] - height[i - 1]) /
                         (pos[i] - pos[i - 1]));
            // Fall back to linear when the parabola leaves the bracket.
            if (hp > height[i - 1] && hp < height[i + 1]) {
                height[i] = hp;
            } else {
                const int j = sign > 0.0 ? i + 1 : i - 1;
                height[i] += sign * (height[j] - height[i]) /
                             (pos[j] - pos[i]);
            }
            pos[i] = np;
        }
    }
}

void
P2Quantile::save(double *out) const
{
    *out++ = q_;
    *out++ = static_cast<double>(n);
    for (int i = 0; i < 5; ++i)
        *out++ = height[i];
    for (int i = 0; i < 5; ++i)
        *out++ = pos[i];
    for (int i = 0; i < 5; ++i)
        *out++ = desired[i];
    for (int i = 0; i < 5; ++i)
        *out++ = rate[i];
}

void
P2Quantile::restore(const double *in)
{
    q_ = *in++;
    n = static_cast<std::size_t>(*in++);
    SPRINT_ASSERT(q_ > 0.0 && q_ < 1.0,
                  "restored quantile must be in (0, 1)");
    for (int i = 0; i < 5; ++i)
        height[i] = *in++;
    for (int i = 0; i < 5; ++i)
        pos[i] = *in++;
    for (int i = 0; i < 5; ++i)
        desired[i] = *in++;
    for (int i = 0; i < 5; ++i)
        rate[i] = *in++;
}

double
P2Quantile::value() const
{
    if (n == 0)
        return 0.0;
    if (n <= 5) {
        // Exact nearest-rank on the sorted bootstrap samples.
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(q_ * static_cast<double>(n)));
        return height[std::min(n - 1, rank > 0 ? rank - 1 : 0)];
    }
    return height[2];
}

} // namespace csprint
