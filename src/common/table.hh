/**
 * @file
 * Column-aligned plain-text table printer used by the benchmark harness
 * to emit paper-style rows and series.
 */

#ifndef CSPRINT_COMMON_TABLE_HH
#define CSPRINT_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace csprint {

/**
 * A simple table: set headers, append rows of cells, then print.
 *
 * Numeric convenience overloads format with a configurable precision.
 * Output is aligned with two-space gutters and an underline below the
 * header, suitable for terminals and for diffing in EXPERIMENTS.md.
 */
class Table
{
  public:
    /** Create a table titled @p title (title may be empty). */
    explicit Table(std::string title = "");

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> names);

    /** Begin a new row (cells are appended with cell()). */
    void startRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &text);

    /** Append a C-string cell to the current row. */
    void cell(const char *text);

    /** Append a formatted numeric cell to the current row. */
    void cell(double value, int precision = 3);

    /** Append an integer cell to the current row. */
    void cell(long long value);

    /** Append a whole row at once. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Format a double with fixed precision (shared helper). */
    static std::string formatNumber(double value, int precision = 3);

  private:
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace csprint

#endif // CSPRINT_COMMON_TABLE_HH
