/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (synthetic image content, task
 * weights, fault injection) flows through these generators so that every
 * simulation is reproducible from a single seed. SplitMix64 seeds
 * Xoshiro256**, the main generator.
 */

#ifndef CSPRINT_COMMON_RNG_HH
#define CSPRINT_COMMON_RNG_HH

#include <cstdint>

namespace csprint {

/** SplitMix64: tiny seeding generator (Steele et al.). */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64 pseudo-random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/** Xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna). */
class Rng
{
  public:
    /** Seed via SplitMix64 so any 64-bit seed yields a good state. */
    explicit Rng(std::uint64_t seed = 0x5eedf00dULL)
    {
        SplitMix64 sm(seed);
        for (auto &word : s)
            word = sm.next();
    }

    /** Next 64 pseudo-random bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound) without modulo bias for small bounds. */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection sampling on the top bits.
        const std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    friend struct CheckpointIO;

    std::uint64_t s[4];
};

} // namespace csprint

#endif // CSPRINT_COMMON_RNG_HH
