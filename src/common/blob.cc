#include "common/blob.hh"

#include <array>

namespace csprint {

const char *
CheckpointError::kindName(Kind kind)
{
    switch (kind) {
    case Kind::BadMagic:
        return "bad_magic";
    case Kind::BadVersion:
        return "bad_version";
    case Kind::BadDigest:
        return "bad_digest";
    case Kind::Truncated:
        return "truncated";
    case Kind::BadChecksum:
        return "bad_checksum";
    case Kind::Corrupt:
        return "corrupt";
    case Kind::Unsupported:
        return "unsupported";
    case Kind::Io:
        return "io";
    case Kind::Invariant:
        return "invariant";
    }
    return "unknown";
}

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::vector<std::uint8_t>
BlobContainer::seal(std::uint32_t configDigest,
                    std::vector<std::uint8_t> payload)
{
    BlobWriter head;
    head.u32(kMagic);
    head.u32(kVersion);
    head.u32(configDigest);
    head.u64(payload.size());

    const std::uint32_t crc = crc32(payload.data(), payload.size());

    std::vector<std::uint8_t> out = head.take();
    out.insert(out.end(), payload.begin(), payload.end());
    BlobWriter tail;
    tail.u32(crc);
    const auto &t = tail.buffer();
    out.insert(out.end(), t.begin(), t.end());
    return out;
}

BlobReader
BlobContainer::open(const std::vector<std::uint8_t> &blob,
                    std::uint32_t expectConfigDigest)
{
    BlobReader head(blob);
    const std::uint32_t magic = head.u32();
    if (magic != kMagic)
        throw CheckpointError(CheckpointError::Kind::BadMagic,
                              "not a checkpoint blob (bad magic)");
    const std::uint32_t version = head.u32();
    if (version != kVersion)
        throw CheckpointError(
            CheckpointError::Kind::BadVersion,
            "checkpoint format version " + std::to_string(version) +
                " not readable by this build (expect " +
                std::to_string(kVersion) + ")");
    const std::uint32_t digest = head.u32();
    if (digest != expectConfigDigest)
        throw CheckpointError(
            CheckpointError::Kind::BadDigest,
            "checkpoint config digest mismatch: blob was written "
            "under a different scenario configuration");
    const std::uint64_t payloadLen = head.u64();

    const std::size_t headerBytes = head.position();
    constexpr std::size_t kCrcBytes = 4;
    if (payloadLen > blob.size() - headerBytes ||
        blob.size() - headerBytes - payloadLen < kCrcBytes)
        throw CheckpointError(
            CheckpointError::Kind::Truncated,
            "checkpoint truncated: frame declares " +
                std::to_string(payloadLen) + " payload bytes, file has " +
                std::to_string(blob.size() - headerBytes) +
                " after the header");
    if (blob.size() != headerBytes + payloadLen + kCrcBytes)
        throw CheckpointError(
            CheckpointError::Kind::Corrupt,
            "checkpoint has trailing bytes past the CRC footer");

    const std::uint32_t storedCrc =
        static_cast<std::uint32_t>(blob[headerBytes + payloadLen]) |
        static_cast<std::uint32_t>(blob[headerBytes + payloadLen + 1])
            << 8 |
        static_cast<std::uint32_t>(blob[headerBytes + payloadLen + 2])
            << 16 |
        static_cast<std::uint32_t>(blob[headerBytes + payloadLen + 3])
            << 24;
    const std::uint32_t actualCrc =
        crc32(blob.data() + headerBytes,
              static_cast<std::size_t>(payloadLen));
    if (storedCrc != actualCrc)
        throw CheckpointError(
            CheckpointError::Kind::BadChecksum,
            "checkpoint payload CRC mismatch (torn write or bit rot)");

    return BlobReader(blob.data() + headerBytes,
                      static_cast<std::size_t>(payloadLen));
}

} // namespace csprint
