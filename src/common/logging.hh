/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 fatal/panic distinction: fatal() reports a condition
 * that is the caller's fault (bad configuration, invalid arguments) and
 * exits cleanly; panic() reports a broken internal invariant (a library
 * bug) and aborts so a core dump or debugger can inspect the state.
 */

#ifndef CSPRINT_COMMON_LOGGING_HH
#define CSPRINT_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace csprint {

/** Terminate with exit(1) after printing a user-facing error message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Abort after printing an internal-invariant violation. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

namespace detail {

/** Fold any set of streamable arguments into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

} // namespace csprint

/** Report a user error (bad config or arguments) and exit(1). */
#define SPRINT_FATAL(...)                                                    \
    ::csprint::fatalImpl(__FILE__, __LINE__,                                 \
                         ::csprint::detail::formatMessage(__VA_ARGS__))

/** Report a library bug (violated internal invariant) and abort(). */
#define SPRINT_PANIC(...)                                                    \
    ::csprint::panicImpl(__FILE__, __LINE__,                                 \
                         ::csprint::detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning. */
#define SPRINT_WARN(...)                                                     \
    ::csprint::warnImpl(__FILE__, __LINE__,                                  \
                        ::csprint::detail::formatMessage(__VA_ARGS__))

/** Panic unless an internal invariant holds. */
#define SPRINT_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SPRINT_PANIC("assertion failed: " #cond " ",                     \
                         ::csprint::detail::formatMessage(__VA_ARGS__));     \
        }                                                                    \
    } while (0)

#endif // CSPRINT_COMMON_LOGGING_HH
