/**
 * @file
 * Portable binary serialization for checkpoints: a little-endian,
 * versioned, CRC32-checksummed byte format with a typed error on
 * every malformed input. BlobWriter appends primitives and vectors to
 * a byte buffer; BlobReader consumes the same sequence, throwing
 * CheckpointError (never invoking UB) on truncation or corruption.
 *
 * Container layout (all little-endian):
 *
 *   u32 magic  ("CSCK")
 *   u32 format version
 *   u32 config digest (CRC32 over a canonical config dump)
 *   u64 payload length
 *   ...payload bytes...
 *   u32 CRC32 over the payload
 *
 * Doubles are bit-preserved via their IEEE-754 u64 image, so a
 * round-trip is byte-exact, NaN payloads and signed zeros included.
 */

#ifndef CSPRINT_COMMON_BLOB_HH
#define CSPRINT_COMMON_BLOB_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace csprint {

/** Typed failure raised by checkpoint load/validation paths. */
class CheckpointError : public std::runtime_error
{
  public:
    enum class Kind
    {
        BadMagic,    ///< not a checkpoint blob at all
        BadVersion,  ///< format version this build cannot read
        BadDigest,   ///< checkpoint from a different configuration
        Truncated,   ///< ran out of bytes mid-record
        BadChecksum, ///< payload CRC mismatch (bit rot / torn write)
        Corrupt,     ///< structurally invalid contents
        Unsupported, ///< state the serializer cannot capture
        Io,          ///< filesystem-level failure
        Invariant,   ///< paranoia-mode validation failure
    };

    CheckpointError(Kind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    Kind kind() const { return kind_; }

    /** Stable name for the kind ("truncated", "bad_checksum", ...). */
    static const char *kindName(Kind kind);

  private:
    Kind kind_;
};

/** CRC32 (IEEE 802.3 polynomial, reflected) over @p n bytes. */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

/** Append-only little-endian byte sink. */
class BlobWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { putLe(v, 2); }
    void u32(std::uint32_t v) { putLe(v, 4); }
    void u64(std::uint64_t v) { putLe(v, 8); }
    void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    void sz(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

    void f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void str(const std::string &s)
    {
        sz(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    template <typename T, typename Fn>
    void vec(const std::vector<T> &v, Fn &&writeOne)
    {
        sz(v.size());
        for (const T &x : v)
            writeOne(*this, x);
    }

    void vecU64(const std::vector<std::uint64_t> &v)
    {
        vec(v, [](BlobWriter &w, std::uint64_t x) { w.u64(x); });
    }

    void vecF64(const std::vector<double> &v)
    {
        vec(v, [](BlobWriter &w, double x) { w.f64(x); });
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    void putLe(std::uint64_t v, int nbytes)
    {
        for (int i = 0; i < nbytes; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked little-endian byte source. Every read throws
 * CheckpointError::Truncated rather than walking off the buffer, and
 * vector lengths are validated against the bytes remaining before any
 * allocation so a fuzzed length field cannot trigger OOM.
 */
class BlobReader
{
  public:
    BlobReader(const std::uint8_t *data, std::size_t n)
        : data_(data), size_(n)
    {
    }

    explicit BlobReader(const std::vector<std::uint8_t> &buf)
        : BlobReader(buf.data(), buf.size())
    {
    }

    std::uint8_t u8() { return static_cast<std::uint8_t>(getLe(1)); }
    std::uint16_t u16() { return static_cast<std::uint16_t>(getLe(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(getLe(4)); }
    std::uint64_t u64() { return getLe(8); }
    std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool boolean() { return u8() != 0; }

    std::size_t sz()
    {
        const std::uint64_t v = u64();
        if (v > size_ - pos_)
            fail("size field exceeds remaining bytes");
        return static_cast<std::size_t>(v);
    }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string str()
    {
        const std::size_t n = sz();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    void bytes(void *out, std::size_t n)
    {
        need(n);
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    /**
     * Read a length-prefixed vector. @p elemBytes is the minimum
     * serialized footprint of one element, used to reject a length
     * field larger than the remaining input before reserving memory.
     */
    template <typename T, typename Fn>
    std::vector<T> vec(std::size_t elemBytes, Fn &&readOne)
    {
        const std::size_t n = sz();
        if (elemBytes > 0 && n > (size_ - pos_) / elemBytes)
            fail("vector length exceeds remaining bytes");
        std::vector<T> v;
        v.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            v.push_back(readOne(*this));
        return v;
    }

    std::vector<std::uint64_t> vecU64()
    {
        return vec<std::uint64_t>(8,
                                  [](BlobReader &r) { return r.u64(); });
    }

    std::vector<double> vecF64()
    {
        return vec<double>(8, [](BlobReader &r) { return r.f64(); });
    }

    std::size_t remaining() const { return size_ - pos_; }
    std::size_t position() const { return pos_; }

    /** Throw Corrupt unless the whole buffer was consumed. */
    void expectEnd() const
    {
        if (pos_ != size_)
            throw CheckpointError(
                CheckpointError::Kind::Corrupt,
                "checkpoint payload has " +
                    std::to_string(size_ - pos_) +
                    " trailing bytes past the last record");
    }

  private:
    void need(std::size_t n) const
    {
        if (n > size_ - pos_)
            throw CheckpointError(
                CheckpointError::Kind::Truncated,
                "checkpoint truncated: need " + std::to_string(n) +
                    " bytes at offset " + std::to_string(pos_) +
                    ", have " + std::to_string(size_ - pos_));
    }

    [[noreturn]] void fail(const char *msg) const
    {
        throw CheckpointError(CheckpointError::Kind::Truncated,
                              std::string(msg) + " at offset " +
                                  std::to_string(pos_));
    }

    std::uint64_t getLe(int nbytes)
    {
        need(static_cast<std::size_t>(nbytes));
        std::uint64_t v = 0;
        for (int i = 0; i < nbytes; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += static_cast<std::size_t>(nbytes);
        return v;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Container framing shared by every checkpoint blob. */
struct BlobContainer
{
    static constexpr std::uint32_t kMagic = 0x4b435343u; // "CSCK"
    static constexpr std::uint32_t kVersion = 1;

    /** Wrap @p payload in the magic/version/digest/CRC frame. */
    static std::vector<std::uint8_t>
    seal(std::uint32_t configDigest, std::vector<std::uint8_t> payload);

    /**
     * Validate the frame of @p blob and return a reader positioned at
     * the payload. Throws CheckpointError on a bad magic, unreadable
     * version, digest mismatch, truncation, trailing garbage, or CRC
     * mismatch.
     */
    static BlobReader open(const std::vector<std::uint8_t> &blob,
                           std::uint32_t expectConfigDigest);
};

} // namespace csprint

#endif // CSPRINT_COMMON_BLOB_HH
