#include "workloads/image.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace csprint {

float
Image::atClamped(long x, long y) const
{
    const long cx = std::clamp<long>(x, 0, static_cast<long>(w) - 1);
    const long cy = std::clamp<long>(y, 0, static_cast<long>(h) - 1);
    return pixels[static_cast<std::size_t>(cy) * w +
                  static_cast<std::size_t>(cx)];
}

Image
makeSyntheticImage(std::size_t width, std::size_t height,
                   std::uint64_t seed)
{
    SPRINT_ASSERT(width > 0 && height > 0, "empty image");
    Image img(width, height);
    Rng rng(seed);

    // Random blob field: position, radius, amplitude.
    struct Blob { double x, y, r, a; };
    std::vector<Blob> blobs;
    const int num_blobs = 12;
    for (int i = 0; i < num_blobs; ++i) {
        blobs.push_back({rng.uniform() * width, rng.uniform() * height,
                         (0.04 + 0.12 * rng.uniform()) * width,
                         rng.uniform(-0.8, 0.8)});
    }
    const double gx = rng.uniform(-0.5, 0.5);
    const double gy = rng.uniform(-0.5, 0.5);

    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            double v = 0.5 + gx * (static_cast<double>(x) / width - 0.5) +
                       gy * (static_cast<double>(y) / height - 0.5);
            for (const auto &b : blobs) {
                const double dx = (x - b.x) / b.r;
                const double dy = (y - b.y) / b.r;
                v += b.a * std::exp(-(dx * dx + dy * dy));
            }
            v += rng.uniform(-0.02, 0.02);
            img.set(x, y, static_cast<float>(std::clamp(v, 0.0, 1.0)));
        }
    }
    return img;
}

Image
makeShiftedImage(const Image &left, int max_disparity,
                 std::uint64_t seed, std::vector<int> *truth)
{
    SPRINT_ASSERT(max_disparity >= 1, "need a positive disparity range");
    const std::size_t w = left.width();
    const std::size_t h = left.height();
    Image right(w, h);
    Rng rng(seed);

    // Smooth disparity field: a few horizontal bands at different
    // depths, as a slanted scene would produce.
    const int bands = 4;
    std::vector<int> band_disp(bands);
    for (int b = 0; b < bands; ++b) {
        band_disp[b] = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(max_disparity)));
    }
    if (truth)
        truth->assign(w * h, 0);

    for (std::size_t y = 0; y < h; ++y) {
        const int d = band_disp[(y * bands) / h];
        for (std::size_t x = 0; x < w; ++x) {
            right.set(x, y,
                      left.atClamped(static_cast<long>(x) + d,
                                     static_cast<long>(y)));
            if (truth)
                (*truth)[y * w + x] = d;
        }
    }
    return right;
}

Image
integralImage(const Image &img)
{
    const std::size_t w = img.width();
    const std::size_t h = img.height();
    Image out(w, h);
    for (std::size_t y = 0; y < h; ++y) {
        double row = 0.0;
        for (std::size_t x = 0; x < w; ++x) {
            row += img.at(x, y);
            const double above = y > 0 ? out.at(x, y - 1) : 0.0;
            out.set(x, y, static_cast<float>(row + above));
        }
    }
    return out;
}

double
boxSum(const Image &integral, long x0, long y0, long x1, long y1)
{
    const long w = static_cast<long>(integral.width());
    const long h = static_cast<long>(integral.height());
    x0 = std::clamp<long>(x0, 0, w - 1);
    x1 = std::clamp<long>(x1, 0, w - 1);
    y0 = std::clamp<long>(y0, 0, h - 1);
    y1 = std::clamp<long>(y1, 0, h - 1);
    const double d = integral.at(x1, y1);
    const double b = y0 > 0 ? integral.at(x1, y0 - 1) : 0.0;
    const double c = x0 > 0 ? integral.at(x0 - 1, y1) : 0.0;
    const double a =
        (x0 > 0 && y0 > 0) ? integral.at(x0 - 1, y0 - 1) : 0.0;
    return d - b - c + a;
}

} // namespace csprint
