/**
 * @file
 * SURF-style feature-extraction kernel (paper Table 1: "Feature
 * extraction (SURF)", the camera-based-search application of the
 * paper's introduction). The pipeline: integral image (row pass, then
 * a strided column pass), Hessian blob responses over several scales
 * (box filters on the integral image), thresholding into interest
 * points, and descriptor extraction around each point. The response
 * pyramid streams several image-sized buffers, which is what makes
 * the kernel memory-bandwidth-limited at high core counts
 * (paper Figure 10).
 */

#ifndef CSPRINT_WORKLOADS_FEATURE_HH
#define CSPRINT_WORKLOADS_FEATURE_HH

#include <cstdint>
#include <vector>

#include "archsim/program.hh"
#include "workloads/image.hh"
#include "workloads/workload.hh"

namespace csprint {

/** Feature-extraction configuration. */
struct FeatureConfig
{
    std::size_t width = 256;
    std::size_t height = 256;
    int scales = 3;
    double threshold = 0.02;   ///< Hessian response threshold
    std::size_t rows_per_task = 4;
    std::uint64_t seed = 42;

    static FeatureConfig forSize(InputSize size, std::uint64_t seed = 42);
};

/** One detected interest point. */
struct Keypoint
{
    std::size_t x = 0;
    std::size_t y = 0;
    int scale = 0;
    double response = 0.0;
    std::vector<float> descriptor;  ///< 16-dim region descriptor
};

/** Outcome of the reference run. */
struct FeatureResult
{
    std::vector<Keypoint> keypoints;
};

/** Reference SURF-style extraction on a synthetic image. */
FeatureResult featureReference(const FeatureConfig &cfg);

/** Simulated program mirroring the reference's pipeline. */
ParallelProgram featureProgram(const FeatureConfig &cfg);

} // namespace csprint

#endif // CSPRINT_WORKLOADS_FEATURE_HH
