/**
 * @file
 * Texture/image-composition kernel (paper Table 1: "Image composition;
 * adapted from SD-VBS"). Layers are alpha-blended in parallel, but
 * each layer ends with an inherently serial tone-normalization pass
 * over row statistics — the Amdahl fraction behind the kernel's
 * parallelism-limited scaling in paper Figure 10.
 */

#ifndef CSPRINT_WORKLOADS_TEXTURE_HH
#define CSPRINT_WORKLOADS_TEXTURE_HH

#include <cstdint>

#include "archsim/program.hh"
#include "workloads/image.hh"
#include "workloads/workload.hh"

namespace csprint {

/** Texture-composition configuration. */
struct TextureConfig
{
    std::size_t width = 288;
    std::size_t height = 288;
    int layers = 5;
    std::size_t rows_per_task = 4;
    std::uint64_t seed = 42;

    static TextureConfig forSize(InputSize size, std::uint64_t seed = 42);
};

/** Reference composition of `layers` synthetic layers. */
Image textureReference(const TextureConfig &cfg);

/** Simulated program mirroring the reference's per-layer structure. */
ParallelProgram textureProgram(const TextureConfig &cfg);

} // namespace csprint

#endif // CSPRINT_WORKLOADS_TEXTURE_HH
