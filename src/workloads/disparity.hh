/**
 * @file
 * Stereo disparity kernel (paper Table 1: "Stereo image disparity
 * detection; adapted from SD-VBS"). Following the SD-VBS structure,
 * each candidate disparity performs full-image passes (difference,
 * windowed aggregation, winner update), which makes the kernel
 * memory-bandwidth-hungry at large inputs — the behaviour behind its
 * bandwidth-limited scaling in paper Figure 10.
 */

#ifndef CSPRINT_WORKLOADS_DISPARITY_HH
#define CSPRINT_WORKLOADS_DISPARITY_HH

#include <cstdint>
#include <vector>

#include "archsim/program.hh"
#include "workloads/image.hh"
#include "workloads/workload.hh"

namespace csprint {

/** Disparity configuration. */
struct DisparityConfig
{
    std::size_t width = 128;
    std::size_t height = 128;
    int max_disparity = 8;
    int window_radius = 1;  ///< SAD window half-size
    std::size_t rows_per_task = 4;
    std::uint64_t seed = 42;

    static DisparityConfig forSize(InputSize size,
                                   std::uint64_t seed = 42);
};

/** Reference outcome. */
struct DisparityResult
{
    std::vector<int> disparity;  ///< winning disparity per pixel
    double accuracy = 0.0;       ///< match rate against ground truth
};

/** Reference block-matching disparity on a synthetic stereo pair. */
DisparityResult disparityReference(const DisparityConfig &cfg);

/** Simulated program mirroring the reference's pass structure. */
ParallelProgram disparityProgram(const DisparityConfig &cfg);

} // namespace csprint

#endif // CSPRINT_WORKLOADS_DISPARITY_HH
