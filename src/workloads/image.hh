/**
 * @file
 * Synthetic image substrate for the vision kernels: a float image
 * container and deterministic procedural generators (smooth gradients,
 * Gaussian blobs, noise, and horizontally shifted stereo pairs). The
 * paper evaluates on camera images; these generators produce inputs
 * with comparable structure (edges, clusters, disparity) at
 * simulation-tractable sizes (see DESIGN.md, Substitutions).
 */

#ifndef CSPRINT_WORKLOADS_IMAGE_HH
#define CSPRINT_WORKLOADS_IMAGE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace csprint {

/** A dense single-channel float image. */
class Image
{
  public:
    Image(std::size_t width, std::size_t height)
        : w(width), h(height), pixels(width * height, 0.0f)
    {
    }

    std::size_t width() const { return w; }
    std::size_t height() const { return h; }

    float at(std::size_t x, std::size_t y) const
    {
        return pixels[y * w + x];
    }

    /** Clamped-border accessor used by stencils. */
    float atClamped(long x, long y) const;

    void set(std::size_t x, std::size_t y, float v)
    {
        pixels[y * w + x] = v;
    }

    const std::vector<float> &data() const { return pixels; }
    std::vector<float> &data() { return pixels; }

  private:
    std::size_t w, h;
    std::vector<float> pixels;
};

/**
 * Deterministic synthetic photo: a smooth gradient plus several
 * Gaussian blobs and low-amplitude noise, all derived from @p seed.
 */
Image makeSyntheticImage(std::size_t width, std::size_t height,
                         std::uint64_t seed);

/**
 * A stereo companion of @p left: content shifted leftwards by a
 * spatially varying disparity in [0, max_disparity), as a camera
 * baseline would produce. The true disparity of each pixel is
 * returned through @p truth when non-null.
 */
Image makeShiftedImage(const Image &left, int max_disparity,
                       std::uint64_t seed,
                       std::vector<int> *truth = nullptr);

/** Summed-area table of @p img (exclusive of nothing; same dims). */
Image integralImage(const Image &img);

/**
 * Sum over the inclusive rectangle [x0,x1] x [y0,y1] using an
 * integral image (clamped to bounds).
 */
double boxSum(const Image &integral, long x0, long y0, long x1, long y1);

} // namespace csprint

#endif // CSPRINT_WORKLOADS_IMAGE_HH
