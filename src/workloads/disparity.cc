#include "workloads/disparity.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace csprint {

DisparityConfig
DisparityConfig::forSize(InputSize size, std::uint64_t seed)
{
    DisparityConfig cfg;
    const double s = inputSizeScale(size);
    cfg.width = static_cast<std::size_t>(128 * s);
    cfg.height = static_cast<std::size_t>(128 * s);
    cfg.seed = seed;
    return cfg;
}

DisparityResult
disparityReference(const DisparityConfig &cfg)
{
    const Image left =
        makeSyntheticImage(cfg.width, cfg.height, cfg.seed);
    std::vector<int> truth;
    const Image right =
        makeShiftedImage(left, cfg.max_disparity, cfg.seed + 1, &truth);

    const std::size_t w = cfg.width;
    const std::size_t h = cfg.height;
    const int r = cfg.window_radius;

    std::vector<float> best_sad(w * h,
                                std::numeric_limits<float>::infinity());
    DisparityResult result;
    result.disparity.assign(w * h, 0);

    // SD-VBS structure: per candidate disparity, full-image passes.
    std::vector<float> diff(w * h, 0.0f);
    for (int d = 0; d < cfg.max_disparity; ++d) {
        // Pass 1: absolute difference at shift d.
        for (std::size_t y = 0; y < h; ++y)
            for (std::size_t x = 0; x < w; ++x)
                diff[y * w + x] = std::abs(
                    left.atClamped(static_cast<long>(x) + d,
                                   static_cast<long>(y)) -
                    right.at(x, y));
        // Pass 2+3: windowed SAD and winner update.
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                float sad = 0.0f;
                for (int dy = -r; dy <= r; ++dy) {
                    for (int dx = -r; dx <= r; ++dx) {
                        const long xx = std::clamp<long>(
                            static_cast<long>(x) + dx, 0,
                            static_cast<long>(w) - 1);
                        const long yy = std::clamp<long>(
                            static_cast<long>(y) + dy, 0,
                            static_cast<long>(h) - 1);
                        sad += diff[static_cast<std::size_t>(yy) * w +
                                    static_cast<std::size_t>(xx)];
                    }
                }
                if (sad < best_sad[y * w + x]) {
                    best_sad[y * w + x] = sad;
                    result.disparity[y * w + x] = d;
                }
            }
        }
    }

    // Accuracy against ground truth, excluding the shifted border.
    std::size_t correct = 0;
    std::size_t total = 0;
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x + cfg.max_disparity < w; ++x) {
            ++total;
            if (result.disparity[y * w + x] == truth[y * w + x])
                ++correct;
        }
    }
    result.accuracy =
        total ? static_cast<double>(correct) / total : 0.0;
    return result;
}

ParallelProgram
disparityProgram(const DisparityConfig &cfg)
{
    const std::size_t w = cfg.width;
    const std::size_t h = cfg.height;
    const int r = cfg.window_radius;
    const std::size_t rpt = std::max<std::size_t>(1, cfg.rows_per_task);
    const std::size_t num_tasks = (h + rpt - 1) / rpt;

    AddressAllocator alloc;
    const std::uint64_t left_base = alloc.alloc(w * h * 4);
    const std::uint64_t right_base = alloc.alloc(w * h * 4);
    const std::uint64_t diff_base = alloc.alloc(w * h * 4);
    const std::uint64_t best_base = alloc.alloc(w * h * 4);
    const std::uint64_t out_base = alloc.alloc(w * h * 4);

    ParallelProgram program("disparity");
    for (int d = 0; d < cfg.max_disparity; ++d) {
        // Pass 1: difference image at shift d (streaming).
        Phase diff_phase;
        diff_phase.name = "diff";
        diff_phase.kind = PhaseKind::ParallelStatic;
        diff_phase.num_tasks = num_tasks;
        diff_phase.make_task =
            [=](std::size_t task) -> std::unique_ptr<OpStream> {
            const std::size_t row0 = task * rpt;
            const std::size_t row1 = std::min(h, row0 + rpt);
            return std::make_unique<ChunkedOpStream>(
                row1 - row0,
                [=](std::size_t chunk, std::vector<MicroOp> &out) {
                    out.clear();
                    const std::size_t y = row0 + chunk;
                    for (std::size_t x = 0; x < w; ++x) {
                        const std::size_t xs = std::min<std::size_t>(
                            x + static_cast<std::size_t>(d), w - 1);
                        out.push_back(MicroOp::load(
                            left_base + 4 * (y * w + xs)));
                        out.push_back(MicroOp::load(
                            right_base + 4 * (y * w + x)));
                        out.push_back(MicroOp::fpAlu());  // abs diff
                        out.push_back(MicroOp::branch());
                        out.push_back(MicroOp::store(
                            diff_base + 4 * (y * w + x)));
                    }
                });
        };
        program.addPhase(std::move(diff_phase));

        // Pass 2: windowed SAD aggregation + winner update.
        Phase sad_phase;
        sad_phase.name = "sad";
        sad_phase.kind = PhaseKind::ParallelStatic;
        sad_phase.num_tasks = num_tasks;
        sad_phase.make_task =
            [=](std::size_t task) -> std::unique_ptr<OpStream> {
            const std::size_t row0 = task * rpt;
            const std::size_t row1 = std::min(h, row0 + rpt);
            return std::make_unique<ChunkedOpStream>(
                row1 - row0,
                [=](std::size_t chunk, std::vector<MicroOp> &out) {
                    out.clear();
                    const std::size_t y = row0 + chunk;
                    for (std::size_t x = 0; x < w; ++x) {
                        for (int dy = -r; dy <= r; ++dy) {
                            const long yy = std::clamp<long>(
                                static_cast<long>(y) + dy, 0,
                                static_cast<long>(h) - 1);
                            for (int dx = -r; dx <= r; ++dx) {
                                const long xx = std::clamp<long>(
                                    static_cast<long>(x) + dx, 0,
                                    static_cast<long>(w) - 1);
                                out.push_back(MicroOp::load(
                                    diff_base +
                                    4 * (static_cast<std::uint64_t>(yy) *
                                             w +
                                         static_cast<std::uint64_t>(
                                             xx))));
                                out.push_back(MicroOp::fpAlu());
                            }
                        }
                        // Winner update: load best, compare, maybe
                        // store new best and disparity.
                        out.push_back(MicroOp::load(
                            best_base + 4 * (y * w + x)));
                        out.push_back(MicroOp::intAlu());
                        out.push_back(MicroOp::branch());
                        out.push_back(MicroOp::store(
                            best_base + 4 * (y * w + x)));
                        out.push_back(MicroOp::store(
                            out_base + 4 * (y * w + x)));
                    }
                });
        };
        program.addPhase(std::move(sad_phase));
    }
    return program;
}

} // namespace csprint
