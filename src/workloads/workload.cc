#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/disparity.hh"
#include "workloads/feature.hh"
#include "workloads/kmeans.hh"
#include "workloads/segment.hh"
#include "workloads/sobel.hh"
#include "workloads/texture.hh"

namespace csprint {

const std::vector<KernelId> &
allKernels()
{
    static const std::vector<KernelId> kernels = {
        KernelId::Feature, KernelId::Disparity, KernelId::Sobel,
        KernelId::Texture, KernelId::Segment,   KernelId::Kmeans,
    };
    return kernels;
}

std::string
kernelName(KernelId id)
{
    switch (id) {
      case KernelId::Sobel:
        return "sobel";
      case KernelId::Feature:
        return "feature";
      case KernelId::Kmeans:
        return "kmeans";
      case KernelId::Disparity:
        return "disparity";
      case KernelId::Texture:
        return "texture";
      case KernelId::Segment:
        return "segment";
    }
    SPRINT_PANIC("unknown kernel");
}

std::vector<KernelInfo>
kernelTable()
{
    return {
        {KernelId::Sobel, "sobel",
         "Edge detection filter",
         "OpenMP-style static rows"},
        {KernelId::Feature, "feature",
         "Feature extraction (SURF)",
         "static pixel phases + dynamic descriptor tasks"},
        {KernelId::Kmeans, "kmeans",
         "Partition based clustering",
         "OpenMP-style static blocks + locked reduction"},
        {KernelId::Disparity, "disparity",
         "Stereo image disparity detection (SD-VBS)",
         "static rows per candidate disparity"},
        {KernelId::Texture, "texture",
         "Image composition (SD-VBS)",
         "static rows + serial tone pass per layer"},
        {KernelId::Segment, "segment",
         "Image feature classification (SD-VBS)",
         "dynamic tiles with data-dependent weights"},
    };
}

std::string
inputSizeName(InputSize size)
{
    switch (size) {
      case InputSize::A:
        return "A";
      case InputSize::B:
        return "B";
      case InputSize::C:
        return "C";
      case InputSize::D:
        return "D";
    }
    SPRINT_PANIC("unknown input size");
}

double
inputSizeScale(InputSize size)
{
    switch (size) {
      case InputSize::A:
        return 0.5;
      case InputSize::B:
        return 1.0;
      case InputSize::C:
        return 1.4;
      case InputSize::D:
        return 1.6;
    }
    SPRINT_PANIC("unknown input size");
}

ParallelProgram
buildKernelProgram(KernelId kernel, InputSize size, std::uint64_t seed)
{
    switch (kernel) {
      case KernelId::Sobel:
        return sobelProgram(SobelConfig::forSize(size, seed));
      case KernelId::Feature:
        return featureProgram(FeatureConfig::forSize(size, seed));
      case KernelId::Kmeans:
        return kmeansProgram(KmeansConfig::forSize(size, seed));
      case KernelId::Disparity:
        return disparityProgram(DisparityConfig::forSize(size, seed));
      case KernelId::Texture:
        return textureProgram(TextureConfig::forSize(size, seed));
      case KernelId::Segment:
        return segmentProgram(SegmentConfig::forSize(size, seed));
    }
    SPRINT_PANIC("unknown kernel");
}

std::uint64_t
countProgramOps(const ParallelProgram &program)
{
    std::uint64_t total = 0;
    for (const auto &phase : program.phases()) {
        for (std::size_t t = 0; t < phase.num_tasks; ++t) {
            auto stream = phase.make_task(t);
            MicroOp op;
            while (stream->next(op))
                ++total;
        }
    }
    return total;
}

namespace {

/** Fold @p value into the FNV-1a state @p h. */
void
fnv1a(std::uint64_t &h, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (value >> (8 * byte)) & 0xFF;
        h *= 1099511628211ULL;
    }
}

/** Fold a string into the FNV-1a state @p h, length included. */
void
fnv1a(std::uint64_t &h, const std::string &s)
{
    fnv1a(h, static_cast<std::uint64_t>(s.size()));
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
}

} // namespace

std::uint64_t
programDigest(const ParallelProgram &program)
{
    std::uint64_t h = 14695981039346656037ULL;
    fnv1a(h, program.name());
    fnv1a(h, static_cast<std::uint64_t>(program.phases().size()));
    for (const auto &phase : program.phases()) {
        fnv1a(h, phase.name);
        fnv1a(h, static_cast<std::uint64_t>(phase.kind));
        fnv1a(h, static_cast<std::uint64_t>(phase.num_tasks));
        for (std::size_t t = 0; t < phase.num_tasks; ++t) {
            auto stream = phase.make_task(t);
            MicroOp op;
            while (stream->next(op))
                fnv1a(h, op.bits);
        }
    }
    return h;
}

} // namespace csprint
