#include "workloads/texture.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

TextureConfig
TextureConfig::forSize(InputSize size, std::uint64_t seed)
{
    TextureConfig cfg;
    const double s = inputSizeScale(size);
    cfg.width = static_cast<std::size_t>(288 * s);
    cfg.height = static_cast<std::size_t>(288 * s);
    cfg.seed = seed;
    return cfg;
}

Image
textureReference(const TextureConfig &cfg)
{
    const std::size_t w = cfg.width;
    const std::size_t h = cfg.height;
    Image out = makeSyntheticImage(w, h, cfg.seed);

    for (int l = 0; l < cfg.layers; ++l) {
        const Image layer = makeSyntheticImage(w, h, cfg.seed + 100 + l);
        // Parallelizable blend: alpha follows the layer's luminance.
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                const float a = 0.25f + 0.5f * layer.at(x, y);
                out.set(x, y,
                        out.at(x, y) * (1.0f - a) + layer.at(x, y) * a);
            }
        }
        // Serial tone normalization: a running row-mean equalizer in
        // which each row's correction depends on the previous row's
        // corrected statistics (a loop-carried dependence).
        double running = 0.5;
        for (std::size_t y = 0; y < h; y += 4) {
            double mean = 0.0;
            for (std::size_t x = 0; x < w; x += 8)
                mean += out.at(x, y);
            mean /= static_cast<double>((w + 7) / 8);
            const double corr = 0.9 * running + 0.1 * mean;
            const float scale =
                static_cast<float>(std::clamp(0.5 / std::max(0.05, corr),
                                              0.5, 2.0));
            for (std::size_t x = 0; x < w; x += 4)
                out.set(x, y, std::clamp(out.at(x, y) * scale, 0.0f,
                                         1.0f));
            running = corr;
        }
    }
    return out;
}

ParallelProgram
textureProgram(const TextureConfig &cfg)
{
    const std::size_t w = cfg.width;
    const std::size_t h = cfg.height;
    const std::size_t rpt = std::max<std::size_t>(1, cfg.rows_per_task);
    const std::size_t num_tasks = (h + rpt - 1) / rpt;

    AddressAllocator alloc;
    const std::uint64_t out_base = alloc.alloc(w * h * 4);
    std::vector<std::uint64_t> layer_bases;
    for (int l = 0; l < cfg.layers; ++l)
        layer_bases.push_back(alloc.alloc(w * h * 4));

    ParallelProgram program("texture");
    for (int l = 0; l < cfg.layers; ++l) {
        const std::uint64_t layer_base = layer_bases[l];

        // Parallel blend phase.
        Phase blend;
        blend.name = "blend";
        blend.kind = PhaseKind::ParallelStatic;
        blend.num_tasks = num_tasks;
        blend.make_task =
            [=](std::size_t task) -> std::unique_ptr<OpStream> {
            const std::size_t row0 = task * rpt;
            const std::size_t row1 = std::min(h, row0 + rpt);
            return std::make_unique<ChunkedOpStream>(
                row1 - row0,
                [=](std::size_t chunk, std::vector<MicroOp> &out) {
                    out.clear();
                    const std::size_t y = row0 + chunk;
                    for (std::size_t x = 0; x < w; ++x) {
                        const std::uint64_t off = 4 * (y * w + x);
                        out.push_back(MicroOp::load(layer_base + off));
                        out.push_back(MicroOp::load(out_base + off));
                        out.push_back(MicroOp::fpAlu());  // alpha
                        out.push_back(MicroOp::fpAlu());  // blend mul
                        out.push_back(MicroOp::fpAlu());  // blend add
                        out.push_back(MicroOp::branch());
                        out.push_back(MicroOp::store(out_base + off));
                    }
                });
        };
        program.addPhase(std::move(blend));

        // Serial tone-normalization phase (loop-carried row
        // dependence; runs on thread 0).
        Phase tone;
        tone.name = "tone";
        tone.kind = PhaseKind::Serial;
        tone.num_tasks = 1;
        tone.make_task =
            [=](std::size_t) -> std::unique_ptr<OpStream> {
            return std::make_unique<ChunkedOpStream>(
                (h + 3) / 4,
                [=](std::size_t chunk, std::vector<MicroOp> &out) {
                    out.clear();
                    const std::size_t y = 4 * chunk;
                    // Row mean over a 1-in-8 sample.
                    for (std::size_t x = 0; x < w; x += 8) {
                        out.push_back(
                            MicroOp::load(out_base + 4 * (y * w + x)));
                        out.push_back(MicroOp::fpAlu());
                    }
                    out.push_back(MicroOp::fpAlu());  // correction
                    out.push_back(MicroOp::fpAlu());  // scale
                    // Apply to a 1-in-4 sample of the row.
                    for (std::size_t x = 0; x < w; x += 4) {
                        const std::uint64_t off = 4 * (y * w + x);
                        out.push_back(MicroOp::load(out_base + off));
                        out.push_back(MicroOp::fpAlu());
                        out.push_back(MicroOp::store(out_base + off));
                        out.push_back(MicroOp::branch());
                    }
                });
        };
        program.addPhase(std::move(tone));
    }
    return program;
}

} // namespace csprint
