#include "workloads/segment.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace csprint {

SegmentConfig
SegmentConfig::forSize(InputSize size, std::uint64_t seed)
{
    SegmentConfig cfg;
    const double s = inputSizeScale(size);
    cfg.width = static_cast<std::size_t>(160 * s);
    cfg.height = static_cast<std::size_t>(160 * s);
    cfg.seed = seed;
    return cfg;
}

namespace {

/** Per-pixel feature vector: intensity, gradients, position. */
void
pixelFeature(const Image &img, std::size_t x, std::size_t y,
             std::vector<double> &f)
{
    const long xl = static_cast<long>(x);
    const long yl = static_cast<long>(y);
    f[0] = img.at(x, y);
    f[1] = img.atClamped(xl + 1, yl) - img.atClamped(xl - 1, yl);
    f[2] = img.atClamped(xl, yl + 1) - img.atClamped(xl, yl - 1);
    f[3] = static_cast<double>(x) / img.width();
    f[4] = static_cast<double>(y) / img.height();
    for (std::size_t j = 5; j < f.size(); ++j)
        f[j] = f[j - 5] * f[0];
}

} // namespace

SegmentResult
segmentReference(const SegmentConfig &cfg)
{
    const Image img = makeSyntheticImage(cfg.width, cfg.height, cfg.seed);
    const std::size_t w = cfg.width;
    const std::size_t h = cfg.height;
    const std::size_t k = cfg.classes;
    const std::size_t dim = cfg.model_dim;

    // Random but deterministic class prototypes.
    Rng rng(cfg.seed + 7);
    std::vector<double> prototypes(k * dim);
    for (auto &p : prototypes)
        p = rng.uniform(-1.0, 1.0);

    SegmentResult result;
    result.labels.assign(w * h, 0);

    const std::size_t tiles_x = (w + cfg.tile - 1) / cfg.tile;
    const std::size_t tiles_y = (h + cfg.tile - 1) / cfg.tile;
    result.tile_iters.assign(tiles_x * tiles_y, 1);

    std::vector<double> f(dim);
    for (std::size_t ty = 0; ty < tiles_y; ++ty) {
        for (std::size_t tx = 0; tx < tiles_x; ++tx) {
            const std::size_t x0 = tx * cfg.tile;
            const std::size_t y0 = ty * cfg.tile;
            const std::size_t x1 = std::min(w, x0 + cfg.tile);
            const std::size_t y1 = std::min(h, y0 + cfg.tile);

            // Initial classification + tile detail estimate.
            double detail = 0.0;
            for (std::size_t y = y0; y < y1; ++y) {
                for (std::size_t x = x0; x < x1; ++x) {
                    pixelFeature(img, x, y, f);
                    detail += std::abs(f[1]) + std::abs(f[2]);
                    double best = -1e30;
                    int best_c = 0;
                    for (std::size_t c = 0; c < k; ++c) {
                        double score = 0.0;
                        for (std::size_t j = 0; j < dim; ++j)
                            score += prototypes[c * dim + j] * f[j];
                        if (score > best) {
                            best = score;
                            best_c = static_cast<int>(c);
                        }
                    }
                    result.labels[y * w + x] = best_c;
                }
            }
            detail /= static_cast<double>((x1 - x0) * (y1 - y0));

            // Detail-rich tiles run extra majority-smoothing passes.
            // Quadratic detail-to-work mapping: most tiles take a
            // pass or two, detail-rich tiles take many - the heavy
            // tail that bounds segment's parallel scaling.
            const double hot = detail * 55.0;
            const int iters =
                1 + std::min(cfg.max_refine - 1,
                             static_cast<int>(hot * hot));
            result.tile_iters[ty * tiles_x + tx] = iters;
            for (int it = 1; it < iters; ++it) {
                for (std::size_t y = y0 + 1; y + 1 < y1; ++y) {
                    for (std::size_t x = x0 + 1; x + 1 < x1; ++x) {
                        // Re-score against the prototypes with the
                        // neighbourhood majority as a prior.
                        int votes[16] = {0};
                        votes[result.labels[(y - 1) * w + x] % 16]++;
                        votes[result.labels[(y + 1) * w + x] % 16]++;
                        votes[result.labels[y * w + x - 1] % 16]++;
                        votes[result.labels[y * w + x + 1] % 16]++;
                        pixelFeature(img, x, y, f);
                        double best = -1e30;
                        int best_c = result.labels[y * w + x];
                        for (std::size_t c = 0; c < k; ++c) {
                            double score = 0.3 * votes[c % 16];
                            for (std::size_t j = 0; j < dim; ++j)
                                score += prototypes[c * dim + j] * f[j];
                            if (score > best) {
                                best = score;
                                best_c = static_cast<int>(c);
                            }
                        }
                        result.labels[y * w + x] = best_c;
                    }
                }
            }
        }
    }
    return result;
}

ParallelProgram
segmentProgram(const SegmentConfig &cfg)
{
    // Tile weights come from the reference run on the same input.
    const SegmentResult ref = segmentReference(cfg);

    const std::size_t w = cfg.width;
    const std::size_t h = cfg.height;
    const std::size_t k = cfg.classes;
    const std::size_t dim = cfg.model_dim;
    const std::size_t tiles_x = (w + cfg.tile - 1) / cfg.tile;
    const std::size_t tiles_y = (h + cfg.tile - 1) / cfg.tile;

    AddressAllocator alloc;
    const std::uint64_t img_base = alloc.alloc(w * h * 4);
    const std::uint64_t proto_base = alloc.alloc(k * dim * 8);
    const std::uint64_t label_base = alloc.alloc(w * h * 4);

    ParallelProgram program("segment");
    Phase phase;
    phase.name = "classify";
    phase.kind = PhaseKind::ParallelDynamic;
    phase.num_tasks = tiles_x * tiles_y;
    phase.make_task = [=](std::size_t task) -> std::unique_ptr<OpStream> {
        const std::size_t tx = task % tiles_x;
        const std::size_t ty = task / tiles_x;
        const std::size_t x0 = tx * cfg.tile;
        const std::size_t y0 = ty * cfg.tile;
        const std::size_t x1 = std::min(w, x0 + cfg.tile);
        const std::size_t y1 = std::min(h, y0 + cfg.tile);
        const int iters = ref.tile_iters[task];

        // Chunk layout: classification rows, then iters-1 smoothing
        // passes of the tile.
        const std::size_t classify_chunks = y1 - y0;
        const std::size_t smooth_chunks =
            static_cast<std::size_t>(std::max(0, iters - 1)) * (y1 - y0);
        return std::make_unique<ChunkedOpStream>(
            classify_chunks + smooth_chunks,
            [=](std::size_t chunk, std::vector<MicroOp> &out) {
                out.clear();
                auto addr = [=](std::uint64_t base, std::size_t x,
                                std::size_t y) {
                    return base + 4 * (y * w + x);
                };
                if (chunk < classify_chunks) {
                    const std::size_t y = y0 + chunk;
                    for (std::size_t x = x0; x < x1; ++x) {
                        // Feature build: centre + 4 neighbours.
                        out.push_back(
                            MicroOp::load(addr(img_base, x, y)));
                        out.push_back(MicroOp::load(addr(
                            img_base, std::min(w - 1, x + 1), y)));
                        out.push_back(MicroOp::load(
                            addr(img_base, x > 0 ? x - 1 : 0, y)));
                        out.push_back(MicroOp::load(addr(
                            img_base, x, std::min(h - 1, y + 1))));
                        out.push_back(MicroOp::load(
                            addr(img_base, x, y > 0 ? y - 1 : 0)));
                        for (int i = 0; i < 6; ++i)
                            out.push_back(MicroOp::fpAlu());
                        // Score against each prototype.
                        for (std::size_t c = 0; c < k; ++c) {
                            for (std::size_t j = 0; j < dim; ++j) {
                                out.push_back(MicroOp::load(
                                    proto_base + 8 * (c * dim + j)));
                                out.push_back(MicroOp::fpAlu());
                            }
                            out.push_back(MicroOp::intAlu());
                            out.push_back(MicroOp::branch());
                        }
                        out.push_back(
                            MicroOp::store(addr(label_base, x, y)));
                    }
                } else {
                    const std::size_t rel = chunk - classify_chunks;
                    const std::size_t y = y0 + rel % (y1 - y0);
                    if (y + 1 >= y1 || y <= y0)
                        return;  // border rows skip smoothing
                    for (std::size_t x = x0 + 1; x + 1 < x1; ++x) {
                        // Neighbour-label loads for the prior...
                        out.push_back(MicroOp::load(
                            addr(label_base, x, y - 1)));
                        out.push_back(MicroOp::load(
                            addr(label_base, x, y + 1)));
                        out.push_back(MicroOp::load(
                            addr(label_base, x - 1, y)));
                        out.push_back(MicroOp::load(
                            addr(label_base, x + 1, y)));
                        // ...the pixel feature rebuild...
                        out.push_back(
                            MicroOp::load(addr(img_base, x, y)));
                        for (int i = 0; i < 4; ++i)
                            out.push_back(MicroOp::fpAlu());
                        // ...and the prototype re-score.
                        for (std::size_t c = 0; c < k; ++c) {
                            for (std::size_t j = 0; j < dim; ++j) {
                                out.push_back(MicroOp::load(
                                    proto_base + 8 * (c * dim + j)));
                                out.push_back(MicroOp::fpAlu());
                            }
                            out.push_back(MicroOp::intAlu());
                        }
                        out.push_back(MicroOp::branch());
                        out.push_back(
                            MicroOp::store(addr(label_base, x, y)));
                    }
                }
            });
    };
    program.addPhase(std::move(phase));
    return program;
}

} // namespace csprint
