/**
 * @file
 * Sobel edge-detection kernel (paper Table 1: "Edge detection filter;
 * parallelized with OpenMP"). The reference computes the gradient
 * magnitude of a 3x3 Sobel stencil; the simulated program partitions
 * image rows statically across threads, OpenMP-style.
 */

#ifndef CSPRINT_WORKLOADS_SOBEL_HH
#define CSPRINT_WORKLOADS_SOBEL_HH

#include <cstdint>

#include "archsim/program.hh"
#include "workloads/image.hh"
#include "workloads/workload.hh"

namespace csprint {

/** Sobel kernel configuration. */
struct SobelConfig
{
    std::size_t width = 384;
    std::size_t height = 384;
    std::size_t rows_per_task = 4;
    std::uint64_t seed = 42;

    /** Scaled configuration for an input-size class. */
    static SobelConfig forSize(InputSize size, std::uint64_t seed = 42);
};

/** Reference Sobel gradient magnitude of @p input. */
Image sobelReference(const Image &input);

/** Simulated program mirroring sobelReference's structure. */
ParallelProgram sobelProgram(const SobelConfig &cfg);

} // namespace csprint

#endif // CSPRINT_WORKLOADS_SOBEL_HH
