/**
 * @file
 * The kernel suite of paper Table 1 behind one factory interface:
 * every kernel exposes a reference implementation (tested for
 * functional correctness) and a simulated ParallelProgram whose op
 * stream mirrors the reference's loop structure, operation mix,
 * memory-address pattern, and synchronization.
 */

#ifndef CSPRINT_WORKLOADS_WORKLOAD_HH
#define CSPRINT_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "archsim/program.hh"

namespace csprint {

/** The six kernels of paper Table 1. */
enum class KernelId
{
    Sobel,     ///< edge-detection filter (OpenMP-style rows)
    Feature,   ///< SURF-style feature extraction (MEVBench-inspired)
    Kmeans,    ///< partition-based clustering (OpenMP-style)
    Disparity, ///< stereo block matching (SD-VBS-inspired)
    Texture,   ///< image composition (SD-VBS-inspired)
    Segment,   ///< image feature classification (SD-VBS-inspired)
};

/** All kernels in Table 1 order. */
const std::vector<KernelId> &allKernels();

/** Kernel name as used in the paper's figures. */
std::string kernelName(KernelId id);

/** Table 1 row: kernel plus description. */
struct KernelInfo
{
    KernelId id;
    std::string name;
    std::string description;
    std::string parallelization;
};

/** The full Table 1. */
std::vector<KernelInfo> kernelTable();

/**
 * Input-size classes of Figure 9 (bars A-D). Paper inputs range from
 * sub-megapixel to HD images; ours are scaled down uniformly to keep
 * full-sprint simulation tractable (DESIGN.md, Substitutions).
 */
enum class InputSize
{
    A,  ///< smallest
    B,  ///< default (used for Figure 7)
    C,  ///< large (HD-equivalent)
    D,  ///< largest
};

/** Input-size label ("A".."D"). */
std::string inputSizeName(InputSize size);

/** Scale factor applied to a kernel's base dimension per class. */
double inputSizeScale(InputSize size);

/**
 * Build the simulated program for @p kernel at @p size. @p threads is
 * the software thread count the program will be partitioned for (the
 * program itself is thread-count agnostic; tasks are sized so any
 * count up to 64 load-balances sensibly). @p seed selects the
 * synthetic input.
 */
ParallelProgram buildKernelProgram(KernelId kernel, InputSize size,
                                   std::uint64_t seed = 42);

/** Total ops a single-threaded execution of the program retires. */
std::uint64_t countProgramOps(const ParallelProgram &program);

/**
 * Content digest of @p program: a 64-bit FNV-1a hash over the program
 * name, every phase's (name, kind, task count), and every op each
 * task materializes. Two programs digest equal iff the machine sees
 * byte-identical op streams — the determinism guard behind
 * ScenarioConfig::verify_pipeline_build. Materializes every stream,
 * so it costs about as much as generating the program's full trace.
 */
std::uint64_t programDigest(const ParallelProgram &program);

} // namespace csprint

#endif // CSPRINT_WORKLOADS_WORKLOAD_HH
