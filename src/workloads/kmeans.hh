/**
 * @file
 * K-means clustering kernel (paper Table 1: "Partition based
 * clustering; parallelized with OpenMP"). The reference runs Lloyd's
 * algorithm on clustered synthetic points until assignments stabilize;
 * the simulated program repeats, per iteration, a statically
 * partitioned assignment phase, a lock-protected reduction phase, and
 * a serial re-centering phase — the iteration count is taken from the
 * reference run so the simulated structure matches the data.
 */

#ifndef CSPRINT_WORKLOADS_KMEANS_HH
#define CSPRINT_WORKLOADS_KMEANS_HH

#include <cstdint>
#include <vector>

#include "archsim/program.hh"
#include "workloads/workload.hh"

namespace csprint {

/** K-means configuration. */
struct KmeansConfig
{
    std::size_t num_points = 6000;
    std::size_t dims = 4;
    std::size_t clusters = 8;
    std::size_t max_iters = 12;
    std::size_t points_per_task = 256;
    std::uint64_t seed = 42;

    static KmeansConfig forSize(InputSize size, std::uint64_t seed = 42);
};

/** Outcome of the reference run. */
struct KmeansResult
{
    std::size_t iterations = 0;             ///< iterations executed
    std::vector<double> centroids;          ///< clusters x dims
    std::vector<int> assignment;            ///< per point
};

/** Reference Lloyd's algorithm on synthetic clustered points. */
KmeansResult kmeansReference(const KmeansConfig &cfg);

/** Simulated program matching the reference's iteration structure. */
ParallelProgram kmeansProgram(const KmeansConfig &cfg);

} // namespace csprint

#endif // CSPRINT_WORKLOADS_KMEANS_HH
