#include "workloads/sobel.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

SobelConfig
SobelConfig::forSize(InputSize size, std::uint64_t seed)
{
    SobelConfig cfg;
    const double s = inputSizeScale(size);
    cfg.width = static_cast<std::size_t>(384 * s);
    cfg.height = static_cast<std::size_t>(384 * s);
    cfg.seed = seed;
    return cfg;
}

Image
sobelReference(const Image &input)
{
    const std::size_t w = input.width();
    const std::size_t h = input.height();
    Image out(w, h);
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            const long xl = static_cast<long>(x);
            const long yl = static_cast<long>(y);
            const double p00 = input.atClamped(xl - 1, yl - 1);
            const double p10 = input.atClamped(xl, yl - 1);
            const double p20 = input.atClamped(xl + 1, yl - 1);
            const double p01 = input.atClamped(xl - 1, yl);
            const double p21 = input.atClamped(xl + 1, yl);
            const double p02 = input.atClamped(xl - 1, yl + 1);
            const double p12 = input.atClamped(xl, yl + 1);
            const double p22 = input.atClamped(xl + 1, yl + 1);
            const double gx =
                (p20 + 2.0 * p21 + p22) - (p00 + 2.0 * p01 + p02);
            const double gy =
                (p02 + 2.0 * p12 + p22) - (p00 + 2.0 * p10 + p20);
            out.set(x, y,
                    static_cast<float>(std::sqrt(gx * gx + gy * gy)));
        }
    }
    return out;
}

ParallelProgram
sobelProgram(const SobelConfig &cfg)
{
    SPRINT_ASSERT(cfg.width >= 8 && cfg.height >= 8, "image too small");
    const std::size_t w = cfg.width;
    const std::size_t h = cfg.height;
    const std::size_t rpt = std::max<std::size_t>(1, cfg.rows_per_task);

    AddressAllocator alloc;
    const std::uint64_t in_base = alloc.alloc(w * h * 4);
    const std::uint64_t out_base = alloc.alloc(w * h * 4);

    ParallelProgram program("sobel");
    Phase phase;
    phase.name = "stencil";
    phase.kind = PhaseKind::ParallelStatic;
    phase.num_tasks = (h + rpt - 1) / rpt;
    // 8 neighbour loads + 8 int + 3 fp + branch + store per pixel.
    constexpr std::size_t kOpsPerPixel = 21;
    phase.make_task = [=](std::size_t task) -> std::unique_ptr<OpStream> {
        const std::size_t row0 = task * rpt;
        const std::size_t row1 = std::min(h, row0 + rpt);
        return std::make_unique<ChunkedOpStream>(
            row1 - row0,
            [=](std::size_t chunk, std::vector<MicroOp> &out) {
                const std::size_t y = row0 + chunk;
                // Row clamping resolves once per chunk, column
                // clamping once per pixel; the generated sequence is
                // the per-pixel (dy, dx) neighbour scan.
                const std::size_t ym = y > 0 ? y - 1 : 0;
                const std::size_t yp = y + 1 < h ? y + 1 : h - 1;
                const std::uint64_t row_m =
                    in_base + 4 * (static_cast<std::uint64_t>(ym) * w);
                const std::uint64_t row_c =
                    in_base + 4 * (static_cast<std::uint64_t>(y) * w);
                const std::uint64_t row_p =
                    in_base + 4 * (static_cast<std::uint64_t>(yp) * w);
                out.resize(w * kOpsPerPixel);
                MicroOp *p = out.data();
                for (std::size_t x = 0; x < w; ++x) {
                    const std::uint64_t xm =
                        4 * static_cast<std::uint64_t>(x > 0 ? x - 1
                                                             : 0);
                    const std::uint64_t xc =
                        4 * static_cast<std::uint64_t>(x);
                    const std::uint64_t xp =
                        4 * static_cast<std::uint64_t>(
                                x + 1 < w ? x + 1 : w - 1);
                    // Eight neighbour loads (centre unused by Sobel).
                    *p++ = MicroOp::load(row_m + xm);
                    *p++ = MicroOp::load(row_m + xc);
                    *p++ = MicroOp::load(row_m + xp);
                    *p++ = MicroOp::load(row_c + xm);
                    *p++ = MicroOp::load(row_c + xp);
                    *p++ = MicroOp::load(row_p + xm);
                    *p++ = MicroOp::load(row_p + xc);
                    *p++ = MicroOp::load(row_p + xp);
                    // Gradient arithmetic: 10 adds/muls and the
                    // magnitude, then the loop branch.
                    for (int i = 0; i < 8; ++i)
                        *p++ = MicroOp::intAlu();
                    for (int i = 0; i < 3; ++i)
                        *p++ = MicroOp::fpAlu();
                    *p++ = MicroOp::branch();
                    *p++ = MicroOp::store(out_base + 4 * (y * w + x));
                }
            });
    };
    program.addPhase(std::move(phase));
    return program;
}

} // namespace csprint
