#include "workloads/feature.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

FeatureConfig
FeatureConfig::forSize(InputSize size, std::uint64_t seed)
{
    FeatureConfig cfg;
    const double s = inputSizeScale(size);
    cfg.width = static_cast<std::size_t>(256 * s);
    cfg.height = static_cast<std::size_t>(256 * s);
    cfg.seed = seed;
    return cfg;
}

namespace {

/** Box-filter half-size for scale index s. */
long
filterRadius(int s)
{
    return 3 + 2 * static_cast<long>(s);
}

/** Hessian determinant response at (x, y) for scale s. */
double
hessianResponse(const Image &integral, long x, long y, int s)
{
    const long r = filterRadius(s);
    const double norm = 1.0 / static_cast<double>((2 * r + 1) *
                                                  (2 * r + 1));
    // Dxx: [left | -2*middle | right] vertical thirds.
    const double dxx =
        boxSum(integral, x - r, y - r / 2, x - r / 3, y + r / 2) -
        2.0 * boxSum(integral, x - r / 3, y - r / 2, x + r / 3,
                     y + r / 2) +
        boxSum(integral, x + r / 3, y - r / 2, x + r, y + r / 2);
    // Dyy: transposed thirds.
    const double dyy =
        boxSum(integral, x - r / 2, y - r, x + r / 2, y - r / 3) -
        2.0 * boxSum(integral, x - r / 2, y - r / 3, x + r / 2,
                     y + r / 3) +
        boxSum(integral, x - r / 2, y + r / 3, x + r / 2, y + r);
    // Dxy: four quadrants.
    const double dxy =
        boxSum(integral, x - r, y - r, x - 1, y - 1) -
        boxSum(integral, x + 1, y - r, x + r, y - 1) -
        boxSum(integral, x - r, y + 1, x - 1, y + r) +
        boxSum(integral, x + 1, y + 1, x + r, y + r);
    const double nxx = dxx * norm;
    const double nyy = dyy * norm;
    const double nxy = dxy * norm;
    return nxx * nyy - 0.81 * nxy * nxy;
}

} // namespace

FeatureResult
featureReference(const FeatureConfig &cfg)
{
    const Image img = makeSyntheticImage(cfg.width, cfg.height, cfg.seed);
    const Image integral = integralImage(img);
    const long w = static_cast<long>(cfg.width);
    const long h = static_cast<long>(cfg.height);

    FeatureResult result;
    // Stride-4 detection grid keeps keypoint counts manageable while
    // preserving coverage, as embedded SURF implementations do.
    for (int s = 0; s < cfg.scales; ++s) {
        const long r = filterRadius(s);
        for (long y = r; y + r < h; y += 4) {
            for (long x = r; x + r < w; x += 4) {
                const double resp = hessianResponse(integral, x, y, s);
                if (resp > cfg.threshold) {
                    Keypoint kp;
                    kp.x = static_cast<std::size_t>(x);
                    kp.y = static_cast<std::size_t>(y);
                    kp.scale = s;
                    kp.response = resp;
                    // 16-dim descriptor: 4x4 grid of mean intensities.
                    kp.descriptor.resize(16);
                    const long cell = std::max<long>(1, r / 2);
                    for (int gy = 0; gy < 4; ++gy) {
                        for (int gx = 0; gx < 4; ++gx) {
                            const long cx0 = x + (gx - 2) * cell;
                            const long cy0 = y + (gy - 2) * cell;
                            const double sum =
                                boxSum(integral, cx0, cy0,
                                       cx0 + cell - 1, cy0 + cell - 1);
                            kp.descriptor[gy * 4 + gx] =
                                static_cast<float>(
                                    sum / (cell * cell));
                        }
                    }
                    result.keypoints.push_back(std::move(kp));
                }
            }
        }
    }
    return result;
}

ParallelProgram
featureProgram(const FeatureConfig &cfg)
{
    // Keypoint population comes from the reference run.
    const FeatureResult ref = featureReference(cfg);

    const std::size_t w = cfg.width;
    const std::size_t h = cfg.height;
    const std::size_t rpt = std::max<std::size_t>(1, cfg.rows_per_task);
    const std::size_t row_tasks = (h + rpt - 1) / rpt;
    const std::size_t col_tasks = (w + rpt - 1) / rpt;

    AddressAllocator alloc;
    const std::uint64_t img_base = alloc.alloc(w * h * 4);
    const std::uint64_t int_base = alloc.alloc(w * h * 4);
    std::vector<std::uint64_t> resp_bases;
    for (int s = 0; s < cfg.scales; ++s)
        resp_bases.push_back(alloc.alloc(w * h * 4));
    const std::uint64_t desc_base =
        alloc.alloc(ref.keypoints.size() * 16 * 4 + 64);

    ParallelProgram program("feature");

    // Phase 1: integral image, row-prefix pass (streaming rows).
    Phase rows;
    rows.name = "integral_rows";
    rows.kind = PhaseKind::ParallelStatic;
    rows.num_tasks = row_tasks;
    rows.make_task = [=](std::size_t task) -> std::unique_ptr<OpStream> {
        const std::size_t row0 = task * rpt;
        const std::size_t row1 = std::min(h, row0 + rpt);
        return std::make_unique<ChunkedOpStream>(
            row1 - row0,
            [=](std::size_t chunk, std::vector<MicroOp> &out) {
                out.clear();
                const std::size_t y = row0 + chunk;
                for (std::size_t x = 0; x < w; ++x) {
                    out.push_back(
                        MicroOp::load(img_base + 4 * (y * w + x)));
                    out.push_back(MicroOp::fpAlu());  // running sum
                    out.push_back(MicroOp::branch());
                    out.push_back(
                        MicroOp::store(int_base + 4 * (y * w + x)));
                }
            });
    };
    program.addPhase(std::move(rows));

    // Phase 2: integral image, column-prefix pass (stride-w walks:
    // the cache-hostile stage).
    Phase cols;
    cols.name = "integral_cols";
    cols.kind = PhaseKind::ParallelStatic;
    cols.num_tasks = col_tasks;
    cols.make_task = [=](std::size_t task) -> std::unique_ptr<OpStream> {
        const std::size_t col0 = task * rpt;
        const std::size_t col1 = std::min(w, col0 + rpt);
        return std::make_unique<ChunkedOpStream>(
            col1 - col0,
            [=](std::size_t chunk, std::vector<MicroOp> &out) {
                out.clear();
                const std::size_t x = col0 + chunk;
                for (std::size_t y = 1; y < h; ++y) {
                    out.push_back(
                        MicroOp::load(int_base + 4 * (y * w + x)));
                    out.push_back(MicroOp::load(
                        int_base + 4 * ((y - 1) * w + x)));
                    out.push_back(MicroOp::fpAlu());
                    out.push_back(MicroOp::branch());
                    out.push_back(
                        MicroOp::store(int_base + 4 * (y * w + x)));
                }
            });
    };
    program.addPhase(std::move(cols));

    // Phase 3: Hessian responses per scale (box filters over the
    // integral image, streaming a response map per scale).
    Phase hessian;
    hessian.name = "hessian";
    hessian.kind = PhaseKind::ParallelStatic;
    hessian.num_tasks = row_tasks;
    hessian.make_task =
        [=](std::size_t task) -> std::unique_ptr<OpStream> {
        const std::size_t row0 = task * rpt;
        const std::size_t row1 = std::min(h, row0 + rpt);
        return std::make_unique<ChunkedOpStream>(
            row1 - row0,
            [=](std::size_t chunk, std::vector<MicroOp> &out) {
                out.clear();
                const std::size_t y = row0 + chunk;
                auto iaddr = [=](long xx, long yy) {
                    xx = std::clamp<long>(xx, 0,
                                          static_cast<long>(w) - 1);
                    yy = std::clamp<long>(yy, 0,
                                          static_cast<long>(h) - 1);
                    return int_base +
                           4 * (static_cast<std::uint64_t>(yy) * w +
                                static_cast<std::uint64_t>(xx));
                };
                for (std::size_t x = 0; x < w; x += 4) {
                    for (int s = 0; s < cfg.scales; ++s) {
                        const long r = filterRadius(s);
                        const long xl = static_cast<long>(x);
                        const long yl = static_cast<long>(y);
                        // Twelve integral-image corner loads (three
                        // box filters x four corners).
                        const long offs[12][2] = {
                            {-r, -r}, {r, -r},  {-r, r},  {r, r},
                            {-r / 3, -r / 2}, {r / 3, r / 2},
                            {-r / 2, -r / 3}, {r / 2, r / 3},
                            {-r, 0},  {r, 0},  {0, -r},  {0, r}};
                        for (const auto &o : offs) {
                            out.push_back(MicroOp::load(
                                iaddr(xl + o[0], yl + o[1])));
                        }
                        for (int i = 0; i < 14; ++i)
                            out.push_back(MicroOp::fpAlu());
                        out.push_back(MicroOp::branch());
                        out.push_back(MicroOp::store(
                            resp_bases[s] + 4 * (y * w + x)));
                    }
                }
            });
    };
    program.addPhase(std::move(hessian));

    // Phase 4: descriptor extraction over detected keypoints (dynamic
    // dequeue: counts and positions are data-dependent).
    Phase desc;
    desc.name = "descriptors";
    desc.kind = PhaseKind::ParallelDynamic;
    desc.num_tasks = ref.keypoints.size();
    // Copy the lightweight keypoint geometry into the closure.
    std::vector<std::uint32_t> kp_x, kp_y;
    std::vector<int> kp_s;
    kp_x.reserve(ref.keypoints.size());
    for (const auto &kp : ref.keypoints) {
        kp_x.push_back(static_cast<std::uint32_t>(kp.x));
        kp_y.push_back(static_cast<std::uint32_t>(kp.y));
        kp_s.push_back(kp.scale);
    }
    desc.make_task = [=](std::size_t task) -> std::unique_ptr<OpStream> {
        const long x = kp_x[task];
        const long y = kp_y[task];
        const long r = filterRadius(kp_s[task]);
        const long cell = std::max<long>(1, r / 2);
        return std::make_unique<ChunkedOpStream>(
            4,  // one chunk per descriptor grid row
            [=](std::size_t gy, std::vector<MicroOp> &out) {
                out.clear();
                auto iaddr = [=](long xx, long yy) {
                    xx = std::clamp<long>(xx, 0,
                                          static_cast<long>(w) - 1);
                    yy = std::clamp<long>(yy, 0,
                                          static_cast<long>(h) - 1);
                    return int_base +
                           4 * (static_cast<std::uint64_t>(yy) * w +
                                static_cast<std::uint64_t>(xx));
                };
                for (int gx = 0; gx < 4; ++gx) {
                    const long cx0 = x + (gx - 2) * cell;
                    const long cy0 = y + (static_cast<long>(gy) - 2) *
                                             cell;
                    out.push_back(MicroOp::load(iaddr(cx0, cy0)));
                    out.push_back(
                        MicroOp::load(iaddr(cx0 + cell, cy0)));
                    out.push_back(
                        MicroOp::load(iaddr(cx0, cy0 + cell)));
                    out.push_back(MicroOp::load(
                        iaddr(cx0 + cell, cy0 + cell)));
                    for (int i = 0; i < 6; ++i)
                        out.push_back(MicroOp::fpAlu());
                    out.push_back(MicroOp::branch());
                    out.push_back(MicroOp::store(
                        desc_base +
                        4 * (task * 16 + gy * 4 +
                             static_cast<std::size_t>(gx))));
                }
            });
    };
    program.addPhase(std::move(desc));
    return program;
}

} // namespace csprint
