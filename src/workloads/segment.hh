/**
 * @file
 * Image-segmentation kernel (paper Table 1: "Image feature
 * classification; adapted from SD-VBS"). Pixels are classified against
 * a small prototype model; detail-rich tiles run extra refinement
 * iterations, so task weights are data-dependent and imbalanced — the
 * load-imbalance behind the kernel's parallelism-limited scaling
 * (6.6x on 16 cores in the paper).
 */

#ifndef CSPRINT_WORKLOADS_SEGMENT_HH
#define CSPRINT_WORKLOADS_SEGMENT_HH

#include <cstdint>
#include <vector>

#include "archsim/program.hh"
#include "workloads/image.hh"
#include "workloads/workload.hh"

namespace csprint {

/** Segmentation configuration. */
struct SegmentConfig
{
    std::size_t width = 160;
    std::size_t height = 160;
    std::size_t tile = 40;       ///< square tile edge (one task each);
                                 ///< coarse tiles bound the available
                                 ///< parallelism, as in SD-VBS segment
    std::size_t classes = 4;
    std::size_t model_dim = 6;   ///< prototype feature dimensionality
    int max_refine = 12;         ///< refinement cap for busy tiles
    std::uint64_t seed = 42;

    static SegmentConfig forSize(InputSize size, std::uint64_t seed = 42);
};

/** Reference outcome. */
struct SegmentResult
{
    std::vector<int> labels;        ///< per-pixel class
    std::vector<int> tile_iters;    ///< refinement iterations per tile
};

/** Reference prototype classification with tile refinement. */
SegmentResult segmentReference(const SegmentConfig &cfg);

/** Simulated program: dynamic tasks weighted like the reference. */
ParallelProgram segmentProgram(const SegmentConfig &cfg);

} // namespace csprint

#endif // CSPRINT_WORKLOADS_SEGMENT_HH
