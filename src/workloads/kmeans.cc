#include "workloads/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"

namespace csprint {

KmeansConfig
KmeansConfig::forSize(InputSize size, std::uint64_t seed)
{
    KmeansConfig cfg;
    const double s = inputSizeScale(size);
    cfg.num_points = static_cast<std::size_t>(6000 * s * s);
    cfg.seed = seed;
    return cfg;
}

namespace {

/** Deterministic clustered point cloud: points around K anchors. */
std::vector<double>
makePoints(const KmeansConfig &cfg)
{
    Rng rng(cfg.seed);
    std::vector<double> anchors(cfg.clusters * cfg.dims);
    for (auto &a : anchors)
        a = rng.uniform(-10.0, 10.0);

    std::vector<double> points(cfg.num_points * cfg.dims);
    for (std::size_t p = 0; p < cfg.num_points; ++p) {
        const std::size_t c = rng.uniformInt(cfg.clusters);
        for (std::size_t d = 0; d < cfg.dims; ++d) {
            points[p * cfg.dims + d] =
                anchors[c * cfg.dims + d] + rng.uniform(-1.5, 1.5);
        }
    }
    return points;
}

} // namespace

KmeansResult
kmeansReference(const KmeansConfig &cfg)
{
    SPRINT_ASSERT(cfg.clusters >= 1 && cfg.num_points >= cfg.clusters,
                  "bad kmeans configuration");
    const std::vector<double> points = makePoints(cfg);
    const std::size_t n = cfg.num_points;
    const std::size_t d = cfg.dims;
    const std::size_t k = cfg.clusters;

    KmeansResult result;
    result.centroids.resize(k * d);
    // Initialize centroids from the first k points.
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t j = 0; j < d; ++j)
            result.centroids[c * d + j] = points[c * d + j];
    result.assignment.assign(n, -1);

    for (std::size_t iter = 0; iter < cfg.max_iters; ++iter) {
        bool changed = false;
        for (std::size_t p = 0; p < n; ++p) {
            double best = std::numeric_limits<double>::infinity();
            int best_c = 0;
            for (std::size_t c = 0; c < k; ++c) {
                double dist = 0.0;
                for (std::size_t j = 0; j < d; ++j) {
                    const double diff = points[p * d + j] -
                                        result.centroids[c * d + j];
                    dist += diff * diff;
                }
                if (dist < best) {
                    best = dist;
                    best_c = static_cast<int>(c);
                }
            }
            if (result.assignment[p] != best_c) {
                result.assignment[p] = best_c;
                changed = true;
            }
        }
        ++result.iterations;
        // Recompute centroids.
        std::vector<double> sums(k * d, 0.0);
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t p = 0; p < n; ++p) {
            const std::size_t c =
                static_cast<std::size_t>(result.assignment[p]);
            ++counts[c];
            for (std::size_t j = 0; j < d; ++j)
                sums[c * d + j] += points[p * d + j];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            for (std::size_t j = 0; j < d; ++j) {
                result.centroids[c * d + j] =
                    sums[c * d + j] / static_cast<double>(counts[c]);
            }
        }
        if (!changed)
            break;
    }
    return result;
}

ParallelProgram
kmeansProgram(const KmeansConfig &cfg)
{
    // The simulated structure follows the reference's realized
    // iteration count for this input.
    const KmeansResult ref = kmeansReference(cfg);

    const std::size_t n = cfg.num_points;
    const std::size_t d = cfg.dims;
    const std::size_t k = cfg.clusters;
    const std::size_t ppt = std::max<std::size_t>(16, cfg.points_per_task);
    const std::size_t num_tasks = (n + ppt - 1) / ppt;

    AddressAllocator alloc;
    const std::uint64_t pts_base = alloc.alloc(n * d * 8);
    const std::uint64_t cent_base = alloc.alloc(k * d * 8);
    const std::uint64_t assign_base = alloc.alloc(n * 4);
    const std::uint64_t sums_base = alloc.alloc(k * (d + 1) * 8);
    constexpr std::uint64_t kReduceLock = 0;

    ParallelProgram program("kmeans");
    for (std::size_t iter = 0; iter < ref.iterations; ++iter) {
        // Phase 1: assignment, statically partitioned point blocks.
        Phase assign;
        assign.name = "assign";
        assign.kind = PhaseKind::ParallelStatic;
        assign.num_tasks = num_tasks;
        assign.make_task =
            [=](std::size_t task) -> std::unique_ptr<OpStream> {
            const std::size_t p0 = task * ppt;
            const std::size_t p1 = std::min(n, p0 + ppt);
            return std::make_unique<ChunkedOpStream>(
                p1 - p0,
                [=](std::size_t chunk, std::vector<MicroOp> &out) {
                    out.clear();
                    const std::size_t p = p0 + chunk;
                    // Load the point once.
                    for (std::size_t j = 0; j < d; ++j) {
                        out.push_back(MicroOp::load(pts_base +
                                                    8 * (p * d + j)));
                    }
                    // Distance to every centroid.
                    for (std::size_t c = 0; c < k; ++c) {
                        for (std::size_t j = 0; j < d; ++j) {
                            out.push_back(MicroOp::load(
                                cent_base + 8 * (c * d + j)));
                            out.push_back(MicroOp::fpAlu());  // diff
                            out.push_back(MicroOp::fpAlu());  // fma
                        }
                        out.push_back(MicroOp::intAlu());  // compare
                        out.push_back(MicroOp::branch());
                    }
                    out.push_back(
                        MicroOp::store(assign_base + 4 * p));
                });
        };
        program.addPhase(std::move(assign));

        // Phase 2: reduction - each task accumulates privately, then
        // merges into the shared sums under a lock.
        Phase reduce;
        reduce.name = "reduce";
        reduce.kind = PhaseKind::ParallelStatic;
        reduce.num_tasks = num_tasks;
        reduce.make_task =
            [=](std::size_t task) -> std::unique_ptr<OpStream> {
            const std::size_t p0 = task * ppt;
            const std::size_t p1 = std::min(n, p0 + ppt);
            // Chunks: one per point, then a final merge chunk.
            const std::size_t chunks = (p1 - p0) + 1;
            // Thread-private partial sums live in a per-task scratch
            // area; reuse the task index to give each a distinct range.
            const std::uint64_t scratch =
                sums_base + 4096 + task * k * (d + 1) * 8;
            return std::make_unique<ChunkedOpStream>(
                chunks,
                [=](std::size_t chunk, std::vector<MicroOp> &out) {
                    out.clear();
                    if (chunk < p1 - p0) {
                        const std::size_t p = p0 + chunk;
                        out.push_back(
                            MicroOp::load(assign_base + 4 * p));
                        for (std::size_t j = 0; j < d; ++j) {
                            out.push_back(MicroOp::load(
                                pts_base + 8 * (p * d + j)));
                            out.push_back(MicroOp::fpAlu());
                            out.push_back(MicroOp::store(
                                scratch + 8 * j));
                        }
                        out.push_back(MicroOp::intAlu());  // count++
                        out.push_back(MicroOp::branch());
                    } else {
                        // Merge into the global sums under the lock.
                        out.push_back(MicroOp::lockAcquire(kReduceLock));
                        for (std::size_t c = 0; c < k; ++c) {
                            for (std::size_t j = 0; j <= d; ++j) {
                                const std::uint64_t addr =
                                    sums_base + 8 * (c * (d + 1) + j);
                                out.push_back(MicroOp::load(addr));
                                out.push_back(MicroOp::fpAlu());
                                out.push_back(MicroOp::store(addr));
                            }
                        }
                        out.push_back(
                            MicroOp::lockRelease(kReduceLock));
                    }
                });
        };
        program.addPhase(std::move(reduce));

        // Phase 3: serial re-centering.
        Phase recenter;
        recenter.name = "recenter";
        recenter.kind = PhaseKind::Serial;
        recenter.num_tasks = 1;
        recenter.make_task =
            [=](std::size_t) -> std::unique_ptr<OpStream> {
            std::vector<MicroOp> ops;
            for (std::size_t c = 0; c < k; ++c) {
                for (std::size_t j = 0; j < d; ++j) {
                    ops.push_back(MicroOp::load(
                        sums_base + 8 * (c * (d + 1) + j)));
                    ops.push_back(MicroOp::load(
                        sums_base + 8 * (c * (d + 1) + d)));
                    ops.push_back(MicroOp::fpAlu());  // divide
                    ops.push_back(MicroOp::store(
                        cent_base + 8 * (c * d + j)));
                }
            }
            return std::make_unique<VectorOpStream>(std::move(ops));
        };
        program.addPhase(std::move(recenter));
    }
    return program;
}

} // namespace csprint
