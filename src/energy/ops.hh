/**
 * @file
 * The abstract instruction classes the architectural simulator executes
 * and the energy model prices. The set follows the paper's simulation
 * methodology (Section 8.1): simple in-order cores with a CPI of one
 * plus cache-miss penalties, a PAUSE instruction that puts the core to
 * sleep on synchronization stalls, and lock primitives for the runtime.
 */

#ifndef CSPRINT_ENERGY_OPS_HH
#define CSPRINT_ENERGY_OPS_HH

#include <cstddef>
#include <string>

namespace csprint {

/** Abstract instruction classes. */
enum class OpKind : unsigned char
{
    IntAlu,      ///< integer arithmetic/logic
    FpAlu,       ///< floating-point arithmetic
    Load,        ///< memory read
    Store,       ///< memory write
    Branch,      ///< control flow
    Pause,       ///< yield hint: core sleeps ~1000 cycles at low power
    LockAcquire, ///< runtime lock acquire (addr = lock id)
    LockRelease, ///< runtime lock release (addr = lock id)
};

/** Number of distinct OpKind values. */
constexpr std::size_t kNumOpKinds = 8;

static_assert(kNumOpKinds ==
                  static_cast<std::size_t>(OpKind::LockRelease) + 1,
              "kNumOpKinds must track the OpKind enumerators; update both "
              "together (and every OpKind-indexed array) when adding ops");

/**
 * Index of @p kind into an OpKind-indexed array of kNumOpKinds
 * entries. Using this instead of a bare cast keeps every such array
 * behind the static_assert above.
 */
constexpr std::size_t
opKindIndex(OpKind kind)
{
    return static_cast<std::size_t>(kind);
}

/** Human-readable op-kind name. */
std::string opKindName(OpKind kind);

} // namespace csprint

#endif // CSPRINT_ENERGY_OPS_HH
