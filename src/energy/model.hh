/**
 * @file
 * Per-instruction dynamic-energy model in the spirit of McPAT, as used
 * by the paper's evaluation (Section 8.1): energies are associated with
 * the type of instruction being executed, configured for a ~1 GHz, 1 W
 * core at a 22 nm low-operating-power node. Dynamic energy scales as
 * C * Vdd^2; a voltage/frequency boost multiplies per-op energy by the
 * square of the boost (the quadratic power cost of DVFS the paper
 * contrasts with parallel sprinting).
 */

#ifndef CSPRINT_ENERGY_MODEL_HH
#define CSPRINT_ENERGY_MODEL_HH

#include <array>

#include "common/units.hh"
#include "energy/ops.hh"

namespace csprint {

/** Technology/operating-point parameters for the energy model. */
struct TechParams
{
    int node_nm = 22;        ///< process node
    Volts vdd = 0.8;         ///< nominal supply at LOP
    Hertz clock = 1e9;       ///< nominal core clock
    double cap_scale = 1.0;  ///< effective switched-capacitance scale

    /** The paper's 22 nm LOP, 1 GHz, ~1 W core operating point. */
    static TechParams lop22nm();
};

/**
 * Maps executed instructions (and memory-hierarchy events) to dynamic
 * energy. Calibrated so a fully active core at the nominal operating
 * point dissipates approximately 1 W with a typical kernel op mix.
 */
class InstructionEnergyModel
{
  public:
    explicit InstructionEnergyModel(const TechParams &tech =
                                        TechParams::lop22nm());

    /** Dynamic energy charged when an op of @p kind retires. */
    Joules opEnergy(OpKind kind) const
    {
        return op_energy[static_cast<std::size_t>(kind)];
    }

    /** Extra energy for an access that reaches the shared L2. */
    Joules l2AccessEnergy() const { return l2_energy; }

    /** Extra energy for an access that reaches DRAM. */
    Joules dramAccessEnergy() const { return dram_energy; }

    /**
     * Energy charged for a cycle in which the core does not retire an
     * op (stalled, sleeping after PAUSE, or idle). The paper assumes a
     * sleeping core dissipates 10% of an active core's power.
     */
    Joules idleCycleEnergy() const { return idle_energy; }

    /** Average active-cycle energy the calibration targets. */
    Joules nominalCycleEnergy() const { return nominal_cycle; }

    /**
     * The model under a DVFS boost of @p voltage_boost (voltage and
     * frequency both scaled by the boost): per-op energies grow with
     * the square of the boost.
     */
    InstructionEnergyModel boosted(double voltage_boost) const;

    /** Technology point this model was built for. */
    const TechParams &tech() const { return params; }

  private:
    friend struct CheckpointIO;

    TechParams params;
    std::array<Joules, kNumOpKinds> op_energy;
    Joules l2_energy;
    Joules dram_energy;
    Joules idle_energy;
    Joules nominal_cycle;
};

/**
 * DVFS arithmetic of paper Section 8.4: with a thermal headroom of
 * @p power_headroom times the sustainable power, the attainable
 * frequency boost is the cube root of the headroom (power grows with
 * the cube of frequency under coupled voltage-frequency scaling);
 * 16x headroom yields ~2.5x performance.
 */
double dvfsBoostFromHeadroom(double power_headroom);

/** Energy overhead of running work at @p boost: boost squared. */
double dvfsEnergyFactor(double boost);

} // namespace csprint

#endif // CSPRINT_ENERGY_MODEL_HH
