/**
 * @file
 * Power-source models for sprinting (paper Section 6): batteries with
 * burst-current limits, ultracapacitors, hybrid battery+ultracapacitor
 * supplies, and the package-pin current-delivery arithmetic.
 */

#ifndef CSPRINT_ENERGY_SUPPLY_HH
#define CSPRINT_ENERGY_SUPPLY_HH

#include <optional>
#include <string>

#include "common/units.hh"

namespace csprint {

/**
 * A battery with open-circuit voltage, internal resistance, and a
 * manufacturer burst-current ceiling (thermal limits inside the cell).
 */
struct Battery
{
    std::string name;
    Volts ocv;            ///< open-circuit voltage
    Ohms internal_r;      ///< internal resistance
    Amps max_burst;       ///< burst-current ceiling
    Joules capacity;      ///< stored energy when full
    Grams mass;           ///< cell mass

    /** Terminal voltage when sourcing @p current. */
    Volts terminalVoltage(Amps current) const;

    /**
     * Current required to deliver @p power at the sagging terminal
     * voltage; empty when the operating point does not exist.
     */
    std::optional<Amps> currentForPower(Watts power) const;

    /** Largest power deliverable within the burst-current limit. */
    Watts maxBurstPower() const;

    /** True when @p power can be sourced within limits. */
    bool canSupply(Watts power) const;

    /**
     * Representative smart-phone Li-ion cell: bursts of ~10 W
     * (2.7 A at 3.7 V); higher currents are precluded by internal
     * thermal constraints (paper Section 6).
     */
    static Battery phoneLiIon();

    /**
     * Representative high-discharge Li-polymer pack (Dualsky GT 850
     * 2s class): 43 A at 7 V, 51 g.
     */
    static Battery highDischargeLiPo();
};

/** An ultracapacitor bank (possibly several identical cells). */
struct Ultracapacitor
{
    std::string name;
    Farads capacitance;   ///< total capacitance of the bank
    Volts rated_voltage;  ///< maximum cell/bank voltage
    Ohms esr;             ///< equivalent series resistance
    Amps max_current;     ///< peak current rating
    Amps leakage;         ///< self-discharge current
    Grams mass;           ///< bank mass

    /** Energy stored at @p voltage (defaults to the rated voltage). */
    Joules storedEnergy(Volts voltage) const;
    Joules storedEnergy() const { return storedEnergy(rated_voltage); }

    /**
     * Usable energy discharging from the rated voltage down to
     * @p v_min (converter drop-out).
     */
    Joules usableEnergy(Volts v_min) const;

    /**
     * Voltage remaining after delivering @p power for @p duration from
     * a full charge (constant-power discharge); empty if the bank is
     * exhausted first.
     */
    std::optional<Volts> voltageAfter(Watts power, Seconds duration) const;

    /** NESSCAP 25 F cell: 6.5 g, 20 A peak at 2.7 V rated. */
    static Ultracapacitor nesscap25F();
};

/**
 * Hybrid supply: the ultracapacitor sources the sprint surge beyond
 * what the battery may deliver; between sprints the battery recharges
 * the capacitor (paper Section 6).
 */
struct HybridSupply
{
    Battery battery;
    Ultracapacitor cap;
    double converter_efficiency = 0.90;
    Volts cap_min_voltage = 1.0;

    /** True when @p power for @p duration is within combined limits. */
    bool canSprint(Watts power, Seconds duration) const;

    /** Energy the capacitor must contribute for such a sprint. */
    Joules capEnergyNeeded(Watts power, Seconds duration) const;

    /**
     * Time for the battery's spare power (@p recharge_power, e.g. the
     * headroom above nominal load) to refill what the sprint drew.
     */
    Seconds rechargeTime(Watts power, Seconds duration,
                         Watts recharge_power) const;
};

/** Package-pin current-delivery arithmetic (paper Section 6). */
struct PackagePins
{
    Amps per_pin_current = 0.1;  ///< peak current per pin

    /**
     * Pins (power + ground) required to deliver @p current.
     * The paper's example: 16 A at 1 V with 100 mA pins -> 320 pins.
     */
    int pinsRequired(Amps current) const;

    /** Largest current deliverable through @p pins power+ground pins. */
    Amps maxCurrent(int pins) const;
};

} // namespace csprint

#endif // CSPRINT_ENERGY_SUPPLY_HH
