#include "energy/ops.hh"

#include "common/logging.hh"

namespace csprint {

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::IntAlu:
        return "int_alu";
      case OpKind::FpAlu:
        return "fp_alu";
      case OpKind::Load:
        return "load";
      case OpKind::Store:
        return "store";
      case OpKind::Branch:
        return "branch";
      case OpKind::Pause:
        return "pause";
      case OpKind::LockAcquire:
        return "lock_acquire";
      case OpKind::LockRelease:
        return "lock_release";
    }
    SPRINT_PANIC("unknown op kind");
}

} // namespace csprint
