#include "energy/model.hh"

#include <cmath>

#include "common/logging.hh"

namespace csprint {

TechParams
TechParams::lop22nm()
{
    return TechParams{};
}

InstructionEnergyModel::InstructionEnergyModel(const TechParams &tech)
    : params(tech)
{
    // Base energies at the 22 nm LOP reference point, in joules per
    // event. The mix-weighted average across the vision kernels is
    // ~1 nJ per retired op, i.e. ~1 W at 1 GHz and CPI 1.
    const double ref_vdd = 0.8;
    const double scale = params.cap_scale *
                         (params.vdd * params.vdd) / (ref_vdd * ref_vdd);

    auto set = [&](OpKind kind, double joules) {
        op_energy[static_cast<std::size_t>(kind)] = joules * scale;
    };
    set(OpKind::IntAlu, 0.80e-9);
    set(OpKind::FpAlu, 1.25e-9);
    set(OpKind::Load, 1.15e-9);
    set(OpKind::Store, 1.25e-9);
    set(OpKind::Branch, 0.70e-9);
    // PAUSE itself is cheap; the savings come from the sleep cycles
    // that follow it (charged at idleCycleEnergy()).
    set(OpKind::Pause, 0.20e-9);
    set(OpKind::LockAcquire, 1.30e-9);
    set(OpKind::LockRelease, 1.10e-9);

    l2_energy = 2.5e-9 * scale;
    dram_energy = 12.0e-9 * scale;
    nominal_cycle = 1.0e-9 * scale;
    // A sleeping/stalled core dissipates 10% of active power (paper
    // Section 8.1).
    idle_energy = 0.1 * nominal_cycle;
}

InstructionEnergyModel
InstructionEnergyModel::boosted(double voltage_boost) const
{
    SPRINT_ASSERT(voltage_boost > 0.0, "boost must be positive");
    TechParams t = params;
    t.vdd *= voltage_boost;
    t.clock *= voltage_boost;
    return InstructionEnergyModel(t);
}

double
dvfsBoostFromHeadroom(double power_headroom)
{
    SPRINT_ASSERT(power_headroom >= 1.0, "headroom below nominal");
    return std::cbrt(power_headroom);
}

double
dvfsEnergyFactor(double boost)
{
    return boost * boost;
}

} // namespace csprint
