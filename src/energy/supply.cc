#include "energy/supply.hh"

#include <cmath>

#include "common/logging.hh"

namespace csprint {

Volts
Battery::terminalVoltage(Amps current) const
{
    return ocv - current * internal_r;
}

std::optional<Amps>
Battery::currentForPower(Watts power) const
{
    // Solve P = I * (ocv - I*R) for the smaller root.
    const double disc = ocv * ocv - 4.0 * internal_r * power;
    if (disc < 0.0)
        return std::nullopt;
    return (ocv - std::sqrt(disc)) / (2.0 * internal_r);
}

Watts
Battery::maxBurstPower() const
{
    return max_burst * terminalVoltage(max_burst);
}

bool
Battery::canSupply(Watts power) const
{
    const auto current = currentForPower(power);
    return current.has_value() && *current <= max_burst;
}

Battery
Battery::phoneLiIon()
{
    // Representative phone cell (paper: ~10 W burst, 2.7 A at 3.7 V;
    // ~5.5 Wh capacity).
    return Battery{"phone Li-ion", 3.7, 0.15, 2.7, 5.5 * 3600.0, 22.0};
}

Battery
Battery::highDischargeLiPo()
{
    // Dualsky GT 850 2s class: 43 A at 7 V, 51 g, 850 mAh at 7.4 V.
    return Battery{"high-discharge Li-Po", 7.4, 0.008, 43.0,
                   0.85 * 7.4 * 3600.0, 51.0};
}

Joules
Ultracapacitor::storedEnergy(Volts voltage) const
{
    return 0.5 * capacitance * voltage * voltage;
}

Joules
Ultracapacitor::usableEnergy(Volts v_min) const
{
    SPRINT_ASSERT(v_min >= 0.0 && v_min <= rated_voltage,
                  "bad minimum voltage");
    return storedEnergy(rated_voltage) - storedEnergy(v_min);
}

std::optional<Volts>
Ultracapacitor::voltageAfter(Watts power, Seconds duration) const
{
    const Joules drawn = power * duration;
    const Joules have = storedEnergy(rated_voltage);
    if (drawn >= have)
        return std::nullopt;
    return std::sqrt(2.0 * (have - drawn) / capacitance);
}

Ultracapacitor
Ultracapacitor::nesscap25F()
{
    // NESSCAP 25 F: 6.5 g, 20 A peak, 2.7 V rated, <0.1 mA leakage.
    return Ultracapacitor{"NESSCAP 25F", 25.0, 2.7, 0.020, 20.0,
                          0.1e-3, 6.5};
}

bool
HybridSupply::canSprint(Watts power, Seconds duration) const
{
    if (battery.canSupply(power))
        return true;
    const Watts battery_share =
        std::min(power, battery.maxBurstPower());
    const Watts cap_share = power - battery_share;
    // The capacitor's current rating bounds its instantaneous share.
    const Watts cap_power_limit =
        cap.max_current * cap.rated_voltage * converter_efficiency;
    if (cap_share > cap_power_limit)
        return false;
    const Joules needed =
        cap_share * duration / converter_efficiency;
    return needed <= cap.usableEnergy(cap_min_voltage);
}

Joules
HybridSupply::capEnergyNeeded(Watts power, Seconds duration) const
{
    const Watts battery_share =
        std::min(power, battery.maxBurstPower());
    const Watts cap_share = std::max(0.0, power - battery_share);
    return cap_share * duration / converter_efficiency;
}

Seconds
HybridSupply::rechargeTime(Watts power, Seconds duration,
                           Watts recharge_power) const
{
    SPRINT_ASSERT(recharge_power > 0.0, "recharge power must be positive");
    return capEnergyNeeded(power, duration) /
           (recharge_power * converter_efficiency);
}

int
PackagePins::pinsRequired(Amps current) const
{
    // A power/ground *pair* carries per_pin_current, so each rail
    // needs current / per_pin_current pins.
    const double pairs = current / per_pin_current;
    return static_cast<int>(std::ceil(pairs)) * 2;
}

Amps
PackagePins::maxCurrent(int pins) const
{
    SPRINT_ASSERT(pins >= 0, "negative pin count");
    return (pins / 2) * per_pin_current;
}

} // namespace csprint
