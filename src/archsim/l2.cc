#include "archsim/l2.hh"

#include <algorithm>

#include "common/logging.hh"

namespace csprint {

SharedL2::SharedL2(const L2Config &cfg, MemorySystem &memory,
                   int num_cores)
    : cfg(cfg), memory(memory), num_cores(num_cores),
      words_per_block(static_cast<std::size_t>((num_cores + 63) / 64)),
      tags(cfg.size_bytes, cfg.assoc, cfg.line_bytes),
      dir(tags.numSlots()), l1_mutations(num_cores)
{
    SPRINT_ASSERT(num_cores >= 1, "directory needs at least one core");
    SPRINT_ASSERT(num_cores <= 32767,
                  "directory pointers are 16-bit core ids");
}

std::uint32_t
SharedL2::allocBlock()
{
    std::uint32_t b;
    if (!pool_free.empty()) {
        b = pool_free.back();
        pool_free.pop_back();
    } else {
        b = static_cast<std::uint32_t>(pool.size() / words_per_block);
        pool.resize(pool.size() + words_per_block);
    }
    std::uint64_t *words = &pool[b * words_per_block];
    std::fill(words, words + words_per_block, 0);
    return b;
}

void
SharedL2::spill(DirEntry &entry)
{
    const std::uint32_t b = allocBlock();
    std::uint64_t *words = &pool[b * words_per_block];
    for (int i = 0; i < entry.nptr; ++i) {
        const int c = entry.ptr[i];
        words[c >> 6] |= std::uint64_t(1) << (c & 63);
    }
    entry.ovf = b;
    entry.overflow = true;
    entry.nptr = 0;
    // FullMap entries live on the bitset path from their first
    // sharer; only a genuine limited-pointer overflow is a spill.
    if (cfg.directory == DirectoryKind::Sparse)
        ++counters.directory_spills;
}

bool
SharedL2::hasSharer(const DirEntry &entry, int core) const
{
    if (entry.overflow) {
        return (pool[entry.ovf * words_per_block + (core >> 6)] >>
                (core & 63)) &
               1u;
    }
    for (int i = 0; i < entry.nptr; ++i) {
        if (entry.ptr[i] == core)
            return true;
    }
    return false;
}

void
SharedL2::addSharer(DirEntry &entry, int core)
{
    if (entry.overflow) {
        pool[entry.ovf * words_per_block + (core >> 6)] |=
            std::uint64_t(1) << (core & 63);
        return;
    }
    for (int i = 0; i < entry.nptr; ++i) {
        if (entry.ptr[i] == core)
            return;
    }
    if (cfg.directory == DirectoryKind::FullMap ||
        entry.nptr == kInlineSharers) {
        spill(entry);
        pool[entry.ovf * words_per_block + (core >> 6)] |=
            std::uint64_t(1) << (core & 63);
        return;
    }
    // Keep the inline list sorted so forEachSharer visits cores in
    // ascending id order on both representations.
    int i = entry.nptr;
    while (i > 0 && entry.ptr[i - 1] > core) {
        entry.ptr[i] = entry.ptr[i - 1];
        --i;
    }
    entry.ptr[i] = static_cast<std::int16_t>(core);
    ++entry.nptr;
}

void
SharedL2::removeSharer(DirEntry &entry, int core)
{
    if (entry.overflow) {
        pool[entry.ovf * words_per_block + (core >> 6)] &=
            ~(std::uint64_t(1) << (core & 63));
        return;
    }
    for (int i = 0; i < entry.nptr; ++i) {
        if (entry.ptr[i] != core)
            continue;
        for (int j = i + 1; j < entry.nptr; ++j)
            entry.ptr[j - 1] = entry.ptr[j];
        --entry.nptr;
        return;
    }
}

void
SharedL2::clearSharers(DirEntry &entry)
{
    if (entry.overflow) {
        pool_free.push_back(entry.ovf);
        entry.overflow = false;
    }
    entry.nptr = 0;
}

void
SharedL2::clearEntry(DirEntry &entry)
{
    clearSharers(entry);
    entry.dirty_owner = -1;
    entry.l2_dirty = false;
}

void
SharedL2::evictRecall(std::uint64_t line, const DirEntry &victim,
                      Cycles now, std::vector<Cache> &l1s)
{
    // Inclusion: recall the line from every L1 holding it.
    bool any_l1_dirty = false;
    forEachSharer(victim, [&](int c) {
        any_l1_dirty |= l1s[static_cast<std::size_t>(c)].invalidate(line);
        l1_mutations.add(c);
        ++counters.inclusion_recalls;
    });
    if (victim.l2_dirty || any_l1_dirty)
        memory.writeback(line, now);
}

void
SharedL2::peekL1Targets(std::uint64_t line, bool write, int requester,
                        CoreSet &out) const
{
    if (out.capacity() != num_cores)
        out.resize(num_cores);
    else
        out.clear();
    bool hit = false;
    const std::size_t slot = tags.peekSlot(line, hit);
    if (hit) {
        const DirEntry &entry = dir[slot];
        if (write) {
            forEachSharer(entry, [&](int c) {
                if (c != requester)
                    out.add(c);
            });
        } else if (entry.dirty_owner >= 0 &&
                   entry.dirty_owner != requester) {
            out.add(entry.dirty_owner);
        }
        return;
    }
    // Miss: an eviction recalls the victim line from every sharer;
    // the freshly installed entry has no other sharers to act on.
    if (tags.validAt(slot))
        forEachSharer(dir[slot], [&](int c) { out.add(c); });
}

Cycles
SharedL2::access(std::uint64_t line, bool write, int requester,
                 Cycles now, std::vector<Cache> &l1s)
{
    SPRINT_ASSERT(requester >= 0 && requester < num_cores,
                  "bad requester");
    SPRINT_ASSERT(l1s.size() == static_cast<std::size_t>(num_cores),
                  "L1 set does not match the directory width");

    Cycles latency = cfg.hit_latency;

    const CacheAccessResult tag_result = tags.access(line, false);
    DirEntry &entry = dir[tag_result.slot];

    if (tag_result.hit) {
        ++counters.hits;
    } else {
        ++counters.misses;
        latency += memory.read(line, now + latency);
        if (tag_result.evicted) {
            // The slot still holds the victim's directory state.
            evictRecall(tag_result.evicted_line, entry, now, l1s);
        }
        clearEntry(entry);
    }

    if (write) {
        // Invalidate every other sharer.
        bool remote = false;
        forEachSharer(entry, [&](int c) {
            if (c == requester)
                return;
            const bool was_dirty =
                l1s[static_cast<std::size_t>(c)].invalidate(line);
            if (was_dirty)
                entry.l2_dirty = true;
            l1_mutations.add(c);
            ++counters.invalidations_sent;
            remote = true;
        });
        clearSharers(entry);
        addSharer(entry, requester);
        entry.dirty_owner = static_cast<std::int16_t>(requester);
        entry.l2_dirty = true;
        if (remote)
            latency += cfg.coherence_penalty;
    } else {
        // Downgrade a remote dirty owner so the reader sees clean data.
        if (entry.dirty_owner >= 0 && entry.dirty_owner != requester) {
            l1s[entry.dirty_owner].markClean(line);
            l1_mutations.add(entry.dirty_owner);
            entry.l2_dirty = true;
            entry.dirty_owner = -1;
            ++counters.downgrades_sent;
            latency += cfg.coherence_penalty;
        }
        addSharer(entry, requester);
    }
    return latency;
}

void
SharedL2::writebackFromL1(std::uint64_t line, int from, Cycles now)
{
    ++counters.writebacks_received;
    const std::size_t slot = tags.findSlot(line);
    if (slot != Cache::kNoSlot) {
        DirEntry &entry = dir[slot];
        entry.l2_dirty = true;
        removeSharer(entry, from);
        if (entry.dirty_owner == from)
            entry.dirty_owner = -1;
    } else {
        // The line already left the L2 (inclusion recall raced with
        // the eviction in this approximation); forward to memory.
        memory.writeback(line, now);
    }
}

void
SharedL2::dropCore(int core, std::vector<Cache> &l1s)
{
    for (std::size_t slot = 0; slot < dir.size(); ++slot) {
        DirEntry &entry = dir[slot];
        if (!tags.validAt(slot) || !hasSharer(entry, core))
            continue;
        if (l1s[static_cast<std::size_t>(core)].invalidate(
                tags.lineAt(slot)))
            entry.l2_dirty = true;
        l1_mutations.add(core);
        removeSharer(entry, core);
        if (entry.dirty_owner == core)
            entry.dirty_owner = -1;
    }
    l1s[static_cast<std::size_t>(core)].flush();
}

int
SharedL2::sharerCount(std::uint64_t line) const
{
    const std::size_t slot = tags.findSlot(line);
    if (slot == Cache::kNoSlot)
        return 0;
    int count = 0;
    forEachSharer(dir[slot], [&](int) { ++count; });
    return count;
}

void
SharedL2::adoptState(SharedL2 &&prev)
{
    SPRINT_ASSERT(cfg.size_bytes == prev.cfg.size_bytes &&
                      cfg.assoc == prev.cfg.assoc &&
                      cfg.line_bytes == prev.cfg.line_bytes,
                  "L2 state adoption requires identical geometry");
    SPRINT_ASSERT(cfg.directory == prev.cfg.directory,
                  "L2 state adoption requires one directory kind");
    tags = std::move(prev.tags);
    tags.resetStats();
    dir = std::move(prev.dir);
    if (words_per_block == prev.words_per_block) {
        pool = std::move(prev.pool);
        pool_free = std::move(prev.pool_free);
    } else {
        // Re-pack overflow bitsets to this directory's width. The
        // caller dropped every core at or beyond num_cores from the
        // adopted directory, so truncated words must be empty.
        pool.clear();
        pool_free.clear();
        const std::size_t keep =
            std::min(words_per_block, prev.words_per_block);
        for (DirEntry &entry : dir) {
            if (!entry.overflow)
                continue;
            const std::uint64_t *src =
                &prev.pool[entry.ovf * prev.words_per_block];
            for (std::size_t w = keep; w < prev.words_per_block; ++w)
                SPRINT_ASSERT(src[w] == 0,
                              "adopted sharer beyond directory width");
            const std::uint32_t b = allocBlock();
            std::copy(src, src + keep, &pool[b * words_per_block]);
            entry.ovf = b;
        }
    }
    l1_mutations.clear();
    counters = L2Stats();
}

} // namespace csprint
