#include "archsim/l2.hh"

#include "common/logging.hh"

namespace csprint {

SharedL2::SharedL2(const L2Config &cfg, MemorySystem &memory)
    : cfg(cfg), memory(memory),
      tags(cfg.size_bytes, cfg.assoc, cfg.line_bytes)
{
}

void
SharedL2::evict(std::uint64_t line, bool dirty, Cycles now,
                std::vector<Cache> &l1s)
{
    // Inclusion: recall the line from every L1 holding it.
    auto it = directory.find(line);
    bool any_l1_dirty = false;
    if (it != directory.end()) {
        for (std::size_t c = 0; c < l1s.size(); ++c) {
            if (it->second.sharers & (1ULL << c)) {
                any_l1_dirty |= l1s[c].invalidate(line);
                ++counters.inclusion_recalls;
            }
        }
        directory.erase(it);
    }
    if (dirty || any_l1_dirty)
        memory.writeback(line, now);
}

Cycles
SharedL2::access(std::uint64_t line, bool write, int requester,
                 Cycles now, std::vector<Cache> &l1s)
{
    SPRINT_ASSERT(requester >= 0 &&
                      static_cast<std::size_t>(requester) < l1s.size(),
                  "bad requester");
    SPRINT_ASSERT(l1s.size() <= 64, "directory bitmap supports 64 cores");

    Cycles latency = cfg.hit_latency;
    const std::uint64_t req_bit = 1ULL << requester;

    const CacheAccessResult tag_result = tags.access(line, false);
    DirEntry &entry = directory[line];

    if (tag_result.hit) {
        ++counters.hits;
    } else {
        ++counters.misses;
        latency += memory.read(line, now + latency);
        if (tag_result.evicted) {
            evict(tag_result.evicted_line,
                  [&] {
                      auto vic = directory.find(tag_result.evicted_line);
                      return vic != directory.end() &&
                             vic->second.l2_dirty;
                  }(),
                  now, l1s);
        }
    }

    if (write) {
        // Invalidate every other sharer.
        bool remote = false;
        for (std::size_t c = 0; c < l1s.size(); ++c) {
            const std::uint64_t bit = 1ULL << c;
            if ((entry.sharers & bit) && static_cast<int>(c) != requester) {
                const bool was_dirty = l1s[c].invalidate(line);
                if (was_dirty)
                    entry.l2_dirty = true;
                ++counters.invalidations_sent;
                remote = true;
            }
        }
        entry.sharers = req_bit;
        entry.dirty_owner = requester;
        entry.l2_dirty = true;
        if (remote)
            latency += cfg.coherence_penalty;
    } else {
        // Downgrade a remote dirty owner so the reader sees clean data.
        if (entry.dirty_owner >= 0 && entry.dirty_owner != requester) {
            l1s[entry.dirty_owner].markClean(line);
            entry.l2_dirty = true;
            entry.dirty_owner = -1;
            ++counters.downgrades_sent;
            latency += cfg.coherence_penalty;
        }
        entry.sharers |= req_bit;
    }
    return latency;
}

void
SharedL2::writebackFromL1(std::uint64_t line, int from, Cycles now)
{
    ++counters.writebacks_received;
    auto it = directory.find(line);
    if (it != directory.end()) {
        it->second.l2_dirty = true;
        it->second.sharers &= ~(1ULL << from);
        if (it->second.dirty_owner == from)
            it->second.dirty_owner = -1;
    } else {
        // The line already left the L2 (inclusion recall raced with
        // the eviction in this approximation); forward to memory.
        memory.writeback(line, now);
    }
}

void
SharedL2::dropCore(int core, std::vector<Cache> &l1s)
{
    const std::uint64_t bit = 1ULL << core;
    for (auto &kv : directory) {
        if (kv.second.sharers & bit) {
            if (l1s[core].invalidate(kv.first))
                kv.second.l2_dirty = true;
            kv.second.sharers &= ~bit;
            if (kv.second.dirty_owner == core)
                kv.second.dirty_owner = -1;
        }
    }
    l1s[core].flush();
}

} // namespace csprint
