#include "archsim/l2.hh"

#include "common/logging.hh"

namespace csprint {

SharedL2::SharedL2(const L2Config &cfg, MemorySystem &memory)
    : cfg(cfg), memory(memory),
      tags(cfg.size_bytes, cfg.assoc, cfg.line_bytes),
      dir(tags.numSlots())
{
}

void
SharedL2::evictRecall(std::uint64_t line, const DirEntry &victim,
                      Cycles now, std::vector<Cache> &l1s)
{
    // Inclusion: recall the line from every L1 holding it.
    bool any_l1_dirty = false;
    for (std::size_t c = 0; c < l1s.size(); ++c) {
        if (victim.sharers & (1ULL << c)) {
            any_l1_dirty |= l1s[c].invalidate(line);
            l1_mutations |= 1ULL << c;
            ++counters.inclusion_recalls;
        }
    }
    if (victim.l2_dirty || any_l1_dirty)
        memory.writeback(line, now);
}

std::uint64_t
SharedL2::peekL1Targets(std::uint64_t line, bool write,
                        int requester) const
{
    bool hit = false;
    const std::size_t slot = tags.peekSlot(line, hit);
    const std::uint64_t req_bit = 1ULL << requester;
    if (hit) {
        const DirEntry &entry = dir[slot];
        if (write)
            return entry.sharers & ~req_bit;
        if (entry.dirty_owner >= 0 && entry.dirty_owner != requester)
            return 1ULL << entry.dirty_owner;
        return 0;
    }
    // Miss: an eviction recalls the victim line from every sharer;
    // the freshly installed entry has no other sharers to act on.
    return tags.validAt(slot) ? dir[slot].sharers : 0;
}

Cycles
SharedL2::access(std::uint64_t line, bool write, int requester,
                 Cycles now, std::vector<Cache> &l1s)
{
    SPRINT_ASSERT(requester >= 0 &&
                      static_cast<std::size_t>(requester) < l1s.size(),
                  "bad requester");
    SPRINT_ASSERT(l1s.size() <= 64, "directory bitmap supports 64 cores");

    Cycles latency = cfg.hit_latency;
    const std::uint64_t req_bit = 1ULL << requester;

    const CacheAccessResult tag_result = tags.access(line, false);
    DirEntry &entry = dir[tag_result.slot];

    if (tag_result.hit) {
        ++counters.hits;
    } else {
        ++counters.misses;
        latency += memory.read(line, now + latency);
        if (tag_result.evicted) {
            // The slot still holds the victim's directory state.
            evictRecall(tag_result.evicted_line, entry, now, l1s);
        }
        entry = DirEntry{};
    }

    if (write) {
        // Invalidate every other sharer.
        bool remote = false;
        for (std::size_t c = 0; c < l1s.size(); ++c) {
            const std::uint64_t bit = 1ULL << c;
            if ((entry.sharers & bit) && static_cast<int>(c) != requester) {
                const bool was_dirty = l1s[c].invalidate(line);
                if (was_dirty)
                    entry.l2_dirty = true;
                l1_mutations |= bit;
                ++counters.invalidations_sent;
                remote = true;
            }
        }
        entry.sharers = req_bit;
        entry.dirty_owner = requester;
        entry.l2_dirty = true;
        if (remote)
            latency += cfg.coherence_penalty;
    } else {
        // Downgrade a remote dirty owner so the reader sees clean data.
        if (entry.dirty_owner >= 0 && entry.dirty_owner != requester) {
            l1s[entry.dirty_owner].markClean(line);
            l1_mutations |= 1ULL << entry.dirty_owner;
            entry.l2_dirty = true;
            entry.dirty_owner = -1;
            ++counters.downgrades_sent;
            latency += cfg.coherence_penalty;
        }
        entry.sharers |= req_bit;
    }
    return latency;
}

void
SharedL2::writebackFromL1(std::uint64_t line, int from, Cycles now)
{
    ++counters.writebacks_received;
    const std::size_t slot = tags.findSlot(line);
    if (slot != Cache::kNoSlot) {
        DirEntry &entry = dir[slot];
        entry.l2_dirty = true;
        entry.sharers &= ~(1ULL << from);
        if (entry.dirty_owner == from)
            entry.dirty_owner = -1;
    } else {
        // The line already left the L2 (inclusion recall raced with
        // the eviction in this approximation); forward to memory.
        memory.writeback(line, now);
    }
}

void
SharedL2::dropCore(int core, std::vector<Cache> &l1s)
{
    const std::uint64_t bit = 1ULL << core;
    for (std::size_t slot = 0; slot < dir.size(); ++slot) {
        DirEntry &entry = dir[slot];
        if (!(entry.sharers & bit) || !tags.validAt(slot))
            continue;
        if (l1s[core].invalidate(tags.lineAt(slot)))
            entry.l2_dirty = true;
        l1_mutations |= bit;
        entry.sharers &= ~bit;
        if (entry.dirty_owner == core)
            entry.dirty_owner = -1;
    }
    l1s[core].flush();
}

void
SharedL2::adoptState(SharedL2 &&prev)
{
    SPRINT_ASSERT(cfg.size_bytes == prev.cfg.size_bytes &&
                      cfg.assoc == prev.cfg.assoc &&
                      cfg.line_bytes == prev.cfg.line_bytes,
                  "L2 state adoption requires identical geometry");
    tags = std::move(prev.tags);
    tags.resetStats();
    dir = std::move(prev.dir);
    l1_mutations = 0;
    counters = L2Stats();
}

} // namespace csprint
