/**
 * @file
 * Shared, inclusive last-level cache with a co-located full-map
 * directory implementing invalidation-based coherence (paper
 * Section 8.1: "a standard invalidation-based cache coherence protocol
 * with the directory co-located with the last-level cache").
 *
 * On a write, all other sharers' L1 copies are invalidated; on a read
 * of a line another core holds dirty, the owner is downgraded and its
 * L1 copy marked clean. Inclusion is enforced: an L2 eviction recalls
 * the line from every L1 that holds it.
 *
 * The directory is stored as a flat array parallel to the tag store
 * (one entry per tag slot, holding a fixed 64-bit sharer bitmask keyed
 * by core id), so a directory lookup is the slot index returned by the
 * tag access — no per-line hashed container on the hot path. Inclusion
 * guarantees the invariant that a line has directory state iff it is
 * resident in the L2 tags.
 */

#ifndef CSPRINT_ARCHSIM_L2_HH
#define CSPRINT_ARCHSIM_L2_HH

#include <cstdint>
#include <vector>

#include "archsim/cache.hh"
#include "archsim/memory.hh"
#include "common/units.hh"

namespace csprint {

/** Shared-L2 configuration (paper defaults). */
struct L2Config
{
    std::size_t size_bytes = 4 * 1024 * 1024;
    int assoc = 16;
    std::size_t line_bytes = 64;
    Cycles hit_latency = 20;
    Cycles coherence_penalty = 20;  ///< extra cycles to reach remote L1s
};

/** Coherence/LLC event counters. */
struct L2Stats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations_sent = 0;
    std::uint64_t downgrades_sent = 0;
    std::uint64_t inclusion_recalls = 0;
    std::uint64_t writebacks_received = 0;
};

/**
 * The shared L2 plus directory. L1 caches are owned by the machine
 * and passed in so the directory can act on them directly.
 */
class SharedL2
{
  public:
    SharedL2(const L2Config &cfg, MemorySystem &memory);

    /**
     * Core @p requester accesses @p line (read or write) at @p now.
     * Returns the access latency in cycles and performs all coherence
     * side effects on @p l1s.
     */
    Cycles access(std::uint64_t line, bool write, int requester,
                  Cycles now, std::vector<Cache> &l1s);

    /**
     * Core @p from writes back a dirty L1 victim. No core stall is
     * modelled, but the L2 copy is marked dirty (or forwarded to
     * memory if the line has already left the L2).
     */
    void writebackFromL1(std::uint64_t line, int from, Cycles now);

    /** Drop core @p core from all sharer sets (core deactivated). */
    void dropCore(int core, std::vector<Cache> &l1s);

    /**
     * Bitmask of the cores whose L1s an access(line, write, requester)
     * call would mutate, computed without side effects: sharers to be
     * invalidated on a write, a remote dirty owner to be downgraded on
     * a read, and every sharer of the tag victim an L2 miss would
     * recall. The machine commits those cores' deferred local runs
     * before issuing the access, so replayed ops never see
     * post-mutation state.
     */
    std::uint64_t peekL1Targets(std::uint64_t line, bool write,
                                int requester) const;

    /**
     * Bitmask of cores whose L1 contents this L2 has mutated
     * (invalidations, downgrades, inclusion recalls, dropCore) since
     * the last call; reading clears it. The machine's event loop uses
     * it to invalidate cached stride probes precisely.
     */
    std::uint64_t takeL1Mutations()
    {
        const std::uint64_t m = l1_mutations;
        l1_mutations = 0;
        return m;
    }

    /** Event counters. */
    const L2Stats &stats() const { return counters; }

    /** Configuration in use. */
    const L2Config &config() const { return cfg; }

    /**
     * Adopt the tag and directory state of @p prev (identical
     * geometry required), modelling a re-activation where the LLC
     * contents survived across tasks. This L2 keeps its own memory
     * system binding and starts with fresh event counters and no
     * pending L1 mutations; @p prev must not be used afterwards.
     */
    void adoptState(SharedL2 &&prev);

  private:
    struct DirEntry
    {
        std::uint64_t sharers = 0;  ///< bitmap over cores
        int dirty_owner = -1;       ///< core with a dirty L1 copy
        bool l2_dirty = false;      ///< L2 copy newer than memory
    };

    void evictRecall(std::uint64_t line, const DirEntry &victim,
                     Cycles now, std::vector<Cache> &l1s);

    L2Config cfg;
    MemorySystem &memory;
    Cache tags;
    std::vector<DirEntry> dir;  ///< parallel to the tag slots
    std::uint64_t l1_mutations = 0;  ///< cores with externally-changed L1s
    L2Stats counters;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_L2_HH
