/**
 * @file
 * Shared, inclusive last-level cache with a co-located directory
 * implementing invalidation-based coherence (paper Section 8.1: "a
 * standard invalidation-based cache coherence protocol with the
 * directory co-located with the last-level cache").
 *
 * On a write, all other sharers' L1 copies are invalidated; on a read
 * of a line another core holds dirty, the owner is downgraded and its
 * L1 copy marked clean. Inclusion is enforced: an L2 eviction recalls
 * the line from every L1 that holds it.
 *
 * The directory is stored as a flat array parallel to the tag store
 * (one entry per tag slot), so a directory lookup is the slot index
 * returned by the tag access — no per-line hashed container on the hot
 * path. Inclusion guarantees the invariant that a line has directory
 * state iff it is resident in the L2 tags.
 *
 * Sharer sets use a limited-pointer representation (the Graphite
 * sparse-directory scheme): each entry holds up to kInlineSharers core
 * ids inline, covering the overwhelmingly common few-sharers case in
 * 16 bytes regardless of machine width. An entry that gains more
 * sharers spills to a full bitset block in a per-L2 overflow pool
 * sized for the core count, so the machine scales past the old 64-bit
 * bitmask cap to 1024+ cores. DirectoryKind::FullMap forces every
 * entry onto the bitset path and serves as the differential baseline
 * for the spill machinery (tests/differential_test.cc holds the two
 * representations bit-identical).
 */

#ifndef CSPRINT_ARCHSIM_L2_HH
#define CSPRINT_ARCHSIM_L2_HH

#include <array>
#include <cstdint>
#include <vector>

#include "archsim/cache.hh"
#include "archsim/coreset.hh"
#include "archsim/memory.hh"
#include "common/units.hh"

namespace csprint {

/** Directory sharer-set representation. */
enum class DirectoryKind : unsigned char
{
    Sparse,   ///< limited pointers, spill to a bitset (production)
    FullMap,  ///< every entry a full bitset (differential baseline)
};

/** Shared-L2 configuration (paper defaults). */
struct L2Config
{
    std::size_t size_bytes = 4 * 1024 * 1024;
    int assoc = 16;
    std::size_t line_bytes = 64;
    Cycles hit_latency = 20;
    Cycles coherence_penalty = 20;  ///< extra cycles to reach remote L1s
    DirectoryKind directory = DirectoryKind::Sparse;
};

/** Coherence/LLC event counters. */
struct L2Stats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations_sent = 0;
    std::uint64_t downgrades_sent = 0;
    std::uint64_t inclusion_recalls = 0;
    std::uint64_t writebacks_received = 0;
    std::uint64_t directory_spills = 0;  ///< inline -> bitset promotions
};

/**
 * The shared L2 plus directory. L1 caches are owned by the machine
 * and passed in so the directory can act on them directly.
 */
class SharedL2
{
  public:
    /** Sharer ids held inline before an entry spills to a bitset. */
    static constexpr int kInlineSharers = 4;

    SharedL2(const L2Config &cfg, MemorySystem &memory, int num_cores);

    /**
     * Core @p requester accesses @p line (read or write) at @p now.
     * Returns the access latency in cycles and performs all coherence
     * side effects on @p l1s.
     */
    Cycles access(std::uint64_t line, bool write, int requester,
                  Cycles now, std::vector<Cache> &l1s);

    /**
     * Core @p from writes back a dirty L1 victim. No core stall is
     * modelled, but the L2 copy is marked dirty (or forwarded to
     * memory if the line has already left the L2).
     */
    void writebackFromL1(std::uint64_t line, int from, Cycles now);

    /** Drop core @p core from all sharer sets (core deactivated). */
    void dropCore(int core, std::vector<Cache> &l1s);

    /**
     * Fill @p out with the cores whose L1s an access(line, write,
     * requester) call would mutate, computed without side effects:
     * sharers to be invalidated on a write, a remote dirty owner to be
     * downgraded on a read, and every sharer of the tag victim an L2
     * miss would recall. The machine commits those cores' deferred
     * local runs before issuing the access, so replayed ops never see
     * post-mutation state. @p out may include @p requester on the miss
     * path (the victim's sharers); callers skip it.
     */
    void peekL1Targets(std::uint64_t line, bool write, int requester,
                       CoreSet &out) const;

    /**
     * Fill @p out with the cores whose L1 contents this L2 has
     * mutated (invalidations, downgrades, inclusion recalls, dropCore)
     * since the last call, then clear the pending set. The machine's
     * event loop uses it to invalidate cached stride probes precisely.
     */
    void takeL1Mutations(CoreSet &out)
    {
        out = l1_mutations;
        l1_mutations.clear();
    }

    /** Event counters. */
    const L2Stats &stats() const { return counters; }

    /** Configuration in use. */
    const L2Config &config() const { return cfg; }

    /** Core count the directory was sized for. */
    int numCores() const { return num_cores; }

    /** Sharer count of @p line's entry (0 when absent); test hook. */
    int sharerCount(std::uint64_t line) const;

    /**
     * Adopt the tag and directory state of @p prev (identical cache
     * geometry and directory kind required), modelling a re-activation
     * where the LLC contents survived across tasks. Core counts may
     * differ: overflow bitsets are re-packed to this directory's
     * width, and @p prev must hold no sharer at or beyond this
     * machine's core count (Machine::warmStartFrom drops them first).
     * This L2 keeps its own memory-system binding and starts with
     * fresh event counters and no pending L1 mutations; @p prev must
     * not be used afterwards.
     */
    void adoptState(SharedL2 &&prev);

  private:
    friend struct CheckpointIO;

    /**
     * One directory entry, parallel to a tag slot. Sixteen bytes in
     * both representations: the inline form lists up to kInlineSharers
     * sharer ids in ascending order in ptr[0, nptr); the overflow form
     * (overflow set, nptr unused) keys a words_per_block bitset at
     * pool[ovf * words_per_block].
     */
    struct DirEntry
    {
        std::array<std::int16_t, kInlineSharers> ptr{};
        std::int16_t dirty_owner = -1;  ///< core with a dirty L1 copy
        std::uint8_t nptr = 0;          ///< valid inline pointers
        bool overflow = false;          ///< sharers live in the pool
        bool l2_dirty = false;          ///< L2 copy newer than memory
        std::uint32_t ovf = 0;          ///< overflow block index
    };

    bool hasSharer(const DirEntry &entry, int core) const;
    void addSharer(DirEntry &entry, int core);
    void removeSharer(DirEntry &entry, int core);
    /** Release the entry's sharers (and overflow block, if any). */
    void clearSharers(DirEntry &entry);
    /** Reset the whole entry for a fresh install. */
    void clearEntry(DirEntry &entry);
    /** Promote an inline entry to an overflow bitset block. */
    void spill(DirEntry &entry);
    std::uint32_t allocBlock();

    /** Invoke @p fn(core_id) per sharer in ascending core-id order. */
    template <typename Fn>
    void forEachSharer(const DirEntry &entry, Fn &&fn) const
    {
        if (!entry.overflow) {
            for (int i = 0; i < entry.nptr; ++i)
                fn(static_cast<int>(entry.ptr[i]));
            return;
        }
        const std::uint64_t *words =
            &pool[static_cast<std::size_t>(entry.ovf) * words_per_block];
        for (std::size_t w = 0; w < words_per_block; ++w) {
            std::uint64_t bits = words[w];
            while (bits) {
                fn(static_cast<int>(w * 64) + __builtin_ctzll(bits));
                bits &= bits - 1;
            }
        }
    }

    void evictRecall(std::uint64_t line, const DirEntry &victim,
                     Cycles now, std::vector<Cache> &l1s);

    L2Config cfg;
    MemorySystem &memory;
    int num_cores;
    std::size_t words_per_block;  ///< 64-bit words per overflow bitset
    Cache tags;
    std::vector<DirEntry> dir;  ///< parallel to the tag slots
    std::vector<std::uint64_t> pool;       ///< overflow bitset storage
    std::vector<std::uint32_t> pool_free;  ///< recycled block indices
    CoreSet l1_mutations;  ///< cores with externally-changed L1s
    L2Stats counters;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_L2_HH
