/**
 * @file
 * Off-chip memory model: a dual-channel interface with per-channel
 * bandwidth (4 GB/s each in the paper) and a fixed uncontended round
 * trip of 60 ns (paper Section 8.1). Lines are address-interleaved
 * across channels; each channel is a single server whose queue models
 * bandwidth contention. Latencies are expressed in core cycles, so a
 * frequency multiplier (DVFS mode) rescales both the round trip and
 * the per-line service time.
 */

#ifndef CSPRINT_ARCHSIM_MEMORY_HH
#define CSPRINT_ARCHSIM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace csprint {

/** Memory configuration (paper defaults). */
struct MemoryConfig
{
    int channels = 2;
    double channel_bytes_per_sec = 4.0e9;  ///< per-channel bandwidth
    Seconds round_trip = 60e-9;            ///< uncontended latency
    std::size_t line_bytes = 64;
};

/** Memory event counters. */
struct MemoryStats
{
    std::uint64_t reads = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t queued_cycles = 0;  ///< total cycles spent queueing
};

/** Dual-channel bandwidth/latency model. */
class MemorySystem
{
  public:
    /**
     * @param cfg configuration
     * @param clock core clock the cycle domain refers to
     * @param freq_mult DVFS multiplier applied to the clock
     */
    MemorySystem(const MemoryConfig &cfg, Hertz clock,
                 double freq_mult = 1.0);

    /**
     * A demand read of @p line issued at @p now [cycles]; returns the
     * total latency in cycles including queueing, the round trip, and
     * the line transfer.
     */
    Cycles read(std::uint64_t line, Cycles now);

    /**
     * A write-back of @p line issued at @p now: occupies channel
     * bandwidth but does not stall the issuing core.
     */
    void writeback(std::uint64_t line, Cycles now);

    /** Change the core-frequency multiplier (rescales cycle costs). */
    void setFrequencyMult(double freq_mult, Cycles now);

    /**
     * Adopt @p prev's outstanding channel occupancy (warm
     * re-activation, Machine::warmStartFrom): each channel's residual
     * busy span past @p prev_now — measured in @p prev's cycle
     * domain — is rebased onto this system's clock at @p now, so a
     * write-back burst in flight when a task was preempted still
     * queues the successor's first misses instead of silently
     * vanishing. Channel counts must match; wall-clock occupancy is
     * preserved across differing clocks and DVFS multipliers.
     */
    void adoptChannelState(const MemorySystem &prev, Cycles prev_now,
                           Cycles now);

    /** Cycle at which @p channel next becomes free (test hook). */
    double channelFreeAt(int channel) const
    {
        return next_free[static_cast<std::size_t>(channel)];
    }

    /** Uncontended read latency in cycles at the current frequency. */
    Cycles uncontendedLatency() const;

    /** Per-line channel occupancy in cycles at the current frequency. */
    Cycles serviceCycles() const;

    /** Event counters. */
    const MemoryStats &stats() const { return counters; }

  private:
    friend struct CheckpointIO;

    int channelOf(std::uint64_t line) const;

    MemoryConfig cfg;
    Hertz clock;
    double mult;
    std::vector<double> next_free;  ///< per-channel, in cycles
    MemoryStats counters;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_MEMORY_HH
