/**
 * @file
 * The micro-operation record the simulator executes: an abstract
 * instruction class plus a byte address for memory operations (or a
 * lock identifier for the lock primitives).
 */

#ifndef CSPRINT_ARCHSIM_OP_HH
#define CSPRINT_ARCHSIM_OP_HH

#include <cstdint>

#include "energy/ops.hh"

namespace csprint {

/** One simulated operation. */
struct MicroOp
{
    OpKind kind = OpKind::IntAlu;
    std::uint64_t addr = 0;  ///< byte address (Load/Store) or lock id

    static MicroOp intAlu() { return {OpKind::IntAlu, 0}; }
    static MicroOp fpAlu() { return {OpKind::FpAlu, 0}; }
    static MicroOp branch() { return {OpKind::Branch, 0}; }
    static MicroOp pause() { return {OpKind::Pause, 0}; }
    static MicroOp load(std::uint64_t addr) { return {OpKind::Load, addr}; }
    static MicroOp store(std::uint64_t addr)
    {
        return {OpKind::Store, addr};
    }
    static MicroOp lockAcquire(std::uint64_t id)
    {
        return {OpKind::LockAcquire, id};
    }
    static MicroOp lockRelease(std::uint64_t id)
    {
        return {OpKind::LockRelease, id};
    }
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_OP_HH
