/**
 * @file
 * The micro-operation record the simulator executes: an abstract
 * instruction class plus a byte address for memory operations (or a
 * lock identifier for the lock primitives).
 *
 * The record packs into a single 64-bit word — the kind in the top
 * byte, the address in the low 56 bits — so op streams cost 8 bytes
 * per op to generate, buffer, and scan. Workload address spaces are
 * synthetic and far below 2^56.
 */

#ifndef CSPRINT_ARCHSIM_OP_HH
#define CSPRINT_ARCHSIM_OP_HH

#include <cstdint>

#include "energy/ops.hh"

namespace csprint {

/** One simulated operation, packed as (kind << 56 | addr). */
struct MicroOp
{
    std::uint64_t bits = 0;

    /** Address payload mask: the low 56 bits. */
    static constexpr std::uint64_t kAddrMask =
        (std::uint64_t(1) << 56) - 1;

    /** Instruction class. */
    OpKind kind() const { return static_cast<OpKind>(bits >> 56); }

    /** Byte address (Load/Store) or lock id (lock primitives). */
    std::uint64_t addr() const { return bits & kAddrMask; }

    static MicroOp make(OpKind kind, std::uint64_t addr)
    {
        return {(static_cast<std::uint64_t>(kind) << 56) |
                (addr & kAddrMask)};
    }

    static MicroOp intAlu() { return make(OpKind::IntAlu, 0); }
    static MicroOp fpAlu() { return make(OpKind::FpAlu, 0); }
    static MicroOp branch() { return make(OpKind::Branch, 0); }
    static MicroOp pause() { return make(OpKind::Pause, 0); }
    static MicroOp load(std::uint64_t addr)
    {
        return make(OpKind::Load, addr);
    }
    static MicroOp store(std::uint64_t addr)
    {
        return make(OpKind::Store, addr);
    }
    static MicroOp lockAcquire(std::uint64_t id)
    {
        return make(OpKind::LockAcquire, id);
    }
    static MicroOp lockRelease(std::uint64_t id)
    {
        return make(OpKind::LockRelease, id);
    }
};

/** Single-cycle compute op with no memory or scheduler side effects. */
constexpr bool
isComputeOp(OpKind kind)
{
    return kind == OpKind::IntAlu || kind == OpKind::FpAlu ||
           kind == OpKind::Branch;
}

/** Load or store (addr is a byte address). */
constexpr bool
isMemoryOp(OpKind kind)
{
    return kind == OpKind::Load || kind == OpKind::Store;
}

} // namespace csprint

#endif // CSPRINT_ARCHSIM_OP_HH
