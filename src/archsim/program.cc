// ParallelProgram is header-only today; this translation unit anchors
// the library target and is the future home of program-level helpers.
#include "archsim/program.hh"
