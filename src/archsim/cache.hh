/**
 * @file
 * A set-associative, write-back, write-allocate cache tag array with
 * true-LRU replacement. Used for the private 32 KB L1s and as the tag
 * store of the shared L2 (paper Section 8.1). The cache operates on
 * line indices (byte address divided by the line size); data values
 * are not modelled, only presence, dirtiness, and recency.
 */

#ifndef CSPRINT_ARCHSIM_CACHE_HH
#define CSPRINT_ARCHSIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace csprint {

/** Per-cache event counters. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;
    std::uint64_t invalidations = 0;
};

/** Outcome of one access. */
struct CacheAccessResult
{
    bool hit = false;
    bool evicted = false;            ///< a victim line was displaced
    std::uint64_t evicted_line = 0;  ///< the victim's line index
    bool evicted_dirty = false;      ///< victim needed a write-back
};

/** Set-associative LRU tag array. */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc ways per set
     * @param line_bytes line size (used only to derive the set count)
     */
    Cache(std::size_t size_bytes, int assoc, std::size_t line_bytes);

    /**
     * Look up @p line and allocate it on a miss; @p write marks the
     * installed/present line dirty.
     */
    CacheAccessResult access(std::uint64_t line, bool write);

    /** True when @p line is present. */
    bool contains(std::uint64_t line) const;

    /** True when @p line is present and dirty. */
    bool isDirty(std::uint64_t line) const;

    /** Remove @p line if present; true when the line was dirty. */
    bool invalidate(std::uint64_t line);

    /** Clear a present line's dirty bit (coherence downgrade). */
    void markClean(std::uint64_t line);

    /** Invalidate everything (sprint start: "L1s initially empty"). */
    void flush();

    /** Number of sets. */
    std::size_t numSets() const { return sets; }

    /** Ways per set. */
    int associativity() const { return ways; }

    /** Number of currently valid lines. */
    std::size_t validLines() const;

    /** Event counters. */
    const CacheStats &stats() const { return counters; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    Line *findLine(std::uint64_t line);
    const Line *findLine(std::uint64_t line) const;

    std::size_t sets;
    int ways;
    std::vector<Line> lines;  ///< sets * ways, row-major by set
    std::uint64_t tick = 0;
    CacheStats counters;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_CACHE_HH
