/**
 * @file
 * A set-associative, write-back, write-allocate cache tag array with
 * true-LRU replacement. Used for the private 32 KB L1s and as the tag
 * store of the shared L2 (paper Section 8.1). The cache operates on
 * line indices (byte address divided by the line size); data values
 * are not modelled, only presence, dirtiness, and recency.
 *
 * The tag array is stored structure-of-arrays: one contiguous
 * per-set run of tags (a single host cache line for an 8-way set) and
 * one packed per-set metadata word holding the recency order as a
 * move-to-front nibble list plus valid/dirty way masks. Recency is
 * positional, so a hit updates one 64-bit word instead of per-way LRU
 * timestamps; victim choice (first invalid way, else the true-LRU
 * way) is identical to a timestamp implementation.
 *
 * Two lookup paths exist: access() is the full allocate-on-miss path,
 * and accessIfPresent() is the simulation hot path — a hit-only probe
 * (with a one-entry MRU shortcut) that performs exactly the recency,
 * dirty-bit, and counter updates of a hitting access() and touches
 * nothing on a miss or an S->M upgrade.
 */

#ifndef CSPRINT_ARCHSIM_CACHE_HH
#define CSPRINT_ARCHSIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace csprint {

/** Per-cache event counters. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;
    std::uint64_t invalidations = 0;
};

/** Outcome of one access. */
struct CacheAccessResult
{
    bool hit = false;
    bool evicted = false;            ///< a victim line was displaced
    std::uint64_t evicted_line = 0;  ///< the victim's line index
    bool evicted_dirty = false;      ///< victim needed a write-back
    std::size_t slot = 0;            ///< storage slot of the line (the
                                     ///< victim's slot on an eviction)
};

/** Set-associative LRU tag array (at most 16 ways). */
class Cache
{
  public:
    /** Sentinel returned by findSlot() when a line is absent. */
    static constexpr std::size_t kNoSlot = ~std::size_t(0);

    /**
     * @param size_bytes total capacity
     * @param assoc ways per set (1..16)
     * @param line_bytes line size (used only to derive the set count)
     */
    Cache(std::size_t size_bytes, int assoc, std::size_t line_bytes);

    /**
     * Look up @p line and allocate it on a miss; @p write marks the
     * installed/present line dirty.
     */
    CacheAccessResult access(std::uint64_t line, bool write);

    /**
     * Hit-only access: when @p line is present and the access
     * completes locally (any read, or a write to an already-dirty
     * copy), update recency/dirtiness/hit counters exactly as
     * access() would and return true. Otherwise (miss, or a write
     * needing an S->M upgrade) touch nothing and return false so the
     * caller can take the full coherence path.
     */
    bool accessIfPresent(std::uint64_t line, bool write);

    /** True when @p line is present. */
    bool contains(std::uint64_t line) const;

    /**
     * Pure lookahead for the machine's stride probe: true when an
     * access of @p line would be a local one-cycle hit (present, and
     * for a write already dirty). Touches nothing — presence and
     * dirtiness do not depend on recency, so the answer stays valid
     * until this cache is mutated by a fill, eviction, coherence
     * action, or flush.
     */
    bool wouldHit(std::uint64_t line, bool write) const
    {
        return hitWay(line, write) >= 0;
    }

    /**
     * Way that a local one-cycle hit of @p line would use (see
     * wouldHit()), or -1. Pure lookahead for the stride probe; the
     * answer and the way stay valid until this cache is mutated.
     */
    int hitWay(std::uint64_t line, bool write) const
    {
        const std::size_t set = line & (sets - 1);
        const int way = findWay(set, line);
        if (way < 0 || (write && !((meta[set].dirty >> way) & 1u)))
            return -1;
        return way;
    }

    /** Bits reserved for the way in a packHit() entry (assoc <= 16). */
    static constexpr int kWayBits = 4;

    /**
     * Pack a probed hit's (set, way) into the single word
     * commitHits() replays — the shared encoding between the stride
     * probe's memo queue (Machine's probe_mem) and the replay here.
     */
    static std::uint32_t packHit(std::uint64_t set, int way)
    {
        return static_cast<std::uint32_t>(
            (set << kWayBits) |
            (static_cast<std::uint64_t>(way) & ((1u << kWayBits) - 1)));
    }

    /**
     * Replay a batch of probed hits, each packed by packHit():
     * exactly the recency and counter updates of hitting accesses.
     * The caller guarantees (via the stride probe) that each access
     * was a local hit at its nominal cycle and that no mutation has
     * intervened since.
     */
    void commitHits(const std::uint32_t *setway, std::size_t n)
    {
        for (std::size_t j = 0; j < n; ++j)
            touch(meta[setway[j] >> kWayBits],
                  static_cast<int>(setway[j] & ((1u << kWayBits) - 1)));
        counters.hits += n;
    }

    /** True when @p line is present and dirty. */
    bool isDirty(std::uint64_t line) const;

    /** Remove @p line if present; true when the line was dirty. */
    bool invalidate(std::uint64_t line);

    /** Clear a present line's dirty bit (coherence downgrade). */
    void markClean(std::uint64_t line);

    /** Invalidate everything (sprint start: "L1s initially empty"). */
    void flush();

    /** Number of sets. */
    std::size_t numSets() const { return sets; }

    /** Ways per set. */
    int associativity() const { return ways; }

    /** Total storage slots (sets * ways); slot ids index this range. */
    std::size_t numSlots() const { return tags.size(); }

    /** Storage slot of @p line, or kNoSlot when absent. */
    std::size_t findSlot(std::uint64_t line) const;

    /**
     * The slot access(line, _) would use, without mutating: the hit
     * way when present, otherwise the victim way (first invalid way,
     * else the LRU tail) the fill would displace. @p hit reports
     * which case applied.
     */
    std::size_t peekSlot(std::uint64_t line, bool &hit) const;

    /** True when @p slot holds a valid line. */
    bool validAt(std::size_t slot) const
    {
        return (meta[slot / static_cast<std::size_t>(ways)].valid >>
                (slot % static_cast<std::size_t>(ways))) &
               1u;
    }

    /** Line index stored at @p slot (meaningful only when valid). */
    std::uint64_t lineAt(std::size_t slot) const { return tags[slot]; }

    /** Number of currently valid lines. */
    std::size_t validLines() const;

    /** Event counters. */
    const CacheStats &stats() const { return counters; }

    /**
     * Zero the event counters without touching contents or recency.
     * Used by warm re-activation (Machine::warmStartFrom), where the
     * adopting machine must account only its own task's events.
     */
    void resetStats() { counters = CacheStats(); }

  private:
    friend struct CheckpointIO;

    /**
     * Per-set packed metadata: `order` lists way indices as nibbles,
     * most-recently-used in bits [0, 4); `valid`/`dirty` are way
     * bitmasks.
     */
    struct SetMeta
    {
        std::uint64_t order = 0;
        std::uint16_t valid = 0;
        std::uint16_t dirty = 0;
        std::uint32_t pad = 0;
    };

    /** Way holding @p line in @p set, or -1. */
    int findWay(std::size_t set, std::uint64_t line) const
    {
        const std::uint64_t *base = &tags[set * ways];
        const unsigned valid_ways = meta[set].valid;
        for (int w = 0; w < ways; ++w) {
            if (base[w] == line && ((valid_ways >> w) & 1u))
                return w;
        }
        return -1;
    }

    /** Move @p way's nibble to the front of the recency list. */
    void touch(SetMeta &m, int way)
    {
        const std::uint64_t order = m.order;
        // Position of the nibble equal to `way` (each way id appears
        // exactly once in the word, including the unused upper
        // nibbles of a narrow cache, so the scan always terminates).
        int p = 0;
        while (((order >> (4 * p)) & 0xF) !=
               static_cast<std::uint64_t>(way))
            ++p;
        const std::uint64_t below =
            order & ((std::uint64_t(1) << (4 * p)) - 1);
        const std::uint64_t above =
            p < 15 ? (order >> (4 * (p + 1))) << (4 * (p + 1)) : 0;
        m.order =
            above | (below << 4) | static_cast<std::uint64_t>(way);
    }

    std::size_t sets;
    int ways;
    std::vector<std::uint64_t> tags;  ///< sets * ways, row-major by set
    std::vector<SetMeta> meta;        ///< one packed word per set
    // One-entry MRU filter for accessIfPresent: consecutive accesses
    // to the same line skip the way scan. The tag/valid re-check makes
    // stale hints (invalidation, eviction reuse, flush) fall back to
    // the scan.
    std::size_t hint_set = 0;
    int hint_way = 0;
    std::uint64_t hint_line = ~std::uint64_t(0);
    CacheStats counters;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_CACHE_HH
