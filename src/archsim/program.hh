/**
 * @file
 * The parallel-program abstraction executed by the machine: a sequence
 * of phases separated by barriers. A phase is a bag of tasks executed
 * serially (by thread 0), statically partitioned across threads
 * (OpenMP-style), or dynamically dequeued from a shared counter
 * (task-stealing-style, with the dequeue critical section modelled).
 * Each task materializes as an OpStream.
 */

#ifndef CSPRINT_ARCHSIM_PROGRAM_HH
#define CSPRINT_ARCHSIM_PROGRAM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "archsim/opstream.hh"

namespace csprint {

/** Scheduling policy of a phase. */
enum class PhaseKind
{
    Serial,          ///< all tasks run on thread 0; others wait
    ParallelStatic,  ///< contiguous static partition across threads
    ParallelDynamic, ///< shared-counter dynamic dequeue (task stealing)
};

/** One barrier-delimited phase. */
struct Phase
{
    std::string name;
    PhaseKind kind = PhaseKind::ParallelStatic;
    std::size_t num_tasks = 0;
    /** Materialize the op stream for one task index. */
    std::function<std::unique_ptr<OpStream>(std::size_t task)> make_task;
};

/** A named sequence of phases. */
class ParallelProgram
{
  public:
    explicit ParallelProgram(std::string name) : title(std::move(name)) {}

    /** Program name (workload kernel name). */
    const std::string &name() const { return title; }

    /** Append a phase. */
    void addPhase(Phase phase) { phases_.push_back(std::move(phase)); }

    /** Phase list. */
    const std::vector<Phase> &phases() const { return phases_; }

  private:
    std::string title;
    std::vector<Phase> phases_;
};

/**
 * Bump allocator handing out disjoint, line-aligned address ranges for
 * workload buffers so distinct data structures never false-share.
 */
class AddressAllocator
{
  public:
    explicit AddressAllocator(std::uint64_t base = 0x10000000ULL)
        : next(base)
    {
    }

    /** Reserve @p bytes and return the base address. */
    std::uint64_t
    alloc(std::uint64_t bytes)
    {
        const std::uint64_t base = next;
        next += (bytes + 63) & ~63ULL;
        // Pad by a line to avoid adjacency effects between buffers.
        next += 64;
        return base;
    }

  private:
    std::uint64_t next;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_PROGRAM_HH
