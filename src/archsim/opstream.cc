#include "archsim/opstream.hh"

#include <algorithm>

#include "common/logging.hh"

namespace csprint {

std::size_t
OpStream::fill(MicroOp *out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max && next(out[n]))
        ++n;
    return n;
}

namespace {
/** Default window for fillInto() when the caller's buffer is tiny. */
constexpr std::size_t kFillWindow = 1024;
} // namespace

std::size_t
OpStream::fillInto(std::vector<MicroOp> &out)
{
    if (out.size() < kFillWindow)
        out.resize(kFillWindow);
    return fill(out.data(), out.size());
}

VectorOpStream::VectorOpStream(std::vector<MicroOp> ops)
    : ops(std::move(ops))
{
}

bool
VectorOpStream::next(MicroOp &op)
{
    if (pos >= ops.size())
        return false;
    op = ops[pos++];
    return true;
}

std::size_t
VectorOpStream::fill(MicroOp *out, std::size_t max)
{
    const std::size_t n = std::min(max, ops.size() - pos);
    std::copy_n(ops.data() + pos, n, out);
    pos += n;
    return n;
}

ChunkedOpStream::ChunkedOpStream(std::size_t num_chunks, ChunkFn fn)
    : num_chunks(num_chunks), fn(std::move(fn))
{
    SPRINT_ASSERT(this->fn != nullptr, "chunk function required");
}

bool
ChunkedOpStream::refill()
{
    while (next_chunk < num_chunks) {
        pos = 0;
        fn(next_chunk++, buffer);
        if (!buffer.empty())
            return true;
    }
    return false;
}

bool
ChunkedOpStream::next(MicroOp &op)
{
    if (pos >= buffer.size() && !refill())
        return false;
    op = buffer[pos++];
    return true;
}

std::size_t
ChunkedOpStream::fill(MicroOp *out, std::size_t max)
{
    if (pos >= buffer.size() && !refill())
        return 0;
    const std::size_t n = std::min(max, buffer.size() - pos);
    std::copy_n(buffer.data() + pos, n, out);
    pos += n;
    return n;
}

std::size_t
ChunkedOpStream::fillInto(std::vector<MicroOp> &out)
{
    if (pos >= buffer.size() && !refill())
        return 0;
    if (pos == 0) {
        // Hand the whole chunk over without copying; the caller's
        // storage becomes the next chunk's scratch buffer.
        out.swap(buffer);
        buffer.clear();
        return out.size();
    }
    const std::size_t n = buffer.size() - pos;
    if (out.size() < n)
        out.resize(n);
    std::copy_n(buffer.data() + pos, n, out.data());
    pos = buffer.size();
    return n;
}

} // namespace csprint
