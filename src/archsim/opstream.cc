#include "archsim/opstream.hh"

#include "common/logging.hh"

namespace csprint {

VectorOpStream::VectorOpStream(std::vector<MicroOp> ops)
    : ops(std::move(ops))
{
}

bool
VectorOpStream::next(MicroOp &op)
{
    if (pos >= ops.size())
        return false;
    op = ops[pos++];
    return true;
}

ChunkedOpStream::ChunkedOpStream(std::size_t num_chunks, ChunkFn fn)
    : num_chunks(num_chunks), fn(std::move(fn))
{
    SPRINT_ASSERT(this->fn != nullptr, "chunk function required");
}

bool
ChunkedOpStream::refill()
{
    while (next_chunk < num_chunks) {
        buffer.clear();
        pos = 0;
        fn(next_chunk++, buffer);
        if (!buffer.empty())
            return true;
    }
    return false;
}

bool
ChunkedOpStream::next(MicroOp &op)
{
    if (pos >= buffer.size() && !refill())
        return false;
    op = buffer[pos++];
    return true;
}

} // namespace csprint
