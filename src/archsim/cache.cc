#include "archsim/cache.hh"

#include "common/logging.hh"

namespace csprint {

Cache::Cache(std::size_t size_bytes, int assoc, std::size_t line_bytes)
    : ways(assoc)
{
    SPRINT_ASSERT(assoc > 0, "associativity must be positive");
    SPRINT_ASSERT(line_bytes > 0 && size_bytes >= line_bytes * assoc,
                  "cache too small for one set");
    sets = size_bytes / (line_bytes * static_cast<std::size_t>(assoc));
    SPRINT_ASSERT(sets > 0 && (sets & (sets - 1)) == 0,
                  "set count must be a power of two");
    lines.resize(sets * static_cast<std::size_t>(ways));
}

Cache::Line *
Cache::findLine(std::uint64_t line)
{
    const std::size_t set = line & (sets - 1);
    const std::uint64_t tag = line >> 0;  // full line index as tag
    Line *base = &lines[set * ways];
    for (int w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(std::uint64_t line) const
{
    return const_cast<Cache *>(this)->findLine(line);
}

CacheAccessResult
Cache::access(std::uint64_t line, bool write)
{
    ++tick;
    CacheAccessResult result;
    if (Line *hit = findLine(line)) {
        hit->lru = tick;
        hit->dirty = hit->dirty || write;
        result.hit = true;
        ++counters.hits;
        return result;
    }

    ++counters.misses;
    const std::size_t set = line & (sets - 1);
    Line *base = &lines[set * ways];
    Line *victim = &base[0];
    for (int w = 1; w < ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim->valid)
            break;
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    if (victim->valid) {
        result.evicted = true;
        result.evicted_line = victim->tag;
        result.evicted_dirty = victim->dirty;
        ++counters.evictions;
        if (victim->dirty)
            ++counters.dirty_evictions;
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = write;
    victim->lru = tick;
    return result;
}

bool
Cache::contains(std::uint64_t line) const
{
    return findLine(line) != nullptr;
}

bool
Cache::isDirty(std::uint64_t line) const
{
    const Line *l = findLine(line);
    return l != nullptr && l->dirty;
}

bool
Cache::invalidate(std::uint64_t line)
{
    if (Line *l = findLine(line)) {
        const bool dirty = l->dirty;
        l->valid = false;
        l->dirty = false;
        ++counters.invalidations;
        return dirty;
    }
    return false;
}

void
Cache::markClean(std::uint64_t line)
{
    if (Line *l = findLine(line))
        l->dirty = false;
}

void
Cache::flush()
{
    for (auto &l : lines) {
        l.valid = false;
        l.dirty = false;
    }
}

std::size_t
Cache::validLines() const
{
    std::size_t n = 0;
    for (const auto &l : lines)
        n += l.valid ? 1 : 0;
    return n;
}

} // namespace csprint
