#include "archsim/cache.hh"

#include "common/logging.hh"

namespace csprint {

namespace {

/** Initial recency order: way i at nibble i (way 0 MRU ... LRU last). */
constexpr std::uint64_t kIdentityOrder = 0xFEDCBA9876543210ULL;

} // namespace

Cache::Cache(std::size_t size_bytes, int assoc, std::size_t line_bytes)
    : ways(assoc)
{
    SPRINT_ASSERT(assoc > 0 && assoc <= 16,
                  "associativity must be in [1, 16] (recency order is "
                  "a packed nibble list)");
    SPRINT_ASSERT(line_bytes > 0 && size_bytes >= line_bytes * assoc,
                  "cache too small for one set");
    sets = size_bytes / (line_bytes * static_cast<std::size_t>(assoc));
    SPRINT_ASSERT(sets > 0 && (sets & (sets - 1)) == 0,
                  "set count must be a power of two");
    tags.assign(sets * static_cast<std::size_t>(ways), 0);
    meta.assign(sets, SetMeta{kIdentityOrder, 0, 0, 0});
}

CacheAccessResult
Cache::access(std::uint64_t line, bool write)
{
    CacheAccessResult result;
    const std::size_t set = line & (sets - 1);
    SetMeta &m = meta[set];
    const int hit_way = findWay(set, line);
    if (hit_way >= 0) {
        touch(m, hit_way);
        m.dirty |= static_cast<std::uint16_t>(write) << hit_way;
        result.hit = true;
        result.slot = set * ways + static_cast<std::size_t>(hit_way);
        ++counters.hits;
        return result;
    }

    ++counters.misses;
    const unsigned full = (1u << ways) - 1u;
    const unsigned invalid = ~m.valid & full;
    int victim;
    if (invalid != 0) {
        // First invalid way in ascending order.
        victim = __builtin_ctz(invalid);
    } else {
        // True-LRU: the tail nibble of the recency list.
        victim = static_cast<int>((m.order >> (4 * (ways - 1))) & 0xF);
        result.evicted = true;
        result.evicted_line = tags[set * ways + victim];
        result.evicted_dirty = (m.dirty >> victim) & 1u;
        ++counters.evictions;
        if (result.evicted_dirty)
            ++counters.dirty_evictions;
    }
    tags[set * ways + victim] = line;
    m.valid |= 1u << victim;
    m.dirty = static_cast<std::uint16_t>(
        (m.dirty & ~(1u << victim)) |
        (static_cast<unsigned>(write) << victim));
    touch(m, victim);
    result.slot = set * ways + static_cast<std::size_t>(victim);
    return result;
}

bool
Cache::accessIfPresent(std::uint64_t line, bool write)
{
    const std::size_t set = line & (sets - 1);
    SetMeta &m = meta[set];
    int way;
    if (hint_line == line && ((m.valid >> hint_way) & 1u) &&
        tags[hint_set * ways + hint_way] == line) {
        way = hint_way;
    } else {
        way = findWay(set, line);
        if (way < 0)
            return false;
    }
    if (write && !((m.dirty >> way) & 1u))
        return false;  // S -> M upgrade: full coherence path
    touch(m, way);
    ++counters.hits;
    hint_set = set;
    hint_way = way;
    hint_line = line;
    return true;
}

bool
Cache::contains(std::uint64_t line) const
{
    return findWay(line & (sets - 1), line) >= 0;
}

bool
Cache::isDirty(std::uint64_t line) const
{
    const std::size_t set = line & (sets - 1);
    const int way = findWay(set, line);
    return way >= 0 && ((meta[set].dirty >> way) & 1u);
}

std::size_t
Cache::peekSlot(std::uint64_t line, bool &hit) const
{
    const std::size_t set = line & (sets - 1);
    const int way = findWay(set, line);
    if (way >= 0) {
        hit = true;
        return set * ways + static_cast<std::size_t>(way);
    }
    hit = false;
    const SetMeta &m = meta[set];
    const unsigned full = (1u << ways) - 1u;
    const unsigned invalid = ~m.valid & full;
    const int victim =
        invalid != 0
            ? __builtin_ctz(invalid)
            : static_cast<int>((m.order >> (4 * (ways - 1))) & 0xF);
    return set * ways + static_cast<std::size_t>(victim);
}

std::size_t
Cache::findSlot(std::uint64_t line) const
{
    const std::size_t set = line & (sets - 1);
    const int way = findWay(set, line);
    return way >= 0 ? set * ways + static_cast<std::size_t>(way)
                    : kNoSlot;
}

bool
Cache::invalidate(std::uint64_t line)
{
    const std::size_t set = line & (sets - 1);
    const int way = findWay(set, line);
    if (way < 0)
        return false;
    SetMeta &m = meta[set];
    const bool dirty = (m.dirty >> way) & 1u;
    m.valid = static_cast<std::uint16_t>(m.valid & ~(1u << way));
    m.dirty = static_cast<std::uint16_t>(m.dirty & ~(1u << way));
    ++counters.invalidations;
    return dirty;
}

void
Cache::markClean(std::uint64_t line)
{
    const std::size_t set = line & (sets - 1);
    const int way = findWay(set, line);
    if (way >= 0)
        meta[set].dirty =
            static_cast<std::uint16_t>(meta[set].dirty & ~(1u << way));
}

void
Cache::flush()
{
    for (auto &m : meta) {
        m.valid = 0;
        m.dirty = 0;
    }
}

std::size_t
Cache::validLines() const
{
    std::size_t n = 0;
    for (const auto &m : meta)
        n += static_cast<std::size_t>(__builtin_popcount(m.valid));
    return n;
}

} // namespace csprint
