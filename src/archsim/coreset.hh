/**
 * @file
 * A dense bitset over core ids, sized at construction for the
 * machine's core count. Replaces the fixed 64-bit sharer/mutation
 * masks that capped the machine at 64 cores: the directory and the
 * event loop exchange core sets through this type, so the same code
 * paths serve a 4-core phone chip and a 1024-core dark-silicon sweep.
 *
 * Iteration (forEach) visits cores in ascending id order — the same
 * order __builtin_ctzll produced over the old masks — which the event
 * loop's commit logic relies on for its deterministic core-id-major
 * ordering at equal cycle.
 */

#ifndef CSPRINT_ARCHSIM_CORESET_HH
#define CSPRINT_ARCHSIM_CORESET_HH

#include <cstdint>
#include <vector>

namespace csprint {

class CoreSet
{
  public:
    CoreSet() = default;
    explicit CoreSet(int num_cores) { resize(num_cores); }

    /** Size for @p num_cores ids and clear. */
    void resize(int num_cores)
    {
        words.assign(static_cast<std::size_t>((num_cores + 63) / 64), 0);
        n = num_cores;
    }

    /** Remove every member (capacity unchanged). */
    void clear()
    {
        for (auto &w : words)
            w = 0;
    }

    void add(int c) { words[idx(c)] |= bit(c); }
    void remove(int c) { words[idx(c)] &= ~bit(c); }
    bool contains(int c) const { return (words[idx(c)] & bit(c)) != 0; }

    bool empty() const
    {
        for (const auto &w : words) {
            if (w != 0)
                return false;
        }
        return true;
    }

    int count() const
    {
        int total = 0;
        for (const auto &w : words)
            total += __builtin_popcountll(w);
        return total;
    }

    /** Largest id the set can hold members below. */
    int capacity() const { return n; }

    /** Invoke @p fn(core_id) for each member in ascending id order. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words.size(); ++w) {
            std::uint64_t bits = words[w];
            while (bits) {
                fn(static_cast<int>(w * 64) + __builtin_ctzll(bits));
                bits &= bits - 1;
            }
        }
    }

  private:
    static std::size_t idx(int c)
    {
        return static_cast<std::size_t>(c) >> 6;
    }
    static std::uint64_t bit(int c)
    {
        return std::uint64_t(1) << (c & 63);
    }

    std::vector<std::uint64_t> words;
    int n = 0;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_CORESET_HH
