#include "archsim/machine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

MachineConfig
MachineConfig::paper16(int threads)
{
    MachineConfig cfg;
    cfg.num_cores = 16;
    cfg.num_threads = threads;
    return cfg;
}

Machine::Machine(const MachineConfig &config,
                 const ParallelProgram &prog)
    : cfg(config), program(prog), freq_mult(config.freq_mult)
{
    SPRINT_ASSERT(cfg.num_cores >= 1 && cfg.num_cores <= 64,
                  "core count must be in [1, 64]");
    SPRINT_ASSERT(cfg.num_threads >= 1, "need at least one thread");
    SPRINT_ASSERT(freq_mult > 0.0, "bad frequency multiplier");

    memory = std::make_unique<MemorySystem>(cfg.memory,
                                            cfg.nominal_clock, freq_mult);
    l2 = std::make_unique<SharedL2>(cfg.l2, *memory);

    l1s.reserve(cfg.num_cores);
    cores.resize(cfg.num_cores);
    for (int c = 0; c < cfg.num_cores; ++c) {
        l1s.emplace_back(cfg.l1_bytes, cfg.l1_assoc, cfg.line_bytes);
        cores[c].id = c;
        cores[c].active = true;
    }

    threads.resize(cfg.num_threads);
    for (int t = 0; t < cfg.num_threads; ++t) {
        threads[t].id = static_cast<std::size_t>(t);
        cores[t % cfg.num_cores].run_queue.push_back(t);
    }

    enterPhase(0);
}

Machine::~Machine() = default;

void
Machine::setSampleHook(SampleHook new_hook, Cycles quantum)
{
    SPRINT_ASSERT(quantum > 0, "sampling quantum must be positive");
    hook = std::move(new_hook);
    sample_quantum = quantum;
}

bool
Machine::finished() const
{
    return phase_idx >= program.phases().size();
}

void
Machine::enterPhase(std::size_t index)
{
    phase_idx = index;
    if (finished())
        return;
    const Phase &phase = program.phases()[index];
    SPRINT_ASSERT(phase.make_task != nullptr || phase.num_tasks == 0,
                  "phase needs a task factory");

    barrier_count = 0;
    serial_next_task = 0;
    dynamic_next_task = 0;
    dequeue_free_at = cycle;

    const std::size_t n = phase.num_tasks;
    const std::size_t nt = threads.size();
    for (std::size_t t = 0; t < nt; ++t) {
        Thread &thread = threads[t];
        thread.stream.reset();
        thread.at_barrier = false;
        thread.has_pending = false;
        thread.spin_failures = 0;
        if (phase.kind == PhaseKind::ParallelStatic) {
            thread.next_task = t * n / nt;
            thread.task_end = (t + 1) * n / nt;
        } else {
            thread.next_task = 0;
            thread.task_end = 0;
        }
    }
}

bool
Machine::threadRunnable(const Thread &thread, Cycles now) const
{
    return !thread.at_barrier && now >= thread.sleep_until;
}

bool
Machine::acquireNextTask(Thread &thread, Cycles now)
{
    const Phase &phase = program.phases()[phase_idx];
    auto to_barrier = [&]() {
        thread.at_barrier = true;
        ++barrier_count;
        ++totals.sleep_cycles;  // barrier arrival marker
        return false;
    };

    switch (phase.kind) {
      case PhaseKind::Serial:
        if (thread.id != 0)
            return to_barrier();
        if (serial_next_task >= phase.num_tasks)
            return to_barrier();
        thread.stream = phase.make_task(serial_next_task++);
        return true;

      case PhaseKind::ParallelStatic:
        if (thread.next_task >= thread.task_end)
            return to_barrier();
        thread.stream = phase.make_task(thread.next_task++);
        return true;

      case PhaseKind::ParallelDynamic:
        if (dynamic_next_task >= phase.num_tasks)
            return to_barrier();
        if (now < dequeue_free_at)
            return false;  // dequeue lock held: spin this cycle
        dequeue_free_at = now + cfg.task_dequeue_cycles;
        thread.stream = phase.make_task(dynamic_next_task++);
        return true;
    }
    SPRINT_PANIC("unknown phase kind");
}

void
Machine::chargeOp(OpKind kind)
{
    ++totals.ops_retired;
    ++totals.ops_by_kind[static_cast<std::size_t>(kind)];
    totals.dynamic_energy += cfg.energy.opEnergy(kind);
}

Cycles
Machine::memoryAccess(Core &core, bool write, std::uint64_t addr,
                      Cycles now)
{
    const std::uint64_t line = addr / cfg.line_bytes;
    Cache &l1 = l1s[core.id];

    if (l1.contains(line)) {
        // A dirty local copy is exclusive (MESI M state); loads and
        // stores to it complete locally. A store to a clean copy
        // needs a directory upgrade (S -> M) that invalidates other
        // sharers.
        if (!write || l1.isDirty(line)) {
            l1.access(line, write);
            ++totals.l1_hits;
            return 1;
        }
        const Cycles lat = l2->access(line, true, core.id, now, l1s);
        l1.access(line, true);
        ++totals.l1_hits;  // data was local; only ownership was remote
        return std::max<Cycles>(1, lat);
    }

    ++totals.l1_misses;
    const Cycles lat = l2->access(line, write, core.id, now, l1s);
    CacheAccessResult fill = l1.access(line, write);
    if (fill.evicted && fill.evicted_dirty)
        l2->writebackFromL1(fill.evicted_line, core.id, now + lat);
    return std::max<Cycles>(1, lat);
}

void
Machine::executeOp(Core &core, Thread &thread, const MicroOp &op,
                   Cycles now)
{
    switch (op.kind) {
      case OpKind::IntAlu:
      case OpKind::FpAlu:
      case OpKind::Branch:
        chargeOp(op.kind);
        core.busy_until = now + 1;
        thread.has_pending = false;
        return;

      case OpKind::Pause: {
        chargeOp(op.kind);
        thread.has_pending = false;
        thread.sleep_until = now + cfg.pause_sleep_cycles;
        totals.sleep_cycles += cfg.pause_sleep_cycles;
        totals.idle_cycles += cfg.pause_sleep_cycles;
        totals.dynamic_energy +=
            cfg.energy.idleCycleEnergy() *
            static_cast<double>(cfg.pause_sleep_cycles);
        core.current = -1;  // yield the core
        core.busy_until = now + 1;
        return;
      }

      case OpKind::Load:
      case OpKind::Store: {
        chargeOp(op.kind);
        const Cycles lat = memoryAccess(core, op.kind == OpKind::Store,
                                        op.addr, now);
        if (lat > 1) {
            totals.idle_cycles += lat - 1;
            totals.dynamic_energy +=
                cfg.energy.idleCycleEnergy() *
                static_cast<double>(lat - 1);
            // Accesses past the L1 burn L2/DRAM energy.
            totals.dynamic_energy += cfg.energy.l2AccessEnergy();
            if (lat > cfg.l2.hit_latency + cfg.l2.coherence_penalty + 1)
                totals.dynamic_energy += cfg.energy.dramAccessEnergy();
        }
        core.busy_until = now + lat;
        thread.has_pending = false;
        return;
      }

      case OpKind::LockAcquire: {
        if (op.addr >= locks.size())
            locks.resize(op.addr + 1);
        LockState &lock = locks[op.addr];
        if (lock.holder < 0) {
            lock.holder = static_cast<int>(thread.id);
            chargeOp(op.kind);
            thread.spin_failures = 0;
            thread.has_pending = false;
            core.busy_until = now + 2;
        } else {
            // Spin; after enough failures, PAUSE-sleep (Section 8.1).
            ++thread.spin_failures;
            totals.idle_cycles += 2;
            totals.dynamic_energy += 2.0 * cfg.energy.idleCycleEnergy();
            if (thread.spin_failures >= cfg.spin_tries_before_pause) {
                thread.spin_failures = 0;
                thread.sleep_until = now + cfg.pause_sleep_cycles;
                totals.sleep_cycles += cfg.pause_sleep_cycles;
                totals.idle_cycles += cfg.pause_sleep_cycles;
                totals.dynamic_energy +=
                    cfg.energy.idleCycleEnergy() *
                    static_cast<double>(cfg.pause_sleep_cycles);
                core.current = -1;
            }
            core.busy_until = now + 2;
        }
        return;
      }

      case OpKind::LockRelease: {
        SPRINT_ASSERT(op.addr < locks.size() &&
                          locks[op.addr].holder ==
                              static_cast<int>(thread.id),
                      "release of a lock not held by this thread");
        locks[op.addr].holder = -1;
        chargeOp(op.kind);
        thread.has_pending = false;
        core.busy_until = now + 1;
        return;
      }
    }
    SPRINT_PANIC("unknown op kind");
}

void
Machine::tickCore(Core &core, Cycles now)
{
    // Validate / preempt the current thread.
    if (core.current >= 0) {
        Thread &t = threads[core.current];
        if (!threadRunnable(t, now)) {
            core.current = -1;
        } else if (now >= core.quantum_end &&
                   core.run_queue.size() > 1) {
            core.current = -1;
        }
    }

    // Select the next runnable thread round-robin.
    if (core.current < 0) {
        const std::size_t n = core.run_queue.size();
        bool found = false;
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t idx =
                core.run_queue[(core.rr + k) % n];
            if (threadRunnable(threads[idx], now)) {
                core.rr = (core.rr + k + 1) % n;
                core.current = static_cast<int>(idx);
                core.quantum_end = now + cfg.thread_quantum;
                found = true;
                // Context-switch cost when multiplexing.
                if (n > 1) {
                    core.busy_until = now + cfg.context_switch_cycles;
                    totals.idle_cycles += cfg.context_switch_cycles;
                    totals.dynamic_energy +=
                        cfg.energy.idleCycleEnergy() *
                        static_cast<double>(cfg.context_switch_cycles);
                    return;
                }
                break;
            }
        }
        if (!found) {
            core.busy_until = now + 1;
            ++totals.idle_cycles;
            totals.dynamic_energy += cfg.energy.idleCycleEnergy();
            return;
        }
    }

    Thread &thread = threads[core.current];

    // Fetch the next op, pulling a fresh task when the stream drains.
    if (!thread.has_pending) {
        while (true) {
            if (thread.stream && thread.stream->next(thread.pending)) {
                thread.has_pending = true;
                break;
            }
            if (!acquireNextTask(thread, now)) {
                // Barrier or dequeue contention: nothing this cycle.
                if (thread.at_barrier)
                    core.current = -1;
                core.busy_until = now + 1;
                ++totals.idle_cycles;
                totals.dynamic_energy += cfg.energy.idleCycleEnergy();
                return;
            }
            if (program.phases()[phase_idx].kind ==
                PhaseKind::ParallelDynamic) {
                // Charge the dequeue critical section.
                core.busy_until = now + cfg.task_dequeue_cycles;
                totals.idle_cycles += cfg.task_dequeue_cycles;
                totals.dynamic_energy +=
                    cfg.energy.idleCycleEnergy() *
                    static_cast<double>(cfg.task_dequeue_cycles);
                return;
            }
        }
    }

    executeOp(core, thread, thread.pending, now);
}

void
Machine::maybeAdvanceBarrier()
{
    while (!finished() && barrier_count == threads.size())
        enterPhase(phase_idx + 1);
}

void
Machine::run()
{
    constexpr Cycles kMaxCycles = 200ULL * 1000 * 1000 * 1000;
    while (!finished() && !aborted) {
        for (auto &core : cores) {
            if (core.active && cycle >= core.busy_until)
                tickCore(core, cycle);
        }
        maybeAdvanceBarrier();
        ++cycle;
        if (hook && cycle % sample_quantum == 0) {
            const Seconds dt =
                static_cast<double>(sample_quantum) /
                (cfg.nominal_clock * freq_mult);
            const Joules delta =
                totals.dynamic_energy - energy_at_last_sample;
            energy_at_last_sample = totals.dynamic_energy;
            hook(*this, dt, delta);
        }
        SPRINT_ASSERT(cycle < kMaxCycles,
                      "machine exceeded the cycle safety bound");
    }
    totals.cycles = cycle;
    totals.seconds = simTime();
    totals.l1_hits = 0;
    totals.l1_misses = 0;
    for (const auto &l1 : l1s) {
        totals.l1_hits += l1.stats().hits;
        totals.l1_misses += l1.stats().misses;
    }
}

void
Machine::consolidateToSingleCore()
{
    if (activeCores() == 1)
        return;
    std::vector<std::size_t> all_threads;
    for (auto &core : cores) {
        for (std::size_t t : core.run_queue)
            all_threads.push_back(t);
        core.run_queue.clear();
        core.current = -1;
        if (core.id != 0) {
            core.active = false;
            l2->dropCore(core.id, l1s);
        }
    }
    std::sort(all_threads.begin(), all_threads.end());
    cores[0].run_queue = std::move(all_threads);
    cores[0].rr = 0;
    cores[0].busy_until =
        std::max(cores[0].busy_until, cycle + cfg.migration_cycles);
    totals.idle_cycles += cfg.migration_cycles;
    totals.dynamic_energy +=
        cfg.energy.idleCycleEnergy() *
        static_cast<double>(cfg.migration_cycles);
}

void
Machine::setFrequencyMult(double mult)
{
    SPRINT_ASSERT(mult > 0.0, "bad frequency multiplier");
    // Fold elapsed wall time at the old frequency.
    time_base += static_cast<double>(cycle - cycle_base) /
                 (cfg.nominal_clock * freq_mult);
    cycle_base = cycle;
    freq_mult = mult;
    memory->setFrequencyMult(mult, cycle);
}

int
Machine::activeCores() const
{
    int n = 0;
    for (const auto &core : cores)
        n += core.active ? 1 : 0;
    return n;
}

Seconds
Machine::simTime() const
{
    return time_base + static_cast<double>(cycle - cycle_base) /
                           (cfg.nominal_clock * freq_mult);
}

} // namespace csprint
