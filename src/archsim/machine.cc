#include "archsim/machine.hh"

#include <algorithm>
#include <cmath>

#include "common/gang.hh"
#include "common/logging.hh"

namespace csprint {

MachineConfig
MachineConfig::paper16(int threads)
{
    MachineConfig cfg;
    cfg.num_cores = 16;
    cfg.num_threads = threads;
    return cfg;
}

Machine::Machine(const MachineConfig &config,
                 const ParallelProgram &prog)
    : cfg(config), program(prog), freq_mult(config.freq_mult)
{
    SPRINT_ASSERT(cfg.num_cores >= 1 &&
                      cfg.num_cores <= MachineConfig::kMaxCores,
                  "core count must be in [1, kMaxCores]");
    SPRINT_ASSERT(cfg.num_threads >= 1, "need at least one thread");
    SPRINT_ASSERT(freq_mult > 0.0, "bad frequency multiplier");
    SPRINT_ASSERT(cfg.line_bytes > 0 &&
                      (cfg.line_bytes & (cfg.line_bytes - 1)) == 0,
                  "line size must be a power of two");
    line_shift = 0;
    while ((std::size_t(1) << line_shift) < cfg.line_bytes)
        ++line_shift;

    memory = std::make_unique<MemorySystem>(cfg.memory,
                                            cfg.nominal_clock, freq_mult);
    l2 = std::make_unique<SharedL2>(cfg.l2, *memory, cfg.num_cores);
    peek_targets.resize(cfg.num_cores);
    l1_mutated.resize(cfg.num_cores);

    l1s.reserve(cfg.num_cores);
    cores.resize(cfg.num_cores);
    next_event.assign(cfg.num_cores, 0);
    reach.assign(cfg.num_cores, 0);
    qend.assign(cfg.num_cores, kNever);
    for (int c = 0; c < cfg.num_cores; ++c) {
        l1s.emplace_back(cfg.l1_bytes, cfg.l1_assoc, cfg.line_bytes);
        cores[c].id = c;
        cores[c].active = true;
    }
    active_cores = cfg.num_cores;
    mem_batch_ok = active_cores == 1;

    threads.resize(cfg.num_threads);
    for (int t = 0; t < cfg.num_threads; ++t) {
        threads[t].id = static_cast<std::size_t>(t);
        threads[t].buf.resize(kOpBufferCap);
        cores[t % cfg.num_cores].run_queue.push_back(t);
    }

    enterPhase(0);
}

Machine::~Machine() = default;

void
Machine::setSampleHook(SampleHook new_hook, Cycles quantum)
{
    SPRINT_ASSERT(quantum > 0, "sampling quantum must be positive");
    hook = std::move(new_hook);
    sample_quantum = quantum;
}

void
Machine::setEnergyModel(const InstructionEnergyModel &model)
{
    // Price everything accrued so far with the outgoing model.
    flushEnergy();
    cfg.energy = model;
}

bool
Machine::finished() const
{
    return phase_idx >= program.phases().size();
}

void
Machine::enterPhase(std::size_t index)
{
    phase_idx = index;
    if (finished())
        return;
    const Phase &phase = program.phases()[index];
    SPRINT_ASSERT(phase.make_task != nullptr || phase.num_tasks == 0,
                  "phase needs a task factory");

    barrier_count = 0;
    serial_next_task = 0;
    dynamic_next_task = 0;
    dequeue_free_at = cycle;

    const std::size_t n = phase.num_tasks;
    const std::size_t nt = threads.size();
    for (std::size_t t = 0; t < nt; ++t) {
        Thread &thread = threads[t];
        thread.stream.reset();
        thread.at_barrier = false;
        thread.buf_pos = 0;
        thread.buf_len = 0;
        thread.spin_failures = 0;
        if (phase.kind == PhaseKind::ParallelStatic) {
            thread.next_task = t * n / nt;
            thread.task_end = (t + 1) * n / nt;
        } else {
            thread.next_task = 0;
            thread.task_end = 0;
        }
    }
}

bool
Machine::threadRunnable(const Thread &thread, Cycles now) const
{
    return !thread.at_barrier && now >= thread.sleep_until;
}

bool
Machine::acquireNextTask(Thread &thread, Cycles now)
{
    const Phase &phase = program.phases()[phase_idx];
    auto to_barrier = [&]() {
        thread.at_barrier = true;
        ++barrier_count;
        ++totals.barrier_arrivals;
        return false;
    };

    switch (phase.kind) {
      case PhaseKind::Serial:
        if (thread.id != 0)
            return to_barrier();
        if (serial_next_task >= phase.num_tasks)
            return to_barrier();
        thread.current_task = serial_next_task;
        thread.stream = phase.make_task(serial_next_task++);
        return true;

      case PhaseKind::ParallelStatic:
        if (thread.next_task >= thread.task_end)
            return to_barrier();
        thread.current_task = thread.next_task;
        thread.stream = phase.make_task(thread.next_task++);
        return true;

      case PhaseKind::ParallelDynamic:
        if (dynamic_next_task >= phase.num_tasks)
            return to_barrier();
        if (now < dequeue_free_at)
            return false;  // dequeue lock held: spin this cycle
        dequeue_free_at = now + cfg.task_dequeue_cycles;
        thread.current_task = dynamic_next_task;
        thread.stream = phase.make_task(dynamic_next_task++);
        return true;
    }
    SPRINT_PANIC("unknown phase kind");
}

bool
Machine::refillOps(Thread &thread)
{
    thread.buf_len = thread.stream->fillInto(thread.buf);
    thread.buf_pos = 0;
    return thread.buf_len > 0;
}

void
Machine::flushEnergy()
{
    std::uint64_t retired = 0;
    for (std::size_t k = 0; k < kNumOpKinds; ++k) {
        const std::uint64_t n = tally.ops[k];
        if (n == 0)
            continue;
        tally.ops[k] = 0;
        retired += n;
        totals.ops_by_kind[k] += n;
        totals.dynamic_energy +=
            static_cast<double>(n) *
            cfg.energy.opEnergy(static_cast<OpKind>(k));
    }
    totals.ops_retired += retired;
    if (tally.idle_ticks != 0) {
        totals.dynamic_energy +=
            static_cast<double>(tally.idle_ticks) *
            cfg.energy.idleCycleEnergy();
        tally.idle_ticks = 0;
    }
    if (tally.l2_accesses != 0) {
        totals.dynamic_energy +=
            static_cast<double>(tally.l2_accesses) *
            cfg.energy.l2AccessEnergy();
        tally.l2_accesses = 0;
    }
    if (tally.dram_accesses != 0) {
        totals.dynamic_energy +=
            static_cast<double>(tally.dram_accesses) *
            cfg.energy.dramAccessEnergy();
        tally.dram_accesses = 0;
    }
}

void
Machine::syncCacheTotals()
{
    // The per-Cache counters are the single source of truth; the
    // MachineStats fields only mirror them for observers.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto &l1 : l1s) {
        hits += l1.stats().hits;
        misses += l1.stats().misses;
    }
    totals.l1_hits = hits;
    totals.l1_misses = misses;
}

void
Machine::precommitL1Targets(std::uint64_t line, bool write,
                            int requester, Cycles now)
{
    // Deferred stride runs exist only in the multi-core event-driven
    // loop; skip the directory peek entirely otherwise.
    if (mem_batch_ok || cfg.loop == MachineLoop::Reference)
        return;
    // This access is about to perform coherence actions on other
    // cores' L1s. Any deferred stride run of an affected core holds
    // ops that were verified against the pre-mutation state: replay
    // them first. Within one cycle the reference loop ticks cores in
    // id order, so a lower-id core's op on the mutation cycle itself
    // executes *before* this access (commit through `now`
    // inclusive — the stride scan guarantees its coverage extends
    // past `now`, else that core would have been dispatched first),
    // while a higher-id core's op at `now` comes after the mutation
    // and is re-evaluated once the stale probe is dropped.
    l2->peekL1Targets(line, write, requester, peek_targets);
    peek_targets.forEach([&](int y) {
        if (y == requester)
            return;
        Core &cy = cores[y];
        const Cycles ty = next_event[y];
        if (!cy.active || ty > now || !streamCapable(cy, ty))
            return;
        const Cycles k = now - ty + (y < requester ? 1 : 0);
        if (k > 0 && k <= cy.probe_local)
            commitRun(cy, ty, k);
    });
}

Cycles
Machine::memoryAccess(Core &core, bool write, std::uint64_t addr,
                      Cycles now)
{
    const std::uint64_t line = addr >> line_shift;
    Cache &l1 = l1s[core.id];

    // A dirty local copy is exclusive (MESI M state); loads and
    // stores to it complete locally. A store to a clean copy needs a
    // directory upgrade (S -> M) that invalidates other sharers.
    if (l1.accessIfPresent(line, write))
        return 1;

    if (write && l1.contains(line)) {
        precommitL1Targets(line, true, core.id, now);
        const Cycles lat = l2->access(line, true, core.id, now, l1s);
        l1.access(line, true);  // data was local; only ownership moved
        return std::max<Cycles>(1, lat);
    }

    precommitL1Targets(line, write, core.id, now);
    const Cycles lat = l2->access(line, write, core.id, now, l1s);
    CacheAccessResult fill = l1.access(line, write);
    if (fill.evicted && fill.evicted_dirty)
        l2->writebackFromL1(fill.evicted_line, core.id, now + lat);
    return std::max<Cycles>(1, lat);
}

void
Machine::executeOp(Core &core, Thread &thread, const MicroOp &op,
                   Cycles now)
{
    switch (op.kind()) {
      case OpKind::IntAlu:
      case OpKind::FpAlu:
      case OpKind::Branch:
        chargeOp(op.kind());
        core.busy_until = now + 1;
        ++thread.buf_pos;
        return;

      case OpKind::Pause: {
        chargeOp(op.kind());
        ++thread.buf_pos;
        thread.sleep_until = now + cfg.pause_sleep_cycles;
        totals.sleep_cycles += cfg.pause_sleep_cycles;
        chargeIdle(cfg.pause_sleep_cycles);
        core.current = -1;  // yield the core
        core.busy_until = now + 1;
        return;
      }

      case OpKind::Load:
      case OpKind::Store: {
        chargeOp(op.kind());
        const Cycles lat = memoryAccess(core, op.kind() == OpKind::Store,
                                        op.addr(), now);
        if (lat > 1) {
            chargeIdle(lat - 1);
            // Accesses past the L1 burn L2/DRAM energy.
            ++tally.l2_accesses;
            if (lat > cfg.l2.hit_latency + cfg.l2.coherence_penalty + 1)
                ++tally.dram_accesses;
        }
        core.busy_until = now + lat;
        ++thread.buf_pos;
        return;
      }

      case OpKind::LockAcquire: {
        if (op.addr() >= locks.size()) {
            SPRINT_ASSERT(op.addr() < kMaxLockId,
                          "lock id out of sanity range");
            locks.resize(op.addr() + 1);
        }
        LockState &lock = locks[op.addr()];
        if (lock.holder < 0) {
            lock.holder = static_cast<int>(thread.id);
            chargeOp(op.kind());
            thread.spin_failures = 0;
            ++thread.buf_pos;
            core.busy_until = now + 2;
        } else {
            // Spin; after enough failures, PAUSE-sleep (Section 8.1).
            ++thread.spin_failures;
            chargeIdle(2);
            if (thread.spin_failures >= cfg.spin_tries_before_pause) {
                thread.spin_failures = 0;
                thread.sleep_until = now + cfg.pause_sleep_cycles;
                totals.sleep_cycles += cfg.pause_sleep_cycles;
                chargeIdle(cfg.pause_sleep_cycles);
                core.current = -1;
            }
            core.busy_until = now + 2;
        }
        return;
      }

      case OpKind::LockRelease: {
        SPRINT_ASSERT(op.addr() < locks.size() &&
                          locks[op.addr()].holder ==
                              static_cast<int>(thread.id),
                      "release of a lock not held by this thread");
        locks[op.addr()].holder = -1;
        chargeOp(op.kind());
        ++thread.buf_pos;
        core.busy_until = now + 1;
        return;
      }
    }
    SPRINT_PANIC("unknown op kind");
}

Cycles
Machine::batchLimit(const Core &core, Cycles now) const
{
    if (cfg.loop == MachineLoop::Reference)
        return 1;  // the parity baseline executes one op per cycle
    Cycles limit = kNever;  // tryBatch clamps to the buffered window
    // Never execute past a sample boundary: the hook must observe
    // exactly the state the reference loop would show it.
    if (next_sample_at - now < limit)
        limit = next_sample_at - now;
    // Quantum preemption is checked every cycle when multiplexing.
    if (core.run_queue.size() > 1 && core.quantum_end - now < limit)
        limit = core.quantum_end - now;
    return limit;
}

Cycles
Machine::tryBatch(Core &core, Thread &thread, Cycles limit,
                  bool allow_mem)
{
    Cache &l1 = l1s[core.id];
    const MicroOp *ops = thread.buf.data();
    const std::size_t start = thread.buf_pos;
    std::size_t i = start;
    const std::size_t end =
        std::min<std::size_t>(thread.buf_len,
                              start + static_cast<std::size_t>(limit));
    while (i < end) {
        const MicroOp &op = ops[i];
        if (isComputeOp(op.kind())) {
            chargeOp(op.kind());
            ++i;
            continue;
        }
        // Memory hits reach this point only when no other core can
        // interleave a coherence action inside the batch window:
        // exactly one active core, or a stride-verified commit.
        if (isMemoryOp(op.kind()) && allow_mem &&
            l1.accessIfPresent(op.addr() >> line_shift,
                               op.kind() == OpKind::Store)) {
            chargeOp(op.kind());
            ++i;
            continue;
        }
        break;
    }
    thread.buf_pos = i;
    return static_cast<Cycles>(i - start);
}

bool
Machine::streamCapable(const Core &core, Cycles now) const
{
    // True when the core's next actions are fully described by its
    // current thread's buffered ops: a tick at `now` would neither
    // reschedule, preempt, refill, nor sleep.
    if (core.current < 0 || core.idle_repeat)
        return false;
    const Thread &t = threads[core.current];
    if (t.at_barrier || now < t.sleep_until ||
        t.buf_pos >= t.buf_len)
        return false;
    if (core.run_queue.size() > 1 && now >= core.quantum_end)
        return false;
    return true;
}

void
Machine::probeLocalRun(Core &core, const Thread &thread, Cycles cap)
{
    // Extend the cached count of verified-local ops (each one cycle,
    // own-L1 only) from the thread's current buffer position, up to
    // @p cap ops or the first stride blocker.
    if (core.probe_blocked)
        return;
    const Cache &l1 = l1s[core.id];
    // Hoisted bounds: walk [first, last) with one comparison per op;
    // stopping short of `goal` (for any reason other than the cap)
    // marks the blocker.
    const MicroOp *const base = thread.buf.data();
    const MicroOp *p = base + thread.buf_pos + core.probe_local;
    const std::size_t want =
        cap < static_cast<Cycles>(thread.buf_len - thread.buf_pos)
            ? static_cast<std::size_t>(cap)
            : thread.buf_len - thread.buf_pos;
    const MicroOp *const goal = base + thread.buf_pos + want;
    const bool hit_buffer_end = want < cap;
    if (core.probe_mem.capacity() < thread.buf_len)
        core.probe_mem.reserve(thread.buf_len);
    const std::uint64_t set_mask = l1.numSets() - 1;
    // Same-line memo: back-to-back accesses to one line are the
    // common pattern (stencil neighbours), and presence/dirtiness
    // cannot change inside a verified-local run.
    std::uint64_t memo_key = ~std::uint64_t(0);
    std::uint32_t memo_entry = 0;
    bool memo_ok = false;
    while (p != goal) {
        const OpKind kind = p->kind();
        if (isComputeOp(kind)) {
            ++core.probe_counts[opKindIndex(kind)];
            ++p;
            continue;
        }
        if (!isMemoryOp(kind))
            break;
        const std::uint64_t line = p->addr() >> line_shift;
        const std::uint64_t key =
            (line << 1) | (kind == OpKind::Store);
        if (key != memo_key) {
            memo_key = key;
            const int way = l1.hitWay(line, kind == OpKind::Store);
            memo_ok = way >= 0;
            memo_entry = Cache::packHit(line & set_mask, way);
        }
        if (!memo_ok)
            break;
        core.probe_mem.push_back(memo_entry);
        ++core.probe_counts[opKindIndex(kind)];
        ++p;
    }
    const std::uint32_t n = static_cast<std::uint32_t>(
        p - (base + thread.buf_pos));
    core.probe_local = n;
    core.probe_blocked = (p != goal) || hit_buffer_end;
}

Cycles
Machine::coreWake(const Core &core, Cycles now) const
{
    // Earliest cycle >= now + 1 at which some thread in the run queue
    // becomes runnable; kNever while all are parked at the barrier (a
    // barrier release resets every core's next event) or the queue is
    // empty.
    Cycles wake = kNever;
    for (std::size_t idx : core.run_queue) {
        const Thread &t = threads[idx];
        if (t.at_barrier)
            continue;
        wake = std::min(wake, std::max(t.sleep_until, now + 1));
    }
    return wake;
}

void
Machine::settleIdle(Core &core, Cycles upto)
{
    // Charge the idle tick the reference loop would have issued on
    // every cycle of [idle_from, upto).
    if (core.idle_repeat && upto > core.idle_from) {
        chargeIdle(upto - core.idle_from);
        core.idle_from = upto;
    }
}

void
Machine::resetProbe(Core &core)
{
    core.probe_local = 0;
    core.probe_blocked = false;
    core.probe_counts.fill(0);
    core.probe_mem.clear();
    core.probe_mem_pos = 0;
}

void
Machine::tickCore(Core &core, Cycles now)
{
    core.idle_repeat = false;
    resetProbe(core);

    // Validate / preempt the current thread.
    if (core.current >= 0) {
        Thread &t = threads[core.current];
        if (!threadRunnable(t, now)) {
            core.current = -1;
        } else if (now >= core.quantum_end &&
                   core.run_queue.size() > 1) {
            core.current = -1;
        }
    }

    // Select the next runnable thread round-robin.
    if (core.current < 0) {
        const std::size_t n = core.run_queue.size();
        bool found = false;
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t idx =
                core.run_queue[(core.rr + k) % n];
            if (threadRunnable(threads[idx], now)) {
                core.rr = (core.rr + k + 1) % n;
                core.current = static_cast<int>(idx);
                core.quantum_end = now + cfg.thread_quantum;
                found = true;
                // Context-switch cost when multiplexing.
                if (n > 1) {
                    core.busy_until = now + cfg.context_switch_cycles;
                    chargeIdle(cfg.context_switch_cycles);
                    next_event[core.id] = core.busy_until;
                    return;
                }
                break;
            }
        }
        if (!found) {
            core.busy_until = now + 1;
            chargeIdle(1);
            core.idle_repeat = true;
            core.idle_from = now + 1;
            next_event[core.id] = coreWake(core, now);
            return;
        }
    }

    Thread &thread = threads[core.current];

    // Refill the op window, pulling fresh tasks when a stream drains.
    if (thread.buf_pos >= thread.buf_len) {
        while (true) {
            if (thread.stream && refillOps(thread))
                break;
            if (!acquireNextTask(thread, now)) {
                // Barrier or dequeue contention: nothing this cycle.
                const bool at_barrier = thread.at_barrier;
                if (at_barrier)
                    core.current = -1;
                core.busy_until = now + 1;
                chargeIdle(1);
                core.idle_repeat = true;
                core.idle_from = now + 1;
                next_event[core.id] =
                    at_barrier
                        ? coreWake(core, now)
                        : std::min(dequeue_free_at,
                                   core.run_queue.size() > 1
                                       ? core.quantum_end
                                       : kNever);
                return;
            }
            if (program.phases()[phase_idx].kind ==
                PhaseKind::ParallelDynamic) {
                // Charge the dequeue critical section.
                core.busy_until = now + cfg.task_dequeue_cycles;
                chargeIdle(cfg.task_dequeue_cycles);
                next_event[core.id] = core.busy_until;
                return;
            }
        }
    }

    const MicroOp &op = thread.buf[thread.buf_pos];
    if (isComputeOp(op.kind()) ||
        (mem_batch_ok && isMemoryOp(op.kind()))) {
        const Cycles n = tryBatch(core, thread, batchLimit(core, now),
                                  mem_batch_ok);
        if (n > 0) {
            core.busy_until = now + n;
            next_event[core.id] = core.busy_until;
            return;
        }
    } else if (isMemoryOp(op.kind()) &&
               l1s[core.id].accessIfPresent(op.addr() >> line_shift,
                                            op.kind() == OpKind::Store)) {
        // Multi-core local L1 hit: one cycle, no coherence traffic.
        // (Identical to executeOp's Load/Store path with lat == 1.)
        chargeOp(op.kind());
        ++thread.buf_pos;
        core.busy_until = now + 1;
        next_event[core.id] = core.busy_until;
        return;
    }
    executeOp(core, thread, op, now);
    next_event[core.id] = core.busy_until;
}

void
Machine::maybeAdvanceBarrier()
{
    while (!finished() && barrier_count == threads.size())
        enterPhase(phase_idx + 1);
}

void
Machine::resetNextEvents()
{
    // Conservative re-arm after a structural change (barrier release,
    // consolidation): every active core is due no later than the next
    // cycle it could possibly act on. Idle bookkeeping is preserved so
    // the pending span is still charged when the core is processed.
    for (auto &core : cores) {
        next_event[core.id] =
            core.active ? std::max(core.busy_until, cycle + 1) : kNever;
        resetProbe(core);
        refreshScanCache(static_cast<std::size_t>(core.id));
    }
}

void
Machine::fireSampleHook()
{
    // Settle lazy idle spans so the hook observes exactly the totals
    // the reference loop would show at this boundary.
    for (auto &core : cores) {
        if (core.active)
            settleIdle(core, cycle);
    }
    flushEnergy();
    syncCacheTotals();
    const Seconds dt = static_cast<double>(sample_quantum) /
                       (cfg.nominal_clock * freq_mult);
    const Joules delta = totals.dynamic_energy - energy_at_last_sample;
    energy_at_last_sample = totals.dynamic_energy;
    next_sample_at += sample_quantum;
    hook(*this, dt, delta);
    if (events_dirty) {
        // The hook consolidated cores or re-queued threads: recompute
        // every wake-up conservatively.
        events_dirty = false;
        resetNextEvents();
    }
}

void
Machine::run()
{
    suspend_pending = false;
    was_suspended = false;
    next_sample_at =
        hook ? (cycle / sample_quantum + 1) * sample_quantum : kNever;
    if (cfg.loop == MachineLoop::Reference)
        runReference();
    else
        runEventLoop();
    // A suspend() that raced the final sample is moot: the program is
    // done and there is nothing to resume.
    was_suspended = suspend_pending && !finished();
    suspend_pending = false;
    finishRun();
}

void
Machine::resume()
{
    SPRINT_ASSERT(was_suspended, "resume() without a prior suspend()");
    run();
}

void
Machine::finishRun()
{
    for (auto &core : cores) {
        if (core.active)
            settleIdle(core, cycle);
    }
    flushEnergy();
    totals.cycles = cycle;
    totals.seconds = simTime();
    syncCacheTotals();
}

void
Machine::runReference()
{
    constexpr Cycles kMaxCycles = 200ULL * 1000 * 1000 * 1000;
    while (!finished() && !aborted && !suspend_pending) {
        for (auto &core : cores) {
            if (core.active && cycle >= core.busy_until)
                tickCore(core, cycle);
        }
        maybeAdvanceBarrier();
        ++cycle;
        if (cycle == next_sample_at)
            fireSampleHook();
        SPRINT_ASSERT(cycle < kMaxCycles,
                      "machine exceeded the cycle safety bound");
    }
}

void
Machine::commitRunInto(Core &core, Cycles from, Cycles k,
                       EnergyTally &et)
{
    // Replay @p k stride-verified local ops of the core's current
    // thread, occupying cycles [from, from + k). The probe guarantees
    // each replays as a one-cycle local op, and recorded the hit way
    // of every memory op, so no lookup happens here. Ops are charged
    // to @p et — the shared tally in serial contexts, a per-lane
    // scratch under parallel dispatch (everything else touched here
    // is owned by @p core).
    SPRINT_ASSERT(k <= core.probe_local,
                  "stride commit exceeds its probe");
    Thread &thread = threads[core.current];
    Cache &l1 = l1s[core.id];
    if (k == core.probe_local) {
        // Full-run commit (the common case: the core reached its own
        // blocker): apply the aggregated counts and replay the packed
        // hit list without touching the op array.
        for (std::size_t kd = 0; kd < kNumOpKinds; ++kd) {
            et.ops[kd] += core.probe_counts[kd];
            core.probe_counts[kd] = 0;
        }
        l1.commitHits(core.probe_mem.data() + core.probe_mem_pos,
                      core.probe_mem.size() - core.probe_mem_pos);
        core.probe_mem.clear();
        core.probe_mem_pos = 0;
        thread.buf_pos += static_cast<std::size_t>(k);
        core.probe_local = 0;
    } else {
        // Partial commit (horizon or mutation truncation): walk the
        // prefix, consuming the packed list in step.
        const MicroOp *ops = thread.buf.data();
        std::size_t i = thread.buf_pos;
        const std::size_t end = i + static_cast<std::size_t>(k);
        std::uint32_t mem_n = 0;
        for (; i != end; ++i) {
            const std::size_t kd = opKindIndex(ops[i].kind());
            ++et.ops[kd];
            --core.probe_counts[kd];
            mem_n += isMemoryOp(ops[i].kind());
        }
        l1.commitHits(core.probe_mem.data() + core.probe_mem_pos,
                      mem_n);
        core.probe_mem_pos += mem_n;
        thread.buf_pos = end;
        core.probe_local -= static_cast<std::uint32_t>(k);
    }
    core.busy_until = from + k;
    next_event[core.id] = from + k;
}

WorkerGang *
Machine::dispatchGang()
{
    if (cfg.dispatch_gang)
        return cfg.dispatch_gang->lanes() > 1 ? cfg.dispatch_gang
                                              : nullptr;
    if (cfg.dispatch_threads <= 1 || cfg.num_cores <= 1)
        return nullptr;
    if (!own_gang) {
        own_gang = std::make_unique<WorkerGang>(
            std::min(cfg.dispatch_threads, cfg.num_cores));
    }
    return own_gang.get();
}

void
Machine::prewarmProbes(WorkerGang &gang)
{
    // Serial pre-pass: collect every core the horizon scan below could
    // ask for a probe extension. Using next_sample_at as the cap makes
    // this a superset of the serial scan's probe set (its horizon only
    // shrinks from there), and over-probing is pure lookahead: probes
    // never touch machine state, so extending one further than the
    // serial loop would cannot change the scan's outcome.
    probe_need.clear();
    const std::size_t ncores = cores.size();
    const Cycles *ne = next_event.data();
    const Cycles *re = reach.data();
    const Cycles *qe = qend.data();
    for (std::size_t c = 0; c < ncores; ++c) {
        const Cycles t = ne[c];
        if (t >= next_sample_at)
            continue;
        const Cycles r = std::min(re[c], qe[c]);
        if (r >= next_sample_at)
            continue;
        Core &core = cores[c];
        if (r <= t && !streamCapable(core, t))
            continue;  // plain scheduler event: no probe involved
        Cycles cap = next_sample_at - t;
        if (qe[c] - t < cap)
            cap = qe[c] - t;
        if (!core.probe_blocked && core.probe_local < cap)
            probe_need.push_back(static_cast<std::uint32_t>(c));
    }
    // Below the fanout threshold the fork/join handoff costs more
    // than the probes; leave them to the serial scan.
    if (probe_need.size() < 4)
        return;
    const int nl = gang.lanes();
    gang.run([&](int lane) {
        for (std::size_t i = static_cast<std::size_t>(lane);
             i < probe_need.size();
             i += static_cast<std::size_t>(nl)) {
            const std::size_t c = probe_need[i];
            Core &core = cores[c];
            const Cycles t = next_event[c];
            Cycles cap = next_sample_at - t;
            if (qend[c] - t < cap)
                cap = qend[c] - t;
            probeLocalRun(core, threads[core.current], cap);
            reach[c] = t + core.probe_local;
        }
    });
}

void
Machine::mergeTally(EnergyTally &from)
{
    for (std::size_t k = 0; k < kNumOpKinds; ++k) {
        tally.ops[k] += from.ops[k];
        from.ops[k] = 0;
    }
    tally.idle_ticks += from.idle_ticks;
    tally.l2_accesses += from.l2_accesses;
    tally.dram_accesses += from.dram_accesses;
    from.idle_ticks = 0;
    from.l2_accesses = 0;
    from.dram_accesses = 0;
}

void
Machine::parallelBoundaryCommit(WorkerGang &gang, Cycles horizon)
{
    // Commit every deferred local run up to the sample boundary, each
    // lane taking a strided share of the cores. A commit touches only
    // its core's state, its thread's cursor, and its own L1; op
    // charges land in per-lane tallies merged below (integer adds, so
    // the merged totals match the serial loop's bit-for-bit).
    const std::size_t ncores = cores.size();
    const Cycles *ne = next_event.data();
    const int nl = gang.lanes();
    if (lane_tallies.size() < static_cast<std::size_t>(nl))
        lane_tallies.resize(static_cast<std::size_t>(nl));
    gang.run([&](int lane) {
        EnergyTally &et = lane_tallies[static_cast<std::size_t>(lane)];
        for (std::size_t c = static_cast<std::size_t>(lane); c < ncores;
             c += static_cast<std::size_t>(nl)) {
            const Cycles t = ne[c];
            if (t < horizon)
                commitRunInto(cores[c], t, horizon - t, et);
        }
    });
    for (int l = 0; l < nl; ++l)
        mergeTally(lane_tallies[static_cast<std::size_t>(l)]);
}

void
Machine::runEventLoop()
{
    constexpr Cycles kMaxCycles = 200ULL * 1000 * 1000 * 1000;
    const std::size_t ncores = cores.size();
    WorkerGang *const gang = dispatchGang();
    while (!finished() && !aborted && !suspend_pending) {
        if (gang && !mem_batch_ok)
            prewarmProbes(*gang);
        // Find the earliest cycle at which anything non-local can
        // happen: a core's first op that is not a verified one-cycle
        // local op (L2-reaching access, lock, PAUSE, refill), a
        // scheduler wake-up/preemption, or the sample boundary. Every
        // streaming core's probe is extended to cover the horizon, so
        // ops before it are provably confined to their own L1 and
        // commute across cores; they are committed lazily — when
        // their core reaches a global op, when a coherence action
        // touches that core, or at a sample boundary.
        const Cycles *ne = next_event.data();
        const Cycles *re = reach.data();
        const Cycles *qe = qend.data();
        Cycles horizon = next_sample_at;
        int pick = -1;
        for (std::size_t c = 0; c < ncores; ++c) {
            const Cycles t = ne[c];
            if (t >= horizon)
                continue;
            if (mem_batch_ok) {
                // Single active core: no cross-core hazard exists, so
                // ticking is eager — tickCore's batch path drains the
                // whole local run in one pass with no probe/commit
                // split.
                horizon = t;
                pick = static_cast<int>(c);
                continue;
            }
            // Fast path: the cached verified-local reach (clamped to
            // the preemption point) already covers the horizon.
            const Cycles r = std::min(re[c], qe[c]);
            if (r >= horizon)
                continue;
            Core &core = cores[c];
            if (r <= t && !streamCapable(core, t)) {
                // Plain scheduler event (wake-up, preemption, refill,
                // barrier pickup): handled by a normal tick at t.
                // (r < t only via a stale preemption point, which a
                // tick refreshes.)
                horizon = t;
                pick = static_cast<int>(c);
                continue;
            }
            Cycles cap = horizon - t;
            if (qe[c] - t < cap)
                cap = qe[c] - t;
            if (!core.probe_blocked && core.probe_local < cap) {
                probeLocalRun(core, threads[core.current], cap);
                reach[c] = t + core.probe_local;
            }
            const Cycles run = std::min<Cycles>(core.probe_local, cap);
            if (t + run < horizon) {
                horizon = t + run;
                pick = static_cast<int>(c);
            }
        }
        SPRINT_ASSERT(horizon != kNever,
                      "machine deadlock: no pending events");

        if (pick < 0) {
            // Nothing due before the sample boundary: commit every
            // deferred local run up to it and fire the hook.
            if (gang && !mem_batch_ok) {
                parallelBoundaryCommit(*gang, horizon);
            } else {
                for (std::size_t c = 0; c < ncores; ++c) {
                    const Cycles t = ne[c];
                    if (t < horizon)
                        commitRun(cores[c], t, horizon - t);
                }
            }
            cycle = horizon;
            fireSampleHook();
            SPRINT_ASSERT(cycle < kMaxCycles,
                          "machine exceeded the cycle safety bound");
            continue;
        }

        // One core acts at the horizon. Commit its own deferred run
        // first (its op at the horizon may depend on its L1 recency),
        // then tick it — in core-id order when several cores share
        // the cycle, because the scan keeps the first minimum.
        Core &core = cores[pick];
        {
            const Cycles t = ne[pick];
            if (t < horizon)
                commitRun(core, t, horizon - t);
            settleIdle(core, horizon);
            const std::size_t phase_before = phase_idx;
            tickCore(core, horizon);
            refreshScanCache(static_cast<std::size_t>(pick));
            cycle = horizon;
            maybeAdvanceBarrier();
            if (phase_idx != phase_before)
                resetNextEvents();
            if (finished()) {
                // Mirror the reference loop's final iteration: the
                // cycle completes (idle cores included — finishRun
                // settles their spans through this cycle) and the
                // clock advances once more before the loop exits.
                cycle += 1;
                if (cycle == next_sample_at)
                    fireSampleHook();
                continue;
            }
        }

        // If the tick performed coherence actions on other cores'
        // L1s, their probes beyond this cycle are stale: commit the
        // still-valid prefix (ops strictly before the mutation) and
        // drop the rest for re-probing.
        l2->takeL1Mutations(l1_mutated);
        l1_mutated.forEach([&](int y) {
            if (y == pick)
                return;
            Core &cy = cores[y];
            const Cycles ty = next_event[y];
            if (cy.active && ty < cycle && streamCapable(cy, ty))
                commitRun(cy, ty, cycle - ty);
            resetProbe(cy);
            reach[y] = next_event[y];
        });

        SPRINT_ASSERT(cycle < kMaxCycles,
                      "machine exceeded the cycle safety bound");
    }
}

void
Machine::warmStartFrom(Machine &prev)
{
    SPRINT_ASSERT(cycle == 0 && totals.ops_retired == 0 &&
                      totals.dynamic_energy == 0.0,
                  "warm start must precede run()");
    SPRINT_ASSERT(cfg.l1_bytes == prev.cfg.l1_bytes &&
                      cfg.l1_assoc == prev.cfg.l1_assoc &&
                      cfg.line_bytes == prev.cfg.line_bytes,
                  "warm start requires identical L1 geometry");
    // Adoption moves the predecessor's caches out, so a machine can
    // seed at most one successor; catch a reused source here rather
    // than crashing in the successor's first cache access.
    SPRINT_ASSERT(!prev.l1s.empty() && prev.l1s[0].numSlots() > 0,
                  "warm start source already consumed");
    // Narrowing re-activation: cores this machine does not have lose
    // their L1 contents. Dropping them from the predecessor's
    // directory first keeps the adopted directory consistent with the
    // adopted L1 set (dropCore recalls dirty lines into the L2, so no
    // data is lost to the model).
    for (int c = cfg.num_cores; c < prev.cfg.num_cores; ++c)
        prev.l2->dropCore(c, prev.l1s);
    const int shared = std::min(cfg.num_cores, prev.cfg.num_cores);
    for (int c = 0; c < shared; ++c) {
        l1s[c] = std::move(prev.l1s[c]);
        l1s[c].resetStats();
    }
    l2->adoptState(std::move(*prev.l2));
    // DRAM channels do not drain just because the cores re-activated:
    // occupancy outstanding at the predecessor's final cycle carries
    // into this machine's cycle domain (this machine starts at 0).
    memory->adoptChannelState(*prev.memory, prev.cycle, cycle);
}

void
Machine::consolidateToSingleCore()
{
    if (active_cores == 1)
        return;
    std::vector<std::size_t> all_threads;
    for (auto &core : cores) {
        for (std::size_t t : core.run_queue)
            all_threads.push_back(t);
        core.run_queue.clear();
        core.current = -1;
        core.idle_repeat = false;
        if (core.id != 0) {
            core.active = false;
            l2->dropCore(core.id, l1s);
        }
    }
    std::sort(all_threads.begin(), all_threads.end());
    cores[0].run_queue = std::move(all_threads);
    cores[0].rr = 0;
    cores[0].busy_until =
        std::max(cores[0].busy_until, cycle + cfg.migration_cycles);
    chargeIdle(cfg.migration_cycles);
    active_cores = 1;
    mem_batch_ok = true;
    events_dirty = true;
}

void
Machine::setFrequencyMult(double mult)
{
    SPRINT_ASSERT(mult > 0.0, "bad frequency multiplier");
    // Fold elapsed wall time at the old frequency.
    time_base += static_cast<double>(cycle - cycle_base) /
                 (cfg.nominal_clock * freq_mult);
    cycle_base = cycle;
    freq_mult = mult;
    memory->setFrequencyMult(mult, cycle);
}

Seconds
Machine::simTime() const
{
    return time_base + static_cast<double>(cycle - cycle_base) /
                           (cfg.nominal_clock * freq_mult);
}

} // namespace csprint
