/**
 * @file
 * Operation-stream abstraction: tasks hand the simulator a lazily
 * generated sequence of micro-ops. ChunkedOpStream lets workload
 * kernels generate one natural unit of work at a time (an image row, a
 * batch of points) without storing whole-task traces in memory.
 *
 * Streams expose two pull interfaces: the per-op next() and the bulk
 * fill(), which hands the machine whole runs of ops at once so the
 * simulation hot path never round-trips through a virtual call per op.
 */

#ifndef CSPRINT_ARCHSIM_OPSTREAM_HH
#define CSPRINT_ARCHSIM_OPSTREAM_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "archsim/op.hh"

namespace csprint {

/** A pull-based generator of micro-ops. */
class OpStream
{
  public:
    virtual ~OpStream() = default;

    /** Produce the next op; false when the stream is exhausted. */
    virtual bool next(MicroOp &op) = 0;

    /**
     * Copy up to @p max ops into @p out and return how many were
     * written. A return of zero means the stream is exhausted — a
     * stream must never return zero while ops remain. The default
     * implementation loops over next(); concrete streams override it
     * to hand out whole chunks per call.
     */
    virtual std::size_t fill(MicroOp *out, std::size_t max);

    /**
     * Bulk variant that may replace @p out's contents entirely
     * (including swapping internal storage to avoid the copy);
     * returns how many ops are valid at out[0..n). Zero means
     * exhausted, as for fill(). The default resizes @p out to a
     * batch window and delegates to fill().
     */
    virtual std::size_t fillInto(std::vector<MicroOp> &out);
};

/** A stream backed by a pre-built vector of ops (tests, tiny tasks). */
class VectorOpStream : public OpStream
{
  public:
    explicit VectorOpStream(std::vector<MicroOp> ops);

    bool next(MicroOp &op) override;
    std::size_t fill(MicroOp *out, std::size_t max) override;

  private:
    friend struct CheckpointIO;

    std::vector<MicroOp> ops;
    std::size_t pos = 0;
};

/**
 * A stream generated chunk by chunk: the callback fills a buffer with
 * the ops of chunk @p i (for example one image row); the stream drains
 * the buffer and then requests the next chunk.
 */
class ChunkedOpStream : public OpStream
{
  public:
    /** @param fn rebuilds the buffer for a chunk index. The callback
     *  owns the reset (clear() or resize()): on entry the vector
     *  holds unspecified leftovers from an earlier chunk, so a
     *  fixed-size generator can resize() once and overwrite in place
     *  without paying a re-initialization per chunk. A callback that
     *  neither clears nor writes re-emits the leftovers — always
     *  reset first, even on chunks that produce no ops. */
    using ChunkFn = std::function<void(std::size_t chunk,
                                       std::vector<MicroOp> &out)>;

    ChunkedOpStream(std::size_t num_chunks, ChunkFn fn);

    bool next(MicroOp &op) override;
    std::size_t fill(MicroOp *out, std::size_t max) override;
    std::size_t fillInto(std::vector<MicroOp> &out) override;

  private:
    friend struct CheckpointIO;

    bool refill();

    std::size_t num_chunks;
    std::size_t next_chunk = 0;
    ChunkFn fn;
    std::vector<MicroOp> buffer;
    std::size_t pos = 0;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_OPSTREAM_HH
