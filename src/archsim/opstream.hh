/**
 * @file
 * Operation-stream abstraction: tasks hand the simulator a lazily
 * generated sequence of micro-ops. ChunkedOpStream lets workload
 * kernels generate one natural unit of work at a time (an image row, a
 * batch of points) without storing whole-task traces in memory.
 */

#ifndef CSPRINT_ARCHSIM_OPSTREAM_HH
#define CSPRINT_ARCHSIM_OPSTREAM_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "archsim/op.hh"

namespace csprint {

/** A pull-based generator of micro-ops. */
class OpStream
{
  public:
    virtual ~OpStream() = default;

    /** Produce the next op; false when the stream is exhausted. */
    virtual bool next(MicroOp &op) = 0;
};

/** A stream backed by a pre-built vector of ops (tests, tiny tasks). */
class VectorOpStream : public OpStream
{
  public:
    explicit VectorOpStream(std::vector<MicroOp> ops);

    bool next(MicroOp &op) override;

  private:
    std::vector<MicroOp> ops;
    std::size_t pos = 0;
};

/**
 * A stream generated chunk by chunk: the callback fills a buffer with
 * the ops of chunk @p i (for example one image row); the stream drains
 * the buffer and then requests the next chunk.
 */
class ChunkedOpStream : public OpStream
{
  public:
    /** @param fn fills the buffer for a chunk index; buffer is cleared
     *  before each call. */
    using ChunkFn = std::function<void(std::size_t chunk,
                                       std::vector<MicroOp> &out)>;

    ChunkedOpStream(std::size_t num_chunks, ChunkFn fn);

    bool next(MicroOp &op) override;

  private:
    bool refill();

    std::size_t num_chunks;
    std::size_t next_chunk = 0;
    ChunkFn fn;
    std::vector<MicroOp> buffer;
    std::size_t pos = 0;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_OPSTREAM_HH
