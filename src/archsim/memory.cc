#include "archsim/memory.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

MemorySystem::MemorySystem(const MemoryConfig &cfg, Hertz clock,
                           double freq_mult)
    : cfg(cfg), clock(clock), mult(freq_mult)
{
    SPRINT_ASSERT(cfg.channels > 0, "need at least one channel");
    SPRINT_ASSERT(cfg.channel_bytes_per_sec > 0.0, "bad bandwidth");
    next_free.assign(cfg.channels, 0.0);
}

int
MemorySystem::channelOf(std::uint64_t line) const
{
    return static_cast<int>(line % static_cast<std::uint64_t>(
                                       cfg.channels));
}

Cycles
MemorySystem::uncontendedLatency() const
{
    return static_cast<Cycles>(std::llround(cfg.round_trip * clock * mult));
}

Cycles
MemorySystem::serviceCycles() const
{
    const double bytes_per_cycle =
        cfg.channel_bytes_per_sec / (clock * mult);
    return static_cast<Cycles>(
        std::ceil(cfg.line_bytes / bytes_per_cycle));
}

Cycles
MemorySystem::read(std::uint64_t line, Cycles now)
{
    const int ch = channelOf(line);
    const double t_now = static_cast<double>(now);
    const double start = std::max(t_now, next_free[ch]);
    const Cycles queue = static_cast<Cycles>(start - t_now);
    const Cycles service = serviceCycles();
    next_free[ch] = start + static_cast<double>(service);
    counters.reads++;
    counters.queued_cycles += queue;
    return queue + uncontendedLatency() + service;
}

void
MemorySystem::writeback(std::uint64_t line, Cycles now)
{
    const int ch = channelOf(line);
    const double t_now = static_cast<double>(now);
    const double start = std::max(t_now, next_free[ch]);
    next_free[ch] = start + static_cast<double>(serviceCycles());
    counters.writebacks++;
}

void
MemorySystem::adoptChannelState(const MemorySystem &prev,
                                Cycles prev_now, Cycles now)
{
    SPRINT_ASSERT(cfg.channels == prev.cfg.channels,
                  "channel adoption requires one channel count");
    // Cycle spans convert across domains by the clock-rate ratio.
    const double ratio = (clock * mult) / (prev.clock * prev.mult);
    const double t_prev = static_cast<double>(prev_now);
    const double t_now = static_cast<double>(now);
    for (std::size_t ch = 0; ch < next_free.size(); ++ch) {
        const double residual = prev.next_free[ch] - t_prev;
        next_free[ch] = residual > 0.0 ? t_now + residual * ratio : 0.0;
    }
}

void
MemorySystem::setFrequencyMult(double freq_mult, Cycles now)
{
    SPRINT_ASSERT(freq_mult > 0.0, "bad frequency multiplier");
    // Rescale outstanding channel-busy horizons into the new cycle
    // domain: the remaining *wall-clock* busy time is preserved.
    const double ratio = freq_mult / mult;
    const double t_now = static_cast<double>(now);
    for (auto &nf : next_free) {
        if (nf > t_now)
            nf = t_now + (nf - t_now) * ratio;
    }
    mult = freq_mult;
}

} // namespace csprint
