/**
 * @file
 * The many-core machine: in-order cores (CPI of one plus cache-miss
 * penalties), private L1s, a shared directory-coherent L2, a
 * dual-channel memory system, and the threading runtime that executes
 * a ParallelProgram (paper Section 8.1).
 *
 * Threads map onto active cores; when there are more threads than
 * active cores (the post-sprint single-core mode of Section 7) each
 * core round-robin multiplexes its threads with a context-switch cost.
 * A PAUSE op puts the executing core to sleep for ~1000 cycles at 10%
 * of active power. An external controller (the sprint governor) may
 * observe energy every sampling quantum and react by consolidating all
 * threads onto core 0 or by throttling frequency.
 *
 * Two scheduler loops implement identical semantics (see PERF.md, "The
 * machine hot path"): the default event-driven loop advances the clock
 * directly to the next cycle on which any core can change state
 * (charging skipped idle cycles in bulk) and drains runs of one-cycle
 * ops per core visit, while the retained reference loop is the seed's
 * cycle-by-cycle scan, kept as the parity baseline. Both charge energy
 * through integer event tallies priced at sample boundaries, so their
 * statistics agree bit-for-bit.
 */

#ifndef CSPRINT_ARCHSIM_MACHINE_HH
#define CSPRINT_ARCHSIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "archsim/cache.hh"
#include "archsim/coreset.hh"
#include "archsim/l2.hh"
#include "archsim/memory.hh"
#include "archsim/program.hh"
#include "common/units.hh"
#include "energy/model.hh"
#include "energy/ops.hh"

namespace csprint {

class WorkerGang;

/** Which scheduler loop Machine::run() executes. */
enum class MachineLoop : unsigned char
{
    EventDriven,  ///< skip-ahead scheduler with batched op streams
    Reference,    ///< retained cycle-by-cycle loop (parity baseline)
};

/** Machine configuration (paper defaults). */
struct MachineConfig
{
    /** Upper bound on num_cores (directory pointer width, sanity). */
    static constexpr int kMaxCores = 4096;

    int num_cores = 16;      ///< cores physically present and active
    int num_threads = 16;    ///< software threads executing the program
    Hertz nominal_clock = 1e9;
    double freq_mult = 1.0;  ///< DVFS multiplier (voltage tracks it)

    std::size_t l1_bytes = 32 * 1024;
    int l1_assoc = 8;
    std::size_t line_bytes = 64;

    L2Config l2;
    MemoryConfig memory;

    Cycles pause_sleep_cycles = 1000;   ///< PAUSE sleep duration
    Cycles context_switch_cycles = 2000;
    Cycles thread_quantum = 100000;     ///< multiplexing quantum
    Cycles task_dequeue_cycles = 40;    ///< dynamic-dequeue critical path
    Cycles migration_cycles = 30000;    ///< consolidation cost on core 0
    int spin_tries_before_pause = 16;   ///< lock spin before PAUSE

    MachineLoop loop = MachineLoop::EventDriven;

    /**
     * Host threads for the event-driven loop's dispatch work: stride
     * probes are extended and sample-boundary commits replayed on a
     * fork/join gang, partitioned by core id. Results are bit-identical
     * for every value (see PERF.md, "Many-core machine"): the horizon
     * scan's (cycle, core) outcome is canonical regardless of probe
     * depth, and commit effects are per-core state plus integer energy
     * tallies that merge order-independently. 1 = fully serial
     * (default); ignored by the reference loop and in single-active-
     * core mode.
     */
    int dispatch_threads = 1;

    /**
     * Optional externally owned gang for the dispatch work, reused
     * across machines (e.g. one per ExperimentRunner worker thread).
     * When null and dispatch_threads > 1 the machine lazily spawns a
     * private gang. The gang must not be forked concurrently by two
     * machines.
     */
    WorkerGang *dispatch_gang = nullptr;

    InstructionEnergyModel energy;

    /** Sixteen-core sprint chip of the paper's evaluation. */
    static MachineConfig paper16(int threads = 16);
};

/** Aggregate machine statistics. */
struct MachineStats
{
    Cycles cycles = 0;          ///< core-clock cycles elapsed
    Seconds seconds = 0.0;      ///< wall-clock time elapsed
    std::uint64_t ops_retired = 0;
    std::array<std::uint64_t, kNumOpKinds> ops_by_kind{};
    std::uint64_t l1_hits = 0;     ///< mirror of the per-L1 counters
    std::uint64_t l1_misses = 0;   ///< (refreshed at sample boundaries)
    std::uint64_t idle_cycles = 0;   ///< stall/sleep/idle core-cycles
    std::uint64_t sleep_cycles = 0;  ///< PAUSE-sleep subset
    std::uint64_t barrier_arrivals = 0;  ///< threads reaching a barrier
    Joules dynamic_energy = 0.0;
};

/**
 * Executes one ParallelProgram to completion.
 */
class Machine
{
  public:
    Machine(const MachineConfig &cfg, const ParallelProgram &program);
    ~Machine();

    /**
     * Observer invoked every sampling quantum with the wall-clock
     * span and the dynamic energy dissipated within it; may call the
     * control methods below.
     */
    using SampleHook =
        std::function<void(Machine &, Seconds dt, Joules energy)>;

    /** Install the per-quantum observer. */
    void setSampleHook(SampleHook hook, Cycles quantum = 1000);

    /** Run until the program completes (or abort()/suspend() fires). */
    void run();

    /**
     * Preemption (Scenario engine): request, from inside the sample
     * hook, that run() return at the current sample boundary instead
     * of continuing. The machine object itself is the checkpoint —
     * per-core progress, op-stream cursors, and L1/L2/directory
     * contents stay live — and at a sample boundary every deferred
     * stride run is committed and every energy tally priced, so
     * resume() continues bit-identically to an uninterrupted run.
     * A suspended machine is also a valid warmStartFrom() source (an
     * aborted task's caches can seed its re-run).
     */
    void suspend() { suspend_pending = true; }

    /** True when the last run() returned because of suspend(). */
    bool suspended() const { return was_suspended; }

    /**
     * Continue a suspended run (bit-identical to never pausing).
     * The sample hook installed for the interrupted run may have
     * captured state that died with it (pumpTaskSlice clears the
     * hook on suspension for exactly that reason) — re-install the
     * hook before resuming, or resume through pumpTaskSlice, which
     * always does.
     */
    void resume();

    /**
     * Warm re-activation (Scenario engine): adopt the L1 and L2/
     * directory contents of @p prev, a machine that finished an
     * earlier task on the same cache geometry, instead of starting
     * cold. Cores beyond this machine's width are dropped from the
     * adopted directory (their lines recalled into the L2) so the
     * directory exactly matches the adopted L1 set; cores this
     * machine has beyond @p prev's width simply start with empty
     * L1s. Event counters and energy accounting start fresh — only
     * contents and recency carry over. Must be called before run();
     * @p prev is left in a drained state and must not be run again.
     */
    void warmStartFrom(Machine &prev);

    /** True once every phase has finished. */
    bool finished() const;

    /** Stop at the end of the current cycle (governor emergency). */
    void abort() { aborted = true; }

    // --- Control surface used by the sprint runtime (Section 7) ---

    /** Migrate every thread to core 0 and power down other cores. */
    void consolidateToSingleCore();

    /** Hardware frequency throttle (voltage tracks frequency). */
    void setFrequencyMult(double mult);

    /** Swap the energy model (DVFS boost entry/exit re-prices ops). */
    void setEnergyModel(const InstructionEnergyModel &model);

    /** Number of currently active cores. */
    int activeCores() const { return active_cores; }

    /** Current frequency multiplier. */
    double frequencyMult() const { return freq_mult; }

    // --- Introspection ---

    const MachineStats &stats() const { return totals; }
    const L2Stats &l2Stats() const { return l2->stats(); }
    const MemoryStats &memoryStats() const { return memory->stats(); }
    const MachineConfig &config() const { return cfg; }

    /**
     * The machine's DRAM model; test hook for inspecting channel
     * occupancy around warmStartFrom's adoptChannelState carry.
     */
    const MemorySystem &memorySystem() const { return *memory; }

    /** Wall-clock time simulated so far. */
    Seconds simTime() const;

  private:
    friend struct CheckpointIO;

    /** Per-thread op window refilled in bulk from the task stream. */
    static constexpr std::size_t kOpBufferCap = 1024;

    /** Sanity bound on lock ids (locks are resized on demand). */
    static constexpr std::uint64_t kMaxLockId = 1 << 20;

    /** "No pending wake-up" sentinel for next-event times. */
    static constexpr Cycles kNever = ~Cycles(0);

    struct Thread
    {
        std::size_t id = 0;
        std::unique_ptr<OpStream> stream;  ///< current task
        bool at_barrier = false;
        Cycles sleep_until = 0;
        int spin_failures = 0;
        // Static-partition bookkeeping for the current phase.
        std::size_t next_task = 0;
        std::size_t task_end = 0;
        // Task index the current stream was materialized from
        // (meaningful while stream != nullptr); lets a checkpoint
        // recreate the stream via the phase's make_task factory.
        std::size_t current_task = 0;
        // Bulk-fetched op window (ops[buf_pos, buf_len) are pending).
        std::vector<MicroOp> buf;
        std::size_t buf_pos = 0;
        std::size_t buf_len = 0;
    };

    struct Core
    {
        int id = 0;
        bool active = true;
        std::vector<std::size_t> run_queue;
        std::size_t rr = 0;           ///< round-robin cursor
        int current = -1;             ///< running thread (-1: none)
        Cycles busy_until = 0;
        Cycles quantum_end = 0;
        // Lazy idle accounting: while idle_repeat is set, the
        // reference loop would have idle-ticked this core on every
        // cycle in [idle_from, now); the gap is charged in one piece
        // when the core is next processed (or settled at a sample
        // boundary / end of run).
        bool idle_repeat = false;
        Cycles idle_from = 0;
        // Cached stride probe: the next probe_local ops of the
        // current thread's buffer are verified local (one-cycle, own
        // L1 only); probe_blocked marks the op after them as a
        // verified stride blocker (global op or buffer end). Cleared
        // whenever this core ticks or its L1 is externally mutated.
        // probe_counts aggregates the probed ops per kind and
        // probe_mem queues each probed memory op's (set << 4 | way),
        // so a full-run commit applies counts wholesale and replays
        // hits from the packed list without re-walking the ops.
        std::uint32_t probe_local = 0;
        bool probe_blocked = false;
        std::array<std::uint32_t, kNumOpKinds> probe_counts{};
        std::vector<std::uint32_t> probe_mem;
        std::uint32_t probe_mem_pos = 0;
    };

    struct LockState
    {
        int holder = -1;
    };

    /**
     * Integer event counts accumulated since the last energy flush;
     * priced against the (possibly swapped) energy model at sample
     * boundaries and at the end of the run, in a fixed order, so both
     * scheduler loops produce bit-identical dynamic energy.
     */
    struct EnergyTally
    {
        std::array<std::uint64_t, kNumOpKinds> ops{};
        std::uint64_t idle_ticks = 0;
        std::uint64_t l2_accesses = 0;
        std::uint64_t dram_accesses = 0;
    };

    void enterPhase(std::size_t index);
    bool acquireNextTask(Thread &thread, Cycles now);
    bool threadRunnable(const Thread &thread, Cycles now) const;
    bool refillOps(Thread &thread);
    void tickCore(Core &core, Cycles now);
    Cycles tryBatch(Core &core, Thread &thread, Cycles limit,
                    bool allow_mem);
    Cycles batchLimit(const Core &core, Cycles now) const;
    bool streamCapable(const Core &core, Cycles now) const;
    void probeLocalRun(Core &core, const Thread &thread, Cycles cap);
    void resetProbe(Core &core);
    void commitRun(Core &core, Cycles from, Cycles k)
    {
        commitRunInto(core, from, k, tally);
    }
    void commitRunInto(Core &core, Cycles from, Cycles k,
                       EnergyTally &et);
    void precommitL1Targets(std::uint64_t line, bool write,
                            int requester, Cycles now);
    Cycles coreWake(const Core &core, Cycles now) const;
    void settleIdle(Core &core, Cycles upto);
    void executeOp(Core &core, Thread &thread, const MicroOp &op,
                   Cycles now);
    Cycles memoryAccess(Core &core, bool write, std::uint64_t addr,
                        Cycles now);
    void maybeAdvanceBarrier();
    void chargeOp(OpKind kind) { ++tally.ops[opKindIndex(kind)]; }
    void chargeIdle(Cycles n)
    {
        totals.idle_cycles += n;
        tally.idle_ticks += n;
    }
    void flushEnergy();
    void syncCacheTotals();
    void fireSampleHook();
    void resetNextEvents();
    void runEventLoop();
    void runReference();
    void finishRun();
    WorkerGang *dispatchGang();
    void prewarmProbes(WorkerGang &gang);
    void parallelBoundaryCommit(WorkerGang &gang, Cycles horizon);
    void mergeTally(EnergyTally &from);

    MachineConfig cfg;
    const ParallelProgram &program;

    std::unique_ptr<MemorySystem> memory;
    std::unique_ptr<SharedL2> l2;
    std::vector<Cache> l1s;  ///< indexed by core id
    std::vector<Core> cores;
    std::vector<Thread> threads;
    std::vector<LockState> locks;

    // Scratch core sets for the directory exchange (sized once for
    // num_cores so the hot path never allocates).
    CoreSet peek_targets;
    CoreSet l1_mutated;

    // Parallel dispatch (see MachineConfig::dispatch_threads): the
    // lazily spawned private gang, per-lane energy scratch tallies,
    // and the per-iteration list of cores whose probes the horizon
    // scan could extend.
    std::unique_ptr<WorkerGang> own_gang;
    std::vector<EnergyTally> lane_tallies;
    std::vector<std::uint32_t> probe_need;

    std::size_t phase_idx = 0;
    std::size_t serial_next_task = 0;   ///< serial-phase task cursor
    std::size_t dynamic_next_task = 0;  ///< dynamic-phase shared counter
    Cycles dequeue_free_at = 0;         ///< dynamic-dequeue lock horizon
    std::size_t barrier_count = 0;
    int active_cores = 0;
    bool mem_batch_ok = false;  ///< memory hits batchable (1 active core)
    bool events_dirty = false;  ///< a hook rewired cores mid-run
    unsigned line_shift = 6;            ///< log2(cfg.line_bytes)

    /**
     * Per-core next-event time (kNever for inactive cores), kept as a
     * flat array so the event loop's due/minimum scans touch two cache
     * lines instead of every Core struct.
     */
    std::vector<Cycles> next_event;

    /**
     * Flat mirrors for the dispatch scan's fast path. reach[c] =
     * next_event[c] + the core's cached verified-local run (commits
     * advance both ends equally, so it is invariant under commits and
     * refreshed only by probes, ticks, and resets); reach[c] >
     * next_event[c] implies the core is still stream-capable, because
     * every state change that could end streaming goes through a tick
     * or a reset, which collapse reach back to next_event. qend[c] is
     * the core's preemption point (kNever when not multiplexing).
     */
    std::vector<Cycles> reach;
    std::vector<Cycles> qend;
    void refreshScanCache(std::size_t c)
    {
        const Core &core = cores[c];
        reach[c] = next_event[c] + core.probe_local;
        qend[c] = core.run_queue.size() > 1 ? core.quantum_end : kNever;
    }

    Cycles cycle = 0;
    double freq_mult = 1.0;
    Seconds time_base = 0.0;   ///< wall time folded at freq changes
    Cycles cycle_base = 0;

    SampleHook hook;
    Cycles sample_quantum = 1000;
    Cycles next_sample_at = kNever;  ///< next boundary (kNever: no hook)
    Joules energy_at_last_sample = 0.0;

    MachineStats totals;
    EnergyTally tally;
    bool aborted = false;
    bool suspend_pending = false;  ///< suspend() called this run
    bool was_suspended = false;    ///< last run() exited via suspend()
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_MACHINE_HH
