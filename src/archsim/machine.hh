/**
 * @file
 * The many-core machine: in-order cores (CPI of one plus cache-miss
 * penalties), private L1s, a shared directory-coherent L2, a
 * dual-channel memory system, and the threading runtime that executes
 * a ParallelProgram (paper Section 8.1).
 *
 * Threads map onto active cores; when there are more threads than
 * active cores (the post-sprint single-core mode of Section 7) each
 * core round-robin multiplexes its threads with a context-switch cost.
 * A PAUSE op puts the executing core to sleep for ~1000 cycles at 10%
 * of active power. An external controller (the sprint governor) may
 * observe energy every sampling quantum and react by consolidating all
 * threads onto core 0 or by throttling frequency.
 */

#ifndef CSPRINT_ARCHSIM_MACHINE_HH
#define CSPRINT_ARCHSIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "archsim/cache.hh"
#include "archsim/l2.hh"
#include "archsim/memory.hh"
#include "archsim/program.hh"
#include "common/units.hh"
#include "energy/model.hh"
#include "energy/ops.hh"

namespace csprint {

/** Machine configuration (paper defaults). */
struct MachineConfig
{
    int num_cores = 16;      ///< cores physically present and active
    int num_threads = 16;    ///< software threads executing the program
    Hertz nominal_clock = 1e9;
    double freq_mult = 1.0;  ///< DVFS multiplier (voltage tracks it)

    std::size_t l1_bytes = 32 * 1024;
    int l1_assoc = 8;
    std::size_t line_bytes = 64;

    L2Config l2;
    MemoryConfig memory;

    Cycles pause_sleep_cycles = 1000;   ///< PAUSE sleep duration
    Cycles context_switch_cycles = 2000;
    Cycles thread_quantum = 100000;     ///< multiplexing quantum
    Cycles task_dequeue_cycles = 40;    ///< dynamic-dequeue critical path
    Cycles migration_cycles = 30000;    ///< consolidation cost on core 0
    int spin_tries_before_pause = 16;   ///< lock spin before PAUSE

    InstructionEnergyModel energy;

    /** Sixteen-core sprint chip of the paper's evaluation. */
    static MachineConfig paper16(int threads = 16);
};

/** Aggregate machine statistics. */
struct MachineStats
{
    Cycles cycles = 0;          ///< core-clock cycles elapsed
    Seconds seconds = 0.0;      ///< wall-clock time elapsed
    std::uint64_t ops_retired = 0;
    std::array<std::uint64_t, kNumOpKinds> ops_by_kind{};
    std::uint64_t l1_hits = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t idle_cycles = 0;   ///< stall/sleep/idle core-cycles
    std::uint64_t sleep_cycles = 0;  ///< PAUSE/barrier sleep subset
    Joules dynamic_energy = 0.0;
};

/**
 * Executes one ParallelProgram to completion.
 */
class Machine
{
  public:
    Machine(const MachineConfig &cfg, const ParallelProgram &program);
    ~Machine();

    /**
     * Observer invoked every sampling quantum with the wall-clock
     * span and the dynamic energy dissipated within it; may call the
     * control methods below.
     */
    using SampleHook =
        std::function<void(Machine &, Seconds dt, Joules energy)>;

    /** Install the per-quantum observer. */
    void setSampleHook(SampleHook hook, Cycles quantum = 1000);

    /** Run until the program completes (or abort() is called). */
    void run();

    /** True once every phase has finished. */
    bool finished() const;

    /** Stop at the end of the current cycle (governor emergency). */
    void abort() { aborted = true; }

    // --- Control surface used by the sprint runtime (Section 7) ---

    /** Migrate every thread to core 0 and power down other cores. */
    void consolidateToSingleCore();

    /** Hardware frequency throttle (voltage tracks frequency). */
    void setFrequencyMult(double mult);

    /** Swap the energy model (DVFS boost entry/exit re-prices ops). */
    void setEnergyModel(const InstructionEnergyModel &model)
    {
        cfg.energy = model;
    }

    /** Number of currently active cores. */
    int activeCores() const;

    /** Current frequency multiplier. */
    double frequencyMult() const { return freq_mult; }

    // --- Introspection ---

    const MachineStats &stats() const { return totals; }
    const L2Stats &l2Stats() const { return l2->stats(); }
    const MemoryStats &memoryStats() const { return memory->stats(); }
    const MachineConfig &config() const { return cfg; }

    /** Wall-clock time simulated so far. */
    Seconds simTime() const;

  private:
    struct Thread
    {
        std::size_t id = 0;
        std::unique_ptr<OpStream> stream;  ///< current task
        bool at_barrier = false;
        bool waiting_lock = false;
        Cycles sleep_until = 0;
        int spin_failures = 0;
        // Static-partition bookkeeping for the current phase.
        std::size_t next_task = 0;
        std::size_t task_end = 0;
        MicroOp pending{};
        bool has_pending = false;
    };

    struct Core
    {
        int id = 0;
        bool active = true;
        std::vector<std::size_t> run_queue;
        std::size_t rr = 0;           ///< round-robin cursor
        int current = -1;             ///< running thread (-1: none)
        Cycles busy_until = 0;
        Cycles quantum_end = 0;
    };

    struct LockState
    {
        int holder = -1;
        std::vector<std::size_t> waiters;
    };

    void enterPhase(std::size_t index);
    bool acquireNextTask(Thread &thread, Cycles now);
    bool threadRunnable(const Thread &thread, Cycles now) const;
    void tickCore(Core &core, Cycles now);
    void executeOp(Core &core, Thread &thread, const MicroOp &op,
                   Cycles now);
    Cycles memoryAccess(Core &core, bool write, std::uint64_t addr,
                        Cycles now);
    void maybeAdvanceBarrier();
    void chargeOp(OpKind kind);

    MachineConfig cfg;
    const ParallelProgram &program;

    std::unique_ptr<MemorySystem> memory;
    std::unique_ptr<SharedL2> l2;
    std::vector<Cache> l1s;  ///< indexed by core id
    std::vector<Core> cores;
    std::vector<Thread> threads;
    std::vector<LockState> locks;

    std::size_t phase_idx = 0;
    std::size_t serial_next_task = 0;   ///< serial-phase task cursor
    std::size_t dynamic_next_task = 0;  ///< dynamic-phase shared counter
    Cycles dequeue_free_at = 0;         ///< dynamic-dequeue lock horizon
    std::size_t barrier_count = 0;

    Cycles cycle = 0;
    double freq_mult = 1.0;
    Seconds time_base = 0.0;   ///< wall time folded at freq changes
    Cycles cycle_base = 0;

    SampleHook hook;
    Cycles sample_quantum = 1000;
    Joules energy_at_last_sample = 0.0;

    MachineStats totals;
    bool aborted = false;
};

} // namespace csprint

#endif // CSPRINT_ARCHSIM_MACHINE_HH
