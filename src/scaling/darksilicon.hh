/**
 * @file
 * Technology-scaling projections behind Figure 1 of the paper: power
 * density and dark-silicon fraction for a fixed-area chip across process
 * nodes 45 nm ... 6 nm, under three voltage/density scaling scenarios
 * (ITRS, Borkar, and ITRS density with Borkar's pessimistic Vdd scaling).
 *
 * The model is intentionally small: per generation, transistor density
 * rises faster than per-device capacitance falls, and supply voltage
 * barely scales, so switching power density density*cap*f*Vdd^2 grows.
 * The dark-silicon fraction is the share of the chip that must be kept
 * off to hold the 45 nm power envelope.
 */

#ifndef CSPRINT_SCALING_DARKSILICON_HH
#define CSPRINT_SCALING_DARKSILICON_HH

#include <string>
#include <vector>

namespace csprint {

/** Scaling-assumption scenario for the Figure 1 series. */
enum class ScalingScenario
{
    Itrs,          ///< ITRS roadmap density and Vdd scaling
    Borkar,        ///< Borkar's density/capacitance/Vdd assumptions
    ItrsBorkarVdd, ///< ITRS density with Borkar's pessimistic Vdd
};

/** Human-readable name of a scenario (matches the Fig. 1 legend). */
std::string scalingScenarioName(ScalingScenario scenario);

/** Projection for one process node. */
struct NodeProjection
{
    int node_nm;             ///< feature size [nm]
    double density;          ///< transistor density relative to 45 nm
    double capacitance;      ///< per-device capacitance relative to 45 nm
    double vdd;              ///< supply voltage relative to 45 nm
    double power_density;    ///< power density relative to 45 nm
    double dark_fraction;    ///< fraction of chip that must stay dark [0,1)
};

/** Per-generation scaling factors for one scenario. */
struct ScalingAssumptions
{
    double density_per_gen;      ///< density multiplier per generation
    double capacitance_per_gen;  ///< capacitance multiplier per generation
    double vdd_per_gen;          ///< Vdd multiplier per generation
    double frequency_per_gen;    ///< clock multiplier per generation
};

/** The assumptions this library uses for @p scenario. */
ScalingAssumptions scalingAssumptions(ScalingScenario scenario);

/** The process nodes plotted in Figure 1: 45, 32, 22, 16, 11, 8, 6 nm. */
const std::vector<int> &figure1Nodes();

/**
 * Project power density and dark-silicon fraction for a fixed-area,
 * fixed-power-budget chip across @p nodes under @p scenario.
 *
 * The first node is the reference: density = power density = 1 and
 * dark fraction = 0 by construction.
 */
std::vector<NodeProjection>
projectDarkSilicon(ScalingScenario scenario,
                   const std::vector<int> &nodes = figure1Nodes());

} // namespace csprint

#endif // CSPRINT_SCALING_DARKSILICON_HH
