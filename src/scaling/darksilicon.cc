#include "scaling/darksilicon.hh"

#include <cmath>

#include "common/logging.hh"

namespace csprint {

std::string
scalingScenarioName(ScalingScenario scenario)
{
    switch (scenario) {
      case ScalingScenario::Itrs:
        return "ITRS";
      case ScalingScenario::Borkar:
        return "Borkar";
      case ScalingScenario::ItrsBorkarVdd:
        return "ITRS + Borkar Vdd scaling";
    }
    SPRINT_PANIC("unknown scaling scenario");
}

ScalingAssumptions
scalingAssumptions(ScalingScenario scenario)
{
    // Borkar (CACM'11): ~75% density increase vs. 25% capacitance
    // reduction per generation, with nearly flat voltage scaling.
    // ITRS (2010 update): ideal 2x density, slightly better capacitance
    // scaling, and modest but nonzero Vdd scaling per node.
    switch (scenario) {
      case ScalingScenario::Itrs:
        return {2.00, 0.75, 0.950, 1.00};
      case ScalingScenario::Borkar:
        return {1.75, 0.75, 0.985, 1.00};
      case ScalingScenario::ItrsBorkarVdd:
        return {2.00, 0.75, 0.985, 1.00};
    }
    SPRINT_PANIC("unknown scaling scenario");
}

const std::vector<int> &
figure1Nodes()
{
    static const std::vector<int> nodes = {45, 32, 22, 16, 11, 8, 6};
    return nodes;
}

std::vector<NodeProjection>
projectDarkSilicon(ScalingScenario scenario, const std::vector<int> &nodes)
{
    SPRINT_ASSERT(!nodes.empty(), "need at least one node");
    const ScalingAssumptions a = scalingAssumptions(scenario);

    std::vector<NodeProjection> out;
    out.reserve(nodes.size());

    double density = 1.0;
    double capacitance = 1.0;
    double vdd = 1.0;
    double frequency = 1.0;
    for (std::size_t gen = 0; gen < nodes.size(); ++gen) {
        if (gen > 0) {
            density *= a.density_per_gen;
            capacitance *= a.capacitance_per_gen;
            vdd *= a.vdd_per_gen;
            frequency *= a.frequency_per_gen;
        }
        NodeProjection p;
        p.node_nm = nodes[gen];
        p.density = density;
        p.capacitance = capacitance;
        p.vdd = vdd;
        // Switching power for the full chip if every transistor were
        // active: all devices * C * f * V^2, relative to the 45 nm chip.
        p.power_density = density * capacitance * frequency * vdd * vdd;
        // Fraction of devices that must be off to hold the 45 nm power
        // envelope on the same die area.
        p.dark_fraction =
            p.power_density <= 1.0 ? 0.0 : 1.0 - 1.0 / p.power_density;
        out.push_back(p);
    }
    return out;
}

} // namespace csprint
