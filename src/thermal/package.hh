/**
 * @file
 * The smart-phone-like package thermal model of paper Figure 3, with
 * and without a phase-change material, plus the derived quantities the
 * sprint governor needs (sustainable TDP, sprint energy budget, maximum
 * sprint power, cooldown estimates).
 *
 * Topology (Figure 3d): the die junction connects through the package
 * resistance (marked 2 in the paper figure) to the PCM block, which in
 * turn reaches the ambient through the rest of the package and the
 * case's passive convection (marked 3). The amount of computation
 * possible during a sprint is primarily the PCM's thermal capacity
 * (marked 1); the maximum sprint power is set by the resistance into
 * the PCM; the sustainable power is set by the total resistance.
 */

#ifndef CSPRINT_THERMAL_PACKAGE_HH
#define CSPRINT_THERMAL_PACKAGE_HH

#include "common/units.hh"
#include "thermal/network.hh"

namespace csprint {

/** Parameters of the mobile package model (paper-calibrated defaults). */
struct MobilePackageParams
{
    Celsius ambient = 25.0;         ///< ambient air temperature
    Celsius t_junction_max = 70.0;  ///< max safe junction temperature
    JoulesPerKelvin c_junction = 0.08; ///< die + spreader capacity

    // PCM block (0 mass disables the PCM node entirely).
    Grams pcm_mass = 0.150;         ///< PCM mass [g]; paper uses 150 mg
    double pcm_latent_per_gram = 100.0;  ///< latent heat [J/g]
    double pcm_sensible_per_gram = 0.4;  ///< effective sensible cap [J/gK]
    Celsius pcm_melt_temp = 60.0;   ///< melting point [degrees C]

    KelvinPerWatt r_junction_to_pcm = 0.5;  ///< TIM + spreader (mark 2)
    KelvinPerWatt r_pcm_to_case = 30.0;     ///< package internals (mark 3a)
    KelvinPerWatt r_case_to_ambient = 3.5;  ///< passive convection (3b)
    JoulesPerKelvin c_case = 15.0;  ///< case + board capacity

    /** Full-provisioned phone package (150 mg PCM), paper Section 4. */
    static MobilePackageParams phonePcm(Grams pcm_mass = 0.150);

    /** Conventional package with no PCM (Figure 3b). */
    static MobilePackageParams phoneNoPcm();
};

/**
 * A ThermalNetwork instantiated from MobilePackageParams with named
 * handles for the junction/PCM/case nodes and the derived quantities
 * of Section 4.
 */
class MobilePackageModel
{
  public:
    explicit MobilePackageModel(const MobilePackageParams &params);

    /** The underlying network (step it, inject power, ...). */
    ThermalNetwork &network() { return net; }
    const ThermalNetwork &network() const { return net; }

    /** Parameters this model was built from. */
    const MobilePackageParams &params() const { return p; }

    /** Node carrying the injected die power. */
    ThermalNodeId junction() const { return junction_id; }

    /** PCM node handle; only valid when hasPcm(). */
    ThermalNodeId pcm() const;

    /** Case node handle. */
    ThermalNodeId caseNode() const { return case_id; }

    /** True when the package includes a PCM block. */
    bool hasPcm() const { return has_pcm; }

    /** Inject @p power at the junction. */
    void setDiePower(Watts power) { net.setPower(junction_id, power); }

    /** Advance time. */
    void step(Seconds dt) { net.step(dt); }

    /**
     * Advance time through the quiescent super-stepper (idle / rest
     * gaps where the die power is constant — typically zero). Orders
     * of magnitude fewer substeps than step() over long gaps; the
     * endpoint stays within ~@p tol of the step() trajectory (see
     * ThermalNetwork::advanceQuiescent).
     */
    void stepQuiescent(Seconds dt, Celsius tol = 0.01)
    {
        net.advanceQuiescent(dt, tol);
    }

    /** Snapshot the package thermal state (temps, melt, powers). */
    ThermalNetworkState saveState() const { return net.saveState(); }

    /** Restore a snapshot taken from an identically-built package. */
    void restoreState(const ThermalNetworkState &state)
    {
        net.restoreState(state);
    }

    /** Junction temperature. */
    Celsius junctionTemp() const { return net.temperature(junction_id); }

    /** PCM melt fraction (0 when no PCM). */
    double meltFraction() const;

    /** True when the junction is at or above its safe limit. */
    bool overTempLimit() const
    {
        return junctionTemp() >= p.t_junction_max;
    }

    /**
     * Steady-state power that keeps the junction at @p t_limit
     * (default: just below the PCM melt point, per Section 4.4, or the
     * junction limit when there is no PCM).
     */
    Watts sustainableTdp() const;

    /**
     * Maximum sprint power such that, with the PCM pinned at its melt
     * temperature, the junction stays below t_junction_max; the
     * resistance into the PCM sets this bound (Figure 3, mark 2).
     * Without a PCM the bound degenerates to sustainableTdp().
     */
    Watts maxSprintPower() const;

    /**
     * First-order sprint energy budget from the current state: the
     * sensible heat to bring junction+PCM to the melt point plus the
     * remaining latent heat plus the post-melt sensible margin up to
     * t_junction_max. This is the "thermal budget" the activity-based
     * governor of Section 7 tracks.
     */
    Joules sprintEnergyBudget() const;

    /**
     * Paper Section 4.5 estimate of the cooldown duration: sprint
     * duration times the ratio of sprint power to nominal TDP.
     */
    Seconds approxCooldown(Seconds sprint_duration,
                           Watts sprint_power) const;

    /** Reset every node to ambient with the PCM frozen. */
    void reset() { net.reset(); }

  private:
    MobilePackageParams p;
    ThermalNetwork net;
    ThermalNodeId junction_id = 0;
    ThermalNodeId pcm_id = 0;
    ThermalNodeId case_id = 0;
    bool has_pcm = false;
};

} // namespace csprint

#endif // CSPRINT_THERMAL_PACKAGE_HH
