#include "thermal/package.hh"

#include <algorithm>

#include "common/logging.hh"

namespace csprint {

MobilePackageParams
MobilePackageParams::phonePcm(Grams pcm_mass)
{
    MobilePackageParams p;
    p.pcm_mass = pcm_mass;
    return p;
}

MobilePackageParams
MobilePackageParams::phoneNoPcm()
{
    MobilePackageParams p;
    p.pcm_mass = 0.0;
    return p;
}

MobilePackageModel::MobilePackageModel(const MobilePackageParams &params)
    : p(params), net(params.ambient)
{
    junction_id = net.addNode("junction", p.c_junction, p.ambient);
    case_id = net.addNode("case", p.c_case, p.ambient);
    has_pcm = p.pcm_mass > 0.0;
    if (has_pcm) {
        PcmProperties pcm;
        pcm.latent_heat = p.pcm_mass * p.pcm_latent_per_gram;
        pcm.melt_temp = p.pcm_melt_temp;
        const JoulesPerKelvin sensible =
            std::max(1e-6, p.pcm_mass * p.pcm_sensible_per_gram);
        pcm_id = net.addPcmNode("pcm", sensible, p.ambient, pcm);
        net.addResistor(junction_id, pcm_id, p.r_junction_to_pcm);
        net.addResistor(pcm_id, case_id, p.r_pcm_to_case);
    } else {
        net.addResistor(junction_id, case_id,
                        p.r_junction_to_pcm + p.r_pcm_to_case);
    }
    net.addResistorToAmbient(case_id, p.r_case_to_ambient);
}

ThermalNodeId
MobilePackageModel::pcm() const
{
    SPRINT_ASSERT(has_pcm, "package has no PCM node");
    return pcm_id;
}

double
MobilePackageModel::meltFraction() const
{
    return has_pcm ? net.meltFraction(pcm_id) : 0.0;
}

Watts
MobilePackageModel::sustainableTdp() const
{
    const KelvinPerWatt r_total =
        p.r_junction_to_pcm + p.r_pcm_to_case + p.r_case_to_ambient;
    // With a PCM, the sustained budget must keep the junction just
    // below the melt point so the PCM stays frozen between sprints
    // (Section 4.4); without one — or with a sensible-only metal
    // storage node whose "melt point" sits above the junction limit —
    // the junction limit governs.
    const Celsius limit =
        has_pcm ? std::min(p.pcm_melt_temp, p.t_junction_max)
                : p.t_junction_max;
    return (limit - p.ambient) / r_total * 0.97;
}

Watts
MobilePackageModel::maxSprintPower() const
{
    if (!has_pcm)
        return sustainableTdp();
    if (p.pcm_melt_temp < p.t_junction_max) {
        // Latent storage pins the PCM at the melt point; the
        // resistance into it bounds the sprint (Figure 3, mark 2).
        return (p.t_junction_max - p.pcm_melt_temp) /
               p.r_junction_to_pcm;
    }
    // Sensible-only storage (a metal slug): the bound is transient;
    // quote the initial headroom with the storage at ambient.
    return (p.t_junction_max - p.ambient) / p.r_junction_to_pcm;
}

Joules
MobilePackageModel::sprintEnergyBudget() const
{
    const Celsius t_j = net.temperature(junction_id);
    Joules budget = 0.0;
    if (has_pcm) {
        const Celsius t_p = net.temperature(pcm_id);
        const double frozen = 1.0 - net.meltFraction(pcm_id);
        // A melt point above the junction limit never engages: only
        // sensible heat up to the junction limit counts (the metal
        // slug of Section 4.1).
        const Celsius ceiling =
            std::min(p.pcm_melt_temp, p.t_junction_max);
        budget += std::max(0.0, (ceiling - t_p)) * p.pcm_mass *
                  p.pcm_sensible_per_gram;
        if (p.pcm_melt_temp <= p.t_junction_max)
            budget += frozen * p.pcm_mass * p.pcm_latent_per_gram;
        budget += std::max(0.0, (ceiling - t_j)) * p.c_junction;
    } else {
        budget += std::max(0.0, (p.t_junction_max - t_j)) * p.c_junction;
    }
    return budget;
}

Seconds
MobilePackageModel::approxCooldown(Seconds sprint_duration,
                                   Watts sprint_power) const
{
    const Watts tdp = sustainableTdp();
    SPRINT_ASSERT(tdp > 0.0, "non-positive sustainable TDP");
    return sprint_duration * sprint_power / tdp;
}

} // namespace csprint
