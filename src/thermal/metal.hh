/**
 * @file
 * Solid-metal heat-storage alternative of paper Section 4.1: a block
 * of copper or aluminum close to the die stores sprint heat as
 * sensible (not latent) heat. The paper's example: absorbing 16 J in
 * a 7.2 mm slab of copper (or 10.3 mm of aluminum) over a 64 mm^2 die
 * raises its temperature by 10 C. The two drawbacks the paper calls
 * out — pre-heated metal after sustained operation erodes headroom,
 * and the slab's internal resistance limits absorption rate — fall
 * out of the model and are exercised by tests and the ablation bench.
 */

#ifndef CSPRINT_THERMAL_METAL_HH
#define CSPRINT_THERMAL_METAL_HH

#include <string>

#include "common/units.hh"
#include "thermal/package.hh"

namespace csprint {

/** A candidate heat-storage metal. */
struct MetalProperties
{
    std::string name;
    double volumetric_heat_capacity;  ///< [J/(cm^3 K)]
    double thermal_conductivity;      ///< [W/(m K)]

    /** Copper: 3.45 J/cm^3 K (paper Section 4.1). */
    static MetalProperties copper();

    /** Aluminum: 2.42 J/cm^3 K (paper Section 4.1). */
    static MetalProperties aluminum();
};

/** Geometry of a metal slug sitting on the die. */
struct MetalSlugSpec
{
    MetalProperties metal = MetalProperties::copper();
    Meters thickness = 7.2e-3;   ///< slab thickness
    double die_area_mm2 = 64.0;  ///< footprint (the die area)
};

/** Heat capacity of the slug [J/K]. */
JoulesPerKelvin metalSlugCapacity(const MetalSlugSpec &spec);

/**
 * Temperature rise of the slug after absorbing @p joules.
 * The paper's example: 16 J into 7.2 mm of copper on 64 mm^2 -> 10 C.
 */
Kelvin metalSlugTemperatureRise(const MetalSlugSpec &spec, Joules joules);

/**
 * Thickness needed to absorb @p joules within @p max_rise.
 */
Meters metalThicknessFor(const MetalProperties &metal,
                         double die_area_mm2, Joules joules,
                         Kelvin max_rise);

/**
 * Internal conduction resistance of the slab (through-thickness),
 * the rate limit of paper Section 4.1's second drawback.
 */
KelvinPerWatt metalSlugInternalResistance(const MetalSlugSpec &spec);

/**
 * A phone package using a metal slug in place of the PCM block:
 * same topology as Figure 3(d) but the storage node has sensible
 * capacity only, and the junction-to-storage resistance includes the
 * slab's internal conduction resistance.
 */
MobilePackageParams metalSlugPackage(const MetalSlugSpec &spec);

} // namespace csprint

#endif // CSPRINT_THERMAL_METAL_HH
