#include "thermal/metal.hh"

#include <cmath>

#include "common/logging.hh"

namespace csprint {

MetalProperties
MetalProperties::copper()
{
    return {"copper", 3.45, 400.0};
}

MetalProperties
MetalProperties::aluminum()
{
    return {"aluminum", 2.42, 237.0};
}

JoulesPerKelvin
metalSlugCapacity(const MetalSlugSpec &spec)
{
    SPRINT_ASSERT(spec.thickness > 0.0 && spec.die_area_mm2 > 0.0,
                  "bad slug geometry");
    // Volume in cm^3: area [mm^2] * thickness [mm] / 1000.
    const double volume_cm3 =
        spec.die_area_mm2 * (spec.thickness * 1e3) / 1e3;
    return spec.metal.volumetric_heat_capacity * volume_cm3;
}

Kelvin
metalSlugTemperatureRise(const MetalSlugSpec &spec, Joules joules)
{
    return joules / metalSlugCapacity(spec);
}

Meters
metalThicknessFor(const MetalProperties &metal, double die_area_mm2,
                  Joules joules, Kelvin max_rise)
{
    SPRINT_ASSERT(max_rise > 0.0, "bad temperature rise bound");
    const double volume_cm3 =
        joules / (metal.volumetric_heat_capacity * max_rise);
    const double thickness_mm = volume_cm3 * 1e3 / die_area_mm2;
    return thickness_mm * 1e-3;
}

KelvinPerWatt
metalSlugInternalResistance(const MetalSlugSpec &spec)
{
    // Through-thickness conduction: R = L / (k * A). Use half the
    // thickness as the effective conduction length to the slab's
    // thermal centre of mass.
    const double area_m2 = spec.die_area_mm2 * 1e-6;
    return (0.5 * spec.thickness) /
           (spec.metal.thermal_conductivity * area_m2);
}

MobilePackageParams
metalSlugPackage(const MetalSlugSpec &spec)
{
    MobilePackageParams p = MobilePackageParams::phoneNoPcm();
    // Reuse the PCM node slot as a sensible-only storage node: a
    // material with zero latent heat is exactly a metal slug. The
    // melt temperature is set above t_junction_max so the latent
    // plateau can never engage.
    const JoulesPerKelvin cap = metalSlugCapacity(spec);
    p.pcm_mass = 1.0;  // bookkeeping mass of 1 g
    p.pcm_sensible_per_gram = cap;           // J/K via 1 g
    p.pcm_latent_per_gram = 1e-9;            // effectively none
    p.pcm_melt_temp = p.t_junction_max + 1000.0;
    p.r_junction_to_pcm += metalSlugInternalResistance(spec);
    return p;
}

} // namespace csprint
