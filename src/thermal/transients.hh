/**
 * @file
 * Transient thermal scenario drivers behind paper Figures 2 and 4:
 * sprint-initiation traces (temperature rise, PCM plateau, termination
 * at the junction limit) and post-sprint cooldown traces, plus the
 * conceptual sustained/sprint/augmented-sprint comparison of Figure 2.
 */

#ifndef CSPRINT_THERMAL_TRANSIENTS_HH
#define CSPRINT_THERMAL_TRANSIENTS_HH

#include "common/timeseries.hh"
#include "common/units.hh"
#include "thermal/package.hh"

namespace csprint {

/** Result of running a sprint against a package model. */
struct SprintTransient
{
    TimeSeries junction_temp;   ///< junction temperature over time
    TimeSeries melt_fraction;   ///< PCM melt fraction over time
    Seconds plateau_duration;   ///< time spent on the latent-heat plateau
    Seconds time_to_limit;      ///< time until Tj first hits the limit
                                ///< (or the full duration if never)
    bool hit_limit;             ///< whether Tj reached t_junction_max
};

/**
 * Drive @p model with @p sprint_power until the junction reaches its
 * limit or @p max_duration elapses, sampling every @p sample_dt.
 * The model is reset to ambient first. Reproduces Figure 4(a).
 */
SprintTransient
runSprintTransient(MobilePackageModel &model, Watts sprint_power,
                   Seconds max_duration, Seconds sample_dt = 1e-3);

/**
 * After a sprint, let the model cool with zero die power for
 * @p duration, sampling every @p sample_dt. Reproduces Figure 4(b).
 */
TimeSeries
runCooldownTransient(MobilePackageModel &model, Seconds duration,
                     Seconds sample_dt = 0.05);

/** One sampled trace of the Figure 2 conceptual comparison. */
struct ModeTrace
{
    TimeSeries cores_active;     ///< active core count over time
    TimeSeries cumulative_work;  ///< work completed (core-seconds)
    TimeSeries junction_temp;    ///< junction temperature
    Seconds completion_time;     ///< when the fixed work finished
};

/**
 * Figure 2: execute a fixed amount of work (@p work core-seconds) in
 * one of three modes against a fresh copy of @p params:
 *  - sustained: one core until done;
 *  - sprint: @p sprint_cores cores until the junction limit forces a
 *    fallback to one core (no PCM in the package);
 *  - augmented sprint: same but with the PCM block present.
 * Core power is @p core_power each.
 */
ModeTrace
runModeTrace(const MobilePackageParams &params, double work,
             int sprint_cores, Watts core_power, Seconds sample_dt = 5e-3);

} // namespace csprint

#endif // CSPRINT_THERMAL_TRANSIENTS_HH
