/**
 * @file
 * Shared fixtures for validating and benchmarking the thermal hot
 * path: the PCM-ladder network used by the PCM-heavy benchmarks, and
 * the phonePcm melt/freeze parity trace that compares the optimized
 * Heun integrator against the retained reference Euler. Kept in one
 * place so the microbenchmark, the BENCH_thermal.json report tool,
 * and the parity test all measure the same thing.
 */

#ifndef CSPRINT_THERMAL_VALIDATION_HH
#define CSPRINT_THERMAL_VALIDATION_HH

#include <algorithm>
#include <cmath>
#include <string>

#include "thermal/network.hh"
#include "thermal/package.hh"

namespace csprint {

/**
 * Build a ladder of @p nodes PCM nodes hanging off a driven die node,
 * each starting just below its melt point so every substep walks the
 * enthalpy curve of every node (the PCM-heavy worst case).
 */
inline void
buildPcmLadder(ThermalNetwork &net, int nodes)
{
    ThermalNodeId prev = net.addNode("die", 0.1, 25.0);
    net.setPower(prev, 4.0 * nodes);
    for (int i = 0; i < nodes; ++i) {
        const ThermalNodeId pcm = net.addPcmNode(
            "pcm" + std::to_string(i), 0.05, 59.9, {50.0, 60.0});
        net.addResistor(prev, pcm, 0.5);
        prev = pcm;
    }
    net.addResistorToAmbient(prev, 3.5);
}

/** Outcome of a melt/freeze parity trace between the two integrators. */
struct MeltFreezeParity
{
    double max_temp_dev = 0.0; ///< max |T_Heun - T_Euler| [C]
    double max_mf_dev = 0.0;   ///< max melt-fraction deviation
    double final_melt_fraction = 0.0; ///< Heun melt fraction at the end
};

/**
 * Drive two phonePcm packages — reference Euler and Heun — through a
 * 16 W sprint of @p sprint_steps ms followed by @p cooldown_steps ms
 * of cooldown refreeze, sampling the junction every 1 ms, and report
 * the worst divergence (the equal-traces acceptance check).
 */
inline MeltFreezeParity
runMeltFreezeParity(int sprint_steps, int cooldown_steps)
{
    MobilePackageModel ref(MobilePackageParams::phonePcm());
    MobilePackageModel opt(MobilePackageParams::phonePcm());
    ref.network().setIntegrator(ThermalIntegrator::ReferenceEuler);
    opt.network().setIntegrator(ThermalIntegrator::Heun);

    MeltFreezeParity out;
    const int steps[] = {sprint_steps, cooldown_steps};
    const double power[] = {16.0, 0.0};
    for (int phase = 0; phase < 2; ++phase) {
        ref.setDiePower(power[phase]);
        opt.setDiePower(power[phase]);
        for (int i = 0; i < steps[phase]; ++i) {
            ref.step(1e-3);
            opt.step(1e-3);
            out.max_temp_dev =
                std::max(out.max_temp_dev,
                         std::fabs(ref.junctionTemp() -
                                   opt.junctionTemp()));
            out.max_mf_dev =
                std::max(out.max_mf_dev,
                         std::fabs(ref.meltFraction() -
                                   opt.meltFraction()));
        }
    }
    out.final_melt_fraction = opt.meltFraction();
    return out;
}

/**
 * The canonical quiescent-idle cooldown scenario: melt the PCM at
 * @p heat_power, cut the power, and cool through refreeze to ambient
 * over @p gap in @p samples sampled chunks. One definition shared by
 * gate 2 of BENCH_scale.json (bench/scenario_scale_report.cc),
 * BM_IdleCooling (bench/microbench.cc), and the quiescent parity test
 * (tests/thermal_quiescent_test.cc), so all three measure the same
 * thing.
 */
struct QuiescentCooldownSpec
{
    Watts heat_power = 14.0;   ///< melts the scaled 150 mg PCM fully
    Seconds heat_time = 2e-3;
    Seconds gap = 1.0;         ///< long idle rest (time-scaled seconds)
    int samples = 64;          ///< sampled chunks across the gap
    Celsius tol = 0.01;        ///< quiescent-stepper local tolerance
};

/** Heat @p pkg per @p spec, then cut the die power for the cooldown. */
inline void
meltThenIdle(MobilePackageModel &pkg,
             const QuiescentCooldownSpec &spec = {})
{
    pkg.reset();
    pkg.setDiePower(spec.heat_power);
    pkg.step(spec.heat_time);
    pkg.setDiePower(0.0);
}

/** Worst per-sample divergence, quiescent path vs exact step(). */
struct QuiescentCooldownParity
{
    double max_temp_dev = 0.0; ///< max |T_exact - T_quiescent| [C]
    double max_mf_dev = 0.0;   ///< max melt-fraction deviation
    Celsius final_junction = 0.0; ///< quiescent endpoint
    double final_melt = 0.0;      ///< quiescent endpoint
};

/**
 * Run the canonical cooldown on @p params through both idle paths,
 * comparing at every sampled chunk boundary.
 */
inline QuiescentCooldownParity
runQuiescentCooldownParity(const MobilePackageParams &params,
                           const QuiescentCooldownSpec &spec = {})
{
    MobilePackageModel exact(params), fast(params);
    meltThenIdle(exact, spec);
    meltThenIdle(fast, spec);

    QuiescentCooldownParity out;
    const Seconds h = spec.gap / spec.samples;
    for (int i = 0; i < spec.samples; ++i) {
        exact.step(h);
        fast.stepQuiescent(h, spec.tol);
        out.max_temp_dev =
            std::max(out.max_temp_dev,
                     std::fabs(exact.junctionTemp() -
                               fast.junctionTemp()));
        out.max_mf_dev = std::max(out.max_mf_dev,
                                  std::fabs(exact.meltFraction() -
                                            fast.meltFraction()));
    }
    out.final_junction = fast.junctionTemp();
    out.final_melt = fast.meltFraction();
    return out;
}

} // namespace csprint

#endif // CSPRINT_THERMAL_VALIDATION_HH
