#include "thermal/network.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace csprint {

namespace {

// Accuracy-driven sub-step fractions of the explicit stability bound.
// First-order Euler needs h = 0.01 * tau to keep step-response errors
// under ~0.2% of the driving amplitude; second-order Heun reaches the
// same accuracy with ~10x longer sub-steps (global error ~ (h/tau)^2).
constexpr double kEulerStepFraction = 0.01;
constexpr double kHeunStepFraction = 0.1;
constexpr double kHeunOverEuler = kHeunStepFraction / kEulerStepFraction;

} // namespace

ThermalNetwork::ThermalNetwork(Celsius ambient) : ambient_temp(ambient) {}

ThermalNodeId
ThermalNetwork::addNode(const std::string &name, JoulesPerKelvin cap,
                        Celsius t0)
{
    SPRINT_ASSERT(cap > 0.0, "node capacity must be positive");
    temp_.push_back(t0);
    injected_.push_back(0.0);
    cap_.push_back(cap);
    sens_inv_cap_.push_back(1.0 / cap);
    melt_fraction_.push_back(0.0);
    has_pcm_.push_back(0);
    pcm_.push_back({0.0, 0.0});
    names_.push_back(name);
    topology_dirty_ = true;
    return temp_.size() - 1;
}

ThermalNodeId
ThermalNetwork::addPcmNode(const std::string &name, JoulesPerKelvin cap,
                           Celsius t0, const PcmProperties &pcm)
{
    SPRINT_ASSERT(pcm.latent_heat > 0.0, "latent heat must be positive");
    const ThermalNodeId id = addNode(name, cap, t0);
    has_pcm_[id] = 1;
    pcm_[id] = pcm;
    melt_fraction_[id] = t0 > pcm.melt_temp ? 1.0 : 0.0;
    // PCM nodes take the enthalpy walk, not the sensible fast path.
    sens_inv_cap_[id] = 0.0;
    pcm_nodes_.push_back(id);
    return id;
}

void
ThermalNetwork::addResistor(ThermalNodeId a, ThermalNodeId b,
                            KelvinPerWatt r)
{
    SPRINT_ASSERT(a < temp_.size() && b < temp_.size(),
                  "resistor endpoint out of range");
    SPRINT_ASSERT(r > 0.0, "thermal resistance must be positive");
    edges.push_back({a, b, r});
    topology_dirty_ = true;
}

void
ThermalNetwork::addResistorToAmbient(ThermalNodeId node, KelvinPerWatt r)
{
    SPRINT_ASSERT(node < temp_.size(), "resistor endpoint out of range");
    SPRINT_ASSERT(r > 0.0, "thermal resistance must be positive");
    edges.push_back({node, kAmbient, r});
    topology_dirty_ = true;
}

void
ThermalNetwork::setPower(ThermalNodeId node, Watts power)
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    injected_[node] = power;
}

Watts
ThermalNetwork::power(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return injected_[node];
}

Celsius
ThermalNetwork::temperature(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return temp_[node];
}

double
ThermalNetwork::meltFraction(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return melt_fraction_[node];
}

bool
ThermalNetwork::isPcmNode(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return has_pcm_[node] != 0;
}

const std::string &
ThermalNetwork::name(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return names_[node];
}

void
ThermalNetwork::ensureTopology() const
{
    if (!topology_dirty_)
        return;

    const std::size_t n = temp_.size();
    row_ptr_.assign(n + 1, 0);
    g_amb_.assign(n, 0.0);
    g_sum_.assign(n, 0.0);

    // Counting pass: each internal edge appears in both endpoint rows;
    // ambient edges fold into g_amb_ instead of occupying a slot.
    for (const auto &e : edges) {
        if (e.a != kAmbient && e.b != kAmbient) {
            ++row_ptr_[e.a + 1];
            ++row_ptr_[e.b + 1];
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        row_ptr_[i + 1] += row_ptr_[i];

    nbr_.assign(row_ptr_[n], 0);
    g_.assign(row_ptr_[n], 0.0);
    std::vector<std::size_t> fill(row_ptr_.begin(), row_ptr_.end() - 1);
    for (const auto &e : edges) {
        const double g = 1.0 / e.resistance;
        if (e.a != kAmbient && e.b != kAmbient) {
            nbr_[fill[e.a]] = e.b;
            g_[fill[e.a]++] = g;
            nbr_[fill[e.b]] = e.a;
            g_[fill[e.b]++] = g;
            g_sum_[e.a] += g;
            g_sum_[e.b] += g;
        } else if (e.a != kAmbient) {
            g_amb_[e.a] += g;
            g_sum_[e.a] += g;
        } else if (e.b != kAmbient) {
            g_amb_[e.b] += g;
            g_sum_[e.b] += g;
        }
    }

    // Explicit Euler on a node is stable while dt < C_i / sum_j(1/R_ij);
    // take the tightest node. (Heun shares the same real-axis bound.)
    double limit = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
        if (g_sum_[i] > 0.0)
            limit = std::min(limit, cap_[i] / g_sum_[i]);
    }
    stable_cached_ = limit;
    inv_hmax_ = std::isinf(limit)
                    ? 0.0
                    : 1.0 / (kHeunStepFraction * limit);

    p1_.assign(n, 0.0);
    p2_.assign(n, 0.0);
    t_pred_.assign(n, 0.0);
    mf_pred_.assign(n, 0.0);
    topology_dirty_ = false;
}

Seconds
ThermalNetwork::maxStableStep() const
{
    ensureTopology();
    return stable_cached_;
}

void
ThermalNetwork::applyPcmHeat(double &temp, double &melt_fraction,
                             JoulesPerKelvin cap,
                             const PcmProperties &pcm, Joules joules)
{
    // Walk the piecewise enthalpy curve: sensible heat below the melt
    // point, latent plateau at the melt point, sensible heat above.
    double remaining = joules;
    const Celsius melt = pcm.melt_temp;
    const Joules latent = pcm.latent_heat;

    // One sign of heat crosses at most three segments; the bound only
    // guards against floating-point ping-pong.
    for (int iter = 0; iter < 8 && remaining != 0.0; ++iter) {
        if (remaining > 0.0) {
            if (temp < melt) {
                const Joules to_melt_point = (melt - temp) * cap;
                if (remaining < to_melt_point) {
                    temp += remaining / cap;
                    remaining = 0.0;
                } else {
                    temp = melt;
                    remaining -= to_melt_point;
                }
            } else if (melt_fraction < 1.0) {
                const Joules to_full_melt =
                    (1.0 - melt_fraction) * latent;
                if (remaining < to_full_melt) {
                    melt_fraction += remaining / latent;
                    temp = melt;
                    remaining = 0.0;
                } else {
                    melt_fraction = 1.0;
                    temp = melt;
                    remaining -= to_full_melt;
                }
            } else {
                temp += remaining / cap;
                remaining = 0.0;
            }
        } else {
            if (temp > melt) {
                const Joules to_melt_point =
                    (melt - temp) * cap; // negative
                if (remaining > to_melt_point) {
                    temp += remaining / cap;
                    remaining = 0.0;
                } else {
                    temp = melt;
                    remaining -= to_melt_point;
                }
            } else if (melt_fraction > 0.0) {
                const Joules to_full_freeze =
                    -melt_fraction * latent; // negative
                if (remaining > to_full_freeze) {
                    melt_fraction += remaining / latent;
                    temp = melt;
                    remaining = 0.0;
                } else {
                    melt_fraction = 0.0;
                    temp = melt;
                    remaining -= to_full_freeze;
                }
            } else {
                temp += remaining / cap;
                remaining = 0.0;
            }
        }
    }
    // Energy conservation: never drop residual heat. Any leftover from
    // the guard above folds into sensible heat.
    if (remaining != 0.0)
        temp += remaining / cap;
}

void
ThermalNetwork::computeNetPower(const double *t, double *p) const
{
    const std::size_t n = temp_.size();
    const double t_amb = ambient_temp;
    for (std::size_t i = 0; i < n; ++i) {
        double acc =
            injected_[i] + g_amb_[i] * t_amb - g_sum_[i] * t[i];
        const std::size_t end = row_ptr_[i + 1];
        for (std::size_t k = row_ptr_[i]; k < end; ++k)
            acc += g_[k] * t[nbr_[k]];
        p[i] = acc;
    }
}

void
ThermalNetwork::substepEuler(Seconds h)
{
    const std::size_t n = temp_.size();
    double *const t = temp_.data();
    double *const p1 = p1_.data();
    const double *const sic = sens_inv_cap_.data();

    computeNetPower(t, p1);
    // Branch-free sensible update (sens_inv_cap_ is 0 for PCM nodes)...
    for (std::size_t i = 0; i < n; ++i)
        t[i] += h * p1[i] * sic[i];
    // ...then the enthalpy walk for the flagged PCM nodes only.
    for (const std::size_t i : pcm_nodes_)
        applyPcmHeat(t[i], melt_fraction_[i], cap_[i], pcm_[i],
                     h * p1[i]);
}

void
ThermalNetwork::substepHeun(Seconds h)
{
    const std::size_t n = temp_.size();
    double *const t = temp_.data();
    double *const tp = t_pred_.data();
    double *const p1 = p1_.data();
    double *const p2 = p2_.data();
    const double *const sic = sens_inv_cap_.data();
    const double t_amb = ambient_temp;
    const std::size_t *const rp = row_ptr_.data();
    const std::size_t *const nbr = nbr_.data();
    const double *const g = g_.data();
    const double *const g_amb = g_amb_.data();
    const double *const g_sum = g_sum_.data();
    const double *const inj = injected_.data();

    // Stage 1 at the current state, fused with the Euler predictor
    // into preallocated scratch (sens_inv_cap_ is 0 for PCM nodes).
    for (std::size_t i = 0; i < n; ++i) {
        double acc = inj[i] + g_amb[i] * t_amb - g_sum[i] * t[i];
        const std::size_t end = rp[i + 1];
        for (std::size_t k = rp[i]; k < end; ++k)
            acc += g[k] * t[nbr[k]];
        p1[i] = acc;
        tp[i] = t[i] + h * acc * sic[i];
    }
    // Enthalpy-aware predictor for the flagged PCM nodes only, so the
    // latent plateau is honoured mid-step.
    for (const std::size_t i : pcm_nodes_) {
        mf_pred_[i] = melt_fraction_[i];
        applyPcmHeat(tp[i], mf_pred_[i], cap_[i], pcm_[i], h * p1[i]);
    }

    // Stage 2 at the predicted state, fused with the corrector: apply
    // the averaged heat. Per-edge flows enter both endpoints
    // antisymmetrically, so the applied heats conserve energy to
    // rounding.
    const double hh = 0.5 * h;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = inj[i] + g_amb[i] * t_amb - g_sum[i] * tp[i];
        const std::size_t end = rp[i + 1];
        for (std::size_t k = rp[i]; k < end; ++k)
            acc += g[k] * tp[nbr[k]];
        p2[i] = acc;
        t[i] += hh * (p1[i] + acc) * sic[i];
    }
    for (const std::size_t i : pcm_nodes_)
        applyPcmHeat(t[i], melt_fraction_[i], cap_[i], pcm_[i],
                     hh * (p1[i] + p2[i]));
}

void
ThermalNetwork::step(Seconds dt)
{
    SPRINT_ASSERT(dt >= 0.0, "negative time step");
    if (dt == 0.0 || temp_.empty())
        return;
    ensureTopology();

    const bool heun = scheme == ThermalIntegrator::Heun;
    // ratio is 0 for an edge-free network (stable bound = infinity).
    const double ratio =
        dt * inv_hmax_ * (heun ? 1.0 : kHeunOverEuler);
    const int substeps =
        ratio > 1.0 ? static_cast<int>(std::ceil(ratio)) : 1;
    const Seconds h = dt / substeps;
    if (heun) {
        for (int i = 0; i < substeps; ++i)
            substepHeun(h);
    } else {
        for (int i = 0; i < substeps; ++i)
            substepEuler(h);
    }
}

bool
ThermalNetwork::quiescentSubstep(const double *t_in, const double *mf_in,
                                 double *t_out, double *mf_out,
                                 Seconds h) const
{
    const std::size_t n = temp_.size();
    const double t_amb = ambient_temp;

    // Partition the nodes: plateau nodes (PCM mid-transition) are
    // pinned at their melt temperature for the whole substep; the
    // rest evolve sensibly. When every sensible node's neighbors are
    // all pinned, each sensible node sees a constant boundary and its
    // trajectory is a closed-form exponential (exact); otherwise the
    // coupled sensible set is advanced by one backward-Euler step
    // (unconditionally stable, and — unlike a per-node frozen-
    // neighbor decay — faithful to the emergent slow modes of stiffly
    // coupled clusters, so the step-doubling error estimate above
    // this routine measures a real, convergent local error).
    bool coupled = false;
    for (std::size_t i = 0; i < n; ++i) {
        const bool plateau_i =
            has_pcm_[i] && mf_in[i] > 0.0 && mf_in[i] < 1.0;
        q_plateau_[i] = plateau_i ? 1 : 0;
        if (plateau_i) {
            t_out[i] = pcm_[i].melt_temp;
            mf_out[i] = mf_in[i];  // integrated after the solve
        }
    }
    for (std::size_t i = 0; i < n && !coupled; ++i) {
        if (q_plateau_[i])
            continue;
        const std::size_t end = row_ptr_[i + 1];
        for (std::size_t k = row_ptr_[i]; k < end; ++k) {
            if (!q_plateau_[nbr_[k]]) {
                coupled = true;
                break;
            }
        }
    }

    if (!coupled) {
        // Closed-form regime: every sensible node decays toward the
        // fixed point set by its pinned neighbors and the ambient.
        for (std::size_t i = 0; i < n; ++i) {
            if (q_plateau_[i])
                continue;
            double drive = injected_[i] + g_amb_[i] * t_amb;
            const std::size_t end = row_ptr_[i + 1];
            for (std::size_t k = row_ptr_[i]; k < end; ++k)
                drive += g_[k] * pcm_[nbr_[k]].melt_temp;
            const double gs = g_sum_[i];
            double t_new;
            if (gs > 0.0) {
                const double t_star = drive / gs;
                t_new = t_star + (t_in[i] - t_star) *
                                     std::exp(-h * gs / cap_[i]);
            } else {
                t_new = t_in[i] + h * drive / cap_[i];
            }
            t_out[i] = t_new;
            mf_out[i] = has_pcm_[i] ? mf_in[i] : 0.0;
        }
    } else {
        // Backward-Euler over the sensible set, plateau nodes as
        // Dirichlet boundaries:
        //   (C_i/h + g_sum_i) T_i' - sum_{j sensible} g_ij T_j' =
        //       C_i/h T_i + inj_i + g_amb_i T_amb +
        //       sum_{j plateau} g_ij melt_j
        std::size_t m = 0;
        for (std::size_t i = 0; i < n; ++i)
            q_dense_index_[i] =
                q_plateau_[i] ? static_cast<std::size_t>(-1) : m++;
        if (m > 0) {
            std::fill(q_mat_.begin(), q_mat_.begin() + m * m, 0.0);
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t r = q_dense_index_[i];
                if (r == static_cast<std::size_t>(-1))
                    continue;
                const double ch = cap_[i] / h;
                q_mat_[r * m + r] = ch + g_sum_[i];
                double rhs = ch * t_in[i] + injected_[i] +
                             g_amb_[i] * t_amb;
                const std::size_t end = row_ptr_[i + 1];
                for (std::size_t k = row_ptr_[i]; k < end; ++k) {
                    const std::size_t j = nbr_[k];
                    const std::size_t c = q_dense_index_[j];
                    if (c == static_cast<std::size_t>(-1))
                        rhs += g_[k] * pcm_[j].melt_temp;
                    else
                        q_mat_[r * m + c] -= g_[k];
                }
                q_rhs_[r] = rhs;
            }
            // Gaussian elimination with partial pivoting; the system
            // is a strictly diagonally dominant M-matrix, so it is
            // well conditioned at every h.
            for (std::size_t col = 0; col < m; ++col) {
                std::size_t piv = col;
                for (std::size_t r = col + 1; r < m; ++r) {
                    if (std::abs(q_mat_[r * m + col]) >
                        std::abs(q_mat_[piv * m + col]))
                        piv = r;
                }
                if (piv != col) {
                    for (std::size_t c = col; c < m; ++c)
                        std::swap(q_mat_[col * m + c],
                                  q_mat_[piv * m + c]);
                    std::swap(q_rhs_[col], q_rhs_[piv]);
                }
                const double d = q_mat_[col * m + col];
                for (std::size_t r = col + 1; r < m; ++r) {
                    const double f = q_mat_[r * m + col] / d;
                    if (f == 0.0)
                        continue;
                    for (std::size_t c = col + 1; c < m; ++c)
                        q_mat_[r * m + c] -= f * q_mat_[col * m + c];
                    q_rhs_[r] -= f * q_rhs_[col];
                }
            }
            for (std::size_t r = m; r-- > 0;) {
                double acc = q_rhs_[r];
                for (std::size_t c = r + 1; c < m; ++c)
                    acc -= q_mat_[r * m + c] * q_rhs_[c];
                q_rhs_[r] = acc / q_mat_[r * m + r];
            }
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t r = q_dense_index_[i];
                if (r == static_cast<std::size_t>(-1))
                    continue;
                t_out[i] = q_rhs_[r];
                mf_out[i] = has_pcm_[i] ? mf_in[i] : 0.0;
            }
        }
    }

    // Reject steps that reach a plateau boundary: a sensible PCM node
    // crossing its melt point, or a plateau node melting/freezing out.
    // The caller falls back toward plain Heun substeps there.
    for (std::size_t i = 0; i < n; ++i) {
        if (!has_pcm_[i])
            continue;
        const Celsius melt = pcm_[i].melt_temp;
        if (q_plateau_[i]) {
            // Endpoint (implicit) net inflow feeds the melt fraction.
            double p_net = injected_[i] + g_amb_[i] * (t_amb - melt);
            const std::size_t end = row_ptr_[i + 1];
            for (std::size_t k = row_ptr_[i]; k < end; ++k)
                p_net += g_[k] * (t_out[nbr_[k]] - melt);
            const double mf_new =
                mf_in[i] + h * p_net / pcm_[i].latent_heat;
            if (mf_new <= 0.0 || mf_new >= 1.0)
                return false;  // plateau exit within the step
            mf_out[i] = mf_new;
        } else if (mf_in[i] == 0.0 ? t_out[i] > melt
                                   : t_out[i] < melt) {
            return false;  // would enter the plateau
        }
    }
    return true;
}

void
ThermalNetwork::advanceQuiescent(Seconds dt, Celsius tol)
{
    SPRINT_ASSERT(dt >= 0.0, "negative time step");
    SPRINT_ASSERT(tol > 0.0, "quiescent tolerance must be positive");
    if (dt == 0.0 || temp_.empty())
        return;
    ensureTopology();

    // Quiescent-only scratch (including the O(n^2) dense solver
    // matrix) is sized here, not in ensureTopology, so networks that
    // only ever step() never allocate it.
    if (t_q1_.size() != temp_.size()) {
        const std::size_t n = temp_.size();
        t_q1_.assign(n, 0.0);
        mf_q1_.assign(n, 0.0);
        t_q2_.assign(n, 0.0);
        mf_q2_.assign(n, 0.0);
        t_q3_.assign(n, 0.0);
        mf_q3_.assign(n, 0.0);
        q_plateau_.assign(n, 0);
        q_dense_index_.assign(n, 0);
        q_mat_.assign(n * n, 0.0);
        q_rhs_.assign(n, 0.0);
    }

    // The configured integrator's plain substep is both the starting
    // step and the fallback unit near plateau boundaries, so corners
    // are integrated exactly as step() would integrate them; an
    // edge-free network has no stability bound and super-steps
    // immediately.
    const bool heun = scheme == ThermalIntegrator::Heun;
    const Seconds h_plain =
        inv_hmax_ > 0.0
            ? (heun ? 1.0 / inv_hmax_
                    : 1.0 / (inv_hmax_ * kHeunOverEuler))
            : std::numeric_limits<double>::infinity();

    const std::size_t n = temp_.size();
    Seconds remaining = dt;
    Seconds h = h_plain;
    while (remaining > 0.0) {
        const Seconds step = std::min(h, remaining);
        if (step <= h_plain * (1.0 + 1e-12)) {
            // At (or below) the plain substep: integrate with the
            // configured scheme, exactly as step() would — this is
            // the plateau-corner workhorse.
            if (heun)
                substepHeun(step);
            else
                substepEuler(step);
            remaining -= step;
            h = 2.0 * step;
            continue;
        }

        // Trial: one full step vs two half steps (step doubling).
        const bool ok =
            quiescentSubstep(temp_.data(), melt_fraction_.data(),
                             t_q1_.data(), mf_q1_.data(), step) &&
            quiescentSubstep(temp_.data(), melt_fraction_.data(),
                             t_q2_.data(), mf_q2_.data(), 0.5 * step) &&
            quiescentSubstep(t_q2_.data(), mf_q2_.data(), t_q3_.data(),
                             mf_q3_.data(), 0.5 * step);
        if (!ok) {
            h = 0.5 * step;  // bottoms out at the Heun fallback
            continue;
        }

        // Local error estimate: temperature disagreement between the
        // two resolutions, with melt-fraction disagreement converted
        // to an equivalent sensible temperature via latent/C. The
        // budget is tol per accepted step: the quiescent regime decays
        // toward a fixed point, so local errors contract rather than
        // accumulate (the parity tests hold the end-to-end deviation
        // within a few multiples of tol).
        double err = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            err = std::max(err, std::abs(t_q1_[i] - t_q3_[i]));
            if (has_pcm_[i])
                err = std::max(err,
                               std::abs(mf_q1_[i] - mf_q3_[i]) *
                                   pcm_[i].latent_heat / cap_[i]);
        }
        if (err > tol) {
            h = std::max(0.5 * step, h_plain);
            continue;
        }

        // Accept: Richardson-extrapolate the two resolutions
        // (2*half - full cancels backward Euler's O(h) term) unless
        // the extrapolated state strays onto a plateau boundary, in
        // which case the plain two-half-step result is kept. Grow the
        // step by the usual proportional rule, capped at doubling so
        // one lucky step cannot overshoot.
        bool extrapolate = true;
        for (std::size_t i = 0; i < n && extrapolate; ++i) {
            const double te = 2.0 * t_q3_[i] - t_q1_[i];
            if (!has_pcm_[i])
                continue;
            const double mfe = 2.0 * mf_q3_[i] - mf_q1_[i];
            if (mf_q3_[i] > 0.0 && mf_q3_[i] < 1.0) {
                if (mfe <= 0.0 || mfe >= 1.0)
                    extrapolate = false;
            } else if (mf_q3_[i] == 0.0 ? te > pcm_[i].melt_temp
                                        : te < pcm_[i].melt_temp) {
                extrapolate = false;
            }
        }
        if (extrapolate) {
            for (std::size_t i = 0; i < n; ++i) {
                t_q3_[i] = 2.0 * t_q3_[i] - t_q1_[i];
                if (has_pcm_[i] && mf_q3_[i] > 0.0 && mf_q3_[i] < 1.0)
                    mf_q3_[i] = 2.0 * mf_q3_[i] - mf_q1_[i];
            }
        }
        std::swap(temp_, t_q3_);
        std::swap(melt_fraction_, mf_q3_);
        remaining -= step;
        const double grow =
            err > 0.0 ? std::min(2.0, 0.9 * std::sqrt(tol / err)) : 2.0;
        h = std::max(step * std::max(grow, 1.0), h_plain);
    }
}

ThermalNetworkState
ThermalNetwork::saveState() const
{
    ThermalNetworkState s;
    s.temps = temp_;
    s.melt_fractions = melt_fraction_;
    s.injected = injected_;
    return s;
}

void
ThermalNetwork::restoreState(const ThermalNetworkState &state)
{
    SPRINT_ASSERT(state.temps.size() == temp_.size() &&
                      state.melt_fractions.size() == temp_.size() &&
                      state.injected.size() == temp_.size(),
                  "thermal snapshot does not match network topology");
    temp_ = state.temps;
    melt_fraction_ = state.melt_fractions;
    injected_ = state.injected;
}

Joules
ThermalNetwork::storedEnergy() const
{
    Joules total = 0.0;
    for (std::size_t i = 0; i < temp_.size(); ++i) {
        total += cap_[i] * (temp_[i] - ambient_temp);
        if (has_pcm_[i])
            total += melt_fraction_[i] * pcm_[i].latent_heat;
    }
    return total;
}

void
ThermalNetwork::reset()
{
    for (std::size_t i = 0; i < temp_.size(); ++i) {
        temp_[i] = ambient_temp;
        melt_fraction_[i] =
            has_pcm_[i] && ambient_temp > pcm_[i].melt_temp ? 1.0 : 0.0;
        injected_[i] = 0.0;
    }
    // Drop integrator scratch and force the stability cache to be
    // re-validated, so a network reused across batched experiments can
    // never read stale state.
    std::fill(p1_.begin(), p1_.end(), 0.0);
    std::fill(p2_.begin(), p2_.end(), 0.0);
    std::fill(t_pred_.begin(), t_pred_.end(), 0.0);
    std::fill(mf_pred_.begin(), mf_pred_.end(), 0.0);
    topology_dirty_ = true;
}

} // namespace csprint
