#include "thermal/network.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace csprint {

ThermalNetwork::ThermalNetwork(Celsius ambient) : ambient_temp(ambient) {}

ThermalNodeId
ThermalNetwork::addNode(const std::string &name, JoulesPerKelvin cap,
                        Celsius t0)
{
    SPRINT_ASSERT(cap > 0.0, "node capacity must be positive");
    Node n;
    n.name = name;
    n.capacity = cap;
    n.temp = t0;
    n.injected = 0.0;
    n.has_pcm = false;
    n.pcm = {0.0, 0.0};
    n.melt_fraction = 0.0;
    nodes.push_back(n);
    return nodes.size() - 1;
}

ThermalNodeId
ThermalNetwork::addPcmNode(const std::string &name, JoulesPerKelvin cap,
                           Celsius t0, const PcmProperties &pcm)
{
    SPRINT_ASSERT(pcm.latent_heat > 0.0, "latent heat must be positive");
    const ThermalNodeId id = addNode(name, cap, t0);
    nodes[id].has_pcm = true;
    nodes[id].pcm = pcm;
    nodes[id].melt_fraction = t0 > pcm.melt_temp ? 1.0 : 0.0;
    return id;
}

void
ThermalNetwork::addResistor(ThermalNodeId a, ThermalNodeId b,
                            KelvinPerWatt r)
{
    SPRINT_ASSERT(a < nodes.size() && b < nodes.size(),
                  "resistor endpoint out of range");
    SPRINT_ASSERT(r > 0.0, "thermal resistance must be positive");
    edges.push_back({a, b, r});
}

void
ThermalNetwork::addResistorToAmbient(ThermalNodeId node, KelvinPerWatt r)
{
    SPRINT_ASSERT(node < nodes.size(), "resistor endpoint out of range");
    SPRINT_ASSERT(r > 0.0, "thermal resistance must be positive");
    edges.push_back({node, kAmbient, r});
}

void
ThermalNetwork::setPower(ThermalNodeId node, Watts power)
{
    SPRINT_ASSERT(node < nodes.size(), "node out of range");
    nodes[node].injected = power;
}

Watts
ThermalNetwork::power(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < nodes.size(), "node out of range");
    return nodes[node].injected;
}

Celsius
ThermalNetwork::temperature(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < nodes.size(), "node out of range");
    return nodes[node].temp;
}

double
ThermalNetwork::meltFraction(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < nodes.size(), "node out of range");
    return nodes[node].melt_fraction;
}

bool
ThermalNetwork::isPcmNode(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < nodes.size(), "node out of range");
    return nodes[node].has_pcm;
}

const std::string &
ThermalNetwork::name(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < nodes.size(), "node out of range");
    return nodes[node].name;
}

Celsius
ThermalNetwork::endpointTemp(std::size_t id) const
{
    return id == kAmbient ? ambient_temp : nodes[id].temp;
}

Seconds
ThermalNetwork::maxStableStep() const
{
    // Explicit Euler on a node is stable while
    // dt < C_i / sum_j(1/R_ij); take the tightest node.
    std::vector<double> conductance(nodes.size(), 0.0);
    for (const auto &e : edges) {
        const double g = 1.0 / e.resistance;
        if (e.a != kAmbient)
            conductance[e.a] += g;
        if (e.b != kAmbient)
            conductance[e.b] += g;
    }
    double limit = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (conductance[i] > 0.0)
            limit = std::min(limit, nodes[i].capacity / conductance[i]);
    }
    return limit;
}

void
ThermalNetwork::applyHeat(Node &node, Joules joules)
{
    if (!node.has_pcm) {
        node.temp += joules / node.capacity;
        return;
    }

    // Walk the piecewise enthalpy curve: sensible heat below the melt
    // point, latent plateau at the melt point, sensible heat above.
    double remaining = joules;
    const Celsius melt = node.pcm.melt_temp;
    const Joules latent = node.pcm.latent_heat;

    // Guard against infinite loops from floating-point residue.
    for (int iter = 0; iter < 8 && remaining != 0.0; ++iter) {
        if (remaining > 0.0) {
            if (node.temp < melt) {
                const Joules to_melt_point =
                    (melt - node.temp) * node.capacity;
                if (remaining < to_melt_point) {
                    node.temp += remaining / node.capacity;
                    remaining = 0.0;
                } else {
                    node.temp = melt;
                    remaining -= to_melt_point;
                }
            } else if (node.melt_fraction < 1.0) {
                const Joules to_full_melt =
                    (1.0 - node.melt_fraction) * latent;
                if (remaining < to_full_melt) {
                    node.melt_fraction += remaining / latent;
                    node.temp = melt;
                    remaining = 0.0;
                } else {
                    node.melt_fraction = 1.0;
                    node.temp = melt;
                    remaining -= to_full_melt;
                }
            } else {
                node.temp += remaining / node.capacity;
                remaining = 0.0;
            }
        } else {
            if (node.temp > melt) {
                const Joules to_melt_point =
                    (melt - node.temp) * node.capacity; // negative
                if (remaining > to_melt_point) {
                    node.temp += remaining / node.capacity;
                    remaining = 0.0;
                } else {
                    node.temp = melt;
                    remaining -= to_melt_point;
                }
            } else if (node.melt_fraction > 0.0) {
                const Joules to_full_freeze =
                    -node.melt_fraction * latent; // negative
                if (remaining > to_full_freeze) {
                    node.melt_fraction += remaining / latent;
                    node.temp = melt;
                    remaining = 0.0;
                } else {
                    node.melt_fraction = 0.0;
                    node.temp = melt;
                    remaining -= to_full_freeze;
                }
            } else {
                node.temp += remaining / node.capacity;
                remaining = 0.0;
            }
        }
    }
}

void
ThermalNetwork::substep(Seconds dt)
{
    // Gather net heat per node at the current temperatures, then apply.
    std::vector<Joules> heat(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i)
        heat[i] = nodes[i].injected * dt;
    for (const auto &e : edges) {
        const double flow =
            (endpointTemp(e.a) - endpointTemp(e.b)) / e.resistance;
        const Joules q = flow * dt;
        if (e.a != kAmbient)
            heat[e.a] -= q;
        if (e.b != kAmbient)
            heat[e.b] += q;
    }
    for (std::size_t i = 0; i < nodes.size(); ++i)
        applyHeat(nodes[i], heat[i]);
}

void
ThermalNetwork::step(Seconds dt)
{
    SPRINT_ASSERT(dt >= 0.0, "negative time step");
    if (dt == 0.0 || nodes.empty())
        return;
    // Well below the stability bound for accuracy, not just
    // stability: explicit Euler at h = 0.01 * tau keeps step-response
    // errors under ~0.2% of the driving amplitude.
    const Seconds stable = 0.01 * maxStableStep();
    const int substeps =
        std::max(1, static_cast<int>(std::ceil(dt / stable)));
    const Seconds h = dt / substeps;
    for (int i = 0; i < substeps; ++i)
        substep(h);
}

Joules
ThermalNetwork::storedEnergy() const
{
    Joules total = 0.0;
    for (const auto &n : nodes) {
        total += n.capacity * (n.temp - ambient_temp);
        if (n.has_pcm)
            total += n.melt_fraction * n.pcm.latent_heat;
    }
    return total;
}

void
ThermalNetwork::reset()
{
    for (auto &n : nodes) {
        n.temp = ambient_temp;
        n.melt_fraction =
            n.has_pcm && ambient_temp > n.pcm.melt_temp ? 1.0 : 0.0;
        n.injected = 0.0;
    }
}

} // namespace csprint
