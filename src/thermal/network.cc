#include "thermal/network.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace csprint {

namespace {

// Accuracy-driven sub-step fractions of the explicit stability bound.
// First-order Euler needs h = 0.01 * tau to keep step-response errors
// under ~0.2% of the driving amplitude; second-order Heun reaches the
// same accuracy with ~10x longer sub-steps (global error ~ (h/tau)^2).
constexpr double kEulerStepFraction = 0.01;
constexpr double kHeunStepFraction = 0.1;
constexpr double kHeunOverEuler = kHeunStepFraction / kEulerStepFraction;

} // namespace

ThermalNetwork::ThermalNetwork(Celsius ambient) : ambient_temp(ambient) {}

ThermalNodeId
ThermalNetwork::addNode(const std::string &name, JoulesPerKelvin cap,
                        Celsius t0)
{
    SPRINT_ASSERT(cap > 0.0, "node capacity must be positive");
    temp_.push_back(t0);
    injected_.push_back(0.0);
    cap_.push_back(cap);
    sens_inv_cap_.push_back(1.0 / cap);
    melt_fraction_.push_back(0.0);
    has_pcm_.push_back(0);
    pcm_.push_back({0.0, 0.0});
    names_.push_back(name);
    topology_dirty_ = true;
    return temp_.size() - 1;
}

ThermalNodeId
ThermalNetwork::addPcmNode(const std::string &name, JoulesPerKelvin cap,
                           Celsius t0, const PcmProperties &pcm)
{
    SPRINT_ASSERT(pcm.latent_heat > 0.0, "latent heat must be positive");
    const ThermalNodeId id = addNode(name, cap, t0);
    has_pcm_[id] = 1;
    pcm_[id] = pcm;
    melt_fraction_[id] = t0 > pcm.melt_temp ? 1.0 : 0.0;
    // PCM nodes take the enthalpy walk, not the sensible fast path.
    sens_inv_cap_[id] = 0.0;
    pcm_nodes_.push_back(id);
    return id;
}

void
ThermalNetwork::addResistor(ThermalNodeId a, ThermalNodeId b,
                            KelvinPerWatt r)
{
    SPRINT_ASSERT(a < temp_.size() && b < temp_.size(),
                  "resistor endpoint out of range");
    SPRINT_ASSERT(r > 0.0, "thermal resistance must be positive");
    edges.push_back({a, b, r});
    topology_dirty_ = true;
}

void
ThermalNetwork::addResistorToAmbient(ThermalNodeId node, KelvinPerWatt r)
{
    SPRINT_ASSERT(node < temp_.size(), "resistor endpoint out of range");
    SPRINT_ASSERT(r > 0.0, "thermal resistance must be positive");
    edges.push_back({node, kAmbient, r});
    topology_dirty_ = true;
}

void
ThermalNetwork::setPower(ThermalNodeId node, Watts power)
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    injected_[node] = power;
}

Watts
ThermalNetwork::power(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return injected_[node];
}

Celsius
ThermalNetwork::temperature(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return temp_[node];
}

double
ThermalNetwork::meltFraction(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return melt_fraction_[node];
}

bool
ThermalNetwork::isPcmNode(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return has_pcm_[node] != 0;
}

const std::string &
ThermalNetwork::name(ThermalNodeId node) const
{
    SPRINT_ASSERT(node < temp_.size(), "node out of range");
    return names_[node];
}

void
ThermalNetwork::ensureTopology() const
{
    if (!topology_dirty_)
        return;

    const std::size_t n = temp_.size();
    row_ptr_.assign(n + 1, 0);
    g_amb_.assign(n, 0.0);
    g_sum_.assign(n, 0.0);

    // Counting pass: each internal edge appears in both endpoint rows;
    // ambient edges fold into g_amb_ instead of occupying a slot.
    for (const auto &e : edges) {
        if (e.a != kAmbient && e.b != kAmbient) {
            ++row_ptr_[e.a + 1];
            ++row_ptr_[e.b + 1];
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        row_ptr_[i + 1] += row_ptr_[i];

    nbr_.assign(row_ptr_[n], 0);
    g_.assign(row_ptr_[n], 0.0);
    std::vector<std::size_t> fill(row_ptr_.begin(), row_ptr_.end() - 1);
    for (const auto &e : edges) {
        const double g = 1.0 / e.resistance;
        if (e.a != kAmbient && e.b != kAmbient) {
            nbr_[fill[e.a]] = e.b;
            g_[fill[e.a]++] = g;
            nbr_[fill[e.b]] = e.a;
            g_[fill[e.b]++] = g;
            g_sum_[e.a] += g;
            g_sum_[e.b] += g;
        } else if (e.a != kAmbient) {
            g_amb_[e.a] += g;
            g_sum_[e.a] += g;
        } else if (e.b != kAmbient) {
            g_amb_[e.b] += g;
            g_sum_[e.b] += g;
        }
    }

    // Explicit Euler on a node is stable while dt < C_i / sum_j(1/R_ij);
    // take the tightest node. (Heun shares the same real-axis bound.)
    double limit = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
        if (g_sum_[i] > 0.0)
            limit = std::min(limit, cap_[i] / g_sum_[i]);
    }
    stable_cached_ = limit;
    inv_hmax_ = std::isinf(limit)
                    ? 0.0
                    : 1.0 / (kHeunStepFraction * limit);

    p1_.assign(n, 0.0);
    p2_.assign(n, 0.0);
    t_pred_.assign(n, 0.0);
    mf_pred_.assign(n, 0.0);
    topology_dirty_ = false;
}

Seconds
ThermalNetwork::maxStableStep() const
{
    ensureTopology();
    return stable_cached_;
}

void
ThermalNetwork::applyPcmHeat(double &temp, double &melt_fraction,
                             JoulesPerKelvin cap,
                             const PcmProperties &pcm, Joules joules)
{
    // Walk the piecewise enthalpy curve: sensible heat below the melt
    // point, latent plateau at the melt point, sensible heat above.
    double remaining = joules;
    const Celsius melt = pcm.melt_temp;
    const Joules latent = pcm.latent_heat;

    // One sign of heat crosses at most three segments; the bound only
    // guards against floating-point ping-pong.
    for (int iter = 0; iter < 8 && remaining != 0.0; ++iter) {
        if (remaining > 0.0) {
            if (temp < melt) {
                const Joules to_melt_point = (melt - temp) * cap;
                if (remaining < to_melt_point) {
                    temp += remaining / cap;
                    remaining = 0.0;
                } else {
                    temp = melt;
                    remaining -= to_melt_point;
                }
            } else if (melt_fraction < 1.0) {
                const Joules to_full_melt =
                    (1.0 - melt_fraction) * latent;
                if (remaining < to_full_melt) {
                    melt_fraction += remaining / latent;
                    temp = melt;
                    remaining = 0.0;
                } else {
                    melt_fraction = 1.0;
                    temp = melt;
                    remaining -= to_full_melt;
                }
            } else {
                temp += remaining / cap;
                remaining = 0.0;
            }
        } else {
            if (temp > melt) {
                const Joules to_melt_point =
                    (melt - temp) * cap; // negative
                if (remaining > to_melt_point) {
                    temp += remaining / cap;
                    remaining = 0.0;
                } else {
                    temp = melt;
                    remaining -= to_melt_point;
                }
            } else if (melt_fraction > 0.0) {
                const Joules to_full_freeze =
                    -melt_fraction * latent; // negative
                if (remaining > to_full_freeze) {
                    melt_fraction += remaining / latent;
                    temp = melt;
                    remaining = 0.0;
                } else {
                    melt_fraction = 0.0;
                    temp = melt;
                    remaining -= to_full_freeze;
                }
            } else {
                temp += remaining / cap;
                remaining = 0.0;
            }
        }
    }
    // Energy conservation: never drop residual heat. Any leftover from
    // the guard above folds into sensible heat.
    if (remaining != 0.0)
        temp += remaining / cap;
}

void
ThermalNetwork::computeNetPower(const double *t, double *p) const
{
    const std::size_t n = temp_.size();
    const double t_amb = ambient_temp;
    for (std::size_t i = 0; i < n; ++i) {
        double acc =
            injected_[i] + g_amb_[i] * t_amb - g_sum_[i] * t[i];
        const std::size_t end = row_ptr_[i + 1];
        for (std::size_t k = row_ptr_[i]; k < end; ++k)
            acc += g_[k] * t[nbr_[k]];
        p[i] = acc;
    }
}

void
ThermalNetwork::substepEuler(Seconds h)
{
    const std::size_t n = temp_.size();
    double *const t = temp_.data();
    double *const p1 = p1_.data();
    const double *const sic = sens_inv_cap_.data();

    computeNetPower(t, p1);
    // Branch-free sensible update (sens_inv_cap_ is 0 for PCM nodes)...
    for (std::size_t i = 0; i < n; ++i)
        t[i] += h * p1[i] * sic[i];
    // ...then the enthalpy walk for the flagged PCM nodes only.
    for (const std::size_t i : pcm_nodes_)
        applyPcmHeat(t[i], melt_fraction_[i], cap_[i], pcm_[i],
                     h * p1[i]);
}

void
ThermalNetwork::substepHeun(Seconds h)
{
    const std::size_t n = temp_.size();
    double *const t = temp_.data();
    double *const tp = t_pred_.data();
    double *const p1 = p1_.data();
    double *const p2 = p2_.data();
    const double *const sic = sens_inv_cap_.data();
    const double t_amb = ambient_temp;
    const std::size_t *const rp = row_ptr_.data();
    const std::size_t *const nbr = nbr_.data();
    const double *const g = g_.data();
    const double *const g_amb = g_amb_.data();
    const double *const g_sum = g_sum_.data();
    const double *const inj = injected_.data();

    // Stage 1 at the current state, fused with the Euler predictor
    // into preallocated scratch (sens_inv_cap_ is 0 for PCM nodes).
    for (std::size_t i = 0; i < n; ++i) {
        double acc = inj[i] + g_amb[i] * t_amb - g_sum[i] * t[i];
        const std::size_t end = rp[i + 1];
        for (std::size_t k = rp[i]; k < end; ++k)
            acc += g[k] * t[nbr[k]];
        p1[i] = acc;
        tp[i] = t[i] + h * acc * sic[i];
    }
    // Enthalpy-aware predictor for the flagged PCM nodes only, so the
    // latent plateau is honoured mid-step.
    for (const std::size_t i : pcm_nodes_) {
        mf_pred_[i] = melt_fraction_[i];
        applyPcmHeat(tp[i], mf_pred_[i], cap_[i], pcm_[i], h * p1[i]);
    }

    // Stage 2 at the predicted state, fused with the corrector: apply
    // the averaged heat. Per-edge flows enter both endpoints
    // antisymmetrically, so the applied heats conserve energy to
    // rounding.
    const double hh = 0.5 * h;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = inj[i] + g_amb[i] * t_amb - g_sum[i] * tp[i];
        const std::size_t end = rp[i + 1];
        for (std::size_t k = rp[i]; k < end; ++k)
            acc += g[k] * tp[nbr[k]];
        p2[i] = acc;
        t[i] += hh * (p1[i] + acc) * sic[i];
    }
    for (const std::size_t i : pcm_nodes_)
        applyPcmHeat(t[i], melt_fraction_[i], cap_[i], pcm_[i],
                     hh * (p1[i] + p2[i]));
}

void
ThermalNetwork::step(Seconds dt)
{
    SPRINT_ASSERT(dt >= 0.0, "negative time step");
    if (dt == 0.0 || temp_.empty())
        return;
    ensureTopology();

    const bool heun = scheme == ThermalIntegrator::Heun;
    // ratio is 0 for an edge-free network (stable bound = infinity).
    const double ratio =
        dt * inv_hmax_ * (heun ? 1.0 : kHeunOverEuler);
    const int substeps =
        ratio > 1.0 ? static_cast<int>(std::ceil(ratio)) : 1;
    const Seconds h = dt / substeps;
    if (heun) {
        for (int i = 0; i < substeps; ++i)
            substepHeun(h);
    } else {
        for (int i = 0; i < substeps; ++i)
            substepEuler(h);
    }
}

Joules
ThermalNetwork::storedEnergy() const
{
    Joules total = 0.0;
    for (std::size_t i = 0; i < temp_.size(); ++i) {
        total += cap_[i] * (temp_[i] - ambient_temp);
        if (has_pcm_[i])
            total += melt_fraction_[i] * pcm_[i].latent_heat;
    }
    return total;
}

void
ThermalNetwork::reset()
{
    for (std::size_t i = 0; i < temp_.size(); ++i) {
        temp_[i] = ambient_temp;
        melt_fraction_[i] =
            has_pcm_[i] && ambient_temp > pcm_[i].melt_temp ? 1.0 : 0.0;
        injected_[i] = 0.0;
    }
    // Drop integrator scratch and force the stability cache to be
    // re-validated, so a network reused across batched experiments can
    // never read stale state.
    std::fill(p1_.begin(), p1_.end(), 0.0);
    std::fill(p2_.begin(), p2_.end(), 0.0);
    std::fill(t_pred_.begin(), t_pred_.end(), 0.0);
    std::fill(mf_pred_.begin(), mf_pred_.end(), 0.0);
    topology_dirty_ = true;
}

} // namespace csprint
