#include "thermal/transients.hh"

#include <algorithm>

#include "common/logging.hh"

namespace csprint {

SprintTransient
runSprintTransient(MobilePackageModel &model, Watts sprint_power,
                   Seconds max_duration, Seconds sample_dt)
{
    SPRINT_ASSERT(sample_dt > 0.0, "sample interval must be positive");
    model.reset();
    model.setDiePower(sprint_power);

    SprintTransient out;
    out.plateau_duration = 0.0;
    out.time_to_limit = max_duration;
    out.hit_limit = false;

    Seconds t = 0.0;
    out.junction_temp.add(t, model.junctionTemp());
    out.melt_fraction.add(t, model.meltFraction());
    while (t < max_duration) {
        model.step(sample_dt);
        t += sample_dt;
        out.junction_temp.add(t, model.junctionTemp());
        out.melt_fraction.add(t, model.meltFraction());
        const double frac = model.meltFraction();
        if (frac > 0.0 && frac < 1.0)
            out.plateau_duration += sample_dt;
        if (model.overTempLimit()) {
            out.time_to_limit = t;
            out.hit_limit = true;
            break;
        }
    }
    model.setDiePower(0.0);
    return out;
}

TimeSeries
runCooldownTransient(MobilePackageModel &model, Seconds duration,
                     Seconds sample_dt)
{
    SPRINT_ASSERT(sample_dt > 0.0, "sample interval must be positive");
    model.setDiePower(0.0);
    TimeSeries trace;
    Seconds t = 0.0;
    trace.add(t, model.junctionTemp());
    while (t < duration) {
        model.step(sample_dt);
        t += sample_dt;
        trace.add(t, model.junctionTemp());
    }
    return trace;
}

ModeTrace
runModeTrace(const MobilePackageParams &params, double work,
             int sprint_cores, Watts core_power, Seconds sample_dt)
{
    SPRINT_ASSERT(sprint_cores >= 1, "need at least one core");
    MobilePackageModel model(params);

    ModeTrace out;
    double done = 0.0;
    int active = sprint_cores;
    Seconds t = 0.0;

    out.cores_active.add(t, active);
    out.cumulative_work.add(t, done);
    out.junction_temp.add(t, model.junctionTemp());

    // Terminate the sprint (drop to one core) when the junction nears
    // its limit; finish the remaining work on a single core, as in
    // Figure 2(b)/(c).
    const Celsius guard = 0.5;
    while (done < work) {
        model.setDiePower(active * core_power);
        model.step(sample_dt);
        t += sample_dt;
        done = std::min(work, done + active * sample_dt);
        if (active > 1 &&
            model.junctionTemp() >=
                model.params().t_junction_max - guard) {
            active = 1;
        }
        out.cores_active.add(t, active);
        out.cumulative_work.add(t, done);
        out.junction_temp.add(t, model.junctionTemp());
        SPRINT_ASSERT(t < 1e4, "mode trace failed to converge");
    }
    out.completion_time = t;
    return out;
}

} // namespace csprint
