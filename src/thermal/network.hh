/**
 * @file
 * Lumped RC thermal network with phase-change-material (PCM) nodes.
 *
 * This is the thermal substrate of the sprinting study (paper Section 4,
 * Figure 3): nodes carry heat capacity and temperature, resistive edges
 * conduct heat, and an ambient reference holds a fixed temperature. A
 * node may additionally carry a PCM: once it reaches the melt
 * temperature, injected heat is absorbed by the latent heat of fusion at
 * constant temperature until the material is fully molten (and
 * symmetrically on freezing). Transient integration is explicit Euler
 * with automatic sub-stepping for stability, and the melt/freeze
 * transition is handled in an energy-conserving way.
 */

#ifndef CSPRINT_THERMAL_NETWORK_HH
#define CSPRINT_THERMAL_NETWORK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hh"

namespace csprint {

/** Identifies a node within a ThermalNetwork. */
using ThermalNodeId = std::size_t;

/** Phase-change behaviour attached to a thermal node. */
struct PcmProperties
{
    Joules latent_heat;   ///< total heat of fusion for the block [J]
    Celsius melt_temp;    ///< melting point [degrees C]
};

/**
 * An RC thermal network with optional PCM nodes.
 *
 * Usage: add nodes and resistive edges, set per-node injected power,
 * then advance with step(). Temperatures, melt fractions, and stored
 * energy are queryable at any time.
 */
class ThermalNetwork
{
  public:
    /** Create a network whose ambient reference sits at @p ambient. */
    explicit ThermalNetwork(Celsius ambient = 25.0);

    /** Add a plain node with heat capacity @p cap starting at @p t0. */
    ThermalNodeId addNode(const std::string &name, JoulesPerKelvin cap,
                          Celsius t0);

    /** Add a node that also carries a phase-change material. */
    ThermalNodeId addPcmNode(const std::string &name, JoulesPerKelvin cap,
                             Celsius t0, const PcmProperties &pcm);

    /** Connect two nodes with thermal resistance @p r. */
    void addResistor(ThermalNodeId a, ThermalNodeId b, KelvinPerWatt r);

    /** Connect a node to the ambient reference with resistance @p r. */
    void addResistorToAmbient(ThermalNodeId node, KelvinPerWatt r);

    /** Set the heat injected into @p node [W] until changed again. */
    void setPower(ThermalNodeId node, Watts power);

    /** Current power injected into @p node. */
    Watts power(ThermalNodeId node) const;

    /** Ambient temperature. */
    Celsius ambient() const { return ambient_temp; }

    /** Change the ambient temperature. */
    void setAmbient(Celsius t) { ambient_temp = t; }

    /** Advance the network by @p dt, sub-stepping as needed. */
    void step(Seconds dt);

    /** Temperature of @p node. */
    Celsius temperature(ThermalNodeId node) const;

    /** Melt fraction in [0,1] of a PCM node (0 for plain nodes). */
    double meltFraction(ThermalNodeId node) const;

    /** True when @p node carries a PCM. */
    bool isPcmNode(ThermalNodeId node) const;

    /** Name given to @p node at creation. */
    const std::string &name(ThermalNodeId node) const;

    /** Number of nodes (excluding the ambient reference). */
    std::size_t nodeCount() const { return nodes.size(); }

    /**
     * Heat stored in the network relative to every node sitting at
     * ambient with all PCM frozen: sensible heat plus absorbed latent
     * heat. Used by conservation tests and budget estimates.
     */
    Joules storedEnergy() const;

    /** Reset all nodes to ambient with PCM fully frozen. */
    void reset();

    /**
     * Largest explicit-Euler step that is stable for this network.
     * step() sub-steps to stay below half of this bound.
     */
    Seconds maxStableStep() const;

  private:
    struct Node
    {
        std::string name;
        JoulesPerKelvin capacity;
        Celsius temp;
        Watts injected;
        bool has_pcm;
        PcmProperties pcm;
        double melt_fraction;
    };

    struct Edge
    {
        // kAmbient as either endpoint refers to the ambient reference.
        std::size_t a;
        std::size_t b;
        KelvinPerWatt resistance;
    };

    static constexpr std::size_t kAmbient =
        static_cast<std::size_t>(-1);

    /** Apply @p joules of net heat to @p node along its enthalpy curve. */
    void applyHeat(Node &node, Joules joules);

    /** Temperature of an edge endpoint (handles the ambient id). */
    Celsius endpointTemp(std::size_t id) const;

    void substep(Seconds dt);

    Celsius ambient_temp;
    std::vector<Node> nodes;
    std::vector<Edge> edges;
};

} // namespace csprint

#endif // CSPRINT_THERMAL_NETWORK_HH
