/**
 * @file
 * Lumped RC thermal network with phase-change-material (PCM) nodes.
 *
 * This is the thermal substrate of the sprinting study (paper Section 4,
 * Figure 3): nodes carry heat capacity and temperature, resistive edges
 * conduct heat, and an ambient reference holds a fixed temperature. A
 * node may additionally carry a PCM: once it reaches the melt
 * temperature, injected heat is absorbed by the latent heat of fusion at
 * constant temperature until the material is fully molten (and
 * symmetrically on freezing). The melt/freeze transition is handled in
 * an energy-conserving way.
 *
 * Transient integration sub-steps automatically for stability. Two
 * integrators are available behind step():
 *
 *  - Heun (the default): second-order explicit Runge-Kutta over the
 *    enthalpy curve. Its higher order permits ~10x longer sub-steps
 *    than first-order Euler at equal accuracy, so it is the hot path
 *    used by the coupled sprint simulation.
 *  - ReferenceEuler: the original first-order scheme, retained as an
 *    accuracy reference for parity tests and benchmarks.
 *
 * The per-node conductance topology (a CSR-style adjacency with the
 * ambient reference folded in) and the explicit-stability bound are
 * cached; the cache is invalidated only by addNode/addPcmNode/
 * addResistor/addResistorToAmbient/reset and rebuilt lazily, so the
 * per-substep kernel performs no allocation.
 */

#ifndef CSPRINT_THERMAL_NETWORK_HH
#define CSPRINT_THERMAL_NETWORK_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace csprint {

/** Identifies a node within a ThermalNetwork. */
using ThermalNodeId = std::size_t;

/** Phase-change behaviour attached to a thermal node. */
struct PcmProperties
{
    Joules latent_heat;   ///< total heat of fusion for the block [J]
    Celsius melt_temp;    ///< melting point [degrees C]
};

/** Integration scheme used by ThermalNetwork::step(). */
enum class ThermalIntegrator
{
    ReferenceEuler, ///< first-order explicit Euler (accuracy reference)
    Heun,           ///< second-order Heun / RK2 (default, ~10x fewer substeps)
};

/**
 * A value-semantic snapshot of a network's mutable state (node
 * temperatures, PCM melt fractions, injected powers). Restoring it
 * into a network with the same topology reproduces the thermal state
 * bit-for-bit; the cached topology and integrator scratch are derived
 * data and are rebuilt deterministically. Plain vectors of doubles, so
 * a snapshot is trivially serializable.
 */
struct ThermalNetworkState
{
    std::vector<double> temps;
    std::vector<double> melt_fractions;
    std::vector<double> injected;
};

/**
 * An RC thermal network with optional PCM nodes.
 *
 * Usage: add nodes and resistive edges, set per-node injected power,
 * then advance with step(). Temperatures, melt fractions, and stored
 * energy are queryable at any time.
 */
class ThermalNetwork
{
  public:
    /** Create a network whose ambient reference sits at @p ambient. */
    explicit ThermalNetwork(Celsius ambient = 25.0);

    /** Add a plain node with heat capacity @p cap starting at @p t0. */
    ThermalNodeId addNode(const std::string &name, JoulesPerKelvin cap,
                          Celsius t0);

    /** Add a node that also carries a phase-change material. */
    ThermalNodeId addPcmNode(const std::string &name, JoulesPerKelvin cap,
                             Celsius t0, const PcmProperties &pcm);

    /** Connect two nodes with thermal resistance @p r. */
    void addResistor(ThermalNodeId a, ThermalNodeId b, KelvinPerWatt r);

    /** Connect a node to the ambient reference with resistance @p r. */
    void addResistorToAmbient(ThermalNodeId node, KelvinPerWatt r);

    /** Set the heat injected into @p node [W] until changed again. */
    void setPower(ThermalNodeId node, Watts power);

    /** Current power injected into @p node. */
    Watts power(ThermalNodeId node) const;

    /** Ambient temperature. */
    Celsius ambient() const { return ambient_temp; }

    /** Change the ambient temperature. */
    void setAmbient(Celsius t) { ambient_temp = t; }

    /** Select the integration scheme used by step(). */
    void setIntegrator(ThermalIntegrator integrator)
    {
        scheme = integrator;
    }

    /** Integration scheme currently in use. */
    ThermalIntegrator integrator() const { return scheme; }

    /** Advance the network by @p dt, sub-stepping as needed. */
    void step(Seconds dt);

    /**
     * Advance the network by @p dt through the quiescent super-stepper:
     * an adaptive scheme for the constant-power (typically zero-power
     * idle) regime that starts at the plain Heun substep and grows the
     * step (up to doubling per acceptance, step-doubling error
     * control at local tolerance @p tol) while the trajectory stays
     * far from any PCM melt/freeze plateau boundary. Plateau nodes
     * are pinned at their melt point with the melt fraction
     * integrating the net inflow; where the topology permits (every
     * sensible node's neighbors pinned) each node follows its exact
     * closed-form exponential decay, and otherwise the coupled
     * sensible set takes one backward-Euler step per substep
     * (unconditionally stable, so steps can exceed the explicit
     * stability bound by orders of magnitude). Near a plateau
     * boundary the stepper falls back to plain Heun substeps, so
     * melt/freeze corners are integrated exactly as step() would.
     *
     * Injected powers are held constant for the whole span (the caller
     * must not change them mid-advance — that is what "quiescent"
     * means). step() and advanceQuiescent() may be freely interleaved.
     */
    void advanceQuiescent(Seconds dt, Celsius tol = 0.01);

    /** Snapshot the mutable state (see ThermalNetworkState). */
    ThermalNetworkState saveState() const;

    /**
     * Restore a snapshot taken from a network with identical topology
     * (node count asserted). Derived caches are rebuilt lazily, so a
     * restored network steps bit-identically to the snapshotted one.
     */
    void restoreState(const ThermalNetworkState &state);

    /** Temperature of @p node. */
    Celsius temperature(ThermalNodeId node) const;

    /** Melt fraction in [0,1] of a PCM node (0 for plain nodes). */
    double meltFraction(ThermalNodeId node) const;

    /** True when @p node carries a PCM. */
    bool isPcmNode(ThermalNodeId node) const;

    /** Name given to @p node at creation. */
    const std::string &name(ThermalNodeId node) const;

    /** Number of nodes (excluding the ambient reference). */
    std::size_t nodeCount() const { return temp_.size(); }

    /**
     * Heat stored in the network relative to every node sitting at
     * ambient with all PCM frozen: sensible heat plus absorbed latent
     * heat. Used by conservation tests and budget estimates.
     */
    Joules storedEnergy() const;

    /**
     * Reset all nodes to ambient with PCM fully frozen, clear any
     * integrator scratch state, and invalidate the cached stability
     * bound so a reused network cannot read stale values.
     */
    void reset();

    /**
     * Largest explicit-Euler step that is stable for this network
     * (cached; rebuilt lazily after topology changes). step() sub-steps
     * well below this bound for accuracy, not just stability.
     */
    Seconds maxStableStep() const;

  private:
    struct Edge
    {
        // kAmbient as either endpoint refers to the ambient reference.
        std::size_t a;
        std::size_t b;
        KelvinPerWatt resistance;
    };

    static constexpr std::size_t kAmbient =
        static_cast<std::size_t>(-1);

    /**
     * Apply @p joules along the piecewise enthalpy curve of a PCM
     * node: sensible heat below the melt point, latent plateau at the
     * melt point, sensible heat above. Operates on caller-supplied
     * temperature / melt-fraction storage so the predictor stage can
     * walk scratch copies.
     */
    static void applyPcmHeat(double &temp, double &melt_fraction,
                             JoulesPerKelvin cap,
                             const PcmProperties &pcm, Joules joules);

    /** Rebuild the CSR adjacency and stability bound when dirty. */
    void ensureTopology() const;

    /** Net power into every node at temperatures @p t, into @p p. */
    void computeNetPower(const double *t, double *p) const;

    /** One first-order (reference) substep of length @p h. */
    void substepEuler(Seconds h);

    /** One second-order Heun substep of length @p h. */
    void substepHeun(Seconds h);

    /**
     * One quiescent trial substep of length @p h from (@p t_in,
     * @p mf_in) into (@p t_out, @p mf_out): exponential decay toward
     * the frozen-neighbor fixed point for sensible nodes, direct
     * latent-inflow integration on a plateau. Returns false when the
     * step would cross a PCM plateau boundary (melt-point crossing,
     * full melt, or full refreeze) — the caller must fall back to Heun.
     */
    bool quiescentSubstep(const double *t_in, const double *mf_in,
                          double *t_out, double *mf_out,
                          Seconds h) const;

    Celsius ambient_temp;
    ThermalIntegrator scheme = ThermalIntegrator::Heun;

    // --- Node state, SoA (hot arrays first) -----------------------------
    std::vector<double> temp_;          ///< node temperatures [C]
    std::vector<double> injected_;      ///< injected power [W]
    std::vector<double> cap_;           ///< heat capacity [J/K]
    std::vector<double> sens_inv_cap_;  ///< 1/C for plain nodes, 0 for PCM
    std::vector<double> melt_fraction_; ///< PCM melt fraction (0 if plain)
    std::vector<std::uint8_t> has_pcm_;
    std::vector<PcmProperties> pcm_;
    std::vector<std::size_t> pcm_nodes_; ///< indices of PCM nodes
    std::vector<std::string> names_;

    std::vector<Edge> edges; ///< source of truth for the CSR rebuild

    // --- Cached topology (CSR adjacency, ambient folded in) -------------
    mutable bool topology_dirty_ = true;
    mutable std::vector<std::size_t> row_ptr_; ///< size nodeCount()+1
    mutable std::vector<std::size_t> nbr_;     ///< neighbor node index
    mutable std::vector<double> g_;            ///< edge conductance [W/K]
    mutable std::vector<double> g_amb_;        ///< conductance to ambient
    mutable std::vector<double> g_sum_;        ///< total conductance
    mutable Seconds stable_cached_ = 0.0;      ///< min_i C_i / g_sum_i
    mutable double inv_hmax_ = 0.0; ///< 1 / (Heun substep bound); 0 if inf

    // --- Preallocated integrator scratch --------------------------------
    mutable std::vector<double> p1_;      ///< stage-1 net power [W]
    mutable std::vector<double> p2_;      ///< stage-2 net power [W]
    mutable std::vector<double> t_pred_;  ///< predictor temperatures
    mutable std::vector<double> mf_pred_; ///< predictor melt fractions
    // Quiescent-stepper trial state (one full step vs two half steps)
    // and backward-Euler solver scratch.
    mutable std::vector<double> t_q1_;
    mutable std::vector<double> mf_q1_;
    mutable std::vector<double> t_q2_;
    mutable std::vector<double> mf_q2_;
    mutable std::vector<double> t_q3_;
    mutable std::vector<double> mf_q3_;
    mutable std::vector<std::uint8_t> q_plateau_;
    mutable std::vector<std::size_t> q_dense_index_;
    mutable std::vector<double> q_mat_;  ///< dense BE system, m*m
    mutable std::vector<double> q_rhs_;
};

} // namespace csprint

#endif // CSPRINT_THERMAL_NETWORK_HH
