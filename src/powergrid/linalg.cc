#include "powergrid/linalg.hh"

#include <cmath>

#include "common/logging.hh"

namespace csprint {

bool
DenseLu::factor(const Matrix &m)
{
    const std::size_t n = m.size();
    lu = m;
    perm.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at or below k.
        std::size_t pivot = k;
        double best = std::abs(lu.at(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double mag = std::abs(lu.at(r, k));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best == 0.0)
            return false;
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(lu.at(k, c), lu.at(pivot, c));
            std::swap(perm[k], perm[pivot]);
        }
        const double diag = lu.at(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = lu.at(r, k) / diag;
            lu.at(r, k) = factor;
            if (factor == 0.0)
                continue;
            for (std::size_t c = k + 1; c < n; ++c)
                lu.at(r, c) -= factor * lu.at(k, c);
        }
    }
    return true;
}

void
DenseLu::solve(std::vector<double> &b) const
{
    const std::size_t n = lu.size();
    SPRINT_ASSERT(b.size() == n, "rhs size mismatch");

    // Apply the row permutation.
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = b[perm[i]];

    // Forward substitution (unit lower-triangular).
    for (std::size_t i = 0; i < n; ++i) {
        double sum = x[i];
        for (std::size_t j = 0; j < i; ++j)
            sum -= lu.at(i, j) * x[j];
        x[i] = sum;
    }
    // Back substitution.
    for (std::size_t i = n; i-- > 0;) {
        double sum = x[i];
        for (std::size_t j = i + 1; j < n; ++j)
            sum -= lu.at(i, j) * x[j];
        x[i] = sum / lu.at(i, i);
    }
    b = std::move(x);
}

} // namespace csprint
