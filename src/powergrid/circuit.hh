/**
 * @file
 * A small SPICE-like transient circuit simulator.
 *
 * Supports resistors, capacitors, inductors, ideal DC voltage sources,
 * and time-varying current sources. Analysis is modified nodal analysis
 * (MNA); transient integration uses trapezoidal companion models with a
 * fixed time step, so the system matrix is factored once and each step
 * costs a single O(n^2) solve. A DC operating-point solve (capacitors
 * open, inductors shorted) initializes element state so simulations
 * start from steady state rather than from a power-on transient.
 *
 * This is the electrical substrate for the power-delivery study of
 * paper Section 5 (Figures 5 and 6).
 */

#ifndef CSPRINT_POWERGRID_CIRCUIT_HH
#define CSPRINT_POWERGRID_CIRCUIT_HH

#include <functional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "powergrid/linalg.hh"

namespace csprint {

/** Circuit node handle; node 0 is ground. */
using CircuitNodeId = std::size_t;

/** Time-varying current waveform [A] as a function of time [s]. */
using CurrentWaveform = std::function<Amps(Seconds)>;

/**
 * Netlist container plus fixed-step transient simulation state.
 */
class Circuit
{
  public:
    Circuit();

    /** The ground reference node. */
    CircuitNodeId ground() const { return 0; }

    /** Add a named node and return its handle. */
    CircuitNodeId addNode(const std::string &name);

    /** Two-terminal resistor between @p a and @p b. */
    void addResistor(CircuitNodeId a, CircuitNodeId b, Ohms r);

    /** Two-terminal capacitor between @p a and @p b. */
    void addCapacitor(CircuitNodeId a, CircuitNodeId b, Farads c);

    /** Two-terminal inductor between @p a and @p b. */
    void addInductor(CircuitNodeId a, CircuitNodeId b, Henries l);

    /**
     * Series R-L-C branch (a real decoupling capacitor with ESR and
     * ESL) between @p a and @p b; creates internal nodes as needed.
     * Zero ESR/ESL terms are omitted.
     */
    void addDecap(CircuitNodeId a, CircuitNodeId b, Farads c, Ohms esr,
                  Henries esl);

    /** Ideal DC voltage source: @p plus held at @p volts above @p minus. */
    void addVoltageSource(CircuitNodeId plus, CircuitNodeId minus,
                          Volts volts);

    /**
     * Time-varying current source driving current out of @p from,
     * through the source, into @p to (a load draws current from the
     * supply node into the ground node).
     */
    void addCurrentSource(CircuitNodeId from, CircuitNodeId to,
                          CurrentWaveform waveform);

    /** Number of nodes including ground. */
    std::size_t nodeCount() const { return node_names.size(); }

    /**
     * Prepare for transient simulation with step @p dt: solve the DC
     * operating point at t = 0 and factor the transient MNA matrix.
     */
    void beginTransient(Seconds dt);

    /** Advance one time step; beginTransient() must have been called. */
    void step();

    /** Current simulation time. */
    Seconds time() const { return now; }

    /** Node voltage relative to ground. */
    Volts voltage(CircuitNodeId node) const;

    /** Differential voltage v(a) - v(b). */
    Volts voltageBetween(CircuitNodeId a, CircuitNodeId b) const;

  private:
    struct Resistor { CircuitNodeId a, b; Ohms r; };
    struct Capacitor
    {
        CircuitNodeId a, b;
        Farads c;
        double v = 0.0;  ///< branch voltage state
        double i = 0.0;  ///< branch current state
    };
    struct Inductor
    {
        CircuitNodeId a, b;
        Henries l;
        double i = 0.0;  ///< branch current state
        double v = 0.0;  ///< branch voltage state
    };
    struct VSource { CircuitNodeId plus, minus; Volts v; };
    struct ISource { CircuitNodeId from, to; CurrentWaveform waveform; };

    /** Matrix row/column of a node (ground maps to "none"). */
    static constexpr std::size_t kGround = static_cast<std::size_t>(-1);
    std::size_t unknownOf(CircuitNodeId node) const;

    void solveDcOperatingPoint();
    void assembleTransientMatrix();

    std::vector<std::string> node_names;
    std::vector<Resistor> resistors;
    std::vector<Capacitor> capacitors;
    std::vector<Inductor> inductors;
    std::vector<VSource> vsources;
    std::vector<ISource> isources;

    Seconds dt = 0.0;
    Seconds now = 0.0;
    bool transient_ready = false;
    DenseLu lu;
    std::vector<double> solution;  ///< node voltages + vsource currents
};

} // namespace csprint

#endif // CSPRINT_POWERGRID_CIRCUIT_HH
