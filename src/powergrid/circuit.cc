#include "powergrid/circuit.hh"

#include <cmath>

#include "common/logging.hh"

namespace csprint {

Circuit::Circuit()
{
    node_names.push_back("gnd");
}

CircuitNodeId
Circuit::addNode(const std::string &name)
{
    node_names.push_back(name);
    return node_names.size() - 1;
}

void
Circuit::addResistor(CircuitNodeId a, CircuitNodeId b, Ohms r)
{
    SPRINT_ASSERT(a < nodeCount() && b < nodeCount(), "bad node");
    SPRINT_ASSERT(r > 0.0, "resistance must be positive");
    resistors.push_back({a, b, r});
    transient_ready = false;
}

void
Circuit::addCapacitor(CircuitNodeId a, CircuitNodeId b, Farads c)
{
    SPRINT_ASSERT(a < nodeCount() && b < nodeCount(), "bad node");
    SPRINT_ASSERT(c > 0.0, "capacitance must be positive");
    capacitors.push_back({a, b, c, 0.0, 0.0});
    transient_ready = false;
}

void
Circuit::addInductor(CircuitNodeId a, CircuitNodeId b, Henries l)
{
    SPRINT_ASSERT(a < nodeCount() && b < nodeCount(), "bad node");
    SPRINT_ASSERT(l > 0.0, "inductance must be positive");
    inductors.push_back({a, b, l, 0.0, 0.0});
    transient_ready = false;
}

void
Circuit::addDecap(CircuitNodeId a, CircuitNodeId b, Farads c, Ohms esr,
                  Henries esl)
{
    CircuitNodeId top = a;
    if (esr > 0.0) {
        const CircuitNodeId mid = addNode("decap_r");
        addResistor(top, mid, esr);
        top = mid;
    }
    if (esl > 0.0) {
        const CircuitNodeId mid = addNode("decap_l");
        addInductor(top, mid, esl);
        top = mid;
    }
    addCapacitor(top, b, c);
}

void
Circuit::addVoltageSource(CircuitNodeId plus, CircuitNodeId minus,
                          Volts volts)
{
    SPRINT_ASSERT(plus < nodeCount() && minus < nodeCount(), "bad node");
    vsources.push_back({plus, minus, volts});
    transient_ready = false;
}

void
Circuit::addCurrentSource(CircuitNodeId from, CircuitNodeId to,
                          CurrentWaveform waveform)
{
    SPRINT_ASSERT(from < nodeCount() && to < nodeCount(), "bad node");
    SPRINT_ASSERT(waveform != nullptr, "waveform required");
    isources.push_back({from, to, std::move(waveform)});
    transient_ready = false;
}

std::size_t
Circuit::unknownOf(CircuitNodeId node) const
{
    return node == 0 ? kGround : node - 1;
}

void
Circuit::solveDcOperatingPoint()
{
    // DC: capacitors open, inductors are 0 V sources (extra unknowns).
    const std::size_t nv = nodeCount() - 1;
    const std::size_t n = nv + vsources.size() + inductors.size();
    Matrix g(n);
    std::vector<double> rhs(n, 0.0);

    auto stamp_g = [&](CircuitNodeId a, CircuitNodeId b, double cond) {
        const std::size_t ua = unknownOf(a);
        const std::size_t ub = unknownOf(b);
        if (ua != kGround)
            g.at(ua, ua) += cond;
        if (ub != kGround)
            g.at(ub, ub) += cond;
        if (ua != kGround && ub != kGround) {
            g.at(ua, ub) -= cond;
            g.at(ub, ua) -= cond;
        }
    };

    for (const auto &r : resistors)
        stamp_g(r.a, r.b, 1.0 / r.r);

    std::size_t extra = nv;
    auto stamp_vsource = [&](CircuitNodeId plus, CircuitNodeId minus,
                             double volts) {
        const std::size_t up = unknownOf(plus);
        const std::size_t um = unknownOf(minus);
        if (up != kGround) {
            g.at(up, extra) += 1.0;
            g.at(extra, up) += 1.0;
        }
        if (um != kGround) {
            g.at(um, extra) -= 1.0;
            g.at(extra, um) -= 1.0;
        }
        rhs[extra] = volts;
        ++extra;
    };

    for (const auto &v : vsources)
        stamp_vsource(v.plus, v.minus, v.v);
    for (const auto &l : inductors)
        stamp_vsource(l.a, l.b, 0.0);

    for (const auto &i : isources) {
        const double amps = i.waveform(0.0);
        const std::size_t uf = unknownOf(i.from);
        const std::size_t ut = unknownOf(i.to);
        if (uf != kGround)
            rhs[uf] -= amps;
        if (ut != kGround)
            rhs[ut] += amps;
    }

    DenseLu dc_lu;
    if (!dc_lu.factor(g))
        SPRINT_FATAL("singular DC system: circuit is under-constrained "
                     "(floating nodes or source loops)");
    dc_lu.solve(rhs);

    auto node_voltage = [&](CircuitNodeId node) {
        const std::size_t u = unknownOf(node);
        return u == kGround ? 0.0 : rhs[u];
    };

    for (auto &c : capacitors) {
        c.v = node_voltage(c.a) - node_voltage(c.b);
        c.i = 0.0;
    }
    std::size_t l_idx = nv + vsources.size();
    for (auto &l : inductors) {
        // The extra-unknown current is defined flowing a -> b through
        // the 0 V source, matching the inductor current convention.
        l.i = rhs[l_idx++];
        l.v = 0.0;
    }

    solution.assign(nv + vsources.size(), 0.0);
    for (std::size_t i = 0; i < nv + vsources.size(); ++i)
        solution[i] = rhs[i < nv ? i : i];
    // Node voltages occupy the first nv slots; vsource currents follow.
    for (std::size_t i = 0; i < vsources.size(); ++i)
        solution[nv + i] = rhs[nv + i];
}

void
Circuit::assembleTransientMatrix()
{
    const std::size_t nv = nodeCount() - 1;
    const std::size_t n = nv + vsources.size();
    Matrix g(n);

    auto stamp_g = [&](CircuitNodeId a, CircuitNodeId b, double cond) {
        const std::size_t ua = unknownOf(a);
        const std::size_t ub = unknownOf(b);
        if (ua != kGround)
            g.at(ua, ua) += cond;
        if (ub != kGround)
            g.at(ub, ub) += cond;
        if (ua != kGround && ub != kGround) {
            g.at(ua, ub) -= cond;
            g.at(ub, ua) -= cond;
        }
    };

    for (const auto &r : resistors)
        stamp_g(r.a, r.b, 1.0 / r.r);
    for (const auto &c : capacitors)
        stamp_g(c.a, c.b, 2.0 * c.c / dt);
    for (const auto &l : inductors)
        stamp_g(l.a, l.b, dt / (2.0 * l.l));

    std::size_t extra = nv;
    for (const auto &v : vsources) {
        const std::size_t up = unknownOf(v.plus);
        const std::size_t um = unknownOf(v.minus);
        if (up != kGround) {
            g.at(up, extra) += 1.0;
            g.at(extra, up) += 1.0;
        }
        if (um != kGround) {
            g.at(um, extra) -= 1.0;
            g.at(extra, um) -= 1.0;
        }
        ++extra;
    }

    if (!lu.factor(g))
        SPRINT_FATAL("singular transient system: circuit is "
                     "under-constrained");
}

void
Circuit::beginTransient(Seconds step_dt)
{
    SPRINT_ASSERT(step_dt > 0.0, "dt must be positive");
    dt = step_dt;
    now = 0.0;
    solveDcOperatingPoint();
    assembleTransientMatrix();
    transient_ready = true;
}

void
Circuit::step()
{
    SPRINT_ASSERT(transient_ready, "beginTransient() not called");
    const std::size_t nv = nodeCount() - 1;
    const std::size_t n = nv + vsources.size();
    std::vector<double> rhs(n, 0.0);

    auto inject = [&](CircuitNodeId node, double amps) {
        const std::size_t u = unknownOf(node);
        if (u != kGround)
            rhs[u] += amps;
    };

    // Capacitor companion: conductance 2C/dt in parallel with a history
    // source J = (2C/dt) v(t) + i(t) injecting into the 'a' terminal.
    for (const auto &c : capacitors) {
        const double geq = 2.0 * c.c / dt;
        const double hist = geq * c.v + c.i;
        inject(c.a, hist);
        inject(c.b, -hist);
    }
    // Inductor companion: conductance dt/2L in parallel with a history
    // source J = i(t) + (dt/2L) v(t) drawing from the 'a' terminal.
    for (const auto &l : inductors) {
        const double geq = dt / (2.0 * l.l);
        const double hist = l.i + geq * l.v;
        inject(l.a, -hist);
        inject(l.b, hist);
    }
    // Current sources are evaluated at the end of the step.
    const Seconds t_next = now + dt;
    for (const auto &i : isources) {
        const double amps = i.waveform(t_next);
        inject(i.from, -amps);
        inject(i.to, amps);
    }
    std::size_t extra = nv;
    for (const auto &v : vsources)
        rhs[extra++] = v.v;

    lu.solve(rhs);
    solution = rhs;
    now = t_next;

    auto node_voltage = [&](CircuitNodeId node) {
        const std::size_t u = unknownOf(node);
        return u == kGround ? 0.0 : solution[u];
    };

    // Update element state from the new solution.
    for (auto &c : capacitors) {
        const double geq = 2.0 * c.c / dt;
        const double hist = geq * c.v + c.i;
        const double v_new = node_voltage(c.a) - node_voltage(c.b);
        c.i = geq * v_new - hist;
        c.v = v_new;
    }
    for (auto &l : inductors) {
        const double geq = dt / (2.0 * l.l);
        const double hist = l.i + geq * l.v;
        const double v_new = node_voltage(l.a) - node_voltage(l.b);
        l.i = geq * v_new + hist;
        l.v = v_new;
    }
}

Volts
Circuit::voltage(CircuitNodeId node) const
{
    SPRINT_ASSERT(node < nodeCount(), "bad node");
    if (node == 0)
        return 0.0;
    SPRINT_ASSERT(!solution.empty(), "no solution yet");
    return solution[node - 1];
}

Volts
Circuit::voltageBetween(CircuitNodeId a, CircuitNodeId b) const
{
    return voltage(a) - voltage(b);
}

} // namespace csprint
