/**
 * @file
 * Small dense linear-algebra support for the circuit solver: an LU
 * factorization with partial pivoting that is computed once per
 * (circuit, time-step) and re-used for every transient step.
 */

#ifndef CSPRINT_POWERGRID_LINALG_HH
#define CSPRINT_POWERGRID_LINALG_HH

#include <cstddef>
#include <vector>

namespace csprint {

/** Dense row-major matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Create an n-by-n zero matrix. */
    explicit Matrix(std::size_t n) : dim(n), data(n * n, 0.0) {}

    /** Element accessor. */
    double &at(std::size_t r, std::size_t c) { return data[r * dim + c]; }

    /** Element accessor (const). */
    double at(std::size_t r, std::size_t c) const
    {
        return data[r * dim + c];
    }

    /** Matrix dimension. */
    std::size_t size() const { return dim; }

  private:
    std::size_t dim = 0;
    std::vector<double> data;
};

/**
 * LU factorization with partial pivoting (Doolittle).
 *
 * factor() is O(n^3) and performed once; solve() is O(n^2) per
 * right-hand side, which is what every transient step costs.
 */
class DenseLu
{
  public:
    /** Factor @p m; returns false if the matrix is singular. */
    bool factor(const Matrix &m);

    /** Solve LU x = b in place; factor() must have succeeded. */
    void solve(std::vector<double> &b) const;

    /** Dimension of the factored system. */
    std::size_t size() const { return lu.size(); }

  private:
    Matrix lu;
    std::vector<std::size_t> perm;
};

} // namespace csprint

#endif // CSPRINT_POWERGRID_LINALG_HH
