/**
 * @file
 * The sprint-enabled processor's power-delivery network of paper
 * Figure 5, and the core-activation experiments of Figure 6.
 *
 * The network models separate power and ground rails through board,
 * package, and on-chip levels: an ideal 1.2 V regulator, board R/L with
 * a bulk decoupling capacitor, package R/L with a ceramic decoupling
 * capacitor, per-core bump/ball impedances into a chip-level grid whose
 * adjacent cores are linked by in-series R/L segments, a small per-core
 * on-die decap, and each power-gated core as a current source (0 A when
 * gated, configurable average draw when active).
 *
 * Activating all cores at once produces the di/dt supply bounce of
 * Figure 6(a); staggering core activation linearly over a ramp
 * reproduces Figures 6(b) and 6(c).
 */

#ifndef CSPRINT_POWERGRID_PDN_HH
#define CSPRINT_POWERGRID_PDN_HH

#include <memory>
#include <vector>

#include "common/timeseries.hh"
#include "common/units.hh"
#include "powergrid/circuit.hh"

namespace csprint {

/** Electrical parameters of the Figure 5 network (paper values). */
struct PdnParams
{
    int num_cores = 16;
    Volts vdd = 1.2;

    // Board level (per rail).
    Ohms board_r = 0.5e-3;
    Henries board_l = 5e-9;
    Farads bulk_c = 1e-3;          ///< bulk decap
    Ohms bulk_esr = 1e-3;
    Henries bulk_esl = 0.3e-9;

    // Package level (per rail).
    Ohms pkg_r = 150e-6;
    Henries pkg_l = 0.1e-9;
    Farads pkg_c = 30e-6;          ///< package decap
    Ohms pkg_esr = 1.3e-3;
    Henries pkg_esl = 1e-12;

    // Chip level: per-core bump/ball branch and inter-core grid link
    // (per rail).
    Ohms bump_r = 3.2e-3;
    Henries bump_l = 32e-12;
    Ohms grid_r = 1.6e-3;
    Henries grid_l = 128e-15;
    Farads core_decap_c = 16e-12;  ///< per-core on-die decap
    Ohms core_decap_esr = 90e-3;
    Henries core_decap_esl = 64e-15;

    // Core load model: paper Figure 5 quotes 1 A peak / 0.5 A average.
    Amps core_avg_current = 0.5;
    Amps core_peak_current = 1.0;
    bool clock_ripple = false;     ///< superimpose a square-wave ripple
    Hertz clock_ripple_freq = 50e6;

    /** The 16-core configuration of Figure 5. */
    static PdnParams paper16();
};

/** How cores are turned on at sprint initiation (paper Section 5). */
struct ActivationSchedule
{
    Seconds start = 0.0;       ///< when the first core activates
    Seconds ramp = 0.0;        ///< total stagger across all cores
    Seconds core_rise = 1e-9;  ///< each core's own current rise time

    /** All cores within one nanosecond (Figure 6a). */
    static ActivationSchedule abrupt(Seconds start = 10e-6);

    /** Uniform linear stagger over @p ramp (Figures 6b, 6c). */
    static ActivationSchedule linearRamp(Seconds ramp,
                                         Seconds start = 10e-6);

    /** Activation time of core @p index out of @p total. */
    Seconds coreOnTime(int index, int total) const;

    /**
     * Current drawn by core @p index at time @p t: zero before its
     * activation, rising linearly over core_rise, then @p avg.
     */
    Amps coreCurrent(int index, int total, Amps avg, Seconds t) const;
};

/** Result of simulating one activation transient. */
struct SupplyTrace
{
    TimeSeries worst_supply;  ///< min differential rail voltage [V]
    Seconds dt;               ///< simulation step used
};

/** Summary statistics of a supply trace against a tolerance band. */
struct SupplyMetrics
{
    Volts nominal;        ///< regulator setpoint
    Volts min_voltage;    ///< worst undershoot
    Volts max_voltage;    ///< worst overshoot
    Volts settled;        ///< final settled differential voltage
    Seconds settling_time;///< time to stay within the band of settled
    bool within_tolerance;///< never left nominal +/- tolerance
};

/**
 * The Figure 5 network as a live circuit with handles for per-core
 * supply measurements.
 */
class PowerDeliveryNetwork
{
  public:
    PowerDeliveryNetwork(const PdnParams &params,
                         const ActivationSchedule &schedule);

    /** Parameters used to build the network. */
    const PdnParams &params() const { return p; }

    /**
     * Simulate for @p duration with step @p dt, recording the minimum
     * per-core differential supply voltage every @p sample_every.
     */
    SupplyTrace simulate(Seconds duration, Seconds dt,
                         Seconds sample_every);

    /** Underlying circuit (exposed for tests). */
    Circuit &circuit() { return ckt; }

  private:
    Amps coreLoad(int index, Seconds t) const;

    PdnParams p;
    ActivationSchedule sched;
    Circuit ckt;
    std::vector<CircuitNodeId> core_vdd;
    std::vector<CircuitNodeId> core_gnd;
};

/**
 * Evaluate a supply trace against a +/- @p tolerance_frac band around
 * the nominal voltage (the paper uses 2%). Settling time is measured
 * from @p event_time (the start of activation).
 */
SupplyMetrics
computeSupplyMetrics(const SupplyTrace &trace, Volts nominal,
                     double tolerance_frac, Seconds event_time);

} // namespace csprint

#endif // CSPRINT_POWERGRID_PDN_HH
