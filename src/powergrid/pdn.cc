#include "powergrid/pdn.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/logging.hh"

namespace csprint {

PdnParams
PdnParams::paper16()
{
    return PdnParams{};
}

ActivationSchedule
ActivationSchedule::abrupt(Seconds start)
{
    ActivationSchedule s;
    s.start = start;
    s.ramp = 0.0;
    s.core_rise = 1e-9;
    return s;
}

ActivationSchedule
ActivationSchedule::linearRamp(Seconds ramp, Seconds start)
{
    ActivationSchedule s;
    s.start = start;
    s.ramp = ramp;
    s.core_rise = 1e-9;
    return s;
}

Seconds
ActivationSchedule::coreOnTime(int index, int total) const
{
    SPRINT_ASSERT(index >= 0 && index < total, "core index out of range");
    if (total <= 1 || ramp <= 0.0)
        return start;
    return start + ramp * static_cast<double>(index) /
                       static_cast<double>(total - 1);
}

Amps
ActivationSchedule::coreCurrent(int index, int total, Amps avg,
                                Seconds t) const
{
    const Seconds on = coreOnTime(index, total);
    if (t <= on)
        return 0.0;
    if (core_rise > 0.0 && t < on + core_rise)
        return avg * (t - on) / core_rise;
    return avg;
}

PowerDeliveryNetwork::PowerDeliveryNetwork(const PdnParams &params,
                                           const ActivationSchedule &schedule)
    : p(params), sched(schedule)
{
    SPRINT_ASSERT(p.num_cores >= 1, "need at least one core");

    // Regulator: ideal source between the two rail roots. The ground
    // rail root is the circuit reference.
    const CircuitNodeId reg_p = ckt.addNode("reg_p");
    ckt.addVoltageSource(reg_p, ckt.ground(), p.vdd);

    // Board level, both rails.
    const CircuitNodeId board_p = ckt.addNode("board_p");
    const CircuitNodeId board_g = ckt.addNode("board_g");
    ckt.addResistor(reg_p, board_p, p.board_r);
    // Split the R and L of each rail into an R+L series path.
    const CircuitNodeId board_pl = ckt.addNode("board_pl");
    ckt.addInductor(board_p, board_pl, p.board_l);
    const CircuitNodeId board_gl = ckt.addNode("board_gl");
    ckt.addResistor(ckt.ground(), board_g, p.board_r);
    ckt.addInductor(board_g, board_gl, p.board_l);
    ckt.addDecap(board_pl, board_gl, p.bulk_c, p.bulk_esr, p.bulk_esl);

    // Package level, both rails.
    const CircuitNodeId pkg_p = ckt.addNode("pkg_p");
    const CircuitNodeId pkg_g = ckt.addNode("pkg_g");
    {
        const CircuitNodeId mid_p = ckt.addNode("pkg_pr");
        ckt.addResistor(board_pl, mid_p, p.pkg_r);
        ckt.addInductor(mid_p, pkg_p, p.pkg_l);
        const CircuitNodeId mid_g = ckt.addNode("pkg_gr");
        ckt.addResistor(board_gl, mid_g, p.pkg_r);
        ckt.addInductor(mid_g, pkg_g, p.pkg_l);
    }
    ckt.addDecap(pkg_p, pkg_g, p.pkg_c, p.pkg_esr, p.pkg_esl);

    // Chip level: one bump branch per core from the package node to the
    // core's local grid node, adjacent cores linked by grid segments.
    for (int i = 0; i < p.num_cores; ++i) {
        const std::string suffix = std::to_string(i);
        const CircuitNodeId cp = ckt.addNode("core_p" + suffix);
        const CircuitNodeId cg = ckt.addNode("core_g" + suffix);
        {
            const CircuitNodeId mid_p = ckt.addNode("bump_p" + suffix);
            ckt.addResistor(pkg_p, mid_p, p.bump_r);
            ckt.addInductor(mid_p, cp, p.bump_l);
            const CircuitNodeId mid_g = ckt.addNode("bump_g" + suffix);
            ckt.addResistor(pkg_g, mid_g, p.bump_r);
            ckt.addInductor(mid_g, cg, p.bump_l);
        }
        if (i > 0) {
            // In-series R/L grid link to the neighbouring core. The
            // inductance is tiny (fF-scale H); lump it into the series
            // resistance path as R+L.
            const CircuitNodeId mid_p = ckt.addNode("grid_p" + suffix);
            ckt.addResistor(core_vdd.back(), mid_p, p.grid_r);
            ckt.addInductor(mid_p, cp, p.grid_l);
            const CircuitNodeId mid_g = ckt.addNode("grid_g" + suffix);
            ckt.addResistor(core_gnd.back(), mid_g, p.grid_r);
            ckt.addInductor(mid_g, cg, p.grid_l);
        }
        ckt.addDecap(cp, cg, p.core_decap_c, p.core_decap_esr,
                     p.core_decap_esl);
        const int index = i;
        ckt.addCurrentSource(cp, cg, [this, index](Seconds t) {
            return coreLoad(index, t);
        });
        core_vdd.push_back(cp);
        core_gnd.push_back(cg);
    }
}

Amps
PowerDeliveryNetwork::coreLoad(int index, Seconds t) const
{
    Amps amps = sched.coreCurrent(index, p.num_cores,
                                  p.core_avg_current, t);
    if (p.clock_ripple && amps > 0.0) {
        // Square-wave ripple between 2*avg-peak and peak around the
        // average (paper: 0.5 A average, 1 A peak).
        const double period = 1.0 / p.clock_ripple_freq;
        const double phase = std::fmod(t, period) / period;
        const Amps swing = p.core_peak_current - p.core_avg_current;
        amps += phase < 0.5 ? swing : -swing;
        amps = std::max(0.0, amps);
    }
    return amps;
}

SupplyTrace
PowerDeliveryNetwork::simulate(Seconds duration, Seconds dt,
                               Seconds sample_every)
{
    SPRINT_ASSERT(duration > 0.0 && dt > 0.0, "bad simulation window");
    SPRINT_ASSERT(sample_every >= dt, "sample interval below dt");

    ckt.beginTransient(dt);

    SupplyTrace trace;
    trace.dt = dt;
    const auto record = [&]() {
        Volts worst = std::numeric_limits<double>::infinity();
        for (int i = 0; i < p.num_cores; ++i) {
            worst = std::min(worst, ckt.voltageBetween(core_vdd[i],
                                                       core_gnd[i]));
        }
        trace.worst_supply.add(ckt.time(), worst);
    };

    record();
    const std::size_t steps =
        static_cast<std::size_t>(std::ceil(duration / dt));
    const std::size_t stride = std::max<std::size_t>(
        1, static_cast<std::size_t>(sample_every / dt));
    for (std::size_t s = 1; s <= steps; ++s) {
        ckt.step();
        if (s % stride == 0 || s == steps)
            record();
    }
    return trace;
}

SupplyMetrics
computeSupplyMetrics(const SupplyTrace &trace, Volts nominal,
                     double tolerance_frac, Seconds event_time)
{
    SPRINT_ASSERT(!trace.worst_supply.empty(), "empty trace");
    SupplyMetrics m;
    m.nominal = nominal;
    m.min_voltage = trace.worst_supply.minValue();
    m.max_voltage = trace.worst_supply.maxValue();
    m.settled = trace.worst_supply.back();

    const Volts band = tolerance_frac * nominal;
    m.within_tolerance = m.min_voltage >= nominal - band &&
                         m.max_voltage <= nominal + band;

    // Settling time relative to the activation event. A quarter of
    // the tolerance band is used as the recovery criterion: the
    // supply may dip without ever leaving the full band, and the
    // interesting quantity is how long the transient rings before
    // the rail is quiet (the paper quotes 2.53 us for the abrupt
    // case).
    const auto settle = trace.worst_supply.settlingTime(
        0.25 * tolerance_frac * m.settled);
    m.settling_time =
        settle ? std::max(0.0, *settle - event_time) : 0.0;
    return m;
}

} // namespace csprint
