/**
 * @file
 * Portable scenario checkpoints: serialize a ScenarioCheckpoint —
 * including suspended mid-flight machines and the warm L1/L2 chain —
 * to the versioned, CRC32-framed byte format of common/blob.hh, and
 * load it back bit-exactly in another process. Closes the in-process
 * restriction the Scenario engine's checkpoint sharding used to have:
 * a shard can now crash, restart, and resume from its last persisted
 * checkpoint with aggregates and traces identical to an uninterrupted
 * run (gated per fault kind in tests/faultinject_test.cc).
 *
 * Every malformed input — truncation, bit rot, a checkpoint from a
 * different build or configuration — fails with a typed
 * CheckpointError instead of undefined behaviour. What cannot be
 * captured (a custom OpStream subclass, a machine not parked at a
 * sample boundary) fails the save with Kind::Unsupported.
 *
 * CheckpointStore adds crash-safe persistence: checkpoints are
 * written to a temporary file and atomically renamed, with a manifest
 * naming the last complete checkpoint and the previous one retained
 * as a fallback, so a crash mid-write never corrupts the last good
 * state.
 */

#ifndef CSPRINT_SPRINT_CHECKPOINT_HH
#define CSPRINT_SPRINT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/blob.hh"
#include "sprint/scenario.hh"

namespace csprint {

/**
 * CRC32 digest over a canonical dump of @p cfg's value fields (the
 * platform, policy parameters, arrival layout, and every knob that
 * shapes the trajectory). Deserialization rejects a blob whose digest
 * differs — a checkpoint is only valid against the configuration that
 * produced it. Callback members (program_factory, task_tuner,
 * policy_factory) contribute presence only: the engine requires them
 * to be pure functions, so equal configs with equal callbacks replay
 * identically. Debug/host knobs that provably do not alter the
 * trajectory (validate_checkpoints, dispatch_threads/dispatch_gang)
 * are excluded, so a checkpoint can move to a host with a different
 * core count or paranoia setting.
 */
std::uint32_t scenarioConfigDigest(const ScenarioConfig &cfg);

/**
 * Serialize @p ck (taken from beginScenario/advanceScenario under
 * @p cfg) into a framed blob. Suspended ready-queue machines and the
 * warm cache chain ride along. Throws CheckpointError with
 * Kind::Unsupported when the checkpoint holds state the format cannot
 * capture (a machine that is not suspended at a priced sample
 * boundary, or a custom OpStream type).
 */
std::vector<std::uint8_t>
serializeCheckpoint(const ScenarioConfig &cfg,
                    const ScenarioCheckpoint &ck);

/**
 * Reconstruct the checkpoint @p blob carries. The result continues
 * under advanceScenario bit-identically to the in-process original
 * (machines are rebuilt from @p cfg's factories and their
 * architectural state overwritten field for field). Throws
 * CheckpointError on any malformed input: wrong magic or version, a
 * digest from a different configuration, truncation, checksum
 * mismatch, or structurally inconsistent contents.
 */
ScenarioCheckpoint
deserializeCheckpoint(const ScenarioConfig &cfg,
                      const std::vector<std::uint8_t> &blob);

/**
 * Paranoia-mode invariant sweep (ScenarioConfig::validate_checkpoints
 * runs it at every advanceScenario boundary): all temperatures finite
 * and within physical bounds, melt fractions in [0, 1], energy and
 * time tallies non-negative and mutually consistent, and — for every
 * live machine in the checkpoint — the L2 directory consistent with
 * the L1 tag arrays (sharers hold the line, dirty owners hold it
 * dirty, inclusion holds). Throws CheckpointError with
 * Kind::Invariant and a message naming the failing quantity.
 */
void validateCheckpoint(const ScenarioConfig &cfg,
                        const ScenarioCheckpoint &ck);

/**
 * Atomic checkpoint persistence for one scenario batch: one directory
 * holding per-shard checkpoint files plus a manifest per shard naming
 * the newest complete file. save() writes to a temporary name, fsyncs
 * nothing exotic — atomicity comes from rename(2) — then publishes
 * the manifest the same way and prunes all but the two newest
 * checkpoints, so a torn write can never shadow the last good state.
 *
 * Single-writer contract: save() prunes, and pruning assumes no other
 * live writer is publishing the same shard — a respawned worker
 * racing a stalled-but-alive predecessor could otherwise prune the
 * other's newest checkpoint and then shadow it with older state. The
 * store ENFORCES the contract with a per-shard advisory lockfile
 * (flock, held from a shard's first save() until the store is
 * destroyed or the owning process dies — including by SIGKILL, which
 * releases kernel flocks): a save() on a shard whose lock another
 * live store holds throws CheckpointError with Kind::Io instead of
 * touching the shard's files. Readers (loadCandidates) never lock.
 */
class CheckpointStore
{
  public:
    /** Operate under @p dir (created on first save). */
    explicit CheckpointStore(std::string dir);

    /** Releases every held per-shard writer lock. */
    ~CheckpointStore();

    // The writer locks are tied to this instance's lifetime.
    CheckpointStore(const CheckpointStore &) = delete;
    CheckpointStore &operator=(const CheckpointStore &) = delete;

    /**
     * Persist @p blob as shard @p shard's checkpoint number @p seq
     * (monotone per shard). Throws CheckpointError with Kind::Io on
     * filesystem failure.
     */
    void save(int shard, std::uint64_t seq,
              const std::vector<std::uint8_t> &blob);

    /** One recoverable checkpoint file's contents. */
    struct Candidate
    {
        std::uint64_t seq = 0;
        std::vector<std::uint8_t> blob;
    };

    /**
     * Shard @p shard's recoverable checkpoints, newest first: the
     * manifest-named file, then any retained predecessor. Unreadable
     * or missing files are skipped, never thrown — an empty result
     * means "start from the beginning".
     */
    std::vector<Candidate> loadCandidates(int shard) const;

    /** The directory this store operates under. */
    const std::string &dir() const { return dir_; }

    /**
     * The file a given (shard, seq) checkpoint is published under —
     * exposed so fault injection can corrupt persisted state exactly
     * where a real crash or bit rot would.
     */
    std::string checkpointPath(int shard, std::uint64_t seq) const;

    /** The manifest file naming shard @p shard's newest checkpoint. */
    std::string manifestPath(int shard) const;

    /** The advisory writer lockfile guarding shard @p shard. */
    std::string lockPath(int shard) const;

  private:
    /**
     * Take (or verify we already hold) shard @p shard's writer lock.
     * Throws CheckpointError with Kind::Io when another live writer
     * holds it.
     */
    void lockShardWriter(int shard);

    std::string dir_;
    std::vector<std::pair<int, int>> writer_locks_; ///< (shard, fd)
};

} // namespace csprint

#endif // CSPRINT_SPRINT_CHECKPOINT_HH
