/**
 * @file
 * Sprint pacing: the sprint-and-rest behaviour of paper Section 3.
 * Sprinting does not raise sustained performance — it shifts the TDP
 * budget from future idle moments into the present burst, and the
 * chip must cool before it can sprint again. This module answers the
 * runtime's pacing questions: how much budget is back after a given
 * rest, how long until a full re-sprint is possible, what duty cycle
 * a workload of periodic bursts can sustain, and what happens to a
 * train of sprints arriving faster than the package can cool.
 */

#ifndef CSPRINT_SPRINT_PACING_HH
#define CSPRINT_SPRINT_PACING_HH

#include <vector>

#include "common/units.hh"
#include "thermal/package.hh"

namespace csprint {

/**
 * Long-run duty-cycle bound: the fraction of time the chip can spend
 * sprinting at @p sprint_power, averaged over many sprint/rest
 * periods, is TDP / sprint power (energy conservation through the
 * package).
 */
double sustainableDutyCycle(const MobilePackageModel &package,
                            Watts sprint_power);

/**
 * Let @p package cool (zero die power) for @p rest and report the
 * sprint budget available afterwards. The model is stepped, not
 * approximated, so PCM refreeze plateaus are captured. A @p step
 * coarser than @p rest is clamped (and reported once) rather than
 * skipping the cooldown window.
 */
Joules budgetAfterRest(MobilePackageModel &package, Seconds rest,
                       Seconds step = 10e-3);

/**
 * Cooling time until the sprint budget recovers to @p fraction of
 * the cold-start budget (bisection-free forward simulation; returns
 * at most @p limit).
 */
Seconds timeToBudgetFraction(MobilePackageModel &package,
                             double fraction, Seconds limit,
                             Seconds step = 10e-3);

/** Outcome of one sprint in a train. */
struct SprintWindow
{
    Seconds start = 0.0;        ///< when the sprint began
    Seconds duration = 0.0;     ///< time sprinted before exhaustion
    Joules energy = 0.0;        ///< energy spent above sustainable
    double budget_fraction = 0.0; ///< budget available at start
};

/**
 * Run a train of @p count sprint requests at @p sprint_power, each
 * wanting @p want seconds of sprinting, separated by @p interval
 * (start-to-start). Each sprint runs until its budget (from the
 * package's live thermal state) is spent or @p want elapses; between
 * sprints the package cools. Captures the degradation the paper
 * warns about when users re-trigger sprints faster than the cooldown.
 * A @p step coarser than the sprint window is clamped (and reported
 * once): budget and over-temperature checks only happen at step
 * boundaries, so a too-coarse step would silently overshoot them.
 */
std::vector<SprintWindow>
runSprintTrain(MobilePackageModel &package, int count,
               Watts sprint_power, Seconds want, Seconds interval,
               Seconds step = 1e-3);

} // namespace csprint

#endif // CSPRINT_SPRINT_PACING_HH
