/**
 * @file
 * The sprint governor of paper Section 7: an activity-based thermal
 * budget tracker. The hardware monitors dynamic energy dissipation
 * since sprint initiation against the package's thermal budget and
 * signals software when the budget nears exhaustion; software then
 * migrates threads to a single core. If software fails to react
 * within a grace window, the hardware throttles frequency as a last
 * resort. A ground-truth mode (terminate on measured junction
 * temperature) is provided for validating the activity estimate.
 */

#ifndef CSPRINT_SPRINT_GOVERNOR_HH
#define CSPRINT_SPRINT_GOVERNOR_HH

#include "common/units.hh"
#include "thermal/package.hh"

namespace csprint {

/** Governor tuning. */
struct GovernorConfig
{
    /** Guard fraction: signal when this share of budget remains. */
    double margin = 0.05;
    /** Use the activity (energy-count) estimate; false = thermometer. */
    bool use_activity_estimate = true;
    /** Junction guard band for thermometer mode [K]. */
    Kelvin temp_guard = 1.0;
    /** Grace window for software to migrate before hardware throttles. */
    Seconds software_grace = 200e-6;
};

/** What the platform should do after a sample. */
enum class GovernorAction
{
    Continue,        ///< keep sprinting
    TerminateSprint, ///< software: migrate to one core now
    Throttle,        ///< hardware: clamp frequency (software missed)
};

/**
 * Tracks the sprint thermal budget against sampled dynamic energy and
 * the package's thermal state.
 */
class SprintGovernor
{
  public:
    SprintGovernor(const GovernorConfig &cfg, MobilePackageModel &package);

    /**
     * Fold one sample (energy @p energy over wall time @p dt) into the
     * tracker, advance the package thermal model, and decide.
     */
    GovernorAction onSample(Seconds dt, Joules energy);

    /** Budget available at sprint start [J]. */
    Joules initialBudget() const { return budget_total; }

    /** Budget still unspent (activity estimate) [J]. */
    Joules remainingBudget() const { return budget_remaining; }

    /** True once TerminateSprint has been signalled. */
    bool terminated() const { return signalled; }

    /** True once the hardware throttle fired. */
    bool throttled() const { return throttle_fired; }

    /** Peak junction temperature seen so far. */
    Celsius peakJunction() const { return peak_junction; }

    /** Sustainable power the budget replenishes at. */
    Watts sustainablePower() const { return sustainable; }

  private:
    GovernorConfig cfg;
    MobilePackageModel &package;
    Joules budget_total;
    Joules budget_remaining;
    Watts sustainable;
    bool signalled = false;
    bool throttle_fired = false;
    Seconds time_since_signal = 0.0;
    Celsius peak_junction;
};

} // namespace csprint

#endif // CSPRINT_SPRINT_GOVERNOR_HH
