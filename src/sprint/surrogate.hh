/**
 * @file
 * The calibrated surrogate fidelity tier: online-learned per-class
 * task models that stand in for full cycle-accurate machine pumps on
 * the bulk of a fleet-scale scenario run.
 *
 * A TaskSurrogate keeps one SurrogateClassModel per (kernel, input
 * size, sprint-mode) class. Every cycle-accurate pump the scenario
 * engine executes under a non-CycleAccurate tier feeds the class's
 * calibration: streaming mean/variance (Welford), drift-following
 * exponentially-weighted means used for prediction, and a P² p95 of
 * the service time as the confidence signal. A calibrated class
 * predicts service time, dynamic energy, and a piecewise-constant
 * heat profile (an above-TDP sprint segment followed by a sustainable
 * tail) good enough to drive ThermalNetwork::step analytically —
 * surrogate-executed tasks bypass prepareMachine/pumpTaskSlice
 * entirely.
 *
 * Admissibility contract (PERF.md, "Surrogate fidelity tier"): a
 * class may run surrogate only after min_calibration exact
 * observations and while it has never been demoted. Under
 * FidelityTier::Auto a seeded RNG cursor samples an exact "audit"
 * task every audit_period dispatches on average; the audit's
 * prediction (taken before the pump) is compared against the pump's
 * ground truth, and a relative error above the tolerance demotes the
 * class back to cycle-accurate permanently (it keeps calibrating, but
 * never predicts again). The cursor and every model are value
 * state serialized through checkpoint.cc, so sharded replay of an
 * Auto-tier run is bit-exact.
 */

#ifndef CSPRINT_SPRINT_SURROGATE_HH
#define CSPRINT_SPRINT_SURROGATE_HH

#include <cstdint>
#include <map>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "workloads/workload.hh"

namespace csprint {

/** Execution fidelity of the scenario engine's task pumps. */
enum class FidelityTier
{
    CycleAccurate, ///< every task pumps the full machine (default)
    Surrogate,     ///< calibrated classes predict, never audit
    Auto,          ///< calibrate, predict, sample exact audits
};

/** Stable lowercase name for reports and bench JSON keys. */
const char *fidelityTierName(FidelityTier tier);

/** ScenarioConfig knobs of the surrogate tier (all digest-covered). */
struct SurrogateParams
{
    FidelityTier tier = FidelityTier::CycleAccurate;

    /** Exact observations required before a class may predict. */
    int min_calibration = 8;

    /**
     * Auto tier: mean dispatches between exact audit tasks of a
     * calibrated class (a seeded per-dispatch draw, so shard replay
     * is bit-exact). Must be >= 1; 1 audits every dispatch.
     */
    double audit_period = 64.0;

    /**
     * Auto tier: relative error (service or energy, whichever is
     * worse) an audit may show before the class is demoted back to
     * cycle-accurate execution.
     */
    double tolerance = 0.25;

    /**
     * Thermal chunks the predicted heat profile is integrated in
     * (per task, split across the sprint and tail segments). More
     * chunks give finer traces and peak-tracking at surrogate cost.
     */
    int profile_samples = 4;
};

/** Abort unless @p p is a valid surrogate configuration. */
void validateSurrogateParams(const SurrogateParams &p);

/** Ground truth extracted from one cycle-accurate task pump. */
struct SurrogateObservation
{
    Seconds service = 0.0; ///< machine time (activation ramp excluded)
    Joules energy = 0.0;   ///< dynamic energy of the pump
    Seconds sprint_time = 0.0;  ///< above-TDP time
    Joules sprint_energy = 0.0; ///< above-TDP energy
    /**
     * The heat envelope the pump stepped into the package (whole
     * sample quanta only — the final partial quantum of a run never
     * fires the machine's sample hook, so its time and energy stay
     * out of the thermal model; RunResult::sampled_time/_energy).
     */
    Seconds heat_time = 0.0;
    Joules heat_energy = 0.0;
    bool sprint_exhausted = false;
    bool hardware_throttled = false;
};

/** What a calibrated class predicts for its next task. */
struct SurrogatePrediction
{
    Seconds service = 0.0;
    Joules energy = 0.0;
    Seconds sprint_time = 0.0;
    Joules sprint_energy = 0.0;
    Seconds heat_time = 0.0;  ///< package-stepped time (<= service)
    Joules heat_energy = 0.0; ///< package-stepped energy (<= energy)
    Seconds service_p95 = 0.0; ///< P² confidence signal
    bool sprint_exhausted = false;
    bool hardware_throttled = false;
};

/**
 * Weight of the newest observation in the drift-following prediction
 * means (max(1/n, alpha), so early samples average exactly): large
 * enough to track the cold->warm service drift of a saturating train
 * within a few audits, small enough to damp per-task noise.
 */
constexpr double kSurrogateAlpha = 0.25;

/**
 * Calibration state of one (kernel, size, sprinted) class. Plain
 * value state: checkpoints by field copy through CheckpointIO.
 */
struct SurrogateClassModel
{
    std::uint64_t n = 0; ///< exact observations folded in

    // Long-run streaming moments (Welford), for confidence/reporting.
    double service_mean = 0.0;
    double service_m2 = 0.0;
    double energy_mean = 0.0;
    double energy_m2 = 0.0;

    // Drift-following prediction means (kSurrogateAlpha EWMA).
    double ewma_service = 0.0;
    double ewma_energy = 0.0;
    double ewma_sprint_time = 0.0;
    double ewma_sprint_energy = 0.0;
    double ewma_heat_time = 0.0;
    double ewma_heat_energy = 0.0;
    double exhausted_ewma = 0.0; ///< EWMA of the 0/1 exhausted flag
    double throttled_ewma = 0.0; ///< EWMA of the 0/1 throttled flag

    P2Quantile service_p95{0.95};

    std::uint64_t surrogate_runs = 0; ///< tasks this class predicted
    std::uint64_t audits = 0;         ///< exact audits sampled
    bool demoted = false;             ///< audit error exceeded tolerance
    double worst_audit_error = 0.0;   ///< largest relative audit error

    /** Fold one exact observation into the calibration. */
    void observe(const SurrogateObservation &ob);

    /** Predict the next task of this class (requires n >= 1). */
    SurrogatePrediction predict() const;
};

/**
 * The per-scenario surrogate: every class model plus the audit RNG
 * cursor and the run-wide tallies the ScenarioResult reports. Value
 * semantics; lives inside ScenarioCheckpoint and serializes through
 * checkpoint.cc.
 */
class TaskSurrogate
{
  public:
    /** What the engine should do with a freshly dispatched task. */
    enum class Route
    {
        Exact,     ///< pump the machine (uncalibrated or demoted)
        Audit,     ///< pump the machine AND grade the prediction
        Surrogate, ///< skip the machine, execute the prediction
    };

    TaskSurrogate() = default;

    /** Class key of a (kernel, size, sprint-granted) task. */
    static std::uint32_t
    classKey(KernelId kernel, InputSize size, bool sprinted)
    {
        return (static_cast<std::uint32_t>(kernel) << 8) |
               (static_cast<std::uint32_t>(size) << 1) |
               (sprinted ? 1u : 0u);
    }

    /** Re-arm the audit cursor from the scenario seed (beginScenario). */
    void
    seed(std::uint64_t scenario_seed)
    {
        audit_rng_ = Rng(scenario_seed ^ 0x5352474154454155ULL);
    }

    /**
     * Route one dispatch of class @p key. Draws the audit cursor only
     * for calibrated Auto-tier candidates, so the RNG stream is a
     * pure function of the dispatch sequence (shard-replay exact).
     */
    Route route(std::uint32_t key, const SurrogateParams &params);

    /** The calibrated prediction for class @p key. */
    SurrogatePrediction predict(std::uint32_t key) const;

    /** Calibrate class @p key with one exact pump's ground truth. */
    void observeExact(std::uint32_t key,
                      const SurrogateObservation &ob);

    /**
     * Grade an audit: compare the pre-pump @p pred against the pump's
     * @p truth; demote the class when the worse of the service/energy
     * relative errors exceeds the tolerance.
     */
    void finishAudit(std::uint32_t key, const SurrogatePrediction &pred,
                     const SurrogateObservation &truth,
                     const SurrogateParams &params);

    /** Tasks executed by prediction instead of a machine pump. */
    std::uint64_t surrogateTasks() const { return surrogate_tasks_; }

    /** Exact audit tasks sampled by the Auto tier. */
    std::uint64_t auditTasks() const { return audit_tasks_; }

    /** Classes demoted back to cycle-accurate execution. */
    int demotions() const { return demotions_; }

    /** The calibrated class models (reporting). */
    const std::map<std::uint32_t, SurrogateClassModel> &
    classes() const
    {
        return classes_;
    }

  private:
    friend struct CheckpointIO;

    std::map<std::uint32_t, SurrogateClassModel> classes_;
    Rng audit_rng_{0x5352474154454155ULL}; ///< re-seeded per scenario
    std::uint64_t surrogate_tasks_ = 0;
    std::uint64_t audit_tasks_ = 0;
    int demotions_ = 0;
};

} // namespace csprint

#endif // CSPRINT_SPRINT_SURROGATE_HH
