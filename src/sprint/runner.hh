/**
 * @file
 * Thread-pool experiment runner.
 *
 * Every paper figure is a batch of independent coupled runs (each owns
 * its Machine and ThermalNetwork, so runs share no mutable state); the
 * seed drivers executed them strictly serially. ExperimentRunner fans a
 * batch across a persistent pool of std::thread workers and returns
 * results in submission order, so the figure/ablation drivers stay a
 * simple "build specs, run batch, print table" pipeline.
 */

#ifndef CSPRINT_SPRINT_RUNNER_HH
#define CSPRINT_SPRINT_RUNNER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sprint/experiment.hh"
#include "sprint/scenario.hh"

namespace csprint {

/** Which experiment driver a batched run goes through. */
enum class ExperimentMode
{
    Baseline,       ///< runBaselineExperiment
    ParallelSprint, ///< runParallelSprintExperiment
    DvfsSprint,     ///< runDvfsSprintExperiment
};

/** One entry of a batched experiment request. */
struct ExperimentRun
{
    ExperimentMode mode = ExperimentMode::Baseline;
    ExperimentSpec spec;
};

/** Dispatch one ExperimentRun through its driver. */
RunResult runExperiment(const ExperimentRun &run);

/**
 * One slot of a checked batch: either a value or the exception that
 * replaced it. map() rethrows only the *first* failure of a batch and
 * leaves the other failed slots default-constructed — indistinguishable
 * from real results. The checked variants keep every slot's own
 * exception_ptr instead, so a batch driver can report per-shard
 * failures (or hand them to the supervisor for retry) without
 * discarding the runs that succeeded.
 */
template <typename T>
struct Checked
{
    T value{};
    std::exception_ptr error; ///< set iff the job threw

    bool ok() const { return error == nullptr; }

    /** The value, rethrowing the job's own exception if it failed. */
    const T &
    get() const
    {
        if (error)
            std::rethrow_exception(error);
        return value;
    }
};

/**
 * The calling thread's reusable dispatch gang, lazily spawned (and
 * re-spawned when @p lanes changes) and kept for the thread's
 * lifetime; null when @p lanes < 2. runExperiment() wires it into
 * specs that ask for dispatch_threads > 1 without naming a gang, so
 * a batch of multi-thread pumps on one ExperimentRunner worker
 * reuses one set of host threads instead of spawning per machine.
 */
WorkerGang *threadDispatchGang(int lanes);

/**
 * A persistent pool of worker threads for embarrassingly parallel
 * experiment batches.
 *
 * Jobs are arbitrary callables; runBatch() and map() are the typed
 * conveniences the drivers use. A thread waiting on a batch lends
 * itself to the queue, so progress is made even with a single hardware
 * thread, and a map() nested inside a job cannot deadlock.
 */
class ExperimentRunner
{
  public:
    /**
     * Start @p workers worker threads; 0 picks the hardware
     * concurrency (minimum 1).
     */
    explicit ExperimentRunner(int workers = 0);

    /** Drains outstanding jobs, then joins the workers. */
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    /** Number of worker threads in the pool. */
    int workerCount() const { return static_cast<int>(threads.size()); }

    /**
     * Enqueue a fire-and-forget job (finished by wait()). Jobs
     * submitted through this raw primitive must not throw — an escaped
     * exception panics rather than hanging the pool (map() jobs may
     * throw; their exceptions are captured and rethrown).
     */
    void submit(std::function<void()> job);

    /** Help run queued jobs until every submitted job has finished. */
    void wait();

    /**
     * Run @p jobs concurrently; results land in submission order. If a
     * job throws, the batch still drains and the first exception is
     * rethrown to the caller.
     */
    template <typename T>
    std::vector<T> map(const std::vector<std::function<T()>> &jobs)
    {
        std::vector<T> out(jobs.size());
        std::size_t remaining = jobs.size();
        std::exception_ptr first_error; // guarded by mutex
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            enqueue([this, &out, &jobs, &remaining, &first_error, i] {
                std::exception_ptr error;
                try {
                    out[i] = jobs[i]();
                } catch (...) {
                    error = std::current_exception();
                }
                std::lock_guard<std::mutex> guard(mutex);
                if (error && !first_error)
                    first_error = error;
                --remaining;
            });
        }
        helpUntilZero(remaining);
        if (first_error)
            std::rethrow_exception(first_error);
        return out;
    }

    /**
     * Like map(), but no exception is rethrown and nothing is lost:
     * each slot carries its own result or its own failure.
     */
    template <typename T>
    std::vector<Checked<T>>
    mapChecked(const std::vector<std::function<T()>> &jobs)
    {
        std::vector<Checked<T>> out(jobs.size());
        std::size_t remaining = jobs.size();
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            enqueue([this, &out, &jobs, &remaining, i] {
                try {
                    out[i].value = jobs[i]();
                } catch (...) {
                    out[i].error = std::current_exception();
                }
                std::lock_guard<std::mutex> guard(mutex);
                --remaining;
            });
        }
        helpUntilZero(remaining);
        return out;
    }

    /** Run a batch of experiments; results in submission order. */
    std::vector<RunResult> runBatch(const std::vector<ExperimentRun> &batch);

    /**
     * Run a batch of scenarios; results in submission order. Each
     * scenario owns its package, policy, and machines, so scenarios
     * fan out as freely as single experiments (the tasks *within* one
     * scenario share thermal state and stay serial).
     */
    std::vector<ScenarioResult>
    runScenarioBatch(const std::vector<ScenarioConfig> &batch);

    /**
     * runScenarioBatch with per-shard failure reporting: a shard that
     * throws yields a slot carrying its exception_ptr while every
     * other shard's result survives, instead of one rethrow hiding
     * which shards failed and dropping the rest.
     */
    std::vector<Checked<ScenarioResult>>
    runScenarioBatchChecked(const std::vector<ScenarioConfig> &batch);

  private:
    void workerLoop();

    /** Queue a job and wake a thread. */
    void enqueue(std::function<void()> job);

    /**
     * Pop one job and run it with the lock released; updates in_flight
     * and signals on return. Requires a non-empty queue.
     */
    void runOne(std::unique_lock<std::mutex> &lock);

    /** Help run jobs until @p counter (guarded by mutex) reaches 0. */
    void helpUntilZero(const std::size_t &counter);

    std::mutex mutex;
    std::condition_variable signal; ///< submit / completion / shutdown
    std::deque<std::function<void()>> queue;
    std::size_t in_flight = 0; ///< queued + currently running jobs
    bool stopping = false;
    std::vector<std::thread> threads;
};

} // namespace csprint

#endif // CSPRINT_SPRINT_RUNNER_HH
