#include "sprint/governor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace csprint {

SprintGovernor::SprintGovernor(const GovernorConfig &config,
                               MobilePackageModel &pkg)
    : cfg(config), package(pkg)
{
    budget_total = package.sprintEnergyBudget();
    budget_remaining = budget_total;
    sustainable = package.sustainableTdp();
    peak_junction = package.junctionTemp();
}

GovernorAction
SprintGovernor::onSample(Seconds dt, Joules energy)
{
    SPRINT_ASSERT(dt > 0.0, "sample interval must be positive");

    // Drive the package thermal model with the sampled power.
    package.setDiePower(energy / dt);
    package.step(dt);
    peak_junction = std::max(peak_junction, package.junctionTemp());

    // Activity-based budget: energy above the sustainable envelope
    // drains the budget; running below it replenishes (the package
    // sheds heat), capped at the initial budget.
    const Joules above = energy - sustainable * dt;
    budget_remaining =
        std::clamp(budget_remaining - above, 0.0, budget_total);

    bool exhausted;
    if (cfg.use_activity_estimate) {
        exhausted = budget_remaining <= cfg.margin * budget_total;
    } else {
        exhausted = package.junctionTemp() >=
                    package.params().t_junction_max - cfg.temp_guard;
    }

    if (!signalled) {
        if (exhausted) {
            signalled = true;
            time_since_signal = 0.0;
            return GovernorAction::TerminateSprint;
        }
        return GovernorAction::Continue;
    }

    // Already signalled: escalate to the hardware throttle if power
    // is still above sustainable after the grace window.
    time_since_signal += dt;
    const Watts power = energy / dt;
    if (!throttle_fired && time_since_signal > cfg.software_grace &&
        power > 1.5 * sustainable) {
        throttle_fired = true;
        return GovernorAction::Throttle;
    }
    return GovernorAction::Continue;
}

} // namespace csprint
