#include "sprint/policy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sprint/pacing.hh"

namespace csprint {

const char *
sprintPolicyKindName(SprintPolicyKind kind)
{
    switch (kind) {
      case SprintPolicyKind::GreedyActivity:
        return "greedy";
      case SprintPolicyKind::Thermometer:
        return "thermometer";
      case SprintPolicyKind::DutyCycle:
        return "duty-cycle";
      case SprintPolicyKind::AdaptiveHeadroom:
        return "adaptive-headroom";
      case SprintPolicyKind::NeverSprint:
        return "never";
    }
    SPRINT_PANIC("unknown policy kind");
}

const std::vector<SprintPolicyKind> &
allSprintPolicyKinds()
{
    static const std::vector<SprintPolicyKind> kinds = {
        SprintPolicyKind::GreedyActivity,
        SprintPolicyKind::Thermometer,
        SprintPolicyKind::DutyCycle,
        SprintPolicyKind::AdaptiveHeadroom,
        SprintPolicyKind::NeverSprint,
    };
    return kinds;
}

namespace {

/** Governor config with the estimate mode pinned by the policy. */
GovernorConfig
withActivityEstimate(GovernorConfig cfg, bool activity)
{
    cfg.use_activity_estimate = activity;
    return cfg;
}

} // namespace

SprintDecision
GovernorBackedPolicy::onSample(MobilePackageModel &package, Seconds dt,
                               Joules energy)
{
    (void)package; // the governor holds the package reference
    SPRINT_ASSERT(governor.has_value(),
                  "onSample before beginTask armed the governor");
    switch (governor->onSample(dt, energy)) {
      case GovernorAction::Continue:
        return SprintDecision::Continue;
      case GovernorAction::TerminateSprint:
        return SprintDecision::StopSprint;
      case GovernorAction::Throttle:
        return SprintDecision::Throttle;
    }
    SPRINT_PANIC("unknown governor action");
}

GreedyActivityPolicy::GreedyActivityPolicy(GovernorConfig cfg)
    : GovernorBackedPolicy(withActivityEstimate(cfg, true))
{
}

ThermometerPolicy::ThermometerPolicy(GovernorConfig cfg)
    : GovernorBackedPolicy(withActivityEstimate(cfg, false))
{
}

DutyCyclePolicy::DutyCyclePolicy(Seconds pacing_period, GovernorConfig cfg)
    : GovernorBackedPolicy(withActivityEstimate(cfg, true)),
      period(pacing_period)
{
    SPRINT_ASSERT(period > 0.0, "duty-cycle policy needs a period");
}

void
DutyCyclePolicy::beginTask(MobilePackageModel &package)
{
    GovernorBackedPolicy::beginTask(package);
    // The package can shed sustainable-TDP joules per second; one
    // pacing period's worth is the above-envelope energy this task may
    // spend without stealing from the next arrival (the
    // energy-conservation argument behind sustainableDutyCycle()).
    pacing_allowance = governor->sustainablePower() * period;
    above_energy = 0.0;
    above_time = 0.0;
    duty_bound = 1.0;
    paced_out = false;
}

SprintDecision
DutyCyclePolicy::onSample(MobilePackageModel &package, Seconds dt,
                          Joules energy)
{
    const SprintDecision safety =
        GovernorBackedPolicy::onSample(package, dt, energy);

    const Watts power = energy / dt;
    if (power > governor->sustainablePower()) {
        above_energy += energy;
        above_time += dt;
        duty_bound = sustainableDutyCycle(package, above_energy /
                                                      above_time);
    }

    // The governor's thermal-safety decisions always win.
    if (safety != SprintDecision::Continue)
        return safety;
    if (!paced_out && above_energy >= pacing_allowance) {
        paced_out = true;
        return SprintDecision::StopSprint;
    }
    return SprintDecision::Continue;
}

AdaptiveHeadroomPolicy::AdaptiveHeadroomPolicy(double fraction,
                                               GovernorConfig cfg)
    : GovernorBackedPolicy(withActivityEstimate(cfg, true)),
      resume_fraction(fraction)
{
    SPRINT_ASSERT(resume_fraction > 0.0 && resume_fraction <= 1.0,
                  "resume fraction must be in (0, 1]");
}

bool
AdaptiveHeadroomPolicy::wantSprint(const MobilePackageModel &package)
{
    if (cold_budget < 0.0)
        cold_budget =
            MobilePackageModel(package.params()).sprintEnergyBudget();
    return package.sprintEnergyBudget() >=
           resume_fraction * cold_budget;
}

std::vector<double>
AdaptiveHeadroomPolicy::saveState() const
{
    return {cold_budget};
}

void
AdaptiveHeadroomPolicy::restoreState(const std::vector<double> &state)
{
    SPRINT_ASSERT(state.size() == 1,
                  "adaptive-headroom state is one double");
    cold_budget = state[0];
}

std::unique_ptr<SprintPolicy>
makeSprintPolicy(const SprintPolicyParams &params)
{
    switch (params.kind) {
      case SprintPolicyKind::GreedyActivity:
        return std::make_unique<GreedyActivityPolicy>(params.governor);
      case SprintPolicyKind::Thermometer:
        return std::make_unique<ThermometerPolicy>(params.governor);
      case SprintPolicyKind::DutyCycle:
        return std::make_unique<DutyCyclePolicy>(params.pacing_period,
                                                 params.governor);
      case SprintPolicyKind::AdaptiveHeadroom:
        return std::make_unique<AdaptiveHeadroomPolicy>(
            params.resume_fraction, params.governor);
      case SprintPolicyKind::NeverSprint:
        return std::make_unique<NeverSprintPolicy>();
    }
    SPRINT_PANIC("unknown policy kind");
}

} // namespace csprint
