#include "sprint/policy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sprint/pacing.hh"

namespace csprint {

const char *
sprintPolicyKindName(SprintPolicyKind kind)
{
    switch (kind) {
      case SprintPolicyKind::GreedyActivity:
        return "greedy";
      case SprintPolicyKind::Thermometer:
        return "thermometer";
      case SprintPolicyKind::DutyCycle:
        return "duty-cycle";
      case SprintPolicyKind::AdaptiveHeadroom:
        return "adaptive-headroom";
      case SprintPolicyKind::NeverSprint:
        return "never";
      case SprintPolicyKind::Qos:
        return "qos";
      case SprintPolicyKind::ModelPredictive:
        return "model-predictive";
    }
    SPRINT_PANIC("unknown policy kind");
}

const std::vector<SprintPolicyKind> &
allSprintPolicyKinds()
{
    static const std::vector<SprintPolicyKind> kinds = {
        SprintPolicyKind::GreedyActivity,
        SprintPolicyKind::Thermometer,
        SprintPolicyKind::DutyCycle,
        SprintPolicyKind::AdaptiveHeadroom,
        SprintPolicyKind::NeverSprint,
        SprintPolicyKind::Qos,
        SprintPolicyKind::ModelPredictive,
    };
    return kinds;
}

namespace {

/** Governor config with the estimate mode pinned by the policy. */
GovernorConfig
withActivityEstimate(GovernorConfig cfg, bool activity)
{
    cfg.use_activity_estimate = activity;
    return cfg;
}

} // namespace

SprintDecision
GovernorBackedPolicy::onSample(MobilePackageModel &package, Seconds dt,
                               Joules energy)
{
    (void)package; // the governor holds the package reference
    SPRINT_ASSERT(governor.has_value(),
                  "onSample before beginTask armed the governor");
    switch (governor->onSample(dt, energy)) {
      case GovernorAction::Continue:
        return SprintDecision::Continue;
      case GovernorAction::TerminateSprint:
        return SprintDecision::StopSprint;
      case GovernorAction::Throttle:
        return SprintDecision::Throttle;
    }
    SPRINT_PANIC("unknown governor action");
}

GreedyActivityPolicy::GreedyActivityPolicy(GovernorConfig cfg)
    : GovernorBackedPolicy(withActivityEstimate(cfg, true))
{
}

ThermometerPolicy::ThermometerPolicy(GovernorConfig cfg)
    : GovernorBackedPolicy(withActivityEstimate(cfg, false))
{
}

DutyCyclePolicy::DutyCyclePolicy(Seconds pacing_period, GovernorConfig cfg)
    : GovernorBackedPolicy(withActivityEstimate(cfg, true)),
      period(pacing_period)
{
    SPRINT_ASSERT(period > 0.0, "duty-cycle policy needs a period");
}

void
DutyCyclePolicy::beginTask(MobilePackageModel &package)
{
    GovernorBackedPolicy::beginTask(package);
    // The package can shed sustainable-TDP joules per second; one
    // pacing period's worth is the above-envelope energy this task may
    // spend without stealing from the next arrival (the
    // energy-conservation argument behind sustainableDutyCycle()).
    pacing_allowance = governor->sustainablePower() * period;
    above_energy = 0.0;
    above_time = 0.0;
    duty_bound = 1.0;
    paced_out = false;
}

SprintDecision
DutyCyclePolicy::onSample(MobilePackageModel &package, Seconds dt,
                          Joules energy)
{
    const SprintDecision safety =
        GovernorBackedPolicy::onSample(package, dt, energy);

    const Watts power = energy / dt;
    if (power > governor->sustainablePower()) {
        above_energy += energy;
        above_time += dt;
        duty_bound = sustainableDutyCycle(package, above_energy /
                                                      above_time);
    }

    // The governor's thermal-safety decisions always win.
    if (safety != SprintDecision::Continue)
        return safety;
    if (!paced_out && above_energy >= pacing_allowance) {
        paced_out = true;
        return SprintDecision::StopSprint;
    }
    return SprintDecision::Continue;
}

AdaptiveHeadroomPolicy::AdaptiveHeadroomPolicy(double fraction,
                                               GovernorConfig cfg)
    : GovernorBackedPolicy(withActivityEstimate(cfg, true)),
      resume_fraction(fraction)
{
    SPRINT_ASSERT(resume_fraction > 0.0 && resume_fraction <= 1.0,
                  "resume fraction must be in (0, 1]");
}

bool
AdaptiveHeadroomPolicy::wantSprint(const MobilePackageModel &package)
{
    if (cold_budget < 0.0)
        cold_budget =
            MobilePackageModel(package.params()).sprintEnergyBudget();
    return package.sprintEnergyBudget() >=
           resume_fraction * cold_budget;
}

std::vector<double>
AdaptiveHeadroomPolicy::saveState() const
{
    return {cold_budget};
}

void
AdaptiveHeadroomPolicy::restoreState(const std::vector<double> &state)
{
    SPRINT_ASSERT(state.size() == 1,
                  "adaptive-headroom state is one double");
    cold_budget = state[0];
}

namespace {

/**
 * Shared ready-queue order of the preemptive policies: highest
 * priority first, earliest absolute deadline within a class, earliest
 * arrival as the stable tie-break (ready is in arrival order, so the
 * strict comparisons keep the first of equals).
 */
std::size_t
pickUrgent(const std::vector<TaskSnapshot> &ready)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
        const TaskSnapshot &a = ready[i];
        const TaskSnapshot &b = ready[best];
        if (a.priority != b.priority) {
            if (a.priority > b.priority)
                best = i;
        } else if (a.deadline != b.deadline) {
            if (a.deadline < b.deadline)
                best = i;
        } else if (a.arrival < b.arrival) {
            best = i;
        }
    }
    return best;
}

/** Tardiness of finishing at @p finish against @p deadline. */
Seconds
tardiness(Seconds finish, Seconds deadline)
{
    return deadline == kNoDeadline || finish <= deadline
               ? 0.0
               : finish - deadline;
}

} // namespace

QosPolicy::QosPolicy(double slack_factor, Seconds service_prior,
                     GovernorConfig cfg, double risk_quantile)
    : GovernorBackedPolicy(withActivityEstimate(cfg, true)),
      slack(slack_factor), risk_aware(risk_quantile > 0.0),
      est(service_prior, risk_aware ? risk_quantile : 0.95)
{
    SPRINT_ASSERT(slack > 0.0, "qos slack factor must be positive");
    SPRINT_ASSERT(risk_quantile >= 0.0 && risk_quantile < 1.0,
                  "risk quantile must be 0 (off) or in (0, 1)");
}

Seconds
QosPolicy::priceIf(const TaskSnapshot &task, bool sprinted) const
{
    return risk_aware ? est.pessimisticIf(task, sprinted)
                      : est.estimateIf(task, sprinted);
}

Seconds
QosPolicy::priceRemaining(const TaskSnapshot &task) const
{
    return risk_aware ? est.pessimisticRemaining(task)
                      : est.remaining(task);
}

ArrivalDecision
QosPolicy::onArrival(const MobilePackageModel &package, Seconds now,
                     const TaskSnapshot &running,
                     const TaskSnapshot &incoming)
{
    (void)package;
    // Only a strictly more important newcomer may evict work, and only
    // when it actually has a deadline to protect.
    if (incoming.priority <= running.priority ||
        incoming.deadline == kNoDeadline)
        return ArrivalDecision::Queue;
    const Seconds wait =
        priceRemaining(running) + priceIf(incoming, true);
    return now + slack * wait > incoming.deadline
               ? ArrivalDecision::Preempt
               : ArrivalDecision::Queue;
}

std::size_t
QosPolicy::pickNext(const MobilePackageModel &package, Seconds now,
                    const std::vector<TaskSnapshot> &ready)
{
    (void)package;
    (void)now;
    return pickUrgent(ready);
}

void
QosPolicy::onTaskComplete(const TaskSnapshot &task, Seconds service)
{
    est.add(task, service);
}

std::vector<double>
QosPolicy::saveState() const
{
    return est.save();
}

void
QosPolicy::restoreState(const std::vector<double> &state)
{
    SPRINT_ASSERT(state.size() == ServiceEstimator::kStateSize,
                  "qos state is the estimator's cells");
    est.restore(state.data());
}

ModelPredictivePolicy::ModelPredictivePolicy(double fraction,
                                             Seconds service_prior,
                                             GovernorConfig cfg,
                                             double risk_quantile)
    : GovernorBackedPolicy(withActivityEstimate(cfg, true)),
      grant_fraction(fraction), risk_aware(risk_quantile > 0.0),
      est(service_prior, risk_aware ? risk_quantile : 0.95)
{
    SPRINT_ASSERT(grant_fraction > 0.0 && grant_fraction <= 1.0,
                  "grant fraction must be in (0, 1]");
    SPRINT_ASSERT(risk_quantile >= 0.0 && risk_quantile < 1.0,
                  "risk quantile must be 0 (off) or in (0, 1)");
}

Seconds
ModelPredictivePolicy::priceIf(const TaskSnapshot &task,
                               bool sprinted) const
{
    return risk_aware ? est.pessimisticIf(task, sprinted)
                      : est.estimateIf(task, sprinted);
}

Seconds
ModelPredictivePolicy::priceRemaining(const TaskSnapshot &task) const
{
    return risk_aware ? est.pessimisticRemaining(task)
                      : est.remaining(task);
}

Seconds
ModelPredictivePolicy::regrantDelay(
    const MobilePackageModel &package) const
{
    if (cold_budget < 0.0)
        cold_budget =
            MobilePackageModel(package.params()).sprintEnergyBudget();
    if (package.sprintEnergyBudget() >= grant_fraction * cold_budget)
        return 0.0;
    // Section 4.5's cooldown approximation seeds the search horizon
    // (how long a full-budget sprint would take to pay back); the
    // stepped budget-recovery search on a scratch copy of the live
    // state refines it without touching the real package.
    const Watts sprint_power = package.maxSprintPower();
    const Seconds sprint_est =
        cold_budget / std::max(sprint_power -
                                   package.sustainableTdp(),
                               1e-12);
    const Seconds horizon =
        4.0 * package.approxCooldown(sprint_est, sprint_power);
    MobilePackageModel scratch(package.params());
    scratch.restoreState(package.saveState());
    return timeToBudgetFraction(scratch, grant_fraction, horizon,
                                horizon / 64.0);
}

ArrivalDecision
ModelPredictivePolicy::onArrival(const MobilePackageModel &package,
                                 Seconds now,
                                 const TaskSnapshot &running,
                                 const TaskSnapshot &incoming)
{
    // Nothing learned yet: no forecast to act on, queue conservatively.
    if (est.estimateIf(incoming, true) <= 0.0)
        return ArrivalDecision::Queue;

    const Seconds rem_run = priceRemaining(running);
    const Seconds regrant = regrantDelay(package);

    // Order A — queue: the runner finishes first, the newcomer then
    // runs with whatever sprint capacity has recovered by that time.
    const Seconds fin_run_q = now + rem_run;
    const Seconds fin_inc_q =
        fin_run_q + priceIf(incoming, regrant <= rem_run);
    // Order B — preempt: the newcomer runs now (sprinting only if the
    // budget allows it today), the runner's remainder follows.
    const Seconds fin_inc_p =
        now + priceIf(incoming, regrant <= 0.0);
    const Seconds fin_run_p = fin_inc_p + rem_run;

    const int met_q =
        (fin_run_q <= running.deadline ? 1 : 0) +
        (fin_inc_q <= incoming.deadline ? 1 : 0);
    const int met_p =
        (fin_run_p <= running.deadline ? 1 : 0) +
        (fin_inc_p <= incoming.deadline ? 1 : 0);
    if (met_p != met_q) {
        return met_p > met_q ? ArrivalDecision::Preempt
                             : ArrivalDecision::Queue;
    }
    const Seconds tard_q = tardiness(fin_run_q, running.deadline) +
                           tardiness(fin_inc_q, incoming.deadline);
    const Seconds tard_p = tardiness(fin_run_p, running.deadline) +
                           tardiness(fin_inc_p, incoming.deadline);
    return tard_p < tard_q ? ArrivalDecision::Preempt
                           : ArrivalDecision::Queue;
}

std::size_t
ModelPredictivePolicy::pickNext(const MobilePackageModel &package,
                                Seconds now,
                                const std::vector<TaskSnapshot> &ready)
{
    (void)package;
    (void)now;
    return pickUrgent(ready);
}

void
ModelPredictivePolicy::onTaskComplete(const TaskSnapshot &task,
                                      Seconds service)
{
    est.add(task, service);
}

std::vector<double>
ModelPredictivePolicy::saveState() const
{
    std::vector<double> state = est.save();
    state.push_back(cold_budget);
    return state;
}

void
ModelPredictivePolicy::restoreState(const std::vector<double> &state)
{
    SPRINT_ASSERT(state.size() == ServiceEstimator::kStateSize + 1,
                  "model-predictive state is the estimator plus the "
                  "cold budget");
    est.restore(state.data());
    cold_budget = state[ServiceEstimator::kStateSize];
}

std::unique_ptr<SprintPolicy>
makeSprintPolicy(const SprintPolicyParams &params)
{
    switch (params.kind) {
      case SprintPolicyKind::GreedyActivity:
        return std::make_unique<GreedyActivityPolicy>(params.governor);
      case SprintPolicyKind::Thermometer:
        return std::make_unique<ThermometerPolicy>(params.governor);
      case SprintPolicyKind::DutyCycle:
        return std::make_unique<DutyCyclePolicy>(params.pacing_period,
                                                 params.governor);
      case SprintPolicyKind::AdaptiveHeadroom:
        return std::make_unique<AdaptiveHeadroomPolicy>(
            params.resume_fraction, params.governor);
      case SprintPolicyKind::NeverSprint:
        return std::make_unique<NeverSprintPolicy>();
      case SprintPolicyKind::Qos:
        return std::make_unique<QosPolicy>(params.qos_slack,
                                           params.service_prior,
                                           params.governor,
                                           params.risk_quantile);
      case SprintPolicyKind::ModelPredictive:
        return std::make_unique<ModelPredictivePolicy>(
            params.resume_fraction, params.service_prior,
            params.governor, params.risk_quantile);
    }
    SPRINT_PANIC("unknown policy kind");
}

} // namespace csprint
